package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
)

// countingMonitor tallies flight-recorder events without retaining them —
// the cheapest realistic consumer, shared by the parity test and the
// solve-k5-mon benchmark leg.
type countingMonitor struct {
	events, starts, finishes int
	pivots                   int
}

func (m *countingMonitor) Observe(s lp.Snapshot) {
	m.events++
	switch s.Event {
	case "start":
		m.starts++
	case "finish":
		m.finishes++
		m.pivots += s.Pivots
	}
}

// solveK5 builds the exact model and options of the solve-k5 headline
// benchmark (five-component heterogeneous platform, power minimization
// under a drop-rate bound).
func solveK5(t testing.TB) (*core.Model, core.Options) {
	sys, err := devices.HeterogeneousSystem(5, 0, core.TwoStateSR("w", 0.05, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m, core.Options{
		Alpha:          core.HorizonToAlpha(1e5),
		Initial:        core.Delta(m.N, 0),
		Objective:      core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds:         []core.Bound{{Metric: core.MetricDrops, Rel: lp.LE, Value: 0.04}},
		SkipEvaluation: true,
	}
}

// TestMonitorParitySolveK5 is the end-to-end no-trajectory-perturbation
// acceptance check on the headline instance: solve-k5 with a flight
// recorder attached at the tightest cadence must follow the bit-identical
// pivot trajectory of the bare solve — same pivot and refactorization
// counts, bit-identical objective, byte-identical optimal basis — while
// the monitor actually observes the full solve.
func TestMonitorParitySolveK5(t *testing.T) {
	m, opts := solveK5(t)
	bare, err := core.Optimize(m, opts)
	if err != nil {
		t.Fatal(err)
	}

	mon := &countingMonitor{}
	opts.LPMonitor = mon
	opts.LPMonitorEvery = 1
	watched, err := core.Optimize(m, opts)
	if err != nil {
		t.Fatal(err)
	}

	if watched.Status != bare.Status {
		t.Fatalf("status %v, bare %v", watched.Status, bare.Status)
	}
	if watched.LPIterations != bare.LPIterations {
		t.Errorf("pivots %d, bare %d", watched.LPIterations, bare.LPIterations)
	}
	if watched.LPRefactorizations != bare.LPRefactorizations {
		t.Errorf("refactorizations %d, bare %d", watched.LPRefactorizations, bare.LPRefactorizations)
	}
	if watched.Objective != bare.Objective {
		t.Errorf("objective %v, bare %v (not bit-identical)", watched.Objective, bare.Objective)
	}
	got, err1 := watched.Basis.MarshalBinary()
	want, err2 := bare.Basis.MarshalBinary()
	if err1 != nil || err2 != nil {
		t.Fatalf("marshal basis: %v / %v", err1, err2)
	}
	if !bytes.Equal(got, want) {
		t.Error("optimal basis differs from bare solve")
	}

	if mon.starts == 0 || mon.starts != mon.finishes {
		t.Errorf("monitor saw %d starts vs %d finishes", mon.starts, mon.finishes)
	}
	if mon.pivots != bare.LPIterations {
		t.Errorf("monitor finish snapshots total %d pivots, solve took %d", mon.pivots, bare.LPIterations)
	}
	if mon.events <= bare.LPIterations {
		t.Errorf("only %d events at cadence 1 for a %d-pivot solve", mon.events, bare.LPIterations)
	}
}
