package repro_test

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/experiments"
	"repro/internal/lp"
	"repro/internal/markov"
	"repro/internal/policy"
	"repro/internal/sim"
)

// reportSolveStats surfaces one solve's work counters and its per-stage
// timing breakdown as benchmark metrics, so BENCH.json records not just how
// long the solve took but where the time went (ftran/btran/price/factor/
// update — see lp.Timings for the stage partition).
func reportSolveStats(b *testing.B, res *core.Result) {
	b.Helper()
	b.ReportMetric(float64(res.LPIterations), "pivots")
	b.ReportMetric(float64(res.LPRefactorizations), "refactors")
	b.ReportMetric(float64(res.LPFactorNNZ), "factor_nnz")
	ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
	t := res.LPTimings
	b.ReportMetric(ms(t.Ftran), "ftran_ms")
	b.ReportMetric(ms(t.Btran), "btran_ms")
	b.ReportMetric(ms(t.Price), "price_ms")
	b.ReportMetric(ms(t.Factor), "factor_ms")
	b.ReportMetric(ms(t.Update), "update_ms")
}

// benchExperiment runs one paper-figure experiment per benchmark iteration
// at full (paper-scale) parameters and reports its headline numbers as
// benchmark metrics, so `go test -bench=.` regenerates the entire
// evaluation. Use cmd/dpmbench to print the full tables.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Quick: false, Seed: 1}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Run(id, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	// Surface one representative metric per experiment so bench output
	// doubles as a regression record.
	for name, pts := range res.Series {
		min, max := math.Inf(1), math.Inf(-1)
		for _, p := range pts {
			if !p.Feasible {
				continue
			}
			if p.Y < min {
				min = p.Y
			}
			if p.Y > max {
				max = p.Y
			}
		}
		if !math.IsInf(min, 1) {
			b.ReportMetric(min, name+"_min")
			b.ReportMetric(max, name+"_max")
		}
	}
}

// One benchmark per table/figure of the paper's evaluation (DESIGN.md §5).

func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFig6(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig8b(b *testing.B)     { benchExperiment(b, "fig8b") }
func BenchmarkFig9a(b *testing.B)     { benchExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)     { benchExperiment(b, "fig9b") }
func BenchmarkFig10(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig12a(b *testing.B)    { benchExperiment(b, "fig12a") }
func BenchmarkFig12b(b *testing.B)    { benchExperiment(b, "fig12b") }
func BenchmarkFig13a(b *testing.B)    { benchExperiment(b, "fig13a") }
func BenchmarkFig13b(b *testing.B)    { benchExperiment(b, "fig13b") }
func BenchmarkFig14a(b *testing.B)    { benchExperiment(b, "fig14a") }
func BenchmarkFig14b(b *testing.B)    { benchExperiment(b, "fig14b") }
func BenchmarkExampleA2(b *testing.B) { benchExperiment(b, "exampleA2") }

// BenchmarkOptimizeDisk measures the policy-optimization hot path on the
// paper's largest case study (66 states × 5 commands, horizon 10⁶) — the
// computation the paper reports took "less than 1 min" per curve on a
// SUN UltraSPARC.
func BenchmarkOptimizeDisk(b *testing.B) {
	sr := core.TwoStateSR("w", 0.002, 0.3)
	sys := devices.DiskSystem(sr)
	m, err := sys.Build()
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{
		Alpha:            core.HorizonToAlpha(1e6),
		Initial:          core.Delta(m.N, sys.Index(core.State{SP: devices.DiskActive})),
		Objective:        core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds:           []core.Bound{{Metric: core.MetricPenalty, Rel: lp.LE, Value: 0.3}},
		UnvisitedCommand: devices.DiskGoActive,
		SkipEvaluation:   true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(m, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepDisk measures the full Pareto-curve computation for the
// disk case study — the per-curve cost behind each of the paper's tradeoff
// plots — through the public facade on the parallel warm-started engine.
// Compare with internal/sweep's benchmarks for the sequential/cold grid.
func BenchmarkSweepDisk(b *testing.B) {
	sr := core.TwoStateSR("w", 0.002, 0.3)
	sys := devices.DiskSystem(sr)
	m, err := sys.Build()
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{
		Alpha:            core.HorizonToAlpha(1e6),
		Initial:          core.Delta(m.N, sys.Index(core.State{SP: devices.DiskActive})),
		Objective:        core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		UnvisitedCommand: devices.DiskGoActive,
		SkipEvaluation:   true,
	}
	bounds := make([]float64, 16)
	for i := range bounds {
		bounds[i] = 0.05 + 0.05*float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := repro.ParallelParetoSweep(context.Background(), m, opts, core.MetricPenalty, lp.LE, bounds, repro.SweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			st := repro.ParetoSweepStats(pts)
			b.ReportMetric(float64(st.WarmStarted), "warm/sweep")
			b.ReportMetric(float64(st.Pivots), "pivots/sweep")
		}
	}
}

// largeComposite builds the multi-device fixture of the sparse-pipeline
// benchmark: three 3-state mini-disks composed into one CompositeSP
// (Section VII network), a bursty two-state workload and a shared queue —
// 27 joint SP states × 8 joint commands, 270 system states and 2160 LP
// columns at queue capacity 4, 486 states and 3888 columns at capacity 8.
func largeComposite(b *testing.B, queueCap int) (*core.Model, core.Options) {
	b.Helper()
	sys, err := devices.MultiDiskSystem(3, queueCap, core.TwoStateSR("w", 0.05, 0.2))
	if err != nil {
		b.Fatal(err)
	}
	m, err := sys.Build()
	if err != nil {
		b.Fatal(err)
	}
	return m, core.Options{
		Alpha:          core.HorizonToAlpha(1e5),
		Initial:        core.Delta(m.N, 0),
		Objective:      core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds:         []core.Bound{{Metric: core.MetricPenalty, Rel: lp.LE, Value: 2}},
		SkipEvaluation: true,
	}
}

// BenchmarkLargeComposite is the before/after record of the sparse
// end-to-end refactor: the same 3-disk composite policy LP solved by the
// sparse pipeline (CSR compilation + column-sparse revised simplex) and by
// the retained dense tableau (lp.SolveDense). On the queue-4 instance the
// two follow identical pivot sequences and agree to ~1e-11, so the ns/op
// and allocs/op ratios in BENCH.json are a pure algorithm comparison; the
// dense leg of the queue-8 instance is omitted because the full tableau
// takes minutes there (the sparse leg is the demonstration that the size
// is now tractable at all).
func BenchmarkLargeComposite(b *testing.B) {
	b.Run("sparse-q4", func(b *testing.B) {
		m, opts := largeComposite(b, 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Optimize(m, opts)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(res.LPIterations), "pivots")
			}
		}
	})
	b.Run("dense-q4", func(b *testing.B) {
		m, opts := largeComposite(b, 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prob, err := core.BuildFrequencyLP(m, opts)
			if err != nil {
				b.Fatal(err)
			}
			sol, err := lp.SolveDense(prob)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(sol.Iterations), "pivots")
			}
		}
	})
	b.Run("sparse-q8", func(b *testing.B) {
		m, opts := largeComposite(b, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Optimize(m, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHeterogeneous is the record of the factored Kronecker composite
// pipeline on device networks the dense path cannot represent at all.
//
//   - build-k6: compile a six-component platform (disk+CPU+NIC+disk+NIC+disk,
//     972 joint SP states, queue capacity 4 → 9,720 system states) with
//     single-command-bus masking collapsing the 144-command joint space to 8.
//     The dense enumeration this replaces would materialize 144 matrices of
//     972² floats (~1.1 TB) before masking — the factored build's B/op is
//     the nonzeros it actually keeps, which is why the leg runs ReportAllocs:
//     it is the alloc record that nothing scales with |S_p|² or the unmasked
//     A = Π aᵢ (the compiled Model still tabulates its metrics densely, but
//     only over the masked command set).
//   - solve-k5: an optimize query end to end on the five-component platform
//     (324 joint SP states × 72 joint commands ≈ 2.3·10⁴ state–command pairs
//     before masking, 648 system states × 7 commands after) — power
//     minimization under a drop-rate bound, with the solver work (pivots,
//     basis refactorizations, factor nonzeros) reported next to wall time.
//     At this size the auto solver runs the sparse LU + Forrest–Tomlin
//     kernel with Devex pricing; the dense-LU "before" leg of the same
//     instance is the 3× headline of the sparse-basis refactor.
//   - solve-k6: the same query on the six-component, queue-4 platform
//     (9,720 system states, ~7.8·10⁴ LP columns) — a basis size where the
//     dense m×m kernel is not allocatable in reasonable memory and only the
//     sparse factorizer completes, which is why there is no dense leg.
func BenchmarkHeterogeneous(b *testing.B) {
	b.Run("build-k6", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys, err := devices.HeterogeneousSystem(6, 4, core.TwoStateSR("w", 0.05, 0.2))
			if err != nil {
				b.Fatal(err)
			}
			m, err := sys.Build()
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				nnz := 0
				for _, p := range m.P {
					nnz += p.NNZ()
				}
				b.ReportMetric(float64(m.N), "states")
				b.ReportMetric(float64(m.A), "commands")
				b.ReportMetric(float64(nnz), "nnz")
			}
		}
	})
	b.Run("solve-k5", func(b *testing.B) {
		sys, err := devices.HeterogeneousSystem(5, 0, core.TwoStateSR("w", 0.05, 0.2))
		if err != nil {
			b.Fatal(err)
		}
		m, err := sys.Build()
		if err != nil {
			b.Fatal(err)
		}
		opts := core.Options{
			Alpha:          core.HorizonToAlpha(1e5),
			Initial:        core.Delta(m.N, 0),
			Objective:      core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
			Bounds:         []core.Bound{{Metric: core.MetricDrops, Rel: lp.LE, Value: 0.04}},
			SkipEvaluation: true,
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Optimize(m, opts)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				reportSolveStats(b, res)
			}
		}
	})
	// solve-k5-mon is solve-k5 with a flight recorder attached at the
	// default cadence — the monitor-overhead record. Its ns/op sits next
	// to solve-k5 in BENCH.json, so benchtrend gates the observability
	// layer's cost the same way it gates the solver itself (the monitor
	// determinism tests prove the trajectory is unchanged; this leg
	// proves the walltime is too).
	b.Run("solve-k5-mon", func(b *testing.B) {
		m, opts := solveK5(b)
		mon := &countingMonitor{}
		opts.LPMonitor = mon
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Optimize(m, opts)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				reportSolveStats(b, res)
				b.ReportMetric(float64(mon.events)/float64(b.N), "mon_events")
			}
		}
	})
	b.Run("solve-k6", func(b *testing.B) {
		if testing.Short() {
			b.Skip("skipping in -short mode: ~2 min per iteration")
		}
		sys, err := devices.HeterogeneousSystem(6, 4, core.TwoStateSR("w", 0.05, 0.2))
		if err != nil {
			b.Fatal(err)
		}
		m, err := sys.Build()
		if err != nil {
			b.Fatal(err)
		}
		opts := core.Options{
			Alpha:           core.HorizonToAlpha(1e5),
			Initial:         core.Delta(m.N, 0),
			Objective:       core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
			Bounds:          []core.Bound{{Metric: core.MetricDrops, Rel: lp.LE, Value: 0.04}},
			SkipEvaluation:  true,
			LPFactorization: lp.FactorSparse,
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Optimize(m, opts)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				reportSolveStats(b, res)
			}
		}
	})
}

// BenchmarkFactoredEval is the record of the matrix-free Kronecker
// evaluation path: stationary analysis plus a 10⁵-slice simulation of the
// heterogeneous platform, entirely against lazy factored operators. The
// factored-k6 and expanded-k6 legs run the identical query on the identical
// system — the only difference is the representation — so their B/op ratio
// is the headline: factored allocations scale with Σᵢ nnz(partᵢ) while the
// expanded leg compiles eight joint CSR chains of ~1.26M total nonzeros
// first. The joint_chains metric proves the factored legs never compiled a
// joint chain, and factored-k8 (87,480 composed states) runs a size the
// expanded build path has no business touching per-iteration.
func BenchmarkFactoredEval(b *testing.B) {
	run := func(b *testing.B, k int, expanded bool) {
		sr := core.TwoStateSR("w", 0.05, 0.2)
		b.ReportAllocs()
		b.ResetTimer()
		var states, chains float64
		for i := 0; i < b.N; i++ {
			sys, err := devices.HeterogeneousSystem(k, 4, sr)
			if err != nil {
				b.Fatal(err)
			}
			fsp := sys.SP.(*core.FactoredSP)
			var (
				ch *markov.Chain
				s  *sim.Simulator
			)
			if expanded {
				m, err := sys.Build()
				if err != nil {
					b.Fatal(err)
				}
				if ch, err = markov.NewCSR(m.P[0], 1e-7); err != nil {
					b.Fatal(err)
				}
				if s, err = sim.New(m, &policy.Constant{}, sim.Config{Seed: 1}); err != nil {
					b.Fatal(err)
				}
			} else {
				op, err := sys.CommandOp(0)
				if err != nil {
					b.Fatal(err)
				}
				if ch, err = markov.NewOp(op, 1e-7); err != nil {
					b.Fatal(err)
				}
				if s, err = sim.NewDirect(sys, &policy.Constant{}, sim.Config{Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := ch.StationaryIter(1e-10, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(100000); err != nil {
				b.Fatal(err)
			}
			if !expanded && fsp.CompiledChains() != 0 {
				b.Fatalf("factored leg compiled %d joint chains", fsp.CompiledChains())
			}
			states = float64(sys.NumStates())
			chains = float64(fsp.CompiledChains())
		}
		b.ReportMetric(states, "states")
		b.ReportMetric(chains, "joint_chains")
	}
	b.Run("factored-k6", func(b *testing.B) { run(b, 6, false) })
	b.Run("expanded-k6", func(b *testing.B) { run(b, 6, true) })
	b.Run("factored-k8", func(b *testing.B) { run(b, 8, false) })
}

// BenchmarkComposeDisk measures system compilation (Eq. 4 composition).
func BenchmarkComposeDisk(b *testing.B) {
	sr := core.TwoStateSR("w", 0.002, 0.3)
	sys := devices.DiskSystem(sr)
	for i := 0; i < b.N; i++ {
		if _, err := sys.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// Example of using the public facade end to end; doubles as compile-time
// verification that the re-exported API is usable.
func Example() {
	sys := devices.ExampleSystem()
	m, err := sys.Build()
	if err != nil {
		panic(err)
	}
	res, err := core.Optimize(m, core.Options{
		Alpha:     core.HorizonToAlpha(1e5),
		Initial:   core.Delta(m.N, 0),
		Objective: core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds:    []core.Bound{{Metric: core.MetricPenalty, Rel: lp.LE, Value: 0.5}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal power below always-on: %v\n", res.Objective < 3)
	// Output: optimal power below always-on: true
}
