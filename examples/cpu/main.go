// CPU case study (paper Section VI-C and Example 7.1): the SA-1100
// processor with wake-on-request, where the power manager's only real
// decision is when to issue the shutdown command. Two experiments:
//
//  1. On a stationary Markovian workload, optimal stochastic control
//     dominates the timeout heuristic (Fig. 9(b)) — the timeout policy
//     burns power while waiting for its timer.
//  2. On a non-stationary workload (text editing followed by compilation),
//     the Markov assumption breaks and some timeouts beat the stochastic
//     policy on the real trace (Fig. 10) — the paper's own caveat about
//     the model's domain of validity.
//
// Run with: go run ./examples/cpu
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/devices"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	fmt.Println("=== stationary workload: optimal control vs timeout (Fig. 9(b)) ===")
	counts := trace.OnOff(rng, 200000, 0.02, 0.10) // 50 ms slices
	stationaryStudy(counts)

	fmt.Println()
	fmt.Println("=== non-stationary workload: editing then compiling (Fig. 10) ===")
	merged := trace.Concat(trace.Editor(rng, 100000), trace.Compile(rng, 100000))
	nonStationaryStudy(merged)
}

func buildCPU(counts []int) (*repro.System, *repro.Model, *repro.ServiceRequester) {
	sr, err := trace.ExtractSR("cpu-workload", counts, 1)
	if err != nil {
		log.Fatal(err)
	}
	sys := repro.CPUSystem(sr)
	model, err := sys.Build()
	if err != nil {
		log.Fatal(err)
	}
	return sys, model, sr
}

func stationaryStudy(counts []int) {
	sys, model, _ := buildCPU(counts)
	initial := repro.State{SP: devices.CPUActive}

	fmt.Println("optimal stochastic control (penalty = P(request arrives while asleep)):")
	for _, bound := range []float64{0.002, 0.01, 0.05} {
		res, err := repro.Optimize(model, repro.Options{
			Alpha:          repro.HorizonToAlpha(1e5),
			Initial:        repro.Delta(model.N, sys.Index(initial)),
			Objective:      repro.Objective{Metric: repro.MetricPower, Sense: repro.Minimize},
			Bounds:         []repro.Bound{{Metric: repro.MetricPenalty, Rel: repro.LE, Value: bound}},
			SkipEvaluation: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  penalty ≤ %.3f: %.4f W (active: 0.3 W)\n", bound, res.Objective)
	}

	fmt.Println("timeout heuristic, simulated on the Markov model:")
	for _, timeout := range []int64{0, 10, 50} {
		ctrl := &policy.Timeout{WakeCmd: devices.CPURun, SleepCmd: devices.CPUShutdown, Timeout: timeout}
		s, err := sim.New(model, ctrl, sim.Config{Seed: 5, Initial: initial})
		if err != nil {
			log.Fatal(err)
		}
		st, err := s.Run(500000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  T=%3d slices:   %.4f W at penalty %.4f\n",
			timeout, st.Averages[repro.MetricPower], st.Averages[repro.MetricPenalty])
	}
	fmt.Println("at matched penalty, the optimal curve sits below every timeout point.")
}

func nonStationaryStudy(counts []int) {
	sys, model, _ := buildCPU(counts)
	initial := repro.State{SP: devices.CPUActive}

	fmt.Println("policies measured on the real (non-Markovian) trace:")
	res, err := repro.Optimize(model, repro.Options{
		Alpha:          repro.HorizonToAlpha(1e5),
		Initial:        repro.Delta(model.N, sys.Index(initial)),
		Objective:      repro.Objective{Metric: repro.MetricPower, Sense: repro.Minimize},
		Bounds:         []repro.Bound{{Metric: repro.MetricPenalty, Rel: repro.LE, Value: 0.01}},
		SkipEvaluation: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := policy.NewStationary(sys, res.Policy, 9)
	if err != nil {
		log.Fatal(err)
	}
	s, err := sim.New(model, ctrl, sim.Config{Seed: 9, Initial: initial})
	if err != nil {
		log.Fatal(err)
	}
	st, err := s.RunTrace(counts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  stochastic (penalty ≤ 0.01 on model): %.4f W at measured penalty %.4f\n",
		st.Averages[repro.MetricPower], st.Averages[repro.MetricPenalty])

	for _, timeout := range []int64{5, 20, 100} {
		tc := &policy.Timeout{WakeCmd: devices.CPURun, SleepCmd: devices.CPUShutdown, Timeout: timeout}
		ts, err := sim.New(model, tc, sim.Config{Seed: 9, Initial: initial})
		if err != nil {
			log.Fatal(err)
		}
		tst, err := ts.RunTrace(counts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  timeout T=%3d:                        %.4f W at measured penalty %.4f\n",
			timeout, tst.Averages[repro.MetricPower], tst.Averages[repro.MetricPenalty])
	}
	fmt.Println("with the stationarity assumption violated, timeouts can match or beat")
	fmt.Println("stochastic control — optimality holds only within the model's domain.")
}
