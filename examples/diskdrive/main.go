// Disk-drive case study (paper Section VI-A): the full pipeline of the
// paper's tool on the Table-I hard disk —
//
//  1. generate a bursty request trace (substituting for the Auspex traces),
//  2. extract a two-state workload model with the SR extractor,
//  3. compose the 66-state controlled Markov chain,
//  4. optimize power under latency and congestion constraints,
//  5. validate the policy by trace-driven simulation, and
//  6. compare against the classic timeout spin-down heuristic.
//
// Run with: go run ./examples/diskdrive
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/devices"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// 1. Synthetic disk traffic at 1 ms slices: ~3 ms request bursts
	//    separated by ~500 ms idle gaps.
	rng := rand.New(rand.NewSource(42))
	counts := trace.OnOff(rng, 300000, 1.0/500, 1.0/3)
	st := trace.CountStats(counts)
	fmt.Printf("trace: %d slices, busy fraction %.4f, mean idle gap %.0f ms\n",
		st.Slices, st.BusyFraction, st.MeanIdleRun)

	// 2. SR extraction (paper Section V).
	sr, err := trace.ExtractSR("disk-workload", counts, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted SR: P(idle→busy)=%.5f, P(busy→busy)=%.5f\n\n",
		sr.P.At(0, 1), sr.P.At(1, 1))

	// 3. Compose the system: 11 SP states × 2 SR states × 3 queue states.
	sys := repro.DiskSystem(sr)
	model, err := sys.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disk system: %d states × %d commands\n", model.N, model.A)

	// 4. Minimum power subject to a mean waiting time of at most 40 ms
	//    (converted to a queue bound via Little's law) over ~5 min
	//    sessions.
	waitBound, err := repro.WaitingTimeBound(sr, 40)
	if err != nil {
		log.Fatal(err)
	}
	initial := repro.State{SP: devices.DiskActive}
	res, err := repro.Optimize(model, repro.Options{
		Alpha:            repro.HorizonToAlpha(float64(len(counts))),
		Initial:          repro.Delta(model.N, sys.Index(initial)),
		Objective:        repro.Objective{Metric: repro.MetricPower, Sense: repro.Minimize},
		Bounds:           []repro.Bound{waitBound},
		UnvisitedCommand: devices.DiskGoActive,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal policy: %.4f W expected (always-active: 2.5 W), E[queue]=%.4f\n",
		res.Objective, res.Averages[repro.MetricPenalty])

	// 5. Trace-driven validation (the circles of Fig. 8(b)).
	ctrl, err := policy.NewStationary(sys, res.Policy, 7)
	if err != nil {
		log.Fatal(err)
	}
	s, err := sim.New(model, ctrl, sim.Config{Seed: 7, Initial: initial})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := s.RunTrace(counts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace-driven simulation: %.4f W measured, E[queue]=%.4f, mean wait %.1f ms\n\n",
		stats.Averages[repro.MetricPower], stats.Averages[repro.MetricPenalty], stats.AvgWait)

	// 6. The classic heuristic: spin down to standby after a fixed timeout.
	fmt.Println("timeout heuristic (spin down to standby after T idle):")
	for _, timeout := range []int64{100, 1000, 5000} {
		tc := &policy.Timeout{WakeCmd: devices.DiskGoActive, SleepCmd: devices.DiskGoStandby, Timeout: timeout}
		ts, err := sim.New(model, tc, sim.Config{Seed: 7, Initial: initial})
		if err != nil {
			log.Fatal(err)
		}
		tstats, err := ts.RunTrace(counts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  T=%5d ms: %.4f W, mean wait %.1f ms\n",
			timeout, tstats.Averages[repro.MetricPower], tstats.AvgWait)
	}
	fmt.Println("\nthe optimal stochastic policy meets its latency bound at lower power than")
	fmt.Println("any single timeout setting — the tradeoff the paper's Fig. 8(b) plots.")
}
