// Web-server case study (paper Section VI-B): power management of a system
// with multiple service providers — two non-identical processors that the
// power manager can switch on and off independently. The optimization
// minimizes power under a floor on delivered throughput, and the resulting
// policies expose the paper's structural finding: the faster but
// power-hungrier processor is never used alone, because time-sharing
// between "processor 1 alone" and "both processors" delivers the same
// throughput for less power.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/devices"
	"repro/internal/trace"
)

func main() {
	// A day of synthetic HTTP traffic at 1 s slices with a diurnal rate
	// swing, reduced to a two-state workload model.
	rng := rand.New(rand.NewSource(3))
	counts := trace.DiurnalPoisson(rng, 86400, 43200, 0.01, 3.0)
	sr, err := trace.ExtractSRLevels("http", counts, 1)
	if err != nil {
		log.Fatal(err)
	}
	busy, err := sr.MeanArrivalRate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: busy fraction %.3f, P(busy→busy)=%.3f\n\n", busy, sr.P.At(1, 1))

	sys := repro.WebServerSystem(sr)
	model, err := sys.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("floor(×busy)   power(W)   P1-alone   P2-alone   both   off")
	for _, frac := range []float64{0.3, 0.5, 0.7, 0.9} {
		res, err := repro.Optimize(model, repro.Options{
			Alpha:     repro.HorizonToAlpha(86400),
			Initial:   repro.Delta(model.N, sys.Index(repro.State{SP: devices.WebBothOn})),
			Objective: repro.Objective{Metric: repro.MetricPower, Sense: repro.Minimize},
			Bounds: []repro.Bound{
				{Metric: devices.WebMetricThroughput, Rel: repro.GE, Value: frac * busy},
			},
			SkipEvaluation: true,
		})
		if err != nil {
			fmt.Printf("%-14g infeasible\n", frac)
			continue
		}
		// Configuration occupancy under the optimal policy.
		var occ [4]float64
		for i := 0; i < model.N; i++ {
			occ[sys.StateOf(i).SP] += res.Frequencies.Row(i).Sum()
		}
		fmt.Printf("%-14g %-10.4f %-10.4f %-10.4f %-6.4f %-6.4f\n",
			frac, res.Objective,
			occ[devices.WebP1Only], occ[devices.WebP2Only], occ[devices.WebBothOn], occ[devices.WebBothOff])
	}
	fmt.Println("\nP2-alone occupancy is ~0 at every floor: the faster processor is never")
	fmt.Println("used alone (2 W for 0.6 throughput loses to a 1.67 W mix of P1 and both).")
}
