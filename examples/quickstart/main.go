// Quickstart: build the paper's running example system, compute the optimal
// power-management policy under performance and request-loss constraints
// (paper Example A.2), and cross-check the optimizer's prediction with the
// exact Markov-chain evaluation — the whole pipeline in ~50 lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The two-state on/off provider with the bursty two-state workload and
	// a single-slot queue (paper Examples 3.1-3.5): 8 composed states.
	sys := repro.ExampleSystem()
	model, err := sys.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system %q: %d states × %d commands\n", sys.Name, model.N, model.A)

	// Minimize expected power over sessions of ~10^5 slices, holding the
	// average backlog at or below half a request and the congestion
	// (full-queue) probability at or below 0.3.
	start := sys.Index(repro.State{SP: 0, SR: 0, Q: 0}) // on, idle, empty
	res, err := repro.Optimize(model, repro.Options{
		Alpha:     repro.HorizonToAlpha(1e5),
		Initial:   repro.Delta(model.N, start),
		Objective: repro.Objective{Metric: repro.MetricPower, Sense: repro.Minimize},
		Bounds: []repro.Bound{
			{Metric: repro.MetricPenalty, Rel: repro.LE, Value: 0.5},
			{Metric: repro.MetricLoss, Rel: repro.LE, Value: 0.3},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("optimal expected power: %.4f W (always-on costs 3 W)\n", res.Objective)
	fmt.Printf("expected queue length:  %.4f (bound 0.5)\n", res.Averages[repro.MetricPenalty])
	fmt.Printf("congestion probability: %.4f (bound 0.3)\n", res.Averages[repro.MetricLoss])

	// Theorem A.2: with an active constraint the optimal policy randomizes.
	fmt.Println("\noptimal policy (rows: state, columns: P[s_on], P[s_off]):")
	for s := 0; s < model.N; s++ {
		dist := res.Policy.CommandDist(s)
		fmt.Printf("  %-10s  %.6f  %.6f\n", sys.StateName(s), dist[0], dist[1])
	}

	// The LP's prediction must agree with the exact evaluation of the
	// extracted policy — the consistency check of the paper's tool.
	diff := res.Eval.Average(repro.MetricPower) - res.Objective
	fmt.Printf("\nLP vs exact evaluation of the policy: Δ = %.2e W\n", diff)
}
