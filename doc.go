// Package repro is a Go reproduction of Benini, Bogliolo, Paleologo and
// De Micheli, "Policy Optimization for Dynamic Power Management" (DAC 1998;
// extended in IEEE TCAD 18(6), June 1999): stochastic modeling of
// power-managed systems as controlled Markov chains, and exact
// polynomial-time policy optimization via linear programming over
// state-action frequencies.
//
// This top-level package is a facade re-exporting the core modeling and
// optimization API; the implementation lives in the internal packages:
//
//   - internal/core — the paper's model (service provider / requester /
//     queue, composition, policies, LP2/LP3/LP4 policy optimization,
//     Pareto exploration);
//   - internal/lp — two-phase revised simplex over a column-sparse
//     constraint matrix behind one configurable entry point, lp.Solver
//     (see "Solver architecture" below): pluggable basis factorizations
//     (dense LU with an eta file, or Markowitz-ordered sparse LU with
//     Forrest–Tomlin updates) and pricing rules (Dantzig, Devex, partial)
//     selected by functional options or by problem size, plus
//     optimal-basis export/import (lp.Basis) so the closely related LPs
//     of a Pareto sweep warm-start each other, with dual-simplex
//     restoration when a bound change breaks feasibility; a per-solve
//     flight recorder (lp.WithMonitor) streams read-only iteration
//     snapshots — pivots, objective, infeasibilities, and the sparse
//     kernel's numerical-health counters (mat.HealthStats) — without
//     perturbing the pivot trajectory; the legacy
//     dense tableau survives behind lp.FactorTableau for parity tests and
//     benchmarks;
//   - internal/sweep — the concurrent sweep engine: a bounded
//     GOMAXPROCS-sized worker pool with deterministic input-ordered
//     results (sweep.Map), and chunked warm-started Pareto tracing
//     (sweep.Pareto) that reproduces the sequential curve point for
//     point with identical objectives;
//   - internal/markov — Markov-chain analysis over a minimal operator
//     interface (markov.Op: one distribution step plus row sampling), so a
//     chain is either an explicit CSR or a matrix-free operator
//     (markov.NewOp). Stationary distributions, discounted values and
//     occupancies dispatch between the dense-LU direct solves (small
//     explicit chains — also the parity oracle) and iterative matrix-free
//     paths (damped power iteration, geometric-series accumulation) for
//     large or operator-backed chains;
//   - internal/policy — heuristic power managers (greedy, timeout,
//     randomized timeout) and the stationary-policy controller;
//   - internal/sim — the slotted stochastic simulation engine (model-,
//     session- and trace-driven), with a Model-free mode (sim.NewDirect)
//     that evaluates metrics on demand and steps factored composites one
//     part at a time;
//   - internal/trace — request traces, the SR extractor and synthetic
//     workload generators;
//   - internal/mat — the linear-algebra substrate: dense vectors and
//     matrices with an LU solver, the sparse kernel (triplet builder,
//     CSR/CSC, sparse×dense products, stochastic validation on sparse
//     form) that the composed chains and the LP columns live in, and the
//     sparse Kronecker kernels (mat.Kron, mat.KronAll) that compile
//     product chains directly in CSR and the lazy Kronecker operator
//     (mat.KronOp) that applies and samples the product without forming
//     it;
//   - internal/devices — the paper's case-study models (example system,
//     Appendix-B baseline, Table-I disk drive, web server, SA-1100 CPU)
//     plus the composite fixtures: mini-disk, NIC, the k-disk
//     MultiDiskSystem and the masked disk+CPU+NIC HeterogeneousSystem;
//   - internal/server — the resident policy-serving subsystem behind
//     cmd/dpmserved: an HTTP/JSON daemon holding compiled models resident,
//     answering optimize/sweep queries from a cache keyed by a content
//     fingerprint of (model parameters, discount, objective, constraints).
//     Exact hits return cached results with zero pivots, near hits
//     warm-start from the nearest cached basis, concurrent identical
//     queries share one solve, per-request deadlines cancel the
//     simplex mid-pivot (OptimizeCtx → lp.Solver.Solve), requests may pin
//     solver strategies and pivot budgets (factorization / pricing /
//     max_pivots), and the warm-start basis cache persists across
//     restarts (-cache-file).
//     Endpoints: POST /v1/models, GET /v1/models,
//     POST /v1/models/{id}/observe, POST /v1/optimize, POST /v1/sweep,
//     GET /v1/solves (live solve table + event journal),
//     DELETE /v1/solves/{id} (cancel one in-flight solve),
//     GET /v1/healthz, GET /v1/stats, GET /metrics, GET /v1/trace — see
//     the README's "Serving mode" and "Live solve introspection"
//     sections for curl examples and cache semantics;
//   - internal/online — the streaming adaptation subsystem behind the
//     observe endpoint: an incremental exponentially-decayed form of the
//     trace extractor (O(1) per slice), a drift controller comparing the
//     estimate to the served workload model by per-row total-variation
//     distance, and drift-triggered re-solves that revise the resident LP
//     in place (core.PatchFrequencyLP) and warm-start from the previous
//     optimal basis under a bounded solve budget;
//   - internal/obs — the observability layer threaded through
//     server → core → lp → online: per-request span traces carried on
//     context.Context (cache lookup, LP build/patch, solve with pivot and
//     per-stage timing annotations; last-N retrieval via GET /v1/trace),
//     lock-cheap log-bucketed latency/pivot histograms exported with
//     p50/p90/p99 on /v1/stats and as Prometheus histogram series on
//     /metrics, gauges and a bounded event journal backing the live
//     /v1/solves table (watchable with cmd/dpmtop), and structured
//     slog-based debug logging that the env-gated LPDEBUG/LUDEBUG
//     streams route through;
//   - internal/load — the closed-/open-loop load generator behind
//     cmd/dpmload, driving mixed exact-hit/warm/cold/observe traffic and
//     merging measured req/s and latency quantiles into BENCH.json as
//     LoadServed entries gated by cmd/benchtrend;
//   - internal/experiments — one runner per paper table/figure.
//
// A minimal end-to-end use:
//
//	sys := repro.ExampleSystem()            // Examples 3.1-3.7 of the paper
//	model, _ := sys.Build()                 // composed controlled Markov chain
//	res, _ := repro.Optimize(model, repro.Options{
//	        Alpha:     repro.HorizonToAlpha(1e5),
//	        Objective: repro.Objective{Metric: repro.MetricPower, Sense: repro.Minimize},
//	        Bounds:    []repro.Bound{{Metric: repro.MetricPenalty, Rel: repro.LE, Value: 0.5}},
//	})
//	fmt.Println(res.Objective, res.Policy)
//
// # Composite and heterogeneous systems
//
// Networks of independent service providers (paper Section VII) are built
// in factored form with core.Composite: the parts, a service-rate combiner,
// and optional command masks. Build compiles the joint chain instead of
// enumerating it — each joint per-command transition matrix is the
// Kronecker product of the part chains, assembled directly in CSR
// (mat.KronAll), and the joint power/rate surfaces are evaluated on demand
// from the factors, so the provider keeps no dense |S|×|S| or |S|×|A|
// table and nothing scales with the unmasked command space (the compiled
// system Model still tabulates metrics densely over the masked commands
// only). The compiled *core.FactoredSP satisfies the same
// core.Provider contract as a hand-written *core.ServiceProvider and drops
// into a System anywhere one does (build, optimize, serve, simulate).
//
// Masking is how the A = Π aᵢ joint-command blowup is tamed:
// Composite.PartCommands restricts each part to a subset of its own
// commands, and Composite.Allow prunes joint combinations — e.g. the
// single-command-bus discipline ("retarget at most one component per
// slice") used by devices.HeterogeneousSystem, which collapses a
// six-component platform's 144 joint commands to 8. The legacy dense
// CompositeSP remains as the parity reference; the factored path is
// exercised against it to 1e-8 by the randomized parity suite.
//
// Compilation itself is lazy: a FactoredSP stores only the per-command
// factor lists, and expands a joint Kronecker CSR the first time Chain is
// called for that command (Model compilation, LP assembly). Evaluation
// never calls it — System.CommandOp / System.PolicyOp expose the composed
// Eq. 4 chain as a matrix-free three-stage operator (SR sweep, queue
// kernels, lazy Kronecker SP sweep), EvaluateFactored computes a policy's
// exact discounted metrics against it iteratively, and sim.NewDirect
// simulates the system with per-part successor sampling — so policies on
// platforms whose joint chains are too large to store can still be
// evaluated and simulated, at cost proportional to the factor nonzeros
// (see the README's "Factored evaluation" section).
//
// # Solver architecture
//
// All policy optimization funnels into one object: lp.NewSolver(options...)
// builds an immutable, concurrency-safe Solver, and Solve(ctx, p, warm) runs
// one two-phase revised-simplex solve under it. Two strategy axes are
// pluggable per solve:
//
//   - Factorization (lp.WithFactorization) — how B⁻¹ is represented.
//     FactorDense keeps a dense LU of the m×m basis with product-form eta
//     updates: unbeatable constant factors while the basis fits in cache,
//     hopeless beyond a few thousand rows. FactorSparse keeps a sparse LU
//     ordered by Markowitz counts under threshold partial pivoting, updated
//     in place by Forrest–Tomlin row etas: everything — factorization,
//     FTRAN/BTRAN, update — is O(nnz + fill), which is what lets the 10⁴-state
//     composite platforms solve at all. FactorTableau routes to the legacy
//     full-tableau reference. FactorAuto (the default) switches on basis size.
//   - Pricing (lp.WithPricing) — how the entering column is chosen.
//     PriceDantzig takes the most negative reduced cost: cheapest per
//     iteration, prone to long stalls on stiff instances. PriceDevex keeps
//     approximate steepest-edge reference weights, maintained in O(1) per
//     column touched by the pivot row: fewer, better pivots on the
//     ill-conditioned policy LPs (discounts at 1−10⁻⁶). PricePartial scans a
//     rotating window — for very wide programs where even reading every
//     reduced cost is the bottleneck. PriceAuto (the default) picks Devex on
//     large problems and Dantzig below.
//
// At sparse scale the pivot path is additionally stabilized: ratio-test
// pivots must clear a floor relative to the FTRAN direction's magnitude,
// and cold solves run on a deterministically jittered rhs that removes the
// massive primal degeneracy of policy LPs (the exact rhs is restored at
// optimality and any residual infeasibility repaired by dual simplex).
// Small problems keep the exact unperturbed pivot path.
//
// Resource bounds compose with both axes: lp.WithMaxPivots stops a solve
// after a pivot budget with Status lp.BudgetExceeded (an error matching
// lp.ErrBudgetExceeded — a resource verdict, not a statement about the
// problem), and lp.WithWallClock derives a deadline context. The strategy
// and budget knobs thread end to end: core.Options carries LPFactorization /
// LPPricing / LPMaxPivots, dpmserved accepts them per request (fingerprinted
// into its cache key), and the online adapter's Config.PivotBudget meters
// refresh work deterministically.
//
// # Solver performance
//
// The sparse path's per-pivot cost is contained by four mechanisms. The
// FTRAN/BTRAN triangular solves are hyper-sparse: Gilbert–Peierls-style
// symbolic reachability from the rhs support touches only the reachable
// pattern, falling back to the dense kernel when fill passes ~10% of n,
// with an adaptive streak gate that stops attempting symbolic walks while
// consecutive solves keep coming out dense. The pricing scans
// (entering-column selection, reduced-cost maintenance and recomputation)
// fan out over a bounded worker pool (lp.WithPricingWorkers) in fixed
// contiguous chunks reduced in deterministic order, so the pivot sequence
// is bit-identical at every worker count. The refactorization cadence
// scales with basis size (every 120 pivots, stretched to 960 at m ≥ 4096)
// because Markowitz elimination grows superlinearly with m while one more
// Forrest–Tomlin eta costs only its nonzeros; stability checks still force
// early refactorization when the chain degrades. And the elimination's row
// merges gallop: binary-search the eliminated column, bulk-copy untouched
// runs.
//
// Each solve accounts for its own time: lp.Solution.Timings splits the
// wall clock into ftran/btran/price/factor/update, and the breakdown
// threads through core.Result.LPTimings into cmd/dpmbench's per-experiment
// solver lines, dpmserved's /v1/stats and /metrics counters
// (solve_ftran_ns, …), and the BENCH.json stage metrics that
// cmd/benchtrend gates per stage.
//
// # Online adaptation
//
// The paper optimizes against one stationary workload model; the closing
// future-work direction (and the related fleet-controller work) closes the
// loop online. internal/online implements it end to end: a streaming
// k-memory SR estimator with exponential forgetting (decay d weights a
// slice observed t slices ago by d^t, an effective window of 1/(1−d)
// slices; d = 1 reproduces trace.ExtractSR exactly), a drift controller
// that re-solves when any sufficiently-evidenced row of the estimate is
// more than a total-variation threshold away from the served model — the
// threshold adapts per row, widening by z standard errors of the row's
// evidence (Estimator.DriftAdaptive; Config.DriftZ, default 2) so thin
// rows need proportionally larger deviations to trigger — and a re-solve
// path that never rebuilds anything: core.PatchFrequencyLP rewrites only
// the SR-dependent coefficients of the resident sparse program
// (structure, bounds and sparsity pattern are reused; a probability
// moving to or from exact zero falls back to one fresh assembly),
// core.PatchModel revises the compiled Model in place the same way, and
// core.OptimizeProblemCtx solves it warm-started from the previous optimal
// basis under a bounded wall-clock budget — a failed or cancelled refresh
// keeps the previous policy serving. dpmserved exposes the loop as
// POST /v1/models/{id}/observe with refresh counters in /v1/stats, and
// cmd/dpmfeed streams synthetic drifting workloads at it.
//
// See README.md for the tool suite (cmd/...) and EXPERIMENTS.md for the
// paper-versus-measured record of every reproduced table and figure.
package repro

import (
	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
	"repro/internal/mat"
	"repro/internal/sweep"
)

// Core model types (paper Section III).
type (
	// ServiceProvider is the managed resource (Definition 3.1).
	ServiceProvider = core.ServiceProvider
	// ServiceRequester is the workload model (Definition 3.2).
	ServiceRequester = core.ServiceRequester
	// System composes SP, SR and the bounded queue (Definition 3.3, Eq. 4).
	System = core.System
	// State is a composed (SP, SR, queue) state triple.
	State = core.State
	// Model is a compiled System: per-command transition matrices plus
	// metric tables.
	Model = core.Model
	// Policy is a Markov stationary randomized policy (Definitions 3.5-3.7).
	Policy = core.Policy
	// Evaluation holds exact discounted per-slice averages of a policy.
	Evaluation = core.Evaluation
)

// Optimization types (paper Section IV and Appendix A).
type (
	// Options configures policy optimization.
	Options = core.Options
	// Objective selects the optimized metric and direction.
	Objective = core.Objective
	// Bound is a per-slice average constraint on a metric.
	Bound = core.Bound
	// Result is the outcome of policy optimization.
	Result = core.Result
	// ParetoPoint is one point of a tradeoff curve.
	ParetoPoint = core.ParetoPoint
	// SweepConfig tunes the concurrent sweep engine (workers, warm starts).
	SweepConfig = sweep.Config
	// SweepStats summarizes a finished sweep's solves.
	SweepStats = sweep.Stats
	// Basis is an exported optimal LP basis for warm-starting the next
	// structurally identical solve (Options.WarmBasis / Result.Basis).
	Basis = lp.Basis
	// Matrix and Vector are the dense linear-algebra types used throughout.
	Matrix = mat.Matrix
	Vector = mat.Vector
)

// Metric names available on every compiled model.
const (
	MetricPower   = core.MetricPower
	MetricPenalty = core.MetricPenalty
	MetricLoss    = core.MetricLoss
	MetricDrops   = core.MetricDrops
	MetricService = core.MetricService
)

// LP senses and relations.
const (
	Minimize = lp.Minimize
	Maximize = lp.Maximize
	LE       = lp.LE
	EQ       = lp.EQ
	GE       = lp.GE
)

// Core functions.
var (
	// Optimize solves the constrained policy-optimization LP and extracts
	// the optimal policy; OptimizeCtx is the same under a context whose
	// cancellation or deadline aborts the solve within one simplex pivot.
	Optimize    = core.Optimize
	OptimizeCtx = core.OptimizeCtx
	// ParetoSweep traces a power-performance tradeoff curve sequentially,
	// warm-starting consecutive points from each other's optimal basis.
	ParetoSweep = core.ParetoSweep
	// ParallelParetoSweep traces the same curve on a bounded worker pool
	// (context-cancellable, deterministic point order); ParetoSweepStats
	// tallies how its solves went.
	ParallelParetoSweep = sweep.Pareto
	ParetoSweepStats    = sweep.Tally
	// Evaluate computes exact discounted metrics of a policy;
	// EvaluateFactored is the Model-free mirror, running the same query
	// iteratively against matrix-free composed operators (never expanding
	// a factored provider's joint chains).
	Evaluate         = core.Evaluate
	EvaluateFactored = core.EvaluateFactored
	// BuildFrequencyLP assembles the LP2/LP3/LP4 frequency program in
	// sparse form without solving it (benchmarking, alternative solvers);
	// PatchFrequencyLP rewrites an assembled program's coefficients in
	// place for a structurally identical model (the online-adaptation fast
	// path), and OptimizeProblemCtx solves such a caller-held program.
	BuildFrequencyLP   = core.BuildFrequencyLP
	PatchFrequencyLP   = core.PatchFrequencyLP
	OptimizeProblemCtx = core.OptimizeProblemCtx
	// HorizonToAlpha converts an expected session length to a discount
	// factor; AlphaToHorizon inverts it.
	HorizonToAlpha = core.HorizonToAlpha
	AlphaToHorizon = core.AlphaToHorizon
	// WaitingTimeBound converts a mean-waiting-time bound to a queue bound
	// via Little's law.
	WaitingTimeBound = core.WaitingTimeBound
	// DeterministicPolicy, ConstantPolicy and NewPolicy build policies.
	DeterministicPolicy = core.DeterministicPolicy
	ConstantPolicy      = core.ConstantPolicy
	NewPolicy           = core.NewPolicy
	// TwoStateSR builds the ubiquitous two-state requester.
	TwoStateSR = core.TwoStateSR
	// Delta and Uniform build initial state distributions.
	Delta   = core.Delta
	Uniform = core.Uniform
)

// Prebuilt device models (paper Section VI and Appendix B).
var (
	// ExampleSystem is the running example of Sections III-IV.
	ExampleSystem = devices.ExampleSystem
	// DiskSystem is the Table-I disk drive (Section VI-A).
	DiskSystem = devices.DiskSystem
	// WebServerSystem is the two-processor server (Section VI-B).
	WebServerSystem = devices.WebServerSystem
	// CPUSystem is the SA-1100 model with wake-on-request (Section VI-C).
	CPUSystem = devices.CPUSystem
	// BaselineSystem is the Appendix-B baseline; DefaultBaseline its
	// parameters.
	BaselineSystem  = devices.BaselineSystem
	DefaultBaseline = devices.DefaultBaseline
	// MultiDiskSystem composes k mini-disks on a shared queue and
	// HeterogeneousSystem a masked disk+CPU+NIC platform, both compiled in
	// factored Kronecker form (Section VII device networks).
	MultiDiskSystem     = devices.MultiDiskSystem
	HeterogeneousSystem = devices.HeterogeneousSystem
)

// Factored composite types (Section VII device networks).
type (
	// Composite is the factored form of a network of independent service
	// providers: parts + rate combiner + command masks; Build compiles it
	// to a FactoredSP whose joint chains are CSR Kronecker products.
	Composite = core.Composite
	// FactoredSP is a compiled Composite, usable as System.SP.
	FactoredSP = core.FactoredSP
	// Provider is the service-provider contract System consumes; both
	// *ServiceProvider and *FactoredSP satisfy it.
	Provider = core.Provider
)
