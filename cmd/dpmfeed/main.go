// Command dpmfeed streams a synthetic drifting workload at a dpmserved
// daemon's online-adaptation endpoint, exercising the whole loop end to
// end: generate a two-regime Markov-modulated trace whose (p01, p10) switch
// mid-stream, POST it in chunks to /v1/models/{id}/observe, and report what
// the daemon's drift controller did with each chunk — ingest only, or a
// policy refresh (initial or drift-triggered), with its LP patch/rebuild
// path, warm-start status and pivot count.
//
// Usage:
//
//	dpmfeed -url http://localhost:8080 -model disk \
//	        -slices 3000 -flip 1500 -chunk 50 \
//	        -p01 0.03 -p10 0.25 -p01b 0.20 -p10b 0.10 \
//	        -bounds 'penalty<=1.8' -objective power -horizon 1e4
//
// The exit status is nonzero on transport or server errors, and — with
// -expect-drift (the default) — when the stream completes without a single
// drift-triggered refresh, which makes the command usable as a smoke-test
// assertion as well as a demo.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/trace"
)

type observeRequest struct {
	Counts         []int       `json:"counts"`
	Horizon        float64     `json:"horizon,omitempty"`
	Objective      string      `json:"objective,omitempty"`
	Bounds         []boundSpec `json:"bounds,omitempty"`
	TimeoutMS      int         `json:"timeout_ms,omitempty"`
	Memory         int         `json:"memory,omitempty"`
	Decay          float64     `json:"decay,omitempty"`
	DriftThreshold float64     `json:"drift_threshold,omitempty"`
	MinSlices      int         `json:"min_slices,omitempty"`
	MinEvidence    float64     `json:"min_evidence,omitempty"`
	CheckEvery     int         `json:"check_every,omitempty"`
}

type boundSpec struct {
	Metric string  `json:"metric"`
	Rel    string  `json:"rel"`
	Value  float64 `json:"value"`
}

type observeResponse struct {
	Slices       int64   `json:"slices"`
	Drift        float64 `json:"drift"`
	Refreshed    bool    `json:"refreshed"`
	Trigger      string  `json:"trigger"`
	Patched      bool    `json:"patched"`
	WarmStarted  bool    `json:"warm_started"`
	Pivots       int     `json:"pivots"`
	Refreshes    int     `json:"refreshes"`
	RefreshError string  `json:"refresh_error"`
	Serving      bool    `json:"serving"`
	Objective    float64 `json:"objective"`
	ElapsedMS    float64 `json:"elapsed_ms"`
}

func main() {
	url := flag.String("url", "http://localhost:8080", "dpmserved base URL")
	model := flag.String("model", "disk", "model id or registered name to adapt")
	slices := flag.Int("slices", 3000, "total workload slices to stream")
	flip := flag.Int("flip", 0, "slice at which the regime switches (default: halfway)")
	chunk := flag.Int("chunk", 50, "slices per observe request")
	p01 := flag.Float64("p01", 0.03, "idle→busy probability of the first regime")
	p10 := flag.Float64("p10", 0.25, "busy→idle probability of the first regime")
	p01b := flag.Float64("p01b", 0.20, "idle→busy probability after the flip")
	p10b := flag.Float64("p10b", 0.10, "busy→idle probability after the flip")
	seed := flag.Int64("seed", 1, "workload generator seed")

	objective := flag.String("objective", "power", "objective metric the refreshed policies minimize")
	horizon := flag.Float64("horizon", 1e4, "expected session length in slices")
	bounds := flag.String("bounds", "penalty<=1.8", "comma-separated metric bounds, e.g. 'penalty<=1.8'")
	timeout := flag.Duration("timeout", 0, "per-refresh solve budget (0: server default)")

	memory := flag.Int("memory", 1, "estimator history length k")
	decay := flag.Float64("decay", 0.995, "estimator per-slice decay factor")
	threshold := flag.Float64("drift-threshold", 0.05, "max per-row TV distance before a re-solve")
	minSlices := flag.Int("min-slices", 300, "observed transitions before the first solve")
	minEvidence := flag.Float64("min-evidence", 8, "decayed row evidence floor for the drift measure")
	checkEvery := flag.Int("check-every", 25, "ingested slices between drift checks")

	expectDrift := flag.Bool("expect-drift", true, "exit nonzero unless ≥1 drift refresh happened")
	quiet := flag.Bool("q", false, "only print refresh lines and the summary")
	flag.Parse()

	if err := run(feedConfig{
		url: strings.TrimRight(*url, "/"), model: *model,
		slices: *slices, flip: *flip, chunk: *chunk,
		p01: *p01, p10: *p10, p01b: *p01b, p10b: *p10b, seed: *seed,
		objective: *objective, horizon: *horizon, bounds: *bounds, timeout: *timeout,
		memory: *memory, decay: *decay, threshold: *threshold,
		minSlices: *minSlices, minEvidence: *minEvidence, checkEvery: *checkEvery,
		expectDrift: *expectDrift, quiet: *quiet,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "dpmfeed: %v\n", err)
		os.Exit(1)
	}
}

type feedConfig struct {
	url, model            string
	slices, flip, chunk   int
	p01, p10, p01b, p10b  float64
	seed                  int64
	objective             string
	horizon               float64
	bounds                string
	timeout               time.Duration
	memory                int
	decay, threshold      float64
	minSlices, checkEvery int
	minEvidence           float64
	expectDrift, quiet    bool
}

func run(cfg feedConfig) error {
	if cfg.slices < 2 || cfg.chunk < 1 {
		return fmt.Errorf("need -slices ≥ 2 and -chunk ≥ 1")
	}
	flip := cfg.flip
	if flip <= 0 || flip >= cfg.slices {
		flip = cfg.slices / 2
	}
	coreBounds, err := cli.ParseBounds(cfg.bounds)
	if err != nil {
		return err
	}
	var specs []boundSpec
	for _, b := range coreBounds {
		specs = append(specs, boundSpec{Metric: b.Metric, Rel: b.Rel.String(), Value: b.Value})
	}

	rng := rand.New(rand.NewSource(cfg.seed))
	counts := trace.Concat(
		trace.OnOff(rng, flip, cfg.p01, cfg.p10),
		trace.OnOff(rng, cfg.slices-flip, cfg.p01b, cfg.p10b),
	)
	fmt.Printf("dpmfeed: streaming %d slices at %s/v1/models/%s/observe (regime flip at %d: (%.3g,%.3g)→(%.3g,%.3g))\n",
		len(counts), cfg.url, cfg.model, flip, cfg.p01, cfg.p10, cfg.p01b, cfg.p10b)

	client := &http.Client{Timeout: 5 * time.Minute}
	driftRefreshes, refreshes, pivots := 0, 0, 0
	for lo := 0; lo < len(counts); lo += cfg.chunk {
		hi := min(lo+cfg.chunk, len(counts))
		req := observeRequest{
			Counts:         counts[lo:hi],
			Horizon:        cfg.horizon,
			Objective:      cfg.objective,
			Bounds:         specs,
			TimeoutMS:      int(cfg.timeout / time.Millisecond),
			Memory:         cfg.memory,
			Decay:          cfg.decay,
			DriftThreshold: cfg.threshold,
			MinSlices:      cfg.minSlices,
			MinEvidence:    cfg.minEvidence,
			CheckEvery:     cfg.checkEvery,
		}
		var resp observeResponse
		if err := post(client, cfg.url+"/v1/models/"+cfg.model+"/observe", &req, &resp); err != nil {
			return fmt.Errorf("slices [%d,%d): %w", lo, hi, err)
		}
		if resp.RefreshError != "" {
			fmt.Printf("slice %5d  refresh failed: %s\n", hi, resp.RefreshError)
			continue
		}
		if resp.Refreshed {
			refreshes++
			pivots += resp.Pivots
			path := "rebuilt"
			if resp.Patched {
				path = "patched"
			}
			solve := "cold"
			if resp.WarmStarted {
				solve = "warm"
			}
			if resp.Trigger == "drift" {
				driftRefreshes++
			}
			fmt.Printf("slice %5d  %s refresh (%s, %s): drift %.3f, %d pivots, objective %.5f, %.1f ms\n",
				hi, resp.Trigger, path, solve, resp.Drift, resp.Pivots, resp.Objective, resp.ElapsedMS)
		} else if !cfg.quiet {
			fmt.Printf("slice %5d  ingested (drift %.3f, serving %v)\n", hi, resp.Drift, resp.Serving)
		}
	}
	fmt.Printf("dpmfeed: done — %d refreshes (%d drift-triggered), %d refresh pivots total\n",
		refreshes, driftRefreshes, pivots)
	if cfg.expectDrift && driftRefreshes == 0 {
		return fmt.Errorf("no drift-triggered refresh over %d slices", len(counts))
	}
	return nil
}

func post(client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return json.Unmarshal(data, out)
}
