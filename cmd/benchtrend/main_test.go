package main

import (
	"strings"
	"testing"
)

func rep(entries ...Entry) *Report { return &Report{Benchmarks: entries} }

func entry(name string, ns float64) Entry {
	return Entry{Package: "repro", Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns}}
}

func TestCompare(t *testing.T) {
	lim := limits{maxRatio: 2, minNS: 1e6, maxStageRatio: 3, minStageMS: 50, maxQuantileRatio: 2, minQuantileMS: 0.2}
	old := rep(
		entry("OptimizeDisk", 4e6),
		entry("SweepDisk", 12e6),
		entry("LargeComposite/sparse-q4", 400e6),
		entry("ComposeDisk", 0.2e6), // not headline
	)
	prefixes := []string{"OptimizeDisk", "SweepDisk", "LargeComposite"}

	// Within ratio: no regressions.
	cur := rep(
		entry("OptimizeDisk", 6e6),
		entry("SweepDisk", 11e6),
		entry("LargeComposite/sparse-q4", 500e6),
		entry("ComposeDisk", 5e6), // 25x, but not headline
	)
	if regs, _ := compare(old, cur, prefixes, lim); len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}

	// One headline bench 3x slower: exactly one regression.
	cur = rep(
		entry("OptimizeDisk", 12e6),
		entry("SweepDisk", 11e6),
		entry("LargeComposite/sparse-q4", 500e6),
	)
	regs, _ := compare(old, cur, prefixes, lim)
	if len(regs) != 1 || !strings.Contains(regs[0], "OptimizeDisk") {
		t.Errorf("regressions = %v, want one for OptimizeDisk", regs)
	}

	// A new sub-benchmark with no baseline is a note, not a failure.
	cur = rep(entry("LargeComposite/sparse-q16", 900e6))
	regs, notes := compare(old, cur, prefixes, lim)
	if len(regs) != 0 {
		t.Errorf("missing baseline treated as regression: %v", regs)
	}
	found := false
	for _, n := range notes {
		found = found || strings.Contains(n, "no previous record")
	}
	if !found {
		t.Errorf("missing-baseline note absent: %v", notes)
	}

	// Sub-floor baselines are skipped even when headline-matched.
	old2 := rep(entry("OptimizeDisk", 0.1e6))
	cur = rep(entry("OptimizeDisk", 10e6))
	if regs, _ := compare(old2, cur, prefixes, lim); len(regs) != 0 {
		t.Errorf("sub-floor baseline flagged: %v", regs)
	}
}

// stagedEntry builds an entry with a per-stage solver breakdown.
func stagedEntry(name string, ns, factorMS, priceMS float64) Entry {
	return Entry{Package: "repro", Name: name, Iterations: 1, Metrics: map[string]float64{
		"ns/op":     ns,
		"factor_ms": factorMS,
		"price_ms":  priceMS,
		"ftran_ms":  10, // below the 50ms stage floor: never compared
	}}
}

func TestCompareStages(t *testing.T) {
	lim := limits{maxRatio: 2, minNS: 1e6, maxStageRatio: 3, minStageMS: 50, maxQuantileRatio: 2, minQuantileMS: 0.2}
	prefixes := []string{"Heterogeneous"}
	old := rep(stagedEntry("Heterogeneous/solve-k5", 300e6, 100, 60))

	// A stage blowing up 5x inside an absorbed total is a regression even
	// though the wall clock stays under its own gate.
	cur := rep(stagedEntry("Heterogeneous/solve-k5", 450e6, 500, 55))
	regs, _ := compare(old, cur, prefixes, lim)
	if len(regs) != 1 || !strings.Contains(regs[0], "factor_ms") {
		t.Errorf("regressions = %v, want one for factor_ms", regs)
	}

	// Stages within ratio (and sub-floor stages at any ratio) pass.
	cur = rep(stagedEntry("Heterogeneous/solve-k5", 320e6, 150, 90))
	if regs, _ := compare(old, cur, prefixes, lim); len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}

	// A stage disappearing from the report is a note, not a failure.
	cur = rep(entry("Heterogeneous/solve-k5", 320e6))
	regs, notes := compare(old, cur, prefixes, lim)
	if len(regs) != 0 {
		t.Errorf("missing stage treated as regression: %v", regs)
	}
	found := false
	for _, n := range notes {
		found = found || strings.Contains(n, "no longer reported")
	}
	if !found {
		t.Errorf("missing-stage note absent: %v", notes)
	}
}

// loadEntry builds a dpmload-shaped serving entry: mean latency plus the
// quantile headline metrics.
func loadEntry(name string, ns, p50, p90, p99 float64) Entry {
	return Entry{Package: "repro/cmd/dpmload", Name: name, Iterations: 100, Metrics: map[string]float64{
		"ns/op":     ns,
		"req_per_s": 1e9 / ns,
		"p50_ms":    p50,
		"p90_ms":    p90,
		"p99_ms":    p99,
		"errors":    0,
	}}
}

func TestCompareQuantiles(t *testing.T) {
	lim := limits{maxRatio: 2, minNS: 1e6, maxStageRatio: 3, minStageMS: 50, maxQuantileRatio: 2, minQuantileMS: 0.2}
	prefixes := []string{"LoadServed"}
	old := rep(loadEntry("LoadServed/conc=8", 2e6, 1.5, 4, 12))

	// A p99 blowup fails even though the mean stays within its own gate.
	cur := rep(loadEntry("LoadServed/conc=8", 3e6, 1.6, 4.5, 60))
	regs, _ := compare(old, cur, prefixes, lim)
	if len(regs) != 1 || !strings.Contains(regs[0], "p99_ms") {
		t.Errorf("regressions = %v, want one for p99_ms", regs)
	}

	// Quantiles gate independently of the ns/op noise floor: a sub-min-ns
	// mean does not exempt the tail.
	old2 := rep(loadEntry("LoadServed/conc=8", 0.5e6, 0.3, 0.8, 2))
	cur = rep(loadEntry("LoadServed/conc=8", 0.6e6, 0.35, 0.9, 9))
	regs, _ = compare(old2, cur, prefixes, lim)
	if len(regs) != 1 || !strings.Contains(regs[0], "p99_ms") {
		t.Errorf("sub-floor mean exempted the tail: regressions = %v", regs)
	}

	// Quantiles below the min-quantile-ms floor are never compared, and
	// in-ratio quantiles pass.
	old3 := rep(loadEntry("LoadServed/conc=2", 2e6, 0.1, 4, 12))
	cur = rep(loadEntry("LoadServed/conc=2", 2.5e6, 1.5 /* 15x off a 0.1ms base */, 6, 20))
	if regs, _ := compare(old3, cur, prefixes, lim); len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}

	// A quantile disappearing from the report is a note, not a failure.
	cur = rep(Entry{Package: "repro/cmd/dpmload", Name: "LoadServed/conc=8", Iterations: 100,
		Metrics: map[string]float64{"ns/op": 2.1e6}})
	regs, notes := compare(old, cur, prefixes, lim)
	if len(regs) != 0 {
		t.Errorf("missing quantile treated as regression: %v", regs)
	}
	found := false
	for _, n := range notes {
		found = found || strings.Contains(n, "p99_ms no longer reported")
	}
	if !found {
		t.Errorf("missing-quantile note absent: %v", notes)
	}
}

// allocEntry builds a ReportAllocs-shaped entry.
func allocEntry(name string, ns, bytes, allocs float64) Entry {
	return Entry{Package: "repro", Name: name, Iterations: 1, Metrics: map[string]float64{
		"ns/op":     ns,
		"B/op":      bytes,
		"allocs/op": allocs,
	}}
}

func TestCompareAllocs(t *testing.T) {
	lim := limits{maxRatio: 2, minNS: 1e6, maxStageRatio: 3, minStageMS: 50,
		maxQuantileRatio: 2, minQuantileMS: 0.2, maxAllocRatio: 3, minAllocBytes: 1e6, minAllocs: 1000}
	prefixes := []string{"FactoredEval"}
	old := rep(allocEntry("FactoredEval/factored-k6", 350e6, 1.3e6, 2e4))

	// A B/op blowup (the joint chain got compiled) fails even when the wall
	// clock stays within its own gate.
	cur := rep(allocEntry("FactoredEval/factored-k6", 500e6, 2.1e8, 2.6e5))
	regs, _ := compare(old, cur, prefixes, lim)
	if len(regs) != 2 || !strings.Contains(regs[0], "B/op") || !strings.Contains(regs[1], "allocs/op") {
		t.Errorf("regressions = %v, want B/op and allocs/op", regs)
	}

	// Within ratio: notes only.
	cur = rep(allocEntry("FactoredEval/factored-k6", 360e6, 2.5e6, 3.5e4))
	if regs, _ := compare(old, cur, prefixes, lim); len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}

	// Allocation gates apply below the ns/op noise floor: deterministic
	// counts are meaningful even when timings are noise.
	old2 := rep(allocEntry("FactoredEval/factored-k6", 0.5e6, 2e6, 5e3))
	cur = rep(allocEntry("FactoredEval/factored-k6", 0.6e6, 4e7, 6e3))
	regs, _ = compare(old2, cur, prefixes, lim)
	if len(regs) != 1 || !strings.Contains(regs[0], "B/op") {
		t.Errorf("sub-floor ns/op exempted allocations: regressions = %v", regs)
	}

	// Baselines below the alloc floors are never compared.
	old3 := rep(allocEntry("FactoredEval/factored-k6", 350e6, 5e5, 500))
	cur = rep(allocEntry("FactoredEval/factored-k6", 360e6, 5e6, 5e4))
	if regs, _ := compare(old3, cur, prefixes, lim); len(regs) != 0 {
		t.Errorf("sub-floor alloc baseline flagged: %v", regs)
	}

	// An allocation metric disappearing (ReportAllocs removed) is a note.
	cur = rep(entry("FactoredEval/factored-k6", 360e6))
	regs, notes := compare(old, cur, prefixes, lim)
	if len(regs) != 0 {
		t.Errorf("missing alloc metric treated as regression: %v", regs)
	}
	found := false
	for _, n := range notes {
		found = found || strings.Contains(n, "B/op no longer reported")
	}
	if !found {
		t.Errorf("missing-alloc note absent: %v", notes)
	}
}
