// Command benchtrend compares the current BENCH.json against a previous
// run's artifact and fails (exit 1) when a headline benchmark regressed by
// more than the allowed ratio — the ROADMAP's "fail CI on large regressions
// of the headline benches" checker.
//
// Usage:
//
//	benchtrend -old prev/BENCH.json [-new BENCH.json] [-max-ratio 2] \
//	           [-benches OptimizeDisk,SweepDisk,LargeComposite,Heterogeneous,OnlineRefresh,LoadServed,FactoredEval] \
//	           [-min-ns 1e6] [-max-alloc-ratio 3]
//
// Bench names are prefix-matched against the report (so "LargeComposite"
// covers every sub-benchmark). Benchmarks absent from the old report are
// reported informationally and never fail the check; ns/op values below
// -min-ns are skipped, because single-iteration timings of sub-millisecond
// benches are noise. The 2x default is deliberately loose for the same
// reason — the check is a tripwire for order-of-magnitude mistakes, not a
// statistically careful benchmark gate.
//
// Headline benches that report the per-stage solver breakdown (ftran_ms,
// btran_ms, price_ms, factor_ms, update_ms) are additionally checked stage
// by stage with -max-stage-ratio (default 3, looser than the wall-clock
// gate: a stage is a fraction of the total, so its single-run variance is
// higher). Stages below -min-stage-ms in the old record are skipped. This
// localizes a wall-clock regression to the stage that caused it — and
// catches a stage that blew up inside an otherwise-absorbed total.
//
// Entries that report serving latency quantiles (p50_ms, p90_ms, p99_ms —
// the LoadServed/conc=N records merged by cmd/dpmload) are likewise gated
// quantile by quantile with -max-quantile-ratio (default 2): a tail-latency
// blowup fails CI even when mean ns/op absorbed it. Quantiles below
// -min-quantile-ms in the old record are skipped as noise.
//
// Entries run with ReportAllocs are gated on B/op and allocs/op with
// -max-alloc-ratio (default 3). Allocation counts are deterministic — no
// single-iteration timing noise — so this gate protects results the timing
// gates cannot see: the FactoredEval benches exist to prove evaluation
// allocates ∝ Σ nnz(factorᵢ) instead of compiling the expanded joint chain,
// and an accidental re-expansion would multiply B/op by orders of magnitude
// while barely moving ns/op. Old records below -min-alloc-bytes B/op (or
// -min-allocs allocs/op) are skipped — tiny footprints regress by large
// ratios for harmless reasons.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// Entry and Report mirror cmd/benchjson's output document.
type Entry struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the BENCH.json document.
type Report struct {
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	oldPath := flag.String("old", "", "previous BENCH.json (required)")
	newPath := flag.String("new", "BENCH.json", "current BENCH.json")
	maxRatio := flag.Float64("max-ratio", 2.0, "fail when new/old ns/op exceeds this")
	benches := flag.String("benches", "OptimizeDisk,SweepDisk,LargeComposite,Heterogeneous,OnlineRefresh,LoadServed,FactoredEval", "comma-separated headline bench name prefixes")
	minNS := flag.Float64("min-ns", 1e6, "ignore benches whose old ns/op is below this (too noisy at 1 iteration)")
	maxStageRatio := flag.Float64("max-stage-ratio", 3.0, "fail when a per-stage solver timing (ftran_ms, …) exceeds this ratio")
	minStageMS := flag.Float64("min-stage-ms", 50, "ignore stages whose old value is below this many ms")
	maxQuantileRatio := flag.Float64("max-quantile-ratio", 2.0, "fail when a serving latency quantile (p50_ms, p90_ms, p99_ms) exceeds this ratio")
	minQuantileMS := flag.Float64("min-quantile-ms", 0.2, "ignore quantiles whose old value is below this many ms")
	maxAllocRatio := flag.Float64("max-alloc-ratio", 3.0, "fail when B/op or allocs/op exceeds this ratio")
	minAllocBytes := flag.Float64("min-alloc-bytes", 1e6, "ignore B/op gates whose old value is below this many bytes")
	minAllocs := flag.Float64("min-allocs", 1000, "ignore allocs/op gates whose old value is below this count")
	flag.Parse()
	if *oldPath == "" {
		fmt.Fprintln(os.Stderr, "benchtrend: -old is required")
		os.Exit(2)
	}
	oldRep, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
		os.Exit(2)
	}
	newRep, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
		os.Exit(2)
	}
	regressions, notes := compare(oldRep, newRep, strings.Split(*benches, ","), limits{
		maxRatio:         *maxRatio,
		minNS:            *minNS,
		maxStageRatio:    *maxStageRatio,
		minStageMS:       *minStageMS,
		maxQuantileRatio: *maxQuantileRatio,
		minQuantileMS:    *minQuantileMS,
		maxAllocRatio:    *maxAllocRatio,
		minAllocBytes:    *minAllocBytes,
		minAllocs:        *minAllocs,
	})
	for _, n := range notes {
		fmt.Println(n)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Printf("REGRESSION: %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Println("benchtrend: no headline regressions")
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

// key disambiguates same-named benchmarks across packages.
func key(e Entry) string { return e.Package + "\x00" + e.Name }

// stageMetrics are the per-stage solver timing units reported by the solve
// benchmarks (see lp.Timings for the stage partition).
var stageMetrics = []string{"ftran_ms", "btran_ms", "price_ms", "factor_ms", "update_ms"}

// quantileMetrics are the serving latency quantiles reported by the
// load-generator entries (see internal/load.Result.BenchEntry).
var quantileMetrics = []string{"p50_ms", "p90_ms", "p99_ms"}

// limits bundles the comparison thresholds.
type limits struct {
	maxRatio         float64 // wall-clock ns/op gate
	minNS            float64 // ns/op noise floor
	maxStageRatio    float64 // per-stage timing gate
	minStageMS       float64 // per-stage noise floor, in ms
	maxQuantileRatio float64 // serving latency quantile gate
	minQuantileMS    float64 // quantile noise floor, in ms
	maxAllocRatio    float64 // B/op and allocs/op gate
	minAllocBytes    float64 // B/op noise floor, in bytes
	minAllocs        float64 // allocs/op noise floor, in allocations
}

// compare returns the regression messages (new/old ns/op > maxRatio, a
// solver stage exceeding maxStageRatio, a latency quantile exceeding
// maxQuantileRatio, or an allocation metric exceeding maxAllocRatio) and
// informational notes for the selected headline benches.
func compare(oldRep, newRep *Report, prefixes []string, lim limits) (regressions, notes []string) {
	old := make(map[string]Entry, len(oldRep.Benchmarks))
	for _, e := range oldRep.Benchmarks {
		old[key(e)] = e
	}
	headline := func(name string) bool {
		for _, p := range prefixes {
			if p = strings.TrimSpace(p); p != "" && strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	for _, e := range newRep.Benchmarks {
		if !headline(e.Name) {
			continue
		}
		cur, ok := e.Metrics["ns/op"]
		if !ok {
			continue
		}
		prev, ok := old[key(e)]
		if !ok {
			notes = append(notes, fmt.Sprintf("benchtrend: %s: no previous record (new benchmark?)", e.Name))
			continue
		}
		// Latency quantiles are gated before the ns/op noise floor applies:
		// a p99 blowup matters even when the mean stays sub-millisecond.
		for _, q := range quantileMetrics {
			qb, ok := prev.Metrics[q]
			if !ok || qb < lim.minQuantileMS {
				continue
			}
			qc, ok := e.Metrics[q]
			if !ok {
				notes = append(notes, fmt.Sprintf("benchtrend: %s: %s no longer reported", e.Name, q))
				continue
			}
			qr := qc / qb
			qmsg := fmt.Sprintf("%s %s: %.3gms -> %.3gms (%.2fx)", e.Name, q, qb, qc, qr)
			if qr > lim.maxQuantileRatio {
				regressions = append(regressions, qmsg)
			} else {
				notes = append(notes, "benchtrend: "+qmsg)
			}
		}
		// Allocation gates run before the ns/op noise floor too: allocation
		// counts are deterministic, so they are meaningful even on benches
		// whose timings are noise.
		for _, am := range []struct {
			metric string
			floor  float64
			unit   string
		}{
			{"B/op", lim.minAllocBytes, "B"},
			{"allocs/op", lim.minAllocs, ""},
		} {
			ab, ok := prev.Metrics[am.metric]
			if !ok || ab < am.floor {
				continue
			}
			ac, ok := e.Metrics[am.metric]
			if !ok {
				notes = append(notes, fmt.Sprintf("benchtrend: %s: %s no longer reported", e.Name, am.metric))
				continue
			}
			ar := ac / ab
			amsg := fmt.Sprintf("%s %s: %.4g%s -> %.4g%s (%.2fx)", e.Name, am.metric, ab, am.unit, ac, am.unit, ar)
			if ar > lim.maxAllocRatio {
				regressions = append(regressions, amsg)
			} else {
				notes = append(notes, "benchtrend: "+amsg)
			}
		}
		base, ok := prev.Metrics["ns/op"]
		if !ok || base <= 0 {
			continue
		}
		if base < lim.minNS {
			notes = append(notes, fmt.Sprintf("benchtrend: %s: skipped (%.3gms below min-ns floor)", e.Name, base/1e6))
			continue
		}
		ratio := cur / base
		msg := fmt.Sprintf("%s: %.3gms -> %.3gms (%.2fx)", e.Name, base/1e6, cur/1e6, ratio)
		if ratio > lim.maxRatio {
			regressions = append(regressions, msg)
		} else {
			notes = append(notes, "benchtrend: "+msg)
		}
		for _, stage := range stageMetrics {
			sb, ok := prev.Metrics[stage]
			if !ok || sb < lim.minStageMS {
				continue
			}
			sc, ok := e.Metrics[stage]
			if !ok {
				notes = append(notes, fmt.Sprintf("benchtrend: %s: %s no longer reported", e.Name, stage))
				continue
			}
			sr := sc / sb
			smsg := fmt.Sprintf("%s %s: %.3gms -> %.3gms (%.2fx)", e.Name, stage, sb, sc, sr)
			if sr > lim.maxStageRatio {
				regressions = append(regressions, smsg)
			} else {
				notes = append(notes, "benchtrend: "+smsg)
			}
		}
	}
	return regressions, notes
}
