// Command dpmbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dpmbench [-quick] [-seed N] [-cpuprofile f] [-memprofile f] [experiment ...]
//
// Without arguments it runs every experiment in DESIGN.md §5 and prints
// each reproduction as a text table. Experiment ids: table1, fig6, fig8b,
// fig9a, fig9b, fig10, fig12a, fig12b, fig13a, fig13b, fig14a, fig14b,
// exampleA2, factored.
//
// -cpuprofile and -memprofile write pprof profiles covering the experiment
// runs (the heap profile is taken after the last experiment), so future
// performance work can profile the real workload without code edits:
//
//	dpmbench -cpuprofile cpu.prof fig10 && go tool pprof cpu.prof
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced horizons and trace lengths")
	seed := flag.Int64("seed", 1, "random seed for synthetic workloads and simulation")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	progress := flag.Bool("progress", false, "print live solve progress snapshots to stderr")
	flag.Parse()

	if *progress {
		experiments.SetMonitor(cli.ProgressMonitor(os.Stderr, 0))
	}
	if err := run(*quick, *seed, *cpuprofile, *memprofile, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "dpmbench: %v\n", err)
		os.Exit(1)
	}
}

func run(quick bool, seed int64, cpuprofile, memprofile string, ids []string) error {
	stopProfiles, err := cli.StartProfiles(cpuprofile, memprofile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	cfg := experiments.Config{Quick: quick, Seed: seed}
	for _, id := range ids {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := experiments.Render(os.Stdout, res); err != nil {
			return err
		}
	}
	return nil
}
