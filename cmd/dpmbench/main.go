// Command dpmbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dpmbench [-quick] [-seed N] [experiment ...]
//
// Without arguments it runs every experiment in DESIGN.md §5 and prints
// each reproduction as a text table. Experiment ids: table1, fig6, fig8b,
// fig9a, fig9b, fig10, fig12a, fig12b, fig13a, fig13b, fig14a, fig14b,
// exampleA2.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced horizons and trace lengths")
	seed := flag.Int64("seed", 1, "random seed for synthetic workloads and simulation")
	flag.Parse()

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpmbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := experiments.Render(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "dpmbench: %v\n", err)
			os.Exit(1)
		}
	}
}
