// Command dpmsim runs the simulation engine of the paper's tool (Fig. 7):
// it executes a power-management policy — either the LP optimum or a named
// heuristic — against a device model, in model-driven, session, or
// trace-driven mode, and reports measured power, queue, latency and loss.
//
// Examples:
//
//	dpmsim -device disk -policy optimal -bounds 'penalty<=0.3' -slices 1e6
//	dpmsim -device disk -policy timeout -timeout 2000 -sleep go_standby -slices 1e6
//	dpmsim -device cpu  -policy greedy -trace cpu.trace -dt 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	device := flag.String("device", "example", fmt.Sprintf("device model %v", cli.DeviceNames()))
	pol := flag.String("policy", "optimal", "policy: optimal, always, greedy, timeout")
	bounds := flag.String("bounds", "penalty<=0.5", "constraints for -policy optimal")
	horizon := flag.Float64("horizon", 1e5, "optimization horizon for -policy optimal")
	timeout := flag.Int64("timeout", 100, "idle slices before shutdown for -policy timeout")
	sleepCmd := flag.String("sleep", "", "sleep command name for greedy/timeout (default: last command)")
	slices := flag.Float64("slices", 1e6, "model-driven simulation length in slices")
	sessions := flag.Int("sessions", 0, "if >0, simulate this many geometric sessions at the optimization horizon instead")
	traceFile := flag.String("trace", "", "trace-driven mode: time-stamped request trace file")
	dt := flag.Float64("dt", 1, "time resolution for discretizing -trace")
	seed := flag.Int64("seed", 1, "simulation seed")
	p01 := flag.Float64("p01", 0, "workload idle→busy probability (0 = default)")
	p10 := flag.Float64("p10", 0, "workload busy→idle probability (0 = default)")
	flag.Parse()

	if err := run(*device, *pol, *bounds, *horizon, *timeout, *sleepCmd, *slices,
		*sessions, *traceFile, *dt, *seed, *p01, *p10); err != nil {
		fmt.Fprintf(os.Stderr, "dpmsim: %v\n", err)
		os.Exit(1)
	}
}

func run(device, pol, bounds string, horizon float64, timeout int64, sleepCmd string,
	slices float64, sessions int, traceFile string, dt float64, seed int64, p01, p10 float64) error {
	d, err := cli.NewDevice(device, p01, p10)
	if err != nil {
		return err
	}
	m, err := d.Sys.Build()
	if err != nil {
		return err
	}

	sleep := m.A - 1
	if sleepCmd != "" {
		if sleep = d.Sys.SP.CommandIndex(sleepCmd); sleep < 0 {
			return fmt.Errorf("unknown command %q (have %v)", sleepCmd, d.Sys.SP.CommandNames())
		}
	}

	alpha := core.HorizonToAlpha(horizon)
	var ctrl policy.Controller
	switch pol {
	case "always":
		ctrl = &policy.Constant{Cmd: 0}
	case "greedy":
		ctrl = &policy.Greedy{WakeCmd: 0, SleepCmd: sleep}
	case "timeout":
		ctrl = &policy.Timeout{WakeCmd: 0, SleepCmd: sleep, Timeout: timeout}
	case "optimal":
		bs, err := cli.ParseBounds(bounds)
		if err != nil {
			return err
		}
		res, err := core.Optimize(m, core.Options{
			Alpha:          alpha,
			Initial:        core.Delta(m.N, d.Sys.Index(d.Initial)),
			Objective:      core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
			Bounds:         bs,
			SkipEvaluation: true,
		})
		if err != nil {
			return err
		}
		fmt.Printf("optimized policy: expected power %.6g W\n", res.Objective)
		ctrl, err = policy.NewStationary(d.Sys, res.Policy, seed+1)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown policy %q (optimal, always, greedy, timeout)", pol)
	}

	s, err := sim.New(m, ctrl, sim.Config{Seed: seed, Initial: d.Initial})
	if err != nil {
		return err
	}

	var st *sim.Stats
	switch {
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return err
		}
		counts, err := tr.Discretize(dt)
		if err != nil {
			return err
		}
		fmt.Printf("trace: %d requests over %d slices (busy fraction %.4f)\n",
			len(tr.Times), len(counts), trace.CountStats(counts).BusyFraction)
		st, err = s.RunTrace(counts)
		if err != nil {
			return err
		}
	case sessions > 0:
		st, err = s.RunSessions(alpha, sessions)
		if err != nil {
			return err
		}
	default:
		st, err = s.Run(int64(slices))
		if err != nil {
			return err
		}
	}

	fmt.Printf("simulated %d slices (%d session(s))\n", st.Slices, st.Sessions)
	fmt.Println("measured per-slice metrics:")
	cli.PrintAverages(os.Stdout, st.Averages)
	if d.Sys.QueueCap > 0 {
		fmt.Printf("requests: arrived %d, serviced %d, lost %d (loss fraction %.5f)\n",
			st.Arrived, st.Serviced, st.Lost, st.LossFraction())
		fmt.Printf("throughput %.5f requests/slice, mean wait %.3f slices\n", st.Throughput(), st.AvgWait)
	} else {
		fmt.Printf("requests: arrived %d (device has no queue; per-request accounting does not apply)\n", st.Arrived)
	}
	fmt.Println("command usage:")
	for c, n := range st.CommandCounts {
		fmt.Printf("  %-12s %d\n", d.Sys.SP.CommandNames()[c], n)
	}
	return nil
}
