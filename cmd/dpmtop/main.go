// Command dpmtop is a polling terminal watcher over a running dpmserved
// daemon: it renders the live solve flight-recorder table (GET /v1/solves)
// together with the aggregate serving counters (GET /v1/stats), refreshing
// in place like top. Each in-flight solve shows its phase, pivot count,
// current objective, infeasibility norms and per-stage time split as the
// simplex runs; finished solves leave the table, and the most recent
// solve-journal events scroll underneath.
//
// Usage:
//
//	dpmtop [-url http://127.0.0.1:8080] [-interval 1s] [-n 0] [-plain]
//
// -n bounds the number of refreshes (0: until interrupted); -n 1 -plain is
// a one-shot snapshot suitable for scripts and smoke tests. -plain disables
// the ANSI clear-screen between refreshes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"
)

type solveRow struct {
	ID               int64              `json:"id"`
	Model            string             `json:"model"`
	Endpoint         string             `json:"endpoint"`
	Trace            string             `json:"trace"`
	Event            string             `json:"event"`
	Phase            string             `json:"phase"`
	Pivots           int                `json:"pivots"`
	Refactorizations int                `json:"refactorizations"`
	Objective        float64            `json:"objective"`
	PrimalInf        float64            `json:"primal_inf"`
	DualInf          float64            `json:"dual_inf"`
	EtaLen           int                `json:"eta_len"`
	FactorNNZ        int                `json:"factor_nnz"`
	Perturbed        bool               `json:"perturbed"`
	GrowthFactor     float64            `json:"growth_factor"`
	FTRejections     int                `json:"ft_rejections"`
	ElapsedMS        float64            `json:"elapsed_ms"`
	Stages           map[string]float64 `json:"stages_ms"`
}

type journalEvent struct {
	Time  time.Time      `json:"time"`
	Kind  string         `json:"kind"`
	Trace string         `json:"trace"`
	Attrs map[string]any `json:"attrs"`
}

type solvesPayload struct {
	Solves []solveRow     `json:"solves"`
	Events []journalEvent `json:"events"`
}

type statsPayload struct {
	Counters     map[string]int64 `json:"counters"`
	Gauges       map[string]int64 `json:"gauges"`
	DroppedSpans int              `json:"dropped_spans"`
	CacheSize    int              `json:"cache_size"`
	Models       int              `json:"models"`
	UptimeS      float64          `json:"uptime_s"`
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "base URL of the dpmserved daemon")
	interval := flag.Duration("interval", time.Second, "refresh interval")
	n := flag.Int("n", 0, "number of refreshes (0: until interrupted)")
	plain := flag.Bool("plain", false, "append refreshes instead of clearing the screen")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *url, *interval, *n, *plain); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "dpmtop: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, url string, interval time.Duration, n int, plain bool) error {
	client := &http.Client{Timeout: 10 * time.Second}
	var prev *statsPayload
	var prevAt time.Time
	for i := 0; n == 0 || i < n; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(interval):
			}
		}
		var solves solvesPayload
		if err := getJSON(ctx, client, url+"/v1/solves", &solves); err != nil {
			return err
		}
		var stats statsPayload
		if err := getJSON(ctx, client, url+"/v1/stats", &stats); err != nil {
			return err
		}
		if !plain {
			fmt.Print("\033[H\033[2J")
		}
		render(os.Stdout, url, &solves, &stats, prev, prevAt)
		prev, prevAt = &stats, time.Now()
	}
	return nil
}

func getJSON(ctx context.Context, client *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func render(w *os.File, url string, solves *solvesPayload, stats *statsPayload, prev *statsPayload, prevAt time.Time) {
	pivotRate := ""
	if prev != nil {
		dt := time.Since(prevAt).Seconds()
		if dt > 0 {
			dp := stats.Counters["pivots"] - prev.Counters["pivots"]
			pivotRate = fmt.Sprintf("  %.0f pivots/s", float64(dp)/dt)
		}
	}
	fmt.Fprintf(w, "dpmtop %s  up %s  models %d  cache %d  inflight %d  dropped_spans %d%s\n",
		url, (time.Duration(stats.UptimeS * float64(time.Second))).Round(time.Second),
		stats.Models, stats.CacheSize, stats.Gauges["solves_inflight"], stats.DroppedSpans, pivotRate)
	fmt.Fprintf(w, "served: optimize %d  sweep %d  observe %d  hits %d  warm %d  cold %d  shared %d  cancelled %d\n",
		stats.Counters["optimize_queries"], stats.Counters["sweep_queries"], stats.Counters["observe_requests"],
		stats.Counters["exact_hits"], stats.Counters["warm_solves"], stats.Counters["cold_solves"],
		stats.Counters["shared_solves"], stats.Counters["cancelled_solves"])
	fmt.Fprintln(w)

	if len(solves.Solves) == 0 {
		fmt.Fprintln(w, "no solves in flight")
	} else {
		fmt.Fprintf(w, "%4s  %-8s  %-16s  %-7s  %-8s  %8s  %6s  %14s  %9s  %7s  %9s\n",
			"ID", "ENDPOINT", "MODEL", "PHASE", "EVENT", "PIVOTS", "REFACT", "OBJECTIVE", "PINF", "ETA", "ELAPSED")
		for _, s := range solves.Solves {
			model := s.Model
			if len(model) > 16 {
				model = model[:16]
			}
			flags := ""
			if s.Perturbed {
				flags = "*"
			}
			fmt.Fprintf(w, "%4d  %-8s  %-16s  %-7s  %-8s  %8d  %6d  %14.6g  %9.2e  %7d  %8.1fs%s\n",
				s.ID, s.Endpoint, model, s.Phase, s.Event, s.Pivots, s.Refactorizations,
				s.Objective, s.PrimalInf, s.EtaLen, s.ElapsedMS/1000, flags)
			if len(s.Stages) > 0 {
				keys := make([]string, 0, len(s.Stages))
				for k := range s.Stages {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				parts := make([]string, 0, len(keys))
				for _, k := range keys {
					parts = append(parts, fmt.Sprintf("%s %.0fms", k, s.Stages[k]))
				}
				fmt.Fprintf(w, "      stages: %s\n", strings.Join(parts, "  "))
			}
		}
	}

	if len(solves.Events) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "recent solve events:")
		max := len(solves.Events)
		if max > 8 {
			max = 8
		}
		for _, ev := range solves.Events[:max] {
			model, _ := ev.Attrs["model"].(string)
			pivots, _ := ev.Attrs["pivots"].(float64)
			fmt.Fprintf(w, "  %s  %-16s  %-16s  pivots %.0f  trace %s\n",
				ev.Time.Format("15:04:05.000"), ev.Kind, model, pivots, ev.Trace)
		}
	}
}
