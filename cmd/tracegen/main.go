// Command tracegen produces synthetic time-stamped request traces with the
// workload structures used by the reproduction (DESIGN.md §2 documents
// which measured traces each generator substitutes for).
//
// Usage:
//
//	tracegen -kind heavytail -n 400000 -dt 0.001 -seed 7 > disk.trace
//	tracegen -kind merged -n 200000 -dt 0.05 > cpu_nonstationary.trace
//
// Kinds: onoff (Markov bursty), heavytail (Pareto idle gaps), bimodal
// (short/long idle mixture), diurnal (sinusoidal Poisson), editor, compile,
// merged (editor followed by compile).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/trace"
)

func main() {
	kind := flag.String("kind", "onoff", "workload kind: onoff, heavytail, bimodal, diurnal, editor, compile, merged")
	n := flag.Int("n", 100000, "number of time slices")
	dt := flag.Float64("dt", 1, "time resolution used for timestamping")
	seed := flag.Int64("seed", 1, "random seed")
	p01 := flag.Float64("p01", 0.01, "onoff: idle→busy probability")
	p10 := flag.Float64("p10", 0.1, "onoff: busy→idle probability")
	flag.Parse()

	if err := run(os.Stdout, *kind, *n, *dt, *seed, *p01, *p10); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func run(out *os.File, kind string, n int, dt float64, seed int64, p01, p10 float64) error {
	if n <= 0 {
		return fmt.Errorf("-n must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	var counts []int
	switch kind {
	case "onoff":
		counts = trace.OnOff(rng, n, p01, p10)
	case "heavytail":
		counts = trace.HeavyTailOnOff(rng, n, 3, 1.1, 50, 20000)
	case "bimodal":
		counts = trace.BimodalOnOff(rng, n, 3, 2, 300, 0.25)
	case "diurnal":
		counts = trace.DiurnalPoisson(rng, n, n/2, 0.01, 3.0)
	case "editor":
		counts = trace.Editor(rng, n)
	case "compile":
		counts = trace.Compile(rng, n)
	case "merged":
		counts = trace.Concat(trace.Editor(rng, n/2), trace.Compile(rng, n-n/2))
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	st := trace.CountStats(counts)
	fmt.Fprintf(out, "# tracegen kind=%s n=%d dt=%g seed=%d\n", kind, n, dt, seed)
	fmt.Fprintf(out, "# requests=%d busy_fraction=%.5f mean_busy_run=%.2f mean_idle_run=%.2f\n",
		st.Requests, st.BusyFraction, st.MeanBusyRun, st.MeanIdleRun)
	return trace.FromCounts(counts, dt).Write(out)
}
