// Command dpmserved runs the resident policy-serving daemon: an HTTP/JSON
// service (internal/server) that holds compiled device models in memory and
// answers policy-optimization and Pareto-sweep queries from a fingerprinted
// result/basis cache.
//
// Usage:
//
//	dpmserved [-addr :8080] [-cache 512] [-timeout 30s] [-max-timeout 2m] \
//	          [-cache-file dpmserved.cache] [-debug-addr 127.0.0.1:6060] \
//	          [-trace-buffer 256] [-access-log]
//
// Observability: every request is traced (spans for cache lookup, LP
// build/patch, simplex solve with pivot and per-stage timing annotations);
// the last -trace-buffer solver-facing traces are served on GET /v1/trace.
// Latency/pivot histograms and counters are on /v1/stats (JSON) and
// /metrics (Prometheus text format). -access-log emits one structured JSON
// log line per request. -debug-addr serves net/http/pprof on a separate
// listener (keep it on localhost; it is never exposed on -addr).
//
// The listening address is printed on startup ("dpmserved: listening on
// http://HOST:PORT"), so -addr 127.0.0.1:0 works for scripted smoke tests.
// SIGINT/SIGTERM drain in-flight requests and exit cleanly. With
// -cache-file, the warm-start cache (query fingerprints → optimal LP bases)
// is reloaded at startup and saved on clean shutdown, so a restarted daemon
// answers repeat query families from warm solves instead of cold ones; a
// missing, stale or version-mismatched file just means starting cold. See
// the README section "Serving mode" for the endpoint reference and curl
// examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	cache := flag.Int("cache", 512, "cached results/bases (LRU entries)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request solve deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested deadlines")
	cacheFile := flag.String("cache-file", "", "persist the warm-start basis cache here across restarts")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060)")
	traceBuffer := flag.Int("trace-buffer", 256, "finished request traces retained for GET /v1/trace")
	accessLog := flag.Bool("access-log", false, "log one structured JSON line per request to stderr")
	flag.Parse()

	if err := run(*addr, *cache, *timeout, *maxTimeout, *cacheFile, *debugAddr, *traceBuffer, *accessLog); err != nil {
		fmt.Fprintf(os.Stderr, "dpmserved: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, cache int, timeout, maxTimeout time.Duration, cacheFile, debugAddr string, traceBuffer int, accessLog bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := server.New(server.Config{
		CacheSize:      cache,
		DefaultTimeout: timeout,
		MaxTimeout:     maxTimeout,
		BaseContext:    ctx, // shutdown cancels in-flight solves mid-pivot
		TraceBuffer:    traceBuffer,
		AccessLog:      accessLog,
	})
	if err != nil {
		return err
	}
	if debugAddr != "" {
		// pprof registers on http.DefaultServeMux via its import side
		// effect; serving that mux on a second listener keeps the profiling
		// surface off the public -addr.
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Printf("dpmserved: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "dpmserved: debug server: %v\n", err)
			}
		}()
		defer dln.Close()
	}
	if cacheFile != "" {
		// The cache is an accelerator: a missing or unloadable file starts
		// cold, it never blocks serving.
		if n, err := srv.LoadCacheFile(cacheFile); err != nil {
			fmt.Fprintf(os.Stderr, "dpmserved: ignoring cache file %s: %v\n", cacheFile, err)
		} else if n > 0 {
			fmt.Printf("dpmserved: restored %d warm-start bases from %s\n", n, cacheFile)
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("dpmserved: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("dpmserved: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if cacheFile != "" {
		if n, err := srv.SaveCacheFile(cacheFile); err != nil {
			fmt.Fprintf(os.Stderr, "dpmserved: saving cache file %s: %v\n", cacheFile, err)
		} else {
			fmt.Printf("dpmserved: saved %d warm-start bases to %s\n", n, cacheFile)
		}
	}
	return nil
}
