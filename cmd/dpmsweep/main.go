// Command dpmsweep traces a power-performance tradeoff curve (the Pareto
// exploration of paper Section IV-A) by solving the policy-optimization LP
// across a constraint sweep on a bounded worker pool, warm-starting
// consecutive points from each other's optimal simplex basis. Ctrl-C
// cancels an in-flight sweep cleanly.
//
// Usage:
//
//	dpmsweep -device disk -horizon 1e6 -sweep penalty -rel '<=' \
//	         -values 0.02,0.05,0.1,0.2,0.5 -bounds 'loss<=0.05'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/sweep"
)

func main() {
	device := flag.String("device", "example", fmt.Sprintf("device model %v", cli.DeviceNames()))
	horizon := flag.Float64("horizon", 1e5, "expected session length in time slices")
	minimize := flag.String("min", "power", "metric to minimize")
	sweepMetric := flag.String("sweep", "penalty", "metric whose bound is swept")
	rel := flag.String("rel", "<=", "sweep relation: <= or >=")
	values := flag.String("values", "0.1,0.2,0.3,0.5,0.8", "comma-separated sweep bounds")
	bounds := flag.String("bounds", "", "additional fixed constraints, e.g. 'loss<=0.1'")
	p01 := flag.Float64("p01", 0, "workload idle→busy probability (0 = default)")
	p10 := flag.Float64("p10", 0, "workload busy→idle probability (0 = default)")
	workers := flag.Int("workers", 0, "concurrent LP solves (0 = GOMAXPROCS)")
	cold := flag.Bool("cold", false, "disable LP warm-starting between sweep points")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err := func() error {
		// The profile stop/flush must run before exit, and run's error paths
		// must not skip it; only this closure's scope guarantees both.
		stopProfiles, err := cli.StartProfiles(*cpuprofile, *memprofile)
		if err != nil {
			return err
		}
		defer stopProfiles()
		return run(ctx, *device, *horizon, *minimize, *sweepMetric, *rel, *values, *bounds, *p01, *p10,
			sweep.Config{Workers: *workers, Cold: *cold})
	}()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpmsweep: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, device string, horizon float64, minimize, sweepMetric, rel, values, bounds string, p01, p10 float64, cfg sweep.Config) error {
	d, err := cli.NewDevice(device, p01, p10)
	if err != nil {
		return err
	}
	m, err := d.Sys.Build()
	if err != nil {
		return err
	}
	bs, err := cli.ParseBounds(bounds)
	if err != nil {
		return err
	}
	vals, err := cli.ParseFloats(values)
	if err != nil {
		return err
	}
	var r lp.Rel
	switch rel {
	case "<=":
		r = lp.LE
	case ">=":
		r = lp.GE
	default:
		return fmt.Errorf("relation %q must be <= or >=", rel)
	}

	opts := core.Options{
		Alpha:          core.HorizonToAlpha(horizon),
		Initial:        core.Delta(m.N, d.Sys.Index(d.Initial)),
		Objective:      core.Objective{Metric: minimize, Sense: lp.Minimize},
		Bounds:         bs,
		SkipEvaluation: true,
	}
	pts, err := sweep.Pareto(ctx, m, opts, sweepMetric, r, vals, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("device: %s (%s), horizon %g slices\n", device, d.Desc, horizon)
	fmt.Printf("%-14s %-14s", sweepMetric+" bound", minimize)
	for _, extra := range []string{"penalty", "loss", "service"} {
		if extra != minimize && extra != sweepMetric {
			fmt.Printf(" %-12s", extra)
		}
	}
	fmt.Println()
	for _, p := range pts {
		if !p.Feasible {
			fmt.Printf("%-14g infeasible\n", p.BoundValue)
			continue
		}
		fmt.Printf("%-14g %-14.6g", p.BoundValue, p.Objective)
		for _, extra := range []string{"penalty", "loss", "service"} {
			if extra != minimize && extra != sweepMetric {
				fmt.Printf(" %-12.6g", p.Averages[extra])
			}
		}
		fmt.Println()
	}
	st := sweep.Tally(pts)
	fmt.Printf("solves: %d (%d feasible, %d warm-started, %d simplex pivots)\n",
		st.Points, st.Feasible, st.WarmStarted, st.Pivots)
	return nil
}
