// Command srextract builds a service-requester Markov model from a
// time-stamped request trace, implementing the SR extractor of the paper's
// tool (Section V, Example 5.1).
//
// Usage:
//
//	srextract -trace disk.trace -dt 0.001 -memory 2
//	srextract -trace web.trace -dt 1 -levels 3
//
// The trace file holds one arrival timestamp per line ('#' comments
// allowed). With -memory k the binarized k-memory model (2^k states) is
// printed; with -levels L the multi-level model (states = per-slice counts
// 0..L).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	traceFile := flag.String("trace", "", "time-stamped request trace file (required)")
	dt := flag.Float64("dt", 1, "time resolution Δt for discretization")
	memory := flag.Int("memory", 1, "history length k of the binary model")
	levels := flag.Int("levels", 0, "if >0, build a multi-level model with counts 0..levels instead")
	flag.Parse()

	if err := run(*traceFile, *dt, *memory, *levels); err != nil {
		fmt.Fprintf(os.Stderr, "srextract: %v\n", err)
		os.Exit(1)
	}
}

func run(traceFile string, dt float64, memory, levels int) error {
	if traceFile == "" {
		return fmt.Errorf("-trace is required")
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	counts, err := tr.Discretize(dt)
	if err != nil {
		return err
	}
	st := trace.CountStats(counts)
	fmt.Printf("trace: %d requests, %d slices at Δt=%g\n", st.Requests, st.Slices, dt)
	fmt.Printf("mean rate %.5f req/slice, busy fraction %.5f, mean busy run %.2f, mean idle run %.2f\n",
		st.MeanRate, st.BusyFraction, st.MeanBusyRun, st.MeanIdleRun)
	fmt.Printf("lag-1 autocorrelation of the binarized stream: %.4f\n\n", trace.Autocorrelation(counts, 1))

	var sr *core.ServiceRequester
	if levels > 0 {
		sr, err = trace.ExtractSRLevels("extracted", counts, levels)
	} else {
		sr, err = trace.ExtractSR("extracted", counts, memory)
	}
	if err != nil {
		return err
	}
	fmt.Printf("extracted SR model: %d states\n", sr.N())
	fmt.Printf("%-10s %-9s transition probabilities\n", "state", "requests")
	for s := 0; s < sr.N(); s++ {
		fmt.Printf("%-10s %-9d", sr.States[s], sr.Requests[s])
		for j := 0; j < sr.N(); j++ {
			fmt.Printf(" %8.5f", sr.P.At(s, j))
		}
		fmt.Println()
	}
	rate, err := sr.MeanArrivalRate()
	if err != nil {
		return err
	}
	fmt.Printf("model stationary arrival rate: %.5f req/slice (trace: %.5f)\n", rate, st.MeanRate)
	return nil
}
