// Command benchjson converts `go test -bench` output into a machine-readable
// JSON record so the performance trajectory of the repository can be tracked
// across PRs (CI uploads the file as an artifact; `make bench` writes it
// locally).
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | benchjson -o BENCH.json
//
// The input is echoed to stdout unchanged, so the human-readable log
// survives. Each benchmark line becomes one entry mapping metric unit →
// value: the standard ns/op, B/op and allocs/op plus any custom
// b.ReportMetric units (pivots, warm/sweep, …).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches e.g.
//
//	BenchmarkFoo/sub-8   	       3	 123456 ns/op	 42 B/op	 7 allocs/op	 12.0 pivots
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// metricPair matches one "value unit" pair in the tail of a benchmark line.
var metricPair = regexp.MustCompile(`([0-9.eE+-]+)\s+([^\s]+)`)

// Entry is one benchmark result. Package disambiguates same-named
// benchmarks across packages (it comes from the "pkg:" header lines of the
// bench log).
type Entry struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the BENCH.json document.
type Report struct {
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH.json", "output path for the JSON report")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(out string) error {
	var report Report
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		metrics := map[string]float64{}
		for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			metrics[pair[2]] = v
		}
		if len(metrics) == 0 {
			continue
		}
		report.Benchmarks = append(report.Benchmarks, Entry{
			Package:    pkg,
			Name:       strings.TrimPrefix(m[1], "Benchmark"),
			Iterations: iters,
			Metrics:    metrics,
		})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// Deterministic order regardless of package scheduling.
	sort.Slice(report.Benchmarks, func(i, j int) bool {
		a, b := report.Benchmarks[i], report.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), out)
	return nil
}
