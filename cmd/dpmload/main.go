// Command dpmload is a closed-loop load generator for dpmserved: it drives
// a configurable mix of exact-hit, warm-start, cold-solve and observe
// traffic at one or more concurrency levels and reports throughput and
// latency quantiles measured with log-bucketed histograms (internal/load,
// internal/obs). "Fast under traffic" becomes a measured claim: the results
// merge into BENCH.json as LoadServed/conc=N entries, which benchtrend
// gates across PRs like any other headline benchmark.
//
// Usage:
//
//	dpmload -url http://127.0.0.1:8080 [-model disk] [-conc 2,8] \
//	        [-duration 5s | -requests 500] [-rate 0] \
//	        [-mix hit=6,warm=2,cold=1,observe=1] [-timeout 30s] [-seed 1] \
//	        [-bench-out BENCH.json] [-require-p99] [-q] [-progress 2s]
//
// Closed loop by default (each worker issues its next request when the
// previous response lands); -rate R switches to an open loop with R
// arrivals/s, shedding arrivals that find every worker busy. -conc runs the
// whole load once per listed concurrency. -require-p99 exits nonzero unless
// every run measured a positive p99 with zero request errors — the smoke
// hook that keeps CI honest about the load phase having actually run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/load"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "base URL of the dpmserved daemon")
	model := flag.String("model", "disk", "target model id or registered name")
	conc := flag.String("conc", "4", "comma-separated concurrency levels, one run each (e.g. 2,8)")
	duration := flag.Duration("duration", 0, "per-run wall-clock bound (0: use -requests)")
	requests := flag.Int("requests", 0, "per-run request bound (0: use -duration)")
	rate := flag.Float64("rate", 0, "open-loop arrivals/s across all workers (0: closed loop)")
	mixSpec := flag.String("mix", "", "traffic mix weights, e.g. hit=6,warm=2,cold=1,observe=1")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 1, "rng seed (workers derive their own streams)")
	benchOut := flag.String("bench-out", "", "merge results into this BENCH.json")
	requireP99 := flag.Bool("require-p99", false, "exit nonzero unless every run has a positive p99 and zero errors")
	quiet := flag.Bool("q", false, "suppress the per-kind breakdown")
	progress := flag.Duration("progress", 0, "print an interim req/s and p99 summary to stderr on this interval (0: off)")
	flag.Parse()

	if err := run(*url, *model, *conc, *duration, *requests, *rate, *mixSpec, *timeout, *seed, *benchOut, *requireP99, *quiet, *progress); err != nil {
		fmt.Fprintf(os.Stderr, "dpmload: %v\n", err)
		os.Exit(1)
	}
}

func run(url, model, conc string, duration time.Duration, requests int, rate float64, mixSpec string, timeout time.Duration, seed int64, benchOut string, requireP99, quiet bool, progress time.Duration) error {
	levels, err := parseLevels(conc)
	if err != nil {
		return err
	}
	mix, err := parseMix(mixSpec)
	if err != nil {
		return err
	}
	if duration <= 0 && requests <= 0 {
		duration = 5 * time.Second
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var entries []load.BenchEntry
	for _, workers := range levels {
		res, err := load.Run(ctx, load.Config{
			BaseURL:     url,
			Model:       model,
			Workers:     workers,
			Duration:    duration,
			MaxRequests: requests,
			Rate:        rate,
			Mix:         mix,
			Timeout:     timeout,
			Seed:        seed,

			ProgressEvery: progress,
			Progress: func(p load.ProgressReport) {
				fmt.Fprintf(os.Stderr, "progress %6.1fs: %6d reqs  %7.1f req/s  p50 %8.3fms  p99 %8.3fms\n",
					p.Elapsed.Seconds(), p.Requests, p.ReqPerSec, p.P50MS, p.P99MS)
			},
		})
		if err != nil {
			return err
		}
		report(res, quiet)
		entries = append(entries, res.BenchEntry())
		if requireP99 && (res.QuantileMS(0.99) <= 0 || res.Errors > 0) {
			return fmt.Errorf("conc=%d: p99 %.3f ms with %d errors fails -require-p99",
				workers, res.QuantileMS(0.99), res.Errors)
		}
		if ctx.Err() != nil {
			break
		}
	}
	if benchOut != "" {
		if err := load.MergeBench(benchOut, entries); err != nil {
			return err
		}
		fmt.Printf("dpmload: merged %d entries into %s\n", len(entries), benchOut)
	}
	return nil
}

func report(r *load.Result, quiet bool) {
	loop := "closed"
	if r.OpenLoop {
		loop = "open"
	}
	fmt.Printf("conc=%d %s-loop: %d requests in %.2fs  %.1f req/s  p50 %.3fms  p90 %.3fms  p99 %.3fms  errors %d",
		r.Concurrency, loop, r.Requests, r.Elapsed.Seconds(), r.Throughput(),
		r.QuantileMS(0.50), r.QuantileMS(0.90), r.QuantileMS(0.99), r.Errors)
	if r.OpenLoop {
		fmt.Printf("  shed %d", r.Shed)
	}
	fmt.Println()
	if quiet {
		return
	}
	kinds := make([]string, 0, len(r.Kinds))
	for k, ks := range r.Kinds {
		if ks.Requests > 0 {
			kinds = append(kinds, k)
		}
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		ks := r.Kinds[k]
		fmt.Printf("  %-8s %6d reqs  p50 %9.3fms  p99 %9.3fms  errors %d\n",
			k, ks.Requests, ks.Latency.Quantile(0.50)/1e6, ks.Latency.Quantile(0.99)/1e6, ks.Errors)
	}
	if len(r.CacheModes) > 0 {
		modes := make([]string, 0, len(r.CacheModes))
		for m := range r.CacheModes {
			modes = append(modes, m)
		}
		sort.Strings(modes)
		fmt.Printf("  cache:")
		for _, m := range modes {
			fmt.Printf(" %s=%d", m, r.CacheModes[m])
		}
		fmt.Println()
	}
}

func parseLevels(spec string) ([]int, error) {
	var levels []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid concurrency %q", f)
		}
		levels = append(levels, n)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("no concurrency levels in %q", spec)
	}
	return levels, nil
}

func parseMix(spec string) (load.Mix, error) {
	var m load.Mix
	if spec == "" {
		return m, nil // zero Mix selects the package default
	}
	for _, f := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
		if !ok {
			return m, fmt.Errorf("mix term %q is not kind=weight", f)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return m, fmt.Errorf("mix weight %q invalid", v)
		}
		switch k {
		case load.KindHit:
			m.Hit = w
		case load.KindWarm:
			m.Warm = w
		case load.KindCold:
			m.Cold = w
		case load.KindObserve:
			m.Observe = w
		default:
			return m, fmt.Errorf("unknown mix kind %q", k)
		}
	}
	if m == (load.Mix{}) {
		return m, fmt.Errorf("mix %q has no positive weights", spec)
	}
	return m, nil
}
