// Command dpmopt computes an optimal power-management policy for a named
// device, reproducing the optimization path of the paper's tool (Fig. 7):
// system model → LP over state-action frequencies → policy matrix.
//
// Usage:
//
//	dpmopt -device disk -horizon 1e6 -min power \
//	       -bounds 'penalty<=0.3,loss<=0.05' [-p01 0.002 -p10 0.3]
//
// The policy matrix (one row per composed system state, one column per
// power-manager command) and all expected per-slice metrics are printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/lp"
)

func main() {
	device := flag.String("device", "example", fmt.Sprintf("device model %v", cli.DeviceNames()))
	horizon := flag.Float64("horizon", 1e5, "expected session length in time slices (sets the discount factor)")
	minimize := flag.String("min", "power", "metric to minimize (power, penalty, loss, drops; prefix with 'max:' to maximize)")
	bounds := flag.String("bounds", "", "comma-separated constraints, e.g. 'penalty<=0.5,loss<=0.2'")
	p01 := flag.Float64("p01", 0, "workload idle→busy probability per slice (0 = device default)")
	p10 := flag.Float64("p10", 0, "workload busy→idle probability per slice (0 = device default)")
	factor := flag.String("factorization", "auto", "simplex basis kernel: auto, dense, sparse, tableau")
	pricing := flag.String("pricing", "auto", "simplex pricing rule: auto, dantzig, devex, partial")
	maxPivots := flag.Int("max-pivots", 0, "simplex pivot budget (0 = unlimited)")
	progress := flag.Bool("progress", false, "print live solve progress snapshots to stderr")
	flag.Parse()

	if err := run(*device, *horizon, *minimize, *bounds, *p01, *p10, *factor, *pricing, *maxPivots, *progress); err != nil {
		fmt.Fprintf(os.Stderr, "dpmopt: %v\n", err)
		os.Exit(1)
	}
}

func run(device string, horizon float64, minimize, bounds string, p01, p10 float64, factor, pricing string, maxPivots int, progress bool) error {
	d, err := cli.NewDevice(device, p01, p10)
	if err != nil {
		return err
	}
	lpFactor, err := lp.ParseFactorization(factor)
	if err != nil {
		return err
	}
	lpPricing, err := lp.ParsePricing(pricing)
	if err != nil {
		return err
	}
	m, err := d.Sys.Build()
	if err != nil {
		return err
	}
	bs, err := cli.ParseBounds(bounds)
	if err != nil {
		return err
	}
	obj := core.Objective{Metric: minimize, Sense: lp.Minimize}
	if rest, ok := cutPrefix(minimize, "max:"); ok {
		obj = core.Objective{Metric: rest, Sense: lp.Maximize}
	}

	opts := core.Options{
		Alpha:           core.HorizonToAlpha(horizon),
		Initial:         core.Delta(m.N, d.Sys.Index(d.Initial)),
		Objective:       obj,
		Bounds:          bs,
		LPFactorization: lpFactor,
		LPPricing:       lpPricing,
		LPMaxPivots:     maxPivots,
	}
	if progress {
		opts.LPMonitor = cli.ProgressMonitor(os.Stderr, 0)
	}
	res, err := core.Optimize(m, opts)
	if err != nil {
		return err
	}

	fmt.Printf("device:   %s (%s)\n", device, d.Desc)
	fmt.Printf("states:   %d × %d commands, horizon %g slices\n", m.N, m.A, horizon)
	fmt.Printf("optimal %s: %g\n", obj.Metric, res.Objective)
	fmt.Println("expected per-slice metrics:")
	cli.PrintAverages(os.Stdout, res.Averages)
	if rs := res.Policy.RandomizedStates(1e-6); len(rs) > 0 {
		names := make([]string, len(rs))
		for i, s := range rs {
			names[i] = d.Sys.StateName(s)
		}
		fmt.Printf("randomized decisions in %d state(s): %v\n", len(rs), names)
	} else {
		fmt.Println("policy is deterministic (no constraint active, Theorem A.2)")
	}
	fmt.Println()
	return cli.PrintPolicy(os.Stdout, d.Sys, res)
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}
