# Mirrors .github/workflows/ci.yml so local runs and CI stay identical:
# `make` (or `make all`) is exactly what the CI job executes.

GO ?= go

.PHONY: all build lint test bench

all: build lint test bench

build:
	$(GO) build ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
