# Mirrors .github/workflows/ci.yml so local runs and CI stay identical:
# `make` (or `make all`) is exactly what the CI job executes (the bench
# step in CI runs `make bench` directly).

GO ?= go

# The bench target pipes into benchjson; pipefail keeps a failing bench run
# failing the target.
SHELL := bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: all build lint test bench

all: build lint test bench

build:
	$(GO) build ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test -race ./...

# One iteration per benchmark proves every benchmark still compiles and
# runs; benchjson converts the log into BENCH.json (benchmark → ns/op,
# B/op, allocs/op, custom metrics) so the perf trajectory is tracked
# across PRs. CI uploads BENCH.json as an artifact.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... | $(GO) run ./cmd/benchjson -o BENCH.json
