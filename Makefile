# Mirrors .github/workflows/ci.yml so local runs and CI stay identical:
# `make` (or `make all`) is exactly what the CI job executes (the bench
# step in CI runs `make bench` directly).

GO ?= go

# The bench target pipes into benchjson; pipefail keeps a failing bench run
# failing the target.
SHELL := bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: all build lint test bench serve smoke loadtest

all: build lint test bench smoke loadtest

build:
	$(GO) build ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test -race ./...

# Three iterations per benchmark: enough to smooth single-sample noise now
# that cmd/benchtrend gates CI on these numbers, still cheap enough for
# every run. benchjson converts the log into BENCH.json (benchmark →
# ns/op, B/op, allocs/op, custom metrics) so the perf trajectory is
# tracked across PRs. CI uploads BENCH.json as an artifact.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x -benchmem ./... | $(GO) run ./cmd/benchjson -o BENCH.json

# Run the policy-serving daemon locally (Ctrl-C to stop).
serve:
	$(GO) run ./cmd/dpmserved -addr localhost:8080

# Build dpmserved with the race detector and drive it end to end: start,
# health check, cold solve, cache hit, a drifting workload streamed through
# the online-adaptation endpoint (dpmfeed), clean SIGTERM shutdown.
smoke:
	$(GO) build -race -o bin/dpmserved ./cmd/dpmserved
	$(GO) build -o bin/dpmfeed ./cmd/dpmfeed
	./scripts/smoke.sh bin/dpmserved bin/dpmfeed

# smoke plus a closed-loop load phase: dpmload drives mixed hit/warm/cold/
# observe traffic at two concurrency levels against the race-instrumented
# daemon with -require-p99, merges the measured req/s and p50/p90/p99 into
# BENCH.json (LoadServed/conc=N entries, gated by cmd/benchtrend alongside
# the solver headlines), and asserts traces stay retrievable under load.
# Run after `make bench` so the merge lands in a fresh BENCH.json.
loadtest:
	$(GO) build -race -o bin/dpmserved ./cmd/dpmserved
	$(GO) build -o bin/dpmfeed ./cmd/dpmfeed
	$(GO) build -o bin/dpmload ./cmd/dpmload
	BENCH_OUT=BENCH.json ./scripts/smoke.sh bin/dpmserved bin/dpmfeed bin/dpmload
