package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
	"repro/internal/sweep"
)

// Fig14a examines paper Fig. 14(a): optimal power versus the time horizon,
// expressed as the per-slice trap-state probability 1−α, for two
// request-loss constraints. SP has the four deep sleep states; performance
// bound 0.5; queue length 2.
//
// This is the one experiment whose direction diverges from the paper, for a
// reason the reproduction makes precise. Under the stopping-time
// formulation, shorter sessions can only be cheaper: any feasible policy
// stays feasible as the horizon shrinks, and transient one-way policies —
// "park in a deep sleep state during what is probably the session's last
// idle period and never pay the wake-up" — add savings that long sessions
// cannot access. So the optimal discounted power *decreases* as the horizon
// shrinks (column "LP power"), opposite to the paper's plot.
//
// The paper's amortization intuition ("the longer the horizon, the longer
// the optimizer can amortize wrong decisions") is real, and shows up in the
// complementary measurement this experiment adds: re-evaluating each
// H-optimized policy on long sessions (the longest swept horizon) shows
// that short-horizon policies are myopically aggressive — their long-run
// penalty/loss blow past the constraints — while long-horizon policies
// remain feasible. Longer optimization horizons buy robustness, which is
// the operational content of the paper's claim.
func Fig14a(cfg Config) (*Result, error) {
	trapProbs := pick(cfg,
		[]float64{1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 3e-5, 1e-5},
		[]float64{1e-2, 1e-3, 1e-4, 1e-5})
	lossBounds := []float64{0.05, 0.25}
	evalAlpha := 1 - trapProbs[len(trapProbs)-1]

	bc := devices.DefaultBaseline()
	bc.Sleep = devices.DeepSleepStates()
	sys, err := devices.BaselineSystem(bc)
	if err != nil {
		return nil, err
	}
	m, err := sys.Build()
	if err != nil {
		return nil, err
	}
	q0, err := baselineInitial(sys)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "fig14a",
		Title: "Baseline system (4 sleep states): optimal power vs time horizon (trap probability)",
	}
	tbl := NewTable("trap prob (1-α)", "horizon", "loss bound",
		"LP power", "long-run power", "long-run penalty", "long-run loss", "feasible long-run")
	// Each (horizon, loss-bound) cell is an independent solve of the same
	// model plus its long-session re-evaluation; fan both out per cell.
	type cell struct {
		r  *core.Result
		ev *core.Evaluation
	}
	cells, err := sweep.Map(context.Background(), sweep.Config{}, len(trapProbs)*len(lossBounds),
		func(_ context.Context, i int) (cell, error) {
			tp, lb := trapProbs[i/len(lossBounds)], lossBounds[i%len(lossBounds)]
			r, err := core.Optimize(m, withMonitor(core.Options{
				Alpha:     1 - tp,
				Initial:   q0,
				Objective: core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
				Bounds: []core.Bound{
					{Metric: core.MetricPenalty, Rel: lp.LE, Value: 0.5},
					{Metric: core.MetricLoss, Rel: lp.LE, Value: lb},
				},
				SkipEvaluation: true,
			}))
			if err != nil {
				return cell{}, nil // rendered as an infeasible row, as before
			}
			// Long-session re-evaluation of the H-optimized policy.
			ev, err := core.Evaluate(m, r.Policy, q0, evalAlpha)
			if err != nil {
				return cell{}, err
			}
			return cell{r: r, ev: ev}, nil
		})
	if err != nil {
		return nil, err
	}
	for ti, tp := range trapProbs {
		for li, lb := range lossBounds {
			c := cells[ti*len(lossBounds)+li]
			res.TallySolve(c.r)
			series := "tight"
			if lb > 0.05 {
				series = "loose"
			}
			if c.r == nil {
				tbl.AddRow(tp, 1/tp, lb, "infeasible", "-", "-", "-", "-")
				res.AddSeries("lp_"+series, Point{X: tp})
				continue
			}
			ev := c.ev
			longOK := ev.Average(core.MetricPenalty) <= 0.5+1e-6 && ev.Average(core.MetricLoss) <= lb+1e-6
			res.AddSeries("lp_"+series, Point{X: tp, Y: c.r.Objective, Feasible: true})
			res.AddSeries("longrun_ok_"+series, Point{X: tp, Y: b2f(longOK), Feasible: true})
			tbl.AddRow(tp, 1/tp, lb, c.r.Objective,
				ev.Average(core.MetricPower), ev.Average(core.MetricPenalty), ev.Average(core.MetricLoss),
				fmt.Sprintf("%v", longOK))
		}
	}
	res.Table = tbl
	res.Notef("DIVERGENCE from paper Fig. 14(a): the optimal discounted power decreases for *shorter* horizons — transient one-way (\"final park\") policies are feasible only for short sessions")
	res.Notef("the paper's amortization claim appears as robustness: short-horizon policies violate the constraints when run over long sessions; long-horizon policies stay feasible")
	return res, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Fig14b reproduces paper Fig. 14(b): optimal power versus the maximum
// queue length, for three request-loss constraints with the performance
// bound fixed at 0.5.
//
// Expected shapes (the paper's "more involved" ones): when the loss
// constraint dominates, longer queues reduce the chance of a full queue and
// power can drop; when the performance (waiting-time) constraint dominates,
// a high-capacity queue lets backlog — and hence average waiting — grow, so
// shorter queues do better.
func Fig14b(cfg Config) (*Result, error) {
	queueLens := pick(cfg, []int{1, 2, 3, 4, 6, 8}, []int{1, 2, 4, 8})
	lossBounds := []struct {
		name  string
		bound float64
	}{
		{"tight", 0.02},
		{"medium", 0.1},
		{"loose", 0.6},
	}
	alpha := core.HorizonToAlpha(pick(cfg, 1e4, 1e3))

	res := &Result{
		ID:    "fig14b",
		Title: "Baseline system (4 sleep states): optimal power vs queue length",
	}
	tbl := NewTable("queue length", "power (loss ≤ 0.02)", "power (loss ≤ 0.1)", "power (loss ≤ 0.6)")
	cells, err := sweep.Map(context.Background(), sweep.Config{}, len(queueLens)*len(lossBounds),
		func(_ context.Context, i int) (solvedPower, error) {
			q, lb := queueLens[i/len(lossBounds)], lossBounds[i%len(lossBounds)]
			bc := devices.DefaultBaseline()
			bc.Sleep = devices.DeepSleepStates()
			bc.QueueCap = q
			return minPowerBaseline(bc, alpha, []core.Bound{
				{Metric: core.MetricPenalty, Rel: lp.LE, Value: 0.5},
				{Metric: core.MetricLoss, Rel: lp.LE, Value: lb.bound},
			})
		})
	if err != nil {
		return nil, err
	}
	powers := tallyPowers(res, cells)
	for qi, q := range queueLens {
		row := []any{q}
		for li, lb := range lossBounds {
			p := powers[qi*len(lossBounds)+li]
			res.AddSeries("loss_"+lb.name, Point{X: float64(q), Y: p, Feasible: !math.IsInf(p, 1)})
			row = append(row, p)
		}
		tbl.AddRow(row...)
	}
	res.Table = tbl
	res.Notef("loss-dominated regime: longer queues help; performance-dominated regime: shorter queues win (paper Fig. 14(b))")
	return res, nil
}
