package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
)

// Fig6 reproduces paper Fig. 6: Pareto curves of the example system —
// optimal expected power versus the average-queue-length constraint — for
// three request-loss constraint settings. The expected shapes (Section
// IV-A): under a very tight loss bound the loss constraint dominates and
// the curve is flat at maximal power; under a loose bound the performance
// constraint alone shapes a monotone decreasing curve; an intermediate
// bound shows both regimes. Performance bounds below the minimum achievable
// average queue length are infeasible (the paper's infeasible region).
func Fig6(cfg Config) (*Result, error) {
	sys := devices.ExampleSystem()
	m, err := sys.Build()
	if err != nil {
		return nil, err
	}
	alpha := core.HorizonToAlpha(1e5)
	q0 := core.Delta(m.N, sys.Index(core.State{SP: 0, SR: 0, Q: 0}))

	// Minimum achievable loss for this system is ≈0.252 (a full queue stays
	// full through a burst, Eq. 3 corner case) and minimum average queue is
	// ≈0.262 (the always-on value), so the three bounds straddle the
	// regimes like the paper's three curves do.
	lossBounds := []float64{0.253, 0.28, 0.50}
	lossLabels := []string{"tight", "medium", "loose"}

	penBounds := []float64{0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.60, 0.70, 0.80, 0.90}
	if cfg.Quick {
		penBounds = []float64{0.20, 0.30, 0.40, 0.50, 0.70, 0.90}
	}

	res := &Result{
		ID:    "fig6",
		Title: "Example system Pareto curves: optimal power vs average queue length, three loss bounds",
	}
	tbl := NewTable(append([]string{"penalty ≤"}, func() []string {
		cols := make([]string, len(lossBounds))
		for i, lb := range lossBounds {
			cols[i] = fmt.Sprintf("power (loss ≤ %.3g, %s)", lb, lossLabels[i])
		}
		return cols
	}()...)...)

	powers := make([][]float64, len(lossBounds))
	for li, lb := range lossBounds {
		opts := withMonitor(core.Options{
			Alpha:          alpha,
			Initial:        q0,
			Objective:      core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
			Bounds:         []core.Bound{{Metric: core.MetricLoss, Rel: lp.LE, Value: lb}},
			SkipEvaluation: true,
		})
		pts, err := core.ParetoSweep(m, opts, core.MetricPenalty, lp.LE, penBounds)
		if err != nil {
			return nil, err
		}
		powers[li] = make([]float64, len(pts))
		series := fmt.Sprintf("loss_%s", lossLabels[li])
		for i, p := range pts {
			if p.Feasible {
				powers[li][i] = p.Objective
			} else {
				powers[li][i] = math.Inf(1)
			}
			res.AddSeries(series, Point{X: p.BoundValue, Y: powers[li][i], Feasible: p.Feasible})
		}
	}
	for i, pb := range penBounds {
		cells := make([]any, 0, len(lossBounds)+1)
		cells = append(cells, pb)
		for li := range lossBounds {
			cells = append(cells, powers[li][i])
		}
		tbl.AddRow(cells...)
	}
	res.Table = tbl
	res.Notef("infeasible region below the minimum achievable average queue length (paper: <0.175 for its workload; here ≈0.26)")
	res.Notef("tight loss bound ⇒ flat near-maximal power; loose bound ⇒ monotone decreasing tradeoff (paper Fig. 6 shapes)")
	return res, nil
}
