package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
	"repro/internal/policy"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Fig9b reproduces paper Fig. 9(b): the SA-1100 CPU under a Markovian
// workload — optimal stochastic control (solid curve: minimum power for
// each bound on the probability of a request arriving while the CPU
// sleeps) versus the timeout heuristic (dashed curve: power and penalty of
// timeout policies across timeout values, measured by long model-driven
// simulation).
//
// Expected shape: the optimal curve dominates the timeout curve everywhere;
// the gap is the power a timeout policy wastes while waiting for its
// timeout to expire (paper Section VI-C).
func Fig9b(cfg Config) (*Result, error) {
	rng := newRNG(cfg, 10)
	n := pick(cfg, 200000, 50000)
	// Interactive CPU workload at 50 ms slices: bursts of ~0.5 s separated
	// by idle gaps of ~2.5 s.
	counts := trace.OnOff(rng, n, 0.02, 0.10)

	sr, err := trace.ExtractSR("cpu-workload", counts, 1)
	if err != nil {
		return nil, err
	}
	sys := devices.CPUSystem(sr)
	m, err := sys.Build()
	if err != nil {
		return nil, err
	}
	alpha := core.HorizonToAlpha(pick(cfg, 1e5, 1e4))
	initial := core.State{SP: devices.CPUActive}
	q0 := core.Delta(m.N, sys.Index(initial))

	res := &Result{
		ID:    "fig9b",
		Title: "SA-1100 CPU: optimal stochastic control vs timeout heuristic (Markovian workload)",
	}
	tbl := NewTable("policy", "parameter", "power (W)", "penalty", "source")

	penBounds := pick(cfg,
		[]float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.035, 0.05, 0.08},
		[]float64{0.002, 0.01, 0.035, 0.08})
	pts, err := sweep.Pareto(context.Background(), m, withMonitor(core.Options{
		Alpha:          alpha,
		Initial:        q0,
		Objective:      core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		SkipEvaluation: true,
	}), core.MetricPenalty, lp.LE, penBounds, paretoCfg())
	if err != nil {
		return nil, err
	}
	res.TallySweep(pts)
	for _, pt := range pts {
		if !pt.Feasible {
			tbl.AddRow("optimal", fmt.Sprintf("penalty ≤ %.3g", pt.BoundValue), "infeasible", "-", "LP")
			continue
		}
		res.AddSeries("optimal", Point{X: pt.Averages[core.MetricPenalty], Y: pt.Objective, Feasible: true})
		tbl.AddRow("optimal", fmt.Sprintf("penalty ≤ %.3g", pt.BoundValue), pt.Objective, pt.Averages[core.MetricPenalty], "LP")
	}

	// Timeout heuristic, measured by long model-driven simulation.
	simSlices := int64(pick(cfg, 2000000, 300000))
	simSeed := cfg.Seed + 77
	for _, timeout := range pick(cfg,
		[]int64{0, 1, 2, 5, 10, 20, 50, 100, 200},
		[]int64{0, 2, 10, 50, 200}) {
		ctrl := &policy.Timeout{WakeCmd: devices.CPURun, SleepCmd: devices.CPUShutdown, Timeout: timeout}
		st, err := simulateModel(m, ctrl, initial, simSeed, simSlices)
		if err != nil {
			return nil, err
		}
		res.AddSeries("timeout", Point{X: st.Averages[core.MetricPenalty], Y: st.Averages[core.MetricPower], Feasible: true})
		tbl.AddRow("timeout", fmt.Sprintf("T = %d slices", timeout),
			st.Averages[core.MetricPower], st.Averages[core.MetricPenalty], "model sim")
		simSeed++
	}
	res.Table = tbl

	worst := 0.0
	for _, p := range res.Series["timeout"] {
		opt := curveAt(res.Series["optimal"], p.X)
		if d := opt - p.Y; d > worst {
			worst = d
		}
	}
	res.Notef("max timeout-below-optimal margin: %s W (≤ ~0 expected: stochastic control dominates, paper Fig. 9(b))", fmtW(worst))
	return res, nil
}
