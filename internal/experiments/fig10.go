package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
	"repro/internal/policy"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Fig10 reproduces paper Fig. 10 / Example 7.1: the CPU study repeated on a
// highly non-stationary, non-Markovian workload built by concatenating two
// synthetic traces with completely different statistics — interactive
// editing (short bursts, long gaps) followed by compilation (one long
// activity phase). A single two-state Markov SR is characterized on the
// whole trace (deliberately mis-modeling it), optimal policies are computed
// against that model, and both they and timeout policies are then measured
// on the original trace.
//
// Expected outcome: because the stationary-Markov assumption is violated,
// the optimal policies lose their guarantee, and some timeout points
// outperform some stochastic-control points (the paper's caveat about the
// domain of validity of the method).
func Fig10(cfg Config) (*Result, error) {
	rng := newRNG(cfg, 11)
	half := pick(cfg, 150000, 40000)
	counts := trace.Concat(trace.Editor(rng, half), trace.Compile(rng, half))

	sr, err := trace.ExtractSR("merged-workload", counts, 1)
	if err != nil {
		return nil, err
	}
	sys := devices.CPUSystem(sr)
	m, err := sys.Build()
	if err != nil {
		return nil, err
	}
	alpha := core.HorizonToAlpha(pick(cfg, 1e5, 1e4))
	initial := core.State{SP: devices.CPUActive}
	q0 := core.Delta(m.N, sys.Index(initial))

	res := &Result{
		ID:    "fig10",
		Title: "CPU with non-stationary workload: stochastic control loses its optimality guarantee",
	}
	tbl := NewTable("policy", "parameter", "power (W)", "penalty", "source")

	simSeed := cfg.Seed + 55
	pts, err := sweep.Pareto(context.Background(), m, withMonitor(core.Options{
		Alpha:          alpha,
		Initial:        q0,
		Objective:      core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		SkipEvaluation: true,
	}), core.MetricPenalty, lp.LE, []float64{0.002, 0.01, 0.03, 0.08}, paretoCfg())
	if err != nil {
		return nil, err
	}
	res.TallySweep(pts)
	for _, pt := range pts {
		if !pt.Feasible {
			tbl.AddRow("stochastic", fmt.Sprintf("penalty ≤ %.3g", pt.BoundValue), "infeasible", "-", "LP")
			continue
		}
		v, r := pt.BoundValue, pt.Result
		ctrl, err := stationaryCtrl(sys, r.Policy, simSeed)
		if err != nil {
			return nil, err
		}
		st, err := simulateTrace(m, ctrl, initial, simSeed, counts)
		if err != nil {
			return nil, err
		}
		res.AddSeries("stochastic", Point{X: st.Averages[core.MetricPenalty], Y: st.Averages[core.MetricPower], Feasible: true})
		tbl.AddRow("stochastic", fmt.Sprintf("penalty ≤ %.3g (on model)", v),
			st.Averages[core.MetricPower], st.Averages[core.MetricPenalty], "trace sim")
		simSeed++
	}

	for _, timeout := range []int64{0, 2, 5, 10, 20, 50, 100} {
		ctrl := &policy.Timeout{WakeCmd: devices.CPURun, SleepCmd: devices.CPUShutdown, Timeout: timeout}
		st, err := simulateTrace(m, ctrl, initial, simSeed, counts)
		if err != nil {
			return nil, err
		}
		res.AddSeries("timeout", Point{X: st.Averages[core.MetricPenalty], Y: st.Averages[core.MetricPower], Feasible: true})
		tbl.AddRow("timeout", fmt.Sprintf("T = %d slices", timeout),
			st.Averages[core.MetricPower], st.Averages[core.MetricPenalty], "trace sim")
		simSeed++
	}
	res.Table = tbl

	// Count timeout points that Pareto-dominate at least one stochastic
	// point on the real trace (both metrics at least as good, one strictly).
	dominations := 0
	for _, t := range res.Series["timeout"] {
		for _, s := range res.Series["stochastic"] {
			if t.Y <= s.Y+1e-9 && t.X <= s.X+1e-9 && (t.Y < s.Y-1e-6 || t.X < s.X-1e-6) {
				dominations++
				break
			}
		}
	}
	res.AddSeries("dominations", Point{X: 0, Y: float64(dominations), Feasible: true})
	res.Notef("%d of %d timeout points Pareto-dominate some stochastic-control point on the non-stationary trace (paper: \"in some cases, timeout-based shutdown outperforms stochastic control\")",
		dominations, len(res.Series["timeout"]))
	return res, nil
}
