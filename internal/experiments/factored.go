package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Factored demonstrates the matrix-free Kronecker evaluation path on the
// heterogeneous k-component platform: policies are evaluated (discounted
// occupancy + metric averages) and simulated against the lazy factored
// operators, with the expanded joint chains never compiled.
//
// The k=4 leg doubles as the parity oracle: its composed chain is small
// enough for the classic Build + dense-LU route, and the factored evaluation
// must agree with it to 1e-8 on every metric. The k=6 and k=8 legs are
// factored-only — at k=8 the expanded representation would need six joint
// CSR chains of ~87k×87k — and each row records how many joint chains the
// run compiled (always zero on the factored path).
func Factored(cfg Config) (*Result, error) {
	ks := pick(cfg, []int{4, 6, 8}, []int{4})
	alpha := core.HorizonToAlpha(500)
	simSlices := pick(cfg, int64(200000), int64(20000))

	res := &Result{
		ID:    "factored",
		Title: "Matrix-free factored evaluation of heterogeneous k-component platforms",
	}
	tbl := NewTable("k", "states", "factor nnz", "power", "penalty", "loss",
		"sim power", "max|Δ| vs direct", "joint chains compiled")

	for _, k := range ks {
		sys, err := devices.HeterogeneousSystem(k, 2, core.TwoStateSR("web", 0.12, 0.3))
		if err != nil {
			return nil, err
		}
		fsp := sys.SP.(*core.FactoredSP)
		n := sys.NumStates()
		pol, err := core.ConstantPolicy(n, sys.SP.A(), 0)
		if err != nil {
			return nil, err
		}
		q0 := core.Delta(n, 0)

		ev, err := core.EvaluateFactored(sys, pol, q0, alpha)
		if err != nil {
			return nil, err
		}

		// Model-free simulation cross-check on the same factored provider.
		s, err := sim.NewDirect(sys, &policy.Constant{Cmd: 0}, sim.Config{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		st, err := s.Run(simSlices)
		if err != nil {
			return nil, err
		}

		// Parity oracle: the k=4 composed chain fits the classic expanded
		// route (Build + direct dense solve), which must agree to 1e-8.
		delta := "-"
		if n <= 2048 {
			m, err := sys.Build()
			if err != nil {
				return nil, err
			}
			exact, err := core.Evaluate(m, pol, q0, alpha)
			if err != nil {
				return nil, err
			}
			d := 0.0
			for name, want := range exact.Averages {
				if x := math.Abs(ev.Averages[name] - want); x > d {
					d = x
				}
			}
			res.AddSeries("parity_delta", Point{X: float64(k), Y: d, Feasible: true})
			delta = fmt.Sprintf("%.2g", d)
		} else if got := fsp.CompiledChains(); got != 0 {
			res.Notef("k=%d: factored run unexpectedly compiled %d joint chains", k, got)
		}

		fnnz := fsp.Op(0).FactorNNZ()
		res.AddSeries("factored_power", Point{X: float64(k), Y: ev.Averages[core.MetricPower], Feasible: true})
		tbl.AddRow(k, n, fnnz,
			ev.Averages[core.MetricPower], ev.Averages[core.MetricPenalty], ev.Averages[core.MetricLoss],
			st.Averages[core.MetricPower], delta, fsp.CompiledChains())
	}
	res.Table = tbl
	res.Notef("evaluation and simulation run against lazy Kronecker operators: cost per sweep is Σᵢ nnz(partᵢ)·(N/|Sᵢ|), and the Π-sized joint CSRs are never built on the factored path")
	res.Notef("the k=4 row is the oracle: factored iterative evaluation vs expanded dense-LU evaluation agree to 1e-8 on every metric")
	return res, nil
}
