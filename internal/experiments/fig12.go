package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
	"repro/internal/mat"
	"repro/internal/sweep"
)

// baselineInitial returns the neutral initial distribution used by all
// Appendix-B experiments: SP active, queue empty, SR in its stationary
// distribution. Starting the SR at a fixed state would bias short-horizon
// results (the whole session would see the initial idle or busy run).
func baselineInitial(sys *core.System) (mat.Vector, error) {
	chain, err := sys.SR.Chain()
	if err != nil {
		return nil, err
	}
	pi, err := chain.Stationary()
	if err != nil {
		return nil, err
	}
	q0 := mat.NewVector(sys.NumStates())
	for r, p := range pi {
		q0[sys.Index(core.State{SP: 0, SR: r, Q: 0})] = p
	}
	return q0, nil
}

// solvedPower pairs one cell's optimal power with the solver record behind
// it, so experiments that fan cells out on sweep.Map can fold the solver
// work into the Result tally after the parallel fan-in.
type solvedPower struct {
	power float64
	res   *core.Result
}

// minPowerBaseline optimizes min power for a baseline configuration under
// the given bounds; the power is +Inf when infeasible.
func minPowerBaseline(cfg devices.BaselineConfig, alpha float64, bounds []core.Bound) (solvedPower, error) {
	sys, err := devices.BaselineSystem(cfg)
	if err != nil {
		return solvedPower{}, err
	}
	m, err := sys.Build()
	if err != nil {
		return solvedPower{}, err
	}
	q0, err := baselineInitial(sys)
	if err != nil {
		return solvedPower{}, err
	}
	r, err := core.Optimize(m, withMonitor(core.Options{
		Alpha:          alpha,
		Initial:        q0,
		Objective:      core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds:         bounds,
		SkipEvaluation: true,
	}))
	if err != nil {
		if r != nil && r.Status == lp.Infeasible {
			return solvedPower{power: math.Inf(1), res: r}, nil
		}
		return solvedPower{}, err
	}
	return solvedPower{power: r.Objective, res: r}, nil
}

// tallyPowers folds each cell's solver record into the result and returns
// the plain power values in cell order.
func tallyPowers(res *Result, cells []solvedPower) []float64 {
	powers := make([]float64, len(cells))
	for i, c := range cells {
		res.TallySolve(c.res)
		powers[i] = c.power
	}
	return powers
}

// Fig12a reproduces paper Fig. 12(a): optimal power versus the set of
// available sleep states, under a tight and a loose performance constraint,
// time horizon 500 slices.
//
// Expected shapes: adding sleep states never increases power (the policy
// space nests); the marginal benefit of deep states shrinks when the
// performance constraint is tight; a single well-chosen deep state can beat
// the shallow baseline.
func Fig12a(cfg Config) (*Result, error) {
	all := devices.DeepSleepStates()
	structures := []struct {
		name string
		sel  []int
	}{
		{"s1", []int{0}},
		{"s1+s2", []int{0, 1}},
		{"s1+s2+s3", []int{0, 1, 2}},
		{"s1..s4", []int{0, 1, 2, 3}},
		{"s2", []int{1}},
		{"s4", []int{3}},
	}
	constraints := []struct {
		name  string
		bound float64
	}{
		{"tight", 0.05},
		{"loose", 0.5},
	}
	alpha := core.HorizonToAlpha(500)

	res := &Result{
		ID:    "fig12a",
		Title: "Baseline system: optimal power vs available sleep states (horizon 500)",
	}
	tbl := NewTable("sleep states", "power (perf ≤ 0.05)", "power (perf ≤ 0.5)")
	// One independent model build + solve per (structure, constraint) cell,
	// fanned out on the sweep engine's worker pool.
	cells, err := sweep.Map(context.Background(), sweep.Config{}, len(structures)*len(constraints),
		func(_ context.Context, i int) (solvedPower, error) {
			s, c := structures[i/len(constraints)], constraints[i%len(constraints)]
			bc := devices.DefaultBaseline()
			bc.Sleep = nil
			for _, k := range s.sel {
				bc.Sleep = append(bc.Sleep, all[k])
			}
			return minPowerBaseline(bc, alpha, []core.Bound{
				{Metric: core.MetricPenalty, Rel: lp.LE, Value: c.bound},
			})
		})
	if err != nil {
		return nil, err
	}
	powers := tallyPowers(res, cells)
	for si, s := range structures {
		row := []any{s.name}
		for ci, c := range constraints {
			p := powers[si*len(constraints)+ci]
			res.AddSeries(c.name, Point{X: float64(si), Y: p, Feasible: !math.IsInf(p, 1)})
			row = append(row, p)
		}
		tbl.AddRow(row...)
	}
	res.Table = tbl
	res.Notef("adding sleep states never increases optimal power (nested policy spaces); deep states help less under the tight constraint (paper Fig. 12(a))")
	return res, nil
}

// Fig12b reproduces paper Fig. 12(b): optimal power versus the sleep-state
// exit transition probability (inverse of the average wake time), for sleep
// power 2 W and 0 W, each under a performance-dominated and a
// loss-dominated constraint.
//
// Expected shapes: faster transitions (larger probability, right side) give
// lower power; with very slow transitions the sleep state goes unused and
// power stays at the active level; a fast 2 W sleep state can beat a slow
// 0 W one.
func Fig12b(cfg Config) (*Result, error) {
	wakeProbs := pick(cfg,
		[]float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0},
		[]float64{0.001, 0.01, 0.1, 1.0})
	sleepPowers := []float64{2, 0}
	constraints := []struct {
		name  string
		bound core.Bound
	}{
		{"perf", core.Bound{Metric: core.MetricPenalty, Rel: lp.LE, Value: 0.5}},
		{"loss", core.Bound{Metric: core.MetricDrops, Rel: lp.LE, Value: 0.02}},
	}
	alpha := core.HorizonToAlpha(1000)

	res := &Result{
		ID:    "fig12b",
		Title: "Baseline system: optimal power vs sleep-state transition speed",
	}
	tbl := NewTable("wake prob", "sleep 2W/perf", "sleep 2W/loss", "sleep 0W/perf", "sleep 0W/loss")
	perRow := len(sleepPowers) * len(constraints)
	cells, err := sweep.Map(context.Background(), sweep.Config{}, len(wakeProbs)*perRow,
		func(_ context.Context, i int) (solvedPower, error) {
			wp := wakeProbs[i/perRow]
			sp := sleepPowers[i%perRow/len(constraints)]
			c := constraints[i%len(constraints)]
			bc := devices.DefaultBaseline()
			bc.Sleep = []devices.SleepState{{Name: "sleep", Power: sp, WakeProb: wp}}
			return minPowerBaseline(bc, alpha, []core.Bound{c.bound})
		})
	if err != nil {
		return nil, err
	}
	powers := tallyPowers(res, cells)
	for wi, wp := range wakeProbs {
		row := []any{wp}
		for si, sp := range sleepPowers {
			for ci, c := range constraints {
				p := powers[wi*perRow+si*len(constraints)+ci]
				res.AddSeries(fmt.Sprintf("p%g_%s", sp, c.name), Point{X: wp, Y: p, Feasible: !math.IsInf(p, 1)})
				row = append(row, p)
			}
		}
		tbl.AddRow(row...)
	}
	res.Table = tbl
	res.Notef("power is strongly sensitive to transition speed; slow transitions leave the sleep state unused (power ≈ active 3 W), paper Fig. 12(b)")
	return res, nil
}
