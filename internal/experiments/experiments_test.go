package experiments

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

// Experiments are deterministic for a fixed Config, so results are computed
// once and shared across shape tests.
var (
	cacheMu sync.Mutex
	cache   = map[string]*Result{}
)

func run(t *testing.T, id string) *Result {
	t.Helper()
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if r, ok := cache[id]; ok {
		return r
	}
	r, err := Run(id, Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("experiment %s: %v", id, err)
	}
	cache[id] = r
	return r
}

// series fetches a named series or fails.
func series(t *testing.T, r *Result, name string) []Point {
	t.Helper()
	s, ok := r.Series[name]
	if !ok || len(s) == 0 {
		t.Fatalf("%s: series %q missing (have %v)", r.ID, name, keys(r.Series))
	}
	return s
}

func keys(m map[string][]Point) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// feasibleYs extracts the Y values of feasible points in order.
func feasibleYs(pts []Point) []float64 {
	var ys []float64
	for _, p := range pts {
		if p.Feasible {
			ys = append(ys, p.Y)
		}
	}
	return ys
}

// monotone checks that ys is non-increasing (dir < 0) or non-decreasing
// (dir > 0) within tol.
func monotone(t *testing.T, label string, ys []float64, dir int, tol float64) {
	t.Helper()
	for i := 1; i < len(ys); i++ {
		d := ys[i] - ys[i-1]
		if dir < 0 && d > tol {
			t.Errorf("%s: not non-increasing at %d: %g → %g", label, i, ys[i-1], ys[i])
		}
		if dir > 0 && d < -tol {
			t.Errorf("%s: not non-decreasing at %d: %g → %g", label, i, ys[i-1], ys[i])
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"exampleA2", "factored", "fig10", "fig12a", "fig12b", "fig13a", "fig13b",
		"fig14a", "fig14b", "fig6", "fig8b", "fig9a", "fig9b", "table1"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	if _, err := Run("nope", Config{}); err == nil {
		t.Errorf("unknown experiment accepted")
	}
}

func TestRenderAndTable(t *testing.T) {
	r := run(t, "table1")
	var buf bytes.Buffer
	if err := Render(&buf, r); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if buf.Len() == 0 || !bytes.Contains(buf.Bytes(), []byte("table1")) {
		t.Errorf("render output missing content")
	}
}

// TestTable1Exact: the disk model reproduces Table I transition times and
// powers exactly.
func TestTable1Exact(t *testing.T) {
	r := run(t, "table1")
	for _, p := range series(t, r, "transition_ms") {
		if math.Abs(p.Y-p.X) > 1e-6*p.X {
			t.Errorf("transition time %g slices, want %g (Table I)", p.Y, p.X)
		}
	}
	for _, p := range series(t, r, "power_w") {
		if p.Y != p.X {
			t.Errorf("power %g W, want %g W (Table I)", p.Y, p.X)
		}
	}
}

// TestFig6Shapes: tight loss bound pins power near the maximum; the loose
// curve decreases substantially; an infeasible region exists.
func TestFig6Shapes(t *testing.T) {
	r := run(t, "fig6")
	tight := series(t, r, "loss_tight")
	loose := series(t, r, "loss_loose")

	infeasibleSeen := false
	for _, p := range tight {
		if !p.Feasible {
			infeasibleSeen = true
		}
	}
	if !infeasibleSeen {
		t.Errorf("no infeasible region (paper: bounds below the minimum achievable queue length)")
	}

	ys := feasibleYs(tight)
	if len(ys) == 0 {
		t.Fatalf("tight curve fully infeasible")
	}
	if spread := ys[0] - ys[len(ys)-1]; spread > 0.2 {
		t.Errorf("tight-loss curve not flat: spread %g", spread)
	}
	if ys[0] < 2.8 {
		t.Errorf("tight-loss power %g, want near the 3 W maximum", ys[0])
	}

	lys := feasibleYs(loose)
	monotone(t, "fig6 loose", lys, -1, 1e-6)
	if lys[0]-lys[len(lys)-1] < 1.0 {
		t.Errorf("loose curve spans only %g W, want a substantial tradeoff", lys[0]-lys[len(lys)-1])
	}
}

// TestFig8bShapes: the optimal curve is non-increasing; simulated circles
// sit near it; no heuristic beats the exact per-point optimum by more than
// trace/model mismatch noise.
func TestFig8bShapes(t *testing.T) {
	r := run(t, "fig8b")
	opt := series(t, r, "optimal")
	monotone(t, "fig8b optimal", feasibleYs(opt), -1, 1e-6)

	for _, p := range series(t, r, "simulated") {
		want := curveAt(opt, p.X)
		if p.Y > want+0.25 {
			t.Errorf("simulated point (%g, %g) far above curve value %g", p.X, p.Y, want)
		}
	}
	// Heuristics are measured on the trace while the optimum is computed on
	// the extracted model, so the margin carries extraction sampling error;
	// quick mode's 60k-slice trace leaves ~0.2 W of it (the full-scale run
	// recorded in EXPERIMENTS.md measures 0.01 W).
	margin := series(t, r, "dominance_margin")[0].Y
	if margin > 0.2 {
		t.Errorf("heuristic beats the optimal curve by %g W (model mismatch should stay below 0.2)", margin)
	}
	// The deepest greedy policies must be far off the curve (the paper's
	// point that eager deep shutdown is counterproductive on a fast-wake
	// scale): greedy-sleep costs more power than greedy-idle.
	greedy := series(t, r, "greedy")
	if greedy[3].Y < greedy[0].Y {
		t.Errorf("greedy-sleep (%g W) cheaper than greedy-idle (%g W)?", greedy[3].Y, greedy[0].Y)
	}
}

// TestFig9aShapes: the optimal power curve grows with the throughput floor,
// session simulation matches it, and the fast processor is never used
// alone.
func TestFig9aShapes(t *testing.T) {
	r := run(t, "fig9a")
	opt := series(t, r, "optimal")
	monotone(t, "fig9a optimal", feasibleYs(opt), +1, 1e-6)

	simulated := series(t, r, "simulated")
	for i, p := range simulated {
		if d := math.Abs(p.Y - opt[i].Y); d > 0.35 {
			t.Errorf("session-sim power %g vs LP %g at floor %g (Δ=%g)", p.Y, opt[i].Y, p.X, d)
		}
	}
	for _, p := range series(t, r, "p2alone") {
		if p.Y > 1e-6 {
			t.Errorf("processor 2 used alone with frequency %g at floor %g (paper: never)", p.Y, p.X)
		}
	}
}

// TestFig9bShapes: stochastic control dominates the timeout curve.
func TestFig9bShapes(t *testing.T) {
	r := run(t, "fig9b")
	opt := series(t, r, "optimal")
	monotone(t, "fig9b optimal", feasibleYs(opt), -1, 1e-6)
	for _, p := range series(t, r, "timeout") {
		want := curveAt(opt, p.X)
		if want-p.Y > 0.02 {
			t.Errorf("timeout point (%g, %g) beats the optimal curve (%g) by %g W",
				p.X, p.Y, want, want-p.Y)
		}
	}
}

// TestFig10Shapes: on the non-stationary trace at least one timeout policy
// Pareto-dominates a stochastic-control point (the paper's model-mismatch
// caveat).
func TestFig10Shapes(t *testing.T) {
	r := run(t, "fig10")
	if n := series(t, r, "dominations")[0].Y; n < 1 {
		t.Errorf("no timeout point dominates stochastic control (paper found some)")
	}
}

// TestFig12aShapes: nested sleep-state sets give non-increasing power.
func TestFig12aShapes(t *testing.T) {
	r := run(t, "fig12a")
	for _, name := range []string{"tight", "loose"} {
		pts := series(t, r, name)
		// Points 0..3 are the nested structures s1 ⊂ s1+s2 ⊂ s1+s2+s3 ⊂
		// s1..s4.
		nested := feasibleYs(pts[:4])
		monotone(t, "fig12a "+name+" nested", nested, -1, 1e-6)
		// The marginal gain of deep states is smaller under the tight
		// constraint (paper's observation).
		gainTight := series(t, r, "tight")[0].Y - series(t, r, "tight")[3].Y
		gainLoose := series(t, r, "loose")[0].Y - series(t, r, "loose")[3].Y
		if gainTight > gainLoose+1e-9 {
			t.Errorf("deep-state gain under tight constraint (%g) exceeds loose (%g)", gainTight, gainLoose)
		}
	}
}

// TestFig12bShapes: faster transitions never cost more power; very slow
// transitions leave the sleep state unused.
func TestFig12bShapes(t *testing.T) {
	r := run(t, "fig12b")
	for _, name := range []string{"p2_perf", "p2_loss", "p0_perf", "p0_loss"} {
		pts := series(t, r, name)
		monotone(t, "fig12b "+name, feasibleYs(pts), -1, 1e-6)
		// Slowest transition: sleep state barely usable, power near 3 W
		// under the loss constraint (the perf-constrained curves may still
		// exploit the short horizon).
		if name == "p2_loss" || name == "p0_loss" {
			if pts[0].Y < 2.5 {
				t.Errorf("%s at slowest transition: power %g, want near always-on", name, pts[0].Y)
			}
		}
	}
	// A fast 2 W sleep state beats a slow 0 W one (paper's observation).
	p2 := series(t, r, "p2_loss")
	p0 := series(t, r, "p0_loss")
	if p2[len(p2)-1].Y > p0[0].Y {
		t.Errorf("fast 2W sleep (%g) not better than slow 0W sleep (%g)", p2[len(p2)-1].Y, p0[0].Y)
	}
}

// TestFig13aShapes: burstier workloads (smaller flip probability) allow
// lower power at identical load.
func TestFig13aShapes(t *testing.T) {
	r := run(t, "fig13a")
	for _, name := range []string{"tight", "loose"} {
		monotone(t, "fig13a "+name, feasibleYs(series(t, r, name)), +1, 0.02)
	}
	// The effect must be substantial between extremes.
	loose := feasibleYs(series(t, r, "loose"))
	if loose[len(loose)-1]-loose[0] < 0.3 {
		t.Errorf("burstiness effect too small: %g W", loose[len(loose)-1]-loose[0])
	}
}

// TestFig13bShapes: more SR memory never hurts on the ground-truth trace
// cost, and helps more with more sleep states.
func TestFig13bShapes(t *testing.T) {
	r := run(t, "fig13b")
	t1 := feasibleYs(series(t, r, "trace_1-sleep"))
	t2 := feasibleYs(series(t, r, "trace_2-sleep"))
	if t1[len(t1)-1] > t1[0]+0.02 {
		t.Errorf("1-sleep: memory hurt trace cost: %g → %g", t1[0], t1[len(t1)-1])
	}
	if t2[len(t2)-1] > t2[0]+0.02 {
		t.Errorf("2-sleep: memory hurt trace cost: %g → %g", t2[0], t2[len(t2)-1])
	}
	gain1 := t1[0] - t1[len(t1)-1]
	gain2 := t2[0] - t2[len(t2)-1]
	if gain2 < gain1 {
		t.Errorf("memory gain with 2 sleep states (%g) below 1 sleep state (%g)", gain2, gain1)
	}
}

// TestFig14aShapes: the documented divergence (LP power increases with
// horizon under the stopping-time formulation) plus the robustness
// restatement of the paper's claim (long-horizon policies stay feasible on
// long sessions; the shortest-horizon policies do not).
func TestFig14aShapes(t *testing.T) {
	r := run(t, "fig14a")
	for _, name := range []string{"lp_tight", "lp_loose"} {
		// X is the trap probability in decreasing order of horizon... the
		// sweep runs from large trap prob (short horizon) to small (long
		// horizon); LP power must be non-decreasing along it.
		monotone(t, "fig14a "+name, feasibleYs(series(t, r, name)), +1, 1e-6)
	}
	for _, name := range []string{"longrun_ok_tight", "longrun_ok_loose"} {
		ok := series(t, r, name)
		if ok[0].Y != 0 {
			t.Errorf("%s: shortest-horizon policy feasible on long sessions (expected myopic violation)", name)
		}
		if ok[len(ok)-1].Y != 1 {
			t.Errorf("%s: longest-horizon policy infeasible on long sessions", name)
		}
	}
}

// TestFig14bShapes: under a tight (dominating) loss constraint longer
// queues reduce power over the small-capacity range; under a loose one the
// performance constraint dominates and shorter queues win.
func TestFig14bShapes(t *testing.T) {
	r := run(t, "fig14b")
	tight := feasibleYs(series(t, r, "loss_tight"))
	if tight[2] > tight[0]+1e-6 {
		t.Errorf("tight loss: power did not drop with queue capacity (%v)", tight)
	}
	loose := feasibleYs(series(t, r, "loss_loose"))
	monotone(t, "fig14b loose", loose, +1, 1e-6)
}

// TestExampleA2Claims: the worked example's structural results.
func TestExampleA2Claims(t *testing.T) {
	r := run(t, "exampleA2")
	power := series(t, r, "power")[0].Y
	if power >= 3 || power < 1 {
		t.Errorf("optimal power %g outside (1, 3)", power)
	}
	if series(t, r, "penalty")[0].Y > 0.5+1e-6 {
		t.Errorf("penalty bound violated")
	}
	if series(t, r, "loss")[0].Y > 0.3+1e-6 {
		t.Errorf("loss bound violated")
	}
	if series(t, r, "randomized_states")[0].Y < 1 {
		t.Errorf("no randomized state (Theorem A.2)")
	}
}

// TestAllExperimentsRun executes the full registry in quick mode so any
// experiment not covered by a dedicated shape test still gets smoke-tested.
func TestAllExperimentsRun(t *testing.T) {
	for _, id := range IDs() {
		r := run(t, id)
		if r.ID != id {
			t.Errorf("experiment %s returned ID %s", id, r.ID)
		}
		if r.Table == nil || len(r.Table.Rows) == 0 {
			t.Errorf("experiment %s produced no table rows", id)
		}
	}
}

// TestFactoredParity: the factored-evaluation experiment's oracle leg agrees
// with the expanded dense-LU evaluation to 1e-8, and every factored power is
// physical.
func TestFactoredParity(t *testing.T) {
	r := run(t, "factored")
	if d := series(t, r, "parity_delta")[0].Y; d > 1e-8 {
		t.Errorf("factored vs direct parity delta %g > 1e-8", d)
	}
	for _, p := range series(t, r, "factored_power") {
		if p.Y <= 0 {
			t.Errorf("k=%g factored power %g, want > 0", p.X, p.Y)
		}
	}
	if len(r.Table.Rows) == 0 {
		t.Errorf("empty table")
	}
}
