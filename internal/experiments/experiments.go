// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI and Appendix B). Each experiment builds its
// system models, runs the optimizer / simulator / heuristics, and returns
// both a printable table and named numeric series that the shape tests and
// EXPERIMENTS.md rely on.
//
// Experiments accept a Config whose Quick mode shrinks horizons and trace
// lengths so the whole catalogue runs in seconds inside `go test`; the full
// mode (used by cmd/dpmbench and the root benchmarks) uses the paper's
// parameters.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lp"
)

// progressMonitor, when non-nil, rides along on every experiment
// optimization as core.Options.LPMonitor. It is a package-level hook rather
// than a Config field because several experiments solve inside helpers and
// sweep.Map closures that never see the Config; set once before Run
// (dpmbench's -progress flag) and never mutated mid-run.
var progressMonitor lp.Monitor

// SetMonitor attaches a solve flight recorder to every subsequent
// experiment optimization (nil detaches). Monitors are observational only —
// pivot trajectories and results are bit-identical either way — so this
// never changes a reproduced table.
func SetMonitor(m lp.Monitor) { progressMonitor = m }

// withMonitor threads the package monitor into one solve's options.
func withMonitor(o core.Options) core.Options {
	o.LPMonitor = progressMonitor
	return o
}

// Config controls experiment scale.
type Config struct {
	// Quick shrinks horizons, sweep densities and simulation lengths for
	// fast test runs.
	Quick bool
	// Seed drives all synthetic workload generation and simulation.
	Seed int64
}

// Point is one (x, y) sample of a series; infeasible optimization points
// carry Feasible=false and an undefined Y.
type Point struct {
	X, Y     float64
	Feasible bool
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier ("fig6", "table1", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Table is the printable reproduction of the paper artifact.
	Table *Table
	// Series holds named numeric curves/point sets for shape checks.
	Series map[string][]Point
	// Notes records observations (paper claim vs measured shape).
	Notes []string
	// Solver aggregates the LP work behind the experiment (see SolverTally).
	Solver SolverTally
}

// SolverTally sums the solver work of every optimization an experiment ran,
// including the per-stage wall-clock breakdown, so dpmbench's output records
// not just the reproduced numbers but what producing them cost and where the
// time went. Pivot and refactorization counts are deterministic for a fixed
// Config; the stage timings are a measurement of the machine the run
// happened on.
type SolverTally struct {
	Solves           int
	Pivots           int
	Refactorizations int
	Timings          lp.Timings
}

// TallySolve folds one optimization's solver work into the tally.
func (r *Result) TallySolve(res *core.Result) {
	if res == nil {
		return
	}
	r.Solver.Solves++
	r.Solver.Pivots += res.LPIterations
	r.Solver.Refactorizations += res.LPRefactorizations
	r.Solver.Timings.Add(res.LPTimings)
}

// TallySweep folds every solved point of a Pareto sweep into the tally.
func (r *Result) TallySweep(points []core.ParetoPoint) {
	for _, p := range points {
		r.TallySolve(p.Result)
	}
}

// AddSeries appends a point to the named series.
func (r *Result) AddSeries(name string, p Point) {
	if r.Series == nil {
		r.Series = make(map[string][]Point)
	}
	r.Series[name] = append(r.Series[name], p)
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Table is a simple column-aligned text table.
type Table struct {
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(columns ...string) *Table {
	return &Table{Columns: columns}
}

// AddRow appends a row; cells are formatted with %v, floats with %.4g.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			if math.IsInf(v, 1) {
				row[i] = "infeasible"
			} else {
				row[i] = fmt.Sprintf("%.4g", v)
			}
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table with aligned columns.
func (t *Table) Format(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i, w := range widths {
		rule[i] = strings.Repeat("-", w)
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Runner is an experiment entry point.
type Runner func(cfg Config) (*Result, error)

// Registry maps experiment ids to runners, in the order of DESIGN.md §5.
var Registry = map[string]Runner{
	"table1":    Table1,
	"fig6":      Fig6,
	"fig8b":     Fig8b,
	"fig9a":     Fig9a,
	"fig9b":     Fig9b,
	"fig10":     Fig10,
	"fig12a":    Fig12a,
	"fig12b":    Fig12b,
	"fig13a":    Fig13a,
	"fig13b":    Fig13b,
	"fig14a":    Fig14a,
	"fig14b":    Fig14b,
	"exampleA2": ExampleA2,
	"factored":  Factored,
}

// IDs returns the registered experiment ids in stable order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the named experiment.
func Run(id string, cfg Config) (*Result, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(cfg)
}

// Render writes a full result (title, table, notes) to w.
func Render(w io.Writer, res *Result) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", res.ID, res.Title); err != nil {
		return err
	}
	if res.Table != nil {
		if err := res.Table.Format(w); err != nil {
			return err
		}
	}
	for _, n := range res.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	if s := res.Solver; s.Solves > 0 {
		ms := func(d time.Duration) string { return fmt.Sprintf("%.1fms", float64(d)/1e6) }
		t := s.Timings
		if _, err := fmt.Fprintf(w,
			"solver: %d solves, %d pivots, %d refactorizations; ftran %s btran %s price %s factor %s update %s\n",
			s.Solves, s.Pivots, s.Refactorizations,
			ms(t.Ftran), ms(t.Btran), ms(t.Price), ms(t.Factor), ms(t.Update)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
