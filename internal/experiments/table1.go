package experiments

import (
	"fmt"

	"repro/internal/devices"
)

// Table1 reproduces paper Table I (hard-disk power states) and verifies
// that the 11-state SP model's expected transition times to active — with
// go_active asserted continuously, computed by hitting-time analysis —
// match the data-sheet values exactly.
func Table1(cfg Config) (*Result, error) {
	sp := devices.DiskSP()
	if err := sp.Validate(); err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "table1",
		Title: "Disk drive power states (IBM Travelstar VP): transition time to active and power",
	}
	tbl := NewTable("State", "T→active (paper)", "T→active (model)", "Power (paper)", "Power (model)")

	rows := []struct {
		name   string
		state  int
		paperT string // as printed in Table I
		wantT  float64
		paperP float64
	}{
		{"active", devices.DiskActive, "NA", 0, 2.5},
		{"idle", devices.DiskIdle, "1.0 ms", 1, 1.0},
		{"LPidle", devices.DiskLPIdle, "40 ms", 40, 0.8},
		{"standby", devices.DiskStandby, "2.2 s", 2200, 0.3},
		{"sleep", devices.DiskSleep, "6.0 s", 6000, 0.1},
	}
	for _, r := range rows {
		modelT := "NA"
		if r.state != devices.DiskActive {
			et, err := sp.ExpectedTransitionTime(r.state, devices.DiskActive, devices.DiskGoActive)
			if err != nil {
				return nil, err
			}
			modelT = fmt.Sprintf("%g ms", et*devices.DiskTimeResolution*1000)
			res.AddSeries("transition_ms", Point{X: r.wantT, Y: et, Feasible: true})
		}
		modelP := sp.Power.At(r.state, devices.DiskGoActive)
		tbl.AddRow(r.name, r.paperT, modelT, fmt.Sprintf("%.1f W", r.paperP), fmt.Sprintf("%.1f W", modelP))
		res.AddSeries("power_w", Point{X: r.paperP, Y: modelP, Feasible: true})
	}
	res.Table = tbl
	res.Notef("model expected transition times reproduce Table I exactly (geometric holding times per Eq. 2)")
	return res, nil
}
