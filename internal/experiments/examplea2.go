package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
)

// ExampleA2 reproduces the worked example of paper Appendix A (Example
// A.2): minimum-power policy optimization of the eight-state example
// system at horizon 10⁵ with a performance bound of 0.5 and a request-loss
// bound, starting from (on, no request, empty queue). The output is the
// full optimal policy matrix with the per-state state-action frequencies.
//
// The paper's exact SR numbers did not survive text extraction; with the
// Example-3.2-consistent SR used here the minimum achievable loss is ≈0.25,
// so the loss bound is 0.3 (the paper used 0.2 for its slightly different
// workload). The structural results carry over: at least one active
// constraint, a randomized decision in the states where it binds (Theorem
// A.2), and roughly a factor-of-two power reduction over never shutting
// down (paper: 1.54 W… ≈ half of the 3 W always-on power).
func ExampleA2(cfg Config) (*Result, error) {
	sys := devices.ExampleSystem()
	m, err := sys.Build()
	if err != nil {
		return nil, err
	}
	alpha := core.HorizonToAlpha(1e5)
	q0 := core.Delta(m.N, sys.Index(core.State{SP: 0, SR: 0, Q: 0}))

	r, err := core.Optimize(m, withMonitor(core.Options{
		Alpha:     alpha,
		Initial:   q0,
		Objective: core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds: []core.Bound{
			{Metric: core.MetricPenalty, Rel: lp.LE, Value: 0.5},
			{Metric: core.MetricLoss, Rel: lp.LE, Value: 0.3},
		},
	}))
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "exampleA2",
		Title: "Worked example A.2: optimal randomized policy of the example system",
	}
	res.TallySolve(r)
	tbl := NewTable("state", "freq y(s)", "π(s_on)", "π(s_off)")
	for s := 0; s < m.N; s++ {
		dist := r.Policy.CommandDist(s)
		tbl.AddRow(sys.StateName(s), r.Frequencies.Row(s).Sum(), dist[0], dist[1])
	}
	res.Table = tbl

	res.AddSeries("power", Point{X: 0, Y: r.Objective, Feasible: true})
	res.AddSeries("penalty", Point{X: 0, Y: r.Averages[core.MetricPenalty], Feasible: true})
	res.AddSeries("loss", Point{X: 0, Y: r.Averages[core.MetricLoss], Feasible: true})
	res.AddSeries("randomized_states", Point{X: 0, Y: float64(len(r.Policy.RandomizedStates(1e-6))), Feasible: true})

	res.Notef("optimal power %.4f W vs 3 W always-on (paper: ≈ factor two reduction)", r.Objective)
	res.Notef("E[queue] = %.4f (bound 0.5), E[loss] = %.4f (bound 0.3)",
		r.Averages[core.MetricPenalty], r.Averages[core.MetricLoss])
	rs := r.Policy.RandomizedStates(1e-6)
	names := make([]string, len(rs))
	for i, s := range rs {
		names[i] = sys.StateName(s)
	}
	res.Notef("randomized decisions in states %v (Theorem A.2: active constraints force randomization)", names)
	if d := r.Eval.Average(core.MetricPower) - r.Objective; d > 1e-6 || d < -1e-6 {
		return nil, fmt.Errorf("exampleA2: LP/evaluation mismatch %g", d)
	}
	res.Notef("LP objective equals exact policy evaluation to within 1e-6 (the tool's consistency check)")
	return res, nil
}
