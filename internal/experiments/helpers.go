package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// newRNG derives a generator from the config seed and a per-experiment salt
// so experiments are independent but individually reproducible.
func newRNG(cfg Config, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed*1000003 + salt))
}

// paretoCfg is the sweep-engine configuration for experiment runners:
// parallel, but with a machine-independent worker count. Chunk boundaries —
// and therefore warm-start chains and any tie-break among alternate LP
// optima — depend on the worker count, and experiments must reproduce
// identically for a fixed Config on any machine, so they must not inherit
// GOMAXPROCS. Grid sweeps via sweep.Map have independent cells and may use
// the default configuration freely.
func paretoCfg() sweep.Config { return sweep.Config{Workers: 4} }

// pick returns full in full mode and quick in Quick mode.
func pick[T any](cfg Config, full, quick T) T {
	if cfg.Quick {
		return quick
	}
	return full
}

// simulateTrace runs a controller against a trace and returns the stats.
func simulateTrace(m *core.Model, ctrl policy.Controller, initial core.State, seed int64, counts []int) (*sim.Stats, error) {
	s, err := sim.New(m, ctrl, sim.Config{Seed: seed, Initial: initial})
	if err != nil {
		return nil, err
	}
	return s.RunTrace(counts)
}

// simulateModel runs a controller model-driven for the given horizon.
func simulateModel(m *core.Model, ctrl policy.Controller, initial core.State, seed int64, slices int64) (*sim.Stats, error) {
	s, err := sim.New(m, ctrl, sim.Config{Seed: seed, Initial: initial})
	if err != nil {
		return nil, err
	}
	return s.Run(slices)
}

// simulateSessions runs a controller model-driven under the paper's
// geometric-session stopping model, the consistent estimator of the
// optimizer's discounted per-slice averages.
func simulateSessions(m *core.Model, ctrl policy.Controller, initial core.State, seed int64, alpha float64, sessions int) (*sim.Stats, error) {
	s, err := sim.New(m, ctrl, sim.Config{Seed: seed, Initial: initial})
	if err != nil {
		return nil, err
	}
	return s.RunSessions(alpha, sessions)
}

// stationaryCtrl wraps an optimal policy as a simulator controller.
func stationaryCtrl(sys *core.System, pol *core.Policy, seed int64) (policy.Controller, error) {
	return policy.NewStationary(sys, pol, seed)
}

// curveAt evaluates a Pareto curve (feasible points only) at x by piecewise
// linear interpolation over X, clamping outside the sampled range. It
// returns NaN for an empty curve.
func curveAt(points []Point, x float64) float64 {
	var feas []Point
	for _, p := range points {
		if p.Feasible && !math.IsInf(p.Y, 0) && !math.IsNaN(p.Y) {
			feas = append(feas, p)
		}
	}
	if len(feas) == 0 {
		return math.NaN()
	}
	sort.Slice(feas, func(i, j int) bool { return feas[i].X < feas[j].X })
	if x <= feas[0].X {
		return feas[0].Y
	}
	if x >= feas[len(feas)-1].X {
		return feas[len(feas)-1].Y
	}
	for i := 1; i < len(feas); i++ {
		if x <= feas[i].X {
			a, b := feas[i-1], feas[i]
			if b.X == a.X {
				return math.Min(a.Y, b.Y)
			}
			t := (x - a.X) / (b.X - a.X)
			return a.Y + t*(b.Y-a.Y)
		}
	}
	return feas[len(feas)-1].Y
}

// fmtW formats a power value.
func fmtW(v float64) string {
	if math.IsInf(v, 1) {
		return "infeasible"
	}
	return fmt.Sprintf("%.4f", v)
}
