package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Fig8b reproduces paper Fig. 8(b): the disk-drive power/performance
// tradeoff. The pipeline is the paper's (Fig. 7): a bursty disk trace is
// generated (substituting for the Auspex traces), the SR extractor builds a
// two-state workload model, the optimizer sweeps the performance constraint
// to trace the optimal curve, each optimal policy is validated by
// trace-driven simulation (the paper's circles), and the heuristic policies
// — greedy shutdown into each inactive state (up triangles), timeout
// policies (down triangles) and randomized timeout policies (boxes) — are
// simulated on the same trace.
//
// The sweep is self-calibrating: the always-active policy fixes the floor
// of achievable average queue length, the unconstrained optimum fixes the
// queue level where the constraint stops mattering, and the penalty bounds
// are spread logarithmically between them so the curve covers the whole
// tradeoff regardless of the generated workload's statistics.
//
// Expected shape: simulated optimal points lie near the analytic curve, and
// every heuristic point lies on or above it.
func Fig8b(cfg Config) (*Result, error) {
	rng := newRNG(cfg, 8)
	n := pick(cfg, 400000, 60000)
	// Bursty on/off disk traffic: request bursts of ~3 ms separated by idle
	// gaps averaging 500 ms — long enough for the shallow sleep states to
	// pay off. The generator is itself a two-state Markov process, so the
	// extracted SR model fits it well and the trace-driven circles land on
	// the analytic curve, as the paper found for the Auspex traces. (The
	// heavy-tailed, deliberately non-Markovian disk workload is exercised
	// by the SR-memory experiment, Fig. 13(b).)
	counts := trace.OnOff(rng, n, 1.0/500, 1.0/3)

	sr, err := trace.ExtractSR("disk-workload", counts, 1)
	if err != nil {
		return nil, err
	}
	sys := devices.DiskSystem(sr)
	m, err := sys.Build()
	if err != nil {
		return nil, err
	}
	// The optimization horizon equals the simulated trace length, exactly
	// as in the paper (both were 10⁶ steps there); a much longer trace
	// would overweight the post-session tail of session-aware policies.
	alpha := core.HorizonToAlpha(float64(n))
	initial := core.State{SP: devices.DiskActive}
	q0 := core.Delta(m.N, sys.Index(initial))

	res := &Result{
		ID:    "fig8b",
		Title: "Disk drive: optimal power-performance curve vs simulation vs heuristic policies",
	}
	tbl := NewTable("policy", "parameter", "power (W)", "avg queue", "loss", "source")

	// Self-calibration: the always-active policy fixes the floor of
	// achievable average queue length; the sweep spans from just above it
	// to 0.5 (a quarter of the queue capacity). The performance constraint
	// alone already rules out session-exploiting "park asleep forever"
	// solutions — parking drives the average backlog toward the full queue
	// — so no auxiliary loss bound is needed, and the heuristic comparison
	// stays apples-to-apples (the heuristics are not loss-constrained
	// either).
	always, err := core.ConstantPolicy(m.N, m.A, devices.DiskGoActive)
	if err != nil {
		return nil, err
	}
	evAlways, err := core.Evaluate(m, always, q0, alpha)
	if err != nil {
		return nil, err
	}
	baseOpts := withMonitor(core.Options{
		Alpha:            alpha,
		Initial:          q0,
		Objective:        core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		UnvisitedCommand: devices.DiskGoActive,
		SkipEvaluation:   true,
	})
	penLo := evAlways.Average(core.MetricPenalty) * 1.1
	penHi := 0.5
	numPts := pick(cfg, 9, 6)
	penBounds := make([]float64, numPts)
	for i := range penBounds {
		f := float64(i) / float64(numPts-1)
		penBounds[i] = penLo * math.Pow(penHi/penLo, f)
	}

	pts, err := core.ParetoSweep(m, baseOpts, core.MetricPenalty, lp.LE, penBounds)
	if err != nil {
		return nil, err
	}
	res.TallySweep(pts)
	simSeed := cfg.Seed + 88
	for _, p := range pts {
		if !p.Feasible {
			tbl.AddRow("optimal", fmt.Sprintf("queue ≤ %.3g", p.BoundValue), "infeasible", "-", "-", "LP")
			continue
		}
		res.AddSeries("optimal", Point{X: p.Averages[core.MetricPenalty], Y: p.Objective, Feasible: true})
		tbl.AddRow("optimal", fmt.Sprintf("queue ≤ %.3g", p.BoundValue),
			p.Objective, p.Averages[core.MetricPenalty], p.Averages[core.MetricLoss], "LP")

		// Trace-driven validation (the paper's circles), ensemble-averaged
		// over controller seeds because the policies are randomized.
		reps := pick(cfg, 3, 2)
		var simPower, simPen, simLoss float64
		for rep := 0; rep < reps; rep++ {
			ctrl, err := stationaryCtrl(sys, p.Result.Policy, simSeed)
			if err != nil {
				return nil, err
			}
			st, err := simulateTrace(m, ctrl, initial, simSeed, counts)
			if err != nil {
				return nil, err
			}
			simPower += st.Averages[core.MetricPower]
			simPen += st.Averages[core.MetricPenalty]
			simLoss += st.Averages[core.MetricLoss]
			simSeed++
		}
		simPower /= float64(reps)
		simPen /= float64(reps)
		simLoss /= float64(reps)
		res.AddSeries("simulated", Point{X: simPen, Y: simPower, Feasible: true})
		tbl.AddRow("optimal(sim)", fmt.Sprintf("queue ≤ %.3g", p.BoundValue),
			simPower, simPen, simLoss, "trace sim")
	}

	// Greedy policies: shut down into each inactive state as soon as idle.
	greedyTargets := []struct {
		name string
		cmd  int
	}{
		{"idle", devices.DiskGoIdle},
		{"LPidle", devices.DiskGoLPIdle},
		{"standby", devices.DiskGoStandby},
		{"sleep", devices.DiskGoSleep},
	}
	for _, g := range greedyTargets {
		ctrl := &policy.Greedy{WakeCmd: devices.DiskGoActive, SleepCmd: g.cmd}
		st, err := simulateTrace(m, ctrl, initial, simSeed, counts)
		if err != nil {
			return nil, err
		}
		res.AddSeries("greedy", Point{X: st.Averages[core.MetricPenalty], Y: st.Averages[core.MetricPower], Feasible: true})
		tbl.AddRow("greedy", g.name, st.Averages[core.MetricPower], st.Averages[core.MetricPenalty], st.Averages[core.MetricLoss], "trace sim")
		simSeed++
	}

	// Timeout policies (the widely used disk spin-down heuristic).
	timeouts := []struct {
		name    string
		cmd     int
		timeout int64
	}{
		{"LPidle/10ms", devices.DiskGoLPIdle, 10},
		{"LPidle/100ms", devices.DiskGoLPIdle, 100},
		{"standby/200ms", devices.DiskGoStandby, 200},
		{"standby/2s", devices.DiskGoStandby, 2000},
		{"sleep/500ms", devices.DiskGoSleep, 500},
		{"sleep/5s", devices.DiskGoSleep, 5000},
	}
	for _, to := range timeouts {
		ctrl := &policy.Timeout{WakeCmd: devices.DiskGoActive, SleepCmd: to.cmd, Timeout: to.timeout}
		st, err := simulateTrace(m, ctrl, initial, simSeed, counts)
		if err != nil {
			return nil, err
		}
		res.AddSeries("timeout", Point{X: st.Averages[core.MetricPenalty], Y: st.Averages[core.MetricPower], Feasible: true})
		tbl.AddRow("timeout", to.name, st.Averages[core.MetricPower], st.Averages[core.MetricPenalty], st.Averages[core.MetricLoss], "trace sim")
		simSeed++
	}

	// Randomized policies: random (timeout, target) mixes, the heuristic
	// analogue of the optimizer's randomized policies.
	randomized := []struct {
		name    string
		choices []policy.TimeoutChoice
	}{
		{"LPidle10/standby200", []policy.TimeoutChoice{
			{Timeout: 10, SleepCmd: devices.DiskGoLPIdle},
			{Timeout: 200, SleepCmd: devices.DiskGoStandby},
		}},
		{"LPidle10/sleep2s", []policy.TimeoutChoice{
			{Timeout: 10, SleepCmd: devices.DiskGoLPIdle},
			{Timeout: 2000, SleepCmd: devices.DiskGoSleep},
		}},
		{"standby200/sleep2s", []policy.TimeoutChoice{
			{Timeout: 200, SleepCmd: devices.DiskGoStandby},
			{Timeout: 2000, SleepCmd: devices.DiskGoSleep},
		}},
	}
	for _, rz := range randomized {
		ctrl := &policy.RandomizedTimeout{WakeCmd: devices.DiskGoActive, Choices: rz.choices, Seed: simSeed}
		st, err := simulateTrace(m, ctrl, initial, simSeed, counts)
		if err != nil {
			return nil, err
		}
		res.AddSeries("randomized", Point{X: st.Averages[core.MetricPenalty], Y: st.Averages[core.MetricPower], Feasible: true})
		tbl.AddRow("randomized", rz.name, st.Averages[core.MetricPower], st.Averages[core.MetricPenalty], st.Averages[core.MetricLoss], "trace sim")
		simSeed++
	}
	res.Table = tbl

	// How close do the simulated optimal points sit to the analytic curve
	// (model fit), and do any heuristics beat the curve (they should not)?
	maxDev := 0.0
	for _, p := range res.Series["simulated"] {
		want := curveAt(res.Series["optimal"], p.X)
		if d := p.Y - want; d > maxDev {
			maxDev = d
		}
	}
	res.Notef("max simulated-above-curve deviation: %s W (paper: circles lie almost perfectly on the curve)", fmtW(maxDev))
	// Dominance check: heuristics must not beat the optimal tradeoff. The
	// Pareto curve is convex, so interpolating between sampled points would
	// overestimate the optimum; instead the LP is re-solved at each
	// heuristic's own operating point.
	worst := 0.0
	for _, name := range []string{"greedy", "timeout", "randomized"} {
		for _, p := range res.Series[name] {
			o := baseOpts
			o.Bounds = append([]core.Bound{}, baseOpts.Bounds...)
			o.Bounds = append(o.Bounds, core.Bound{Metric: core.MetricPenalty, Rel: lp.LE, Value: math.Max(p.X, penLo)})
			r, err := core.Optimize(m, o)
			res.TallySolve(r)
			if err != nil {
				continue // heuristic operates outside the feasible region
			}
			if d := r.Objective - p.Y; d > worst {
				worst = d
			}
		}
	}
	res.AddSeries("dominance_margin", Point{X: 0, Y: worst, Feasible: true})
	res.Notef("max heuristic-below-optimal margin (exact per-point LPs): %s W (≤ ~0 expected: no heuristic beats the optimal tradeoff)", fmtW(worst))
	return res, nil
}
