package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Fig13a reproduces paper Fig. 13(a): optimal power versus SR burstiness.
// The SR flip probability is swept with symmetric transitions, so the
// stationary load stays at 0.5 while burst/gap lengths scale as 1/flip:
// smaller flip probability (left side of the paper's plot) means a burstier
// workload at identical load. The SP has the four deep sleep states;
// request loss is bounded at 0.01; two performance constraints are shown.
//
// Expected shape: the burstier the requester, the more effective power
// management (power non-decreasing in the flip probability).
func Fig13a(cfg Config) (*Result, error) {
	flips := pick(cfg,
		[]float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5},
		[]float64{0.002, 0.01, 0.05, 0.5})
	constraints := []struct {
		name  string
		bound float64
	}{
		{"tight", 0.2},
		{"loose", 0.8},
	}
	alpha := core.HorizonToAlpha(pick(cfg, 1e5, 1e4))

	res := &Result{
		ID:    "fig13a",
		Title: "Baseline system (4 sleep states): optimal power vs SR burstiness (load fixed at 0.5)",
	}
	tbl := NewTable("flip prob", "power (perf ≤ 0.2)", "power (perf ≤ 0.8)")
	cells, err := sweep.Map(context.Background(), sweep.Config{}, len(flips)*len(constraints),
		func(_ context.Context, i int) (solvedPower, error) {
			f, c := flips[i/len(constraints)], constraints[i%len(constraints)]
			bc := devices.DefaultBaseline()
			bc.Sleep = devices.DeepSleepStates()
			bc.SRFlip = f
			return minPowerBaseline(bc, alpha, []core.Bound{
				{Metric: core.MetricPenalty, Rel: lp.LE, Value: c.bound},
				{Metric: core.MetricDrops, Rel: lp.LE, Value: 0.01},
			})
		})
	if err != nil {
		return nil, err
	}
	powers := tallyPowers(res, cells)
	for fi, f := range flips {
		row := []any{f}
		for ci, c := range constraints {
			p := powers[fi*len(constraints)+ci]
			res.AddSeries(c.name, Point{X: f, Y: p, Feasible: !math.IsInf(p, 1)})
			row = append(row, p)
		}
		tbl.AddRow(row...)
	}
	res.Table = tbl
	res.Notef("burstier SR (smaller flip probability) ⇒ lower optimal power at identical 0.5 load (paper Fig. 13(a))")
	return res, nil
}

// Fig13b reproduces paper Fig. 13(b): power versus the memory k of the SR
// model (2^k states), for two SP structures (one and two sleep states). The
// workload has bimodal idle gaps — frequent short inter-request gaps and
// occasional long think-time gaps — so it is decidedly non-1-memory: a few
// consecutive idle slices almost surely identify the long mode, and deeper
// histories let the optimizer match deep sleep states to long gaps, which
// is exactly the mechanism the paper describes ("the optimal policy matches
// the length of idle periods with the best sleep state").
//
// To make policies from *different* models comparable on the same ground
// truth, the optimization is scalarized: every policy minimizes the same
// combined cost power + λ·E[queue] (λ = 1.2 W per queued request, chosen so
// that parking asleep with a full queue is strictly dominated and policies
// stay recurrent). Two numbers are reported per configuration: the
// optimizer's value on its own k-memory model, and the ground truth — the
// combined cost measured by trace-driven simulation against the original
// trace with a history-aware SR mapper. Expected shapes (on ground truth):
// more memory never hurts, and the gains are larger with more sleep states
// to match against predicted idle lengths.
func Fig13b(cfg Config) (*Result, error) {
	rng := newRNG(cfg, 13)
	n := pick(cfg, 400000, 100000)
	counts := trace.BimodalOnOff(rng, n, 3, 2, 300, 0.25)

	const lambda = 1.2
	const metricCombined = "combined"

	memories := []int{1, 2, 3, 4}
	sps := []struct {
		name  string
		sleep []devices.SleepState
	}{
		{"1-sleep", devices.DeepSleepStates()[:1]},
		{"2-sleep", devices.DeepSleepStates()[:2]},
	}
	alpha := core.HorizonToAlpha(float64(n))

	res := &Result{
		ID:    "fig13b",
		Title: "Baseline system: combined cost (power + 1.2·queue) vs SR model memory (bimodal-idle workload)",
	}
	tbl := NewTable("memory k", "SP", "model cost", "trace cost", "trace power", "trace penalty")

	// Stage 1, parallel: SR extraction per memory depth, then one model
	// build + LP solve per (memory, SP) pair on the sweep engine.
	srs, err := sweep.Map(context.Background(), sweep.Config{}, len(memories),
		func(_ context.Context, i int) (*core.ServiceRequester, error) {
			return trace.ExtractSR(fmt.Sprintf("ht-mem%d", memories[i]), counts, memories[i])
		})
	if err != nil {
		return nil, err
	}
	type solved struct {
		m   *core.Model
		sys *core.System
		r   *core.Result
	}
	cells, err := sweep.Map(context.Background(), sweep.Config{}, len(memories)*len(sps),
		func(_ context.Context, i int) (solved, error) {
			spv := sps[i%len(sps)]
			bc := devices.DefaultBaseline()
			bc.Sleep = spv.sleep
			sys, err := devices.BaselineSystemWithSR(bc, srs[i/len(sps)])
			if err != nil {
				return solved{}, err
			}
			sp := sys.SP
			sys.ExtraMetrics = map[string]func(core.State, int) float64{
				metricCombined: func(st core.State, cmd int) float64 {
					return sp.PowerAt(st.SP, cmd) + lambda*float64(st.Q)
				},
			}
			m, err := sys.Build()
			if err != nil {
				return solved{}, err
			}
			r, err := core.Optimize(m, withMonitor(core.Options{
				Alpha:          alpha,
				Initial:        core.Delta(m.N, 0),
				Objective:      core.Objective{Metric: metricCombined, Sense: lp.Minimize},
				SkipEvaluation: true,
			}))
			if err != nil {
				return solved{}, err
			}
			return solved{m: m, sys: sys, r: r}, nil
		})
	if err != nil {
		return nil, err
	}

	// Stage 2, sequential: the seeded trace simulations, in the historical
	// order so every cell sees the same RNG stream as before.
	simSeed := cfg.Seed + 130
	for ki, k := range memories {
		for si, spv := range sps {
			cell := cells[ki*len(sps)+si]
			r := cell.r
			res.TallySolve(r)
			ctrl, err := stationaryCtrl(cell.sys, r.Policy, simSeed)
			if err != nil {
				return nil, err
			}
			s, err := sim.New(cell.m, ctrl, sim.Config{
				Seed:      simSeed,
				Initial:   core.State{},
				SRStateOf: trace.BinaryHistoryMapper(k),
			})
			if err != nil {
				return nil, err
			}
			st, err := s.RunTrace(counts)
			if err != nil {
				return nil, err
			}
			simSeed++

			res.AddSeries("model_"+spv.name, Point{X: float64(k), Y: r.Objective, Feasible: true})
			res.AddSeries("trace_"+spv.name, Point{X: float64(k), Y: st.Averages[metricCombined], Feasible: true})
			tbl.AddRow(k, spv.name, r.Objective, st.Averages[metricCombined],
				st.Averages[core.MetricPower], st.Averages[core.MetricPenalty])
		}
	}
	res.Table = tbl
	res.Notef("ground truth is the trace-measured combined cost: longer SR memory ⇒ never worse, with larger gains when multiple sleep states are available (paper Fig. 13(b))")
	return res, nil
}
