package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Fig9a reproduces paper Fig. 9(a): the two-processor web server's
// power/throughput tradeoff. A diurnal synthetic HTTP workload
// (substituting for the Internet Traffic Archive trace) is reduced to a
// two-state SR model; the optimizer minimizes power under a floor on the
// demand-gated throughput (capacity delivered in slices that actually carry
// requests — see devices.WebMetricThroughput) swept across its achievable
// range; each optimal policy is validated by trace-driven simulation (the
// paper's circles), ensemble-averaged over controller seeds because the
// optimal policies are randomized.
//
// The paper's structural observation is also checked: the faster but
// power-hungrier processor 2 is never used alone — its solo configuration
// is dominated by time-sharing between processor 1 alone and both
// processors (0.6 throughput costs 2 W solo but only ~1.67 W as a mix).
func Fig9a(cfg Config) (*Result, error) {
	rng := newRNG(cfg, 9)
	n := pick(cfg, 86400, 20000) // one day at 1 s resolution
	counts := trace.DiurnalPoisson(rng, n, n/2, 0.01, 3.0)

	sr, err := trace.ExtractSRLevels("web-workload", counts, 1)
	if err != nil {
		return nil, err
	}
	sys := devices.WebServerSystem(sr)
	m, err := sys.Build()
	if err != nil {
		return nil, err
	}
	alpha := core.HorizonToAlpha(float64(n))
	initial := core.State{SP: devices.WebBothOn}
	q0 := core.Delta(m.N, sys.Index(initial))

	// The demand-gated throughput can reach at most the stationary busy
	// fraction (all capacity delivered whenever there is work, ignoring
	// turn-on lag); floors sweep a fraction of that ceiling.
	busy, err := sr.MeanArrivalRate()
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "fig9a",
		Title: "Two-processor web server: optimal power vs demand-gated throughput floor, with simulation validation",
	}
	tbl := NewTable("floor (×busy)", "floor", "power (W)", "achieved thr",
		"session-sim power", "trace-sim power", "trace-sim thr", "P2-alone freq")

	fractions := pick(cfg,
		[]float64{0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.88, 0.94},
		[]float64{0.20, 0.40, 0.60, 0.80, 0.94})
	// Session counts trade variance against run time: the optimal policies
	// can be "lottery" policies (a probabilistic one-shot configuration
	// choice), so per-session outcomes are spread and the ensemble needs to
	// be wide; quick-mode sessions are short, so more of them are cheap.
	sessions := pick(cfg, 40, 120)
	simSeed := cfg.Seed + 99

	// All LP solves run up front on the parallel warm-started engine; the
	// seeded simulations then consume the points strictly in sweep order so
	// the RNG streams match the historical sequential run.
	floors := make([]float64, len(fractions))
	for i, frac := range fractions {
		floors[i] = frac * busy
	}
	pts, err := sweep.Pareto(context.Background(), m, withMonitor(core.Options{
		Alpha:          alpha,
		Initial:        q0,
		Objective:      core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		SkipEvaluation: true,
	}), devices.WebMetricThroughput, lp.GE, floors, paretoCfg())
	if err != nil {
		return nil, err
	}
	res.TallySweep(pts)
	for i, pt := range pts {
		frac, floor := fractions[i], floors[i]
		if !pt.Feasible {
			tbl.AddRow(frac, floor, "infeasible", "-", "-", "-", "-", "-")
			res.AddSeries("optimal", Point{X: frac})
			continue
		}
		r := pt.Result
		// Frequency of the "processor 2 alone" configuration.
		p2alone := 0.0
		for i := 0; i < m.N; i++ {
			if sys.StateOf(i).SP == devices.WebP2Only {
				p2alone += r.Frequencies.Row(i).Sum()
			}
		}
		res.AddSeries("optimal", Point{X: frac, Y: r.Objective, Feasible: true})
		res.AddSeries("p2alone", Point{X: frac, Y: p2alone, Feasible: true})

		// Session-model simulation: the consistent estimator of the
		// discounted averages (the optimal policies are session-aware, so
		// the geometric stopping time is part of what they optimize for).
		ctrl, err := stationaryCtrl(sys, r.Policy, simSeed)
		if err != nil {
			return nil, err
		}
		stS, err := simulateSessions(m, ctrl, initial, simSeed, alpha, sessions)
		if err != nil {
			return nil, err
		}
		res.AddSeries("simulated", Point{X: frac, Y: stS.Averages[core.MetricPower], Feasible: true})
		simSeed++

		// Trace-driven check of workload-model fit (single long run; the
		// deviation measures both model fit and the policies' session
		// awareness).
		ctrlT, err := stationaryCtrl(sys, r.Policy, simSeed)
		if err != nil {
			return nil, err
		}
		stT, err := simulateTrace(m, ctrlT, initial, simSeed, counts)
		if err != nil {
			return nil, err
		}
		res.AddSeries("trace", Point{X: frac, Y: stT.Averages[core.MetricPower], Feasible: true})
		simSeed++

		tbl.AddRow(frac, floor, r.Objective, r.Averages[devices.WebMetricThroughput],
			stS.Averages[core.MetricPower],
			stT.Averages[core.MetricPower], stT.Averages[devices.WebMetricThroughput],
			fmt.Sprintf("%.2e", p2alone))
	}
	res.Table = tbl

	maxP2 := 0.0
	for _, p := range res.Series["p2alone"] {
		if p.Y > maxP2 {
			maxP2 = p.Y
		}
	}
	res.Notef("max frequency of processor-2-alone across the sweep: %.2e (paper: the faster processor is never used alone)", maxP2)
	maxDev := 0.0
	for i, p := range res.Series["simulated"] {
		if d := math.Abs(p.Y - res.Series["optimal"][i].Y); d > maxDev {
			maxDev = d
		}
	}
	res.Notef("max |session-sim − curve| deviation: %s W (consistency of optimizer and simulator)", fmtW(maxDev))
	return res, nil
}
