// Package sweep is the concurrent engine behind the repo's Pareto-style
// parameter sweeps (the dozens of closely related LP solves behind each of
// the paper's Figs. 9–14 tradeoff curves).
//
// Two primitives cover every sweep shape in the experiment runners:
//
//   - Map fans any indexed computation out over a bounded worker pool
//     (GOMAXPROCS-sized by default), is context-cancellable, and returns
//     results in input-index order regardless of completion order — the
//     grid-style experiments (different device configurations per point)
//     build on it directly.
//
//   - Pareto specializes Map for the single-model bound sweep of
//     core.ParetoSweep: the bound values are split into contiguous chunks,
//     one per worker, and each chunk is solved in order with LP
//     warm-starting — every point after a chunk's first reuses the previous
//     feasible point's optimal simplex basis (warm-started lp.Solver.Solve), falling
//     back to a cold two-phase solve whenever the basis does not carry over.
//
// Warm-starting is inherently sequential (each point seeds the next) while
// parallelism wants independence; chunking reconciles the two. Both
// primitives are deterministic for a fixed input and worker count, and
// Pareto produces the same points with the same objectives as the
// sequential core.ParetoSweep path (on a degenerate LP the extracted
// policy may be a different optimum of equal objective).
// This is also the seam for future scaling: a sharded or multi-backend
// solver only needs to replace the chunk worker — internal/server already
// drives Pareto as its /v1/sweep backend. Cancelling the sweep context
// aborts not just between points but inside the active solves: the chunk
// worker runs core.OptimizeCtx, whose lp layer checks the context once per
// simplex pivot.
package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/lp"
)

// Config tunes the engine. The zero value — GOMAXPROCS workers,
// warm-starting on — is right for almost every caller.
type Config struct {
	// Workers bounds the number of concurrent solves; values <= 0 select
	// runtime.GOMAXPROCS(0). Workers == 1 reproduces the sequential path.
	Workers int
	// Cold disables LP warm-starting between consecutive points of a chunk,
	// so every point solves from scratch (the engine's behaviour before
	// basis reuse existed; kept for benchmarking and bisection).
	Cold bool
}

// workers resolves the effective worker count for n work items.
func (c Config) workers(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(ctx, i) for every i in [0, n) on a bounded worker pool and
// returns the results in index order. The first error cancels all remaining
// work and is returned (an already-cancelled ctx surfaces as its error).
// fn must be safe for concurrent invocation.
func Map[T any](ctx context.Context, cfg Config, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]T, n)
	errs := make([]error, n)
	var next atomic.Int64
	var skipped atomic.Bool
	var wg sync.WaitGroup
	for w := cfg.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					skipped.Store(true)
					return
				}
				v, err := fn(ctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()

	// Deterministic error selection: the lowest-index real failure wins over
	// the cancellations it triggered in sibling workers.
	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		if firstCancel == nil {
			firstCancel = err
		}
	}
	if firstCancel != nil {
		return nil, firstCancel
	}
	if skipped.Load() {
		return nil, context.Cause(ctx)
	}
	return out, nil
}

// Pareto traces the tradeoff curve of core.ParetoSweep concurrently: the
// bound values are split into contiguous chunks, one per worker, and each
// chunk runs the warm-started sequential sweep over its slice. Results come
// back in input order; infeasible values yield ParetoPoint{Feasible: false}
// exactly like the sequential path, and any other optimizer error aborts the
// whole sweep.
func Pareto(ctx context.Context, m *core.Model, opts core.Options, metric string, rel lp.Rel, boundValues []float64, cfg Config) ([]core.ParetoPoint, error) {
	n := len(boundValues)
	if n == 0 {
		return nil, ctx.Err()
	}
	w := cfg.workers(n)
	type span struct{ lo, hi int }
	chunks := make([]span, 0, w)
	for k := 0; k < w; k++ {
		if lo, hi := k*n/w, (k+1)*n/w; lo < hi {
			chunks = append(chunks, span{lo, hi})
		}
	}
	parts, err := Map(ctx, Config{Workers: len(chunks)}, len(chunks),
		func(ctx context.Context, ci int) ([]core.ParetoPoint, error) {
			return core.ParetoSweepCtx(ctx, m, opts, metric, rel, boundValues[chunks[ci].lo:chunks[ci].hi], cfg.Cold)
		})
	if err != nil {
		return nil, err
	}
	points := make([]core.ParetoPoint, 0, n)
	for _, p := range parts {
		points = append(points, p...)
	}
	return points, nil
}

// Stats summarizes how a sweep's solves went; it exists for CLI reporting
// and tests, not for control flow.
type Stats struct {
	Points      int // total points
	Feasible    int // points with a finite optimum
	WarmStarted int // feasible points whose LP reused a basis
	Pivots      int // total simplex iterations across all solves
}

// Tally collects Stats over a finished sweep.
func Tally(points []core.ParetoPoint) Stats {
	var s Stats
	s.Points = len(points)
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		s.Feasible++
		if p.Result != nil {
			if p.Result.WarmStarted {
				s.WarmStarted++
			}
			s.Pivots += p.Result.LPIterations
		}
	}
	return s
}
