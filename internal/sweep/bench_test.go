package sweep

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/lp"
)

// The benchmark grid crosses {sequential, parallel} × {cold, warm} on the
// 20-point disk-drive Pareto sweep, the workload behind the paper's Fig. 8
// curves. BenchmarkParetoSequentialCold is the repo's original behaviour
// (one cold two-phase solve per point, one after another);
// BenchmarkParetoParallelWarm is the new engine's default. Each reports
// pivots/sweep so the warm-starting effect is visible independently of the
// machine's core count.
func benchPareto(b *testing.B, cfg Config) {
	m, opts, bounds := diskSweep(b)
	ctx := context.Background()
	b.ResetTimer()
	var pivots int
	for i := 0; i < b.N; i++ {
		pts, err := Pareto(ctx, m, opts, core.MetricPenalty, lp.LE, bounds, cfg)
		if err != nil {
			b.Fatal(err)
		}
		pivots = Tally(pts).Pivots
	}
	b.ReportMetric(float64(pivots), "pivots/sweep")
}

func BenchmarkParetoSequentialCold(b *testing.B) { benchPareto(b, Config{Workers: 1, Cold: true}) }
func BenchmarkParetoSequentialWarm(b *testing.B) { benchPareto(b, Config{Workers: 1}) }
func BenchmarkParetoParallelCold(b *testing.B)   { benchPareto(b, Config{Cold: true}) }
func BenchmarkParetoParallelWarm(b *testing.B)   { benchPareto(b, Config{}) }
