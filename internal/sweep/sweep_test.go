package sweep

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
)

// diskSweep is the fixture shared by the determinism tests and benchmarks:
// the paper's largest case study (Table-I disk, 66 states × 5 commands,
// horizon 10⁶) with a 20-point performance-bound sweep whose lowest values
// are infeasible.
func diskSweep(t testing.TB) (*core.Model, core.Options, []float64) {
	t.Helper()
	sr := core.TwoStateSR("w", 0.002, 0.3)
	sys := devices.DiskSystem(sr)
	m, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{
		Alpha:            core.HorizonToAlpha(1e6),
		Initial:          core.Delta(m.N, sys.Index(core.State{SP: devices.DiskActive})),
		Objective:        core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		UnvisitedCommand: devices.DiskGoActive,
		SkipEvaluation:   true,
	}
	bounds := make([]float64, 20)
	for i := range bounds {
		bounds[i] = 0.001 * math.Pow(1.55, float64(i)) // ~0.001 … ~3.9
	}
	return m, opts, bounds
}

func comparePoints(t *testing.T, label string, got, want []core.ParetoPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.BoundValue != w.BoundValue {
			t.Errorf("%s[%d]: bound %g, want %g (order not deterministic)", label, i, g.BoundValue, w.BoundValue)
		}
		if g.Feasible != w.Feasible {
			t.Errorf("%s[%d]: feasible=%v, want %v", label, i, g.Feasible, w.Feasible)
			continue
		}
		// 1e-8 is the repo-wide objective-parity tolerance (lp and core
		// parity suites): warm and cold solves may stop at different
		// optimal vertices whose objectives agree only to the solver's
		// scale-relative optimality tolerance on stiff discounts.
		if w.Feasible && math.Abs(g.Objective-w.Objective) > 1e-8 {
			t.Errorf("%s[%d]: objective %.15g, want %.15g (Δ=%g)", label, i, g.Objective, w.Objective,
				math.Abs(g.Objective-w.Objective))
		}
	}
}

// TestParetoMatchesSequential is the determinism contract: for any worker
// count, warm or cold, the parallel engine returns the same points in the
// same order with the same values (within the 1e-8 objective-parity
// tolerance) as the sequential core.ParetoSweep path.
func TestParetoMatchesSequential(t *testing.T) {
	m, opts, bounds := diskSweep(t)
	seq, err := core.ParetoSweep(m, opts, core.MetricPenalty, lp.LE, bounds)
	if err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}
	feas := 0
	for _, p := range seq {
		if p.Feasible {
			feas++
		}
	}
	if feas == 0 || feas == len(seq) {
		t.Fatalf("fixture not discriminating: %d/%d feasible", feas, len(seq))
	}

	for _, cfg := range []Config{
		{Workers: 1},
		{Workers: 3},
		{Workers: 8},
		{Workers: 8, Cold: true},
		{Workers: 64}, // more workers than points
	} {
		par, err := Pareto(context.Background(), m, opts, core.MetricPenalty, lp.LE, bounds, cfg)
		if err != nil {
			t.Fatalf("parallel sweep %+v: %v", cfg, err)
		}
		comparePoints(t, "parallel", par, seq)
	}
}

// TestParetoWarmStartsWithinChunks checks that the engine actually reuses
// bases: with one worker every feasible point after the first warm-starts,
// and warm solves pivot less than cold ones in aggregate.
func TestParetoWarmStartsWithinChunks(t *testing.T) {
	m, opts, bounds := diskSweep(t)
	warm, err := Pareto(context.Background(), m, opts, core.MetricPenalty, lp.LE, bounds, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Pareto(context.Background(), m, opts, core.MetricPenalty, lp.LE, bounds, Config{Workers: 1, Cold: true})
	if err != nil {
		t.Fatal(err)
	}
	ws, cs := Tally(warm), Tally(cold)
	if cs.WarmStarted != 0 {
		t.Errorf("cold sweep reports %d warm starts", cs.WarmStarted)
	}
	if ws.WarmStarted == 0 {
		t.Errorf("warm sweep never reused a basis")
	}
	if ws.Pivots >= cs.Pivots {
		t.Errorf("warm sweep pivots %d not below cold %d", ws.Pivots, cs.Pivots)
	}
	t.Logf("pivots: warm %d vs cold %d (%d/%d points warm-started)",
		ws.Pivots, cs.Pivots, ws.WarmStarted, ws.Feasible)
}

func TestParetoCancellation(t *testing.T) {
	m, opts, bounds := diskSweep(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Pareto(ctx, m, opts, core.MetricPenalty, lp.LE, bounds, Config{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sweep returned %v, want context.Canceled", err)
	}
}

func TestMapOrderAndBounds(t *testing.T) {
	got, err := Map(context.Background(), Config{Workers: 7}, 100, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if _, err := Map(context.Background(), Config{}, 0, func(_ context.Context, i int) (int, error) {
		t.Error("fn called for empty input")
		return 0, nil
	}); err != nil {
		t.Errorf("empty Map: %v", err)
	}
}

func TestMapErrorCancelsRemainingWork(t *testing.T) {
	// With a single worker execution is strictly sequential, so the cutoff
	// after the failing item is deterministic.
	sentinel := errors.New("boom")
	calls := 0
	_, err := Map(context.Background(), Config{Workers: 1}, 64, func(ctx context.Context, i int) (int, error) {
		calls++
		if i == 5 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 6 {
		t.Errorf("%d items ran, want 6 (work after the error must not run)", calls)
	}

	// Multi-worker: some tagged error must surface, never a bare
	// context.Canceled from the self-inflicted cancellation.
	_, err = Map(context.Background(), Config{Workers: 4}, 64, func(ctx context.Context, i int) (int, error) {
		return 0, sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("multi-worker err = %v, want sentinel", err)
	}
}
