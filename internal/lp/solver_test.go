package lp

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// TestFactorizerPricerParity is the strategy-matrix contract: every corpus
// problem solved under every factorization × pricing combination agrees with
// the dense-tableau reference on status, and on optimal instances the
// objectives agree within 1e-8. This is what licenses FactorAuto/PriceAuto
// to switch strategies by problem size without changing answers.
func TestFactorizerPricerParity(t *testing.T) {
	facts := []Factorization{FactorDense, FactorSparse}
	prices := []Pricing{PriceDantzig, PriceDevex, PricePartial}
	for name, p := range parityProblems() {
		ref, refErr := SolveDense(p)
		for _, f := range facts {
			for _, pr := range prices {
				s := NewSolver(WithFactorization(f), WithPricing(pr))
				sol, basis, err := s.Solve(context.Background(), p, nil)
				label := name + "/" + f.String() + "+" + pr.String()
				if (err == nil) != (refErr == nil) || sol.Status != ref.Status {
					t.Errorf("%s: status %v (err %v) vs reference %v (err %v)",
						label, sol.Status, err, ref.Status, refErr)
					continue
				}
				if err != nil {
					continue
				}
				if basis == nil {
					t.Errorf("%s: optimal solve returned nil basis", label)
				}
				if d := math.Abs(sol.Objective - ref.Objective); d > 1e-8 {
					t.Errorf("%s: objective %.12g vs reference %.12g (Δ=%g)",
						label, sol.Objective, ref.Objective, d)
				}
				if !feasible(p, sol.X, 1e-6) {
					t.Errorf("%s: solution infeasible", label)
				}
				if sol.FactorNNZ <= 0 {
					t.Errorf("%s: FactorNNZ = %d, want positive", label, sol.FactorNNZ)
				}
			}
		}
	}
}

// TestSolverWarmParity holds warm-started sparse solves to the cold optimum
// across a bound sweep (the Pareto-neighbour pattern core relies on).
func TestSolverWarmParity(t *testing.T) {
	for _, f := range []Factorization{FactorDense, FactorSparse} {
		s := NewSolver(WithFactorization(f))
		var warm *Basis
		for _, bound := range []float64{18, 16, 14, 12} {
			p := NewProblem(Maximize, 2)
			p.Obj = []float64{3, 5}
			p.AddConstraint("c1", []float64{1, 0}, LE, 4)
			p.AddConstraint("c2", []float64{0, 2}, LE, 12)
			p.AddConstraint("c3", []float64{3, 2}, LE, bound)
			warmSol, warmBasis, err := s.Solve(context.Background(), p, warm)
			if err != nil {
				t.Fatalf("%v bound=%g: %v", f, bound, err)
			}
			coldSol, _, err := s.Solve(context.Background(), p, nil)
			if err != nil {
				t.Fatalf("%v bound=%g cold: %v", f, bound, err)
			}
			if d := math.Abs(warmSol.Objective - coldSol.Objective); d > 1e-8 {
				t.Errorf("%v bound=%g: warm objective %g vs cold %g", f, bound, warmSol.Objective, coldSol.Objective)
			}
			if warm != nil && !warmSol.WarmStarted {
				t.Errorf("%v bound=%g: warm basis supplied but solve went cold", f, bound)
			}
			warm = warmBasis
		}
	}
}

// TestWithMaxPivots exercises the pivot budget: an absurdly small budget
// stops the solve with BudgetExceeded (error still wrapping ErrNotOptimal),
// a generous one leaves the solve untouched.
func TestWithMaxPivots(t *testing.T) {
	p := parityProblems()["balance-stiff"]

	sol, basis, err := NewSolver(WithMaxPivots(2)).Solve(context.Background(), p, nil)
	if sol.Status != BudgetExceeded {
		t.Fatalf("status = %v, want BudgetExceeded", sol.Status)
	}
	if basis != nil {
		t.Error("budget-stopped solve returned a basis")
	}
	if !errors.Is(err, ErrNotOptimal) {
		t.Errorf("err = %v, want wrap of ErrNotOptimal", err)
	}
	if sol.Iterations > 3 {
		t.Errorf("budget of 2 pivots reported %d iterations", sol.Iterations)
	}

	sol, _, err = NewSolver(WithMaxPivots(1<<20)).Solve(context.Background(), p, nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("generous budget: status %v err %v, want Optimal", sol.Status, err)
	}
}

// TestWithMaxPivotsWarm verifies a budget-stopped warm start is definitive —
// it must not silently fall back to a cold solve and double the budget.
func TestWithMaxPivotsWarm(t *testing.T) {
	p := parityProblems()["balance-stiff"]
	_, basis, err := NewSolver().Solve(context.Background(), p, nil)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	// Tighten the problem so restoration needs pivots, then give it none.
	q := *p
	sol, _, err := NewSolver(WithMaxPivots(1)).Solve(context.Background(), &q, basis)
	if err == nil && sol.Iterations > 1 {
		t.Errorf("budget 1: solve reported %d iterations without error", sol.Iterations)
	}
	if sol.Status != Optimal && sol.Status != BudgetExceeded {
		t.Errorf("status = %v, want Optimal (0-pivot warm) or BudgetExceeded", sol.Status)
	}
}

// TestWithWallClock verifies the wall-clock option surfaces as Cancelled
// with a deadline cause.
func TestWithWallClock(t *testing.T) {
	p := parityProblems()["balance-stiff"]
	sol, _, err := NewSolver(WithWallClock(time.Nanosecond)).Solve(context.Background(), p, nil)
	if sol.Status != Cancelled {
		t.Fatalf("status = %v, want Cancelled", sol.Status)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want wrap of context.DeadlineExceeded", err)
	}
}

// TestFactorTableau routes through the legacy full-tableau solver: same
// answers, no reusable basis.
func TestFactorTableau(t *testing.T) {
	p := parityProblems()["textbook-max"]
	sol, basis, err := NewSolver(WithFactorization(FactorTableau)).Solve(context.Background(), p, nil)
	if err != nil {
		t.Fatalf("tableau solve: %v", err)
	}
	if math.Abs(sol.Objective-36) > 1e-9 {
		t.Errorf("objective = %g, want 36", sol.Objective)
	}
	if basis != nil {
		t.Error("tableau mode returned a basis; it has none to export")
	}
}

// TestStrategyParsing round-trips the enum parse/String helpers the server
// uses to accept solver knobs over the wire.
func TestStrategyParsing(t *testing.T) {
	for _, f := range []Factorization{FactorAuto, FactorDense, FactorSparse, FactorTableau} {
		got, err := ParseFactorization(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFactorization(%q) = %v, %v", f.String(), got, err)
		}
	}
	for _, p := range []Pricing{PriceAuto, PriceDantzig, PriceDevex, PricePartial} {
		got, err := ParsePricing(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePricing(%q) = %v, %v", p.String(), got, err)
		}
	}
	if f, err := ParseFactorization(""); err != nil || f != FactorAuto {
		t.Errorf("ParseFactorization(\"\") = %v, %v, want FactorAuto", f, err)
	}
	if p, err := ParsePricing(""); err != nil || p != PriceAuto {
		t.Errorf("ParsePricing(\"\") = %v, %v, want PriceAuto", p, err)
	}
	if _, err := ParseFactorization("qr"); err == nil {
		t.Error("ParseFactorization accepted unknown strategy")
	}
	if _, err := ParsePricing("steepest"); err == nil {
		t.Error("ParsePricing accepted unknown rule")
	}
	if BudgetExceeded.String() != "pivot budget exceeded" {
		t.Errorf("BudgetExceeded.String() = %q", BudgetExceeded.String())
	}
}
