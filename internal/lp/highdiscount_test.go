package lp_test

// Regression coverage for the scale-relative optimality test and the
// phase-2 primal repair (see revised.go recomputeD/phase2): policy LPs at
// discounts α = 1−10⁻⁶ and beyond have duals of order 1/(1−α), and under
// the former absolute −1e-9 reduced-cost threshold the solver churned
// through roundoff-driven degenerate pivots until the basis drifted primal
// infeasible and the solve died as Numerical. The external test package is
// used so the cases can be stated as the real policy optimizations that
// exposed the failure.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
)

func diskOpts(h, bound float64) core.Options {
	return core.Options{
		Alpha:          core.HorizonToAlpha(h),
		Objective:      core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds:         []core.Bound{{Metric: core.MetricPenalty, Rel: lp.LE, Value: bound}},
		SkipEvaluation: true,
	}
}

// TestHighDiscountRedundantBound is the exact instance that used to fail:
// the Travelstar disk at horizon 10⁶ (α = 1−10⁻⁶) under the redundant
// bound penalty ≤ 2 (the queue never holds more than its capacity 2). The
// solve must come back Optimal, and — because the bound is redundant — at
// the same objective as the unconstrained solve.
func TestHighDiscountRedundantBound(t *testing.T) {
	sys := devices.DiskSystem(core.TwoStateSR("w", 0.002, 0.3))
	m, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := diskOpts(1e6, 2)
	opts.Initial = core.Delta(m.N, sys.Index(core.State{SP: devices.DiskActive}))
	res, err := core.Optimize(m, opts)
	if err != nil {
		t.Fatalf("redundant-bound solve at α=1−1e-6: %v (status %v)", err, res.Status)
	}

	free := diskOpts(1e6, 0)
	free.Bounds = nil
	free.Initial = opts.Initial
	ref, err := core.Optimize(m, free)
	if err != nil {
		t.Fatalf("unconstrained solve: %v", err)
	}
	if d := math.Abs(res.Objective - ref.Objective); d > 1e-8 {
		t.Errorf("redundant bound moved the objective by %g (%g vs %g)", d, res.Objective, ref.Objective)
	}
}

// TestHighDiscountAcrossDevices: feasible optimizations across the device
// zoo stay Optimal at horizons 10⁶ and 10⁷, and the work counters the
// composite benchmarks report are populated.
func TestHighDiscountAcrossDevices(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*core.System, error)
		bound float64
	}{
		{"disk", func() (*core.System, error) {
			return devices.DiskSystem(core.TwoStateSR("w", 0.002, 0.3)), nil
		}, 0.3},
		{"multidisk", func() (*core.System, error) {
			return devices.MultiDiskSystem(3, 2, core.TwoStateSR("w", 0.05, 0.2))
		}, 0.8},
		{"heterogeneous", func() (*core.System, error) {
			return devices.HeterogeneousSystem(3, 2, core.TwoStateSR("w", 0.05, 0.2))
		}, 1.5},
	}
	for _, tc := range cases {
		sys, err := tc.build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		m, err := sys.Build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, h := range []float64{1e6, 1e7} {
			res, err := core.Optimize(m, diskOpts(h, tc.bound))
			if err != nil {
				t.Errorf("%s at horizon %g: %v (status %v)", tc.name, h, err, res.Status)
				continue
			}
			if res.Objective <= 0 {
				t.Errorf("%s at horizon %g: objective %g", tc.name, h, res.Objective)
			}
			if res.LPIterations <= 0 || res.LPRefactorizations <= 0 {
				t.Errorf("%s at horizon %g: counters %d pivots / %d refactorizations",
					tc.name, h, res.LPIterations, res.LPRefactorizations)
			}
		}
	}
}
