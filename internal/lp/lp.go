// Package lp provides an exact linear-programming solver used to solve the
// policy-optimization problems LP2/LP3/LP4 of Benini et al. (TCAD 1999,
// Appendix A).
//
// The paper used PCx, an interior-point research code. Problem instances in
// this reproduction are small (at most a few hundred variables and rows), so
// we substitute a dense two-phase primal simplex method. Policy-optimization
// LPs are numerically stiff — transition probabilities span four orders of
// magnitude and discount factors reach 1−10⁻⁶ — so the implementation keeps
// the original standard-form data and periodically refactorizes: every few
// dozen pivots (and at phase boundaries) the whole tableau is recomputed
// exactly from the current basis via an LU solve, which eliminates the
// error accumulation that plain tableau pivoting suffers on such systems.
// Dantzig pricing is used first with a Bland's-rule fallback that guarantees
// termination on degenerate instances, and every reported solution is
// verified against the original constraints (with one stricter retry before
// giving up with a Numerical status).
//
// Problems are stated over nonnegative variables:
//
//	min (or max)  c'x
//	subject to    a_i'x  (<= | = | >=)  b_i     for each constraint i
//	              x >= 0
package lp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// Sense selects minimization or maximization of the objective.
type Sense int

// Objective senses.
const (
	Minimize Sense = iota
	Maximize
)

// Rel is the relation of a constraint row.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // a'x <= b
	EQ            // a'x == b
	GE            // a'x >= b
)

// String returns the conventional symbol for the relation.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return "?"
}

// Constraint is one row a'x (Rel) b of a problem.
type Constraint struct {
	Name   string
	Coeffs []float64
	Rel    Rel
	RHS    float64
}

// Problem is a linear program over nonnegative variables.
type Problem struct {
	Sense Sense
	// Obj holds the objective coefficients; its length fixes the number of
	// variables.
	Obj  []float64
	Cons []Constraint
}

// NewProblem returns an empty problem with n variables.
func NewProblem(sense Sense, n int) *Problem {
	return &Problem{Sense: sense, Obj: make([]float64, n)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return len(p.Obj) }

// AddConstraint appends a constraint row. It panics if the coefficient
// vector length does not match the number of variables.
func (p *Problem) AddConstraint(name string, coeffs []float64, rel Rel, rhs float64) {
	if len(coeffs) != len(p.Obj) {
		panic(fmt.Sprintf("lp: constraint %q has %d coeffs, want %d", name, len(coeffs), len(p.Obj)))
	}
	c := make([]float64, len(coeffs))
	copy(c, coeffs)
	p.Cons = append(p.Cons, Constraint{Name: name, Coeffs: c, Rel: rel, RHS: rhs})
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
	Numerical
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration limit"
	case Numerical:
		return "numerically unstable"
	}
	return "unknown"
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status     Status
	X          []float64 // variable values (valid when Status == Optimal)
	Objective  float64   // c'x in the problem's own sense
	Activities []float64 // a_i'x per constraint
	Iterations int
	// WarmStarted reports that the solve reused a caller-supplied Basis and
	// skipped phase 1 (see SolveWithBasis).
	WarmStarted bool
}

// ErrNotOptimal is wrapped by Solve when the problem has no optimal solution.
var ErrNotOptimal = errors.New("lp: no optimal solution")

const (
	costTol  = 1e-9  // reduced-cost optimality tolerance
	pivotTol = 1e-8  // smallest acceptable pivot magnitude
	zeroTol  = 1e-11 // clamp for tiny negative basic values
)

// Solve solves the problem with the two-phase primal simplex method.
// The returned error is non-nil (wrapping ErrNotOptimal) exactly when the
// status is not Optimal; callers that distinguish infeasible from unbounded
// should inspect Solution.Status.
func Solve(p *Problem) (*Solution, error) {
	sol, _, err := SolveWithBasis(p, nil)
	return sol, err
}

func solveOnce(p *Problem, conservative bool) (*Solution, *tableau) {
	t, preStatus := newTableau(p, conservative)
	if preStatus != Optimal {
		return &Solution{Status: preStatus}, nil
	}
	sol := t.solve()
	if sol.Status != Optimal {
		return sol, nil
	}
	if !t.verify(sol.X) {
		sol.Status = Numerical
	}
	return sol, t
}

// tableau is the dense simplex tableau plus the immutable standard-form
// data it is periodically recomputed from. Column layout:
//
//	[0, nv)            structural variables
//	[nv, nv+ns)        slack/surplus variables
//	[nv+ns, nTot)      artificial variables (phase 1 only)
//
// rows[i] has length nTot+1; the last entry is the current basic value.
// obj holds the reduced-cost row of the active phase (last entry: negated
// objective value).
type tableau struct {
	nv, ns, na int
	nTot       int
	m          int

	origA *mat.Matrix // m × nTot, immutable standard form
	origB mat.Vector  // length m, >= 0
	cost1 mat.Vector  // phase-1 costs (1 on artificials)
	cost2 mat.Vector  // phase-2 costs (minimization form)

	rows  [][]float64
	obj   []float64
	basis []int

	iterations   int
	refreshEvery int
	blandAlways  bool

	// problem reference for the final feasibility verification
	prob *Problem
}

// newTableau builds the phase-1 tableau. It returns a non-Optimal status if
// trivial presolve detects infeasibility (all-zero row with impossible RHS).
func newTableau(p *Problem, conservative bool) (*tableau, Status) {
	nv := p.NumVars()

	type rowSpec struct {
		coeffs []float64
		rel    Rel
		rhs    float64
	}
	var specs []rowSpec
	for _, c := range p.Cons {
		allZero := true
		for _, v := range c.Coeffs {
			if v != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			ok := false
			switch c.Rel {
			case LE:
				ok = c.RHS >= -costTol
			case GE:
				ok = c.RHS <= costTol
			case EQ:
				ok = math.Abs(c.RHS) <= costTol
			}
			if !ok {
				return nil, Infeasible
			}
			continue
		}
		specs = append(specs, rowSpec{c.Coeffs, c.Rel, c.RHS})
	}

	m := len(specs)
	type norm struct {
		coeffs []float64
		rhs    float64
		slack  int // +1 slack, -1 surplus, 0 none
		art    bool
	}
	normed := make([]norm, m)
	ns, na := 0, 0
	for i, s := range specs {
		coeffs := make([]float64, nv)
		copy(coeffs, s.coeffs)
		rhs := s.rhs
		rel := s.rel
		if rhs < 0 {
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		n := norm{coeffs: coeffs, rhs: rhs}
		switch rel {
		case LE:
			n.slack = 1
			ns++
		case GE:
			n.slack = -1
			ns++
			n.art = true
			na++
		case EQ:
			n.art = true
			na++
		}
		normed[i] = n
	}

	nTot := nv + ns + na
	t := &tableau{
		nv: nv, ns: ns, na: na, nTot: nTot, m: m,
		origA:        mat.NewMatrix(m, nTot),
		origB:        mat.NewVector(m),
		cost1:        mat.NewVector(nTot),
		cost2:        mat.NewVector(nTot),
		basis:        make([]int, m),
		refreshEvery: 40,
		prob:         p,
	}
	if conservative {
		t.refreshEvery = 8
		t.blandAlways = true
	}

	slackCol := nv
	artCol := nv + ns
	for i, n := range normed {
		for j, v := range n.coeffs {
			t.origA.Set(i, j, v)
		}
		t.origB[i] = n.rhs
		switch {
		case n.slack == 1 && !n.art:
			t.origA.Set(i, slackCol, 1)
			t.basis[i] = slackCol
			slackCol++
		case n.slack == -1 && n.art:
			t.origA.Set(i, slackCol, -1)
			slackCol++
			t.origA.Set(i, artCol, 1)
			t.basis[i] = artCol
			artCol++
		default: // EQ with artificial
			t.origA.Set(i, artCol, 1)
			t.basis[i] = artCol
			artCol++
		}
	}

	for j := 0; j < nv; j++ {
		if p.Sense == Minimize {
			t.cost2[j] = p.Obj[j]
		} else {
			t.cost2[j] = -p.Obj[j]
		}
	}
	for j := nv + ns; j < nTot; j++ {
		t.cost1[j] = 1
	}

	t.rows = make([][]float64, m)
	for i := range t.rows {
		t.rows[i] = make([]float64, nTot+1)
	}
	t.obj = make([]float64, nTot+1)
	return t, Optimal
}

// refresh recomputes the whole tableau exactly from the original data and
// the current basis: rows = B⁻¹[A|b], reduced costs = c − yᵀA with
// Bᵀy = c_B. Returns false if the basis matrix is singular (the caller then
// keeps the incrementally-updated tableau).
func (t *tableau) refresh(cost mat.Vector) bool {
	b := mat.NewMatrix(t.m, t.m)
	for i := 0; i < t.m; i++ {
		for r := 0; r < t.m; r++ {
			b.Set(r, i, t.origA.At(r, t.basis[i]))
		}
	}
	f, err := mat.Factor(b)
	if err != nil {
		return false
	}
	// Basic values.
	xb := f.Solve(t.origB)
	// Columns: B⁻¹ A, column by column.
	colBuf := mat.NewVector(t.m)
	newRows := make([][]float64, t.m)
	for i := range newRows {
		newRows[i] = make([]float64, t.nTot+1)
	}
	for j := 0; j < t.nTot; j++ {
		nonzero := false
		for r := 0; r < t.m; r++ {
			v := t.origA.At(r, j)
			colBuf[r] = v
			if v != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			continue
		}
		sol := f.Solve(colBuf)
		for r := 0; r < t.m; r++ {
			newRows[r][j] = sol[r]
		}
	}
	for r := 0; r < t.m; r++ {
		v := xb[r]
		if v < 0 && v > -1e-7 {
			v = 0
		}
		newRows[r][t.nTot] = v
	}
	// Reduced costs.
	cb := mat.NewVector(t.m)
	for i, bi := range t.basis {
		cb[i] = cost[bi]
	}
	bt, err := mat.Factor(b.T())
	if err != nil {
		return false
	}
	y := bt.Solve(cb)
	newObj := make([]float64, t.nTot+1)
	for j := 0; j < t.nTot; j++ {
		rc := cost[j]
		for r := 0; r < t.m; r++ {
			rc -= y[r] * t.origA.At(r, j)
		}
		newObj[j] = rc
	}
	for i, bi := range t.basis {
		newObj[bi] = 0
		_ = i
	}
	newObj[t.nTot] = -y.Dot(t.origB)
	t.rows = newRows
	t.obj = newObj
	return true
}

// pivot performs a pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1
	for i, r := range t.rows {
		if i == row {
			continue
		}
		if f := r[col]; f != 0 {
			for j := range r {
				r[j] -= f * pr[j]
			}
			r[col] = 0
		}
	}
	if f := t.obj[col]; f != 0 {
		for j := range t.obj {
			t.obj[j] -= f * pr[j]
		}
		t.obj[col] = 0
	}
	t.basis[row] = col
	t.iterations++
}

// chooseColumn picks the entering column. maxCol bounds the candidates
// (excludes artificials in phase 2).
func (t *tableau) chooseColumn(maxCol int, bland bool) int {
	if bland {
		for j := 0; j < maxCol; j++ {
			if t.obj[j] < -costTol {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -costTol
	for j := 0; j < maxCol; j++ {
		if t.obj[j] < bestVal {
			bestVal = t.obj[j]
			best = j
		}
	}
	return best
}

// chooseRow runs the ratio test for entering column col. Ratio comparisons
// use a relative tolerance; among (near-)ties the largest pivot element
// wins for stability, except under Bland's rule where the smallest basis
// index wins to guarantee termination. Returns -1 when the column is
// unbounded.
func (t *tableau) chooseRow(col int, bland bool) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	bestPivot := 0.0
	for i, r := range t.rows {
		a := r[col]
		if a <= pivotTol {
			continue
		}
		rhs := r[t.nTot]
		if rhs < 0 {
			rhs = 0 // tiny negative from roundoff: treat as degenerate
		}
		ratio := rhs / a
		tol := 1e-9 * (1 + math.Abs(bestRatio))
		switch {
		case ratio < bestRatio-tol:
			bestRow, bestRatio, bestPivot = i, ratio, a
		case ratio <= bestRatio+tol:
			if bland {
				if bestRow == -1 || t.basis[i] < t.basis[bestRow] {
					bestRow, bestPivot = i, a
					if ratio < bestRatio {
						bestRatio = ratio
					}
				}
			} else if a > bestPivot {
				bestRow, bestPivot = i, a
				if ratio < bestRatio {
					bestRatio = ratio
				}
			}
		}
	}
	return bestRow
}

// runPhase iterates to optimality, unboundedness, or the iteration cap,
// refactorizing the tableau every refreshEvery pivots.
func (t *tableau) runPhase(cost mat.Vector, maxCol int) Status {
	stallAfter := 200 + 20*(t.m+t.nTot)
	limit := 1000 + 400*(t.m+t.nTot)
	sinceRefresh := 0
	for iter := 0; ; iter++ {
		if iter > limit {
			return IterationLimit
		}
		if sinceRefresh >= t.refreshEvery {
			t.refresh(cost)
			sinceRefresh = 0
		}
		bland := t.blandAlways || iter > stallAfter
		col := t.chooseColumn(maxCol, bland)
		if col < 0 {
			return Optimal
		}
		row := t.chooseRow(col, bland)
		if row < 0 {
			return Unbounded
		}
		t.pivot(row, col)
		sinceRefresh++
	}
}

// solve runs both phases and extracts the solution.
func (t *tableau) solve() *Solution {
	sol := &Solution{}

	if t.na > 0 {
		if !t.refresh(t.cost1) {
			sol.Status = Numerical
			return sol
		}
		st := t.runPhase(t.cost1, t.nTot)
		if st == IterationLimit || st == Unbounded {
			// Phase 1 is never unbounded in exact arithmetic; treat as
			// numerical trouble.
			sol.Status = Numerical
			if st == IterationLimit {
				sol.Status = IterationLimit
			}
			return sol
		}
		t.refresh(t.cost1) // exact phase-1 value
		if phase1 := -t.obj[t.nTot]; phase1 > 1e-7*(1+t.origB.Sum()) {
			sol.Status = Infeasible
			sol.Iterations = t.iterations
			return sol
		}
		// Drive any degenerate basic artificials out of the basis.
		for i, b := range t.basis {
			if b < t.nv+t.ns {
				continue
			}
			for j := 0; j < t.nv+t.ns; j++ {
				if math.Abs(t.rows[i][j]) > pivotTol {
					t.pivot(i, j)
					break
				}
			}
			// If the entire row is zero over real columns the constraint is
			// redundant; its artificial stays basic at value zero, harmless
			// because phase 2 never prices artificial columns.
		}
	}

	return t.phase2()
}

// phase2 optimizes the true objective from the current (primal feasible)
// basis and extracts the solution. It is the shared tail of the cold
// two-phase solve and of warm starts that enter with a reusable basis.
func (t *tableau) phase2() *Solution {
	sol := &Solution{}
	if !t.refresh(t.cost2) {
		sol.Status = Numerical
		return sol
	}
	st := t.runPhase(t.cost2, t.nv+t.ns)
	sol.Iterations = t.iterations
	if st != Optimal {
		sol.Status = st
		return sol
	}
	// Final exact recomputation of the solution from the basis.
	t.refresh(t.cost2)
	sol.Status = Optimal
	x := make([]float64, t.nv)
	for i, b := range t.basis {
		if b < t.nv {
			v := t.rows[i][t.nTot]
			if v < 0 {
				if v < -1e-7 {
					sol.Status = Numerical
					return sol
				}
				v = 0
			}
			x[b] = v
		}
	}
	sol.X = x
	return sol
}

// verify checks the candidate solution against the original problem with a
// scale-relative tolerance.
func (t *tableau) verify(x []float64) bool {
	for _, v := range x {
		if v < -1e-7 || math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	for _, c := range t.prob.Cons {
		a := 0.0
		scale := math.Abs(c.RHS)
		for j, v := range c.Coeffs {
			a += v * x[j]
			if s := math.Abs(v * x[j]); s > scale {
				scale = s
			}
		}
		tol := 1e-6 * (1 + scale)
		switch c.Rel {
		case LE:
			if a > c.RHS+tol {
				return false
			}
		case GE:
			if a < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(a-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}
