// Package lp provides an exact linear-programming solver used to solve the
// policy-optimization problems LP2/LP3/LP4 of Benini et al. (TCAD 1999,
// Appendix A).
//
// The paper used PCx, an interior-point research code. This reproduction
// substitutes a two-phase **revised simplex** method: the constraint matrix
// is stored column-sparse (policy LPs have one column per (state, command)
// pair with only a handful of nonzeros each — the queue law of Eq. 3 is
// banded and the component chains have tiny out-degrees), the basis is kept
// as a dense LU factorization of only the m×m basis matrix (internal/mat's
// solver), updated between refactorizations with product-form eta vectors,
// and pricing and ratio tests walk sparse columns. Cost per pivot is
// O(nnz(A) + m²) instead of the O(rows × cols) of a full tableau, and
// memory is O(nnz + m²) instead of O(rows × cols) — the difference between
// thrashing and tractable on large composed systems.
//
// Policy-optimization LPs are numerically stiff — transition probabilities
// span four orders of magnitude and discount factors reach 1−10⁻⁶ — so the
// solver keeps the original standard-form data and refactorizes the basis
// every few dozen pivots, which eliminates the error accumulation that
// incremental updates suffer on such systems. Dantzig pricing is used first
// with a Bland's-rule fallback that guarantees termination on degenerate
// instances, and every reported solution is verified against the original
// constraints (with one stricter retry before giving up with a Numerical
// status).
//
// The previous full-tableau dense simplex is retained as SolveDense — a
// reference implementation for parity tests and the performance baseline
// for benchmarks; both solvers share the same standard form, tolerances and
// Basis layout, so bases exported by one are meaningful to the other.
//
// Problems are stated over nonnegative variables:
//
//	min (or max)  c'x
//	subject to    a_i'x  (<= | = | >=)  b_i     for each constraint i
//	              x >= 0
package lp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
)

// Sense selects minimization or maximization of the objective.
type Sense int

// Objective senses.
const (
	Minimize Sense = iota
	Maximize
)

// Rel is the relation of a constraint row.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // a'x <= b
	EQ            // a'x == b
	GE            // a'x >= b
)

// String returns the conventional symbol for the relation.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return "?"
}

// Constraint is one row a'x (Rel) b of a problem, stored sparsely: Cols
// holds the sorted indices of the nonzero coefficients and Vals the
// corresponding values. Build rows through AddConstraint (dense input) or
// AddConstraintNZ (sparse input); both normalize into this form.
type Constraint struct {
	Name string
	Cols []int
	Vals []float64
	Rel  Rel
	RHS  float64
}

// Dot returns the row activity a'x for a dense x.
func (c *Constraint) Dot(x []float64) float64 {
	s := 0.0
	for k, j := range c.Cols {
		s += c.Vals[k] * x[j]
	}
	return s
}

// Coeff returns the coefficient of variable j (zero if not stored).
func (c *Constraint) Coeff(j int) float64 {
	k := sort.SearchInts(c.Cols, j)
	if k < len(c.Cols) && c.Cols[k] == j {
		return c.Vals[k]
	}
	return 0
}

// Problem is a linear program over nonnegative variables.
type Problem struct {
	Sense Sense
	// Obj holds the objective coefficients; its length fixes the number of
	// variables.
	Obj  []float64
	Cons []Constraint
}

// NewProblem returns an empty problem with n variables.
func NewProblem(sense Sense, n int) *Problem {
	return &Problem{Sense: sense, Obj: make([]float64, n)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return len(p.Obj) }

// AddConstraint appends a constraint row from a dense coefficient vector.
// It panics if the vector length does not match the number of variables.
func (p *Problem) AddConstraint(name string, coeffs []float64, rel Rel, rhs float64) {
	if len(coeffs) != len(p.Obj) {
		panic(fmt.Sprintf("lp: constraint %q has %d coeffs, want %d", name, len(coeffs), len(p.Obj)))
	}
	var cols []int
	var vals []float64
	for j, v := range coeffs {
		if v != 0 {
			cols = append(cols, j)
			vals = append(vals, v)
		}
	}
	p.Cons = append(p.Cons, Constraint{Name: name, Cols: cols, Vals: vals, Rel: rel, RHS: rhs})
}

// AddConstraintNZ appends a constraint row from sparse (index, value) pairs,
// the assembly path used when rows are derived from sparse transition
// structure and materializing a dense coefficient vector per row would cost
// O(vars × rows). Duplicate indices are summed, entries that cancel to zero
// are dropped, and the input slices are not retained. It panics on an index
// outside [0, NumVars()) or mismatched slice lengths.
func (p *Problem) AddConstraintNZ(name string, cols []int, vals []float64, rel Rel, rhs float64) {
	if len(cols) != len(vals) {
		panic(fmt.Sprintf("lp: constraint %q has %d indices but %d values", name, len(cols), len(vals)))
	}
	n := len(p.Obj)
	for _, j := range cols {
		if j < 0 || j >= n {
			panic(fmt.Sprintf("lp: constraint %q index %d outside [0,%d)", name, j, n))
		}
	}
	// A one-row triplet does the sort/merge/drop-zeros compression; its
	// output arrays are freshly allocated, so the row can alias them.
	t := mat.NewTriplet(1, n)
	for k, j := range cols {
		t.Add(0, j, vals[k])
	}
	cc, vv := t.ToCSR().RowNZ(0)
	p.Cons = append(p.Cons, Constraint{Name: name, Cols: cc, Vals: vv, Rel: rel, RHS: rhs})
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
	Numerical
	// Cancelled reports that the solve was abandoned because the caller's
	// context was cancelled or its deadline expired (Solver.Solve, or the
	// deadline installed by WithWallClock); the pivot loops check the
	// context once per iteration, so cancellation takes effect within a
	// solve, not just between solves.
	Cancelled
	// BudgetExceeded reports that the solve consumed its pivot budget
	// (WithMaxPivots) before reaching optimality. Like Cancelled it is a
	// resource verdict, not a statement about the problem: callers with a
	// freshness requirement (the online adapter) treat it as a failed
	// refresh and keep their previous answer.
	BudgetExceeded
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration limit"
	case Numerical:
		return "numerically unstable"
	case Cancelled:
		return "cancelled"
	case BudgetExceeded:
		return "pivot budget exceeded"
	}
	return "unknown"
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status     Status
	X          []float64 // variable values (valid when Status == Optimal)
	Objective  float64   // c'x in the problem's own sense
	Activities []float64 // a_i'x per constraint
	Iterations int
	// Refactorizations counts full basis refactorizations performed by the
	// revised simplex (O(m³) under the dense factorization, O(nnz + fill)
	// under the sparse one) — together with Iterations, the work a solve
	// actually did, which benchmarks report alongside wall time. Always
	// zero for the tableau strategy, which carries a full tableau instead
	// of a factorized basis.
	Refactorizations int
	// FactorNNZ reports the stored nonzeros of the final basis
	// factorization — m² under the dense strategy, nnz(L)+nnz(U)+etas under
	// the sparse one — the fill-in statistic that, next to Iterations and
	// Refactorizations, tells whether the Markowitz ordering is containing
	// fill on a given problem family. Zero for the tableau strategy.
	FactorNNZ int
	// WarmStarted reports that the solve reused a caller-supplied Basis and
	// skipped phase 1 (see Solver.Solve).
	WarmStarted bool
	// Timings is the per-stage wall-clock breakdown of the solve
	// (ftran/btran/price/factor/update) — the attribution that pairs with
	// Iterations and Refactorizations to show where a solve's time went.
	// Zero for the tableau strategy.
	Timings Timings
}

// ErrNotOptimal is wrapped by Solve when the problem has no optimal solution.
var ErrNotOptimal = errors.New("lp: no optimal solution")

// ErrBudgetExceeded is additionally wrapped (alongside ErrNotOptimal) when a
// solve stopped because its WithMaxPivots budget ran out — a resource
// verdict, not a statement about the problem, so callers can match it and
// retry with a larger budget or keep a previous answer.
var ErrBudgetExceeded = errors.New("pivot budget exceeded")

const (
	costTol     = 1e-9  // reduced-cost optimality tolerance
	pivotTol    = 1e-8  // smallest acceptable pivot magnitude (absolute)
	pivotRelTol = 1e-7  // pivot floor relative to ‖w‖∞ of the FTRAN direction
	zeroTol     = 1e-11 // clamp for tiny negative basic values
)

// Solve solves the problem with the two-phase revised simplex method.
// The returned error is non-nil (wrapping ErrNotOptimal) exactly when the
// status is not Optimal; callers that distinguish infeasible from unbounded
// should inspect Solution.Status.
//
// Deprecated: use NewSolver().Solve(context.Background(), p, nil), which
// also exposes factorization, pricing, and budget options.
func Solve(p *Problem) (*Solution, error) {
	sol, _, err := NewSolver().Solve(nil, p, nil)
	return sol, err
}

// stdForm is the shared standard form both solvers run on. Column layout:
//
//	[0, nv)            structural variables
//	[nv, nv+ns)        slack/surplus variables
//	[nv+ns, nTot)      artificial variables (phase 1 only)
//
// Rows with negative right-hand sides are sign-flipped so b >= 0, GE rows
// get a surplus plus an artificial, EQ rows an artificial, LE rows a slack
// that doubles as the initial basic variable. cols is the column-sparse
// constraint matrix including slack and artificial columns.
type stdForm struct {
	nv, ns, na int
	nTot       int
	m          int

	a     *mat.CSC   // m × nTot constraint matrix, column-compressed
	b     mat.Vector // length m, >= 0
	cost1 mat.Vector // phase-1 costs (1 on artificials)
	cost2 mat.Vector // phase-2 costs (minimization form)

	initBasis []int // slack/artificial basis, one per row

	// problem reference for the final feasibility verification
	prob *Problem
}

// newStdForm normalizes the problem. It returns a non-Optimal status if
// trivial presolve detects infeasibility (all-zero row with impossible RHS).
func newStdForm(p *Problem) (*stdForm, Status) {
	nv := p.NumVars()

	type rowSpec struct {
		cols []int
		vals []float64
		rel  Rel
		rhs  float64
	}
	var specs []rowSpec
	for _, c := range p.Cons {
		if len(c.Cols) == 0 {
			ok := false
			switch c.Rel {
			case LE:
				ok = c.RHS >= -costTol
			case GE:
				ok = c.RHS <= costTol
			case EQ:
				ok = math.Abs(c.RHS) <= costTol
			}
			if !ok {
				return nil, Infeasible
			}
			continue
		}
		spec := rowSpec{cols: c.Cols, vals: c.Vals, rel: c.Rel, rhs: c.RHS}
		if spec.rhs < 0 {
			flipped := make([]float64, len(spec.vals))
			for k, v := range spec.vals {
				flipped[k] = -v
			}
			spec.vals = flipped
			spec.rhs = -spec.rhs
			switch spec.rel {
			case LE:
				spec.rel = GE
			case GE:
				spec.rel = LE
			}
		}
		specs = append(specs, spec)
	}

	m := len(specs)
	ns, na := 0, 0
	for _, s := range specs {
		switch s.rel {
		case LE:
			ns++
		case GE:
			ns++
			na++
		case EQ:
			na++
		}
	}
	nTot := nv + ns + na
	sf := &stdForm{
		nv: nv, ns: ns, na: na, nTot: nTot, m: m,
		b:         mat.NewVector(m),
		cost1:     mat.NewVector(nTot),
		cost2:     mat.NewVector(nTot),
		initBasis: make([]int, m),
		prob:      p,
	}

	// Assemble [A | slack | artificial] as triplets and compress to CSC —
	// columns are what every solver access walks (pricing, basis assembly,
	// FTRAN scatter).
	trip := mat.NewTriplet(m, nTot)
	for i, s := range specs {
		sf.b[i] = s.rhs
		for k, j := range s.cols {
			trip.Add(i, j, s.vals[k])
		}
	}
	slackCol := nv
	artCol := nv + ns
	for i, s := range specs {
		switch s.rel {
		case LE:
			trip.Add(i, slackCol, 1)
			sf.initBasis[i] = slackCol
			slackCol++
		case GE:
			trip.Add(i, slackCol, -1)
			slackCol++
			trip.Add(i, artCol, 1)
			sf.initBasis[i] = artCol
			artCol++
		case EQ:
			trip.Add(i, artCol, 1)
			sf.initBasis[i] = artCol
			artCol++
		}
	}
	sf.a = trip.ToCSC()

	for j := 0; j < nv; j++ {
		if p.Sense == Minimize {
			sf.cost2[j] = p.Obj[j]
		} else {
			sf.cost2[j] = -p.Obj[j]
		}
	}
	for j := nv + ns; j < nTot; j++ {
		sf.cost1[j] = 1
	}
	return sf, Optimal
}

// verify checks the candidate solution against the original problem with a
// scale-relative tolerance.
func (sf *stdForm) verify(x []float64) bool {
	for _, v := range x {
		if v < -1e-7 || math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	for i := range sf.prob.Cons {
		c := &sf.prob.Cons[i]
		a := 0.0
		scale := math.Abs(c.RHS)
		for k, j := range c.Cols {
			term := c.Vals[k] * x[j]
			a += term
			if s := math.Abs(term); s > scale {
				scale = s
			}
		}
		tol := 1e-6 * (1 + scale)
		switch c.Rel {
		case LE:
			if a > c.RHS+tol {
				return false
			}
		case GE:
			if a < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(a-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// finishSolution fills in activities and the objective (in the problem's own
// sense) from the original data.
func finishSolution(p *Problem, sol *Solution) {
	sol.Activities = make([]float64, len(p.Cons))
	for i := range p.Cons {
		sol.Activities[i] = p.Cons[i].Dot(sol.X)
	}
	obj := 0.0
	for j, v := range p.Obj {
		obj += v * sol.X[j]
	}
	sol.Objective = obj
}
