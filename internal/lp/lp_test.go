package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v (status %v)", err, sol.Status)
	}
	return sol
}

func TestMaximizeTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 → (2, 6), obj 36.
	p := NewProblem(Maximize, 2)
	p.Obj = []float64{3, 5}
	p.AddConstraint("c1", []float64{1, 0}, LE, 4)
	p.AddConstraint("c2", []float64{0, 2}, LE, 12)
	p.AddConstraint("c3", []float64{3, 2}, LE, 18)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-36) > 1e-9 {
		t.Errorf("objective = %g, want 36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-9 || math.Abs(sol.X[1]-6) > 1e-9 {
		t.Errorf("x = %v, want [2 6]", sol.X)
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10; x >= 2 → optimum at (10, 0)? Check:
	// y has higher cost, so push x: x=10, y=0, obj 20.
	p := NewProblem(Minimize, 2)
	p.Obj = []float64{2, 3}
	p.AddConstraint("cover", []float64{1, 1}, GE, 10)
	p.AddConstraint("xmin", []float64{1, 0}, GE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-20) > 1e-9 {
		t.Errorf("objective = %g, want 20", sol.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y == 5, x <= 3 → x=3, y=2, obj 7.
	p := NewProblem(Minimize, 2)
	p.Obj = []float64{1, 2}
	p.AddConstraint("sum", []float64{1, 1}, EQ, 5)
	p.AddConstraint("cap", []float64{1, 0}, LE, 3)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-7) > 1e-9 {
		t.Errorf("objective = %g, want 7", sol.Objective)
	}
	if math.Abs(sol.X[0]-3) > 1e-9 || math.Abs(sol.X[1]-2) > 1e-9 {
		t.Errorf("x = %v, want [3 2]", sol.X)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2 with min x + y: equivalent to y >= x + 2 → x=0, y=2.
	p := NewProblem(Minimize, 2)
	p.Obj = []float64{1, 1}
	p.AddConstraint("c", []float64{1, -1}, LE, -2)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > 1e-9 {
		t.Errorf("objective = %g, want 2", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Minimize, 1)
	p.Obj = []float64{1}
	p.AddConstraint("lo", []float64{1}, GE, 5)
	p.AddConstraint("hi", []float64{1}, LE, 3)
	sol, err := Solve(p)
	if !errors.Is(err, ErrNotOptimal) {
		t.Fatalf("err = %v, want ErrNotOptimal", err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want Infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize, 2)
	p.Obj = []float64{1, 1}
	p.AddConstraint("c", []float64{1, -1}, LE, 1)
	sol, err := Solve(p)
	if !errors.Is(err, ErrNotOptimal) {
		t.Fatalf("err = %v, want ErrNotOptimal", err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want Unbounded", sol.Status)
	}
}

func TestZeroRowPresolve(t *testing.T) {
	p := NewProblem(Minimize, 2)
	p.Obj = []float64{1, 1}
	p.AddConstraint("trivial", []float64{0, 0}, LE, 1) // always true
	p.AddConstraint("cover", []float64{1, 1}, GE, 4)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-4) > 1e-9 {
		t.Errorf("objective = %g, want 4", sol.Objective)
	}

	bad := NewProblem(Minimize, 2)
	bad.Obj = []float64{1, 1}
	bad.AddConstraint("impossible", []float64{0, 0}, GE, 1) // 0 >= 1
	sol, err := Solve(bad)
	if err == nil || sol.Status != Infeasible {
		t.Errorf("zero-row infeasibility not detected: status %v err %v", sol.Status, err)
	}
}

func TestDegenerateBeale(t *testing.T) {
	// Beale's classic cycling example; must terminate (Bland fallback) at
	// optimum -0.05.
	p := NewProblem(Minimize, 4)
	p.Obj = []float64{-0.75, 150, -0.02, 6}
	p.AddConstraint("r1", []float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint("r2", []float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint("r3", []float64{0, 0, 1, 0}, LE, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-(-0.05)) > 1e-9 {
		t.Errorf("objective = %g, want -0.05", sol.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicate equality rows leave a degenerate artificial in the basis;
	// the solver must still find the optimum.
	p := NewProblem(Minimize, 2)
	p.Obj = []float64{1, 3}
	p.AddConstraint("e1", []float64{1, 1}, EQ, 2)
	p.AddConstraint("e2", []float64{2, 2}, EQ, 4) // same hyperplane
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > 1e-9 { // x=(2,0)
		t.Errorf("objective = %g, want 2", sol.Objective)
	}
}

func TestActivitiesReported(t *testing.T) {
	p := NewProblem(Maximize, 2)
	p.Obj = []float64{1, 1}
	p.AddConstraint("c1", []float64{1, 2}, LE, 4)
	p.AddConstraint("c2", []float64{1, 0}, LE, 3)
	sol := solveOK(t, p)
	if len(sol.Activities) != 2 {
		t.Fatalf("Activities len = %d", len(sol.Activities))
	}
	for i, c := range p.Cons {
		want := c.Dot(sol.X)
		if math.Abs(sol.Activities[i]-want) > 1e-9 {
			t.Errorf("activity[%d] = %g, want %g", i, sol.Activities[i], want)
		}
	}
}

func TestConstraintCoeffsCopied(t *testing.T) {
	p := NewProblem(Minimize, 2)
	p.Obj = []float64{1, 1}
	coeffs := []float64{1, 1}
	p.AddConstraint("c", coeffs, GE, 2)
	coeffs[0] = 99 // must not affect the stored constraint
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > 1e-9 {
		t.Errorf("objective = %g, want 2 (coeffs were aliased?)", sol.Objective)
	}
}

func TestMismatchedCoeffsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("AddConstraint with wrong length did not panic")
		}
	}()
	p := NewProblem(Minimize, 2)
	p.AddConstraint("bad", []float64{1}, LE, 1)
}

// feasible reports whether x satisfies all constraints of p within tol.
func feasible(p *Problem, x []float64, tol float64) bool {
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	for _, c := range p.Cons {
		a := c.Dot(x)
		switch c.Rel {
		case LE:
			if a > c.RHS+tol {
				return false
			}
		case GE:
			if a < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(a-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// TestRandomFeasibleProperty generates random LE problems that are feasible
// by construction (RHS = A*x0 + margin for a random nonnegative x0) and
// checks that the solver (a) returns a feasible point and (b) does at least
// as well as x0.
func TestRandomFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		m := 1 + r.Intn(6)
		p := NewProblem(Minimize, n)
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = r.Float64() * 5
			p.Obj[j] = r.NormFloat64()
		}
		for i := 0; i < m; i++ {
			coeffs := make([]float64, n)
			a := 0.0
			for j := range coeffs {
				coeffs[j] = math.Abs(r.NormFloat64()) // nonnegative rows keep min bounded below via >= rows
				a += coeffs[j] * x0[j]
			}
			// Mix of GE (keeps problem bounded for negative costs... not
			// necessarily) and LE rows around the feasible point.
			if r.Intn(2) == 0 {
				p.AddConstraint("le", coeffs, LE, a+r.Float64())
			} else {
				p.AddConstraint("ge", coeffs, GE, a-r.Float64()*a)
			}
		}
		sol, err := Solve(p)
		if err != nil {
			// Unbounded is possible with negative costs and no binding LE
			// rows; that is a legitimate answer, not a solver failure.
			return sol.Status == Unbounded
		}
		if !feasible(p, sol.X, 1e-6) {
			return false
		}
		obj0 := 0.0
		for j := range x0 {
			obj0 += p.Obj[j] * x0[j]
		}
		return sol.Objective <= obj0+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// bruteForceBest enumerates all basic solutions of a standard-form problem
// with only LE rows (slack variables complete the basis) by trying every
// subset of active constraints; adequate for tiny instances.
func bruteForceBest(p *Problem, pts [][]float64) (float64, bool) {
	best := math.Inf(1)
	found := false
	for _, x := range pts {
		if !feasible(p, x, 1e-9) {
			continue
		}
		obj := 0.0
		for j, v := range p.Obj {
			obj += v * x[j]
		}
		if obj < best {
			best = obj
			found = true
		}
	}
	return best, found
}

// TestAgainstVertexEnumeration compares the solver with explicit vertex
// enumeration on 2-variable problems where vertices can be listed by
// intersecting constraint pairs (plus axes).
func TestAgainstVertexEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := NewProblem(Minimize, 2)
		p.Obj = []float64{r.NormFloat64(), r.NormFloat64()}
		m := 2 + r.Intn(3)
		type line struct{ a, b, c float64 }     // a x + b y <= c
		lines := []line{{-1, 0, 0}, {0, -1, 0}} // x >= 0, y >= 0 as LE form
		for i := 0; i < m; i++ {
			a, b := math.Abs(r.NormFloat64())+0.1, math.Abs(r.NormFloat64())+0.1
			c := 1 + r.Float64()*5
			p.AddConstraint("c", []float64{a, b}, LE, c)
			lines = append(lines, line{a, b, c})
		}
		// Bounded region (positive coefficients), so enumeration is complete.
		var pts [][]float64
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				l1, l2 := lines[i], lines[j]
				det := l1.a*l2.b - l2.a*l1.b
				if math.Abs(det) < 1e-12 {
					continue
				}
				x := (l1.c*l2.b - l2.c*l1.b) / det
				y := (l1.a*l2.c - l2.a*l1.c) / det
				pts = append(pts, []float64{x, y})
			}
		}
		want, ok := bruteForceBest(p, pts)
		if !ok {
			continue
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: objective %g, vertex enumeration %g", trial, sol.Objective, want)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterationLimit: "iteration limit",
		Status(99): "unknown",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	for r, want := range map[Rel]string{LE: "<=", EQ: "==", GE: ">=", Rel(9): "?"} {
		if r.String() != want {
			t.Errorf("Rel.String() = %q, want %q", r.String(), want)
		}
	}
}

func TestLargeBalanceLikeSystem(t *testing.T) {
	// A structure resembling LP2: n states, 2 actions, balance equalities
	// plus a budget row. Verifies equality-heavy systems solve cleanly.
	r := rand.New(rand.NewSource(3))
	n := 20
	nv := n * 2
	p := NewProblem(Minimize, nv)
	for j := 0; j < nv; j++ {
		p.Obj[j] = r.Float64()
	}
	alpha := 0.95
	// Random stochastic matrix per action.
	P := make([][][]float64, 2)
	for a := 0; a < 2; a++ {
		P[a] = make([][]float64, n)
		for s := 0; s < n; s++ {
			row := make([]float64, n)
			sum := 0.0
			for j := range row {
				row[j] = r.Float64()
				sum += row[j]
			}
			for j := range row {
				row[j] /= sum
			}
			P[a][s] = row
		}
	}
	for j := 0; j < n; j++ {
		coeffs := make([]float64, nv)
		for a := 0; a < 2; a++ {
			coeffs[j*2+a] += 1
			for s := 0; s < n; s++ {
				coeffs[s*2+a] -= alpha * P[a][s][j]
			}
		}
		rhs := 0.0
		if j == 0 {
			rhs = 1 - alpha // scaled initial distribution
		}
		p.AddConstraint("balance", coeffs, EQ, rhs)
	}
	sol := solveOK(t, p)
	// Total frequency must equal 1 after scaling.
	total := 0.0
	for _, v := range sol.X {
		total += v
	}
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("total scaled frequency = %g, want 1", total)
	}
}
