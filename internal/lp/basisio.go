package lp

import (
	"encoding/binary"
	"fmt"
)

// Basis serialization: a compact self-describing binary form so optimal
// bases can leave the process — persisted alongside a result cache, evicted
// to disk, or shipped to a distributed solver backend — and later rehydrated
// for SolveWithBasis. The format is versioned ("LPB1") and fully validated
// on decode; a decoded basis is exactly as trustworthy as a fresh export,
// because the solver refactorizes any warm basis against the actual problem
// data and falls back to a cold solve when it does not carry over.
//
// Layout (all integers unsigned varints):
//
//	"LPB1" | nv | ns | na | m | cols[0..m)
var basisMagic = []byte("LPB1")

// MarshalBinary implements encoding.BinaryMarshaler.
func (b *Basis) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, len(basisMagic)+binary.MaxVarintLen64*(4+len(b.cols)))
	buf = append(buf, basisMagic...)
	for _, v := range []int{b.nv, b.ns, b.na, len(b.cols)} {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	for _, c := range b.cols {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. It rejects
// malformed input: bad magic, truncation, trailing bytes, out-of-range or
// duplicate basic columns — everything except semantic staleness, which only
// a solve against the owning problem can detect (and survives, by falling
// back to a cold solve).
func (b *Basis) UnmarshalBinary(data []byte) error {
	if len(data) < len(basisMagic) || string(data[:len(basisMagic)]) != string(basisMagic) {
		return fmt.Errorf("lp: basis decode: bad magic")
	}
	data = data[len(basisMagic):]
	next := func(field string) (int, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("lp: basis decode: truncated %s", field)
		}
		data = data[n:]
		if v >= 1<<31 {
			return 0, fmt.Errorf("lp: basis decode: %s %d out of range", field, v)
		}
		return int(v), nil
	}
	var nv, ns, na, m int
	var err error
	if nv, err = next("nv"); err != nil {
		return err
	}
	if ns, err = next("ns"); err != nil {
		return err
	}
	if na, err = next("na"); err != nil {
		return err
	}
	if m, err = next("m"); err != nil {
		return err
	}
	nTot := nv + ns + na
	// Each remaining column costs at least one byte, so m is bounded by the
	// unread input; checking before allocating keeps a corrupt or hostile
	// header from forcing a multi-GiB allocation.
	if m > len(data) {
		return fmt.Errorf("lp: basis decode: %d columns but only %d bytes remain", m, len(data))
	}
	cols := make([]int, m)
	seen := make(map[int]bool, m)
	for i := range cols {
		c, err := next("column")
		if err != nil {
			return err
		}
		if c >= nTot {
			return fmt.Errorf("lp: basis decode: column %d outside [0,%d)", c, nTot)
		}
		if seen[c] {
			return fmt.Errorf("lp: basis decode: duplicate basic column %d", c)
		}
		seen[c] = true
		cols[i] = c
	}
	if len(data) != 0 {
		return fmt.Errorf("lp: basis decode: %d trailing bytes", len(data))
	}
	b.cols, b.nv, b.ns, b.na = cols, nv, ns, na
	return nil
}
