package lp

// Solver: the package's unified entry point. The historical entrypoint
// sprawl — Solve, SolveWithBasis, SolveWithBasisCtx, SolveDense — collapsed
// into one configurable object: construct a Solver with functional options
// selecting the basis factorization, the pricing rule, a pivot budget, and a
// wall-clock budget, then call Solve with a context and an optional warm
// basis. The old entry points survive as thin deprecated wrappers.

import (
	"context"
	"fmt"
	"time"
)

// Factorization selects the basis-kernel strategy of a Solver.
type Factorization int

// Basis factorization strategies.
const (
	// FactorAuto picks sparse LU for large bases (m ≥ 256) and dense LU
	// below, where the dense kernel's constant factors win.
	FactorAuto Factorization = iota
	// FactorDense is the dense m×m LU with a product-form eta file — the
	// original kernel, retained for small problems and parity testing.
	FactorDense
	// FactorSparse is the Markowitz-ordered sparse LU with Forrest–Tomlin
	// updates (mat.SparseLU); everything is O(nnz).
	FactorSparse
	// FactorTableau routes to the legacy full-tableau dense simplex — a
	// reference implementation for parity tests and "before" benchmark legs.
	// It ignores warm bases, contexts, and pivot budgets, and returns no
	// reusable basis.
	FactorTableau
)

// String names the strategy as accepted by ParseFactorization.
func (f Factorization) String() string {
	switch f {
	case FactorAuto:
		return "auto"
	case FactorDense:
		return "dense"
	case FactorSparse:
		return "sparse"
	case FactorTableau:
		return "tableau"
	}
	return "unknown"
}

// ParseFactorization maps a configuration string ("", "auto", "dense",
// "sparse", "tableau") to a Factorization; the empty string is FactorAuto.
func ParseFactorization(s string) (Factorization, error) {
	switch s {
	case "", "auto":
		return FactorAuto, nil
	case "dense":
		return FactorDense, nil
	case "sparse":
		return FactorSparse, nil
	case "tableau":
		return FactorTableau, nil
	}
	return FactorAuto, fmt.Errorf("lp: unknown factorization %q", s)
}

// Pricing selects the entering-column rule of a Solver.
type Pricing int

// Pricing rules.
const (
	// PriceAuto picks Devex for large problems (m ≥ 256) and Dantzig below.
	PriceAuto Pricing = iota
	// PriceDantzig enters the most negative reduced cost — the classic rule
	// and the pre-Solver behavior.
	PriceDantzig
	// PriceDevex ranks columns by d²/γ with Devex reference weights — an
	// approximate steepest edge that cuts pivot counts on stiff instances.
	PriceDevex
	// PricePartial runs Dantzig over a rotating column window, cutting the
	// pricing scan on very wide problems.
	PricePartial
)

// String names the rule as accepted by ParsePricing.
func (p Pricing) String() string {
	switch p {
	case PriceAuto:
		return "auto"
	case PriceDantzig:
		return "dantzig"
	case PriceDevex:
		return "devex"
	case PricePartial:
		return "partial"
	}
	return "unknown"
}

// ParsePricing maps a configuration string ("", "auto", "dantzig", "devex",
// "partial") to a Pricing; the empty string is PriceAuto.
func ParsePricing(s string) (Pricing, error) {
	switch s {
	case "", "auto":
		return PriceAuto, nil
	case "dantzig":
		return PriceDantzig, nil
	case "devex":
		return PriceDevex, nil
	case "partial":
		return PricePartial, nil
	}
	return PriceAuto, fmt.Errorf("lp: unknown pricing %q", s)
}

// autoSparseMin is the basis size at which FactorAuto switches to the sparse
// kernel and PriceAuto to Devex: below it the dense LU's contiguous inner
// loops beat pointer-chasing sparse structures, above it asymptotics take
// over (and above a few thousand rows the dense kernel stops being
// allocatable at all).
const autoSparseMin = 256

// solverConfig is the resolved option set of one Solver.
type solverConfig struct {
	factorization  Factorization
	pricing        Pricing
	pricingWorkers int
	maxPivots      int
	wallClock      time.Duration
	monitor        Monitor
	monitorEvery   int
}

// Option configures a Solver (functional-options pattern).
type Option func(*solverConfig)

// WithFactorization selects the basis factorization strategy.
func WithFactorization(f Factorization) Option {
	return func(c *solverConfig) { c.factorization = f }
}

// WithPricing selects the pricing rule.
func WithPricing(p Pricing) Option {
	return func(c *solverConfig) { c.pricing = p }
}

// WithPricingWorkers bounds the worker pool of the parallel pricing scans
// (entering-column selection, reduced-cost maintenance and recomputation).
// n <= 0 is auto (GOMAXPROCS capped at 8), n == 1 forces the sequential
// path, n > 1 pins an explicit pool size. The pivot sequence is bit-identical
// for every worker count — the scans chunk deterministically and reduce in
// fixed order — so this is purely a throughput knob (and, in tests, a
// determinism probe).
func WithPricingWorkers(n int) Option {
	return func(c *solverConfig) { c.pricingWorkers = n }
}

// WithMaxPivots bounds the total simplex pivots of one Solve call (per solve
// attempt: a conservative numerical retry gets a fresh budget, warm-start
// restoration shares the warm attempt's). n <= 0 means unlimited. A solve
// stopped by the budget returns Status BudgetExceeded — callers with a
// freshness deadline (the online adapter) treat it like a cancelled refresh
// and keep the previous policy.
func WithMaxPivots(n int) Option {
	return func(c *solverConfig) { c.maxPivots = n }
}

// WithWallClock bounds the wall-clock time of one Solve call by deriving a
// deadline context; expiry surfaces as Status Cancelled with an error
// unwrapping to context.DeadlineExceeded, indistinguishable from a caller
// deadline (it is one).
func WithWallClock(d time.Duration) Option {
	return func(c *solverConfig) { c.wallClock = d }
}

// Solver is a configured LP solver. The zero value (and NewSolver with no
// options) is the auto-tuned default: factorization and pricing chosen by
// problem size, no pivot budget, no wall clock. A Solver is immutable and
// safe for concurrent use; all solve state lives per call.
type Solver struct {
	cfg solverConfig
}

// NewSolver returns a Solver configured by the given options.
func NewSolver(opts ...Option) *Solver {
	s := &Solver{}
	for _, o := range opts {
		o(&s.cfg)
	}
	return s
}

// Solve solves the problem, optionally warm-starting from the basis of a
// previous structurally identical solve (nil warm = cold solve). On Optimal
// it returns the solution and the optimal basis for chaining into the next
// solve; otherwise the basis is nil and the error wraps ErrNotOptimal (or
// the context cause when cancelled). The pivot loops check ctx once per
// iteration, so cancellation takes effect within one pivot. A nil ctx is
// context.Background().
func (s *Solver) Solve(ctx context.Context, p *Problem, warm *Basis) (*Solution, *Basis, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := s.cfg
	if cfg.wallClock > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.wallClock)
		defer cancel()
	}

	if cfg.factorization == FactorTableau {
		sol, _ := solveDenseOnce(p, false)
		if sol.Status == Numerical {
			sol, _ = solveDenseOnce(p, true)
		}
		if sol.Status != Optimal {
			return sol, nil, notOptimalErr(sol.Status)
		}
		finishSolution(p, sol)
		return sol, nil, nil
	}

	var sol *Solution
	var r *revised
	if warm != nil {
		sol, r = solveWarm(ctx, p, warm, cfg)
	}
	if sol == nil {
		sol, r = solveRevised(ctx, p, false, cfg)
		if sol.Status == Numerical {
			// Retry with Bland's rule from the start and aggressive
			// refactorization; slower but maximally stable.
			sol, r = solveRevised(ctx, p, true, cfg)
		}
	}
	if sol.Status == Cancelled {
		cause := context.Cause(ctx)
		if cause == nil {
			// The deadline was observed directly before the context's timer
			// goroutine ran (see revised.cancelled).
			cause = context.DeadlineExceeded
		}
		return sol, nil, fmt.Errorf("lp: solve cancelled: %w", cause)
	}
	if sol.Status != Optimal {
		return sol, nil, notOptimalErr(sol.Status)
	}
	// Activities and objective are recomputed from the original data.
	finishSolution(p, sol)
	return sol, r.exportBasis(), nil
}
