package lp

import "time"

// Timings is the per-stage wall-clock breakdown of one solve, accumulated
// across phases, warm-start attempts, and the dual-simplex repair loop. The
// stages partition the pivot loop's heavy operations:
//
//   - Ftran: entering-direction solves B x = a_j (sparse or dense kernel).
//   - Btran: pivot-row multiplier solves Bᵀβ = e_r and dual solves Bᵀy = c_B.
//   - Price: entering-column selection (Choose / Bland scans), the pivot-row
//     scatter βᵀA, the reduced-cost maintenance (updateD) and its periodic
//     exact recomputation.
//   - Factor: full basis refactorizations, including the exact basic-value
//     recomputation that follows each one.
//   - Update: basic-value updates plus the factorization column-replacement
//     update (Forrest–Tomlin or product-form eta).
//
// Cheap glue (ratio tests, bookkeeping) is deliberately unattributed, so
// Total is a lower bound on solve wall clock, not an identity.
type Timings struct {
	Ftran  time.Duration
	Btran  time.Duration
	Price  time.Duration
	Factor time.Duration
	Update time.Duration
}

// Total sums the attributed stages.
func (t Timings) Total() time.Duration {
	return t.Ftran + t.Btran + t.Price + t.Factor + t.Update
}

// Add accumulates o into t (used when one logical solve chains attempts).
func (t *Timings) Add(o Timings) {
	t.Ftran += o.Ftran
	t.Btran += o.Btran
	t.Price += o.Price
	t.Factor += o.Factor
	t.Update += o.Update
}
