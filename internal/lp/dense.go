package lp

// Legacy dense full-tableau simplex, retained for two jobs: a reference
// implementation that parity tests compare the revised simplex against, and
// the "before" leg of benchmarks measuring what the sparse refactor buys.
// It consumes the same standard form (and produces the same Basis layout)
// as the revised solver, but materializes the full m×nTot tableau — cost
// per pivot O(rows × cols), memory O(rows × cols) — which is exactly the
// blowup that caps large composed systems.

import (
	"math"

	"repro/internal/mat"
)

// SolveDense solves the problem with the two-phase full-tableau simplex.
// Semantics match Solve (same statuses, same error contract); only the
// algorithm differs. This entry point exists for parity testing and
// benchmarking against the revised simplex.
//
// Deprecated: use NewSolver(WithFactorization(FactorTableau)).Solve, which
// routes to the same tableau implementation.
func SolveDense(p *Problem) (*Solution, error) {
	sol, _, err := NewSolver(WithFactorization(FactorTableau)).Solve(nil, p, nil)
	return sol, err
}

func solveDenseOnce(p *Problem, conservative bool) (*Solution, *tableau) {
	sf, preStatus := newStdForm(p)
	if preStatus != Optimal {
		return &Solution{Status: preStatus}, nil
	}
	t := newTableau(sf, conservative)
	sol := t.solve()
	if sol.Status != Optimal {
		return sol, nil
	}
	if !sf.verify(sol.X) {
		sol.Status = Numerical
	}
	return sol, t
}

// tableau is the dense simplex tableau plus the immutable standard-form
// data it is periodically recomputed from. rows[i] has length nTot+1; the
// last entry is the current basic value. obj holds the reduced-cost row of
// the active phase (last entry: negated objective value).
type tableau struct {
	sf *stdForm

	origA *mat.Matrix // m × nTot, densified standard form

	rows  [][]float64
	obj   []float64
	basis []int

	iterations   int
	refreshEvery int
	blandAlways  bool
}

func newTableau(sf *stdForm, conservative bool) *tableau {
	t := &tableau{
		sf:           sf,
		origA:        mat.NewMatrix(sf.m, sf.nTot),
		basis:        make([]int, sf.m),
		refreshEvery: 40,
	}
	copy(t.basis, sf.initBasis)
	if conservative {
		t.refreshEvery = 8
		t.blandAlways = true
	}
	for j := 0; j < sf.nTot; j++ {
		rows, vals := sf.a.ColNZ(j)
		for k, i := range rows {
			t.origA.Set(i, j, vals[k])
		}
	}
	t.rows = make([][]float64, sf.m)
	for i := range t.rows {
		t.rows[i] = make([]float64, sf.nTot+1)
	}
	t.obj = make([]float64, sf.nTot+1)
	return t
}

// refresh recomputes the whole tableau exactly from the original data and
// the current basis: rows = B⁻¹[A|b], reduced costs = c − yᵀA with
// Bᵀy = c_B. Returns false if the basis matrix is singular (the caller then
// keeps the incrementally-updated tableau).
func (t *tableau) refresh(cost mat.Vector) bool {
	m, nTot := t.sf.m, t.sf.nTot
	b := mat.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for r := 0; r < m; r++ {
			b.Set(r, i, t.origA.At(r, t.basis[i]))
		}
	}
	f, err := mat.Factor(b)
	if err != nil {
		return false
	}
	// Basic values.
	xb := f.Solve(t.sf.b)
	// Columns: B⁻¹ A, column by column.
	colBuf := mat.NewVector(m)
	newRows := make([][]float64, m)
	for i := range newRows {
		newRows[i] = make([]float64, nTot+1)
	}
	for j := 0; j < nTot; j++ {
		nonzero := false
		for r := 0; r < m; r++ {
			v := t.origA.At(r, j)
			colBuf[r] = v
			if v != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			continue
		}
		sol := f.Solve(colBuf)
		for r := 0; r < m; r++ {
			newRows[r][j] = sol[r]
		}
	}
	for r := 0; r < m; r++ {
		v := xb[r]
		if v < 0 && v > -1e-7 {
			v = 0
		}
		newRows[r][nTot] = v
	}
	// Reduced costs.
	cb := mat.NewVector(m)
	for i, bi := range t.basis {
		cb[i] = cost[bi]
	}
	y := f.SolveT(cb)
	newObj := make([]float64, nTot+1)
	for j := 0; j < nTot; j++ {
		rc := cost[j]
		for r := 0; r < m; r++ {
			rc -= y[r] * t.origA.At(r, j)
		}
		newObj[j] = rc
	}
	for _, bi := range t.basis {
		newObj[bi] = 0
	}
	newObj[nTot] = -y.Dot(t.sf.b)
	t.rows = newRows
	t.obj = newObj
	return true
}

// pivot performs a pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1
	for i, r := range t.rows {
		if i == row {
			continue
		}
		if f := r[col]; f != 0 {
			for j := range r {
				r[j] -= f * pr[j]
			}
			r[col] = 0
		}
	}
	if f := t.obj[col]; f != 0 {
		for j := range t.obj {
			t.obj[j] -= f * pr[j]
		}
		t.obj[col] = 0
	}
	t.basis[row] = col
	t.iterations++
}

// chooseColumn picks the entering column. maxCol bounds the candidates
// (excludes artificials in phase 2).
func (t *tableau) chooseColumn(maxCol int, bland bool) int {
	if bland {
		for j := 0; j < maxCol; j++ {
			if t.obj[j] < -costTol {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -costTol
	for j := 0; j < maxCol; j++ {
		if t.obj[j] < bestVal {
			bestVal = t.obj[j]
			best = j
		}
	}
	return best
}

// chooseRow runs the ratio test for entering column col. Ratio comparisons
// use a relative tolerance; among (near-)ties the largest pivot element
// wins for stability, except under Bland's rule where the smallest basis
// index wins to guarantee termination. Returns -1 when the column is
// unbounded.
func (t *tableau) chooseRow(col int, bland bool) int {
	nTot := t.sf.nTot
	bestRow := -1
	bestRatio := math.Inf(1)
	bestPivot := 0.0
	for i, r := range t.rows {
		a := r[col]
		if a <= pivotTol {
			continue
		}
		rhs := r[nTot]
		if rhs < 0 {
			rhs = 0 // tiny negative from roundoff: treat as degenerate
		}
		ratio := rhs / a
		tol := 1e-9 * (1 + math.Abs(bestRatio))
		switch {
		case ratio < bestRatio-tol:
			bestRow, bestRatio, bestPivot = i, ratio, a
		case ratio <= bestRatio+tol:
			if bland {
				if bestRow == -1 || t.basis[i] < t.basis[bestRow] {
					bestRow, bestPivot = i, a
					if ratio < bestRatio {
						bestRatio = ratio
					}
				}
			} else if a > bestPivot {
				bestRow, bestPivot = i, a
				if ratio < bestRatio {
					bestRatio = ratio
				}
			}
		}
	}
	return bestRow
}

// runPhase iterates to optimality, unboundedness, or the iteration cap,
// refactorizing the tableau every refreshEvery pivots.
func (t *tableau) runPhase(cost mat.Vector, maxCol int) Status {
	m, nTot := t.sf.m, t.sf.nTot
	stallAfter := 200 + 20*(m+nTot)
	limit := 1000 + 400*(m+nTot)
	sinceRefresh := 0
	for iter := 0; ; iter++ {
		if iter > limit {
			return IterationLimit
		}
		if sinceRefresh >= t.refreshEvery {
			t.refresh(cost)
			sinceRefresh = 0
		}
		bland := t.blandAlways || iter > stallAfter
		col := t.chooseColumn(maxCol, bland)
		if col < 0 {
			return Optimal
		}
		row := t.chooseRow(col, bland)
		if row < 0 {
			return Unbounded
		}
		t.pivot(row, col)
		sinceRefresh++
	}
}

// solve runs both phases and extracts the solution.
func (t *tableau) solve() *Solution {
	sol := &Solution{}
	sf := t.sf

	if sf.na > 0 {
		if !t.refresh(sf.cost1) {
			sol.Status = Numerical
			return sol
		}
		st := t.runPhase(sf.cost1, sf.nTot)
		if st == IterationLimit || st == Unbounded {
			// Phase 1 is never unbounded in exact arithmetic; treat as
			// numerical trouble.
			sol.Status = Numerical
			if st == IterationLimit {
				sol.Status = IterationLimit
			}
			return sol
		}
		t.refresh(sf.cost1) // exact phase-1 value
		if phase1 := -t.obj[sf.nTot]; phase1 > 1e-7*(1+sf.b.Sum()) {
			sol.Status = Infeasible
			sol.Iterations = t.iterations
			return sol
		}
		// Drive any degenerate basic artificials out of the basis.
		for i, b := range t.basis {
			if b < sf.nv+sf.ns {
				continue
			}
			for j := 0; j < sf.nv+sf.ns; j++ {
				if math.Abs(t.rows[i][j]) > pivotTol {
					t.pivot(i, j)
					break
				}
			}
			// If the entire row is zero over real columns the constraint is
			// redundant; its artificial stays basic at value zero, harmless
			// because phase 2 never prices artificial columns.
		}
	}

	return t.phase2()
}

// phase2 optimizes the true objective from the current (primal feasible)
// basis and extracts the solution.
func (t *tableau) phase2() *Solution {
	sol := &Solution{}
	sf := t.sf
	if !t.refresh(sf.cost2) {
		sol.Status = Numerical
		return sol
	}
	st := t.runPhase(sf.cost2, sf.nv+sf.ns)
	sol.Iterations = t.iterations
	if st != Optimal {
		sol.Status = st
		return sol
	}
	// Final exact recomputation of the solution from the basis.
	t.refresh(sf.cost2)
	sol.Status = Optimal
	x := make([]float64, sf.nv)
	for i, b := range t.basis {
		if b < sf.nv {
			v := t.rows[i][sf.nTot]
			if v < 0 {
				if v < -1e-7 {
					sol.Status = Numerical
					return sol
				}
				v = 0
			}
			x[b] = v
		}
	}
	sol.X = x
	return sol
}
