package lp

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// wideProblems returns instances wide enough (nTot ≥ parGrain·workers) that
// the chunked pricing scans genuinely fan out over the worker pool — the
// parity corpus alone never crosses parGrain, so on its own it would only
// test the sequential fallback. Cover-style GE rows force both phases to
// pivot, and the randomized sparse columns give Dantzig, Devex, and partial
// pricing real tie-break opportunities at chunk boundaries.
func wideProblems() map[string]*Problem {
	probs := map[string]*Problem{}
	for _, w := range []struct {
		name string
		seed int64
		m, n int
	}{
		{"wide-cover", 7, 48, 3*parGrain + 17},
		{"wide-mixed", 19, 32, 8*parGrain + 3},
	} {
		r := rand.New(rand.NewSource(w.seed))
		q := NewProblem(Minimize, w.n)
		x0 := make([]float64, w.m) // target row activities
		rows := make([][]float64, w.m)
		for i := range rows {
			rows[i] = make([]float64, w.n)
			x0[i] = 1 + r.Float64()*4
		}
		for j := 0; j < w.n; j++ {
			q.Obj[j] = r.Float64()
			// Each column touches 1–3 rows with positive weight.
			for k, t := 0, 1+r.Intn(3); k < t; k++ {
				rows[r.Intn(w.m)][j] = math.Abs(r.NormFloat64())
			}
		}
		for i, coeffs := range rows {
			switch {
			case w.name == "wide-mixed" && i%5 == 0:
				q.AddConstraint("eq", coeffs, EQ, x0[i])
			default:
				q.AddConstraint("ge", coeffs, GE, x0[i])
			}
		}
		probs[w.name] = q
	}
	return probs
}

// solveWith runs one solve at the given pricing rule and worker count.
func solveWith(t *testing.T, p *Problem, pricing Pricing, workers int) (*Solution, *Basis) {
	t.Helper()
	s := NewSolver(WithPricing(pricing), WithPricingWorkers(workers))
	sol, basis, err := s.Solve(context.Background(), p, nil)
	if err != nil && sol.Status != Infeasible && sol.Status != Unbounded {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return sol, basis
}

// TestParallelPricingDeterminism is the bit-identity contract of the
// chunked pricing scans: for every corpus and wide instance, every pricing
// rule, and workers ∈ {2, 8}, the solve must reproduce the sequential
// (workers = 1) run exactly — same pivot count and refactorization count
// (a pivot sequence that diverged anywhere could not re-converge to both),
// the same final basis, and a bit-identical solution vector. Run under
// -race this also proves the fan-out writes are disjoint.
func TestParallelPricingDeterminism(t *testing.T) {
	probs := parityProblems()
	for name, p := range wideProblems() {
		probs[name] = p
	}
	pricings := []Pricing{PriceDantzig, PriceDevex, PricePartial}
	for name, p := range probs {
		for _, pricing := range pricings {
			seq, seqBasis := solveWith(t, p, pricing, 1)
			for _, workers := range []int{2, 8} {
				sol, basis := solveWith(t, p, pricing, workers)
				tag := func(field string) string {
					return fmt.Sprintf("%s/%s/workers=%d: %s", name, pricing, workers, field)
				}
				if sol.Status != seq.Status {
					t.Errorf("%s: %v, sequential %v", tag("status"), sol.Status, seq.Status)
					continue
				}
				if sol.Iterations != seq.Iterations {
					t.Errorf("%s: %d, sequential %d", tag("pivots"), sol.Iterations, seq.Iterations)
				}
				if sol.Refactorizations != seq.Refactorizations {
					t.Errorf("%s: %d, sequential %d", tag("refactorizations"), sol.Refactorizations, seq.Refactorizations)
				}
				if sol.Objective != seq.Objective {
					t.Errorf("%s: %v, sequential %v (not bit-identical)", tag("objective"), sol.Objective, seq.Objective)
				}
				for j := range seq.X {
					if sol.X[j] != seq.X[j] {
						t.Errorf("%s: x[%d] = %v, sequential %v (not bit-identical)", tag("solution"), j, sol.X[j], seq.X[j])
						break
					}
				}
				switch {
				case (basis == nil) != (seqBasis == nil):
					t.Errorf("%s: basis presence %v, sequential %v", tag("basis"), basis != nil, seqBasis != nil)
				case basis != nil:
					got, err1 := basis.MarshalBinary()
					want, err2 := seqBasis.MarshalBinary()
					if err1 != nil || err2 != nil {
						t.Fatalf("%s: marshal: %v / %v", tag("basis"), err1, err2)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("%s: differs from sequential", tag("basis"))
					}
				}
			}
		}
	}
}

// recordingMonitor captures every flight-recorder snapshot.
type recordingMonitor struct {
	events []Snapshot
}

func (m *recordingMonitor) Observe(s Snapshot) { m.events = append(m.events, s) }

// TestMonitorDeterminism is the no-trajectory-perturbation contract of the
// flight recorder: for every corpus and wide instance, a solve with a
// recording monitor attached at the tightest cadence (every pivot) must
// reproduce the bare solve exactly — same pivot and refactorization counts,
// bit-identical objective and solution vector, byte-identical exported
// basis. The warm-start path is held to the same standard. Run under -race
// this also proves snapshots read no state the pivot loop is writing
// concurrently.
func TestMonitorDeterminism(t *testing.T) {
	probs := parityProblems()
	for name, p := range wideProblems() {
		probs[name] = p
	}
	solve := func(p *Problem, warm *Basis, opts ...Option) (*Solution, *Basis) {
		t.Helper()
		sol, basis, err := NewSolver(opts...).Solve(context.Background(), p, warm)
		if err != nil && sol.Status != Infeasible && sol.Status != Unbounded {
			t.Fatalf("solve: %v", err)
		}
		return sol, basis
	}
	compare := func(tag string, bare, mon *Solution, bareBasis, monBasis *Basis) {
		t.Helper()
		if mon.Status != bare.Status {
			t.Errorf("%s: status %v, bare %v", tag, mon.Status, bare.Status)
			return
		}
		if mon.Iterations != bare.Iterations {
			t.Errorf("%s: pivots %d, bare %d", tag, mon.Iterations, bare.Iterations)
		}
		if mon.Refactorizations != bare.Refactorizations {
			t.Errorf("%s: refactorizations %d, bare %d", tag, mon.Refactorizations, bare.Refactorizations)
		}
		if mon.Objective != bare.Objective {
			t.Errorf("%s: objective %v, bare %v (not bit-identical)", tag, mon.Objective, bare.Objective)
		}
		for j := range bare.X {
			if mon.X[j] != bare.X[j] {
				t.Errorf("%s: x[%d] = %v, bare %v (not bit-identical)", tag, j, mon.X[j], bare.X[j])
				break
			}
		}
		switch {
		case (monBasis == nil) != (bareBasis == nil):
			t.Errorf("%s: basis presence %v, bare %v", tag, monBasis != nil, bareBasis != nil)
		case monBasis != nil:
			got, err1 := monBasis.MarshalBinary()
			want, err2 := bareBasis.MarshalBinary()
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: marshal: %v / %v", tag, err1, err2)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: basis differs from bare solve", tag)
			}
		}
	}
	for name, p := range probs {
		bare, bareBasis := solve(p, nil)
		rec := &recordingMonitor{}
		mon, monBasis := solve(p, nil, WithMonitor(rec), WithMonitorEvery(1))
		compare(name, bare, mon, bareBasis, monBasis)

		// The monitor must have seen a coherent event stream: balanced
		// start/finish pairs and non-decreasing pivot counts per attempt.
		starts, finishes := 0, 0
		pivots := 0
		for _, ev := range rec.events {
			switch ev.Event {
			case "start":
				starts++
				pivots = 0
			case "finish":
				finishes++
			}
			if ev.Pivots < pivots {
				t.Errorf("%s: pivot counter went backwards within an attempt (%d after %d)", name, ev.Pivots, pivots)
			}
			pivots = ev.Pivots
		}
		if starts == 0 || starts != finishes {
			t.Errorf("%s: %d start events vs %d finish events", name, starts, finishes)
		}
		if bare.Status == Optimal && bare.Iterations > 0 && len(rec.events) <= 2 {
			t.Errorf("%s: only %d events for a %d-pivot solve at cadence 1", name, len(rec.events), bare.Iterations)
		}

		// Warm restarts must be equally untouched by an attached monitor.
		if bareBasis == nil {
			continue
		}
		warmBare, warmBareBasis := solve(p, bareBasis)
		warmRec := &recordingMonitor{}
		warmMon, warmMonBasis := solve(p, bareBasis, WithMonitor(warmRec), WithMonitorEvery(1))
		compare(name+"/warm", warmBare, warmMon, warmBareBasis, warmMonBasis)
		if len(warmRec.events) == 0 {
			t.Errorf("%s/warm: monitor saw no events", name)
		}
	}
}

// TestWideProblemsEngageParallelPricing guards the suite above against
// rotting into a sequential-only test: the wide instances must actually
// cross the pool's fan-out threshold with slack, and must take real pivots
// to a real optimum rather than exiting on a degenerate edge case.
func TestWideProblemsEngageParallelPricing(t *testing.T) {
	pool := newWorkPool(8)
	for name, p := range wideProblems() {
		if nv := p.NumVars(); !pool.parallel(nv) {
			t.Errorf("%s: %d variables does not engage the parallel scan (grain %d)", name, nv, parGrain)
		}
		sol, _, err := NewSolver(WithPricingWorkers(2)).Solve(context.Background(), p, nil)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if sol.Status != Optimal || sol.Iterations == 0 {
			t.Errorf("%s: status %v after %d pivots, want a pivoted optimum", name, sol.Status, sol.Iterations)
		}
	}
}
