package lp

// Pricing strategies for the revised simplex. Pricing decides which
// improving column enters the basis; on the stiff policy LPs the choice
// changes pivot counts by integer factors:
//
//   - dantzigPricer: most negative reduced cost. Cheap and effective on
//     small well-scaled instances; on stiff ones (α = 1−10⁻⁶) it chases
//     magnitude rather than geometry and pays for it in degenerate pivots.
//   - devexPricer: Devex reference weights (Harris 1973) — an inexpensive
//     steepest-edge approximation that ranks columns by d²/γ, preferring
//     directions that actually move the iterate. The weight maintenance
//     rides the pivot-row pass the solver already makes to update reduced
//     costs, so the extra cost per pivot is O(1) per touched column.
//   - partialPricer: Dantzig over a rotating window of columns, expanding
//     until an eligible candidate appears. Cuts the O(nTot) scan on very
//     wide problems; the reduced-cost maintenance (the dominant per-pivot
//     cost) is unchanged, so this wins only when pricing itself dominates.
//
// All strategies defer to the caller's Bland-rule override for termination
// on degenerate instances: the Pricer is consulted only on non-Bland
// iterations.

import (
	"repro/internal/mat"
)

// Pricer is the strategy interface for entering-column selection. A Pricer
// is stateful and single-solve. Eligibility is scale-relative, matching the
// solver's optimality test: column j improves iff it is nonbasic
// (pos[j] < 0) and d[j] < −costTol·dScale[j].
type Pricer interface {
	// Reset is called at phase entry with the standard-form column count;
	// weight-based rules restore their reference framework.
	Reset(nTot int)
	// Choose returns the entering column among [0, maxCol), or -1 when no
	// column is eligible (phase optimality).
	Choose(d, dScale mat.Vector, pos []int, maxCol int) int
	// NeedsPivotRow reports whether the rule must observe the pivot row even
	// on pivots that leave the reduced costs unchanged (degenerate entering
	// reduced cost); weight-based rules return true.
	NeedsPivotRow() bool
	// BeginPivot announces a pivot: entering column enter, leaving column
	// leave, pivot element piv = α_enter. It is followed by ObserveAlpha
	// calls streaming the nonzero pivot-row entries α_j = βᵀa_j.
	BeginPivot(enter, leave int, piv float64)
	// ObserveAlpha streams one nonzero pivot-row entry for column j.
	ObserveAlpha(j int, alpha float64)
}

// dantzigPricer picks the most negative scale-relative reduced cost — the
// classic rule, and the exact behavior of the pre-strategy solver.
type dantzigPricer struct {
	pool *workPool
}

func (dantzigPricer) Reset(int)                      {}
func (dantzigPricer) NeedsPivotRow() bool            { return false }
func (dantzigPricer) BeginPivot(_, _ int, _ float64) {}
func (dantzigPricer) ObserveAlpha(int, float64)      {}

// dantzigScan is the sequential kernel over [lo, hi); the comparison is
// strict (dj < bestVal), so the first of equals wins — the property the
// chunked reduction relies on.
func dantzigScan(d, dScale mat.Vector, pos []int, lo, hi int) (int, float64) {
	best, bestVal := -1, 0.0
	for j := lo; j < hi; j++ {
		// dScale ≥ 1, so d[j] ≥ 0 can never pass the relative test — reject
		// before loading dScale (most columns, most iterations).
		if dj := d[j]; dj < 0 && pos[j] < 0 && dj < -costTol*dScale[j] && dj < bestVal {
			bestVal = dj
			best = j
		}
	}
	return best, bestVal
}

func (p dantzigPricer) Choose(d, dScale mat.Vector, pos []int, maxCol int) int {
	if !p.pool.parallel(maxCol) {
		best, _ := dantzigScan(d, dScale, pos, 0, maxCol)
		return best
	}
	pl := p.pool
	pl.run(maxCol, func(ci, lo, hi int) {
		pl.res[ci], pl.resVal[ci] = dantzigScan(d, dScale, pos, lo, hi)
	})
	// Ascending-chunk reduction with the sequential scan's strict compare:
	// ties keep the earlier chunk, i.e. the lower column index.
	best, bestVal := -1, 0.0
	for ci := 0; ci < pl.workers; ci++ {
		if pl.res[ci] >= 0 && pl.resVal[ci] < bestVal {
			best, bestVal = pl.res[ci], pl.resVal[ci]
		}
	}
	return best
}

// devexPricer maintains Devex reference weights γ_j and ranks eligible
// columns by d_j²/γ_j. γ_j approximates ‖B⁻¹a_j‖² relative to the reference
// framework (the nonbasic set at the last Reset), so the rule approximates
// steepest-edge pricing — pick the direction with the best objective change
// per unit step — without any extra FTRANs.
type devexPricer struct {
	gamma []float64
	pool  *workPool
	enter int
	leave int
	piv   float64
	gq    float64
}

func newDevexPricer(pool *workPool) *devexPricer { return &devexPricer{pool: pool} }

func (p *devexPricer) Reset(nTot int) {
	if cap(p.gamma) < nTot {
		p.gamma = make([]float64, nTot)
	}
	p.gamma = p.gamma[:nTot]
	for j := range p.gamma {
		p.gamma[j] = 1
	}
}

func (p *devexPricer) NeedsPivotRow() bool { return true }

// devexScan is the sequential kernel over [lo, hi); strict compare (score >
// bestScore) keeps the first of equals.
func (p *devexPricer) devexScan(d, dScale mat.Vector, pos []int, lo, hi int) (int, float64) {
	best, bestScore := -1, 0.0
	for j := lo; j < hi; j++ {
		dj := d[j]
		// dScale ≥ 1: d[j] ≥ 0 can never pass the relative test, so reject
		// before touching pos/dScale (most columns, most iterations).
		if dj >= 0 || pos[j] >= 0 || dj >= -costTol*dScale[j] {
			continue
		}
		if score := dj * dj / p.gamma[j]; score > bestScore {
			bestScore = score
			best = j
		}
	}
	return best, bestScore
}

func (p *devexPricer) Choose(d, dScale mat.Vector, pos []int, maxCol int) int {
	if !p.pool.parallel(maxCol) {
		best, _ := p.devexScan(d, dScale, pos, 0, maxCol)
		return best
	}
	pl := p.pool
	pl.run(maxCol, func(ci, lo, hi int) {
		pl.res[ci], pl.resVal[ci] = p.devexScan(d, dScale, pos, lo, hi)
	})
	best, bestScore := -1, 0.0
	for ci := 0; ci < pl.workers; ci++ {
		if pl.res[ci] >= 0 && pl.resVal[ci] > bestScore {
			best, bestScore = pl.res[ci], pl.resVal[ci]
		}
	}
	return best
}

func (p *devexPricer) BeginPivot(enter, leave int, piv float64) {
	p.enter, p.leave, p.piv = enter, leave, piv
	p.gq = p.gamma[enter]
	// The leaving column re-enters the nonbasic set with the weight the
	// entering direction implies for it: γ_leave = max(γ_q/α_q², 1).
	if w := p.gq / (piv * piv); w > 1 {
		p.gamma[leave] = w
	} else {
		p.gamma[leave] = 1
	}
}

func (p *devexPricer) ObserveAlpha(j int, alpha float64) {
	if j == p.enter {
		return
	}
	// γ_j ← max(γ_j, (α_j/α_q)²·γ_q): the entering direction's footprint on
	// column j, measured in the reference framework.
	r := alpha / p.piv
	if w := r * r * p.gq; w > p.gamma[j] {
		p.gamma[j] = w
	}
}

// partialPricer scans a rotating window of columns and returns the best
// eligible candidate inside it, widening the window until one appears (a
// full rotation with no candidate is phase optimality). The cursor persists
// across pivots so successive pivots spread their attention over the whole
// column range.
type partialPricer struct {
	cursor int
	pool   *workPool
}

func newPartialPricer(pool *workPool) *partialPricer { return &partialPricer{pool: pool} }

func (p *partialPricer) Reset(int)                      { p.cursor = 0 }
func (p *partialPricer) NeedsPivotRow() bool            { return false }
func (p *partialPricer) BeginPivot(_, _ int, _ float64) {}
func (p *partialPricer) ObserveAlpha(int, float64)      {}

func (p *partialPricer) Choose(d, dScale mat.Vector, pos []int, maxCol int) int {
	if maxCol <= 0 {
		return -1
	}
	window := maxCol / 8
	if window < 128 {
		window = 128
	}
	if p.cursor >= maxCol {
		p.cursor = 0
	}
	scanned := 0
	start := p.cursor
	for scanned < maxCol {
		wlen := window
		if rem := maxCol - scanned; wlen > rem {
			wlen = rem
		}
		best := p.scanWindow(d, dScale, pos, start, wlen, maxCol)
		scanned += wlen
		if best >= 0 {
			p.cursor = (best + 1) % maxCol
			return best
		}
		start += wlen
		if start >= maxCol {
			start -= maxCol
		}
	}
	return -1
}

// scanWindow runs the Dantzig scan over the wrapped window of wlen columns
// starting at start, chunked over the pool when wide enough. Offsets within
// the window — not raw column indices — order the reduction, so ties
// resolve exactly as the sequential wrapped scan does.
func (p *partialPricer) scanWindow(d, dScale mat.Vector, pos []int, start, wlen, maxCol int) int {
	scan := func(lo, hi int) (int, float64) {
		best, bestVal := -1, 0.0
		for o := lo; o < hi; o++ {
			j := start + o
			if j >= maxCol {
				j -= maxCol
			}
			if dj := d[j]; dj < 0 && pos[j] < 0 && dj < -costTol*dScale[j] && dj < bestVal {
				bestVal = dj
				best = j
			}
		}
		return best, bestVal
	}
	if !p.pool.parallel(wlen) {
		best, _ := scan(0, wlen)
		return best
	}
	pl := p.pool
	pl.run(wlen, func(ci, lo, hi int) {
		pl.res[ci], pl.resVal[ci] = scan(lo, hi)
	})
	best, bestVal := -1, 0.0
	for ci := 0; ci < pl.workers; ci++ {
		if pl.res[ci] >= 0 && pl.resVal[ci] < bestVal {
			best, bestVal = pl.res[ci], pl.resVal[ci]
		}
	}
	return best
}

// blandChoose is the Bland's-rule scan (first eligible column) the solver
// falls back to after stalling; shared by every pricing strategy because it
// is what guarantees termination. Chunked, each chunk reports its first
// eligible column and the lowest non-empty chunk wins — chunks are
// contiguous and ascending, so that is the globally lowest index, exactly
// the sequential answer.
func blandChoose(d, dScale mat.Vector, pos []int, maxCol int, pool *workPool) int {
	scan := func(lo, hi int) int {
		for j := lo; j < hi; j++ {
			if dj := d[j]; dj < 0 && pos[j] < 0 && dj < -costTol*dScale[j] {
				return j
			}
		}
		return -1
	}
	if !pool.parallel(maxCol) {
		return scan(0, maxCol)
	}
	pool.run(maxCol, func(ci, lo, hi int) {
		pool.res[ci] = scan(lo, hi)
	})
	for ci := 0; ci < pool.workers; ci++ {
		if pool.res[ci] >= 0 {
			return pool.res[ci]
		}
	}
	return -1
}
