package lp

import (
	"math"
	"math/rand"
	"testing"
)

// sweepProblem builds the family of LPs used by the warm-start tests:
// min 2x + 3y subject to x + y >= 10, x <= cap. The optimum is
// x = min(cap, 10), y = 10 − x when cap <= 10 (objective 30 − cap),
// and x = 10, y = 0 for cap >= 10 (objective 20).
func sweepProblem(cap float64) *Problem {
	p := NewProblem(Minimize, 2)
	p.Obj = []float64{2, 3}
	p.AddConstraint("cover", []float64{1, 1}, GE, 10)
	p.AddConstraint("cap", []float64{1, 0}, LE, cap)
	return p
}

func solveWithBasisOK(t *testing.T, p *Problem, warm *Basis) (*Solution, *Basis) {
	t.Helper()
	sol, basis, err := SolveWithBasis(p, warm)
	if err != nil {
		t.Fatalf("SolveWithBasis: %v (status %v)", err, sol.Status)
	}
	if basis == nil {
		t.Fatalf("optimal solve returned nil basis")
	}
	return sol, basis
}

func TestWarmStartRelaxedBound(t *testing.T) {
	// Relaxing the cap keeps the exported basis primal feasible, so the warm
	// solve should succeed without falling back.
	_, basis := solveWithBasisOK(t, sweepProblem(4), nil)
	sol, _ := solveWithBasisOK(t, sweepProblem(6), basis)
	if !sol.WarmStarted {
		t.Errorf("relaxed-bound solve did not warm-start")
	}
	if math.Abs(sol.Objective-24) > 1e-9 {
		t.Errorf("objective = %g, want 24", sol.Objective)
	}
}

func TestWarmStartTightenedBound(t *testing.T) {
	// Tightening the cap makes the old basis primal infeasible; the dual
	// simplex must restore feasibility (or the solver silently falls back —
	// either way the answer must be the cold one).
	_, basis := solveWithBasisOK(t, sweepProblem(8), nil)
	sol, _ := solveWithBasisOK(t, sweepProblem(3), basis)
	if math.Abs(sol.Objective-27) > 1e-9 {
		t.Errorf("objective = %g, want 27", sol.Objective)
	}
	cold, _ := solveWithBasisOK(t, sweepProblem(3), nil)
	if math.Abs(sol.Objective-cold.Objective) > 1e-9 {
		t.Errorf("warm %g != cold %g", sol.Objective, cold.Objective)
	}
	if math.Abs(sol.X[0]-cold.X[0]) > 1e-9 || math.Abs(sol.X[1]-cold.X[1]) > 1e-9 {
		t.Errorf("warm x %v != cold x %v", sol.X, cold.X)
	}
}

func TestWarmStartIncompatibleBasisFallsBack(t *testing.T) {
	// A basis from a structurally different problem must be rejected and the
	// cold path must still produce the right answer.
	other := NewProblem(Minimize, 3)
	other.Obj = []float64{1, 1, 1}
	other.AddConstraint("c", []float64{1, 1, 1}, GE, 3)
	_, foreign := solveWithBasisOK(t, other, nil)

	sol, _ := solveWithBasisOK(t, sweepProblem(4), foreign)
	if sol.WarmStarted {
		t.Errorf("incompatible basis was accepted as a warm start")
	}
	if math.Abs(sol.Objective-26) > 1e-9 {
		t.Errorf("objective = %g, want 26", sol.Objective)
	}
}

func TestWarmStartInfeasibleProblem(t *testing.T) {
	// Sweeping into an infeasible region must report Infeasible exactly as
	// the cold path does, and must not poison later warm solves.
	p := NewProblem(Minimize, 1)
	p.Obj = []float64{1}
	p.AddConstraint("lo", []float64{1}, GE, 5)
	p.AddConstraint("hi", []float64{1}, LE, 8)
	_, basis := solveWithBasisOK(t, p, nil)

	bad := NewProblem(Minimize, 1)
	bad.Obj = []float64{1}
	bad.AddConstraint("lo", []float64{1}, GE, 5)
	bad.AddConstraint("hi", []float64{1}, LE, 2)
	sol, b, err := SolveWithBasis(bad, basis)
	if err == nil || sol.Status != Infeasible {
		t.Fatalf("status = %v, err = %v; want Infeasible", sol.Status, err)
	}
	if b != nil {
		t.Errorf("infeasible solve returned a basis")
	}
}

// TestWarmStartSweepMatchesCold chases a long randomized sweep of one RHS
// value through warm-started solves and checks every point against a cold
// solve: identical status, objective and solution vector.
func TestWarmStartSweepMatchesCold(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	build := func(bound float64) *Problem {
		// min x + 2y + 4z over a fixed polytope with a moving budget row.
		p := NewProblem(Minimize, 3)
		p.Obj = []float64{1, 2, 4}
		p.AddConstraint("mix", []float64{1, 1, 1}, GE, 6)
		p.AddConstraint("pair", []float64{1, 2, 0}, GE, 4)
		p.AddConstraint("budget", []float64{1, 0, 0}, LE, bound)
		return p
	}
	var warm *Basis
	warmHits := 0
	for i := 0; i < 60; i++ {
		bound := 8 * r.Float64() // swings across feasible shapes
		wSol, wBasis, wErr := SolveWithBasis(build(bound), warm)
		cSol, _, cErr := SolveWithBasis(build(bound), nil)
		if (wErr == nil) != (cErr == nil) || wSol.Status != cSol.Status {
			t.Fatalf("bound %g: warm status %v vs cold %v", bound, wSol.Status, cSol.Status)
		}
		if wErr == nil {
			if math.Abs(wSol.Objective-cSol.Objective) > 1e-9 {
				t.Fatalf("bound %g: warm obj %g vs cold %g", bound, wSol.Objective, cSol.Objective)
			}
			for j := range wSol.X {
				if math.Abs(wSol.X[j]-cSol.X[j]) > 1e-9 {
					t.Fatalf("bound %g: warm x %v vs cold %v", bound, wSol.X, cSol.X)
				}
			}
			if wSol.WarmStarted {
				warmHits++
			}
			warm = wBasis
		}
	}
	if warmHits == 0 {
		t.Errorf("no solve in the sweep actually warm-started")
	}
}
