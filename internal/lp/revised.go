package lp

// Revised simplex: the default solver. Instead of carrying the full m×nTot
// tableau, it keeps only
//
//   - the column-sparse standard-form matrix (immutable),
//   - a Factorizer holding the current m×m basis factorization — dense LU
//     plus product-form etas, or Markowitz sparse LU with Forrest–Tomlin
//     updates (see factorizer.go),
//   - a Pricer choosing entering columns — Dantzig, Devex, or partial
//     pricing (see pricer.go), and
//   - the current basic values.
//
// FTRAN (B⁻¹a, the entering direction) and BTRAN (B⁻ᵀc, the duals) go
// through the factorizer; pricing walks the sparse columns in O(nnz(A)).
// The update file is bounded by refactorEvery, after which the basis is
// refactorized exactly from the original data — the periodic-
// refactorization hygiene that keeps the stiff policy LPs (probabilities
// spanning four orders of magnitude, discounts at 1−10⁻⁶) numerically
// honest. A factorizer may also demand an early refactorization by
// returning an error from Update (a Forrest–Tomlin step gone unstable);
// the loop rebuilds before the next FTRAN/BTRAN.

import (
	"context"
	"math"
	"time"

	"repro/internal/mat"
	"repro/internal/obs"
)

// lpDebug gates per-refactorization tracing (LPDEBUG=1). Lines go through
// the obs structured logger on the solve context, so under the daemon they
// carry the originating request's trace ID.
var lpDebug = obs.DebugOn("lp")

// revised is the solver state for one solve.
type revised struct {
	sf          *stdForm
	ctx         context.Context // checked once per pivot; never nil
	deadline    time.Time       // ctx deadline, checked directly (see cancelled)
	hasDeadline bool
	basis       []int // column index per row
	pos         []int // column -> basis row, or -1
	fact        Factorizer
	pricer      Pricer
	xB          mat.Vector
	bWork       mat.Vector // rhs used for basic-value recomputation (perturbed during a cold solve)
	perturbed   bool       // bWork currently carries the anti-degeneracy perturbation
	d           mat.Vector // reduced costs of the active phase, maintained by pivoting
	dScale      mat.Vector // per-column magnitude scale of d (see recomputeD)

	// Row-major mirror of sf.a, built once per solve: rowCols[i]/rowVals[i]
	// hold the column indices and values of constraint row i. The pivot row
	// αᵀ = βᵀA is scattered over the nonzeros of β through this mirror in
	// O(Σ_{β_i≠0} nnz(row i)) — on hyper-sparse bases (sparse LU BTRANs of a
	// unit vector) that is a small fraction of the O(nnz(A)) a column-wise
	// ColDot sweep pays, and it is never asymptotically worse.
	rowCols [][]int32
	rowVals [][]float64
	acell   []alphaCell // pivot-row workspace, valid for entries in touched
	touched []int32     // columns written by the last pivotRow scatter
	stamp   int32

	// Indexed-sparse-vector scratch for the per-pivot kernel solves (see
	// mat.SpVec): the entering-column FTRAN pair and the unit-vector BTRAN
	// pair. Results are valid until the next call on the same pair.
	ftIn, ftOut *mat.SpVec
	btIn, btOut *mat.SpVec

	// pool chunks the column-parallel pricing scans (see parprice.go); tm
	// accumulates the per-stage wall-clock breakdown reported in
	// Solution.Timings.
	pool *workPool
	tm   Timings

	iterations    int
	refactors     int
	refactorEvery int
	maxPivots     int // 0 = unlimited; exceeding returns BudgetExceeded
	needRefactor  bool
	blandAlways   bool
	conservative  bool
	atScale       bool // m >= autoSparseMin: enable sparse-scale stabilization

	// Flight recorder (see monitor.go). mon == nil — the default — keeps
	// every hook down to a single pointer test.
	mon       Monitor
	monEvery  int        // "progress" pivot cadence
	monLast   int        // iterations at the last progress snapshot
	monStart  time.Time  // attempt start, for Snapshot.Elapsed
	monCost   mat.Vector // active phase's cost vector, for Snapshot.Objective
	monMaxCol int        // columns the active phase prices, for Snapshot.DualInf
	monPhase  string
	monStall  bool // stall event already emitted for the active phase
	monDone   bool // finish event emitted
}

func newRevised(ctx context.Context, sf *stdForm, conservative bool, cfg solverConfig) *revised {
	r := &revised{
		sf:            sf,
		ctx:           ctx,
		basis:         make([]int, sf.m),
		pos:           make([]int, sf.nTot),
		xB:            mat.NewVector(sf.m),
		bWork:         sf.b,
		refactorEvery: 50,
		maxPivots:     cfg.maxPivots,
	}
	r.deadline, r.hasDeadline = ctx.Deadline()
	r.atScale = sf.m >= autoSparseMin
	if cfg.monitor != nil {
		r.mon = cfg.monitor
		r.monEvery = cfg.monitorEvery
		if r.monEvery <= 0 {
			r.monEvery = defaultMonitorEvery
		}
		r.monStart = time.Now()
	}
	copy(r.basis, sf.initBasis)
	if conservative {
		r.refactorEvery = 10
		r.blandAlways = true
		r.conservative = true
	}

	fac := cfg.factorization
	if fac != FactorDense && fac != FactorSparse {
		if sf.m >= autoSparseMin {
			fac = FactorSparse
		} else {
			fac = FactorDense
		}
	}
	if fac == FactorSparse {
		r.fact = newSparseFactorizer(conservative)
		// Forrest–Tomlin updates leave U genuinely triangular, so the
		// update file degrades far more slowly than product-form etas; a
		// longer interval amortizes the Markowitz refactorization, which
		// dominates wall clock on 10⁴-row bases.
		if !conservative {
			r.refactorEvery = 120
			// The Markowitz refactorization grows superlinearly with m (the
			// elimination's merge traffic dominated solve-k6's wall clock at
			// cadence 120: ~84% of CPU; stretching it to 960 cut the 12k-pivot probe 3.0×), while a Forrest–Tomlin eta costs
			// O(its nnz) per solve — so on large bases a much longer chain is
			// the right trade. The update's relative stability checks still
			// force an early refactorization whenever the chain degrades, so
			// stretching the schedule only spends etas that are numerically
			// earning their keep. Small bases keep the short cadence: their
			// refactorization is cheap and the shorter chain is tighter
			// hygiene on stiff instances.
			if sf.m >= 4096 {
				r.refactorEvery = 960
			}
		}
	} else {
		r.fact = newDenseFactorizer()
	}
	if ca, ok := r.fact.(ctxAware); ok {
		ca.setContext(ctx)
	}

	r.pool = newWorkPool(resolveWorkers(cfg.pricingWorkers))

	pricing := cfg.pricing
	if pricing == PriceAuto {
		if sf.m >= autoSparseMin {
			pricing = PriceDevex
		} else {
			pricing = PriceDantzig
		}
	}
	switch pricing {
	case PriceDevex:
		r.pricer = newDevexPricer(r.pool)
	case PricePartial:
		r.pricer = newPartialPricer(r.pool)
	default:
		r.pricer = dantzigPricer{pool: r.pool}
	}

	r.rowCols = make([][]int32, sf.m)
	r.rowVals = make([][]float64, sf.m)
	rowNNZ := make([]int, sf.m)
	for j := 0; j < sf.nTot; j++ {
		rows, _ := sf.a.ColNZ(j)
		for _, i := range rows {
			rowNNZ[i]++
		}
	}
	for i, n := range rowNNZ {
		r.rowCols[i] = make([]int32, 0, n)
		r.rowVals[i] = make([]float64, 0, n)
	}
	for j := 0; j < sf.nTot; j++ {
		rows, vals := sf.a.ColNZ(j)
		for k, i := range rows {
			r.rowCols[i] = append(r.rowCols[i], int32(j))
			r.rowVals[i] = append(r.rowVals[i], vals[k])
		}
	}
	r.acell = make([]alphaCell, sf.nTot)
	r.touched = make([]int32, 0, sf.nTot)
	r.ftIn, r.ftOut = mat.NewSpVec(sf.m), mat.NewSpVec(sf.m)
	r.btIn, r.btOut = mat.NewSpVec(sf.m), mat.NewSpVec(sf.m)

	r.rebuildPos()
	return r
}

// alphaCell fuses a pivot-row workspace value with its scatter stamp so each
// scatter access touches one cache line instead of two — the scatter is
// memory-latency bound (random column indices) and runs once per pivot over
// Σ_{β_i≠0} nnz(row i) entries.
type alphaCell struct {
	v    float64
	mark int32
	_    int32
}

// pivotRow computes αᵀ = βᵀA by scattering each nonzero of β through the
// row-major mirror. The results live in r.acell at the indices returned (in
// no particular order) until the next call; entries that cancelled to zero
// may be included. β's sorted pattern keeps the scatter order — and hence
// every accumulated sum — identical to a dense ascending row sweep.
func (r *revised) pivotRow(beta *mat.SpVec) []int32 {
	r.stamp++
	r.touched = r.touched[:0]
	if beta.Dense {
		for i, bv := range beta.Val {
			if bv == 0 {
				continue
			}
			r.pivotRowScatter(i, bv)
		}
		return r.touched
	}
	for _, i := range beta.Ind {
		bv := beta.Val[i]
		if bv == 0 {
			continue
		}
		r.pivotRowScatter(i, bv)
	}
	return r.touched
}

// pivotRowScatter accumulates row i of the mirror, scaled by bv, into the
// alpha workspace.
func (r *revised) pivotRowScatter(i int, bv float64) {
	cols := r.rowCols[i]
	vals := r.rowVals[i]
	acell := r.acell
	stamp := r.stamp
	for k, j := range cols {
		c := &acell[j]
		if c.mark != stamp {
			c.mark = stamp
			c.v = 0
			r.touched = append(r.touched, j)
		}
		c.v += bv * vals[k]
	}
}

func (r *revised) rebuildPos() {
	for j := range r.pos {
		r.pos[j] = -1
	}
	for i, b := range r.basis {
		r.pos[b] = i
	}
}

// refactor rebuilds the basis factorization from the sparse columns and
// recomputes exact basic values. It returns false when the basis matrix is
// singular.
func (r *revised) refactor() bool {
	r.refactors++
	t0 := time.Now()
	defer func() { r.tm.Factor += time.Since(t0) }()
	if err := r.fact.Refactor(r.sf.a, r.basis); err != nil {
		if lpDebug {
			obs.Debugf(r.ctx, "lp", "refactor %d iter %d FAILED: %v", r.refactors, r.iterations, err)
		}
		return false
	}
	if lpDebug {
		obs.Debugf(r.ctx, "lp", "refactor %d iter %d nnz %d took %v", r.refactors, r.iterations, r.fact.NNZ(), time.Since(t0))
	}
	r.needRefactor = false
	xb := r.fact.Ftran(r.bWork.Clone())
	for i, v := range xb {
		if v < 0 && v > -1e-7 {
			xb[i] = 0
		}
	}
	r.xB = xb
	r.emit("refactor")
	return true
}

// ftran solves B x = v through the factorization. v is consumed.
func (r *revised) ftran(v mat.Vector) mat.Vector {
	return r.fact.Ftran(v)
}

// ftranCol returns the entering direction B⁻¹ a_j for standard-form column
// j as an indexed sparse vector: sorted pattern, or marked Dense past the
// kernel's hyper-sparsity threshold. The result lives in per-solve scratch,
// valid until the next ftranCol call.
func (r *revised) ftranCol(j int) *mat.SpVec {
	t0 := time.Now()
	r.ftIn.Reset()
	rows, vals := r.sf.a.ColNZ(j)
	for k, i := range rows {
		if vals[k] != 0 {
			r.ftIn.Set(i, vals[k])
		}
	}
	r.fact.FtranSp(r.ftIn, r.ftOut)
	r.tm.Ftran += time.Since(t0)
	return r.ftOut
}

// btran solves Bᵀ y = c through the factorization. c is not modified.
func (r *revised) btran(c mat.Vector) mat.Vector {
	return r.fact.Btran(c)
}

// btranUnit returns the pivot-row multiplier β = B⁻ᵀe_row as an indexed
// sparse vector in per-solve scratch, valid until the next btranUnit call.
func (r *revised) btranUnit(row int) *mat.SpVec {
	t0 := time.Now()
	r.btIn.Reset()
	r.btIn.Set(row, 1)
	r.fact.BtranSp(r.btIn, r.btOut)
	r.tm.Btran += time.Since(t0)
	return r.btOut
}

// duals returns y with Bᵀ y = c_B for the given cost vector.
func (r *revised) duals(cost mat.Vector) mat.Vector {
	t0 := time.Now()
	cb := mat.NewVector(r.sf.m)
	for i, b := range r.basis {
		cb[i] = cost[b]
	}
	y := r.btran(cb)
	r.tm.Btran += time.Since(t0)
	return y
}

// recomputeD refreshes the reduced-cost vector exactly from the duals of
// the current basis: d_j = c_j − yᵀa_j, with basic entries pinned to zero.
// Called at phase entry and after every refactorization; between those
// points d is maintained by the pivot-row update, which keeps it consistent
// with the basis the way a tableau's objective row is — the entering
// column's reduced cost becomes exactly zero and the leaving column's
// exactly −d_enter/pivot, so roundoff can never invite a column straight
// back in (the failure mode that stalls recompute-from-duals pricing on
// stiff instances whose duals reach 1/(1−α)).
//
// Alongside d it records each column's magnitude scale
//
//	dScale_j = 1 + |c_j| + Σ_i |y_i·a_ij|,
//
// the cancellation scale of the subtraction that produced d_j. Optimality
// tests compare d_j against −costTol·dScale_j rather than the absolute
// −costTol: policy LPs at discounts like α = 1−10⁻⁶ have duals of order
// 1/(1−α), so a computed d_j of −10⁻⁸ on a column whose terms are ~10⁶ is
// pure roundoff — an absolute test keeps "improving" on such columns
// through degenerate pivots and stalls into the iteration limit, while the
// relative test recognizes the optimum. On well-scaled problems dScale ≈ 1
// and the behavior is unchanged. The scales refresh with every recompute
// (at most refactorEvery pivots stale, like d itself).
func (r *revised) recomputeD(cost mat.Vector) {
	y := r.duals(cost)
	t0 := time.Now()
	if r.d == nil {
		r.d = mat.NewVector(r.sf.nTot)
		r.dScale = mat.NewVector(r.sf.nTot)
	}
	// Column-parallel: each j reads shared y and writes only d[j]/dScale[j],
	// with per-column accumulation untouched — bit-identical at any worker
	// count (see parprice.go).
	span := func(lo, hi int) {
		for j := lo; j < hi; j++ {
			if r.pos[j] >= 0 {
				r.d[j] = 0
				r.dScale[j] = 1
				continue
			}
			rows, vals := r.sf.a.ColNZ(j)
			dot, abs := 0.0, 0.0
			for k, i := range rows {
				t := vals[k] * y[i]
				dot += t
				abs += math.Abs(t)
			}
			r.d[j] = cost[j] - dot
			r.dScale[j] = 1 + math.Abs(cost[j]) + abs
		}
	}
	if r.pool.parallel(r.sf.nTot) {
		r.pool.run(r.sf.nTot, func(_, lo, hi int) { span(lo, hi) })
	} else {
		span(0, r.sf.nTot)
	}
	r.tm.Price += time.Since(t0)
}

// updateD applies the tableau objective-row update after a pivot at (row,
// col) with pivot element piv = α_col: d ← d − (d_col/piv)·α, where
// α_j = βᵀa_j is the pivot row and β = B⁻ᵀe_row in the pre-pivot basis.
// The entering column lands exactly at zero. The same pass streams the
// pivot row into the pricer (Devex weight maintenance rides along at O(1)
// per touched column); weight-based pricers force the pass even on
// degenerate pivots where d itself is unchanged.
func (r *revised) updateD(beta *mat.SpVec, row, col int, piv float64) {
	t0 := time.Now()
	r.pricer.BeginPivot(col, r.basis[row], piv)
	factor := r.d[col] / piv
	if factor != 0 || r.pricer.NeedsPivotRow() {
		touched := r.pivotRow(beta) // sequential: FP accumulation order
		// The consumer is column-parallel: every touched j updates only
		// d[j] (one multiply, no re-association) and the pricer's γ_j —
		// write-disjoint, so the result is worker-count-invariant.
		var apply func(lo, hi int)
		if dv, ok := r.pricer.(*devexPricer); ok {
			// Devex weight maintenance inlined: at thousands of touched
			// columns per pivot the per-column interface call is measurable.
			// The arithmetic is exactly ObserveAlpha's; d[col] is overwritten
			// with zero below, so skipping the entering column entirely is
			// equivalent.
			gamma, gq := dv.gamma, dv.gq
			apply = func(lo, hi int) {
				for _, j := range touched[lo:hi] {
					a := r.acell[j].v
					if a == 0 || int(j) == col {
						continue
					}
					if factor != 0 {
						r.d[j] -= factor * a
					}
					t := a / piv
					if w := t * t * gq; w > gamma[j] {
						gamma[j] = w
					}
				}
			}
		} else {
			apply = func(lo, hi int) {
				for _, j := range touched[lo:hi] {
					if a := r.acell[j].v; a != 0 {
						if factor != 0 {
							r.d[j] -= factor * a
						}
						r.pricer.ObserveAlpha(int(j), a)
					}
				}
			}
		}
		if r.pool.parallel(len(touched)) {
			r.pool.run(len(touched), func(_, lo, hi int) { apply(lo, hi) })
		} else {
			apply(0, len(touched))
		}
	}
	r.d[col] = 0
	r.tm.Price += time.Since(t0)
}

// price picks the entering column among [0, maxCol) from the maintained
// reduced costs: by the configured pricing strategy normally, or first
// eligible under Bland's rule. A column counts as improving only when its
// reduced cost clears the scale-relative tolerance −costTol·dScale (see
// recomputeD). Returns -1 at optimality.
func (r *revised) price(maxCol int, bland bool) int {
	t0 := time.Now()
	var col int
	if bland {
		col = blandChoose(r.d, r.dScale, r.pos, maxCol, r.pool)
	} else {
		col = r.pricer.Choose(r.d, r.dScale, r.pos, maxCol)
	}
	r.tm.Price += time.Since(t0)
	return col
}

// ratioTest picks the leaving row for entering direction w. Ratio
// comparisons use a relative tolerance; among (near-)ties the largest pivot
// element wins for stability, except under Bland's rule where the smallest
// basis index wins to guarantee termination. Returns -1 when the column is
// unbounded.
func (r *revised) ratioTest(w *mat.SpVec, bland bool) int {
	// An entry of w that is tiny relative to ‖w‖∞ is indistinguishable from
	// FTRAN roundoff once the basis grows ill-conditioned; pivoting on one
	// steers the basis toward exact singularity. At sparse scale pivots must
	// first clear a scale-relative floor; the absolute tolerance alone is
	// retried only when no entry does (a uniformly small but genuine
	// direction). Small problems keep the seed's absolute test so their
	// degenerate tie-breaking — and hence vertex selection — is unchanged.
	minPiv := pivotTol
	if r.atScale {
		wmax := 0.0
		if w.Dense {
			for _, a := range w.Val {
				if a > wmax {
					wmax = a
				} else if -a > wmax {
					wmax = -a
				}
			}
		} else {
			for _, i := range w.Ind {
				if a := w.Val[i]; a > wmax {
					wmax = a
				} else if -a > wmax {
					wmax = -a
				}
			}
		}
		if rel := pivotRelTol * wmax; rel > minPiv {
			minPiv = rel
		}
	}
	if row := r.ratioTestTol(w, bland, minPiv); row >= 0 {
		return row
	}
	if minPiv > pivotTol {
		return r.ratioTestTol(w, bland, pivotTol)
	}
	return -1
}

// ratioTestTol scans the direction's support in ascending row order — the
// dense sweep's order, so near-tie resolution (and hence the leaving row)
// does not depend on which kernel path produced w: entries the sparse path
// skips are exact zeros, which the dense sweep rejects at the minPiv test.
func (r *revised) ratioTestTol(w *mat.SpVec, bland bool, minPiv float64) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	bestPivot := 0.0
	consider := func(i int, a float64) {
		rhs := r.xB[i]
		if rhs < 0 {
			rhs = 0 // tiny negative from roundoff: treat as degenerate
		}
		ratio := rhs / a
		tol := 1e-9 * (1 + math.Abs(bestRatio))
		switch {
		case ratio < bestRatio-tol:
			bestRow, bestRatio, bestPivot = i, ratio, a
		case ratio <= bestRatio+tol:
			if bland {
				if bestRow == -1 || r.basis[i] < r.basis[bestRow] {
					bestRow, bestPivot = i, a
					if ratio < bestRatio {
						bestRatio = ratio
					}
				}
			} else if a > bestPivot {
				bestRow, bestPivot = i, a
				if ratio < bestRatio {
					bestRatio = ratio
				}
			}
		}
	}
	if w.Dense {
		for i, a := range w.Val {
			if a > minPiv {
				consider(i, a)
			}
		}
	} else {
		for _, i := range w.Ind {
			if a := w.Val[i]; a > minPiv {
				consider(i, a)
			}
		}
	}
	return bestRow
}

// pivotUpdate applies the basis change (row, col) with direction w = B⁻¹a_col,
// updating basic values and handing the column replacement to the
// factorizer. w is retained; callers must not reuse it. If the factorizer
// cannot absorb the update, the factorization is flagged for an immediate
// rebuild (the basis bookkeeping is already correct — only FTRAN/BTRAN must
// wait for the refactorization).
func (r *revised) pivotUpdate(row, col int, w *mat.SpVec) {
	t0 := time.Now()
	defer func() { r.tm.Update += time.Since(t0) }()
	theta := r.xB[row] / w.Val[row]
	if w.Dense {
		for i := range r.xB {
			r.xB[i] -= theta * w.Val[i]
			if r.xB[i] < 0 && r.xB[i] > -zeroTol {
				r.xB[i] = 0
			}
		}
	} else {
		// Rows outside the direction's support keep their basic value
		// exactly (the dense sweep subtracts θ·0 there, and its clamp never
		// fires on an untouched value: every write path already clamps
		// (−zeroTol, 0) to zero, so no stored value lies in that band).
		for _, i := range w.Ind {
			r.xB[i] -= theta * w.Val[i]
			if r.xB[i] < 0 && r.xB[i] > -zeroTol {
				r.xB[i] = 0
			}
		}
	}
	r.xB[row] = theta
	r.pos[r.basis[row]] = -1
	r.basis[row] = col
	r.pos[col] = row
	rows, vals := r.sf.a.ColNZ(col)
	if err := r.fact.Update(row, w.Val, rows, vals); err != nil {
		if lpDebug {
			obs.Debugf(r.ctx, "lp", "update unstable iter %d pivot %g theta %g", r.iterations, w.Val[row], theta)
		}
		r.needRefactor = true
	}
	r.iterations++
}

// cancelled reports whether the solve's context has been cancelled or its
// deadline has passed. A pivot costs at least O(nnz(A)), so the
// per-iteration check is noise by comparison and gives cancellation a
// one-pivot response time. The deadline is compared directly rather than
// through Err alone: a deadline context is cancelled by a runtime timer
// goroutine, and on a busy single-CPU box that goroutine may not be
// scheduled while the pivot loop runs — polling the clock makes expiry
// observable regardless.
func (r *revised) cancelled() bool {
	if r.ctx.Err() != nil {
		return true
	}
	return r.hasDeadline && time.Now().After(r.deadline)
}

// budgetExceeded reports whether the configured pivot budget (WithMaxPivots)
// has been consumed. The budget counts pivots across all phases of one
// solve attempt.
func (r *revised) budgetExceeded() bool {
	return r.maxPivots > 0 && r.iterations >= r.maxPivots
}

// runPhase iterates to optimality, unboundedness, or a stopping condition
// (iteration cap, pivot budget, cancellation), refactorizing whenever the
// update file reaches refactorEvery or the factorizer demands it.
func (r *revised) runPhase(cost mat.Vector, maxCol int) Status {
	stallAfter := 200 + 20*(r.sf.m+r.sf.nTot)
	limit := 1000 + 400*(r.sf.m+r.sf.nTot)
	r.recomputeD(cost)
	r.pricer.Reset(r.sf.nTot)
	for iter := 0; ; iter++ {
		if iter > limit {
			return IterationLimit
		}
		if r.budgetExceeded() {
			return BudgetExceeded
		}
		if r.cancelled() {
			return Cancelled
		}
		if r.needRefactor || r.fact.Updates() >= r.refactorEvery {
			if !r.refactor() {
				return Numerical
			}
			r.recomputeD(cost)
		}
		r.emitProgress()
		bland := r.blandAlways || iter > stallAfter
		if bland && !r.blandAlways && !r.monStall && r.mon != nil {
			r.monStall = true
			r.emit("stall")
		}
		col := r.price(maxCol, bland)
		if col < 0 {
			return Optimal
		}
		w := r.ftranCol(col)
		row := r.ratioTest(w, bland)
		if row < 0 {
			return Unbounded
		}
		beta := r.btranUnit(row) // pivot row in the pre-pivot basis
		r.updateD(beta, row, col, w.Val[row])
		r.pivotUpdate(row, col, w)
	}
}

// driveOutArtificials pivots degenerate basic artificials out of the basis
// after phase 1. If an artificial's entire row is zero over real columns the
// constraint is redundant; the artificial stays basic at value zero,
// harmless because phase 2 never prices artificial columns.
func (r *revised) driveOutArtificials() {
	real := r.sf.nv + r.sf.ns
	for i := 0; i < r.sf.m; i++ {
		if r.needRefactor && !r.refactor() {
			return // phase 2 refactorizes again and reports Numerical
		}
		if r.basis[i] < real {
			continue
		}
		beta := r.btranUnit(i)
		for j := 0; j < real; j++ {
			if r.pos[j] >= 0 {
				continue
			}
			if math.Abs(r.sf.a.ColDot(j, beta.Val)) <= pivotTol {
				continue
			}
			w := r.ftranCol(j)
			if math.Abs(w.Val[i]) > pivotTol {
				r.pivotUpdate(i, j, w)
				break
			}
		}
	}
}

// perturb replaces the working rhs with a deterministically jittered copy:
// b̃_i = b_i + ε·(1+|b_i|)·u_i with u_i ∈ [0.5, 1.5). Policy LPs are massively
// primal degenerate — b is zero on almost every row, so most vertices have
// basic values pinned at zero and the ratio test ties everywhere. The simplex
// then wanders the optimal face in zero-length steps for tens of thousands of
// iterations, and on stiff instances (α = 1−10⁻⁵) the wandering assembles
// ever worse-conditioned bases until refactorization finds them singular.
// The jitter makes the perturbed problem nondegenerate (ties break, steps
// have positive length), and phase 2 restores the exact rhs once optimal,
// repairing the small primal infeasibility with the existing dual-simplex
// loop.
func (r *revised) perturb() {
	const eps = 1e-9
	pb := r.sf.b.Clone()
	seed := uint64(0x9e3779b97f4a7c15)
	for i := range pb {
		seed = seed*6364136223846793005 + 1442695040888963407
		u := 0.5 + float64(seed>>11)/float64(1<<53)
		pb[i] += eps * (1 + math.Abs(pb[i])) * u
	}
	r.bWork = pb
	r.perturbed = true
	r.emit("perturb")
}

// restoreB undoes perturb: subsequent refactorizations recompute basic
// values from the exact rhs.
func (r *revised) restoreB() {
	r.bWork = r.sf.b
	r.perturbed = false
}

// solve runs both phases and extracts the solution. Every exit records the
// work counters, so even aborted solves (cancelled, iteration-limited,
// numerical, budget-exhausted) report the pivots and refactorizations they
// actually paid.
func (r *revised) solve() (sol *Solution) {
	sol = &Solution{}
	defer r.finishMon()
	defer func() {
		sol.Iterations = r.iterations
		sol.Refactorizations = r.refactors
		sol.FactorNNZ = r.fact.NNZ()
		sol.Timings = r.tm
	}()
	r.emit("start")
	if !r.conservative && r.atScale {
		// Perturbation is an anti-degeneracy device for sparse-scale bases,
		// where zero-length pivots can wander for tens of thousands of
		// iterations; small problems keep the exact rhs so cold and warm
		// solves land on identical vertices (the sweep determinism
		// contract). The conservative retry also stays on the exact rhs: if
		// the perturbed path failed numerically, the retry must not inherit
		// its strategy.
		r.perturb()
	}
	if !r.refactor() {
		sol.Status = Numerical
		return sol
	}
	if r.sf.na > 0 {
		r.setMonPhase("phase1", r.sf.cost1, r.sf.nTot)
		for {
			st := r.runPhase(r.sf.cost1, r.sf.nTot)
			if lpDebug {
				obs.Debugf(r.ctx, "lp", "phase1 status %v at iter %d (perturbed %v)", st, r.iterations, r.perturbed)
			}
			if st != Optimal {
				// Phase 1 is never unbounded in exact arithmetic; treat it as
				// numerical trouble.
				sol.Status = Numerical
				if st == IterationLimit || st == Cancelled || st == BudgetExceeded {
					sol.Status = st
				}
				return sol
			}
			if !r.refactor() { // exact phase-1 values
				sol.Status = Numerical
				return sol
			}
			phase1 := 0.0
			for i, b := range r.basis {
				if b >= r.sf.nv+r.sf.ns {
					phase1 += r.xB[i]
				}
			}
			if phase1 <= 1e-7*(1+r.sf.b.Sum()) {
				break
			}
			if !r.perturbed {
				sol.Status = Infeasible
				return sol
			}
			// The perturbed problem may be infeasible even though the true one
			// is (an equality row can reject the jitter). Restore the exact
			// rhs and re-run phase 1 from the current basis before concluding
			// anything about the problem itself.
			r.restoreB()
			if !r.refactor() {
				sol.Status = Numerical
				return sol
			}
		}
		r.driveOutArtificials()
	}
	return r.phase2()
}

// phase2 optimizes the true objective from the current (primal feasible)
// basis and extracts the solution. It is the shared tail of the cold
// two-phase solve and of warm starts that enter with a reusable basis.
//
// On stiff instances (discounts at 1−10⁻⁶ and beyond) the degenerate-value
// clamps in the pivot loop can let the basis drift primal infeasible
// between refactorizations while the reduced costs remain optimal; the
// final exact refactorization then exposes basic values that are genuinely
// negative. Such a basis is still dual feasible — exactly the dual-simplex
// entry condition — so instead of giving up as Numerical, phase2 repairs
// primal feasibility with dual pivots and re-optimizes, a bounded number of
// times.
func (r *revised) phase2() *Solution {
	sol := &Solution{}
	sol.Status = Numerical
	for attempt := 0; attempt < 6; attempt++ {
		r.setMonPhase("phase2", r.sf.cost2, r.sf.nv+r.sf.ns)
		if !r.refactor() {
			break
		}
		st := r.runPhase(r.sf.cost2, r.sf.nv+r.sf.ns)
		if lpDebug {
			obs.Debugf(r.ctx, "lp", "phase2 attempt %d status %v at iter %d (perturbed %v)", attempt, st, r.iterations, r.perturbed)
		}
		if st != Optimal {
			sol.Status = st
			break
		}
		if !r.refactor() { // final exact recomputation from the basis
			break
		}
		if r.perturbed {
			// Optimal for the jittered rhs (see perturb). Swap the exact rhs
			// back in and go around again: the reduced costs are unchanged (d
			// does not depend on b), so the re-run terminates immediately and
			// any primal infeasibility the swap exposes lands in the
			// dual-simplex repair below.
			r.restoreB()
			continue
		}
		worst := 0.0
		for _, v := range r.xB {
			if v < worst {
				worst = v
			}
		}
		if worst >= -1e-7 {
			sol.Status = Optimal
			x := make([]float64, r.sf.nv)
			for i, b := range r.basis {
				if b < r.sf.nv {
					v := r.xB[i]
					if v < 0 {
						v = 0
					}
					x[b] = v
				}
			}
			sol.X = x
			break
		}
		if !r.dualFeasible() || !r.dualSimplex() {
			if r.budgetExceeded() {
				sol.Status = BudgetExceeded
			} else if r.cancelled() {
				sol.Status = Cancelled
			}
			break
		}
	}
	sol.Iterations = r.iterations
	sol.Refactorizations = r.refactors
	sol.FactorNNZ = r.fact.NNZ()
	sol.Timings = r.tm
	return sol
}

// primalFeasible reports whether every basic value is nonnegative (up to
// roundoff slack).
func (r *revised) primalFeasible() bool {
	for _, v := range r.xB {
		if v < -1e-9 {
			return false
		}
	}
	return true
}

// dualFeasible reports whether every priced (non-artificial) column has a
// nonnegative phase-2 reduced cost, the precondition for dual simplex.
func (r *revised) dualFeasible() bool {
	r.recomputeD(r.sf.cost2)
	for j := 0; j < r.sf.nv+r.sf.ns; j++ {
		if r.pos[j] < 0 && r.d[j] < -costTol*r.dScale[j] {
			return false
		}
	}
	return true
}

// dualSimplex restores primal feasibility of a dual-feasible basis: the row
// with the most negative basic value leaves, and the entering column is
// chosen by the dual ratio test over that row's strictly negative entries
// (computed as βᵀa_j with β = B⁻ᵀe_row; ties broken toward the largest
// pivot magnitude for stability). It returns false when no entering column
// exists (the new problem is primal infeasible from this basis), the pivot
// limit, pivot budget, or cancellation stops it, or the basis goes
// numerically bad; callers then fall back to a cold solve rather than
// trusting a half-converged state (budget and cancellation are surfaced by
// re-checking budgetExceeded/cancelled).
func (r *revised) dualSimplex() bool {
	real := r.sf.nv + r.sf.ns
	limit := 1000 + 400*(r.sf.m+r.sf.nTot)
	r.setMonPhase("dual", r.sf.cost2, real)
	r.recomputeD(r.sf.cost2)
	for iter := 0; ; iter++ {
		if iter > limit || r.cancelled() || r.budgetExceeded() {
			return false
		}
		if r.needRefactor || r.fact.Updates() >= r.refactorEvery {
			if !r.refactor() {
				return false
			}
			r.recomputeD(r.sf.cost2)
		}
		r.emitProgress()
		row, worst := -1, -1e-9
		for i, v := range r.xB {
			if v < worst {
				worst, row = v, i
			}
		}
		if row < 0 {
			return true
		}
		beta := r.btranUnit(row)
		tp := time.Now()
		cand := r.pivotRow(beta)
		minPiv := pivotTol
		if r.atScale {
			amax := 0.0
			for _, j32 := range cand {
				if a := math.Abs(r.acell[j32].v); a > amax {
					amax = a
				}
			}
			if rel := pivotRelTol * amax; rel > minPiv {
				minPiv = rel
			}
		}
		col, bestRatio, bestMag := -1, math.Inf(1), 0.0
		for _, j32 := range cand {
			j := int(j32)
			if j >= real || r.pos[j] >= 0 {
				continue
			}
			a := r.acell[j].v
			if a >= -minPiv {
				continue
			}
			rc := r.d[j]
			if rc < 0 {
				rc = 0 // roundoff on a nonbasic column: treat as degenerate
			}
			ratio := rc / -a
			tol := 1e-9 * (1 + math.Abs(bestRatio))
			switch {
			case ratio < bestRatio-tol:
				col, bestRatio, bestMag = j, ratio, -a
			case ratio <= bestRatio+tol && -a > bestMag:
				col, bestMag = j, -a
				if ratio < bestRatio {
					bestRatio = ratio
				}
			}
		}
		r.tm.Price += time.Since(tp)
		if col < 0 {
			return false
		}
		w := r.ftranCol(col)
		if math.Abs(w.Val[row]) <= pivotTol {
			return false // direction disagrees with the priced row: bail out
		}
		r.updateD(beta, row, col, w.Val[row])
		r.pivotUpdate(row, col, w)
	}
}

// solveRevised runs one cold revised-simplex solve under the given solver
// configuration.
func solveRevised(ctx context.Context, p *Problem, conservative bool, cfg solverConfig) (*Solution, *revised) {
	sf, preStatus := newStdForm(p)
	if preStatus != Optimal {
		return &Solution{Status: preStatus}, nil
	}
	r := newRevised(ctx, sf, conservative, cfg)
	sol := r.solve()
	if sol.Status != Optimal {
		return sol, nil
	}
	if !sf.verify(sol.X) {
		sol.Status = Numerical
	}
	return sol, r
}
