package lp

// Revised simplex: the default solver. Instead of carrying the full m×nTot
// tableau, it keeps only
//
//   - the column-sparse standard-form matrix (immutable),
//   - a dense LU factorization of the current m×m basis matrix
//     (mat.Factor/mat.LU, the same kernel the Markov solvers use),
//   - a short product-form eta file recording the pivots since the last
//     refactorization, and
//   - the current basic values.
//
// FTRAN (B⁻¹a, the entering direction) and BTRAN (B⁻ᵀc, the duals) run one
// dense triangular solve pair plus O(m) per eta; pricing walks the sparse
// columns in O(nnz(A)). The eta file is bounded by refactorEvery, after
// which the basis is refactorized exactly from the original data — the same
// periodic-refactorization hygiene the dense tableau used, which is what
// keeps the stiff policy LPs (probabilities spanning four orders of
// magnitude, discounts at 1−10⁻⁶) numerically honest.

import (
	"context"
	"math"
	"time"

	"repro/internal/mat"
)

// eta is one product-form basis update: the basis column at row r was
// replaced, and w = B⁻¹a_enter (in the pre-pivot basis) with pivot w[r].
type eta struct {
	r int
	w mat.Vector
}

// revised is the solver state for one solve.
type revised struct {
	sf          *stdForm
	ctx         context.Context // checked once per pivot; never nil
	deadline    time.Time       // ctx deadline, checked directly (see cancelled)
	hasDeadline bool
	basis       []int // column index per row
	pos         []int // column -> basis row, or -1
	lu          *mat.LU
	etas        []eta
	xB          mat.Vector
	d           mat.Vector // reduced costs of the active phase, maintained by pivoting
	dScale      mat.Vector // per-column magnitude scale of d (see recomputeD)

	iterations    int
	refactors     int
	refactorEvery int
	blandAlways   bool
}

func newRevised(ctx context.Context, sf *stdForm, conservative bool) *revised {
	r := &revised{
		sf:            sf,
		ctx:           ctx,
		basis:         make([]int, sf.m),
		pos:           make([]int, sf.nTot),
		xB:            mat.NewVector(sf.m),
		refactorEvery: 50,
	}
	r.deadline, r.hasDeadline = ctx.Deadline()
	copy(r.basis, sf.initBasis)
	if conservative {
		r.refactorEvery = 10
		r.blandAlways = true
	}
	r.rebuildPos()
	return r
}

func (r *revised) rebuildPos() {
	for j := range r.pos {
		r.pos[j] = -1
	}
	for i, b := range r.basis {
		r.pos[b] = i
	}
}

// refactor rebuilds the dense LU of the basis matrix from the sparse
// columns, clears the eta file, and recomputes exact basic values. It
// returns false when the basis matrix is singular.
func (r *revised) refactor() bool {
	r.refactors++
	m := r.sf.m
	bm := mat.NewMatrix(m, m)
	for i, bcol := range r.basis {
		rows, vals := r.sf.a.ColNZ(bcol)
		for k, row := range rows {
			bm.Set(row, i, vals[k])
		}
	}
	f, err := mat.Factor(bm)
	if err != nil {
		return false
	}
	r.lu = f
	r.etas = r.etas[:0]
	xb := f.Solve(r.sf.b)
	for i, v := range xb {
		if v < 0 && v > -1e-7 {
			xb[i] = 0
		}
	}
	r.xB = xb
	return true
}

// ftran solves B x = v through the factorization and the eta file. v is
// consumed (the result reuses its storage only via the LU solve's output).
func (r *revised) ftran(v mat.Vector) mat.Vector {
	x := r.lu.Solve(v)
	for e := range r.etas {
		et := &r.etas[e]
		piv := x[et.r] / et.w[et.r]
		if piv != 0 {
			for i, wi := range et.w {
				x[i] -= piv * wi
			}
		}
		x[et.r] = piv
	}
	return x
}

// ftranCol returns B⁻¹ a_j for standard-form column j.
func (r *revised) ftranCol(j int) mat.Vector {
	v := mat.NewVector(r.sf.m)
	rows, vals := r.sf.a.ColNZ(j)
	for k, i := range rows {
		v[i] = vals[k]
	}
	return r.ftran(v)
}

// btran solves Bᵀ y = c through the eta file (in reverse) and the
// factorization. c is not modified.
func (r *revised) btran(c mat.Vector) mat.Vector {
	v := c.Clone()
	for e := len(r.etas) - 1; e >= 0; e-- {
		et := &r.etas[e]
		s := 0.0
		for i, wi := range et.w {
			s += v[i] * wi
		}
		// s includes the r-th term; v_r' = (v_r − (s − v_r·w_r)) / w_r.
		v[et.r] = (v[et.r] - (s - v[et.r]*et.w[et.r])) / et.w[et.r]
	}
	return r.lu.SolveT(v)
}

// duals returns y with Bᵀ y = c_B for the given cost vector.
func (r *revised) duals(cost mat.Vector) mat.Vector {
	cb := mat.NewVector(r.sf.m)
	for i, b := range r.basis {
		cb[i] = cost[b]
	}
	return r.btran(cb)
}

// recomputeD refreshes the reduced-cost vector exactly from the duals of
// the current basis: d_j = c_j − yᵀa_j, with basic entries pinned to zero.
// Called at phase entry and after every refactorization; between those
// points d is maintained by the pivot-row update, which keeps it consistent
// with the basis the way a tableau's objective row is — the entering
// column's reduced cost becomes exactly zero and the leaving column's
// exactly −d_enter/pivot, so roundoff can never invite a column straight
// back in (the failure mode that stalls recompute-from-duals pricing on
// stiff instances whose duals reach 1/(1−α)).
//
// Alongside d it records each column's magnitude scale
//
//	dScale_j = 1 + |c_j| + Σ_i |y_i·a_ij|,
//
// the cancellation scale of the subtraction that produced d_j. Optimality
// tests compare d_j against −costTol·dScale_j rather than the absolute
// −costTol: policy LPs at discounts like α = 1−10⁻⁶ have duals of order
// 1/(1−α), so a computed d_j of −10⁻⁸ on a column whose terms are ~10⁶ is
// pure roundoff — an absolute test keeps "improving" on such columns
// through degenerate pivots and stalls into the iteration limit, while the
// relative test recognizes the optimum. On well-scaled problems dScale ≈ 1
// and the behavior is unchanged. The scales refresh with every recompute
// (at most refactorEvery pivots stale, like d itself).
func (r *revised) recomputeD(cost mat.Vector) {
	y := r.duals(cost)
	if r.d == nil {
		r.d = mat.NewVector(r.sf.nTot)
		r.dScale = mat.NewVector(r.sf.nTot)
	}
	for j := 0; j < r.sf.nTot; j++ {
		if r.pos[j] >= 0 {
			r.d[j] = 0
			r.dScale[j] = 1
			continue
		}
		rows, vals := r.sf.a.ColNZ(j)
		dot, abs := 0.0, 0.0
		for k, i := range rows {
			t := vals[k] * y[i]
			dot += t
			abs += math.Abs(t)
		}
		r.d[j] = cost[j] - dot
		r.dScale[j] = 1 + math.Abs(cost[j]) + abs
	}
}

// updateD applies the tableau objective-row update after a pivot at (row,
// col) with pivot element piv = α_col: d ← d − (d_col/piv)·α, where
// α_j = βᵀa_j is the pivot row and β = B⁻ᵀe_row in the pre-pivot basis.
// The entering column lands exactly at zero.
func (r *revised) updateD(beta mat.Vector, col int, piv float64) {
	factor := r.d[col] / piv
	if factor != 0 {
		for j := 0; j < r.sf.nTot; j++ {
			if a := r.sf.a.ColDot(j, beta); a != 0 {
				r.d[j] -= factor * a
			}
		}
	}
	r.d[col] = 0
}

// price picks the entering column among [0, maxCol) by the maintained
// reduced costs: most negative under Dantzig, first negative under Bland.
// A column counts as improving only when its reduced cost clears the
// scale-relative tolerance −costTol·dScale (see recomputeD). Returns -1 at
// optimality.
func (r *revised) price(maxCol int, bland bool) int {
	if bland {
		for j := 0; j < maxCol; j++ {
			if r.pos[j] < 0 && r.d[j] < -costTol*r.dScale[j] {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, 0.0
	for j := 0; j < maxCol; j++ {
		if r.pos[j] >= 0 {
			continue
		}
		if d := r.d[j]; d < -costTol*r.dScale[j] && d < bestVal {
			bestVal = d
			best = j
		}
	}
	return best
}

// ratioTest picks the leaving row for entering direction w. Ratio
// comparisons use a relative tolerance; among (near-)ties the largest pivot
// element wins for stability, except under Bland's rule where the smallest
// basis index wins to guarantee termination. Returns -1 when the column is
// unbounded.
func (r *revised) ratioTest(w mat.Vector, bland bool) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	bestPivot := 0.0
	for i, a := range w {
		if a <= pivotTol {
			continue
		}
		rhs := r.xB[i]
		if rhs < 0 {
			rhs = 0 // tiny negative from roundoff: treat as degenerate
		}
		ratio := rhs / a
		tol := 1e-9 * (1 + math.Abs(bestRatio))
		switch {
		case ratio < bestRatio-tol:
			bestRow, bestRatio, bestPivot = i, ratio, a
		case ratio <= bestRatio+tol:
			if bland {
				if bestRow == -1 || r.basis[i] < r.basis[bestRow] {
					bestRow, bestPivot = i, a
					if ratio < bestRatio {
						bestRatio = ratio
					}
				}
			} else if a > bestPivot {
				bestRow, bestPivot = i, a
				if ratio < bestRatio {
					bestRatio = ratio
				}
			}
		}
	}
	return bestRow
}

// pivotUpdate applies the basis change (row, col) with direction w = B⁻¹a_col,
// updating basic values and appending an eta. w is retained; callers must
// not reuse it.
func (r *revised) pivotUpdate(row, col int, w mat.Vector) {
	theta := r.xB[row] / w[row]
	for i := range r.xB {
		r.xB[i] -= theta * w[i]
		if r.xB[i] < 0 && r.xB[i] > -zeroTol {
			r.xB[i] = 0
		}
	}
	r.xB[row] = theta
	r.pos[r.basis[row]] = -1
	r.basis[row] = col
	r.pos[col] = row
	r.etas = append(r.etas, eta{r: row, w: w})
	r.iterations++
}

// cancelled reports whether the solve's context has been cancelled or its
// deadline has passed. A pivot costs O(nnz(A) + m²), so the per-iteration
// check is noise by comparison and gives cancellation a one-pivot response
// time. The deadline is compared directly rather than through Err alone:
// a deadline context is cancelled by a runtime timer goroutine, and on a
// busy single-CPU box that goroutine may not be scheduled while the pivot
// loop runs — polling the clock makes expiry observable regardless.
func (r *revised) cancelled() bool {
	if r.ctx.Err() != nil {
		return true
	}
	return r.hasDeadline && time.Now().After(r.deadline)
}

// runPhase iterates to optimality, unboundedness, or the iteration cap,
// refactorizing whenever the eta file reaches refactorEvery.
func (r *revised) runPhase(cost mat.Vector, maxCol int) Status {
	stallAfter := 200 + 20*(r.sf.m+r.sf.nTot)
	limit := 1000 + 400*(r.sf.m+r.sf.nTot)
	r.recomputeD(cost)
	for iter := 0; ; iter++ {
		if iter > limit {
			return IterationLimit
		}
		if r.cancelled() {
			return Cancelled
		}
		if len(r.etas) >= r.refactorEvery {
			if !r.refactor() {
				return Numerical
			}
			r.recomputeD(cost)
		}
		bland := r.blandAlways || iter > stallAfter
		col := r.price(maxCol, bland)
		if col < 0 {
			return Optimal
		}
		w := r.ftranCol(col)
		row := r.ratioTest(w, bland)
		if row < 0 {
			return Unbounded
		}
		ei := mat.NewVector(r.sf.m)
		ei[row] = 1
		beta := r.btran(ei) // pivot row in the pre-pivot basis
		r.updateD(beta, col, w[row])
		r.pivotUpdate(row, col, w)
	}
}

// driveOutArtificials pivots degenerate basic artificials out of the basis
// after phase 1. If an artificial's entire row is zero over real columns the
// constraint is redundant; the artificial stays basic at value zero,
// harmless because phase 2 never prices artificial columns.
func (r *revised) driveOutArtificials() {
	real := r.sf.nv + r.sf.ns
	for i := 0; i < r.sf.m; i++ {
		if r.basis[i] < real {
			continue
		}
		ei := mat.NewVector(r.sf.m)
		ei[i] = 1
		beta := r.btran(ei)
		for j := 0; j < real; j++ {
			if r.pos[j] >= 0 {
				continue
			}
			if math.Abs(r.sf.a.ColDot(j, beta)) <= pivotTol {
				continue
			}
			w := r.ftranCol(j)
			if math.Abs(w[i]) > pivotTol {
				r.pivotUpdate(i, j, w)
				break
			}
		}
	}
}

// solve runs both phases and extracts the solution. Every exit records the
// work counters, so even aborted solves (cancelled, iteration-limited,
// numerical) report the pivots and refactorizations they actually paid.
func (r *revised) solve() (sol *Solution) {
	sol = &Solution{}
	defer func() {
		sol.Iterations = r.iterations
		sol.Refactorizations = r.refactors
	}()
	if !r.refactor() {
		sol.Status = Numerical
		return sol
	}
	if r.sf.na > 0 {
		st := r.runPhase(r.sf.cost1, r.sf.nTot)
		if st != Optimal {
			// Phase 1 is never unbounded in exact arithmetic; treat it as
			// numerical trouble.
			sol.Status = Numerical
			if st == IterationLimit || st == Cancelled {
				sol.Status = st
			}
			return sol
		}
		if !r.refactor() { // exact phase-1 values
			sol.Status = Numerical
			return sol
		}
		phase1 := 0.0
		for i, b := range r.basis {
			if b >= r.sf.nv+r.sf.ns {
				phase1 += r.xB[i]
			}
		}
		if phase1 > 1e-7*(1+r.sf.b.Sum()) {
			sol.Status = Infeasible
			return sol
		}
		r.driveOutArtificials()
	}
	return r.phase2()
}

// phase2 optimizes the true objective from the current (primal feasible)
// basis and extracts the solution. It is the shared tail of the cold
// two-phase solve and of warm starts that enter with a reusable basis.
//
// On stiff instances (discounts at 1−10⁻⁶ and beyond) the degenerate-value
// clamps in the pivot loop can let the basis drift primal infeasible
// between refactorizations while the reduced costs remain optimal; the
// final exact refactorization then exposes basic values that are genuinely
// negative. Such a basis is still dual feasible — exactly the dual-simplex
// entry condition — so instead of giving up as Numerical, phase2 repairs
// primal feasibility with dual pivots and re-optimizes, a bounded number of
// times.
func (r *revised) phase2() *Solution {
	sol := &Solution{}
	sol.Status = Numerical
	for attempt := 0; attempt < 4; attempt++ {
		if !r.refactor() {
			break
		}
		st := r.runPhase(r.sf.cost2, r.sf.nv+r.sf.ns)
		if st != Optimal {
			sol.Status = st
			break
		}
		if !r.refactor() { // final exact recomputation from the basis
			break
		}
		worst := 0.0
		for _, v := range r.xB {
			if v < worst {
				worst = v
			}
		}
		if worst >= -1e-7 {
			sol.Status = Optimal
			x := make([]float64, r.sf.nv)
			for i, b := range r.basis {
				if b < r.sf.nv {
					v := r.xB[i]
					if v < 0 {
						v = 0
					}
					x[b] = v
				}
			}
			sol.X = x
			break
		}
		if !r.dualFeasible() || !r.dualSimplex() {
			break
		}
	}
	sol.Iterations = r.iterations
	sol.Refactorizations = r.refactors
	return sol
}

// primalFeasible reports whether every basic value is nonnegative (up to
// roundoff slack).
func (r *revised) primalFeasible() bool {
	for _, v := range r.xB {
		if v < -1e-9 {
			return false
		}
	}
	return true
}

// dualFeasible reports whether every priced (non-artificial) column has a
// nonnegative phase-2 reduced cost, the precondition for dual simplex.
func (r *revised) dualFeasible() bool {
	r.recomputeD(r.sf.cost2)
	for j := 0; j < r.sf.nv+r.sf.ns; j++ {
		if r.pos[j] < 0 && r.d[j] < -costTol*r.dScale[j] {
			return false
		}
	}
	return true
}

// dualSimplex restores primal feasibility of a dual-feasible basis: the row
// with the most negative basic value leaves, and the entering column is
// chosen by the dual ratio test over that row's strictly negative entries
// (computed as βᵀa_j with β = B⁻ᵀe_row; ties broken toward the largest
// pivot magnitude for stability). It returns false when no entering column
// exists (the new problem is primal infeasible from this basis), the pivot
// limit is hit, or the basis goes numerically bad; callers then fall back
// to a cold solve rather than trusting a half-converged state.
func (r *revised) dualSimplex() bool {
	real := r.sf.nv + r.sf.ns
	limit := 1000 + 400*(r.sf.m+r.sf.nTot)
	r.recomputeD(r.sf.cost2)
	for iter := 0; ; iter++ {
		if iter > limit || r.cancelled() {
			return false
		}
		if len(r.etas) >= r.refactorEvery {
			if !r.refactor() {
				return false
			}
			r.recomputeD(r.sf.cost2)
		}
		row, worst := -1, -1e-9
		for i, v := range r.xB {
			if v < worst {
				worst, row = v, i
			}
		}
		if row < 0 {
			return true
		}
		ei := mat.NewVector(r.sf.m)
		ei[row] = 1
		beta := r.btran(ei)
		col, bestRatio, bestMag := -1, math.Inf(1), 0.0
		for j := 0; j < real; j++ {
			if r.pos[j] >= 0 {
				continue
			}
			a := r.sf.a.ColDot(j, beta)
			if a >= -pivotTol {
				continue
			}
			rc := r.d[j]
			if rc < 0 {
				rc = 0 // roundoff on a nonbasic column: treat as degenerate
			}
			ratio := rc / -a
			tol := 1e-9 * (1 + math.Abs(bestRatio))
			switch {
			case ratio < bestRatio-tol:
				col, bestRatio, bestMag = j, ratio, -a
			case ratio <= bestRatio+tol && -a > bestMag:
				col, bestMag = j, -a
				if ratio < bestRatio {
					bestRatio = ratio
				}
			}
		}
		if col < 0 {
			return false
		}
		w := r.ftranCol(col)
		if math.Abs(w[row]) <= pivotTol {
			return false // direction disagrees with the priced row: bail out
		}
		r.updateD(beta, col, w[row])
		r.pivotUpdate(row, col, w)
	}
}

// solveRevised runs one cold revised-simplex solve.
func solveRevised(ctx context.Context, p *Problem, conservative bool) (*Solution, *revised) {
	sf, preStatus := newStdForm(p)
	if preStatus != Optimal {
		return &Solution{Status: preStatus}, nil
	}
	r := newRevised(ctx, sf, conservative)
	sol := r.solve()
	if sol.Status != Optimal {
		return sol, nil
	}
	if !sf.verify(sol.X) {
		sol.Status = Numerical
	}
	return sol, r
}
