package lp

// Solve flight recorder: a per-solve callback observing the simplex in
// flight. A Monitor attached with WithMonitor receives a Snapshot at solve
// start and finish, at every refactorization and rhs perturbation, on the
// first degenerate-stall escalation of a phase, and every WithMonitorEvery
// pivots in between — enough to render live progress for a solve that runs
// for minutes without waiting for Solution.
//
// Two hard guarantees, enforced by the determinism suite:
//
//   - A nil monitor is zero overhead: the pivot loops test one pointer.
//   - An attached monitor cannot perturb the pivot trajectory: every
//     snapshot is computed read-only from solver state, so pivots,
//     refactorization points, the objective bits and the final basis are
//     bit-identical with and without a monitor.
//
// Observe is called synchronously from the pivot loop — a slow monitor
// slows the solve (never changes it). Implementations that feed live
// tables (the serving daemon) should store the snapshot under a lock and
// return; rendering belongs to the reader.

import (
	"time"

	"repro/internal/mat"
)

// Snapshot is one flight-recorder observation of a solve in progress. All
// fields are values (no references into solver state), so a snapshot may be
// retained and read concurrently with the ongoing solve.
type Snapshot struct {
	// Event says why the snapshot was taken: "start", "progress" (pivot
	// cadence), "refactor", "perturb", "stall" (anti-cycling escalation),
	// "finish".
	Event string
	// Phase is the simplex phase at the time: "phase1", "phase2", or
	// "dual" (dual-simplex repair); empty before the first phase starts.
	Phase string
	// Pivots and Refactorizations are the work counters so far (the same
	// counters a finished Solution reports).
	Pivots           int
	Refactorizations int
	// Objective is the active phase's standard-form objective at the
	// current basis, Σ c[basis[i]]·xB[i]: the phase-1 artificial mass
	// during phase 1, the (minimization-form) objective during phase 2.
	Objective float64
	// PrimalInf is the primal infeasibility inf-norm max(0, −min xB);
	// DualInf the worst maintained reduced-cost violation among priced
	// nonbasic columns. Both are 0 at a clean optimum.
	PrimalInf float64
	DualInf   float64
	// EtaLen is the update-file length since the last refactorization and
	// FactorNNZ the factorization's stored nonzeros.
	EtaLen    int
	FactorNNZ int
	// Perturbed reports whether the working rhs currently carries the
	// anti-degeneracy jitter.
	Perturbed bool
	// Health is the basis kernel's numerical-health record (zero for the
	// dense kernel): element growth, diagonal range, Forrest–Tomlin
	// rejections, hyper-sparse vs dense solve counts.
	Health mat.HealthStats
	// Timings is the per-stage wall-clock split so far and Elapsed the
	// total wall clock since the solve attempt started.
	Timings Timings
	Elapsed time.Duration
}

// Monitor observes solve snapshots. Implementations must be safe for use
// from the solving goroutine; they are never called concurrently by one
// solve.
type Monitor interface {
	Observe(Snapshot)
}

// MonitorFunc adapts a function to the Monitor interface.
type MonitorFunc func(Snapshot)

// Observe calls f(s).
func (f MonitorFunc) Observe(s Snapshot) { f(s) }

// defaultMonitorEvery is the pivot cadence of "progress" snapshots when
// WithMonitorEvery is not set: frequent enough for a live view of a
// multi-minute solve, rare enough that snapshot cost (O(m + n) scans) is
// noise against the pivots in between.
const defaultMonitorEvery = 64

// WithMonitor attaches a solve flight recorder. m is shared by every solve
// attempt of a Solve call (warm start, cold solve, conservative retry);
// each attempt emits its own start/finish pair. nil detaches.
func WithMonitor(m Monitor) Option {
	return func(c *solverConfig) { c.monitor = m }
}

// WithMonitorEvery sets the pivot cadence of "progress" snapshots
// (n <= 0 keeps the default of 64).
func WithMonitorEvery(n int) Option {
	return func(c *solverConfig) { c.monitorEvery = n }
}

// setMonPhase records the active phase for snapshots: its name, its
// standard-form cost vector, and the number of priced columns (dual
// infeasibility is only meaningful over columns the phase actually
// prices). It also re-arms the once-per-phase stall event.
func (r *revised) setMonPhase(phase string, cost mat.Vector, maxCol int) {
	if r.mon == nil {
		return
	}
	r.monPhase, r.monCost, r.monMaxCol = phase, cost, maxCol
	r.monStall = false
}

// snapshot assembles a flight-recorder observation from current solver
// state. Strictly read-only — the no-trajectory-perturbation guarantee
// lives here.
func (r *revised) snapshot(event string) Snapshot {
	s := Snapshot{
		Event:            event,
		Phase:            r.monPhase,
		Pivots:           r.iterations,
		Refactorizations: r.refactors,
		EtaLen:           r.fact.Updates(),
		FactorNNZ:        r.fact.NNZ(),
		Perturbed:        r.perturbed,
		Health:           r.fact.Health(),
		Timings:          r.tm,
		Elapsed:          time.Since(r.monStart),
	}
	if r.monCost != nil {
		obj := 0.0
		for i, b := range r.basis {
			obj += r.monCost[b] * r.xB[i]
		}
		s.Objective = obj
	}
	pinf := 0.0
	for _, v := range r.xB {
		if -v > pinf {
			pinf = -v
		}
	}
	s.PrimalInf = pinf
	if r.d != nil {
		dinf := 0.0
		for j := 0; j < r.monMaxCol && j < len(r.d); j++ {
			if r.pos[j] < 0 {
				if v := -r.d[j]; v > dinf {
					dinf = v
				}
			}
		}
		s.DualInf = dinf
	}
	return s
}

// emit delivers a snapshot to the attached monitor, if any.
func (r *revised) emit(event string) {
	if r.mon == nil {
		return
	}
	r.mon.Observe(r.snapshot(event))
}

// emitProgress delivers a "progress" snapshot when the pivot cadence is
// due. Called once per pivot-loop iteration; the fast path is one pointer
// test.
func (r *revised) emitProgress() {
	if r.mon == nil || r.iterations-r.monLast < r.monEvery {
		return
	}
	r.monLast = r.iterations
	r.emit("progress")
}

// finishMon emits the final "finish" snapshot exactly once per solve
// attempt (both the cold path and the warm path defer it).
func (r *revised) finishMon() {
	if r.mon == nil || r.monDone {
		return
	}
	r.monDone = true
	r.emit("finish")
}
