package lp

import (
	"math"
	"math/rand"
	"testing"
)

// parityProblems returns the named corpus the revised simplex is compared
// against the legacy dense tableau on: every fixed instance the unit tests
// exercise plus randomized families covering LE/GE/EQ mixes, degenerate and
// redundant rows, and the balance-equation structure of LP2.
func parityProblems() map[string]*Problem {
	probs := map[string]*Problem{}

	p := NewProblem(Maximize, 2)
	p.Obj = []float64{3, 5}
	p.AddConstraint("c1", []float64{1, 0}, LE, 4)
	p.AddConstraint("c2", []float64{0, 2}, LE, 12)
	p.AddConstraint("c3", []float64{3, 2}, LE, 18)
	probs["textbook-max"] = p

	p = NewProblem(Minimize, 2)
	p.Obj = []float64{2, 3}
	p.AddConstraint("cover", []float64{1, 1}, GE, 10)
	p.AddConstraint("xmin", []float64{1, 0}, GE, 2)
	probs["min-ge"] = p

	p = NewProblem(Minimize, 2)
	p.Obj = []float64{1, 2}
	p.AddConstraint("sum", []float64{1, 1}, EQ, 5)
	p.AddConstraint("cap", []float64{1, 0}, LE, 3)
	probs["equality"] = p

	p = NewProblem(Minimize, 2)
	p.Obj = []float64{1, 1}
	p.AddConstraint("c", []float64{1, -1}, LE, -2)
	probs["neg-rhs"] = p

	p = NewProblem(Minimize, 1)
	p.Obj = []float64{1}
	p.AddConstraint("lo", []float64{1}, GE, 5)
	p.AddConstraint("hi", []float64{1}, LE, 3)
	probs["infeasible"] = p

	p = NewProblem(Maximize, 2)
	p.Obj = []float64{1, 1}
	p.AddConstraint("c", []float64{1, -1}, LE, 1)
	probs["unbounded"] = p

	p = NewProblem(Minimize, 4)
	p.Obj = []float64{-0.75, 150, -0.02, 6}
	p.AddConstraint("r1", []float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint("r2", []float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint("r3", []float64{0, 0, 1, 0}, LE, 1)
	probs["beale"] = p

	p = NewProblem(Minimize, 2)
	p.Obj = []float64{1, 3}
	p.AddConstraint("e1", []float64{1, 1}, EQ, 2)
	p.AddConstraint("e2", []float64{2, 2}, EQ, 4)
	probs["redundant-eq"] = p

	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(6)
		m := 1 + r.Intn(6)
		q := NewProblem(Minimize, n)
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = r.Float64() * 5
			q.Obj[j] = r.NormFloat64()
		}
		for i := 0; i < m; i++ {
			coeffs := make([]float64, n)
			a := 0.0
			for j := range coeffs {
				coeffs[j] = math.Abs(r.NormFloat64())
				a += coeffs[j] * x0[j]
			}
			switch r.Intn(3) {
			case 0:
				q.AddConstraint("le", coeffs, LE, a+r.Float64())
			case 1:
				q.AddConstraint("ge", coeffs, GE, a-r.Float64()*a)
			default:
				q.AddConstraint("eq", coeffs, EQ, a)
			}
		}
		probs["random-"+string(rune('a'+trial%26))+string(rune('0'+trial/26))] = q
	}

	// Balance-like LP2 structure at a stiff discount factor.
	r = rand.New(rand.NewSource(3))
	for _, alpha := range []float64{0.95, 1 - 1e-6} {
		n := 12
		nv := n * 2
		q := NewProblem(Minimize, nv)
		for j := 0; j < nv; j++ {
			q.Obj[j] = r.Float64()
		}
		P := make([][][]float64, 2)
		for a := 0; a < 2; a++ {
			P[a] = make([][]float64, n)
			for s := 0; s < n; s++ {
				row := make([]float64, n)
				sum := 0.0
				for j := range row {
					row[j] = r.Float64()
					sum += row[j]
				}
				for j := range row {
					row[j] /= sum
				}
				P[a][s] = row
			}
		}
		for j := 0; j < n; j++ {
			coeffs := make([]float64, nv)
			for a := 0; a < 2; a++ {
				coeffs[j*2+a] += 1
				for s := 0; s < n; s++ {
					coeffs[s*2+a] -= alpha * P[a][s][j]
				}
			}
			rhs := 0.0
			if j == 0 {
				rhs = 1 - alpha
			}
			q.AddConstraint("balance", coeffs, EQ, rhs)
		}
		name := "balance-mild"
		if alpha > 0.999 {
			name = "balance-stiff"
		}
		probs[name] = q
	}
	return probs
}

// TestRevisedMatchesDense is the cross-solver contract: on every corpus
// problem the revised simplex and the legacy dense tableau agree on status,
// and on optimal instances the objectives agree within 1e-8 and both
// solutions are feasible for the original constraints.
func TestRevisedMatchesDense(t *testing.T) {
	for name, p := range parityProblems() {
		rev, revErr := Solve(p)
		den, denErr := SolveDense(p)
		if (revErr == nil) != (denErr == nil) || rev.Status != den.Status {
			t.Errorf("%s: revised status %v (err %v) vs dense %v (err %v)",
				name, rev.Status, revErr, den.Status, denErr)
			continue
		}
		if revErr != nil {
			continue
		}
		if d := math.Abs(rev.Objective - den.Objective); d > 1e-8 {
			t.Errorf("%s: revised objective %.12g vs dense %.12g (Δ=%g)",
				name, rev.Objective, den.Objective, d)
		}
		if !feasible(p, rev.X, 1e-6) {
			t.Errorf("%s: revised solution infeasible", name)
		}
		if !feasible(p, den.X, 1e-6) {
			t.Errorf("%s: dense solution infeasible", name)
		}
		for i := range p.Cons {
			if math.Abs(rev.Activities[i]-den.Activities[i]) > 1e-6 {
				t.Errorf("%s: activity[%d] revised %g vs dense %g", name, i,
					rev.Activities[i], den.Activities[i])
			}
		}
	}
}

// TestDenseSolverContract pins the dense baseline's own behavior on the
// canonical instances, so parity failures point at the right solver.
func TestDenseSolverContract(t *testing.T) {
	p := NewProblem(Maximize, 2)
	p.Obj = []float64{3, 5}
	p.AddConstraint("c1", []float64{1, 0}, LE, 4)
	p.AddConstraint("c2", []float64{0, 2}, LE, 12)
	p.AddConstraint("c3", []float64{3, 2}, LE, 18)
	sol, err := SolveDense(p)
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	if math.Abs(sol.Objective-36) > 1e-9 {
		t.Errorf("objective = %g, want 36", sol.Objective)
	}

	bad := NewProblem(Minimize, 1)
	bad.Obj = []float64{1}
	bad.AddConstraint("lo", []float64{1}, GE, 5)
	bad.AddConstraint("hi", []float64{1}, LE, 3)
	sol, err = SolveDense(bad)
	if err == nil || sol.Status != Infeasible {
		t.Errorf("status = %v, err = %v; want Infeasible", sol.Status, err)
	}
}
