package lp

// Basis-kernel strategies for the revised simplex. The solver's inner loop
// only ever needs four operations from its factorization — rebuild from the
// basis columns, FTRAN, BTRAN, and absorb one column replacement — so the
// kernel is a strategy interface with two implementations:
//
//   - denseFactorizer: the original dense m×m LU plus a product-form eta
//     file. O(m³) refactorizations, O(m²) triangular solves, O(m) per eta;
//     retained both as the small-problem default (below a few hundred rows
//     the dense kernel's constant factors win) and as the reference leg of
//     parity tests.
//   - sparseFactorizer: mat.SparseLU — Markowitz-ordered sparse LU with
//     threshold partial pivoting and Forrest–Tomlin updates. Everything is
//     O(nnz), which is what lets k≈6 composite networks (m ≈ 10⁴) solve at
//     all: a single dense refactorization at that size costs ~10¹² flops and
//     ~800 MB, the sparse one a few million and a few MB.

import (
	"context"

	"repro/internal/mat"
	"repro/internal/obs"
)

// ctxAware lets a kernel receive the solve context without widening the
// Factorizer interface: LUDEBUG diagnostics emitted deep inside
// mat.SparseLU then carry the owning request's trace ID instead of
// interleaving anonymously with other solves.
type ctxAware interface{ setContext(ctx context.Context) }

// Factorizer is the strategy interface for the simplex basis kernel: it
// maintains a factorization of the m×m basis matrix B across pivots.
// Implementations are stateful and single-solve; after Update returns an
// error the factorization is invalid and the caller must Refactor before the
// next Ftran/Btran.
type Factorizer interface {
	// Refactor rebuilds the factorization exactly from the standard-form
	// columns selected by basis (basis[i] is the column in slot i). It
	// returns a non-nil error when the basis matrix is singular.
	Refactor(a *mat.CSC, basis []int) error
	// Ftran solves B x = v. v is consumed; the result may alias it.
	Ftran(v mat.Vector) mat.Vector
	// Btran solves Bᵀ y = c. c is not modified.
	Btran(c mat.Vector) mat.Vector
	// FtranSp solves B x = b for a sparse right-hand side (an entering
	// column), writing the direction into x. b is consumed. On return x has
	// a sorted pattern, or is marked Dense when the result outgrew the
	// kernel's hyper-sparsity threshold (always, for the dense kernel).
	// Results are bit-identical to Ftran on the same rhs.
	FtranSp(b, x *mat.SpVec)
	// BtranSp solves Bᵀ y = c for a sparse right-hand side (the unit vector
	// of a leaving row), writing into y; same contract as FtranSp.
	BtranSp(c, y *mat.SpVec)
	// Update absorbs the replacement of the basis column in slot row by the
	// standard-form column with sparse entries (rows, vals); w = B⁻¹a is the
	// column's FTRAN image in the pre-pivot basis (the entering direction
	// the pivot loop already computed). w is retained.
	Update(row int, w mat.Vector, rows []int, vals []float64) error
	// Updates reports the column replacements absorbed since the last
	// Refactor — the solver's refactorization cadence trigger.
	Updates() int
	// NNZ reports the stored nonzeros of the current factorization (m² for
	// the dense kernel), the fill-in statistic surfaced in Solution.
	NNZ() int
	// Health reports the kernel's numerical-health record, with lifetime
	// counters (FT rejections, hyper/dense solve counts) accumulated across
	// refactorizations of this solve. The dense kernel, which carries no
	// such instrumentation, returns the zero value.
	Health() mat.HealthStats
}

// eta is one product-form basis update: the basis column at row r was
// replaced, and w = B⁻¹a_enter (in the pre-pivot basis) with pivot w[r].
type eta struct {
	r int
	w mat.Vector
}

// denseFactorizer is the original kernel: a dense LU of the basis matrix
// plus a product-form eta file recording the pivots since the last
// refactorization.
type denseFactorizer struct {
	m    int
	lu   *mat.LU
	etas []eta
}

func newDenseFactorizer() *denseFactorizer { return &denseFactorizer{} }

func (f *denseFactorizer) Refactor(a *mat.CSC, basis []int) error {
	m := len(basis)
	f.m = m
	bm := mat.NewMatrix(m, m)
	for i, bcol := range basis {
		rows, vals := a.ColNZ(bcol)
		for k, row := range rows {
			bm.Set(row, i, vals[k])
		}
	}
	lu, err := mat.Factor(bm)
	if err != nil {
		return err
	}
	f.lu = lu
	f.etas = f.etas[:0]
	return nil
}

func (f *denseFactorizer) Ftran(v mat.Vector) mat.Vector {
	x := f.lu.Solve(v)
	for e := range f.etas {
		et := &f.etas[e]
		piv := x[et.r] / et.w[et.r]
		if piv != 0 {
			for i, wi := range et.w {
				x[i] -= piv * wi
			}
		}
		x[et.r] = piv
	}
	return x
}

func (f *denseFactorizer) Btran(c mat.Vector) mat.Vector {
	v := c.Clone()
	for e := len(f.etas) - 1; e >= 0; e-- {
		et := &f.etas[e]
		s := 0.0
		for i, wi := range et.w {
			s += v[i] * wi
		}
		// s includes the r-th term; v_r' = (v_r − (s − v_r·w_r)) / w_r.
		v[et.r] = (v[et.r] - (s - v[et.r]*et.w[et.r])) / et.w[et.r]
	}
	return f.lu.SolveT(v)
}

// FtranSp densifies and defers to Ftran — the dense kernel has no sparse
// path, so the result is always marked Dense.
func (f *denseFactorizer) FtranSp(b, x *mat.SpVec) {
	x.Reset()
	x.Dense = true
	copy(x.Val, b.Val)
	x.Val = f.Ftran(x.Val)
}

// BtranSp densifies and defers to Btran.
func (f *denseFactorizer) BtranSp(c, y *mat.SpVec) {
	y.Reset()
	y.Dense = true
	y.Val = f.Btran(c.Val)
}

func (f *denseFactorizer) Update(row int, w mat.Vector, rows []int, vals []float64) error {
	// w is the solver's reused direction scratch, mutated by the next
	// FTRAN; the eta file needs its own copy.
	f.etas = append(f.etas, eta{r: row, w: w.Clone()})
	return nil
}

func (f *denseFactorizer) Updates() int { return len(f.etas) }

func (f *denseFactorizer) NNZ() int { return f.m * f.m }

func (f *denseFactorizer) Health() mat.HealthStats { return mat.HealthStats{} }

// sparseFactorizer wraps mat.SparseLU: Markowitz-ordered sparse LU with
// threshold partial pivoting, updated in place by Forrest–Tomlin column
// replacements. tau is the pivot threshold (raised in conservative mode to
// favor stability over sparsity).
type sparseFactorizer struct {
	tau    float64
	f      *mat.SparseLU
	acc    mat.HealthStats                  // counter totals of retired factorizations
	debugf func(format string, args ...any) // context-bound LUDEBUG sink, set via setContext
}

func newSparseFactorizer(conservative bool) *sparseFactorizer {
	tau := 0.1
	if conservative {
		tau = 0.5
	}
	return &sparseFactorizer{tau: tau}
}

func (s *sparseFactorizer) setContext(ctx context.Context) {
	s.debugf = func(format string, args ...any) { obs.Debugf(ctx, "lu", format, args...) }
	if s.f != nil {
		s.f.Debugf = s.debugf
	}
}

func (s *sparseFactorizer) Refactor(a *mat.CSC, basis []int) error {
	if s.f != nil {
		// The retiring factorization's lifetime counters fold into the
		// accumulator so Health reports per-solve totals, not just the
		// activity since the last refactorization.
		s.acc.AddCounters(s.f.Health())
	}
	f, err := mat.FactorColumns(len(basis), func(i int) ([]int, []float64) {
		return a.ColNZ(basis[i])
	}, s.tau)
	if err != nil {
		s.f = nil
		return err
	}
	f.Debugf = s.debugf
	s.f = f
	return nil
}

func (s *sparseFactorizer) Ftran(v mat.Vector) mat.Vector { return s.f.Solve(v) }

func (s *sparseFactorizer) Btran(c mat.Vector) mat.Vector { return s.f.SolveT(c) }

func (s *sparseFactorizer) FtranSp(b, x *mat.SpVec) { s.f.SolveSp(b, x) }

func (s *sparseFactorizer) BtranSp(c, y *mat.SpVec) { s.f.SolveTSp(c, y) }

func (s *sparseFactorizer) Update(row int, w mat.Vector, rows []int, vals []float64) error {
	return s.f.Update(row, rows, vals)
}

func (s *sparseFactorizer) Updates() int {
	if s.f == nil {
		return 0
	}
	return s.f.Updates()
}

func (s *sparseFactorizer) NNZ() int {
	if s.f == nil {
		return 0
	}
	return s.f.NNZ()
}

func (s *sparseFactorizer) Health() mat.HealthStats {
	if s.f == nil {
		return s.acc
	}
	h := s.f.Health()
	h.AddCounters(s.acc)
	return h
}
