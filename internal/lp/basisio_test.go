package lp

import (
	"bytes"
	"context"
	"encoding"
	"errors"
	"math"
	"testing"
)

var (
	_ encoding.BinaryMarshaler   = (*Basis)(nil)
	_ encoding.BinaryUnmarshaler = (*Basis)(nil)
)

func TestBasisRoundTrip(t *testing.T) {
	_, basis := solveWithBasisOK(t, sweepProblem(4), nil)
	data, err := basis.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}

	var decoded Basis
	if err := decoded.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if decoded.String() != basis.String() {
		t.Errorf("decoded shape %v != original %v", decoded.String(), basis.String())
	}
	redata, err := decoded.MarshalBinary()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, redata) {
		t.Errorf("encode/decode/encode not byte-stable")
	}

	// The rehydrated basis must be usable as a warm start exactly like the
	// in-memory one.
	sol, _ := solveWithBasisOK(t, sweepProblem(6), &decoded)
	if !sol.WarmStarted {
		t.Errorf("decoded basis did not warm-start the next solve")
	}
	if math.Abs(sol.Objective-24) > 1e-9 {
		t.Errorf("objective = %g, want 24", sol.Objective)
	}
}

func TestBasisDecodeRejectsMalformed(t *testing.T) {
	_, basis := solveWithBasisOK(t, sweepProblem(4), nil)
	good, err := basis.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}

	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("XXXX"), good[4:]...),
		"truncated":  good[:len(good)-1],
		"trailing":   append(append([]byte{}, good...), 0x01),
		"column oob": append(append([]byte{}, good[:len(good)-1]...), 0x7f),
		// nv=1, ns=1, na=1, m=2^30 with no column bytes: must be rejected
		// before allocating a gigabyte of columns.
		"huge m": append([]byte("LPB1"), 0x01, 0x01, 0x01, 0x80, 0x80, 0x80, 0x80, 0x04),
	}
	for name, data := range cases {
		var b Basis
		if err := b.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

func TestSolveCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, basis, err := SolveWithBasisCtx(ctx, sweepProblem(4), nil)
	if sol.Status != Cancelled {
		t.Fatalf("status = %v, want Cancelled", sol.Status)
	}
	if basis != nil {
		t.Errorf("cancelled solve returned a basis")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in chain", err)
	}
}

func TestSolveWarmCancelledContext(t *testing.T) {
	_, basis := solveWithBasisOK(t, sweepProblem(8), nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Tightening the cap forces dual-simplex restoration, which must notice
	// the dead context instead of falling back to a cold solve.
	sol, _, err := SolveWithBasisCtx(ctx, sweepProblem(3), basis)
	if sol.Status != Cancelled {
		t.Fatalf("status = %v, want Cancelled", sol.Status)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in chain", err)
	}
}
