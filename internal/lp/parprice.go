package lp

// Deterministic parallel pricing. The per-pivot O(nTot) scans — the pricing
// Choose, the reduced-cost maintenance over the pivot row's support, and the
// periodic exact recomputation — are data-parallel over columns, and on wide
// problems (k≈6 composites price ~7.8·10⁴ columns per pivot) they dominate
// the pivot once the kernel solves are hyper-sparse. They are chunked over a
// bounded worker pool (the internal/sweep pattern: contiguous chunks, one
// per worker, GOMAXPROCS-sized by default).
//
// Determinism is a hard contract, not best-effort: the chosen entering
// column — and therefore the entire pivot sequence — must be bit-identical
// to the sequential path for every worker count. Two properties deliver it:
//
//   - Per-column work is read-shared / write-disjoint (d[j], dScale[j],
//     γ[j] are written only by the chunk owning j), so values never depend
//     on scheduling.
//   - Argmax-style scans reduce per-chunk results in ascending chunk order
//     with the same strictly-better comparison the sequential scan uses.
//     The sequential scan keeps the first of equals; chunks are contiguous
//     and ordered, so "first chunk's winner wins ties" is exactly "lowest
//     column index wins ties", independent of chunk boundaries.
//
// FP accumulation order is never split across workers (the pivot-row
// scatter stays sequential), so no floating-point reduction is reassociated.

import (
	"runtime"
	"sync"
)

// parGrain is the minimum number of columns per parallel region; below it
// goroutine handoff costs more than the scan.
const parGrain = 2048

// workPool fans an index range out over a fixed number of workers in
// contiguous, deterministically-sized chunks. The zero value and nil run
// sequentially; a pool is per-solve state (created in newRevised) and not
// safe for concurrent run calls.
type workPool struct {
	workers int
	res     []int     // per-chunk argmax index scratch, reused across regions
	resVal  []float64 // per-chunk argmax key scratch
}

// resolveWorkers maps the WithPricingWorkers option value to an effective
// worker count: n > 0 is explicit (tests pin 1/2/8), n <= 0 is auto —
// GOMAXPROCS capped at 8 (pricing scans saturate memory bandwidth long
// before they scale past that).
func resolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

func newWorkPool(workers int) *workPool {
	if workers < 1 {
		workers = 1
	}
	return &workPool{
		workers: workers,
		res:     make([]int, workers),
		resVal:  make([]float64, workers),
	}
}

// parallel reports whether a region of n columns is worth fanning out.
func (p *workPool) parallel(n int) bool {
	return p != nil && p.workers > 1 && n >= parGrain
}

// run invokes fn(ci, lo, hi) for each of exactly p.workers contiguous
// chunks covering [0, n), concurrently, and waits for all of them. Chunk
// boundaries depend only on n and the worker count. fn must confine its
// writes to chunk-owned data (plus p.res[ci]).
func (p *workPool) run(n int, fn func(ci, lo, hi int)) {
	w := p.workers
	q := (n + w - 1) / w
	var wg sync.WaitGroup
	for ci := 1; ci < w; ci++ {
		lo := ci * q
		if lo >= n {
			break
		}
		hi := lo + q
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			fn(ci, lo, hi)
		}(ci, lo, hi)
	}
	if q > n {
		q = n
	}
	fn(0, 0, q)
	wg.Wait()
}

// chunkSpan returns chunk ci's range for a region of n columns (the same
// split run uses); hi <= lo means the chunk is empty.
func (p *workPool) chunkSpan(ci, n int) (lo, hi int) {
	q := (n + p.workers - 1) / p.workers
	lo = ci * q
	hi = lo + q
	if hi > n {
		hi = n
	}
	return lo, hi
}
