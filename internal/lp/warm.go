package lp

import (
	"context"
	"fmt"
	"math"
)

// Basis captures the optimal simplex basis of a solved Problem together with
// a fingerprint of the standard form it belongs to. Passing it to
// SolveWithBasis on a structurally identical problem (same variables, same
// constraint rows up to right-hand-side values — e.g. consecutive points of
// a Pareto sweep, where only one bound value moves) lets the solver skip
// phase 1 entirely: the basis is refactorized against the new data, primal
// feasibility is restored with dual-simplex pivots if the RHS change made it
// infeasible, and only then does the ordinary phase-2 iteration run. When
// the basis does not carry over (different standard-form shape, singular
// basis matrix, or dual pivoting fails), the solver transparently falls back
// to a cold two-phase solve. Warm starting therefore never changes the
// status or the optimal value; on degenerate problems with multiple optima
// it may land on a different optimal vertex (a different X of equal
// objective) than the cold path would.
type Basis struct {
	cols       []int
	nv, ns, na int
}

// NumRows returns the number of constraint rows the basis covers.
func (b *Basis) NumRows() int { return len(b.cols) }

// String summarizes the basis shape for diagnostics.
func (b *Basis) String() string {
	return fmt.Sprintf("lp.Basis{m=%d nv=%d ns=%d na=%d}", len(b.cols), b.nv, b.ns, b.na)
}

// exportBasis snapshots the solver's current basis for reuse.
func (r *revised) exportBasis() *Basis {
	cols := make([]int, r.sf.m)
	copy(cols, r.basis)
	return &Basis{cols: cols, nv: r.sf.nv, ns: r.sf.ns, na: r.sf.na}
}

// compatible reports whether the basis plausibly belongs to the standard
// form: same column-space shape, one distinct in-range column per row. It
// cannot detect every mismatch (a reordered problem with identical shape
// passes), but any accepted basis is still just a starting point — the
// solve refactorizes against the actual data and verifies the final answer,
// so a semantically stale basis costs pivots, never correctness.
func (b *Basis) compatible(sf *stdForm) bool {
	if b == nil || b.nv != sf.nv || b.ns != sf.ns || b.na != sf.na || len(b.cols) != sf.m {
		return false
	}
	seen := make(map[int]bool, sf.m)
	for _, c := range b.cols {
		if c < 0 || c >= sf.nTot || seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}

// notOptimalErr wraps a non-optimal status in the package error contract;
// a budget stop additionally matches ErrBudgetExceeded.
func notOptimalErr(s Status) error {
	if s == BudgetExceeded {
		return fmt.Errorf("lp: %w: %w", ErrBudgetExceeded, ErrNotOptimal)
	}
	return fmt.Errorf("lp: %v: %w", s, ErrNotOptimal)
}

// SolveWithBasis solves the problem like Solve, optionally warm-starting
// from the basis of a previous structurally identical solve. On an Optimal
// status it also returns the optimal basis for chaining into the next solve;
// otherwise the returned basis is nil. A nil warm basis is a cold solve.
//
// Deprecated: use NewSolver().Solve(context.Background(), p, warm), which
// also exposes factorization, pricing, and budget options.
func SolveWithBasis(p *Problem, warm *Basis) (*Solution, *Basis, error) {
	return NewSolver().Solve(context.Background(), p, warm)
}

// SolveWithBasisCtx is SolveWithBasis under a context: the pivot loops check
// ctx once per iteration, so cancelling it (or letting its deadline expire)
// aborts the solve within one pivot. A cancelled solve returns a Solution
// with Status Cancelled and an error satisfying errors.Is against
// context.Canceled or context.DeadlineExceeded (via context.Cause).
//
// Deprecated: use NewSolver().Solve(ctx, p, warm), which also exposes
// factorization, pricing, and budget options.
func SolveWithBasisCtx(ctx context.Context, p *Problem, warm *Basis) (*Solution, *Basis, error) {
	return NewSolver().Solve(ctx, p, warm)
}

// solveWarm attempts a warm-started solve. It returns (nil, nil) whenever
// the basis cannot be reused, signalling the caller to fall back to a cold
// solve; a non-nil Solution is definitive (the presolve-infeasible case, a
// completed and verified phase-2 run, or a cancelled or budget-stopped
// solve — falling back to a cold solve after cancellation would only
// discover the same dead context again, and after budget exhaustion would
// silently double the budget).
func solveWarm(ctx context.Context, p *Problem, warm *Basis, cfg solverConfig) (*Solution, *revised) {
	sf, preStatus := newStdForm(p)
	if preStatus != Optimal {
		// Trivial presolve verdicts don't depend on the starting basis.
		return &Solution{Status: preStatus}, nil
	}
	if !warm.compatible(sf) {
		return nil, nil
	}
	r := newRevised(ctx, sf, false, cfg)
	copy(r.basis, warm.cols)
	r.rebuildPos()
	// The warm path skips r.solve(), so it owns its flight-recorder
	// start/finish pair; a fallback to the cold path is a separate attempt
	// with its own pair.
	r.emit("start")
	defer r.finishMon()
	if !r.refactor() {
		return nil, nil // singular basis matrix under the new data
	}
	// Artificial variables may legitimately sit in an optimal basis (from a
	// redundant constraint) but only at level zero; a nonzero artificial
	// means the basis does not describe a feasible point of the new problem.
	for i, b := range r.basis {
		if b >= sf.nv+sf.ns && math.Abs(r.xB[i]) > 1e-7 {
			return nil, nil
		}
	}
	if !r.primalFeasible() {
		// A pure RHS change (Pareto sweep neighbours) leaves the exported
		// basis dual feasible — reduced costs do not depend on the RHS — so
		// dual-simplex restoration is the natural repair. A coefficient
		// change (an SR-drift patch rewrote parts of A) can break both
		// feasibilities at once; then the dual entry condition fails, but
		// phase2's own repair loop — optimize treating the negative basics
		// as degenerate, exact refactorization, dual-simplex restore at the
		// now dual-feasible optimum — still converges from the stale basis,
		// and any failure there falls back to a cold solve below.
		if r.dualFeasible() && !r.dualSimplex() {
			if r.budgetExceeded() {
				return &Solution{Status: BudgetExceeded, Iterations: r.iterations, Refactorizations: r.refactors}, nil
			}
			if r.cancelled() {
				return &Solution{Status: Cancelled, Iterations: r.iterations, Refactorizations: r.refactors}, nil
			}
			return nil, nil
		}
	}
	sol := r.phase2()
	if sol.Status == Cancelled || sol.Status == BudgetExceeded {
		return sol, nil
	}
	if sol.Status != Optimal || !sf.verify(sol.X) {
		return nil, nil // let the battle-tested cold path have it
	}
	sol.WarmStarted = true
	return sol, r
}
