package lp

import (
	"fmt"
	"math"
)

// Basis captures the optimal simplex basis of a solved Problem together with
// a fingerprint of the standard form it belongs to. Passing it to
// SolveWithBasis on a structurally identical problem (same variables, same
// constraint rows up to right-hand-side values — e.g. consecutive points of
// a Pareto sweep, where only one bound value moves) lets the solver skip
// phase 1 entirely: the basis is refactorized against the new data, primal
// feasibility is restored with dual-simplex pivots if the RHS change made it
// infeasible, and only then does the ordinary phase-2 iteration run. When
// the basis does not carry over (different standard-form shape, singular
// basis matrix, or dual pivoting fails), the solver transparently falls back
// to a cold two-phase solve. Warm starting therefore never changes the
// status or the optimal value; on degenerate problems with multiple optima
// it may land on a different optimal vertex (a different X of equal
// objective) than the cold path would.
type Basis struct {
	cols       []int
	nv, ns, na int
}

// NumRows returns the number of constraint rows the basis covers.
func (b *Basis) NumRows() int { return len(b.cols) }

// String summarizes the basis shape for diagnostics.
func (b *Basis) String() string {
	return fmt.Sprintf("lp.Basis{m=%d nv=%d ns=%d na=%d}", len(b.cols), b.nv, b.ns, b.na)
}

// exportBasis snapshots the tableau's current basis for reuse.
func (t *tableau) exportBasis() *Basis {
	cols := make([]int, t.m)
	copy(cols, t.basis)
	return &Basis{cols: cols, nv: t.nv, ns: t.ns, na: t.na}
}

// compatible reports whether the basis plausibly belongs to the tableau's
// standard form: same column-space shape, one distinct in-range column per
// row. It cannot detect every mismatch (a reordered problem with identical
// shape passes), but any accepted basis is still just a starting point — the
// solve refactorizes against the actual data and verifies the final answer,
// so a semantically stale basis costs pivots, never correctness.
func (b *Basis) compatible(t *tableau) bool {
	if b == nil || b.nv != t.nv || b.ns != t.ns || b.na != t.na || len(b.cols) != t.m {
		return false
	}
	seen := make(map[int]bool, t.m)
	for _, c := range b.cols {
		if c < 0 || c >= t.nTot || seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}

// SolveWithBasis solves the problem like Solve, optionally warm-starting
// from the basis of a previous structurally identical solve. On an Optimal
// status it also returns the optimal basis for chaining into the next solve;
// otherwise the returned basis is nil. A nil warm basis is a cold solve.
func SolveWithBasis(p *Problem, warm *Basis) (*Solution, *Basis, error) {
	var sol *Solution
	var t *tableau
	if warm != nil {
		sol, t = solveWarm(p, warm)
	}
	if sol == nil {
		sol, t = solveOnce(p, false)
		if sol.Status == Numerical {
			// Retry with Bland's rule from the start and aggressive
			// refactorization; slower but maximally stable.
			sol, t = solveOnce(p, true)
		}
	}
	if sol.Status != Optimal {
		return sol, nil, fmt.Errorf("lp: %v: %w", sol.Status, ErrNotOptimal)
	}
	// Activities and objective are recomputed from the original data.
	sol.Activities = make([]float64, len(p.Cons))
	for i, c := range p.Cons {
		a := 0.0
		for j, v := range c.Coeffs {
			a += v * sol.X[j]
		}
		sol.Activities[i] = a
	}
	obj := 0.0
	for j, v := range p.Obj {
		obj += v * sol.X[j]
	}
	sol.Objective = obj
	return sol, t.exportBasis(), nil
}

// solveWarm attempts a warm-started solve. It returns (nil, nil) whenever
// the basis cannot be reused, signalling the caller to fall back to a cold
// solve; a non-nil Solution is definitive (the presolve-infeasible case or a
// completed, verified phase-2 run).
func solveWarm(p *Problem, warm *Basis) (*Solution, *tableau) {
	t, preStatus := newTableau(p, false)
	if preStatus != Optimal {
		// Trivial presolve verdicts don't depend on the starting basis.
		return &Solution{Status: preStatus}, nil
	}
	if !warm.compatible(t) {
		return nil, nil
	}
	copy(t.basis, warm.cols)
	if !t.refresh(t.cost2) {
		return nil, nil // singular basis matrix under the new data
	}
	// Artificial variables may legitimately sit in an optimal basis (from a
	// redundant constraint) but only at level zero; a nonzero artificial
	// means the basis does not describe a feasible point of the new problem.
	for i, b := range t.basis {
		if b >= t.nv+t.ns && math.Abs(t.rows[i][t.nTot]) > 1e-7 {
			return nil, nil
		}
	}
	if !t.primalFeasible() {
		// The RHS change broke primal feasibility. At an exported optimal
		// basis the reduced costs are still nonnegative (they do not depend
		// on the RHS), which is exactly the dual-simplex entry condition.
		if !t.dualFeasible() || !t.dualSimplex() {
			return nil, nil
		}
	}
	sol := t.phase2()
	if sol.Status != Optimal || !t.verify(sol.X) {
		return nil, nil // let the battle-tested cold path have it
	}
	sol.WarmStarted = true
	return sol, t
}

// primalFeasible reports whether every basic value is nonnegative (up to
// roundoff slack left by non-refactorized pivots).
func (t *tableau) primalFeasible() bool {
	for _, r := range t.rows {
		if r[t.nTot] < -1e-9 {
			return false
		}
	}
	return true
}

// dualFeasible reports whether every priced (non-artificial) column has a
// nonnegative phase-2 reduced cost, the precondition for dual simplex.
func (t *tableau) dualFeasible() bool {
	for j := 0; j < t.nv+t.ns; j++ {
		if t.obj[j] < -costTol {
			return false
		}
	}
	return true
}

// dualSimplex restores primal feasibility of a dual-feasible basis: the row
// with the most negative basic value leaves, and the entering column is
// chosen by the dual ratio test over that row's strictly negative entries
// (ties broken toward the largest pivot magnitude for stability). Like the
// primal phases it refactorizes every refreshEvery pivots. It returns false
// when no entering column exists (the new problem is primal infeasible from
// this basis) or the pivot limit is hit; callers then fall back to a cold
// solve rather than trusting a half-converged tableau.
func (t *tableau) dualSimplex() bool {
	maxCol := t.nv + t.ns
	limit := 1000 + 400*(t.m+t.nTot)
	sinceRefresh := 0
	for iter := 0; ; iter++ {
		if iter > limit {
			return false
		}
		if sinceRefresh >= t.refreshEvery {
			t.refresh(t.cost2)
			sinceRefresh = 0
		}
		row, worst := -1, -1e-9
		for i, r := range t.rows {
			if v := r[t.nTot]; v < worst {
				worst, row = v, i
			}
		}
		if row < 0 {
			return true
		}
		r := t.rows[row]
		col, bestRatio, bestMag := -1, math.Inf(1), 0.0
		for j := 0; j < maxCol; j++ {
			a := r[j]
			if a >= -pivotTol {
				continue
			}
			rc := t.obj[j]
			if rc < 0 {
				rc = 0 // roundoff on a nonbasic column: treat as degenerate
			}
			ratio := rc / -a
			tol := 1e-9 * (1 + math.Abs(bestRatio))
			switch {
			case ratio < bestRatio-tol:
				col, bestRatio, bestMag = j, ratio, -a
			case ratio <= bestRatio+tol && -a > bestMag:
				col, bestMag = j, -a
				if ratio < bestRatio {
					bestRatio = ratio
				}
			}
		}
		if col < 0 {
			return false
		}
		t.pivot(row, col)
		sinceRefresh++
	}
}
