package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// exampleSP builds the two-state on/off service provider of paper
// Example 3.1 with the power figures of Example A.2: under s_on the off
// state wakes with probability 0.1 per slice (expected 10 slices); under
// s_off the on state falls asleep with probability 0.9; service rate 0.8
// only when on and commanded on; power 3 W on, 0 W off, 4 W while forcing a
// transition.
func exampleSP() *ServiceProvider {
	return &ServiceProvider{
		Name:     "example",
		States:   []string{"on", "off"},
		Commands: []string{"s_on", "s_off"},
		P: []*mat.Matrix{
			mat.FromRows([][]float64{{1, 0}, {0.1, 0.9}}), // s_on
			mat.FromRows([][]float64{{0.1, 0.9}, {0, 1}}), // s_off
		},
		ServiceRate: mat.FromRows([][]float64{{0.8, 0}, {0, 0}}),
		Power:       mat.FromRows([][]float64{{3, 4}, {4, 0}}),
	}
}

// exampleSR is the bursty workload of Example 3.2: P(1→1)=0.85 (mean burst
// 6.67 slices).
func exampleSR() *ServiceRequester {
	return TwoStateSR("bursty", 0.10, 0.15)
}

// exampleSystem composes them with two queue states (capacity 1), giving
// the eight-state system of Examples 3.5/A.1/A.2.
func exampleSystem() *System {
	return &System{Name: "example", SP: exampleSP(), SR: exampleSR(), QueueCap: 1}
}

func buildExample(t *testing.T) *Model {
	t.Helper()
	m, err := exampleSystem().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestProviderValidate(t *testing.T) {
	sp := exampleSP()
	if err := sp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := exampleSP()
	bad.ServiceRate.Set(0, 0, 1.5)
	if err := bad.Validate(); err == nil {
		t.Errorf("service rate 1.5 accepted")
	}
	bad2 := exampleSP()
	bad2.P[0].Set(0, 0, 0.5) // row no longer sums to 1
	if err := bad2.Validate(); err == nil {
		t.Errorf("non-stochastic SP accepted")
	}
	bad3 := exampleSP()
	bad3.P = bad3.P[:1]
	if err := bad3.Validate(); err == nil {
		t.Errorf("missing command matrix accepted")
	}
}

func TestProviderIndexLookups(t *testing.T) {
	sp := exampleSP()
	if sp.StateIndex("off") != 1 || sp.StateIndex("nope") != -1 {
		t.Errorf("StateIndex lookup failed")
	}
	if sp.CommandIndex("s_off") != 1 || sp.CommandIndex("nope") != -1 {
		t.Errorf("CommandIndex lookup failed")
	}
}

func TestProviderExpectedTransitionTime(t *testing.T) {
	sp := exampleSP()
	// off→on under s_on is geometric with p=0.1: expected 10 slices
	// (paper Example 3.1).
	got, err := sp.ExpectedTransitionTime(1, 0, 0)
	if err != nil {
		t.Fatalf("ExpectedTransitionTime: %v", err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("E[off→on | s_on] = %g, want 10", got)
	}
	// on→off under s_off: p=0.9 → 1/0.9.
	got, err = sp.ExpectedTransitionTime(0, 1, 1)
	if err != nil {
		t.Fatalf("ExpectedTransitionTime: %v", err)
	}
	if math.Abs(got-1/0.9) > 1e-9 {
		t.Errorf("E[on→off | s_off] = %g, want %g", got, 1/0.9)
	}
	// off→on under s_off is impossible.
	if _, err := sp.ExpectedTransitionTime(1, 0, 1); err == nil {
		t.Errorf("unreachable transition did not error")
	}
}

func TestRequesterValidateAndRate(t *testing.T) {
	sr := exampleSR()
	if err := sr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Stationary busy fraction = p01/(p01+p10) = 0.1/0.25 = 0.4; one
	// request per busy slice.
	rate, err := sr.MeanArrivalRate()
	if err != nil {
		t.Fatalf("MeanArrivalRate: %v", err)
	}
	if math.Abs(rate-0.4) > 1e-12 {
		t.Errorf("MeanArrivalRate = %g, want 0.4", rate)
	}
	bad := exampleSR()
	bad.Requests = []int{0, -1}
	if err := bad.Validate(); err == nil {
		t.Errorf("negative request count accepted")
	}
}

func TestSystemIndexRoundTrip(t *testing.T) {
	sys := exampleSystem()
	n := sys.NumStates()
	if n != 8 {
		t.Fatalf("NumStates = %d, want 8 (Example 3.5)", n)
	}
	for i := 0; i < n; i++ {
		st := sys.StateOf(i)
		if got := sys.Index(st); got != i {
			t.Errorf("Index(StateOf(%d)) = %d", i, got)
		}
	}
	if name := sys.StateName(sys.Index(State{SP: 0, SR: 1, Q: 1})); name != "(on,1,1)" {
		t.Errorf("StateName = %q", name)
	}
}

func TestBuildComposedMatricesStochastic(t *testing.T) {
	m := buildExample(t)
	if len(m.P) != 2 {
		t.Fatalf("got %d command matrices", len(m.P))
	}
	for a, p := range m.P {
		if err := p.CheckStochastic(1e-9); err != nil {
			t.Errorf("command %d: %v", a, err)
		}
	}
}

// TestExample35Fragment verifies the composed transition probability of
// paper Example 3.5: from (on, 0, 0) to (on, 1, 0) under s_on the
// probability is p01 · b(on,s_on) · p_on,on(s_on); under s_off it is zero
// because the service rate vanishes and the arriving request must occupy
// the queue.
func TestExample35Fragment(t *testing.T) {
	sys := exampleSystem()
	m := buildExample(t)
	from := sys.Index(State{SP: 0, SR: 0, Q: 0})
	to := sys.Index(State{SP: 0, SR: 1, Q: 0})
	want := 0.10 * 0.8 * 1.0
	if got := m.P[0].At(from, to); math.Abs(got-want) > 1e-12 {
		t.Errorf("P[s_on](%d,%d) = %g, want %g", from, to, got, want)
	}
	if got := m.P[1].At(from, to); got != 0 {
		t.Errorf("P[s_off](%d,%d) = %g, want 0", from, to, got)
	}
	// Same arrival but the request is enqueued instead: (on,1,1) under
	// s_off has probability p01 · p_on,on(s_off) · 1.
	toQ := sys.Index(State{SP: 0, SR: 1, Q: 1})
	want = 0.10 * 0.1 * 1.0
	if got := m.P[1].At(from, toQ); math.Abs(got-want) > 1e-12 {
		t.Errorf("P[s_off](%d,%d) = %g, want %g", from, toQ, got, want)
	}
}

func TestDefaultMetrics(t *testing.T) {
	sys := exampleSystem()
	m := buildExample(t)
	power, _ := m.Metric(MetricPower)
	penalty, _ := m.Metric(MetricPenalty)
	loss, _ := m.Metric(MetricLoss)
	service, _ := m.Metric(MetricService)

	iOn00 := sys.Index(State{SP: 0, SR: 0, Q: 0})
	if power.At(iOn00, 0) != 3 || power.At(iOn00, 1) != 4 {
		t.Errorf("power row (on,0,0) = %v", power.Row(iOn00))
	}
	iFull := sys.Index(State{SP: 1, SR: 1, Q: 1})
	if penalty.At(iFull, 0) != 1 {
		t.Errorf("penalty at full queue = %g, want 1", penalty.At(iFull, 0))
	}
	if loss.At(iFull, 0) != 1 {
		t.Errorf("loss at (off,1,full) = %g, want 1", loss.At(iFull, 0))
	}
	iNoReq := sys.Index(State{SP: 1, SR: 0, Q: 1})
	if loss.At(iNoReq, 0) != 0 {
		t.Errorf("loss with no requests = %g, want 0", loss.At(iNoReq, 0))
	}
	if service.At(iOn00, 0) != 0.8 || service.At(iOn00, 1) != 0 {
		t.Errorf("service row (on,·) = %v", service.Row(iOn00))
	}
	if _, err := m.Metric("nonsense"); err == nil {
		t.Errorf("unknown metric did not error")
	}
}

func TestCustomMetricHooks(t *testing.T) {
	sys := exampleSystem()
	sys.PenaltyFn = func(st State, cmd int) float64 {
		if st.SR == 1 && st.SP == 1 {
			return 1
		}
		return 0
	}
	sys.LossFn = func(st State, cmd int) float64 { return 2.5 }
	sys.ExtraMetrics = map[string]func(State, int) float64{
		"constant": func(State, int) float64 { return 7 },
	}
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	penalty, _ := m.Metric(MetricPenalty)
	i := sys.Index(State{SP: 1, SR: 1, Q: 0})
	if penalty.At(i, 0) != 1 {
		t.Errorf("custom penalty = %g, want 1", penalty.At(i, 0))
	}
	loss, _ := m.Metric(MetricLoss)
	if loss.At(0, 0) != 2.5 {
		t.Errorf("custom loss = %g", loss.At(0, 0))
	}
	extra, err := m.Metric("constant")
	if err != nil {
		t.Fatalf("extra metric: %v", err)
	}
	if extra.At(3, 1) != 7 {
		t.Errorf("extra metric = %g, want 7", extra.At(3, 1))
	}
}

func TestSPRowOverride(t *testing.T) {
	sys := exampleSystem()
	// Wake-on-request: when the SR is busy, the SP moves toward on
	// regardless of command.
	wake := mat.Vector{1, 0}
	sys.SPRow = func(p, cmd, r int) mat.Vector {
		if r == 1 && p == 1 {
			return wake
		}
		return nil // fall back to the SP matrix
	}
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	from := sys.Index(State{SP: 1, SR: 1, Q: 0})
	// Under s_off the SP would normally stay off; with the override all SP
	// mass lands on "on".
	massOn := 0.0
	for j := 0; j < m.N; j++ {
		if sys.StateOf(j).SP == 0 {
			massOn += m.P[1].At(from, j)
		}
	}
	if math.Abs(massOn-1) > 1e-12 {
		t.Errorf("override: mass on SP=on is %g, want 1", massOn)
	}
}

func TestSPRowOverrideValidation(t *testing.T) {
	sys := exampleSystem()
	sys.SPRow = func(p, cmd, r int) mat.Vector { return mat.Vector{0.5, 0.4} }
	if _, err := sys.Build(); err == nil {
		t.Errorf("non-distribution override accepted")
	}
	sys.SPRow = func(p, cmd, r int) mat.Vector { return mat.Vector{1} }
	if _, err := sys.Build(); err == nil {
		t.Errorf("short override accepted")
	}
}

// randomSystem builds a random but valid system for property tests.
func randomSystem(r *rand.Rand) *System {
	nsp := 2 + r.Intn(3)
	ncmd := 1 + r.Intn(3)
	nsr := 1 + r.Intn(3)
	qcap := r.Intn(3)

	spStates := make([]string, nsp)
	for i := range spStates {
		spStates[i] = string(rune('a' + i))
	}
	cmds := make([]string, ncmd)
	for i := range cmds {
		cmds[i] = string(rune('A' + i))
	}
	ps := make([]*mat.Matrix, ncmd)
	for a := range ps {
		p := mat.NewMatrix(nsp, nsp)
		for i := 0; i < nsp; i++ {
			row := p.Row(i)
			sum := 0.0
			for j := range row {
				row[j] = r.Float64() + 1e-6
				sum += row[j]
			}
			row.Scale(1 / sum)
		}
		ps[a] = p
	}
	rate := mat.NewMatrix(nsp, ncmd)
	pw := mat.NewMatrix(nsp, ncmd)
	for i := 0; i < nsp; i++ {
		for a := 0; a < ncmd; a++ {
			rate.Set(i, a, r.Float64())
			pw.Set(i, a, r.Float64()*5)
		}
	}

	srStates := make([]string, nsr)
	reqs := make([]int, nsr)
	for i := range srStates {
		srStates[i] = string(rune('0' + i))
		reqs[i] = r.Intn(3)
	}
	srP := mat.NewMatrix(nsr, nsr)
	for i := 0; i < nsr; i++ {
		row := srP.Row(i)
		sum := 0.0
		for j := range row {
			row[j] = r.Float64() + 1e-6
			sum += row[j]
		}
		row.Scale(1 / sum)
	}

	return &System{
		Name:     "random",
		SP:       &ServiceProvider{Name: "sp", States: spStates, Commands: cmds, P: ps, ServiceRate: rate, Power: pw},
		SR:       &ServiceRequester{Name: "sr", States: srStates, P: srP, Requests: reqs},
		QueueCap: qcap,
	}
}

// Property: composition of random valid components is row-stochastic for
// every command, and marginalizing the composed chain over (SP, queue)
// recovers the SR chain (the SR is autonomous).
func TestCompositionProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sys := randomSystem(r)
		m, err := sys.Build()
		if err != nil {
			return false
		}
		for _, p := range m.P {
			if !p.IsStochastic(1e-9) {
				return false
			}
		}
		// SR marginal: for any composed state i with SR part r0, the total
		// probability of reaching SR part r1 must equal SR.P[r0][r1].
		for a := 0; a < m.A; a++ {
			for i := 0; i < m.N; i++ {
				st := sys.StateOf(i)
				for r1 := 0; r1 < sys.SR.N(); r1++ {
					total := 0.0
					for j := 0; j < m.N; j++ {
						if sys.StateOf(j).SR == r1 {
							total += m.P[a].At(i, j)
						}
					}
					if math.Abs(total-sys.SR.P.At(st.SR, r1)) > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDeltaAndUniform(t *testing.T) {
	d := Delta(4, 2)
	if d[2] != 1 || d.Sum() != 1 {
		t.Errorf("Delta = %v", d)
	}
	u := Uniform(5)
	if !u.IsDistribution(1e-12) || u[0] != 0.2 {
		t.Errorf("Uniform = %v", u)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Delta out of range did not panic")
		}
	}()
	Delta(3, 3)
}
