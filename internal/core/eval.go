package core

// Matrix-free evaluation of composed systems: the composed chain of Eq. 4 is
// not a plain Kronecker product — the queue couples to the SP's service rate
// and to the destination SR state's arrivals — but it factors exactly into
// three stages (SR, queue, SP), each applied without the composed CSR:
//
//	P[(p,r,q) → (p',r',q')] = SP_a[p,p'] · SR[r,r'] · QK_{b(p,a), req(r')}[q,q']
//
// so one application sweeps the SR factor (a lazy I ⊗ SR ⊗ I product), then
// the per-(p, r') queue kernels (banded (Q+1)×(Q+1) rows, deduplicated by
// distinct service rate), then the SP factor — which for a FactoredSP is
// itself a lazy Kronecker product over the part chains. Total cost per
// matvec: O(n·(deg(SR) + 2)) for the first two stages plus
// Σᵢ nnz(partᵢ)·(n/|Sᵢ|) for the SP stage; total extra memory O(n). The
// expanded Model (Π-sized joint CSR per command) is never compiled.
//
// SystemOp (one fixed command) and PolicyOp (a stationary randomized policy
// mixing SystemOps) implement markov.Op and markov.ValueOp, so every
// iterative chain query — stationary distributions, discounted values,
// discounted occupancies — and the simulator's row sampling run against them
// directly; EvaluateFactored is the Model-free mirror of Evaluate.

import (
	"fmt"

	"repro/internal/markov"
	"repro/internal/mat"
)

// SystemOp applies the composed chain of a hook-free System under one fixed
// command, matrix-free. It implements markov.Op and markov.ValueOp.
//
// MulVec/MulVecT (and the Into variants) share per-operator scratch and must
// not run concurrently on one SystemOp; RowSample and the accessors are safe
// for concurrent use.
type SystemOp struct {
	sys *System
	cmd int

	nsp, nsr, nq, n int

	spStage *mat.KronOp // (SP factors…, I_{nsr·nq}) — p is the slow digit group
	srStage *mat.KronOp // (I_{nsp}, SR, I_{nq})
	srCSR   *mat.CSR    // SR chain, for row sampling

	// Queue kernels, deduplicated by distinct service rate: kernels[bIdx[p]]
	// holds, per destination SR state r', the (Q+1)×(Q+1) queue transition
	// matrix under service rate b(p, cmd) and arrivals req(r').
	bIdx    []int
	kernels [][]*mat.Matrix

	bufU, bufW mat.Vector // stage scratch
}

// CommandOp builds the matrix-free composed operator of the system under
// command cmd. Systems with an SPRow hook (SP dynamics coupled to the SR
// state beyond Eq. 4) cannot be factored this way and return an error — they
// must compile through Build.
func (sys *System) CommandOp(cmd int) (*SystemOp, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if sys.SPRow != nil {
		return nil, fmt.Errorf("core: system %q has an SPRow hook; the composed chain is not factorable, use Build", sys.Name)
	}
	if cmd < 0 || cmd >= sys.SP.A() {
		return nil, fmt.Errorf("core: system %q has no command %d", sys.Name, cmd)
	}
	nsp, nsr, nq := sys.SP.N(), sys.SR.N(), sys.QueueCap+1
	op := &SystemOp{
		sys: sys, cmd: cmd,
		nsp: nsp, nsr: nsr, nq: nq, n: nsp * nsr * nq,
		srCSR: mat.FromDense(sys.SR.P),
	}
	var spFactors []*mat.CSR
	if fsp, ok := sys.SP.(*FactoredSP); ok {
		// The part factors stay factored: the SP sweep costs
		// Σᵢ nnz(partᵢ)·(n/|Sᵢ|), and no joint SP CSR is compiled.
		spFactors = append(spFactors, fsp.factors[cmd]...)
	} else {
		spFactors = append(spFactors, sys.SP.Chain(cmd))
	}
	spFactors = append(spFactors, mat.IdentityCSR(nsr*nq))
	op.spStage = mat.NewKronOp(spFactors...)
	op.srStage = mat.NewKronOp(mat.IdentityCSR(nsp), op.srCSR, mat.IdentityCSR(nq))

	op.bIdx = make([]int, nsp)
	seen := make(map[float64]int)
	for p := 0; p < nsp; p++ {
		b := sys.SP.RateAt(p, cmd)
		bi, ok := seen[b]
		if !ok {
			bi = len(op.kernels)
			seen[b] = bi
			ker := make([]*mat.Matrix, nsr)
			for r := 0; r < nsr; r++ {
				ker[r] = QueueMatrix(sys.QueueCap, b, sys.SR.Requests[r])
			}
			op.kernels = append(op.kernels, ker)
		}
		op.bIdx[p] = bi
	}
	op.bufU = mat.NewVector(op.n)
	op.bufW = mat.NewVector(op.n)
	return op, nil
}

// Rows returns the composed state count.
func (op *SystemOp) Rows() int { return op.n }

// Cols returns the composed state count (the operator is square).
func (op *SystemOp) Cols() int { return op.n }

// Command returns the fixed command the operator applies.
func (op *SystemOp) Command() int { return op.cmd }

// MulVecTInto computes dst = x·P (one distribution step of the composed
// chain) in the three factored sweeps. dst must not alias x.
func (op *SystemOp) MulVecTInto(dst, x mat.Vector) {
	// Stage 1: contract the current SR state; bufU(p, r', q) holds the mass
	// arriving at destination SR state r'.
	op.srStage.MulVecTInto(op.bufU, x)
	// Stage 2: queue law per (p, r') — the kernel depends on the current SP
	// state's service rate and the destination SR state's arrivals, which is
	// exactly why it must run after the SR contraction and before the SP one.
	for i := range op.bufW {
		op.bufW[i] = 0
	}
	for p := 0; p < op.nsp; p++ {
		kb := op.kernels[op.bIdx[p]]
		for r := 0; r < op.nsr; r++ {
			km := kb[r]
			base := (p*op.nsr + r) * op.nq
			for q := 0; q < op.nq; q++ {
				xv := op.bufU[base+q]
				if xv == 0 {
					continue
				}
				row := km.Row(q)
				for qn, v := range row {
					if v != 0 {
						op.bufW[base+qn] += v * xv
					}
				}
			}
		}
	}
	// Stage 3: contract the current SP state.
	op.spStage.MulVecTInto(dst, op.bufW)
}

// MulVecT returns x·P.
func (op *SystemOp) MulVecT(x mat.Vector) mat.Vector {
	out := mat.NewVector(op.n)
	op.MulVecTInto(out, x)
	return out
}

// MulVecInto computes dst = P·v (the value-vector application), running the
// three sweeps in the reverse order. dst must not alias v.
func (op *SystemOp) MulVecInto(dst, v mat.Vector) {
	// Stage 1: expand over destination SP states; bufU(p, r', q') holds
	// Σ_{p'} SP[p,p']·v(p', r', q').
	op.spStage.MulVecInto(op.bufU, v)
	// Stage 2: queue rows dot the destination backlog axis.
	for p := 0; p < op.nsp; p++ {
		kb := op.kernels[op.bIdx[p]]
		for r := 0; r < op.nsr; r++ {
			km := kb[r]
			base := (p*op.nsr + r) * op.nq
			for q := 0; q < op.nq; q++ {
				row := km.Row(q)
				s := 0.0
				for qn, w := range row {
					if w != 0 {
						s += w * op.bufU[base+qn]
					}
				}
				op.bufW[base+q] = s
			}
		}
	}
	// Stage 3: expand over destination SR states.
	op.srStage.MulVecInto(dst, op.bufW)
}

// MulVec returns P·v.
func (op *SystemOp) MulVec(v mat.Vector) mat.Vector {
	out := mat.NewVector(op.n)
	op.MulVecInto(out, v)
	return out
}

// RowSample draws a successor of composed state i: the SP parts first (one
// uniform per non-identity part factor, slowest joint digit first — the
// FactoredSP.SampleNext order), then the SR state, then the queue backlog
// from the (b(p,cmd), req(r')) kernel row. Allocation-free; safe for
// concurrent use.
func (op *SystemOp) RowSample(i int, u func() float64) int {
	p := i / (op.nsr * op.nq)
	r := (i / op.nq) % op.nsr
	q := i % op.nq

	// The identity tail factor passes (r, q) through without a draw, so the
	// joint sample's slow digit group is exactly the SP successor.
	pNext := op.spStage.RowSample(i, u) / (op.nsr * op.nq)
	rNext := op.srCSR.RowSample(r, u)
	row := op.kernels[op.bIdx[p]][rNext].Row(q)
	qNext := sampleDenseRow(row, u())
	return (pNext*op.nsr+rNext)*op.nq + qNext
}

// sampleDenseRow walks a dense probability row against one uniform,
// clamping residual mass to the last positive entry (the simulator's
// convention).
func sampleDenseRow(row []float64, u float64) int {
	last := 0
	for j, p := range row {
		if p <= 0 {
			continue
		}
		last = j
		u -= p
		if u <= 0 {
			return j
		}
	}
	return last
}

// PolicyOp applies the composed chain of a system under a stationary
// randomized policy — P^π = Σ_a π(s,a)·P_a rowwise (Eq. 5) — by mixing the
// per-command SystemOps. Commands the policy never issues are skipped
// entirely. It implements markov.Op and markov.ValueOp; like SystemOp, the
// matvec methods share scratch and must not run concurrently.
type PolicyOp struct {
	n    int
	pol  *Policy
	ops  []*SystemOp
	used []bool

	bufMask, bufAcc, bufTmp mat.Vector
}

// PolicyOp builds the matrix-free policy-composed operator. The policy must
// cover the composed state space (N = NumStates rows, one column per
// command).
func (sys *System) PolicyOp(pol *Policy) (*PolicyOp, error) {
	n, a := sys.NumStates(), sys.SP.A()
	if pol.N() != n || pol.A() != a {
		return nil, fmt.Errorf("core: policy is %dx%d, system wants %dx%d", pol.N(), pol.A(), n, a)
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	po := &PolicyOp{
		n:       n,
		pol:     pol,
		ops:     make([]*SystemOp, a),
		used:    make([]bool, a),
		bufMask: mat.NewVector(n),
		bufAcc:  mat.NewVector(n),
		bufTmp:  mat.NewVector(n),
	}
	for s := 0; s < n; s++ {
		for cmd, w := range pol.CommandDist(s) {
			if w != 0 {
				po.used[cmd] = true
			}
		}
	}
	for cmd := range po.ops {
		if !po.used[cmd] {
			continue
		}
		op, err := sys.CommandOp(cmd)
		if err != nil {
			return nil, err
		}
		po.ops[cmd] = op
	}
	return po, nil
}

// Rows returns the composed state count.
func (po *PolicyOp) Rows() int { return po.n }

// Cols returns the composed state count.
func (po *PolicyOp) Cols() int { return po.n }

// MulVecTInto computes dst = x·P^π: each issued command's operator is
// applied to the π(·,a)-masked slice of x and the results accumulate.
func (po *PolicyOp) MulVecTInto(dst, x mat.Vector) {
	for i := range po.bufAcc {
		po.bufAcc[i] = 0
	}
	for cmd, op := range po.ops {
		if op == nil {
			continue
		}
		any := false
		for s := 0; s < po.n; s++ {
			m := po.pol.M.At(s, cmd) * x[s]
			po.bufMask[s] = m
			if m != 0 {
				any = true
			}
		}
		if !any {
			continue
		}
		op.MulVecTInto(po.bufTmp, po.bufMask)
		for i, v := range po.bufTmp {
			po.bufAcc[i] += v
		}
	}
	copy(dst, po.bufAcc)
}

// MulVecT returns x·P^π.
func (po *PolicyOp) MulVecT(x mat.Vector) mat.Vector {
	out := mat.NewVector(po.n)
	po.MulVecTInto(out, x)
	return out
}

// MulVecInto computes dst = P^π·v: per-command applications mixed rowwise
// by the policy.
func (po *PolicyOp) MulVecInto(dst, v mat.Vector) {
	for i := range po.bufAcc {
		po.bufAcc[i] = 0
	}
	for cmd, op := range po.ops {
		if op == nil {
			continue
		}
		op.MulVecInto(po.bufTmp, v)
		for s := 0; s < po.n; s++ {
			if w := po.pol.M.At(s, cmd); w != 0 {
				po.bufAcc[s] += w * po.bufTmp[s]
			}
		}
	}
	copy(dst, po.bufAcc)
}

// MulVec returns P^π·v.
func (po *PolicyOp) MulVec(v mat.Vector) mat.Vector {
	out := mat.NewVector(po.n)
	po.MulVecInto(out, v)
	return out
}

// RowSample draws a command from π(s,·), then a successor from that
// command's operator. Not safe for concurrent use with the matvec methods
// (it shares no scratch itself, but the command draw reads the policy matrix
// only, so concurrent RowSample calls are fine).
func (po *PolicyOp) RowSample(s int, u func() float64) int {
	cmd := sampleDenseRow(po.pol.CommandDist(s), u())
	return po.ops[cmd].RowSample(s, u)
}

// EvaluateFactored is Evaluate without the Model: the discounted occupancy
// is computed iteratively against the matrix-free PolicyOp, and the metric
// averages come from the on-demand MetricFns — no composed CSR, no
// |S|×|A| metric tables. The same α/tolerance caveat as the iterative
// occupancy applies: α must be far enough from 1 for the default iteration
// budget (the error message says when it is not).
func EvaluateFactored(sys *System, p *Policy, q0 mat.Vector, alpha float64) (*Evaluation, error) {
	if len(q0) != sys.NumStates() {
		return nil, fmt.Errorf("core: initial distribution has %d entries, want %d", len(q0), sys.NumStates())
	}
	po, err := sys.PolicyOp(p)
	if err != nil {
		return nil, err
	}
	chain, err := markov.NewOp(po, 1e-7)
	if err != nil {
		return nil, err
	}
	occ, err := chain.DiscountedOccupancy(q0, alpha)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{Alpha: alpha, Occupancy: occ, Averages: make(map[string]float64)}
	fns := sys.MetricFns()
	for name, fn := range fns {
		sum := 0.0
		for i, y := range occ {
			if y == 0 {
				continue
			}
			st := sys.StateOf(i)
			inner := 0.0
			for a, w := range p.CommandDist(i) {
				if w != 0 {
					inner += w * fn(st, a)
				}
			}
			sum += y * inner
		}
		ev.Averages[name] = sum
	}
	return ev, nil
}
