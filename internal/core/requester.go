package core

import (
	"fmt"

	"repro/internal/markov"
	"repro/internal/mat"
)

// ServiceRequester models the environment (paper Definition 3.2): an
// autonomous stationary Markov chain whose state r issues Requests[r]
// service requests per time slice. Interarrival times are geometric within
// each state; burstiness is expressed through the chain structure.
type ServiceRequester struct {
	// Name identifies the requester in diagnostics.
	Name string
	// States names the SR states.
	States []string
	// P is the row-stochastic transition matrix.
	P *mat.Matrix
	// Requests[r] is the number of requests issued per slice in state r.
	Requests []int
}

// N returns the number of SR states.
func (sr *ServiceRequester) N() int { return len(sr.States) }

// Validate checks structural consistency.
func (sr *ServiceRequester) Validate() error {
	n := sr.N()
	if n == 0 {
		return fmt.Errorf("core: requester %q has no states", sr.Name)
	}
	if sr.P == nil || sr.P.Rows != n || sr.P.Cols != n {
		return fmt.Errorf("core: requester %q transition matrix has wrong shape", sr.Name)
	}
	if err := sr.P.CheckStochastic(0); err != nil {
		return fmt.Errorf("core: requester %q: %w", sr.Name, err)
	}
	if len(sr.Requests) != n {
		return fmt.Errorf("core: requester %q has %d request counts, want %d", sr.Name, len(sr.Requests), n)
	}
	for i, r := range sr.Requests {
		if r < 0 {
			return fmt.Errorf("core: requester %q state %q has negative request count %d", sr.Name, sr.States[i], r)
		}
	}
	return nil
}

// Chain returns the SR as a markov.Chain.
func (sr *ServiceRequester) Chain() (*markov.Chain, error) {
	if err := sr.Validate(); err != nil {
		return nil, err
	}
	return markov.New(sr.P, 0)
}

// MeanArrivalRate returns the long-run expected number of requests per slice
// under the stationary distribution of the SR chain.
func (sr *ServiceRequester) MeanArrivalRate() (float64, error) {
	c, err := sr.Chain()
	if err != nil {
		return 0, err
	}
	pi, err := c.Stationary()
	if err != nil {
		return 0, err
	}
	rate := 0.0
	for i, p := range pi {
		rate += p * float64(sr.Requests[i])
	}
	return rate, nil
}

// TwoStateSR builds the ubiquitous two-state requester used throughout the
// paper (Example 3.2 and all case studies): state 0 issues no requests,
// state 1 issues one request per slice. p01 is the probability of moving
// from idle to busy; p10 from busy to idle.
func TwoStateSR(name string, p01, p10 float64) *ServiceRequester {
	return &ServiceRequester{
		Name:   name,
		States: []string{"0", "1"},
		P: mat.FromRows([][]float64{
			{1 - p01, p01},
			{p10, 1 - p10},
		}),
		Requests: []int{0, 1},
	}
}
