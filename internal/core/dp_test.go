package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/mat"
)

// TestValueIterationMatchesLP: the three solution methods Appendix A cites
// (successive approximations, policy improvement, linear programming) must
// agree on the unconstrained optimum.
func TestValueIterationMatchesLP(t *testing.T) {
	m := buildExample(t)
	alpha := 0.99
	q0 := Uniform(m.N)

	vi, err := ValueIteration(m, MetricPower, alpha, 1e-10)
	if err != nil {
		t.Fatalf("ValueIteration: %v", err)
	}
	pi, err := PolicyIteration(m, MetricPower, alpha)
	if err != nil {
		t.Fatalf("PolicyIteration: %v", err)
	}
	lpRes, err := Optimize(m, Options{
		Alpha:          alpha,
		Initial:        q0,
		Objective:      Objective{Metric: MetricPower, Sense: lp.Minimize},
		SkipEvaluation: true,
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}

	// Value vectors agree.
	if d := vi.Value.MaxAbsDiff(pi.Value); d > 1e-7 {
		t.Errorf("VI vs PI value vectors differ by %g", d)
	}
	// LP2's per-slice objective equals (1−α)·q0·v*.
	wantObj := (1 - alpha) * q0.Dot(vi.Value)
	if math.Abs(lpRes.Objective-wantObj) > 1e-7 {
		t.Errorf("LP objective %g vs (1−α)q0·v* = %g", lpRes.Objective, wantObj)
	}
	// Both DP policies are deterministic and optimal (Theorem A.1).
	for name, r := range map[string]*DPResult{"VI": vi, "PI": pi} {
		if !r.Policy.IsDeterministic(1e-12) {
			t.Errorf("%s policy not deterministic", name)
		}
		ev, err := Evaluate(m, r.Policy, q0, alpha)
		if err != nil {
			t.Fatalf("%s evaluate: %v", name, err)
		}
		if math.Abs(ev.Average(MetricPower)-lpRes.Objective) > 1e-7 {
			t.Errorf("%s policy cost %g vs LP optimum %g", name, ev.Average(MetricPower), lpRes.Objective)
		}
	}
}

// TestLP1MatchesValueIteration: the value-function LP (LP1) recovers the
// optimal value vector.
func TestLP1MatchesValueIteration(t *testing.T) {
	m := buildExample(t)
	alpha := 0.95
	vi, err := ValueIteration(m, MetricPenalty, alpha, 1e-10)
	if err != nil {
		t.Fatalf("ValueIteration: %v", err)
	}
	v1, err := SolveLP1(m, MetricPenalty, alpha)
	if err != nil {
		t.Fatalf("SolveLP1: %v", err)
	}
	if d := vi.Value.MaxAbsDiff(v1); d > 1e-6 {
		t.Errorf("LP1 vs VI value vectors differ by %g", d)
	}
}

// TestBellmanResidual: the optimal value has (near-)zero residual, a
// perturbed one does not.
func TestBellmanResidual(t *testing.T) {
	m := buildExample(t)
	alpha := 0.9
	vi, err := ValueIteration(m, MetricPower, alpha, 1e-11)
	if err != nil {
		t.Fatalf("ValueIteration: %v", err)
	}
	res, err := BellmanResidual(m, MetricPower, alpha, vi.Value)
	if err != nil {
		t.Fatalf("BellmanResidual: %v", err)
	}
	if res > 1e-9 {
		t.Errorf("optimal value residual %g", res)
	}
	bad := vi.Value.Clone()
	bad[0] += 1
	res, err = BellmanResidual(m, MetricPower, alpha, bad)
	if err != nil {
		t.Fatalf("BellmanResidual: %v", err)
	}
	if res < 0.5 {
		t.Errorf("perturbed value residual %g, want ≈1", res)
	}
	if _, err := BellmanResidual(m, MetricPower, alpha, mat.NewVector(1)); err == nil {
		t.Errorf("short vector accepted")
	}
}

// TestDPValidation: parameter checking.
func TestDPValidation(t *testing.T) {
	m := buildExample(t)
	if _, err := ValueIteration(m, MetricPower, 1.0, 0); err == nil {
		t.Errorf("alpha=1 accepted by VI")
	}
	if _, err := PolicyIteration(m, MetricPower, -0.1); err == nil {
		t.Errorf("alpha<0 accepted by PI")
	}
	if _, err := ValueIteration(m, "bogus", 0.9, 0); err == nil {
		t.Errorf("unknown metric accepted by VI")
	}
	if _, err := SolveLP1(m, "bogus", 0.9); err == nil {
		t.Errorf("unknown metric accepted by LP1")
	}
	if _, err := SolveLP1(m, MetricPower, 1.0); err == nil {
		t.Errorf("alpha=1 accepted by LP1")
	}
}

// Property: on random systems the three solvers agree.
func TestSolverAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sys := randomSystem(r)
		m, err := sys.Build()
		if err != nil {
			return false
		}
		alpha := 0.5 + 0.45*r.Float64()
		vi, err := ValueIteration(m, MetricPower, alpha, 1e-10)
		if err != nil {
			return false
		}
		pi, err := PolicyIteration(m, MetricPower, alpha)
		if err != nil {
			return false
		}
		if vi.Value.MaxAbsDiff(pi.Value) > 1e-6 {
			return false
		}
		q0 := Uniform(m.N)
		lpRes, err := Optimize(m, Options{
			Alpha:          alpha,
			Initial:        q0,
			Objective:      Objective{Metric: MetricPower, Sense: lp.Minimize},
			SkipEvaluation: true,
		})
		if err != nil {
			return false
		}
		want := (1 - alpha) * q0.Dot(vi.Value)
		return math.Abs(lpRes.Objective-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
