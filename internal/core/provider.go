package core

import (
	"fmt"
	"io"

	"repro/internal/mat"
)

// Provider is the service-provider contract the composition pipeline and the
// tools consume: a finite controlled Markov chain exposed command-by-command
// in sparse form, per-(state, command) service rate and power, naming for
// diagnostics, and a canonical serialization for content fingerprinting.
//
// Two implementations exist: *ServiceProvider, the explicit (dense-tabled)
// form every paper case study uses, and *FactoredSP, the Kronecker-factored
// form a Composite compiles to, whose joint chain is assembled sparsely and
// whose rate/power are evaluated on demand — never tabulated densely. System
// composition (System.Build) works against this interface only, so the two
// forms are interchangeable everywhere a system is built, solved, served, or
// simulated.
type Provider interface {
	// ProviderName identifies the provider in diagnostics.
	ProviderName() string
	// N is the number of states; A the number of commands.
	N() int
	A() int
	// StateNames and CommandNames return the vocabularies; callers must not
	// mutate the returned slices.
	StateNames() []string
	CommandNames() []string
	// CommandIndex returns the index of the named command, or -1.
	CommandIndex(name string) int
	// Chain returns the transition matrix under command a in CSR form. The
	// returned matrix may be shared; callers must not mutate it.
	Chain(a int) *mat.CSR
	// RateAt returns the service rate b(s,a) in [0,1].
	RateAt(s, a int) float64
	// PowerAt returns the power consumption c(s,a).
	PowerAt(s, a int) float64
	// Validate checks structural consistency.
	Validate() error
	// WriteCanonical writes the deterministic, parameter-complete byte
	// encoding used for content fingerprinting (see fingerprint.go).
	WriteCanonical(w io.Writer) error
}

// ServiceProvider is the resource under power management (paper
// Definition 3.1): a stationary controlled Markov process with one
// transition matrix per power-manager command, a service rate b(s,a) — the
// probability of completing one request in a time slice — and a power
// consumption c(s,a) for every (state, command) pair.
type ServiceProvider struct {
	// Name identifies the provider in diagnostics.
	Name string
	// States names the SP states; len(States) is the state count.
	States []string
	// Commands names the power-manager commands; len(Commands) is the
	// command count.
	Commands []string
	// P holds one row-stochastic transition matrix per command;
	// P[a].At(s, s') is the probability of moving from state s to s' in one
	// slice when command a is asserted.
	P []*mat.Matrix
	// ServiceRate is the S×A matrix of service rates b(s,a) in [0,1].
	ServiceRate *mat.Matrix
	// Power is the S×A matrix of power consumptions c(s,a) (arbitrary
	// units, typically Watts).
	Power *mat.Matrix
}

// N returns the number of SP states.
func (sp *ServiceProvider) N() int { return len(sp.States) }

// A returns the number of commands.
func (sp *ServiceProvider) A() int { return len(sp.Commands) }

// ProviderName returns the provider's name.
func (sp *ServiceProvider) ProviderName() string { return sp.Name }

// StateNames returns the state vocabulary.
func (sp *ServiceProvider) StateNames() []string { return sp.States }

// CommandNames returns the command vocabulary.
func (sp *ServiceProvider) CommandNames() []string { return sp.Commands }

// Chain returns the transition matrix under command a compressed to CSR.
func (sp *ServiceProvider) Chain(a int) *mat.CSR { return mat.FromDense(sp.P[a]) }

// RateAt returns the service rate b(s,a).
func (sp *ServiceProvider) RateAt(s, a int) float64 { return sp.ServiceRate.At(s, a) }

// PowerAt returns the power consumption c(s,a).
func (sp *ServiceProvider) PowerAt(s, a int) float64 { return sp.Power.At(s, a) }

// StateIndex returns the index of the named state, or -1.
func (sp *ServiceProvider) StateIndex(name string) int {
	for i, s := range sp.States {
		if s == name {
			return i
		}
	}
	return -1
}

// CommandIndex returns the index of the named command, or -1.
func (sp *ServiceProvider) CommandIndex(name string) int {
	for i, c := range sp.Commands {
		if c == name {
			return i
		}
	}
	return -1
}

// Validate checks structural consistency: matching dimensions, stochastic
// rows, service rates in [0,1].
func (sp *ServiceProvider) Validate() error {
	n, a := sp.N(), sp.A()
	if n == 0 {
		return fmt.Errorf("core: provider %q has no states", sp.Name)
	}
	if a == 0 {
		return fmt.Errorf("core: provider %q has no commands", sp.Name)
	}
	if len(sp.P) != a {
		return fmt.Errorf("core: provider %q has %d transition matrices, want %d", sp.Name, len(sp.P), a)
	}
	for cmd, p := range sp.P {
		if p == nil {
			return fmt.Errorf("core: provider %q command %q has nil transition matrix", sp.Name, sp.Commands[cmd])
		}
		if p.Rows != n || p.Cols != n {
			return fmt.Errorf("core: provider %q command %q matrix is %dx%d, want %dx%d",
				sp.Name, sp.Commands[cmd], p.Rows, p.Cols, n, n)
		}
		if err := p.CheckStochastic(0); err != nil {
			return fmt.Errorf("core: provider %q command %q: %w", sp.Name, sp.Commands[cmd], err)
		}
	}
	for name, m := range map[string]*mat.Matrix{"ServiceRate": sp.ServiceRate, "Power": sp.Power} {
		if m == nil {
			return fmt.Errorf("core: provider %q has nil %s", sp.Name, name)
		}
		if m.Rows != n || m.Cols != a {
			return fmt.Errorf("core: provider %q %s is %dx%d, want %dx%d", sp.Name, name, m.Rows, m.Cols, n, a)
		}
	}
	for s := 0; s < n; s++ {
		for cmd := 0; cmd < a; cmd++ {
			b := sp.ServiceRate.At(s, cmd)
			if b < 0 || b > 1 {
				return fmt.Errorf("core: provider %q service rate b(%s,%s)=%g outside [0,1]",
					sp.Name, sp.States[s], sp.Commands[cmd], b)
			}
		}
	}
	return nil
}

// ExpectedTransitionTime returns the expected number of slices for the SP to
// first reach state `to` from state `from` when command cmd is asserted at
// every slice until the transition completes (paper Eq. 2 generalized to
// arbitrary chain structure via hitting times). This is used to verify
// device models against data-sheet transition times.
func (sp *ServiceProvider) ExpectedTransitionTime(from, to, cmd int) (float64, error) {
	if err := sp.Validate(); err != nil {
		return 0, err
	}
	n := sp.N()
	if from < 0 || from >= n || to < 0 || to >= n || cmd < 0 || cmd >= sp.A() {
		return 0, fmt.Errorf("core: ExpectedTransitionTime index out of range")
	}
	// Expected hitting time of {to} under the fixed-command chain, computed
	// by solving h = 1 + P h over non-target states.
	p := sp.P[cmd]
	free := make([]int, 0, n-1)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = -1
	}
	for i := 0; i < n; i++ {
		if i != to {
			idx[i] = len(free)
			free = append(free, i)
		}
	}
	m := len(free)
	a := mat.NewMatrix(m, m)
	b := mat.NewVector(m)
	for r, i := range free {
		b[r] = 1
		for j := 0; j < n; j++ {
			if j == to {
				continue
			}
			if v := p.At(i, j); v != 0 {
				a.Add(r, idx[j], -v)
			}
		}
		a.Add(r, r, 1)
	}
	sol, err := mat.Solve(a, b)
	if err != nil {
		return 0, fmt.Errorf("core: transition %s→%s under %s unreachable: %w",
			sp.States[from], sp.States[to], sp.Commands[cmd], err)
	}
	return sol[idx[from]], nil
}
