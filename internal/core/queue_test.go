package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// TestQueueMatrixExample33 checks the queue transition matrices of paper
// Example 3.3 (capacity 1, service rate 0.8 when the SP is on and the on
// command is issued, 0 otherwise).
func TestQueueMatrixExample33(t *testing.T) {
	cases := []struct {
		name string
		b    float64
		r    int
		want [][]float64
	}{
		// SP active (b=0.8), no arrivals: enqueued request drains w.p. 0.8.
		{"active-noarrival", 0.8, 0, [][]float64{{1, 0}, {0.8, 0.2}}},
		// SP active, one arrival: incoming request serviced right away
		// w.p. 0.8; if queue already full it stays full (loss).
		{"active-arrival", 0.8, 1, [][]float64{{0.8, 0.2}, {0, 1}}},
		// SP off, no arrivals: queue unchanged (identity).
		{"off-noarrival", 0, 0, [][]float64{{1, 0}, {0, 1}}},
		// SP off, one arrival: empty queue fills w.p. 1; full queue stays
		// full and the request is lost.
		{"off-arrival", 0, 1, [][]float64{{0, 1}, {0, 1}}},
	}
	for _, c := range cases {
		got := QueueMatrix(1, c.b, c.r)
		want := mat.FromRows(c.want)
		if got.MaxAbsDiff(want) > 1e-15 {
			t.Errorf("%s: QueueMatrix =\n%vwant\n%v", c.name, got, want)
		}
	}
}

func TestQueueRowCornerCases(t *testing.T) {
	// Full queue, arrivals: stays full with probability 1 (paper corner
	// case), independent of service rate.
	row := QueueRow(2, 2, 0.9, 1)
	if row[2] != 1 {
		t.Errorf("full+arrival row = %v, want all mass on 2", row)
	}
	// Full queue, no arrivals: drains w.p. b.
	row = QueueRow(2, 2, 0.9, 0)
	if math.Abs(row[1]-0.9) > 1e-15 || math.Abs(row[2]-0.1) > 1e-15 {
		t.Errorf("full+noarrival row = %v", row)
	}
	// Overflowing arrivals from empty queue.
	row = QueueRow(2, 0, 0.5, 5)
	if row[2] != 1 {
		t.Errorf("overflow row = %v, want all mass on 2", row)
	}
	// Arrivals exactly filling the queue with a service completion.
	row = QueueRow(3, 1, 0.25, 2)
	if math.Abs(row[2]-0.25) > 1e-15 || math.Abs(row[3]-0.75) > 1e-15 {
		t.Errorf("fill row = %v", row)
	}
	// Deterministic service rates collapse to single outcomes.
	row = QueueRow(3, 2, 1, 0)
	if row[1] != 1 {
		t.Errorf("b=1 drain row = %v", row)
	}
	row = QueueRow(3, 2, 0, 0)
	if row[2] != 1 {
		t.Errorf("b=0 hold row = %v", row)
	}
}

func TestQueueRowPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative capacity": func() { QueueRow(-1, 0, 0.5, 0) },
		"state too large":   func() { QueueRow(2, 3, 0.5, 0) },
		"negative state":    func() { QueueRow(2, -1, 0.5, 0) },
		"bad rate":          func() { QueueRow(2, 0, 1.5, 0) },
		"negative arrivals": func() { QueueRow(2, 0, 0.5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: every queue row is a probability distribution, and mass only
// moves by at most max(1, r) positions.
func TestQueueRowStochasticProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := rng.Intn(8)
		q := rng.Intn(capacity + 1)
		b := rng.Float64()
		r := rng.Intn(4)
		row := QueueRow(capacity, q, b, r)
		if !row.IsDistribution(1e-12) {
			return false
		}
		// Support check: queue can shrink by at most one and grow by at
		// most r (clipped at capacity).
		for qn, p := range row {
			if p == 0 {
				continue
			}
			if qn < q-1 && r == 0 {
				return false
			}
			if qn > q+r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLostRequests(t *testing.T) {
	// Empty queue, capacity 2, 5 arrivals, no service: 3 lost.
	if got := LostRequests(2, 0, 0, 5); got != 3 {
		t.Errorf("LostRequests = %g, want 3", got)
	}
	// With certain service one more fits.
	if got := LostRequests(2, 0, 1, 5); got != 2 {
		t.Errorf("LostRequests(b=1) = %g, want 2", got)
	}
	// Probability-weighted.
	if got := LostRequests(2, 2, 0.5, 1); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("LostRequests weighted = %g, want 0.5", got)
	}
	// No arrivals, no loss.
	if got := LostRequests(2, 2, 0, 0); got != 0 {
		t.Errorf("LostRequests(no arrivals) = %g, want 0", got)
	}
}
