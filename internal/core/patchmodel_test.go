package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/devices"
)

// requireModelsEqual compares two compiled models bit-for-bit: dimensions,
// every CSR row's pattern and values, and every metric table. PatchModel's
// contract is exact equality with a fresh build, so comparisons use ==, not
// a tolerance.
func requireModelsEqual(t *testing.T, got, want *core.Model) {
	t.Helper()
	if got.N != want.N || got.A != want.A {
		t.Fatalf("model is %dx%d, want %dx%d", got.N, got.A, want.N, want.A)
	}
	for cmd := 0; cmd < want.A; cmd++ {
		gm, wm := got.P[cmd], want.P[cmd]
		for i := 0; i < want.N; i++ {
			gc, gv := gm.RowNZ(i)
			wc, wv := wm.RowNZ(i)
			if len(gc) != len(wc) {
				t.Fatalf("command %d row %d: %d nonzeros, want %d", cmd, i, len(gc), len(wc))
			}
			for k := range wc {
				if gc[k] != wc[k] {
					t.Fatalf("command %d row %d nz %d: column %d, want %d", cmd, i, k, gc[k], wc[k])
				}
				if gv[k] != wv[k] {
					t.Fatalf("command %d row %d nz %d: value %v, want %v (not bit-identical)",
						cmd, i, k, gv[k], wv[k])
				}
			}
		}
	}
	if len(got.Metrics) != len(want.Metrics) {
		t.Fatalf("%d metric tables, want %d", len(got.Metrics), len(want.Metrics))
	}
	for name, wt := range want.Metrics {
		gt := got.Metrics[name]
		if gt == nil {
			t.Fatalf("metric %q missing", name)
		}
		if gt.Rows != wt.Rows || gt.Cols != wt.Cols {
			t.Fatalf("metric %q is %dx%d, want %dx%d", name, gt.Rows, gt.Cols, wt.Rows, wt.Cols)
		}
		for k := range wt.Data {
			if gt.Data[k] != wt.Data[k] {
				t.Fatalf("metric %q entry %d: %v, want %v (not bit-identical)",
					name, k, gt.Data[k], wt.Data[k])
			}
		}
	}
}

// TestPatchModelMatchesBuild: patching a drifted system onto the model
// compiled from the original must reproduce sys.Build() bit-for-bit — on a
// hook-free system (disk) and on one using every behavioral hook (the CPU's
// SPRow wake coupling, PenaltyFn, LossFn).
func TestPatchModelMatchesBuild(t *testing.T) {
	cases := []struct {
		name string
		mk   func(p01, p10 float64) *core.System
	}{
		{"disk", func(p01, p10 float64) *core.System {
			return devices.DiskSystem(core.TwoStateSR("w", p01, p10))
		}},
		{"cpu-hooks", func(p01, p10 float64) *core.System {
			return devices.CPUSystem(core.TwoStateSR("w", p01, p10))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys1 := tc.mk(0.02, 0.30)
			sys2 := tc.mk(0.35, 0.05)
			m, err := sys1.Build()
			if err != nil {
				t.Fatal(err)
			}
			want, err := sys2.Build()
			if err != nil {
				t.Fatal(err)
			}
			if err := core.PatchModel(m, sys2); err != nil {
				t.Fatalf("PatchModel: %v", err)
			}
			if m.Sys != sys2 {
				t.Error("patched model does not reference the new system")
			}
			requireModelsEqual(t, m, want)
		})
	}
}

// TestPatchModelPatternChange: an SR probability moving to exactly zero
// removes nonzeros from the composed rows; the patch must refuse with
// ErrModelPattern rather than silently corrupt the chains.
func TestPatchModelPatternChange(t *testing.T) {
	sys1 := devices.DiskSystem(core.TwoStateSR("w", 0.02, 0.30))
	sysZero := devices.DiskSystem(core.TwoStateSR("w", 0, 0.30))
	m, err := sys1.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.PatchModel(m, sysZero); !errors.Is(err, core.ErrModelPattern) {
		t.Fatalf("patch onto structurally different SR: err = %v, want ErrModelPattern", err)
	}
}

// TestPatchModelShapeChecks: nil models, moved component dimensions, and a
// changed metric registry are refused as shape errors, and a refused patch
// leaves the model usable for a subsequent successful one.
func TestPatchModelShapeChecks(t *testing.T) {
	sys := devices.DiskSystem(core.TwoStateSR("w", 0.02, 0.30))
	m, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}

	if err := core.PatchModel(nil, sys); !errors.Is(err, core.ErrModelShape) {
		t.Errorf("nil model: err = %v, want ErrModelShape", err)
	}

	grown := *sys
	grown.QueueCap = sys.QueueCap + 1
	if err := core.PatchModel(m, &grown); !errors.Is(err, core.ErrModelShape) {
		t.Errorf("queue capacity change: err = %v, want ErrModelShape", err)
	}

	extra := *sys
	extra.ExtraMetrics = map[string]func(core.State, int) float64{
		"ones": func(core.State, int) float64 { return 1 },
	}
	if err := core.PatchModel(m, &extra); !errors.Is(err, core.ErrModelShape) {
		t.Errorf("new extra metric: err = %v, want ErrModelShape", err)
	}

	mx, err := extra.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.PatchModel(mx, sys); !errors.Is(err, core.ErrModelShape) {
		t.Errorf("dropped extra metric: err = %v, want ErrModelShape", err)
	}

	if err := core.PatchModel(m, sys); err != nil {
		t.Errorf("patch after refused patches: %v", err)
	}
}
