package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"

	"repro/internal/mat"
)

// Canonical serialization: a deterministic, parameter-complete byte encoding
// of model parameters, defined so that two systems are byte-identical
// exactly when they describe the same optimization inputs. It exists for
// content addressing — a resident policy server keys compiled models and
// cached solver state by SHA-256 of this form — not for persistence, so the
// encoding favors unambiguity over compactness: every field is tagged,
// floats use the shortest round-trip decimal (strconv 'g'/-1, one spelling
// per value), and every list is length-prefixed.

// cw accumulates canonical bytes into an io.Writer, capturing the first
// write error so call sites stay linear.
type cw struct {
	w   io.Writer
	err error
}

func (c *cw) str(tag, s string) {
	if c.err == nil {
		_, c.err = fmt.Fprintf(c.w, "%s=%d:%s;", tag, len(s), s)
	}
}

func (c *cw) num(tag string, v float64) {
	c.str(tag, strconv.FormatFloat(v, 'g', -1, 64))
}

func (c *cw) count(tag string, n int) {
	c.str(tag, strconv.Itoa(n))
}

func (c *cw) matrix(tag string, m *mat.Matrix) {
	if m == nil {
		c.str(tag, "nil")
		return
	}
	c.str(tag, fmt.Sprintf("%dx%d", m.Rows, m.Cols))
	for _, v := range m.Data {
		c.num("v", v)
	}
}

// WriteCanonical writes the provider's canonical serialization: name, state
// and command vocabularies, all transition matrices, service rates and
// powers.
func (sp *ServiceProvider) WriteCanonical(w io.Writer) error {
	c := &cw{w: w}
	c.str("sp", sp.Name)
	c.count("states", len(sp.States))
	for _, s := range sp.States {
		c.str("s", s)
	}
	c.count("cmds", len(sp.Commands))
	for _, s := range sp.Commands {
		c.str("c", s)
	}
	c.count("P", len(sp.P))
	for _, p := range sp.P {
		c.matrix("p", p)
	}
	c.matrix("rate", sp.ServiceRate)
	c.matrix("power", sp.Power)
	return c.err
}

// WriteCanonical writes the requester's canonical serialization: name,
// state vocabulary, transition matrix and request counts.
func (sr *ServiceRequester) WriteCanonical(w io.Writer) error {
	c := &cw{w: w}
	c.str("sr", sr.Name)
	c.count("states", len(sr.States))
	for _, s := range sr.States {
		c.str("s", s)
	}
	c.matrix("p", sr.P)
	c.count("reqs", len(sr.Requests))
	for _, r := range sr.Requests {
		c.count("r", r)
	}
	return c.err
}

// hooked reports whether any behavioral hook is set.
func (sys *System) hooked() bool {
	return sys.SPRow != nil || sys.PenaltyFn != nil || sys.LossFn != nil || len(sys.ExtraMetrics) > 0
}

// WriteCanonical writes the system's canonical serialization: both
// components, the queue capacity, and the HookTag standing in for any
// behavioral hooks. It fails on a hooked system without a HookTag — the
// closures are not serializable, and fingerprinting them away silently
// would let two behaviorally different systems collide.
func (sys *System) WriteCanonical(w io.Writer) error {
	if sys.hooked() && sys.HookTag == "" {
		return fmt.Errorf("core: system %q has behavioral hooks but no HookTag; set one to make it fingerprintable", sys.Name)
	}
	c := &cw{w: w}
	c.str("sys", sys.Name)
	c.count("queue", sys.QueueCap)
	c.str("hooks", sys.HookTag)
	if c.err != nil {
		return c.err
	}
	if err := sys.SP.WriteCanonical(w); err != nil {
		return err
	}
	return sys.SR.WriteCanonical(w)
}

// Fingerprint returns the SHA-256 content fingerprint (hex) of the system's
// canonical serialization. Two systems with equal fingerprints compile to
// identical models (same chains, same metric tables up to what HookTag
// promises), which is what lets a server share compiled models and cached
// solver state across requests.
func (sys *System) Fingerprint() (string, error) {
	h := sha256.New()
	if err := sys.WriteCanonical(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
