package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/mat"
)

func TestPolicyConstructors(t *testing.T) {
	p, err := DeterministicPolicy([]int{0, 1, 0}, 2)
	if err != nil {
		t.Fatalf("DeterministicPolicy: %v", err)
	}
	if !p.IsDeterministic(1e-12) {
		t.Errorf("deterministic policy not detected")
	}
	if p.ModeCommand(1) != 1 {
		t.Errorf("ModeCommand = %d, want 1", p.ModeCommand(1))
	}
	if _, err := DeterministicPolicy([]int{2}, 2); err == nil {
		t.Errorf("out-of-range command accepted")
	}
	c, err := ConstantPolicy(4, 3, 2)
	if err != nil {
		t.Fatalf("ConstantPolicy: %v", err)
	}
	for s := 0; s < 4; s++ {
		if c.ModeCommand(s) != 2 {
			t.Errorf("constant policy state %d issues %d", s, c.ModeCommand(s))
		}
	}
	if _, err := NewPolicy(mat.FromRows([][]float64{{0.5, 0.2}})); err == nil {
		t.Errorf("non-stochastic policy accepted")
	}
}

func TestRandomizedStates(t *testing.T) {
	m := mat.FromRows([][]float64{
		{1, 0},
		{0.4, 0.6},
		{0, 1},
	})
	p, err := NewPolicy(m)
	if err != nil {
		t.Fatalf("NewPolicy: %v", err)
	}
	rs := p.RandomizedStates(1e-6)
	if len(rs) != 1 || rs[0] != 1 {
		t.Errorf("RandomizedStates = %v, want [1]", rs)
	}
	if p.IsDeterministic(1e-6) {
		t.Errorf("IsDeterministic true for randomized policy")
	}
}

func TestPolicyChainComposition(t *testing.T) {
	m := buildExample(t)
	// Always-on policy: chain equals P[s_on].
	p, _ := ConstantPolicy(m.N, m.A, 0)
	chain, err := p.Chain(m)
	if err != nil {
		t.Fatalf("Chain: %v", err)
	}
	if chain.Sparse().MaxAbsDiff(m.P[0]) > 1e-12 {
		t.Errorf("constant-policy chain differs from P[0]")
	}
	// A 50/50 policy gives the average matrix (Eq. 5).
	half := mat.NewMatrix(m.N, m.A)
	for s := 0; s < m.N; s++ {
		half.Set(s, 0, 0.5)
		half.Set(s, 1, 0.5)
	}
	hp, _ := NewPolicy(half)
	chain2, err := hp.Chain(m)
	if err != nil {
		t.Fatalf("Chain: %v", err)
	}
	want := m.P[0].Dense().Scale(0.5).AddMatrixScaled(0.5, m.P[1].Dense())
	if chain2.P().MaxAbsDiff(want) > 1e-12 {
		t.Errorf("mixed-policy chain wrong")
	}
}

func TestEvaluateAlwaysOn(t *testing.T) {
	sys := exampleSystem()
	m := buildExample(t)
	p, _ := ConstantPolicy(m.N, m.A, 0)
	q0 := Delta(m.N, sys.Index(State{SP: 0, SR: 0, Q: 0}))
	ev, err := Evaluate(m, p, q0, HorizonToAlpha(1e5))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !ev.Occupancy.IsDistribution(1e-8) {
		t.Errorf("occupancy not a distribution: sum=%g", ev.Occupancy.Sum())
	}
	// Always-on keeps the SP on (from on, s_on keeps it there), so power
	// should be ~3 W and the occupancy of SP=off states ~0 at long horizon.
	if pw := ev.Average(MetricPower); math.Abs(pw-3) > 1e-3 {
		t.Errorf("always-on power = %g, want ≈3", pw)
	}
	if math.IsNaN(ev.Average("nope")) == false {
		t.Errorf("missing metric should be NaN")
	}
}

func TestOptimizeUnconstrainedDeterministic(t *testing.T) {
	// Theorem A.1: the unconstrained optimum is deterministic.
	m := buildExample(t)
	res, err := Optimize(m, Options{
		Alpha:     HorizonToAlpha(1e4),
		Objective: Objective{Metric: MetricPower, Sense: lp.Minimize},
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status %v", res.Status)
	}
	// Visited states must carry deterministic decisions; unvisited states
	// are filled deterministically by construction.
	if !res.Policy.IsDeterministic(1e-6) {
		t.Errorf("unconstrained optimal policy is randomized")
	}
	// Min power with no constraints: shut everything off, power → ~0.
	if res.Objective > 0.3 {
		t.Errorf("unconstrained min power = %g, want near 0", res.Objective)
	}
}

// TestOptimizeExampleA2 reproduces the structure of paper Example A.2:
// min power s.t. E[queue] ≤ 0.5 and a request-loss bound at horizon 10⁵,
// starting from (on, no request, empty queue). The paper's exact SR numbers
// are not fully recoverable from the text; with our Example-3.2-consistent
// SR (burst persistence 0.85) the minimum achievable loss is ≈0.25 (a full
// queue stays full through a burst — the Eq. 3 corner case), so the loss
// bound here is 0.3 rather than the paper's 0.2. The structural claims are
// unchanged: the optimal policy must be randomized in at least one state
// (Theorem A.2: an active constraint forces randomization), and the optimal
// power must improve on the never-shut-down policy (3 W).
func TestOptimizeExampleA2(t *testing.T) {
	sys := exampleSystem()
	m := buildExample(t)
	alpha := HorizonToAlpha(1e5)
	q0 := Delta(m.N, sys.Index(State{SP: 0, SR: 0, Q: 0}))
	res, err := Optimize(m, Options{
		Alpha:     alpha,
		Initial:   q0,
		Objective: Objective{Metric: MetricPower, Sense: lp.Minimize},
		Bounds: []Bound{
			{Metric: MetricPenalty, Rel: lp.LE, Value: 0.5},
			{Metric: MetricLoss, Rel: lp.LE, Value: 0.3},
		},
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Objective >= 3 {
		t.Errorf("optimal power %g does not improve on always-on (3 W)", res.Objective)
	}
	if res.Objective < 1 {
		t.Errorf("optimal power %g implausibly low given 40%% load", res.Objective)
	}
	// Constraints honored.
	if res.Averages[MetricPenalty] > 0.5+1e-6 {
		t.Errorf("penalty %g exceeds bound", res.Averages[MetricPenalty])
	}
	if res.Averages[MetricLoss] > 0.3+1e-6 {
		t.Errorf("loss %g exceeds bound", res.Averages[MetricLoss])
	}
	// At least one constraint is active, so the policy is randomized
	// (Theorem A.2).
	// The randomization probability can be very small (a per-slice shutdown
	// probability of ~1e-5 suffices to pin the long-horizon average at the
	// bound), so detect it with a tolerance just above LP numerical noise.
	activePenalty := res.Averages[MetricPenalty] > 0.5-1e-4
	activeLoss := res.Averages[MetricLoss] > 0.3-1e-4
	if activePenalty || activeLoss {
		if len(res.Policy.RandomizedStates(1e-6)) == 0 {
			t.Errorf("active constraint but deterministic policy (contradicts Theorem A.2)")
		}
	}
	// Consistency: LP objective equals the exact evaluation of the
	// extracted policy (the paper tool's optimizer/simulator cross-check,
	// here in analytic form).
	if d := math.Abs(res.Eval.Average(MetricPower) - res.Objective); d > 1e-6 {
		t.Errorf("LP objective %g vs exact evaluation %g (Δ=%g)",
			res.Objective, res.Eval.Average(MetricPower), d)
	}
	for _, metric := range []string{MetricPenalty, MetricLoss, MetricService} {
		if d := math.Abs(res.Eval.Average(metric) - res.Averages[metric]); d > 1e-6 {
			t.Errorf("metric %s: LP %g vs evaluation %g", metric, res.Averages[metric], res.Eval.Average(metric))
		}
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	m := buildExample(t)
	_, err := Optimize(m, Options{
		Alpha:     HorizonToAlpha(1e4),
		Objective: Objective{Metric: MetricPower, Sense: lp.Minimize},
		// Average queue length cannot be negative.
		Bounds: []Bound{{Metric: MetricPenalty, Rel: lp.LE, Value: -0.5}},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestOptimizeValidation(t *testing.T) {
	m := buildExample(t)
	if _, err := Optimize(m, Options{Alpha: 1}); err == nil {
		t.Errorf("alpha=1 accepted")
	}
	if _, err := Optimize(m, Options{Alpha: 0.5, Initial: mat.Vector{1}}); err == nil {
		t.Errorf("short initial distribution accepted")
	}
	if _, err := Optimize(m, Options{Alpha: 0.5, Objective: Objective{Metric: "bogus"}}); err == nil {
		t.Errorf("unknown metric accepted")
	}
	if _, err := Optimize(m, Options{Alpha: 0.5, UnvisitedCommand: 99}); err == nil {
		t.Errorf("bad unvisited command accepted")
	}
	bad := mat.NewVector(m.N)
	bad[0] = 2
	if _, err := Optimize(m, Options{Alpha: 0.5, Initial: bad}); err == nil {
		t.Errorf("non-distribution initial accepted")
	}
}

func TestHorizonAlphaRoundTrip(t *testing.T) {
	for _, h := range []float64{1, 10, 1e5, 1e6} {
		if got := AlphaToHorizon(HorizonToAlpha(h)); math.Abs(got-h)/h > 1e-9 {
			t.Errorf("round trip %g → %g", h, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("HorizonToAlpha(<1) did not panic")
		}
	}()
	HorizonToAlpha(0.5)
}

func TestWaitingTimeBound(t *testing.T) {
	sr := exampleSR() // arrival rate 0.4
	b, err := WaitingTimeBound(sr, 2.5)
	if err != nil {
		t.Fatalf("WaitingTimeBound: %v", err)
	}
	if b.Metric != MetricPenalty || b.Rel != lp.LE || math.Abs(b.Value-1.0) > 1e-12 {
		t.Errorf("WaitingTimeBound = %+v", b)
	}
}

// TestParetoSweepShape checks Section IV-A's structure: as the performance
// bound loosens, optimal power is non-increasing, and the curve is convex
// (Theorem 4.1). Points below the minimum achievable queue length are
// infeasible.
func TestParetoSweepShape(t *testing.T) {
	sys := exampleSystem()
	m := buildExample(t)
	opts := Options{
		Alpha:          HorizonToAlpha(1e5),
		Initial:        Delta(m.N, sys.Index(State{SP: 0, SR: 0, Q: 0})),
		Objective:      Objective{Metric: MetricPower, Sense: lp.Minimize},
		SkipEvaluation: true,
	}
	bounds := []float64{0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8}
	pts, err := ParetoSweep(m, opts, MetricPenalty, lp.LE, bounds)
	if err != nil {
		t.Fatalf("ParetoSweep: %v", err)
	}
	if len(pts) != len(bounds) {
		t.Fatalf("got %d points", len(pts))
	}
	// Feasibility is monotone: once feasible, stays feasible.
	seenFeasible := false
	for _, p := range pts {
		if p.Feasible {
			seenFeasible = true
		} else if seenFeasible {
			t.Errorf("feasibility not monotone at bound %g", p.BoundValue)
		}
	}
	if !seenFeasible {
		t.Fatalf("no feasible point in sweep")
	}
	// Monotone non-increasing objective over feasible points.
	prev := math.Inf(1)
	var feas []ParetoPoint
	for _, p := range pts {
		if !p.Feasible {
			continue
		}
		if p.Objective > prev+1e-7 {
			t.Errorf("objective increased at bound %g: %g > %g", p.BoundValue, p.Objective, prev)
		}
		prev = p.Objective
		feas = append(feas, p)
	}
	// Convexity over equally-informative triples (Theorem 4.1): for
	// consecutive feasible bounds b1<b2<b3 with b2=(b1+b3)/2,
	// f(b2) ≤ (f(b1)+f(b3))/2.
	for i := 0; i+2 < len(feas); i++ {
		b1, b2, b3 := feas[i], feas[i+1], feas[i+2]
		if math.Abs((b1.BoundValue+b3.BoundValue)/2-b2.BoundValue) > 1e-9 {
			continue
		}
		if b2.Objective > (b1.Objective+b3.Objective)/2+1e-6 {
			t.Errorf("convexity violated at bound %g: f=%g, midpoint bound %g",
				b2.BoundValue, b2.Objective, (b1.Objective+b3.Objective)/2)
		}
	}
}

// TestOptimalityAgainstRandomPolicies is the central optimality property:
// no randomly sampled Markov stationary policy can beat the LP optimum.
func TestOptimalityAgainstRandomPolicies(t *testing.T) {
	m := buildExample(t)
	alpha := HorizonToAlpha(1e3)
	q0 := Uniform(m.N)
	res, err := Optimize(m, Options{
		Alpha:          alpha,
		Initial:        q0,
		Objective:      Objective{Metric: MetricPenalty, Sense: lp.Minimize},
		SkipEvaluation: true,
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pm := mat.NewMatrix(m.N, m.A)
		for s := 0; s < m.N; s++ {
			row := pm.Row(s)
			sum := 0.0
			for a := range row {
				row[a] = r.Float64() + 1e-6
				sum += row[a]
			}
			row.Scale(1 / sum)
		}
		pol, err := NewPolicy(pm)
		if err != nil {
			return false
		}
		ev, err := Evaluate(m, pol, q0, alpha)
		if err != nil {
			return false
		}
		return ev.Average(MetricPenalty) >= res.Objective-1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFrequencyBalance checks that the optimizer's frequencies satisfy the
// scaled balance equations and sum to one.
func TestFrequencyBalance(t *testing.T) {
	m := buildExample(t)
	alpha := 0.99
	q0 := Uniform(m.N)
	res, err := Optimize(m, Options{
		Alpha:          alpha,
		Initial:        q0,
		Objective:      Objective{Metric: MetricPower, Sense: lp.Minimize},
		Bounds:         []Bound{{Metric: MetricPenalty, Rel: lp.LE, Value: 0.4}},
		SkipEvaluation: true,
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	total := 0.0
	for _, y := range res.Frequencies.Data {
		if y < -1e-9 {
			t.Errorf("negative frequency %g", y)
		}
		total += y
	}
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("frequencies sum to %g, want 1", total)
	}
	for j := 0; j < m.N; j++ {
		lhs := res.Frequencies.Row(j).Sum()
		rhs := (1 - alpha) * q0[j]
		for a := 0; a < m.A; a++ {
			for s := 0; s < m.N; s++ {
				rhs += alpha * m.P[a].At(s, j) * res.Frequencies.At(s, a)
			}
		}
		if math.Abs(lhs-rhs) > 1e-6 {
			t.Errorf("balance violated at state %d: %g vs %g", j, lhs, rhs)
		}
	}
}

// TestOccupancyMatchesFrequencies: the extracted policy's occupancy measure
// reproduces the LP's per-state frequencies (the theoretical identity that
// justifies policy extraction).
func TestOccupancyMatchesFrequencies(t *testing.T) {
	m := buildExample(t)
	alpha := 0.995
	q0 := Uniform(m.N)
	res, err := Optimize(m, Options{
		Alpha:     alpha,
		Initial:   q0,
		Objective: Objective{Metric: MetricPower, Sense: lp.Minimize},
		Bounds:    []Bound{{Metric: MetricPenalty, Rel: lp.LE, Value: 0.45}},
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	for s := 0; s < m.N; s++ {
		want := res.Frequencies.Row(s).Sum()
		if math.Abs(res.Eval.Occupancy[s]-want) > 1e-6 {
			t.Errorf("state %d occupancy %g vs frequency %g", s, res.Eval.Occupancy[s], want)
		}
	}
}

// TestGEObjectiveConstraint exercises a ≥ constraint on the service metric
// (the web-server pattern: min power s.t. throughput ≥ T).
func TestGEObjectiveConstraint(t *testing.T) {
	m := buildExample(t)
	res, err := Optimize(m, Options{
		Alpha:          HorizonToAlpha(1e4),
		Objective:      Objective{Metric: MetricPower, Sense: lp.Minimize},
		Bounds:         []Bound{{Metric: MetricService, Rel: lp.GE, Value: 0.3}},
		SkipEvaluation: true,
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Averages[MetricService] < 0.3-1e-6 {
		t.Errorf("service %g below bound", res.Averages[MetricService])
	}
}

func TestPolicyChainDimensionMismatch(t *testing.T) {
	m := buildExample(t)
	p, _ := ConstantPolicy(3, m.A, 0)
	if _, err := p.Chain(m); err == nil {
		t.Errorf("mismatched policy accepted")
	}
	if _, err := Evaluate(m, p, Uniform(m.N), 0.9); err == nil {
		t.Errorf("Evaluate with mismatched policy accepted")
	}
	good, _ := ConstantPolicy(m.N, m.A, 0)
	if _, err := Evaluate(m, good, mat.Vector{1}, 0.9); err == nil {
		t.Errorf("Evaluate with short q0 accepted")
	}
}

// TestParetoSweepWarmStarts checks the warm-starting contract on a real
// policy LP: the sequential sweep actually reuses bases after the first
// feasible point, and every warm-started point agrees with an independent
// cold solve to tight tolerance.
func TestParetoSweepWarmStarts(t *testing.T) {
	sys := exampleSystem()
	m := buildExample(t)
	opts := Options{
		Alpha:          HorizonToAlpha(1e5),
		Initial:        Delta(m.N, sys.Index(State{SP: 0, SR: 0, Q: 0})),
		Objective:      Objective{Metric: MetricPower, Sense: lp.Minimize},
		SkipEvaluation: true,
	}
	bounds := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8}
	pts, err := ParetoSweep(m, opts, MetricPenalty, lp.LE, bounds)
	if err != nil {
		t.Fatalf("ParetoSweep: %v", err)
	}
	warmed := 0
	for i, p := range pts {
		if !p.Feasible {
			continue
		}
		if p.Result.Basis == nil {
			t.Errorf("feasible point %d carries no basis", i)
		}
		if p.Result.WarmStarted {
			warmed++
		}
		o := opts
		o.Bounds = []Bound{{Metric: MetricPenalty, Rel: lp.LE, Value: p.BoundValue}}
		cold, err := Optimize(m, o)
		if err != nil {
			t.Fatalf("cold solve at bound %g: %v", p.BoundValue, err)
		}
		if math.Abs(cold.Objective-p.Objective) > 1e-9 {
			t.Errorf("bound %g: warm objective %g vs cold %g", p.BoundValue, p.Objective, cold.Objective)
		}
	}
	if warmed == 0 {
		t.Errorf("no point of the sweep warm-started")
	}
}
