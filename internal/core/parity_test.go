package core

import (
	"math"
	"testing"

	"repro/internal/lp"
)

// TestFrequencyLPRevisedMatchesDense runs the assembled policy LPs (LP2 and
// the constrained LP3/LP4 shapes, at mild and paper-stiff discount factors)
// through both the revised simplex and the legacy dense tableau and demands
// objective agreement within 1e-8 — the acceptance contract of the sparse
// refactor.
func TestFrequencyLPRevisedMatchesDense(t *testing.T) {
	sys := exampleSystem()
	m := buildExample(t)
	q0 := Delta(m.N, sys.Index(State{SP: 0, SR: 0, Q: 0}))

	cases := []struct {
		name string
		opts Options
	}{
		{"unconstrained-1e4", Options{
			Alpha:     HorizonToAlpha(1e4),
			Objective: Objective{Metric: MetricPower, Sense: lp.Minimize},
		}},
		{"exampleA2-1e5", Options{
			Alpha:     HorizonToAlpha(1e5),
			Initial:   q0,
			Objective: Objective{Metric: MetricPower, Sense: lp.Minimize},
			Bounds: []Bound{
				{Metric: MetricPenalty, Rel: lp.LE, Value: 0.5},
				{Metric: MetricLoss, Rel: lp.LE, Value: 0.3},
			},
		}},
		{"service-ge", Options{
			Alpha:     HorizonToAlpha(1e4),
			Objective: Objective{Metric: MetricPower, Sense: lp.Minimize},
			Bounds:    []Bound{{Metric: MetricService, Rel: lp.GE, Value: 0.3}},
		}},
		{"penalty-objective", Options{
			Alpha:     0.99,
			Objective: Objective{Metric: MetricPenalty, Sense: lp.Minimize},
			Bounds:    []Bound{{Metric: MetricPower, Rel: lp.LE, Value: 2}},
		}},
	}
	for _, tc := range cases {
		prob, err := BuildFrequencyLP(m, tc.opts)
		if err != nil {
			t.Fatalf("%s: BuildFrequencyLP: %v", tc.name, err)
		}
		den, denErr := lp.SolveDense(prob)
		for _, f := range []lp.Factorization{lp.FactorDense, lp.FactorSparse} {
			s := lp.NewSolver(lp.WithFactorization(f))
			rev, _, revErr := s.Solve(nil, prob, nil)
			if (revErr == nil) != (denErr == nil) || rev.Status != den.Status {
				t.Errorf("%s/%v: revised status %v (err %v) vs dense %v (err %v)",
					tc.name, f, rev.Status, revErr, den.Status, denErr)
				continue
			}
			if revErr != nil {
				continue
			}
			if d := math.Abs(rev.Objective - den.Objective); d > 1e-8 {
				t.Errorf("%s/%v: revised %.12g vs dense %.12g (Δ=%g)", tc.name, f, rev.Objective, den.Objective, d)
			}
			if rev.FactorNNZ <= 0 {
				t.Errorf("%s/%v: FactorNNZ = %d, want positive", tc.name, f, rev.FactorNNZ)
			}
		}
	}
}

// TestBuildFrequencyLPSparseRows pins the sparse assembly against the LP2
// definition: the balance row of state j carries +1 on every (j,a) column,
// −α p_{s,j}(a) on incoming (s,a) columns (merged when s = j), and the RHS
// (1−α)q0_j; bound rows carry the metric table entries.
func TestBuildFrequencyLPSparseRows(t *testing.T) {
	m := buildExample(t)
	alpha := 0.9
	opts := Options{
		Alpha:     alpha,
		Objective: Objective{Metric: MetricPower, Sense: lp.Minimize},
		Bounds:    []Bound{{Metric: MetricPenalty, Rel: lp.LE, Value: 0.5}},
	}
	prob, err := BuildFrequencyLP(m, opts)
	if err != nil {
		t.Fatalf("BuildFrequencyLP: %v", err)
	}
	if prob.NumVars() != m.N*m.A {
		t.Fatalf("NumVars = %d, want %d", prob.NumVars(), m.N*m.A)
	}
	if len(prob.Cons) != m.N+1 {
		t.Fatalf("%d constraints, want %d", len(prob.Cons), m.N+1)
	}
	for j := 0; j < m.N; j++ {
		c := &prob.Cons[j]
		if c.Rel != lp.EQ {
			t.Fatalf("balance[%d] relation %v", j, c.Rel)
		}
		for s := 0; s < m.N; s++ {
			for a := 0; a < m.A; a++ {
				want := -alpha * m.P[a].At(s, j)
				if s == j {
					want += 1
				}
				if got := c.Coeff(s*m.A + a); math.Abs(got-want) > 1e-15 {
					t.Errorf("balance[%d] coeff (s=%d,a=%d) = %g, want %g", j, s, a, got, want)
				}
			}
		}
		if math.Abs(c.RHS-(1-alpha)/float64(m.N)) > 1e-15 {
			t.Errorf("balance[%d] RHS = %g", j, c.RHS)
		}
	}
	bound := &prob.Cons[m.N]
	penalty, _ := m.Metric(MetricPenalty)
	for s := 0; s < m.N; s++ {
		for a := 0; a < m.A; a++ {
			if got := bound.Coeff(s*m.A + a); got != penalty.At(s, a) {
				t.Errorf("bound coeff (s=%d,a=%d) = %g, want %g", s, a, got, penalty.At(s, a))
			}
		}
	}
}
