package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// randFactoredSystem composes 2–3 random parts into a queued system. With
// masked set, both command-space masks are exercised: a per-part subset on
// the last part and the at-most-one-move joint predicate.
func randFactoredSystem(t *testing.T, rng *rand.Rand, masked bool) *System {
	t.Helper()
	k := 2 + rng.Intn(2)
	parts := make([]*ServiceProvider, k)
	for i := range parts {
		parts[i] = randPart(rng, string(rune('a'+i)))
	}
	comp := &Composite{Name: "sys", Parts: parts, Rate: parallelRate(parts)}
	if masked {
		sub := make([][]int, k)
		sub[k-1] = []int{0, 1}
		comp.PartCommands = sub
		comp.Allow = func(cmds []int) bool {
			moved := 0
			for _, c := range cmds {
				if c != 0 {
					moved++
				}
			}
			return moved <= 1
		}
		comp.AllowTag = "one/v1"
	}
	sp, err := comp.Build()
	if err != nil {
		t.Fatalf("Composite.Build: %v", err)
	}
	return &System{
		Name:     "sys",
		SP:       sp,
		SR:       TwoStateSR("w", 0.1+0.5*rng.Float64(), 0.2+0.5*rng.Float64()),
		QueueCap: 1 + rng.Intn(3),
	}
}

func randDist(rng *rand.Rand, n int) mat.Vector {
	v := mat.NewVector(n)
	for i := range v {
		v[i] = rng.Float64()
	}
	v.Normalize()
	return v
}

// TestCommandOpMatchesModel: the three-stage matrix-free operator reproduces
// the compiled Model's composed CSR exactly (≤ 1e-12) in both application
// directions, for factored providers — masked and unmasked — and for a plain
// dense provider.
func TestCommandOpMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		sys := randFactoredSystem(t, rng, trial%2 == 1)
		if trial == 6 {
			// Plain (non-factored) provider leg: same operator algebra, SP
			// stage falls back to the provider's own joint chain.
			p := randPart(rng, "solo")
			sys = &System{Name: "plain", SP: p, SR: TwoStateSR("w", 0.3, 0.4), QueueCap: 2}
		}
		m, err := sys.Build()
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		n := sys.NumStates()
		for a := 0; a < sys.SP.A(); a++ {
			op, err := sys.CommandOp(a)
			if err != nil {
				t.Fatalf("trial %d: CommandOp(%d): %v", trial, a, err)
			}
			if op.Rows() != n || op.Cols() != n || op.Command() != a {
				t.Fatalf("trial %d: operator shape %dx%d cmd %d", trial, op.Rows(), op.Cols(), op.Command())
			}
			x := randDist(rng, n)
			if d := maxAbsDiffVec(op.MulVecT(x), m.P[a].VecMul(x)); d > 1e-12 {
				t.Fatalf("trial %d cmd %d: MulVecT differs from composed CSR by %g", trial, a, d)
			}
			v := mat.NewVector(n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			if d := maxAbsDiffVec(op.MulVec(v), m.P[a].MulVec(v)); d > 1e-12 {
				t.Fatalf("trial %d cmd %d: MulVec differs from composed CSR by %g", trial, a, d)
			}
		}
	}
}

func maxAbsDiffVec(a, b mat.Vector) float64 {
	d := 0.0
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

// TestCommandOpRowSample: empirical successor frequencies of the factored
// sampler match the composed CSR row.
func TestCommandOpRowSample(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	sys := randFactoredSystem(t, rng, true)
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	op, err := sys.CommandOp(0)
	if err != nil {
		t.Fatalf("CommandOp: %v", err)
	}
	n := sys.NumStates()
	const draws = 120000
	for _, s := range []int{0, n / 2, n - 1} {
		counts := make([]float64, n)
		for d := 0; d < draws; d++ {
			counts[op.RowSample(s, rng.Float64)]++
		}
		cols, vals := m.P[0].RowNZ(s)
		want := make([]float64, n)
		for k, j := range cols {
			want[j] = vals[k]
		}
		for j := range counts {
			if d := math.Abs(counts[j]/draws - want[j]); d > 0.012 {
				t.Fatalf("state %d: successor %d frequency off by %g", s, j, d)
			}
		}
	}
}

// TestPolicyOpMatchesPolicyChain: the masked per-command accumulation equals
// the rowwise policy mix of Eq. 5 compiled through the Model, including when
// some commands are never issued.
func TestPolicyOpMatchesPolicyChain(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 6; trial++ {
		sys := randFactoredSystem(t, rng, trial%2 == 0)
		m, err := sys.Build()
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		n, na := m.N, m.A
		pm := mat.NewMatrix(n, na)
		// Sparse rows over the first na-1 commands: the last command is
		// never issued, so PolicyOp must skip building its operator.
		for s := 0; s < n; s++ {
			row := pm.Row(s)
			row[rng.Intn(na-1)] += 0.5 + 0.5*rng.Float64()
			row[rng.Intn(na-1)] += rng.Float64()
			mat.Vector(row).Normalize()
		}
		pol, err := NewPolicy(pm)
		if err != nil {
			t.Fatalf("trial %d: NewPolicy: %v", trial, err)
		}
		po, err := sys.PolicyOp(pol)
		if err != nil {
			t.Fatalf("trial %d: PolicyOp: %v", trial, err)
		}
		if po.ops[na-1] != nil {
			t.Fatalf("trial %d: unissued command %d got an operator", trial, na-1)
		}
		ch, err := pol.Chain(m)
		if err != nil {
			t.Fatalf("trial %d: policy chain: %v", trial, err)
		}
		x := randDist(rng, n)
		if d := maxAbsDiffVec(po.MulVecT(x), ch.Step(x)); d > 1e-12 {
			t.Fatalf("trial %d: policy MulVecT differs by %g", trial, d)
		}
		v := mat.NewVector(n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		if d := maxAbsDiffVec(po.MulVec(v), ch.Sparse().MulVec(v)); d > 1e-12 {
			t.Fatalf("trial %d: policy MulVec differs by %g", trial, d)
		}
	}
}

// TestEvaluateFactoredMatchesEvaluate: the Model-free evaluation agrees with
// the compiled-Model path to 1e-8 on the occupancy and every metric average.
func TestEvaluateFactoredMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 4; trial++ {
		sys := randFactoredSystem(t, rng, trial%2 == 0)
		m, err := sys.Build()
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		pol, err := ConstantPolicy(m.N, m.A, rng.Intn(m.A))
		if err != nil {
			t.Fatalf("trial %d: policy: %v", trial, err)
		}
		if trial%2 == 0 {
			pm := mat.NewMatrix(m.N, m.A)
			for s := 0; s < m.N; s++ {
				copy(pm.Row(s), randDist(rng, m.A))
			}
			pol = &Policy{M: pm}
		}
		q0 := randDist(rng, m.N)
		alpha := 0.9 + 0.05*rng.Float64()

		want, err := Evaluate(m, pol, q0, alpha)
		if err != nil {
			t.Fatalf("trial %d: Evaluate: %v", trial, err)
		}
		got, err := EvaluateFactored(sys, pol, q0, alpha)
		if err != nil {
			t.Fatalf("trial %d: EvaluateFactored: %v", trial, err)
		}
		if d := maxAbsDiffVec(got.Occupancy, want.Occupancy); d > 1e-8 {
			t.Fatalf("trial %d: occupancies differ by %g", trial, d)
		}
		if len(got.Averages) != len(want.Averages) {
			t.Fatalf("trial %d: %d averages vs %d", trial, len(got.Averages), len(want.Averages))
		}
		for name, w := range want.Averages {
			g, ok := got.Averages[name]
			if !ok {
				t.Fatalf("trial %d: factored evaluation lacks metric %q", trial, name)
			}
			if math.Abs(g-w) > 1e-8 {
				t.Fatalf("trial %d: metric %q = %g factored vs %g exact", trial, name, g, w)
			}
		}
	}
}

// TestFactoredSPLazy: handing out operators and sampling successors compiles
// no joint chains; only an explicit Chain call does, once.
func TestFactoredSPLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	parts := []*ServiceProvider{randPart(rng, "x"), randPart(rng, "y")}
	fsp, err := (&Composite{Name: "lazy", Parts: parts, Rate: parallelRate(parts)}).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := fsp.CompiledChains(); got != 0 {
		t.Fatalf("fresh provider has %d compiled chains", got)
	}
	op := fsp.Op(0)
	x := randDist(rng, fsp.N())
	lazyStep := op.MulVecT(x)
	for s := 0; s < fsp.N(); s++ {
		fsp.SampleNext(s, 0, rng.Float64)
	}
	if got := fsp.CompiledChains(); got != 0 {
		t.Fatalf("operator use compiled %d chains", got)
	}
	joint := fsp.Chain(0)
	if got := fsp.CompiledChains(); got != 1 {
		t.Fatalf("Chain(0) left %d compiled chains, want 1", got)
	}
	if d := maxAbsDiffVec(lazyStep, joint.VecMul(x)); d > 1e-12 {
		t.Fatalf("lazy operator differs from compiled chain by %g", d)
	}
	if fsp.Chain(0) != joint {
		t.Fatalf("Chain(0) recompiled instead of returning the cached CSR")
	}
}

// TestCommandOpErrors: the documented refusals.
func TestCommandOpErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sys := randFactoredSystem(t, rng, false)
	if _, err := sys.CommandOp(-1); err == nil {
		t.Errorf("command -1 accepted")
	}
	if _, err := sys.CommandOp(sys.SP.A()); err == nil {
		t.Errorf("out-of-range command accepted")
	}
	hooked := *sys
	hooked.SPRow = func(p, cmd, r int) mat.Vector { return nil }
	if _, err := hooked.CommandOp(0); err == nil {
		t.Errorf("SPRow-hooked system factored")
	}
	if _, err := EvaluateFactored(sys, nil, mat.NewVector(3), 0.9); err == nil {
		t.Errorf("wrong-length q0 accepted")
	}
}
