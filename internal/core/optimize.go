package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/lp"
	"repro/internal/mat"
	"repro/internal/obs"
)

// Objective selects the metric to optimize and the direction. PO1 minimizes
// MetricPenalty; PO2 minimizes MetricPower; the web-server study maximizes
// nothing but constrains MetricService from below while minimizing power.
type Objective struct {
	Metric string
	Sense  lp.Sense
}

// Bound is a linear constraint on the per-slice average of a metric:
// E[metric] Rel Value. Bounds are stated in per-slice units; the paper's
// total-discounted bounds are these values times the expected horizon
// 1/(1−α) (e.g. Example A.2 uses 0.5·10⁵ where we write 0.5).
type Bound struct {
	Metric string
	Rel    lp.Rel
	Value  float64
}

// Options configures a policy optimization run.
type Options struct {
	// Alpha is the discount factor in [0,1); the expected session length is
	// 1/(1−Alpha) slices (paper Section IV).
	Alpha float64
	// Initial is the initial state distribution q0; nil selects the uniform
	// distribution.
	Initial mat.Vector
	// Objective selects metric and sense; the zero value minimizes the
	// performance penalty (PO1).
	Objective Objective
	// Bounds are the constraint rows added to LP2, producing LP3/LP4.
	Bounds []Bound
	// UnvisitedCommand is issued deterministically in states with zero
	// state-action frequency, where the LP leaves the policy unconstrained
	// (such states are unreachable under the extracted policy). Defaults to
	// command 0.
	UnvisitedCommand int
	// SkipEvaluation disables the exact cross-check evaluation of the
	// extracted policy (a time saver inside large sweeps).
	SkipEvaluation bool
	// WarmBasis optionally warm-starts the LP from the optimal basis of a
	// previous structurally identical solve (Result.Basis) — typically the
	// neighbouring point of a Pareto sweep, where only one bound value
	// moved. An unusable basis silently falls back to a cold solve. Warm
	// starting never changes feasibility or the optimal objective; on
	// degenerate LPs with multiple optima it may extract a different
	// optimal policy (equal objective) than a cold solve would.
	WarmBasis *lp.Basis
	// LPFactorization selects the simplex basis-kernel strategy (the zero
	// value lp.FactorAuto picks sparse LU with Forrest–Tomlin updates for
	// large bases and dense LU below). Concrete enums rather than opaque
	// lp.Option closures so servers can fingerprint the knob into cache
	// keys.
	LPFactorization lp.Factorization
	// LPPricing selects the simplex pricing rule (the zero value
	// lp.PriceAuto picks Devex for large problems and Dantzig below).
	LPPricing lp.Pricing
	// LPMaxPivots bounds the simplex pivots of one solve; 0 is unlimited.
	// An exhausted budget surfaces as Status lp.BudgetExceeded — a resource
	// verdict callers treat like a deadline, not a statement about the
	// problem.
	LPMaxPivots int
	// LPPricingWorkers bounds the worker pool of the parallel pricing scans
	// (0 = auto: GOMAXPROCS capped at 8, 1 = sequential). The pivot sequence
	// is bit-identical at every worker count, so this is purely a throughput
	// knob.
	LPPricingWorkers int
	// LPMonitor attaches a solve flight recorder (lp.WithMonitor): a
	// callback observing iteration snapshots at every refactorization and
	// every LPMonitorEvery pivots. Purely observational — an attached
	// monitor never changes the pivot trajectory — and runtime-only:
	// servers must not fingerprint it into cache keys.
	LPMonitor lp.Monitor
	// LPMonitorEvery sets the monitor's "progress" pivot cadence
	// (0 = the lp default of 64).
	LPMonitorEvery int
}

// lpSolver builds the configured lp.Solver for these options.
func (o *Options) lpSolver() *lp.Solver {
	return lp.NewSolver(
		lp.WithFactorization(o.LPFactorization),
		lp.WithPricing(o.LPPricing),
		lp.WithMaxPivots(o.LPMaxPivots),
		lp.WithPricingWorkers(o.LPPricingWorkers),
		lp.WithMonitor(o.LPMonitor),
		lp.WithMonitorEvery(o.LPMonitorEvery),
	)
}

// Result is the outcome of policy optimization.
type Result struct {
	// Status is the LP status; all other fields are valid only when it is
	// lp.Optimal.
	Status lp.Status
	// Policy is the extracted optimal Markov stationary policy (Eq. 16).
	Policy *Policy
	// Frequencies is the N×A matrix of scaled state–action frequencies
	// y(s,a) = (1−α)x(s,a); entries sum to one.
	Frequencies *mat.Matrix
	// Objective is the optimal per-slice expected value of the objective
	// metric.
	Objective float64
	// Averages maps every model metric to its per-slice expected value
	// under the optimal frequencies.
	Averages map[string]float64
	// Eval is the exact evaluation of the extracted policy (nil when
	// SkipEvaluation); by construction its averages agree with Averages.
	Eval *Evaluation
	// LPIterations counts simplex pivots.
	LPIterations int
	// LPRefactorizations counts full basis refactorizations (O(m³) under
	// the dense factorization, O(nnz + fill) under the sparse one).
	// Together with LPIterations this is the solver work a query actually
	// performed — what the composite benchmarks report next to wall time.
	LPRefactorizations int
	// LPFactorNNZ is the stored nonzeros of the final basis factorization
	// (m² dense, nnz(L)+nnz(U)+etas sparse) — the fill-in statistic that
	// shows whether the sparse kernel is containing fill on this model
	// family.
	LPFactorNNZ int
	// LPTimings is the solver's per-stage wall-clock breakdown
	// (ftran/btran/price/factor/update) — the attribution that shows where
	// a solve's time went, stage by stage.
	LPTimings lp.Timings
	// Basis is the optimal LP basis, reusable as Options.WarmBasis for the
	// next solve of a structurally identical problem.
	Basis *lp.Basis
	// WarmStarted reports whether the LP actually reused Options.WarmBasis
	// (false when none was given or it fell back to a cold solve).
	WarmStarted bool
}

// ErrInfeasible is wrapped by Optimize when the constraint set cannot be
// met (the paper's f(c) = +∞ case defining the feasible allocation set).
var ErrInfeasible = errors.New("core: constraints infeasible")

// Optimize solves the constrained policy optimization problem on model m by
// building the state–action frequency linear program of Appendix A
// (LP2 with the balance equations; LP3/LP4 when Bounds are present) and
// extracting the optimal Markov stationary policy.
func Optimize(m *Model, opts Options) (*Result, error) {
	return OptimizeCtx(context.Background(), m, opts)
}

// OptimizeCtx is Optimize under a context. Cancellation is checked inside
// the simplex pivot loop (lp.Solver.Solve), so a deadline or cancel
// aborts a solve mid-flight within one pivot — the property long-lived
// servers need to make per-request deadlines real. A cancelled solve
// returns a Result with Status lp.Cancelled and an error satisfying
// errors.Is against context.Canceled or context.DeadlineExceeded.
func OptimizeCtx(ctx context.Context, m *Model, opts Options) (*Result, error) {
	_, sp := obs.StartSpan(ctx, "build")
	prob, err := BuildFrequencyLP(m, opts)
	if prob != nil {
		sp.Set("vars", prob.NumVars())
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	return OptimizeProblemCtx(ctx, m, opts, prob)
}

// OptimizeProblemCtx is OptimizeCtx on a caller-supplied frequency LP: prob
// must be the program BuildFrequencyLP(m, opts) would assemble — typically
// it was built exactly that way once and then revised in place with
// PatchFrequencyLP as the model's SR drifted. This is the online re-solve
// hot path: the Problem allocation, its objective vector and every
// constraint row's index structure are reused across solves, so a refresh
// pays only for coefficient rewrites and simplex pivots. Only cheap shape
// checks guard the pairing of prob and m; a semantically mismatched problem
// yields a well-formed but wrong answer, exactly as it would for any solver
// handed the wrong data.
func OptimizeProblemCtx(ctx context.Context, m *Model, opts Options, prob *lp.Problem) (*Result, error) {
	if opts.Objective.Metric == "" {
		opts.Objective.Metric = MetricPenalty
	}
	if opts.UnvisitedCommand < 0 || opts.UnvisitedCommand >= m.A {
		return nil, fmt.Errorf("core: unvisited command %d outside [0,%d)", opts.UnvisitedCommand, m.A)
	}
	if prob == nil {
		return nil, fmt.Errorf("core: nil frequency LP")
	}
	if prob.NumVars() != m.N*m.A {
		return nil, fmt.Errorf("core: frequency LP has %d variables, want %d", prob.NumVars(), m.N*m.A)
	}
	// q0 is resolved through the same helper BuildFrequencyLP uses, so the
	// LP and the final policy evaluation agree on the initial distribution.
	q0, err := initialDistribution(m, opts)
	if err != nil {
		return nil, err
	}

	solveCtx, sp := obs.StartSpan(ctx, "solve")
	sol, basis, err := opts.lpSolver().Solve(solveCtx, prob, opts.WarmBasis)
	sp.Set("status", sol.Status.String())
	sp.Set("pivots", sol.Iterations)
	sp.Set("refactorizations", sol.Refactorizations)
	sp.Set("factor_nnz", sol.FactorNNZ)
	sp.Set("warm", sol.WarmStarted)
	annotateTimings(sp, sol.Timings)
	sp.End()
	res := &Result{
		Status:             sol.Status,
		LPIterations:       sol.Iterations,
		LPRefactorizations: sol.Refactorizations,
		LPFactorNNZ:        sol.FactorNNZ,
		LPTimings:          sol.Timings,
		Basis:              basis,
		WarmStarted:        sol.WarmStarted,
	}
	if err != nil {
		if sol.Status == lp.Infeasible {
			return res, fmt.Errorf("core: %w: %v", ErrInfeasible, err)
		}
		// The lp error already wraps the context cause on cancellation, so
		// errors.Is(err, context.Canceled/DeadlineExceeded) works here too.
		return res, fmt.Errorf("core: policy optimization LP failed: %w", err)
	}

	// Frequencies and policy extraction (Eq. 16).
	_, ex := obs.StartSpan(ctx, "extract")
	defer ex.End()
	freq := mat.NewMatrix(m.N, m.A)
	copy(freq.Data, sol.X)
	pol := mat.NewMatrix(m.N, m.A)
	const visitTol = 1e-12
	for s := 0; s < m.N; s++ {
		row := freq.Row(s)
		total := row.Sum()
		if total > visitTol {
			dst := pol.Row(s)
			for a := 0; a < m.A; a++ {
				v := row[a] / total
				if v < 0 {
					v = 0
				}
				dst[a] = v
			}
			dst.Normalize()
		} else {
			pol.Set(s, opts.UnvisitedCommand, 1)
		}
	}
	policy, err := NewPolicy(pol)
	if err != nil {
		return nil, fmt.Errorf("core: extracted policy invalid: %w", err)
	}
	res.Policy = policy
	res.Frequencies = freq

	res.Averages = make(map[string]float64, len(m.Metrics))
	for name, table := range m.Metrics {
		v := 0.0
		for i, y := range freq.Data {
			if y != 0 {
				v += y * table.Data[i]
			}
		}
		res.Averages[name] = v
	}
	res.Objective = res.Averages[opts.Objective.Metric]

	if !opts.SkipEvaluation {
		ev, err := Evaluate(m, policy, q0, opts.Alpha)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating extracted policy: %w", err)
		}
		res.Eval = ev
	}
	return res, nil
}

// annotateTimings attaches the solver's per-stage wall-clock breakdown to
// the solve span, in milliseconds, mirroring the stage keys the benchmarks
// report (ftran_ms, btran_ms, price_ms, factor_ms, update_ms).
func annotateTimings(sp *obs.Span, t lp.Timings) {
	if sp == nil || t.Total() == 0 {
		return
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	sp.Set("ftran_ms", ms(t.Ftran))
	sp.Set("btran_ms", ms(t.Btran))
	sp.Set("price_ms", ms(t.Price))
	sp.Set("factor_ms", ms(t.Factor))
	sp.Set("update_ms", ms(t.Update))
}

// BuildFrequencyLP assembles the state–action frequency linear program of
// Appendix A (LP2; LP3/LP4 when Bounds are present) for model m: one
// variable per (state, command) pair, the balance equalities
//
//	Σ_a y(j,a) − α Σ_s Σ_a p_{s,j}(a) y(s,a) = (1−α) q0_j,
//
// and one row per metric bound. Rows are assembled directly in sparse form
// from the model's CSR transition structure — the balance column of (s,a)
// is e_s − α·P_a(s,·)ᵀ, so row j's entries come straight from the rows of
// the transposed chains — and the solver stores the matrix column-sparse,
// so no dense |S·A|-wide coefficient vector is ever materialized. Optimize
// is the primary caller; the function is exported so benchmarks and parity
// tests can run the identical LP through other solvers (e.g. lp.SolveDense).
func BuildFrequencyLP(m *Model, opts Options) (*lp.Problem, error) {
	if opts.Alpha < 0 || opts.Alpha >= 1 {
		return nil, fmt.Errorf("core: discount factor %g outside [0,1)", opts.Alpha)
	}
	if opts.Objective.Metric == "" {
		opts.Objective.Metric = MetricPenalty
	}
	objTable, err := m.Metric(opts.Objective.Metric)
	if err != nil {
		return nil, err
	}
	q0, err := initialDistribution(m, opts)
	if err != nil {
		return nil, err
	}

	nv := m.N * m.A
	prob := lp.NewProblem(opts.Objective.Sense, nv)
	for s := 0; s < m.N; s++ {
		for a := 0; a < m.A; a++ {
			prob.Obj[s*m.A+a] = objTable.At(s, a)
		}
	}

	alpha := opts.Alpha
	pts := transposedChains(m)
	var idx []int
	var val []float64
	for j := 0; j < m.N; j++ {
		idx, val = balanceRowNZ(m, pts, alpha, j, idx[:0], val[:0])
		prob.AddConstraintNZ(fmt.Sprintf("balance[%d]", j), idx, val, lp.EQ, (1-alpha)*q0[j])
	}

	for _, b := range opts.Bounds {
		table, err := m.Metric(b.Metric)
		if err != nil {
			return nil, err
		}
		idx, val = boundRowNZ(m, table, idx[:0], val[:0])
		prob.AddConstraintNZ(fmt.Sprintf("%s %s %g", b.Metric, b.Rel, b.Value), idx, val, b.Rel, b.Value)
	}
	return prob, nil
}

// transposedChains returns the per-command transposes of the model's
// transition matrices: per state j they give the incoming transitions
// (s, p_{s,j}(a)) each balance row needs, so one O(nnz) transpose per
// command replaces an O(N²) column scan per row.
func transposedChains(m *Model) []*mat.CSR {
	pts := make([]*mat.CSR, m.A)
	for a := 0; a < m.A; a++ {
		pts[a] = m.P[a].T()
	}
	return pts
}

// balanceRowNZ appends the raw (column, value) pairs of balance row j —
// e_s − α·P_a(s,·)ᵀ per (s,a) column — to idx/val and returns the extended
// slices. Pairs are neither sorted nor merged (a self-loop p_{j,j}(a)
// duplicates the diagonal column); AddConstraintNZ and compressRowNZ both
// normalize identically.
func balanceRowNZ(m *Model, pts []*mat.CSR, alpha float64, j int, idx []int, val []float64) ([]int, []float64) {
	for a := 0; a < m.A; a++ {
		idx = append(idx, j*m.A+a)
		val = append(val, 1)
		cols, vals := pts[a].RowNZ(j)
		for k, s := range cols {
			idx = append(idx, s*m.A+a)
			val = append(val, -alpha*vals[k])
		}
	}
	return idx, val
}

// boundRowNZ appends the nonzero (column, value) pairs of a metric bound
// row to idx/val and returns the extended slices (already sorted: the scan
// is in column order and metric tables have no duplicate entries).
func boundRowNZ(m *Model, table *mat.Matrix, idx []int, val []float64) ([]int, []float64) {
	for s := 0; s < m.N; s++ {
		for a := 0; a < m.A; a++ {
			if v := table.At(s, a); v != 0 {
				idx = append(idx, s*m.A+a)
				val = append(val, v)
			}
		}
	}
	return idx, val
}

// initialDistribution resolves and validates Options.Initial (nil selects
// the uniform distribution); it is the single owner of the q0 checks shared
// by Optimize and BuildFrequencyLP.
func initialDistribution(m *Model, opts Options) (mat.Vector, error) {
	q0 := opts.Initial
	if q0 == nil {
		return Uniform(m.N), nil
	}
	if len(q0) != m.N {
		return nil, fmt.Errorf("core: initial distribution has %d entries, want %d", len(q0), m.N)
	}
	if !q0.IsDistribution(1e-9) {
		return nil, fmt.Errorf("core: initial distribution does not sum to 1")
	}
	return q0, nil
}

// HorizonToAlpha converts an expected session length in slices (the paper's
// "time horizon") to the equivalent discount factor α = 1 − 1/horizon.
func HorizonToAlpha(horizon float64) float64 {
	if horizon < 1 {
		panic(fmt.Sprintf("core: horizon %g < 1 slice", horizon))
	}
	return 1 - 1/horizon
}

// AlphaToHorizon is the inverse of HorizonToAlpha.
func AlphaToHorizon(alpha float64) float64 {
	if alpha < 0 || alpha >= 1 {
		panic(fmt.Sprintf("core: alpha %g outside [0,1)", alpha))
	}
	return 1 / (1 - alpha)
}

// WaitingTimeBound converts a mean-waiting-time bound (in slices) into the
// equivalent mean-queue-length bound via Little's law, using the SR's
// long-run arrival rate: E[q] = λ·W. The paper's disk study states latency
// constraints this way.
func WaitingTimeBound(sr *ServiceRequester, maxWait float64) (Bound, error) {
	lambda, err := sr.MeanArrivalRate()
	if err != nil {
		return Bound{}, err
	}
	return Bound{Metric: MetricPenalty, Rel: lp.LE, Value: lambda * maxWait}, nil
}

// ParetoPoint is one point of a power–performance tradeoff curve.
type ParetoPoint struct {
	// BoundValue is the swept constraint value.
	BoundValue float64
	// Feasible reports whether the LP was feasible at this bound (the
	// paper's feasible-allocation set membership).
	Feasible bool
	// Objective is the optimal objective (per-slice units) when feasible.
	Objective float64
	// Averages carries all per-slice metric averages when feasible.
	Averages map[string]float64
	// Result is the full optimization result when feasible (policy etc.).
	Result *Result
}

// ParetoSweep solves the optimization once per value in boundValues for the
// constraint "metric rel v", holding all other options fixed, and returns
// the tradeoff curve (Section IV-A). Infeasible values yield points with
// Feasible=false, corresponding to f(c)=+∞ in the paper.
//
// Consecutive points differ only in one right-hand side, so each solve
// warm-starts from the previous feasible point's optimal basis (a caller-
// supplied Options.WarmBasis seeds the first point). This is the sequential
// reference path; package sweep runs ParetoSweepCtx per chunk on a worker
// pool for multi-core sweeps.
func ParetoSweep(m *Model, opts Options, metric string, rel lp.Rel, boundValues []float64) ([]ParetoPoint, error) {
	return ParetoSweepCtx(context.Background(), m, opts, metric, rel, boundValues, false)
}

// ParetoSweepCtx is ParetoSweep with cancellation — checked between points
// and, through OptimizeCtx's lp hook, inside each solve's pivot loop — and
// an optional cold mode that disables basis reuse entirely (including any
// caller-supplied Options.WarmBasis), so every point solves from scratch.
// It is the chunk worker of package sweep.
func ParetoSweepCtx(ctx context.Context, m *Model, opts Options, metric string, rel lp.Rel, boundValues []float64, cold bool) ([]ParetoPoint, error) {
	points := make([]ParetoPoint, 0, len(boundValues))
	warm := opts.WarmBasis
	if cold {
		warm = nil
	}
	for _, v := range boundValues {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		o := opts
		o.Bounds = append(append([]Bound{}, opts.Bounds...), Bound{Metric: metric, Rel: rel, Value: v})
		o.WarmBasis = warm
		res, err := OptimizeCtx(ctx, m, o)
		switch {
		case err == nil:
			if !cold {
				warm = res.Basis
			}
			points = append(points, ParetoPoint{
				BoundValue: v, Feasible: true,
				Objective: res.Objective, Averages: res.Averages, Result: res,
			})
		case errors.Is(err, ErrInfeasible):
			points = append(points, ParetoPoint{BoundValue: v, Objective: math.Inf(1)})
		default:
			return nil, err
		}
	}
	return points, nil
}
