package core

import (
	"fmt"

	"repro/internal/mat"
)

// Built-in metric names attached to every compiled Model. Additional metrics
// can be registered through System.ExtraMetrics.
const (
	// MetricPower is the expected power consumption per slice, c(s,a)
	// (paper Section III-B).
	MetricPower = "power"
	// MetricPenalty is the performance penalty per slice, d(s); by default
	// the number of enqueued requests.
	MetricPenalty = "penalty"
	// MetricLoss is the request-loss indicator: 1 when the SR issues
	// requests and the queue is full (Appendix A's loss constraint).
	MetricLoss = "loss"
	// MetricDrops is the expected number of requests dropped per slice:
	// arrivals beyond the space left by the queue and the (probabilistic)
	// service completion, averaged over the next SR state. Unlike the
	// indicator, it credits service headroom — an awake server at a full
	// queue drops nothing if it completes a request — which makes it the
	// right constraint metric when studying transition-speed and
	// queue-length sensitivity (Appendix B).
	MetricDrops = "drops"
	// MetricService is the service rate b(s,a); for systems whose
	// performance measure is throughput (the web-server case study) this is
	// the natural constraint metric.
	MetricService = "service"
)

// State identifies one composed system state: the triple
// (SP state, SR state, queue backlog) of paper Eq. 4.
type State struct {
	SP, SR, Q int
}

// System describes a complete power-managed system before compilation:
// a service provider, a service requester, and a bounded queue, with
// optional hooks that generalize the composition exactly where the paper's
// case studies need it.
type System struct {
	// Name identifies the system in diagnostics and reports.
	Name string
	// SP is the service provider: an explicit *ServiceProvider or the
	// Kronecker-factored *FactoredSP a Composite compiles to. Composition
	// consumes the Provider contract only, so the two are interchangeable.
	SP Provider
	// SR is the service requester.
	SR *ServiceRequester
	// QueueCap is the queue capacity Q; the queue component has Q+1 states.
	// Zero means requests are never buffered (the CPU case study).
	QueueCap int

	// SPRow optionally overrides the SP transition row, allowing SP
	// dynamics to depend on the current SR state. The CPU case study uses
	// this for wake-on-request: when a request arrives, the SP transitions
	// toward active regardless of the issued command. A nil function (or a
	// nil return value) falls back to SP.P[cmd].Row(spState).
	SPRow func(spState, cmd, srState int) mat.Vector

	// PenaltyFn optionally overrides the performance penalty d(s,a). The
	// default is the queue backlog (paper Section III-B). The CPU case
	// study sets it to 1 when the SR is issuing requests and the SP is
	// asleep.
	PenaltyFn func(st State, cmd int) float64

	// LossFn optionally overrides the request-loss metric. The default is
	// the paper's indicator: 1 iff the SR issues requests and the queue is
	// full.
	LossFn func(st State, cmd int) float64

	// ExtraMetrics registers additional named metrics evaluated per
	// (state, command).
	ExtraMetrics map[string]func(st State, cmd int) float64

	// HookTag canonically identifies the behavioral hooks above (SPRow,
	// PenaltyFn, LossFn, ExtraMetrics) for content fingerprinting. Closures
	// cannot be serialized, so a system that sets any hook must also carry a
	// tag that names the hook semantics — including a version marker and any
	// parameters the closures capture beyond the SP/SR data (e.g.
	// "cpu-wake-on-request/v1"). Fingerprint returns an error for hooked
	// systems without one. Hook-free systems may leave it empty.
	HookTag string
}

// NumStates returns |S_p|·|S_r|·(Q+1).
func (sys *System) NumStates() int {
	return sys.SP.N() * sys.SR.N() * (sys.QueueCap + 1)
}

// Index maps a State triple to its flat index. Layout: SP major, then SR,
// then queue.
func (sys *System) Index(st State) int {
	nq := sys.QueueCap + 1
	return (st.SP*sys.SR.N()+st.SR)*nq + st.Q
}

// StateOf inverts Index.
func (sys *System) StateOf(i int) State {
	nq := sys.QueueCap + 1
	q := i % nq
	i /= nq
	r := i % sys.SR.N()
	p := i / sys.SR.N()
	return State{SP: p, SR: r, Q: q}
}

// StateName renders state i as "(spName,srName,q)".
func (sys *System) StateName(i int) string {
	st := sys.StateOf(i)
	return fmt.Sprintf("(%s,%s,%d)", sys.SP.StateNames()[st.SP], sys.SR.States[st.SR], st.Q)
}

// Validate checks both components and the queue capacity.
func (sys *System) Validate() error {
	if sys.SP == nil || sys.SR == nil {
		return fmt.Errorf("core: system %q missing SP or SR", sys.Name)
	}
	if err := sys.SP.Validate(); err != nil {
		return err
	}
	if err := sys.SR.Validate(); err != nil {
		return err
	}
	if sys.QueueCap < 0 {
		return fmt.Errorf("core: system %q has negative queue capacity", sys.Name)
	}
	return nil
}

// Model is a compiled System: the composed controlled Markov chain (one
// transition matrix per command, paper Eq. 4) plus all cost metrics
// tabulated per (state, command).
type Model struct {
	Sys *System
	// N is the number of composed states; A the number of commands.
	N, A int
	// P[a] is the N×N transition matrix of the system under command a, in
	// compressed-sparse-row form. Composed DPM chains are extremely sparse
	// (the queue law of Eq. 3 is banded, the component chains have tiny
	// out-degrees), so a dense |S|×|S| matrix per command is never
	// materialized — on large compositions that dense family alone would
	// dwarf every other allocation in the pipeline.
	P []*mat.CSR
	// Metrics maps metric name → N×A value table.
	Metrics map[string]*mat.Matrix
}

// Build compiles the system into its composed controlled Markov chain.
// Following the paper's Example 3.5, the arrivals that drive the queue
// update in a slice are those of the destination SR state, and the queue
// drains at the service rate b of the current SP state under the issued
// command.
func (sys *System) Build() (*Model, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	n := sys.NumStates()
	a := sys.SP.A()
	nsp, nsr, nq := sys.SP.N(), sys.SR.N(), sys.QueueCap+1

	m := &Model{
		Sys:     sys,
		N:       n,
		A:       a,
		P:       make([]*mat.CSR, a),
		Metrics: make(map[string]*mat.Matrix),
	}

	// Each command's composed matrix is accumulated as triplets and
	// compressed to CSR; the dense form is never materialized. The SP chain
	// is consumed row-sparse through the Provider contract — for a factored
	// composite that row comes straight out of a Kronecker-compiled CSR, so
	// the composition never touches a dense |S_p|×|S_p| object either.
	// Stochasticity is validated directly on the sparse rows.
	var hookCols []int
	var hookVals []float64
	for cmd := 0; cmd < a; cmd++ {
		chain := sys.SP.Chain(cmd)
		if chain.Rows() != nsp || chain.Cols() != nsp {
			return nil, fmt.Errorf("core: provider %q chain for command %d is %dx%d, want %dx%d",
				sys.SP.ProviderName(), cmd, chain.Rows(), chain.Cols(), nsp, nsp)
		}
		trip := mat.NewTriplet(n, n)
		for p := 0; p < nsp; p++ {
			b := sys.SP.RateAt(p, cmd)
			chainCols, chainVals := chain.RowNZ(p)
			for r := 0; r < nsr; r++ {
				spCols, spVals := chainCols, chainVals
				if sys.SPRow != nil {
					if row := sys.SPRow(p, cmd, r); row != nil {
						if len(row) != nsp {
							return nil, fmt.Errorf("core: SPRow override returned %d entries, want %d", len(row), nsp)
						}
						if !row.IsDistribution(1e-9) {
							return nil, fmt.Errorf("core: SPRow override for (%s,%s,%s) is not a distribution",
								sys.SP.StateNames()[p], sys.SP.CommandNames()[cmd], sys.SR.States[r])
						}
						hookCols, hookVals = hookCols[:0], hookVals[:0]
						for pNext, v := range row {
							if v != 0 {
								hookCols = append(hookCols, pNext)
								hookVals = append(hookVals, v)
							}
						}
						spCols, spVals = hookCols, hookVals
					}
				}
				for q := 0; q < nq; q++ {
					i := sys.Index(State{SP: p, SR: r, Q: q})
					for rNext := 0; rNext < nsr; rNext++ {
						srP := sys.SR.P.At(r, rNext)
						if srP == 0 {
							continue
						}
						qrow := QueueRow(sys.QueueCap, q, b, sys.SR.Requests[rNext])
						for k, pNext := range spCols {
							base := spVals[k] * srP
							for qNext := 0; qNext < nq; qNext++ {
								if qrow[qNext] == 0 {
									continue
								}
								j := sys.Index(State{SP: pNext, SR: rNext, Q: qNext})
								trip.Add(i, j, base*qrow[qNext])
							}
						}
					}
				}
			}
		}
		pm := trip.ToCSR()
		if err := pm.CheckStochastic(1e-9); err != nil {
			return nil, fmt.Errorf("core: composed matrix for command %q: %w", sys.SP.CommandNames()[cmd], err)
		}
		m.P[cmd] = pm
	}

	// Metric tables: tabulate the on-demand evaluators. Model consumers get
	// O(1) lookups; Model-free consumers (the factored evaluation and
	// simulation paths) call the same MetricFns directly, so the two paths
	// compute bit-identical values.
	for name, fn := range sys.MetricFns() {
		t := mat.NewMatrix(n, a)
		for i := 0; i < n; i++ {
			st := sys.StateOf(i)
			for cmd := 0; cmd < a; cmd++ {
				t.Set(i, cmd, fn(st, cmd))
			}
		}
		m.Metrics[name] = t
	}
	return m, nil
}

// MetricFn evaluates one metric at a (state, command) pair.
type MetricFn func(st State, cmd int) float64

// MetricFns returns on-demand evaluators for every metric Build tabulates —
// the built-ins (power, penalty, loss, drops, service) with the system's
// hook overrides applied, plus ExtraMetrics. Build fills its Model.Metrics
// tables from exactly these functions; Model-free consumers evaluate them
// per visited state instead, paying O(1) memory rather than O(|S|·|A|)
// tables.
func (sys *System) MetricFns() map[string]MetricFn {
	fns := map[string]MetricFn{
		MetricPower: func(st State, cmd int) float64 {
			return sys.SP.PowerAt(st.SP, cmd)
		},
		MetricService: func(st State, cmd int) float64 {
			return sys.SP.RateAt(st.SP, cmd)
		},
		MetricPenalty: func(st State, cmd int) float64 {
			if sys.PenaltyFn != nil {
				return sys.PenaltyFn(st, cmd)
			}
			return float64(st.Q)
		},
		MetricLoss: func(st State, cmd int) float64 {
			if sys.LossFn != nil {
				return sys.LossFn(st, cmd)
			}
			if sys.SR.Requests[st.SR] > 0 && st.Q == sys.QueueCap {
				return 1
			}
			return 0
		},
		// Expected drops in the upcoming transition: arrivals follow the
		// destination SR state (composition semantics, Eq. 4).
		MetricDrops: func(st State, cmd int) float64 {
			b := sys.SP.RateAt(st.SP, cmd)
			exp := 0.0
			for rNext := 0; rNext < sys.SR.N(); rNext++ {
				if p := sys.SR.P.At(st.SR, rNext); p != 0 {
					exp += p * LostRequests(sys.QueueCap, st.Q, b, sys.SR.Requests[rNext])
				}
			}
			return exp
		},
	}
	for name, fn := range sys.ExtraMetrics {
		fns[name] = fn
	}
	return fns
}

// Metric returns the named metric table or an error listing the available
// names.
func (m *Model) Metric(name string) (*mat.Matrix, error) {
	t, ok := m.Metrics[name]
	if !ok {
		names := make([]string, 0, len(m.Metrics))
		for k := range m.Metrics {
			names = append(names, k)
		}
		return nil, fmt.Errorf("core: unknown metric %q (have %v)", name, names)
	}
	return t, nil
}

// Delta returns the length-n distribution concentrated on state i.
func Delta(n, i int) mat.Vector {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("core: Delta index %d outside [0,%d)", i, n))
	}
	v := mat.NewVector(n)
	v[i] = 1
	return v
}

// Uniform returns the uniform distribution over n states.
func Uniform(n int) mat.Vector {
	v := mat.NewVector(n)
	for i := range v {
		v[i] = 1 / float64(n)
	}
	return v
}
