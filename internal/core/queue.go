package core

import (
	"fmt"

	"repro/internal/mat"
)

// QueueRow returns the one-slice transition distribution of the bounded
// service queue (paper Eq. 3 with its corner cases), given:
//
//	capacity Q (states 0..Q),
//	current backlog q,
//	service rate b = probability a request completes this slice,
//	arrivals r = number of requests issued this slice.
//
// The law, exactly as in the paper:
//
//   - r == 0, q == 0: the queue stays empty.
//   - r == 0, q > 0:  q−1 with probability b, q with probability 1−b.
//   - r > 0, q+r > Q: the queue becomes (stays) full with probability 1 and
//     the excess arrivals are lost.
//   - r > 0, q+r ≤ Q: q+r−1 with probability b (one request — enqueued or
//     incoming — is serviced), q+r with probability 1−b.
//
// The returned vector has length Q+1 and sums to 1.
func QueueRow(capacity, q int, b float64, r int) mat.Vector {
	if capacity < 0 {
		panic(fmt.Sprintf("core: negative queue capacity %d", capacity))
	}
	if q < 0 || q > capacity {
		panic(fmt.Sprintf("core: queue state %d outside [0,%d]", q, capacity))
	}
	if b < 0 || b > 1 {
		panic(fmt.Sprintf("core: service rate %g outside [0,1]", b))
	}
	if r < 0 {
		panic(fmt.Sprintf("core: negative arrival count %d", r))
	}
	row := mat.NewVector(capacity + 1)
	switch {
	case r == 0 && q == 0:
		row[0] = 1
	case r == 0:
		row[q-1] += b
		row[q] += 1 - b
	case q+r > capacity:
		row[capacity] = 1
	default:
		row[q+r-1] += b
		row[q+r] += 1 - b
	}
	return row
}

// QueueMatrix returns the full (Q+1)×(Q+1) queue transition matrix for fixed
// service rate b and arrival count r — the matrices tabulated in the paper's
// Example 3.3.
func QueueMatrix(capacity int, b float64, r int) *mat.Matrix {
	m := mat.NewMatrix(capacity+1, capacity+1)
	for q := 0; q <= capacity; q++ {
		copy(m.Row(q), QueueRow(capacity, q, b, r))
	}
	return m
}

// LostRequests returns the expected number of requests lost in one slice
// when the queue holds q of capacity Q, r requests arrive, and service
// completes with probability b. Arrivals beyond the space freed by (at most
// one) service completion are lost. This is the weighted loss metric; the
// paper's LP uses the simpler full-queue indicator (see System.LossFn).
func LostRequests(capacity, q int, b float64, r int) float64 {
	if r == 0 {
		return 0
	}
	// With probability b one slot frees this slice.
	lossServed := float64(maxInt(0, q+r-1-capacity))
	lossUnserved := float64(maxInt(0, q+r-capacity))
	return b*lossServed + (1-b)*lossUnserved
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
