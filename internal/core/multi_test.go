package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mat"
)

// twoStateSP builds a minimal valid two-state/two-command provider with
// distinguishable dynamics for composition tests.
func twoStateSP(name string, wake float64) *ServiceProvider {
	return &ServiceProvider{
		Name:     name,
		States:   []string{name + "0", name + "1"},
		Commands: []string{name + "A", name + "B"},
		P: []*mat.Matrix{
			mat.FromRows([][]float64{{1, 0}, {wake, 1 - wake}}),
			mat.FromRows([][]float64{{0.5, 0.5}, {0, 1}}),
		},
		ServiceRate: mat.FromRows([][]float64{{0.5, 0}, {0, 0}}),
		Power:       mat.FromRows([][]float64{{1, 2}, {3, 4}}),
	}
}

// TestCompositeJointIndexing pins the documented index order: component 0
// varies fastest in both the joint state and the joint command index, and
// joint names join the component names with "+".
func TestCompositeJointIndexing(t *testing.T) {
	p0 := twoStateSP("x", 0.1)
	p1 := twoStateSP("y", 0.2)
	c, err := CompositeSP("joint", []*ServiceProvider{p0, p1}, func([]int, []int) float64 { return 0 })
	if err != nil {
		t.Fatalf("CompositeSP: %v", err)
	}
	if c.N() != 4 || c.A() != 4 {
		t.Fatalf("joint is %d states × %d commands, want 4×4", c.N(), c.A())
	}
	// Joint index s = s0 + 2·s1; state names follow the same order.
	for s1 := 0; s1 < 2; s1++ {
		for s0 := 0; s0 < 2; s0++ {
			joint := s0 + 2*s1
			want := p0.States[s0] + "+" + p1.States[s1]
			if c.States[joint] != want {
				t.Errorf("state %d named %q, want %q", joint, c.States[joint], want)
			}
		}
	}
	for c1 := 0; c1 < 2; c1++ {
		for c0 := 0; c0 < 2; c0++ {
			joint := c0 + 2*c1
			want := p0.Commands[c0] + "+" + p1.Commands[c1]
			if c.Commands[joint] != want {
				t.Errorf("command %d named %q, want %q", joint, c.Commands[joint], want)
			}
		}
	}
	// Transition probabilities factor: P_joint((s0,s1)→(t0,t1) | (c0,c1)) =
	// P0(s0→t0|c0) · P1(s1→t1|c1).
	for cj := 0; cj < 4; cj++ {
		c0, c1 := cj%2, cj/2
		for s := 0; s < 4; s++ {
			s0, s1 := s%2, s/2
			for d := 0; d < 4; d++ {
				d0, d1 := d%2, d/2
				want := p0.P[c0].At(s0, d0) * p1.P[c1].At(s1, d1)
				if got := c.P[cj].At(s, d); math.Abs(got-want) > 1e-12 {
					t.Errorf("P[%d](%d,%d) = %g, want %g", cj, s, d, got, want)
				}
			}
		}
	}
}

// TestCompositePowerAdditivity: joint power is the sum of the component
// powers at the decoded (state, command) pairs — paper Section VII's
// additive-power assumption.
func TestCompositePowerAdditivity(t *testing.T) {
	p0 := twoStateSP("x", 0.1)
	p1 := twoStateSP("y", 0.2)
	p2 := twoStateSP("z", 0.3)
	parts := []*ServiceProvider{p0, p1, p2}
	c, err := CompositeSP("triple", parts, func([]int, []int) float64 { return 0.25 })
	if err != nil {
		t.Fatalf("CompositeSP: %v", err)
	}
	for s := 0; s < c.N(); s++ {
		for cmd := 0; cmd < c.A(); cmd++ {
			want := 0.0
			si, ci := s, cmd
			for _, p := range parts {
				want += p.Power.At(si%p.N(), ci%p.A())
				si /= p.N()
				ci /= p.A()
			}
			if got := c.Power.At(s, cmd); math.Abs(got-want) > 1e-12 {
				t.Errorf("power(%d,%d) = %g, want %g", s, cmd, got, want)
			}
		}
	}
}

// TestCompositeRateCombiner: the caller's combiner defines the joint service
// rate and receives correctly decoded per-part indices.
func TestCompositeRateCombiner(t *testing.T) {
	p0 := twoStateSP("x", 0.1)
	p1 := twoStateSP("y", 0.2)
	c, err := CompositeSP("rated", []*ServiceProvider{p0, p1},
		func(states, cmds []int) float64 {
			if len(states) != 2 || len(cmds) != 2 {
				t.Fatalf("combiner got %d states, %d cmds", len(states), len(cmds))
			}
			// Deterministic fingerprint of the decoded indices, in [0,1].
			return float64(states[0]+2*states[1])/8 + float64(cmds[0]+2*cmds[1])/8
		})
	if err != nil {
		t.Fatalf("CompositeSP: %v", err)
	}
	for s := 0; s < 4; s++ {
		for cmd := 0; cmd < 4; cmd++ {
			want := float64(s)/8 + float64(cmd)/8
			if got := c.ServiceRate.At(s, cmd); math.Abs(got-want) > 1e-12 {
				t.Errorf("rate(%d,%d) = %g, want %g (index decode broken)", s, cmd, got, want)
			}
		}
	}
}

// TestCompositeErrorPaths covers every rejection branch of CompositeSP.
func TestCompositeErrorPaths(t *testing.T) {
	ok := func([]int, []int) float64 { return 0.5 }
	if _, err := CompositeSP("e", nil, ok); err == nil {
		t.Errorf("empty part list accepted")
	}
	if _, err := CompositeSP("e", []*ServiceProvider{twoStateSP("x", 0.1)}, nil); err == nil {
		t.Errorf("nil rate combiner accepted")
	}
	bad := twoStateSP("bad", 0.1)
	bad.P[0].Set(0, 0, 0.7) // row no longer sums to 1
	if _, err := CompositeSP("e", []*ServiceProvider{bad}, ok); err == nil {
		t.Errorf("invalid component accepted")
	}
	if _, err := CompositeSP("e", []*ServiceProvider{twoStateSP("x", 0.1)},
		func([]int, []int) float64 { return 1.5 }); err == nil {
		t.Errorf("service rate > 1 accepted")
	}
	if _, err := CompositeSP("e", []*ServiceProvider{twoStateSP("x", 0.1)},
		func([]int, []int) float64 { return -0.1 }); err == nil {
		t.Errorf("negative service rate accepted")
	}
	// Error messages should carry the offending joint names.
	_, err := CompositeSP("e", []*ServiceProvider{twoStateSP("x", 0.1)},
		func(states, cmds []int) float64 {
			if states[0] == 1 && cmds[0] == 1 {
				return 2
			}
			return 0
		})
	if err == nil || !strings.Contains(err.Error(), "x1") || !strings.Contains(err.Error(), "xB") {
		t.Errorf("rate error %v does not name the joint state/command", err)
	}
}

// TestCompositeSystemEndToEnd compiles a 2-part composite into a full
// system and checks the composed model stays consistent: stochastic sparse
// transitions and additive power surfaced through the model metrics.
func TestCompositeSystemEndToEnd(t *testing.T) {
	parts := []*ServiceProvider{twoStateSP("x", 0.1), twoStateSP("y", 0.2)}
	sp, err := CompositeSP("pair", parts, func(states, cmds []int) float64 {
		if states[0] == 1 || states[1] == 1 {
			return 0.5
		}
		return 0
	})
	if err != nil {
		t.Fatalf("CompositeSP: %v", err)
	}
	sys := &System{Name: "pair-sys", SP: sp, SR: TwoStateSR("w", 0.1, 0.3), QueueCap: 2}
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if m.N != sp.N()*2*3 || m.A != sp.A() {
		t.Fatalf("model is %d×%d, want %d×%d", m.N, m.A, sp.N()*2*3, sp.A())
	}
	for a, p := range m.P {
		if err := p.CheckStochastic(1e-9); err != nil {
			t.Errorf("command %d: %v", a, err)
		}
	}
	power, _ := m.Metric(MetricPower)
	for i := 0; i < m.N; i++ {
		st := sys.StateOf(i)
		for cmd := 0; cmd < m.A; cmd++ {
			if got := power.At(i, cmd); got != sp.Power.At(st.SP, cmd) {
				t.Errorf("model power(%d,%d) = %g, want %g", i, cmd, got, sp.Power.At(st.SP, cmd))
			}
		}
	}
}
