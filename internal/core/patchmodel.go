package core

import (
	"errors"
	"fmt"
)

// ErrModelShape reports that a compiled model cannot be patched because the
// system changed shape — component state counts, command count, queue
// capacity, or the registered metric set moved. The caller must rebuild with
// System.Build.
var ErrModelShape = errors.New("core: compiled model shape changed")

// ErrModelPattern reports that a compiled model cannot be patched in place
// because a composed transition row's sparsity pattern changed — a
// probability moved to or from exactly zero. The caller must rebuild with
// System.Build.
var ErrModelPattern = errors.New("core: compiled model sparsity pattern changed")

// PatchModel recompiles sys into an existing compiled Model in place, so
// that m becomes exactly the model sys.Build() would produce — without
// reallocating the per-command CSR chains or any metric table. This is the
// model half of the online fast path: consecutive SR estimates from a
// streaming extractor yield systems whose transition probabilities drift but
// whose sparsity structure almost never moves, so only the stored values of
// each CSR row and the metric tables need rewriting, and the row index
// structure — the part Triplet.ToCSR pays a sort for — carries over
// verbatim. PatchFrequencyLP then patches the LP assembled from the patched
// model, completing a rebuild-free refresh.
//
// The patch is refused when the system's shape moved (ErrModelShape) or when
// any composed row's nonzero pattern differs from a fresh compilation
// (ErrModelPattern). On any error the model may be partially rewritten —
// the same contract as PatchFrequencyLP — and the caller falls back to
// sys.Build(). A patched model is bit-for-bit the model a fresh build would
// produce: the regeneration below follows Build's accumulation order
// expression by expression, and the normalization matches ToCSR's (sort by
// column, drop exact zeros; composed rows never produce duplicates because
// (pNext, rNext, qNext) ↔ j is one-to-one within a row).
func PatchModel(m *Model, sys *System) error {
	if m == nil {
		return fmt.Errorf("%w: nil model", ErrModelShape)
	}
	if err := sys.Validate(); err != nil {
		return err
	}
	n := sys.NumStates()
	a := sys.SP.A()
	nsp, nsr, nq := sys.SP.N(), sys.SR.N(), sys.QueueCap+1
	if m.N != n || m.A != a || len(m.P) != a {
		return fmt.Errorf("%w: model is %d states x %d commands, system wants %d x %d",
			ErrModelShape, m.N, m.A, n, a)
	}
	if old := m.Sys; old != nil {
		if old.SP.N() != nsp || old.SR.N() != nsr || old.QueueCap != sys.QueueCap {
			return fmt.Errorf("%w: component dimensions moved", ErrModelShape)
		}
	}
	for cmd := 0; cmd < a; cmd++ {
		if p := m.P[cmd]; p == nil || p.Rows() != n || p.Cols() != n {
			return fmt.Errorf("%w: stored chain for command %d is not %dx%d", ErrModelShape, cmd, n, n)
		}
	}
	// The metric name sets must coincide: built-ins are always present, and
	// every extra metric must already have a table (and vice versa — a stale
	// table would silently keep old values).
	builtin := map[string]bool{
		MetricPower: true, MetricPenalty: true, MetricLoss: true,
		MetricDrops: true, MetricService: true,
	}
	for name := range builtin {
		if t := m.Metrics[name]; t == nil || t.Rows != n || t.Cols != a {
			return fmt.Errorf("%w: metric table %q missing or resized", ErrModelShape, name)
		}
	}
	for name := range sys.ExtraMetrics {
		if t := m.Metrics[name]; t == nil || t.Rows != n || t.Cols != a {
			return fmt.Errorf("%w: extra metric table %q missing or resized", ErrModelShape, name)
		}
	}
	for name := range m.Metrics {
		if !builtin[name] && sys.ExtraMetrics[name] == nil {
			return fmt.Errorf("%w: stored metric table %q no longer registered", ErrModelShape, name)
		}
	}

	// Rewrite the composed chains row by row, regenerating each row's
	// nonzeros exactly as Build's triplet accumulation does, normalizing with
	// the same sort-and-drop-zeros rule ToCSR applies, and overwriting the
	// stored values after the pattern check.
	var hookCols, rowIdx, rowCIdx []int
	var hookVals, rowVal, rowCVal []float64
	for cmd := 0; cmd < a; cmd++ {
		chain := sys.SP.Chain(cmd)
		if chain.Rows() != nsp || chain.Cols() != nsp {
			return fmt.Errorf("core: provider %q chain for command %d is %dx%d, want %dx%d",
				sys.SP.ProviderName(), cmd, chain.Rows(), chain.Cols(), nsp, nsp)
		}
		pm := m.P[cmd]
		for p := 0; p < nsp; p++ {
			b := sys.SP.RateAt(p, cmd)
			chainCols, chainVals := chain.RowNZ(p)
			for r := 0; r < nsr; r++ {
				spCols, spVals := chainCols, chainVals
				if sys.SPRow != nil {
					if row := sys.SPRow(p, cmd, r); row != nil {
						if len(row) != nsp {
							return fmt.Errorf("core: SPRow override returned %d entries, want %d", len(row), nsp)
						}
						if !row.IsDistribution(1e-9) {
							return fmt.Errorf("core: SPRow override for (%s,%s,%s) is not a distribution",
								sys.SP.StateNames()[p], sys.SP.CommandNames()[cmd], sys.SR.States[r])
						}
						hookCols, hookVals = hookCols[:0], hookVals[:0]
						for pNext, v := range row {
							if v != 0 {
								hookCols = append(hookCols, pNext)
								hookVals = append(hookVals, v)
							}
						}
						spCols, spVals = hookCols, hookVals
					}
				}
				for q := 0; q < nq; q++ {
					i := sys.Index(State{SP: p, SR: r, Q: q})
					rowIdx, rowVal = rowIdx[:0], rowVal[:0]
					for rNext := 0; rNext < nsr; rNext++ {
						srP := sys.SR.P.At(r, rNext)
						if srP == 0 {
							continue
						}
						qrow := QueueRow(sys.QueueCap, q, b, sys.SR.Requests[rNext])
						for k, pNext := range spCols {
							base := spVals[k] * srP
							for qNext := 0; qNext < nq; qNext++ {
								if qrow[qNext] == 0 {
									continue
								}
								j := sys.Index(State{SP: pNext, SR: rNext, Q: qNext})
								rowIdx = append(rowIdx, j)
								rowVal = append(rowVal, base*qrow[qNext])
							}
						}
					}
					rowCIdx, rowCVal = compressRowNZ(rowIdx, rowVal, rowCIdx[:0], rowCVal[:0])
					if err := pm.RewriteRowNZ(i, rowCIdx, rowCVal); err != nil {
						return fmt.Errorf("%w: command %q row %d: %v",
							ErrModelPattern, sys.SP.CommandNames()[cmd], i, err)
					}
				}
			}
		}
		if err := pm.CheckStochastic(1e-9); err != nil {
			return fmt.Errorf("core: composed matrix for command %q: %w", sys.SP.CommandNames()[cmd], err)
		}
	}

	// Metric tables, in place. Every entry is written (the loss default
	// writes its zero branch explicitly), so no stale value survives.
	power := m.Metrics[MetricPower]
	penalty := m.Metrics[MetricPenalty]
	loss := m.Metrics[MetricLoss]
	drops := m.Metrics[MetricDrops]
	service := m.Metrics[MetricService]
	for i := 0; i < n; i++ {
		st := sys.StateOf(i)
		for cmd := 0; cmd < a; cmd++ {
			power.Set(i, cmd, sys.SP.PowerAt(st.SP, cmd))
			service.Set(i, cmd, sys.SP.RateAt(st.SP, cmd))
			if sys.PenaltyFn != nil {
				penalty.Set(i, cmd, sys.PenaltyFn(st, cmd))
			} else {
				penalty.Set(i, cmd, float64(st.Q))
			}
			switch {
			case sys.LossFn != nil:
				loss.Set(i, cmd, sys.LossFn(st, cmd))
			case sys.SR.Requests[st.SR] > 0 && st.Q == sys.QueueCap:
				loss.Set(i, cmd, 1)
			default:
				loss.Set(i, cmd, 0)
			}
			b := sys.SP.RateAt(st.SP, cmd)
			exp := 0.0
			for rNext := 0; rNext < sys.SR.N(); rNext++ {
				if p := sys.SR.P.At(st.SR, rNext); p != 0 {
					exp += p * LostRequests(sys.QueueCap, st.Q, b, sys.SR.Requests[rNext])
				}
			}
			drops.Set(i, cmd, exp)
		}
	}
	for name, fn := range sys.ExtraMetrics {
		t := m.Metrics[name]
		for i := 0; i < n; i++ {
			st := sys.StateOf(i)
			for cmd := 0; cmd < a; cmd++ {
				t.Set(i, cmd, fn(st, cmd))
			}
		}
	}
	m.Sys = sys
	return nil
}
