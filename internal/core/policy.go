package core

import (
	"fmt"
	"math"

	"repro/internal/markov"
	"repro/internal/mat"
)

// Policy is a Markov stationary randomized policy (paper Definitions
// 3.5–3.7): row s of the matrix is the probability distribution over
// commands issued when the system is in state s. Deterministic Markov
// stationary policies are the special case with one unit entry per row.
type Policy struct {
	// M is the N×A matrix of command probabilities π(s,a).
	M *mat.Matrix
}

// NewPolicy wraps an N×A stochastic matrix as a policy after validation.
func NewPolicy(m *mat.Matrix) (*Policy, error) {
	p := &Policy{M: m}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// DeterministicPolicy builds the policy that issues commands[s] in state s
// with probability one (the compact vector representation of the paper's
// class D of deterministic Markov stationary policies).
func DeterministicPolicy(commands []int, numCommands int) (*Policy, error) {
	m := mat.NewMatrix(len(commands), numCommands)
	for s, c := range commands {
		if c < 0 || c >= numCommands {
			return nil, fmt.Errorf("core: command %d for state %d outside [0,%d)", c, s, numCommands)
		}
		m.Set(s, c, 1)
	}
	return &Policy{M: m}, nil
}

// ConstantPolicy issues the same command in every state (the paper's
// "trivial constant policy" of Example 3.4).
func ConstantPolicy(numStates, numCommands, command int) (*Policy, error) {
	cmds := make([]int, numStates)
	for i := range cmds {
		cmds[i] = command
	}
	return DeterministicPolicy(cmds, numCommands)
}

// N returns the number of states the policy covers.
func (p *Policy) N() int { return p.M.Rows }

// A returns the number of commands.
func (p *Policy) A() int { return p.M.Cols }

// Validate checks that every row is a probability distribution.
func (p *Policy) Validate() error {
	if p.M == nil {
		return fmt.Errorf("core: nil policy matrix")
	}
	if err := p.M.CheckStochastic(1e-7); err != nil {
		return fmt.Errorf("core: policy: %w", err)
	}
	return nil
}

// IsDeterministic reports whether every row places probability ≥ 1−tol on a
// single command.
func (p *Policy) IsDeterministic(tol float64) bool {
	for s := 0; s < p.N(); s++ {
		if p.M.Row(s).Max() < 1-tol {
			return false
		}
	}
	return true
}

// RandomizedStates returns the indices of states whose command distribution
// is genuinely randomized (no command has probability ≥ 1−tol). Theorem A.2
// predicts these are nonempty exactly when a constraint is active.
func (p *Policy) RandomizedStates(tol float64) []int {
	var out []int
	for s := 0; s < p.N(); s++ {
		if p.M.Row(s).Max() < 1-tol {
			out = append(out, s)
		}
	}
	return out
}

// CommandDist returns the command distribution in state s (aliases internal
// storage; callers must not mutate).
func (p *Policy) CommandDist(s int) mat.Vector { return p.M.Row(s) }

// ModeCommand returns the most probable command in state s.
func (p *Policy) ModeCommand(s int) int { return p.M.Row(s).ArgMax() }

// Chain composes the model's per-command transition matrices with the
// policy: P^π = Σ_a π(s,a) P_a(s,·) rowwise (paper Eq. 5). The composition
// stays sparse end to end: weighted sparse rows accumulate into a triplet
// builder and the chain is validated on its CSR form.
func (p *Policy) Chain(m *Model) (*markov.Chain, error) {
	if p.N() != m.N || p.A() != m.A {
		return nil, fmt.Errorf("core: policy is %dx%d, model wants %dx%d", p.N(), p.A(), m.N, m.A)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	trip := mat.NewTriplet(m.N, m.N)
	for s := 0; s < m.N; s++ {
		dist := p.CommandDist(s)
		for a := 0; a < m.A; a++ {
			w := dist[a]
			if w == 0 {
				continue
			}
			cols, vals := m.P[a].RowNZ(s)
			for k, j := range cols {
				trip.Add(s, j, w*vals[k])
			}
		}
	}
	return markov.NewCSR(trip.ToCSR(), 1e-7)
}

// MetricVector collapses an N×A metric table under the policy:
// out[s] = Σ_a π(s,a)·metric(s,a).
func (p *Policy) MetricVector(table *mat.Matrix) mat.Vector {
	out := mat.NewVector(p.N())
	for s := 0; s < p.N(); s++ {
		out[s] = p.CommandDist(s).Dot(table.Row(s))
	}
	return out
}

// Evaluation holds the exact (analytic) metrics of a policy on a model
// under the discounted session model: per-slice averages over the
// discounted occupancy measure, which the paper's optimizer reports and its
// simulation engine cross-checks.
type Evaluation struct {
	// Alpha is the discount factor used.
	Alpha float64
	// Occupancy is the normalized discounted state-occupancy measure
	// (sums to one).
	Occupancy mat.Vector
	// Averages maps metric name → expected per-slice value
	// Σ_s y(s) Σ_a π(s,a) metric(s,a).
	Averages map[string]float64
}

// Average returns the named per-slice average, or NaN when absent.
func (e *Evaluation) Average(name string) float64 {
	v, ok := e.Averages[name]
	if !ok {
		return math.NaN()
	}
	return v
}

// Evaluate computes the exact discounted per-slice averages of every model
// metric under the policy, starting from initial distribution q0.
func Evaluate(m *Model, p *Policy, q0 mat.Vector, alpha float64) (*Evaluation, error) {
	if len(q0) != m.N {
		return nil, fmt.Errorf("core: initial distribution has %d entries, want %d", len(q0), m.N)
	}
	chain, err := p.Chain(m)
	if err != nil {
		return nil, err
	}
	occ, err := chain.DiscountedOccupancy(q0, alpha)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{Alpha: alpha, Occupancy: occ, Averages: make(map[string]float64, len(m.Metrics))}
	for name, table := range m.Metrics {
		ev.Averages[name] = occ.Dot(p.MetricVector(table))
	}
	return ev, nil
}
