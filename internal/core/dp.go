package core

import (
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/mat"
)

// This file implements the two classical alternatives to the
// state-action-frequency LP that Appendix A cites for the *unconstrained*
// problem POU — successive approximations (value iteration) and policy
// improvement (policy iteration) — plus the value-function linear program
// LP1. All three must agree with LP2's optimum (Theorem A.1), which the
// tests exploit as a three-way cross-validation of the optimizer.

// DPResult is the outcome of an unconstrained dynamic-programming solve.
type DPResult struct {
	// Value is the optimal total discounted cost vector v* (one entry per
	// state) satisfying the optimality equations of Theorem A.1.
	Value mat.Vector
	// Policy is an optimal deterministic Markov stationary policy.
	Policy *Policy
	// Iterations counts sweeps (value iteration) or improvement rounds
	// (policy iteration).
	Iterations int
}

// bellmanBackup computes one Bellman operator application:
// out[s] = min_a cost(s,a) + α Σ_j P_a(s,j) v[j], recording the argmin.
// Each expectation is a sparse row dot, so a sweep costs O(Σ_a nnz(P_a)).
func bellmanBackup(m *Model, cost *mat.Matrix, v mat.Vector, alpha float64, out mat.Vector, argmin []int) {
	for s := 0; s < m.N; s++ {
		best := math.Inf(1)
		bestA := 0
		for a := 0; a < m.A; a++ {
			q := cost.At(s, a) + alpha*m.P[a].RowDot(s, v)
			if q < best {
				best = q
				bestA = a
			}
		}
		out[s] = best
		if argmin != nil {
			argmin[s] = bestA
		}
	}
}

// ValueIteration solves the unconstrained problem min E[Σ αᵗ metric] by
// successive approximations, stopping when the sup-norm Bellman residual
// guarantees the value is within tol of v* (the standard α/(1−α) bound).
func ValueIteration(m *Model, metric string, alpha float64, tol float64) (*DPResult, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("core: discount factor %g outside [0,1)", alpha)
	}
	if tol <= 0 {
		tol = 1e-9
	}
	cost, err := m.Metric(metric)
	if err != nil {
		return nil, err
	}
	v := mat.NewVector(m.N)
	next := mat.NewVector(m.N)
	argmin := make([]int, m.N)
	// Residual threshold so that ‖v − v*‖ ≤ tol.
	stop := tol * (1 - alpha) / math.Max(alpha, 1e-12)
	maxIter := 1 + int(math.Ceil(math.Log(1e12)/math.Max(1e-12, -math.Log(alpha))))
	iters := 0
	for ; iters < maxIter; iters++ {
		bellmanBackup(m, cost, v, alpha, next, argmin)
		if next.MaxAbsDiff(v) <= stop {
			v, next = next, v
			iters++
			break
		}
		v, next = next, v
	}
	pol, err := DeterministicPolicy(argmin, m.A)
	if err != nil {
		return nil, err
	}
	return &DPResult{Value: v, Policy: pol, Iterations: iters}, nil
}

// PolicyIteration solves the same problem by policy improvement: evaluate
// the current deterministic policy exactly (a linear solve), then improve
// greedily; terminates at a fixed point, which satisfies the optimality
// equations. Finite convergence is guaranteed because the deterministic
// policy class D is finite and each round strictly improves.
func PolicyIteration(m *Model, metric string, alpha float64) (*DPResult, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("core: discount factor %g outside [0,1)", alpha)
	}
	cost, err := m.Metric(metric)
	if err != nil {
		return nil, err
	}
	cmds := make([]int, m.N) // start from the all-zeros policy
	next := mat.NewVector(m.N)
	argmin := make([]int, m.N)
	for round := 1; ; round++ {
		pol, err := DeterministicPolicy(cmds, m.A)
		if err != nil {
			return nil, err
		}
		chain, err := pol.Chain(m)
		if err != nil {
			return nil, err
		}
		v, err := chain.DiscountedValue(pol.MetricVector(cost), alpha)
		if err != nil {
			return nil, err
		}
		bellmanBackup(m, cost, v, alpha, next, argmin)
		improved := false
		for s := range cmds {
			// Strict-improvement test with a tolerance avoids cycling
			// between equivalent actions.
			if argmin[s] != cmds[s] && next[s] < v[s]-1e-12*(1+math.Abs(v[s])) {
				cmds[s] = argmin[s]
				improved = true
			}
		}
		if !improved {
			return &DPResult{Value: v, Policy: pol, Iterations: round}, nil
		}
		if round > 10000 {
			return nil, fmt.Errorf("core: policy iteration failed to converge")
		}
	}
}

// SolveLP1 solves the value-function linear program of Appendix A (LP1):
//
//	max Σ_s v(s)   s.t.   v(s) ≤ cost(s,a) + α Σ_j P_a(s,j) v(j)  ∀(s,a),
//
// whose optimum is the optimal value vector v* (the inequalities become
// tight at the minimizing actions). Note v is free in sign; since the lp
// package works over nonnegative variables, v is shifted by the worst-case
// constant bound v(s) ≥ 0 when costs are nonnegative — which all built-in
// metrics are; an error is returned otherwise.
func SolveLP1(m *Model, metric string, alpha float64) (mat.Vector, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("core: discount factor %g outside [0,1)", alpha)
	}
	cost, err := m.Metric(metric)
	if err != nil {
		return nil, err
	}
	for _, c := range cost.Data {
		if c < 0 {
			return nil, fmt.Errorf("core: SolveLP1 requires nonnegative costs (metric %q has %g)", metric, c)
		}
	}
	prob := lp.NewProblem(lp.Maximize, m.N)
	for s := 0; s < m.N; s++ {
		prob.Obj[s] = 1
	}
	var idx []int
	var val []float64
	for s := 0; s < m.N; s++ {
		for a := 0; a < m.A; a++ {
			// Row v(s) − α Σ_j P_a(s,j) v(j) ≤ cost(s,a), assembled from the
			// sparse transition row (AddConstraintNZ merges the duplicate at
			// j = s).
			idx = append(idx[:0], s)
			val = append(val[:0], 1)
			cols, vals := m.P[a].RowNZ(s)
			for k, j := range cols {
				idx = append(idx, j)
				val = append(val, -alpha*vals[k])
			}
			prob.AddConstraintNZ(fmt.Sprintf("v[%d]≤q(%d,%d)", s, s, a), idx, val, lp.LE, cost.At(s, a))
		}
	}
	sol, _, err := lp.NewSolver().Solve(nil, prob, nil)
	if err != nil {
		return nil, fmt.Errorf("core: LP1: %w", err)
	}
	return mat.Vector(sol.X), nil
}

// BellmanResidual returns ‖v − Tv‖_∞ for the given metric, the degree to
// which v violates the optimality equations of Theorem A.1.
func BellmanResidual(m *Model, metric string, alpha float64, v mat.Vector) (float64, error) {
	cost, err := m.Metric(metric)
	if err != nil {
		return 0, err
	}
	if len(v) != m.N {
		return 0, fmt.Errorf("core: value vector has %d entries, want %d", len(v), m.N)
	}
	out := mat.NewVector(m.N)
	bellmanBackup(m, cost, v, alpha, out, nil)
	return out.MaxAbsDiff(v), nil
}
