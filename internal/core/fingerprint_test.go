package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/lp"
)

func TestFingerprintDeterministicAndSensitive(t *testing.T) {
	fp := func(sys *System) string {
		t.Helper()
		f, err := sys.Fingerprint()
		if err != nil {
			t.Fatalf("Fingerprint: %v", err)
		}
		return f
	}

	a := fp(exampleSystem())
	if b := fp(exampleSystem()); b != a {
		t.Errorf("identical systems fingerprint differently: %s vs %s", a, b)
	}

	// Every parameter class must move the fingerprint: a transition
	// probability, a power entry, the queue capacity, the SR request counts.
	dsp := func(sys *System) *ServiceProvider { return sys.SP.(*ServiceProvider) }
	perturb := []func(sys *System){
		func(sys *System) { dsp(sys).P[0].Set(0, 0, dsp(sys).P[0].At(0, 0)) }, // no-op control
		func(sys *System) { dsp(sys).Power.Set(0, 0, dsp(sys).Power.At(0, 0)+0.125) },
		func(sys *System) { sys.QueueCap++ },
		func(sys *System) { sys.SR.Requests[0]++ },
		func(sys *System) { dsp(sys).ServiceRate.Set(0, 0, dsp(sys).ServiceRate.At(0, 0)/2) },
	}
	for i, mutate := range perturb {
		sys := exampleSystem()
		mutate(sys)
		got := fp(sys)
		if i == 0 {
			if got != a {
				t.Errorf("no-op mutation changed the fingerprint")
			}
		} else if got == a {
			t.Errorf("mutation %d did not change the fingerprint", i)
		}
	}
}

func TestFingerprintHookedSystem(t *testing.T) {
	sys := exampleSystem()
	sys.PenaltyFn = func(State, int) float64 { return 0 }
	if _, err := sys.Fingerprint(); err == nil {
		t.Fatalf("hooked system without HookTag fingerprinted")
	}
	sys.HookTag = "test-hook/v1"
	a, err := sys.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint with HookTag: %v", err)
	}
	sys.HookTag = "test-hook/v2"
	if b, _ := sys.Fingerprint(); b == a {
		t.Errorf("HookTag change did not move the fingerprint")
	}
}

func TestOptimizeCtxCancelled(t *testing.T) {
	m := buildExample(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := OptimizeCtx(ctx, m, Options{
		Alpha:     HorizonToAlpha(1e4),
		Objective: Objective{Metric: MetricPower, Sense: lp.Minimize},
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if res.Status != lp.Cancelled {
		t.Errorf("status = %v, want Cancelled", res.Status)
	}
}

func TestParetoSweepCtxAlreadyCancelled(t *testing.T) {
	m := buildExample(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	points, err := ParetoSweepCtx(ctx, m, Options{
		Alpha:     HorizonToAlpha(1e4),
		Objective: Objective{Metric: MetricPower, Sense: lp.Minimize},
	}, MetricPenalty, lp.LE, []float64{0.5, 0.4, 0.3}, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if points != nil {
		t.Errorf("cancelled sweep returned %d points", len(points))
	}
}
