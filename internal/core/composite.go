package core

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/mat"
)

// Composite is the factored form of a network of independent service
// providers (paper Section VII): the parts evolve independently given their
// own commands, the power manager issues one command per part each slice,
// power adds across parts, and the joint service rate is supplied by Rate
// (it is system-specific — a parallel-server queue saturates, a two-
// processor web server follows a throughput table).
//
// Unlike the legacy CompositeSP — which eagerly enumerates the joint chain
// into dense |S|×|S| matrices and dense |S|×|A| rate/power tables — Build
// *compiles* the composite, and lazily: it stores only the per-part CSR
// chains, rate/power evaluate on demand from the factors, and a joint
// per-command transition matrix is expanded to its Kronecker-product CSR
// (mat.KronAll) only if and when someone asks for it via Chain. Consumers
// that evaluate or simulate — matvecs via Op, stepping via SampleNext —
// never trigger the expansion, so their footprint scales with Σ nnz(partᵢ)
// rather than Π nnzᵢ.
//
// The joint command space A = Π aᵢ grows just as fast, and most of it is
// junk — real power managers do not retarget every device every slice. Two
// masking hooks tame it: PartCommands restricts each part to a subset of its
// own commands before the cross product is formed, and Allow prunes
// individual joint combinations (e.g. "at most one part may be commanded to
// transition per slice"). Both shrink the compiled model's command dimension
// — and with it every per-command chain and every LP column block.
//
// Index conventions match CompositeSP: part 0 varies fastest in both the
// joint state index and the joint command index, and joint names join the
// part names with "+".
type Composite struct {
	// Name identifies the composite in diagnostics.
	Name string
	// Parts are the component providers. They are referenced, not copied;
	// callers must not mutate them after Build.
	Parts []*ServiceProvider
	// Rate combines per-part state and command indices into the joint
	// service rate b(s,a) ∈ [0,1]. The slices are shared scratch owned by
	// the compiled provider; implementations must not retain or mutate them.
	Rate func(states, cmds []int) float64
	// RateTag canonically identifies Rate for content fingerprinting
	// (closures cannot be serialized — same contract as System.HookTag).
	// Required only when the compiled provider is fingerprinted.
	RateTag string

	// PartCommands optionally restricts part i to the given subset of its
	// command indices before the joint cross product is formed. A nil outer
	// slice (or a nil entry) keeps every command of the corresponding part;
	// a non-nil empty entry is an error — it would leave the part
	// uncommandable.
	PartCommands [][]int
	// Allow optionally prunes joint commands: a combination (one original
	// command index per part) is compiled only when Allow returns true. The
	// slice is shared scratch; implementations must not retain or mutate it.
	// Masking every joint command is an error.
	Allow func(cmds []int) bool
	// AllowTag canonically identifies Allow for content fingerprinting,
	// like RateTag. Required at fingerprint time only when Allow is set.
	AllowTag string
}

// FactoredSP is a compiled Composite: a Provider whose per-command joint
// chains stay *factored* — Build stores only the per-part CSR factors, and
// the expanded Kronecker-product CSR of a joint command is compiled lazily,
// on first Chain(a) call, then cached. Evaluation and simulation never need
// the expansion: Op hands out the lazy mat.KronOp over the factors and
// SampleNext steps the joint chain one part at a time, so those paths hold
// O(Σ nnz(partᵢ) + k·(|S|+|A|)) memory — no joint CSR, no dense |S|×|S| or
// |S|×|A| table.
type FactoredSP struct {
	name     string
	parts    []*ServiceProvider
	rate     func(states, cmds []int) float64
	rateTag  string
	allowTag string
	masked   bool // Allow was set (fingerprinting must record it)

	states []string // joint state names, part 0 fastest
	cmds   []string // masked joint command names

	stateIdx [][]int // per joint state, the per-part state indices
	cmdIdx   [][]int // per joint command, the per-part (original) command indices

	factors [][]*mat.CSR  // per joint command, the part chains reversed (part k-1 first, so part 0 varies fastest)
	ops     []*mat.KronOp // per joint command, the shared sampling operator (RowSample is stateless)
	chains  []*mat.CSR    // per joint command, the lazily compiled expanded chain
	chainMu []sync.Once   // compile-once guards for chains
}

// Build compiles the composite into its factored provider. All validation
// happens here — part consistency, mask well-formedness, stochasticity of
// the compressed part chains (which implies it for any lazily expanded
// joint chain), and the combined rate staying inside [0,1] — so the
// returned provider's Validate is cheap.
func (c *Composite) Build() (*FactoredSP, error) {
	if len(c.Parts) == 0 {
		return nil, fmt.Errorf("core: composite %q needs at least one part", c.Name)
	}
	if c.Rate == nil {
		return nil, fmt.Errorf("core: composite %q needs a service-rate combiner", c.Name)
	}
	if c.PartCommands != nil && len(c.PartCommands) != len(c.Parts) {
		return nil, fmt.Errorf("core: composite %q has %d command subsets for %d parts",
			c.Name, len(c.PartCommands), len(c.Parts))
	}
	k := len(c.Parts)
	for i, p := range c.Parts {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("core: composite part %d: %w", i, err)
		}
	}

	// Resolve the per-part command subsets.
	allowed := make([][]int, k)
	for i, p := range c.Parts {
		if c.PartCommands == nil || c.PartCommands[i] == nil {
			all := make([]int, p.A())
			for a := range all {
				all[a] = a
			}
			allowed[i] = all
			continue
		}
		sub := c.PartCommands[i]
		if len(sub) == 0 {
			return nil, fmt.Errorf("core: composite %q: command mask excludes every command of part %d (%s)",
				c.Name, i, p.Name)
		}
		seen := make(map[int]bool, len(sub))
		for _, a := range sub {
			if a < 0 || a >= p.A() {
				return nil, fmt.Errorf("core: composite %q: part %d (%s) has no command %d",
					c.Name, i, p.Name, a)
			}
			if seen[a] {
				return nil, fmt.Errorf("core: composite %q: part %d (%s) command %d repeated in mask",
					c.Name, i, p.Name, a)
			}
			seen[a] = true
		}
		allowed[i] = append([]int(nil), sub...)
	}

	// Joint states: cross product, part 0 fastest. The per-part index table
	// doubles as the decode cache RateAt/PowerAt use.
	nStates := 1
	for _, p := range c.Parts {
		nStates *= p.N()
	}
	states := make([]string, nStates)
	stateIdx := make([][]int, nStates)
	names := make([]string, k)
	for s := 0; s < nStates; s++ {
		idx := make([]int, k)
		rem := s
		for i, p := range c.Parts {
			idx[i] = rem % p.N()
			rem /= p.N()
			names[i] = p.States[idx[i]]
		}
		stateIdx[s] = idx
		states[s] = strings.Join(names, "+")
	}

	// Joint commands: cross product of the per-part subsets (part 0
	// fastest over subset positions), pruned by Allow. Part chains are
	// compressed once per (part, allowed command) and reused across every
	// joint command that selects them.
	partChains := make([]map[int]*mat.CSR, k)
	for i, p := range c.Parts {
		partChains[i] = make(map[int]*mat.CSR, len(allowed[i]))
		for _, a := range allowed[i] {
			partChains[i][a] = mat.FromDense(p.P[a])
		}
	}
	nCombos := 1
	for _, sub := range allowed {
		nCombos *= len(sub)
	}
	var cmds []string
	var cmdIdx [][]int
	var factors [][]*mat.CSR
	combo := make([]int, k)
	for jc := 0; jc < nCombos; jc++ {
		rem := jc
		for i := range c.Parts {
			combo[i] = allowed[i][rem%len(allowed[i])]
			rem /= len(allowed[i])
		}
		if c.Allow != nil && !c.Allow(combo) {
			continue
		}
		idx := append([]int(nil), combo...)
		fs := make([]*mat.CSR, k) // reversed: part k-1 first, so part 0 varies fastest
		for i := range c.Parts {
			names[i] = c.Parts[i].Commands[idx[i]]
			fs[k-1-i] = partChains[i][idx[i]]
		}
		cmdIdx = append(cmdIdx, idx)
		cmds = append(cmds, strings.Join(names, "+"))
		factors = append(factors, fs)
	}
	if len(cmds) == 0 {
		return nil, fmt.Errorf("core: composite %q: command mask excludes every joint command", c.Name)
	}
	// Per-part stochasticity on the compressed factors (a Kronecker product
	// of stochastic factors is stochastic, so the expanded chains — compiled
	// lazily, if ever — need no separate check).
	for i, pc := range partChains {
		for a, ch := range pc {
			if err := ch.CheckStochastic(1e-9); err != nil {
				return nil, fmt.Errorf("core: composite %q: part %d (%s) chain for command %q: %w",
					c.Name, i, c.Parts[i].Name, c.Parts[i].Commands[a], err)
			}
		}
	}
	ops := make([]*mat.KronOp, len(factors))
	for a, fs := range factors {
		ops[a] = mat.NewKronOp(fs...)
	}

	f := &FactoredSP{
		name:     c.Name,
		parts:    c.Parts,
		rate:     c.Rate,
		rateTag:  c.RateTag,
		allowTag: c.AllowTag,
		masked:   c.Allow != nil,
		states:   states,
		cmds:     cmds,
		stateIdx: stateIdx,
		cmdIdx:   cmdIdx,
		factors:  factors,
		ops:      ops,
		chains:   make([]*mat.CSR, len(cmds)),
		chainMu:  make([]sync.Once, len(cmds)),
	}
	// Validate the combined rate over the whole (state, command) space once,
	// without tabulating it: O(|S|·|A|) time, O(1) extra space.
	for s := 0; s < f.N(); s++ {
		for a := 0; a < f.A(); a++ {
			if b := f.RateAt(s, a); b < 0 || b > 1 {
				return nil, fmt.Errorf("core: composite %q: combined service rate %g outside [0,1] at state %q command %q",
					c.Name, b, f.states[s], f.cmds[a])
			}
		}
	}
	return f, nil
}

// ProviderName returns the composite's name.
func (f *FactoredSP) ProviderName() string { return f.name }

// N returns the number of joint states (the product of the part sizes).
func (f *FactoredSP) N() int { return len(f.states) }

// A returns the number of compiled (mask-surviving) joint commands.
func (f *FactoredSP) A() int { return len(f.cmds) }

// StateNames returns the joint state names; callers must not mutate them.
func (f *FactoredSP) StateNames() []string { return f.states }

// CommandNames returns the compiled joint command names; callers must not
// mutate them.
func (f *FactoredSP) CommandNames() []string { return f.cmds }

// CommandIndex returns the index of the named joint command, or -1.
func (f *FactoredSP) CommandIndex(name string) int {
	for i, c := range f.cmds {
		if c == name {
			return i
		}
	}
	return -1
}

// Chain returns the expanded Kronecker-product CSR chain of joint command a,
// compiling it on first use (guarded per command, so concurrent callers —
// e.g. server goroutines sharing a registered provider — compile each chain
// exactly once). The matrix is shared; callers must not mutate it.
//
// Only consumers that genuinely need the expanded joint CSR (System.Build's
// Model compilation, the LP assembly) should call this: evaluation and
// simulation paths take Op and SampleNext instead, which never expand.
func (f *FactoredSP) Chain(a int) *mat.CSR {
	f.chainMu[a].Do(func() { f.chains[a] = mat.KronAll(f.factors[a]...) })
	return f.chains[a]
}

// Op returns a fresh lazy Kronecker operator over joint command a's part
// chains: matvecs cost Σᵢ nnz(partᵢ)·(|S|/|Sᵢ|) and row samples
// O(Σᵢ out-degreeᵢ), with no joint CSR ever compiled. Each call returns a
// new operator (the matvec scratch is per-instance, so distinct callers can
// apply concurrently); the factors themselves are shared and read-only.
func (f *FactoredSP) Op(a int) *mat.KronOp { return mat.NewKronOp(f.factors[a]...) }

// SampleNext draws the joint successor of state s under joint command a by
// sampling each part's row independently (one inverse-CDF walk per part, in
// part order k-1..0 of the factor list — i.e. slowest joint digit first),
// consuming one uniform from u per part. Allocation-free and safe for
// concurrent use.
func (f *FactoredSP) SampleNext(s, a int, u func() float64) int {
	return f.ops[a].RowSample(s, u)
}

// CompiledChains reports how many joint commands have had their expanded
// CSR chain compiled — 0 proves a workload ran fully factored.
func (f *FactoredSP) CompiledChains() int {
	n := 0
	for i := range f.chains {
		if f.chains[i] != nil {
			n++
		}
	}
	return n
}

// PartStates returns the per-part state indices of joint state s. The slice
// is shared; callers must not mutate it.
func (f *FactoredSP) PartStates(s int) []int { return f.stateIdx[s] }

// PartCommands returns the per-part original command indices of joint
// command a. The slice is shared; callers must not mutate it.
func (f *FactoredSP) PartCommands(a int) []int { return f.cmdIdx[a] }

// RateAt evaluates the combined service rate b(s,a) from the factors.
func (f *FactoredSP) RateAt(s, a int) float64 { return f.rate(f.stateIdx[s], f.cmdIdx[a]) }

// PowerAt returns the joint power c(s,a): the sum over parts.
func (f *FactoredSP) PowerAt(s, a int) float64 {
	pw := 0.0
	for i, p := range f.parts {
		pw += p.Power.At(f.stateIdx[s][i], f.cmdIdx[a][i])
	}
	return pw
}

// Validate reports structural problems. A FactoredSP can only be obtained
// from Composite.Build, which validates parts, mask, chains and rates
// exhaustively, so only the cheap invariants are rechecked here.
func (f *FactoredSP) Validate() error {
	if len(f.states) == 0 || len(f.cmds) == 0 {
		return fmt.Errorf("core: factored provider %q is empty", f.name)
	}
	if len(f.chains) != len(f.cmds) || len(f.cmdIdx) != len(f.cmds) {
		return fmt.Errorf("core: factored provider %q has inconsistent command tables", f.name)
	}
	return nil
}

// WriteCanonical writes the factored provider's canonical serialization:
// the parts in order, the compiled joint command list, and the tags naming
// the rate combiner and the mask predicate. Like System.HookTag, the tags
// stand in for closures; a missing RateTag (or a masked composite without an
// AllowTag) is an error rather than a silent collision between behaviorally
// different composites.
func (f *FactoredSP) WriteCanonical(w io.Writer) error {
	if f.rateTag == "" {
		return fmt.Errorf("core: factored provider %q has no RateTag; set one to make it fingerprintable", f.name)
	}
	if f.masked && f.allowTag == "" {
		return fmt.Errorf("core: factored provider %q has a joint-command mask but no AllowTag; set one to make it fingerprintable", f.name)
	}
	c := &cw{w: w}
	c.str("fsp", f.name)
	c.str("ratetag", f.rateTag)
	c.str("allowtag", f.allowTag)
	c.count("parts", len(f.parts))
	if c.err != nil {
		return c.err
	}
	for _, p := range f.parts {
		if err := p.WriteCanonical(w); err != nil {
			return err
		}
	}
	// The compiled command list captures PartCommands and the concrete
	// effect of Allow, so equal fingerprints imply identical chains.
	c.count("jointcmds", len(f.cmdIdx))
	for _, idx := range f.cmdIdx {
		c.count("jc", len(idx))
		for _, a := range idx {
			c.count("a", a)
		}
	}
	return c.err
}
