package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/lp"
)

// ErrPatchShape reports that a frequency LP cannot be patched because the
// model or options changed the program's shape (variable count, row count,
// bound relations): the caller must rebuild with BuildFrequencyLP.
var ErrPatchShape = errors.New("core: frequency LP shape changed")

// ErrPatchPattern reports that a frequency LP cannot be patched in place
// because a constraint row's sparsity pattern changed — a transition
// probability moved to or from exactly zero, or a metric entry did. The
// caller must rebuild with BuildFrequencyLP.
var ErrPatchPattern = errors.New("core: frequency LP sparsity pattern changed")

// PatchFrequencyLP rewrites, in place, the coefficients of a frequency LP
// previously assembled by BuildFrequencyLP, so that it becomes exactly the
// program BuildFrequencyLP(m, opts) would build — without reallocating the
// Problem, its objective, or any constraint row. This is the online
// re-optimization fast path: consecutive SR estimates from a streaming
// extractor yield structurally identical models whose transition
// probabilities drift, so only the SR-dependent coefficients (the −α·p
// terms of the balance rows, SR-dependent metric tables such as "drops",
// and the right-hand sides) need rewriting, and the row index structure —
// the part AddConstraintNZ pays a sort/merge for — carries over verbatim.
//
// The patch is refused, leaving prob unchanged except possibly for already
// rewritten values, when the program's shape moved (ErrPatchShape) or when
// any row's nonzero pattern differs from the fresh assembly
// (ErrPatchPattern — a probability hit exactly zero or left it). Callers
// fall back to BuildFrequencyLP on any error; a patched problem is
// bit-for-bit the problem a fresh build would produce, so the two paths are
// interchangeable solve inputs.
func PatchFrequencyLP(prob *lp.Problem, m *Model, opts Options) error {
	if opts.Alpha < 0 || opts.Alpha >= 1 {
		return fmt.Errorf("core: discount factor %g outside [0,1)", opts.Alpha)
	}
	if opts.Objective.Metric == "" {
		opts.Objective.Metric = MetricPenalty
	}
	objTable, err := m.Metric(opts.Objective.Metric)
	if err != nil {
		return err
	}
	q0, err := initialDistribution(m, opts)
	if err != nil {
		return err
	}
	if prob == nil {
		return fmt.Errorf("%w: nil problem", ErrPatchShape)
	}
	nv := m.N * m.A
	if prob.NumVars() != nv {
		return fmt.Errorf("%w: %d variables, want %d", ErrPatchShape, prob.NumVars(), nv)
	}
	if got, want := len(prob.Cons), m.N+len(opts.Bounds); got != want {
		return fmt.Errorf("%w: %d constraint rows, want %d", ErrPatchShape, got, want)
	}
	if prob.Sense != opts.Objective.Sense {
		return fmt.Errorf("%w: objective sense changed", ErrPatchShape)
	}

	for s := 0; s < m.N; s++ {
		for a := 0; a < m.A; a++ {
			prob.Obj[s*m.A+a] = objTable.At(s, a)
		}
	}

	alpha := opts.Alpha
	pts := transposedChains(m)
	var idx, cIdx []int
	var val, cVal []float64
	for j := 0; j < m.N; j++ {
		idx, val = balanceRowNZ(m, pts, alpha, j, idx[:0], val[:0])
		cIdx, cVal = compressRowNZ(idx, val, cIdx[:0], cVal[:0])
		c := &prob.Cons[j]
		if c.Rel != lp.EQ {
			return fmt.Errorf("%w: balance row %d relation changed", ErrPatchShape, j)
		}
		if err := rewriteRow(c, cIdx, cVal); err != nil {
			return fmt.Errorf("balance row %d: %w", j, err)
		}
		c.RHS = (1 - alpha) * q0[j]
	}

	for bi, b := range opts.Bounds {
		table, err := m.Metric(b.Metric)
		if err != nil {
			return err
		}
		c := &prob.Cons[m.N+bi]
		if c.Rel != b.Rel {
			return fmt.Errorf("%w: bound row %d relation changed", ErrPatchShape, bi)
		}
		idx, val = boundRowNZ(m, table, idx[:0], val[:0])
		if err := rewriteRow(c, idx, val); err != nil {
			return fmt.Errorf("bound row %q: %w", b.Metric, err)
		}
		c.RHS = b.Value
	}
	return nil
}

// rewriteRow copies fresh coefficients over a constraint row after checking
// that the nonzero pattern is unchanged.
func rewriteRow(c *lp.Constraint, cols []int, vals []float64) error {
	if len(cols) != len(c.Cols) {
		return fmt.Errorf("%w: %d nonzeros, had %d", ErrPatchPattern, len(cols), len(c.Cols))
	}
	for k, j := range cols {
		if c.Cols[k] != j {
			return fmt.Errorf("%w: nonzero %d moved to column %d (was %d)", ErrPatchPattern, k, j, c.Cols[k])
		}
	}
	copy(c.Vals, vals)
	return nil
}

// compressRowNZ normalizes raw (column, value) pairs the same way
// AddConstraintNZ's one-row triplet does — sort by column, sum duplicates,
// drop entries that cancel to exactly zero — into the out slices, which are
// returned extended. Keeping the two normalizations identical is what makes
// a patched row comparable (and equal) to a freshly assembled one.
func compressRowNZ(idx []int, val []float64, outIdx []int, outVal []float64) ([]int, []float64) {
	sort.Sort(&rowPairSort{idx, val})
	for k := 0; k < len(idx); {
		j := idx[k]
		s := val[k]
		k++
		for k < len(idx) && idx[k] == j {
			s += val[k]
			k++
		}
		if s != 0 {
			outIdx = append(outIdx, j)
			outVal = append(outVal, s)
		}
	}
	return outIdx, outVal
}

// rowPairSort sorts parallel (column, value) slices by column.
type rowPairSort struct {
	idx []int
	val []float64
}

func (p *rowPairSort) Len() int           { return len(p.idx) }
func (p *rowPairSort) Less(i, j int) bool { return p.idx[i] < p.idx[j] }
func (p *rowPairSort) Swap(i, j int) {
	p.idx[i], p.idx[j] = p.idx[j], p.idx[i]
	p.val[i], p.val[j] = p.val[j], p.val[i]
}
