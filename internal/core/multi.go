package core

import (
	"fmt"
	"strings"

	"repro/internal/mat"
)

// CompositeSP builds a single service provider from several independent
// ones — the "network of interacting service providers" extension the
// paper sketches in Section VII, in its simplest useful form: the
// components evolve independently given their own commands, the power
// manager issues one command per component each slice (the joint command
// set is the cross product), power adds across components, and the joint
// service rate is supplied by the caller (it is system-specific: the
// two-processor web server's throughput table, for example, is not a sum).
//
// Component 0 varies fastest in both the joint state index and the joint
// command index: joint = Σᵢ idxᵢ·Πⱼ<ᵢ sizeⱼ. Joint state and command names
// join the component names with "+".
//
// The paper's warning applies doubly here: the joint state space grows as
// the product of the component sizes and this builder materializes it
// densely — one |S|×|S| matrix per joint command plus dense |S|×|A| rate
// and power tables — so it is only usable for small component counts. It
// is retained as the behavioral reference the factored pipeline is held
// to: Composite compiles the identical model in CSR via Kronecker products
// without any dense intermediate (and adds command masking), and the
// randomized parity suite keeps the two within 1e-8 of each other. New
// composites should use Composite.
func CompositeSP(name string, parts []*ServiceProvider, rate func(states, cmds []int) float64) (*ServiceProvider, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: CompositeSP needs at least one part")
	}
	if rate == nil {
		return nil, fmt.Errorf("core: CompositeSP needs a service-rate combiner")
	}
	nStates, nCmds := 1, 1
	for i, p := range parts {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("core: composite part %d: %w", i, err)
		}
		nStates *= p.N()
		nCmds *= p.A()
	}

	// decode splits a joint index into per-part indices (part 0 fastest).
	decode := func(idx int, size func(p *ServiceProvider) int) []int {
		out := make([]int, len(parts))
		for i, p := range parts {
			out[i] = idx % size(p)
			idx /= size(p)
		}
		return out
	}
	spN := func(p *ServiceProvider) int { return p.N() }
	spA := func(p *ServiceProvider) int { return p.A() }

	states := make([]string, nStates)
	for s := range states {
		parts_ := decode(s, spN)
		names := make([]string, len(parts))
		for i, p := range parts {
			names[i] = p.States[parts_[i]]
		}
		states[s] = strings.Join(names, "+")
	}
	cmds := make([]string, nCmds)
	for c := range cmds {
		parts_ := decode(c, spA)
		names := make([]string, len(parts))
		for i, p := range parts {
			names[i] = p.Commands[parts_[i]]
		}
		cmds[c] = strings.Join(names, "+")
	}

	ps := make([]*mat.Matrix, nCmds)
	power := mat.NewMatrix(nStates, nCmds)
	rateTab := mat.NewMatrix(nStates, nCmds)
	for c := 0; c < nCmds; c++ {
		cIdx := decode(c, spA)
		pm := mat.NewMatrix(nStates, nStates)
		for s := 0; s < nStates; s++ {
			sIdx := decode(s, spN)
			// Joint transition probability = product over parts; enumerate
			// destinations recursively over part indices.
			var fill func(part, dest int, prob float64)
			fill = func(part, dest int, prob float64) {
				if prob == 0 {
					return
				}
				if part == len(parts) {
					pm.Add(s, dest, prob)
					return
				}
				stride := 1
				for j := 0; j < part; j++ {
					stride *= parts[j].N()
				}
				row := parts[part].P[cIdx[part]].Row(sIdx[part])
				for next, p := range row {
					fill(part+1, dest+next*stride, prob*p)
				}
			}
			fill(0, 0, 1)

			pw := 0.0
			for i, p := range parts {
				pw += p.Power.At(sIdx[i], cIdx[i])
			}
			power.Set(s, c, pw)
			b := rate(sIdx, cIdx)
			if b < 0 || b > 1 {
				return nil, fmt.Errorf("core: combined service rate %g outside [0,1] at state %q command %q",
					b, states[s], cmds[c])
			}
			rateTab.Set(s, c, b)
		}
		ps[c] = pm
	}

	sp := &ServiceProvider{
		Name:        name,
		States:      states,
		Commands:    cmds,
		P:           ps,
		ServiceRate: rateTab,
		Power:       power,
	}
	if err := sp.Validate(); err != nil {
		return nil, fmt.Errorf("core: composite invalid: %w", err)
	}
	return sp, nil
}
