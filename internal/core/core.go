// Package core implements the primary contribution of Benini, Bogliolo,
// Paleologo and De Micheli, "Policy Optimization for Dynamic Power
// Management" (DAC 1998 / IEEE TCAD 18(6), 1999): a finite-state abstract
// model of power-managed systems based on Markov decision processes, and the
// exact, polynomial-time solution of the policy-optimization problem via
// linear programming.
//
// The model (paper Section III) composes three components:
//
//   - ServiceProvider (Definition 3.1): the power-manageable resource, a
//     controlled Markov chain with per-command transition matrices, service
//     rates b(s,a) and power consumptions c(s,a);
//   - ServiceRequester (Definition 3.2): the workload, an autonomous Markov
//     chain issuing R(r) requests per time slice;
//   - the service queue (Definition 3.3): a bounded buffer whose transition
//     probabilities are fully determined by service rate and arrivals
//     (Eq. 3), with overflow modeled as request loss.
//
// System builds the composed controlled Markov chain over
// S_p × S_r × S_q (Eq. 4). Policy represents Markov stationary randomized
// policies (Definitions 3.5–3.7). Optimize solves the constrained policy
// optimization problems PO1/PO2 by constructing the state–action frequency
// linear programs LP2/LP3/LP4 of Appendix A and extracting the optimal
// policy with Eq. 16. ParetoSweep explores the power–performance tradeoff
// curve of Section IV-A.
//
// Discounting follows the paper's session model (Fig. 5): a geometric
// stopping time with discount factor α, equivalently a trap state entered
// with probability 1−α each slice. All constraint bounds and reported
// metrics are expressed in per-slice (average) units: the LP is formulated
// over scaled frequencies y(s,a) = (1−α)·x(s,a), which sum to one and keep
// the LP well conditioned even for horizons of 10⁶ slices.
package core
