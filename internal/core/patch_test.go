package core_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
)

func patchOpts() core.Options {
	return core.Options{
		Alpha:          core.HorizonToAlpha(1e4),
		Objective:      core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds:         []core.Bound{{Metric: core.MetricPenalty, Rel: lp.LE, Value: 1.9}},
		SkipEvaluation: true,
	}
}

func buildDisk(t *testing.T, p01, p10 float64) *core.Model {
	t.Helper()
	m, err := devices.DiskSystem(core.TwoStateSR("w", p01, p10)).Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPatchFrequencyLPMatchesBuild: patching the LP of one SR onto the
// model of a drifted SR must reproduce the freshly built LP exactly —
// objective, every row's pattern and values, and every RHS.
func TestPatchFrequencyLPMatchesBuild(t *testing.T) {
	opts := patchOpts()
	m1 := buildDisk(t, 0.02, 0.30)
	m2 := buildDisk(t, 0.35, 0.05)

	prob, err := core.BuildFrequencyLP(m1, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.BuildFrequencyLP(m2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.PatchFrequencyLP(prob, m2, opts); err != nil {
		t.Fatalf("PatchFrequencyLP: %v", err)
	}

	if len(prob.Obj) != len(want.Obj) {
		t.Fatalf("objective length %d, want %d", len(prob.Obj), len(want.Obj))
	}
	for j, v := range want.Obj {
		if prob.Obj[j] != v {
			t.Fatalf("objective[%d] = %g, want %g", j, prob.Obj[j], v)
		}
	}
	if len(prob.Cons) != len(want.Cons) {
		t.Fatalf("%d rows, want %d", len(prob.Cons), len(want.Cons))
	}
	for i := range want.Cons {
		got, exp := &prob.Cons[i], &want.Cons[i]
		if got.Rel != exp.Rel || got.RHS != exp.RHS {
			t.Fatalf("row %d: rel/rhs (%v, %g), want (%v, %g)", i, got.Rel, got.RHS, exp.Rel, exp.RHS)
		}
		if len(got.Cols) != len(exp.Cols) {
			t.Fatalf("row %d: %d nonzeros, want %d", i, len(got.Cols), len(exp.Cols))
		}
		for k := range exp.Cols {
			if got.Cols[k] != exp.Cols[k] {
				t.Fatalf("row %d nz %d: column %d, want %d", i, k, got.Cols[k], exp.Cols[k])
			}
			if math.Abs(got.Vals[k]-exp.Vals[k]) > 1e-15 {
				t.Fatalf("row %d nz %d: value %g, want %g", i, k, got.Vals[k], exp.Vals[k])
			}
		}
	}

	// The patched problem must solve to the drifted model's optimum.
	res2, err := core.Optimize(m2, opts)
	if err != nil {
		t.Fatal(err)
	}
	resP, err := core.OptimizeProblemCtx(t.Context(), m2, opts, prob)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Objective-resP.Objective) > 1e-9 {
		t.Errorf("patched solve objective %g, fresh build %g", resP.Objective, res2.Objective)
	}
}

// TestPatchFrequencyLPPatternChange: an SR probability moving to exactly
// zero removes nonzeros from the balance rows; the patch must refuse with
// ErrPatchPattern rather than silently corrupt the program.
func TestPatchFrequencyLPPatternChange(t *testing.T) {
	opts := patchOpts()
	m1 := buildDisk(t, 0.02, 0.30)
	mZero := buildDisk(t, 0, 0.30) // p01 = 0: the idle→busy entries vanish

	prob, err := core.BuildFrequencyLP(m1, opts)
	if err != nil {
		t.Fatal(err)
	}
	err = core.PatchFrequencyLP(prob, mZero, opts)
	if !errors.Is(err, core.ErrPatchPattern) {
		t.Fatalf("patch onto structurally different SR: err = %v, want ErrPatchPattern", err)
	}
}

// TestPatchFrequencyLPShapeChecks: nil problems, changed bound sets,
// changed senses and changed relations are refused as shape errors.
func TestPatchFrequencyLPShapeChecks(t *testing.T) {
	opts := patchOpts()
	m := buildDisk(t, 0.02, 0.30)
	prob, err := core.BuildFrequencyLP(m, opts)
	if err != nil {
		t.Fatal(err)
	}

	if err := core.PatchFrequencyLP(nil, m, opts); !errors.Is(err, core.ErrPatchShape) {
		t.Errorf("nil problem: err = %v, want ErrPatchShape", err)
	}

	extra := opts
	extra.Bounds = append(append([]core.Bound{}, opts.Bounds...),
		core.Bound{Metric: core.MetricLoss, Rel: lp.LE, Value: 0.1})
	if err := core.PatchFrequencyLP(prob, m, extra); !errors.Is(err, core.ErrPatchShape) {
		t.Errorf("extra bound row: err = %v, want ErrPatchShape", err)
	}

	flipped := opts
	flipped.Objective.Sense = lp.Maximize
	if err := core.PatchFrequencyLP(prob, m, flipped); !errors.Is(err, core.ErrPatchShape) {
		t.Errorf("sense change: err = %v, want ErrPatchShape", err)
	}

	rel := opts
	rel.Bounds = []core.Bound{{Metric: core.MetricPenalty, Rel: lp.GE, Value: 1.9}}
	if err := core.PatchFrequencyLP(prob, m, rel); !errors.Is(err, core.ErrPatchShape) {
		t.Errorf("relation change: err = %v, want ErrPatchShape", err)
	}

	// A successful patch after the refusals proves they left the structure
	// reusable.
	if err := core.PatchFrequencyLP(prob, m, opts); err != nil {
		t.Errorf("patch after refused patches: %v", err)
	}
}
