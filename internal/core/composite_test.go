package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/lp"
	"repro/internal/mat"
)

// randStochastic returns an n×n row-stochastic matrix with small out-degree
// (2 draws per row), mirroring the sparse chains real device models have.
func randStochastic(rng *rand.Rand, n int) *mat.Matrix {
	m := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		p := 0.2 + 0.6*rng.Float64()
		m.Add(i, rng.Intn(n), p)
		m.Add(i, rng.Intn(n), 1-p)
	}
	return m
}

// randPart builds a random but valid service provider.
func randPart(rng *rand.Rand, name string) *ServiceProvider {
	n := 2 + rng.Intn(3)
	a := 2 + rng.Intn(2)
	states := make([]string, n)
	for i := range states {
		states[i] = name + "s" + string(rune('0'+i))
	}
	cmds := make([]string, a)
	for i := range cmds {
		cmds[i] = name + "c" + string(rune('0'+i))
	}
	ps := make([]*mat.Matrix, a)
	for i := range ps {
		ps[i] = randStochastic(rng, n)
	}
	rate := mat.NewMatrix(n, a)
	power := mat.NewMatrix(n, a)
	for s := 0; s < n; s++ {
		for c := 0; c < a; c++ {
			rate.Set(s, c, rng.Float64())
			power.Set(s, c, 3*rng.Float64())
		}
	}
	return &ServiceProvider{
		Name: name, States: states, Commands: cmds,
		P: ps, ServiceRate: rate, Power: power,
	}
}

// parallelRate is the saturating parallel-server combiner used across the
// composite tests.
func parallelRate(parts []*ServiceProvider) func(states, cmds []int) float64 {
	return func(states, cmds []int) float64 {
		miss := 1.0
		for i := range states {
			miss *= 1 - parts[i].ServiceRate.At(states[i], cmds[i])
		}
		return 1 - miss
	}
}

// TestCompositeParityRandomized: the factored Kronecker Build must agree
// with the legacy dense CompositeSP on everything observable — vocabularies,
// transition rows, power, rate — and the two compiled systems must optimize
// to the same objective, on a corpus of random 2–3 part composites.
func TestCompositeParityRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		k := 2 + rng.Intn(2)
		parts := make([]*ServiceProvider, k)
		for i := range parts {
			parts[i] = randPart(rng, string(rune('a'+i)))
		}
		rate := parallelRate(parts)

		dense, err := CompositeSP("comp", parts, rate)
		if err != nil {
			t.Fatalf("trial %d: CompositeSP: %v", trial, err)
		}
		fact, err := (&Composite{Name: "comp", Parts: parts, Rate: rate}).Build()
		if err != nil {
			t.Fatalf("trial %d: Composite.Build: %v", trial, err)
		}

		if fact.N() != dense.N() || fact.A() != dense.A() {
			t.Fatalf("trial %d: factored %d×%d vs dense %d×%d", trial, fact.N(), fact.A(), dense.N(), dense.A())
		}
		for s, name := range dense.States {
			if fact.StateNames()[s] != name {
				t.Fatalf("trial %d: state %d named %q vs %q", trial, s, fact.StateNames()[s], name)
			}
		}
		for a, name := range dense.Commands {
			if fact.CommandNames()[a] != name {
				t.Fatalf("trial %d: command %d named %q vs %q", trial, a, fact.CommandNames()[a], name)
			}
		}
		for a := 0; a < dense.A(); a++ {
			if d := fact.Chain(a).MaxAbsDiff(mat.FromDense(dense.P[a])); d > 1e-12 {
				t.Fatalf("trial %d: chain %d differs by %g", trial, a, d)
			}
			for s := 0; s < dense.N(); s++ {
				if got, want := fact.PowerAt(s, a), dense.Power.At(s, a); !close8(got, want) {
					t.Fatalf("trial %d: power(%d,%d) = %g, want %g", trial, s, a, got, want)
				}
				if got, want := fact.RateAt(s, a), dense.ServiceRate.At(s, a); !close8(got, want) {
					t.Fatalf("trial %d: rate(%d,%d) = %g, want %g", trial, s, a, got, want)
				}
			}
		}

		// End to end: same composed model, same optimal objective.
		sr := TwoStateSR("w", 0.1, 0.3)
		opts := Options{
			Alpha:          0.995,
			Objective:      Objective{Metric: MetricPower, Sense: lp.Minimize},
			Bounds:         []Bound{{Metric: MetricPenalty, Rel: lp.LE, Value: 1.2}},
			SkipEvaluation: true,
		}
		objs := make([]float64, 2)
		for v, sp := range []Provider{dense, fact} {
			sys := &System{Name: "par", SP: sp, SR: sr, QueueCap: 2}
			model, err := sys.Build()
			if err != nil {
				t.Fatalf("trial %d: Build(%d): %v", trial, v, err)
			}
			res, err := Optimize(model, opts)
			if err != nil {
				// Infeasible bounds are a property of the instance, not of
				// the representation: both variants must agree.
				objs[v] = -1
				continue
			}
			objs[v] = res.Objective
		}
		if diff := objs[0] - objs[1]; diff > 1e-8 || diff < -1e-8 {
			t.Fatalf("trial %d: dense objective %g vs factored %g", trial, objs[0], objs[1])
		}
	}
}

func close8(a, b float64) bool {
	d := a - b
	return d < 1e-8 && d > -1e-8
}

// TestCompositeModelParity: the compiled *system* models (chains and metric
// tables, not just the providers) must be identical between the dense and
// factored representations.
func TestCompositeModelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parts := []*ServiceProvider{randPart(rng, "x"), randPart(rng, "y")}
	rate := parallelRate(parts)
	dense, err := CompositeSP("m", parts, rate)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := (&Composite{Name: "m", Parts: parts, Rate: rate}).Build()
	if err != nil {
		t.Fatal(err)
	}
	sr := TwoStateSR("w", 0.2, 0.4)
	md, err := (&System{Name: "d", SP: dense, SR: sr, QueueCap: 3}).Build()
	if err != nil {
		t.Fatal(err)
	}
	mf, err := (&System{Name: "f", SP: fact, SR: sr, QueueCap: 3}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if md.N != mf.N || md.A != mf.A {
		t.Fatalf("models %d×%d vs %d×%d", md.N, md.A, mf.N, mf.A)
	}
	for a := 0; a < md.A; a++ {
		if d := md.P[a].MaxAbsDiff(mf.P[a]); d > 1e-12 {
			t.Errorf("composed chain %d differs by %g", a, d)
		}
	}
	for name, td := range md.Metrics {
		if d := td.MaxAbsDiff(mf.Metrics[name]); d > 1e-12 {
			t.Errorf("metric %q differs by %g", name, d)
		}
	}
}

// TestCompositeMasking: per-part subsets and the joint predicate prune the
// compiled command space, and the surviving commands keep their original
// per-part indices and names.
func TestCompositeMasking(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	parts := []*ServiceProvider{randPart(rng, "a"), randPart(rng, "b"), randPart(rng, "c")}
	rate := parallelRate(parts)

	// Joint predicate: at most one part off its first command.
	atMostOne := func(cmds []int) bool {
		n := 0
		for _, c := range cmds {
			if c != 0 {
				n++
			}
		}
		return n <= 1
	}
	f, err := (&Composite{Name: "masked", Parts: parts, Rate: rate, Allow: atMostOne, AllowTag: "one/v1"}).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want := 1
	for _, p := range parts {
		want += p.A() - 1
	}
	if f.A() != want {
		t.Fatalf("masked command count %d, want %d", f.A(), want)
	}
	for a := 0; a < f.A(); a++ {
		if !atMostOne(f.PartCommands(a)) {
			t.Errorf("command %d (%s) violates the mask", a, f.CommandNames()[a])
		}
	}

	// Per-part subset: part 1 pinned to command 0 only.
	sub := make([][]int, len(parts))
	sub[1] = []int{0}
	f2, err := (&Composite{Name: "sub", Parts: parts, Rate: rate, PartCommands: sub}).Build()
	if err != nil {
		t.Fatalf("Build with subset: %v", err)
	}
	if got, want := f2.A(), parts[0].A()*parts[2].A(); got != want {
		t.Fatalf("subset command count %d, want %d", got, want)
	}
	for a := 0; a < f2.A(); a++ {
		if f2.PartCommands(a)[1] != 0 {
			t.Errorf("command %d uses part-1 command %d, want 0", a, f2.PartCommands(a)[1])
		}
	}
}

// TestCompositeMaskErrors: the documented error paths of command masking.
func TestCompositeMaskErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	parts := []*ServiceProvider{randPart(rng, "a"), randPart(rng, "b")}
	rate := parallelRate(parts)

	cases := map[string]struct {
		c    Composite
		want string
	}{
		"empty mask for one part": {
			Composite{Name: "m", Parts: parts, Rate: rate, PartCommands: [][]int{nil, {}}},
			"excludes every command of part 1",
		},
		"mask excluding every joint command": {
			Composite{Name: "m", Parts: parts, Rate: rate, Allow: func([]int) bool { return false }},
			"excludes every joint command",
		},
		"out-of-range command index": {
			Composite{Name: "m", Parts: parts, Rate: rate, PartCommands: [][]int{{0, 99}, nil}},
			"no command 99",
		},
		"repeated command index": {
			Composite{Name: "m", Parts: parts, Rate: rate, PartCommands: [][]int{{0, 0}, nil}},
			"repeated",
		},
		"subset count mismatch": {
			Composite{Name: "m", Parts: parts, Rate: rate, PartCommands: [][]int{nil}},
			"1 command subsets for 2 parts",
		},
		"no parts": {
			Composite{Name: "m", Rate: rate},
			"at least one part",
		},
		"no combiner": {
			Composite{Name: "m", Parts: parts},
			"service-rate combiner",
		},
	}
	for name, tc := range cases {
		_, err := tc.c.Build()
		if err == nil {
			t.Errorf("%s: no error", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// TestCompositeRateValidation: a combiner escaping [0,1] fails the build
// with the offending state and command named.
func TestCompositeRateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	parts := []*ServiceProvider{randPart(rng, "a")}
	_, err := (&Composite{Name: "bad", Parts: parts, Rate: func([]int, []int) float64 { return 1.5 }}).Build()
	if err == nil || !strings.Contains(err.Error(), "outside [0,1]") {
		t.Fatalf("rate 1.5 accepted: %v", err)
	}
}

// TestFactoredFingerprint: factored providers fingerprint through the
// system exactly like dense ones — deterministic, sensitive to the mask,
// and refusing untagged closures.
func TestFactoredFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	parts := []*ServiceProvider{randPart(rng, "a"), randPart(rng, "b")}
	rate := parallelRate(parts)
	sys := func(c Composite) *System {
		f, err := c.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return &System{Name: "s", SP: f, SR: TwoStateSR("w", 0.1, 0.2), QueueCap: 1}
	}

	base := Composite{Name: "c", Parts: parts, Rate: rate, RateTag: "par/v1"}
	a1, err := sys(base).Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	a2, err := sys(base).Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	if a1 != a2 {
		t.Errorf("identical factored systems fingerprint differently")
	}

	masked := base
	masked.PartCommands = [][]int{{0}, nil}
	if b, err := sys(masked).Fingerprint(); err != nil {
		t.Errorf("masked fingerprint: %v", err)
	} else if b == a1 {
		t.Errorf("command mask did not move the fingerprint")
	}

	untagged := Composite{Name: "c", Parts: parts, Rate: rate}
	if _, err := sys(untagged).Fingerprint(); err == nil || !strings.Contains(err.Error(), "RateTag") {
		t.Errorf("untagged rate combiner fingerprinted: %v", err)
	}
	noAllowTag := base
	noAllowTag.Allow = func(cmds []int) bool { return cmds[0] == 0 }
	if _, err := sys(noAllowTag).Fingerprint(); err == nil || !strings.Contains(err.Error(), "AllowTag") {
		t.Errorf("untagged mask predicate fingerprinted: %v", err)
	}
}
