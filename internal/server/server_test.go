package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/devices"
)

// newTestServer starts a Server over httptest and returns it with its base
// URL.
func newTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	s, err := New(Config{CacheSize: 128, DefaultTimeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs.URL
}

// call posts (or gets) JSON and decodes the response body into out,
// returning the HTTP status.
func call(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func counter(t *testing.T, base, name string) int64 {
	t.Helper()
	var stats struct {
		Counters map[string]int64 `json:"counters"`
	}
	if st := call(t, http.MethodGet, base+"/v1/stats", nil, &stats); st != http.StatusOK {
		t.Fatalf("stats status %d", st)
	}
	v, ok := stats.Counters[name]
	if !ok {
		t.Fatalf("counter %q missing from /v1/stats", name)
	}
	return v
}

func TestPresetsRegisteredAndFingerprinted(t *testing.T) {
	_, base := newTestServer(t)
	var models []ModelInfo
	if st := call(t, http.MethodGet, base+"/v1/models", nil, &models); st != http.StatusOK {
		t.Fatalf("list status %d", st)
	}
	if len(models) != 7 {
		t.Fatalf("%d preset models, want 7", len(models))
	}
	seen := map[string]bool{}
	for _, m := range models {
		if len(m.ID) != 64 {
			t.Errorf("model %q id %q is not a sha256 hex fingerprint", m.Name, m.ID)
		}
		if seen[m.ID] {
			t.Errorf("duplicate fingerprint %s", m.ID)
		}
		seen[m.ID] = true
	}
}

// TestQueryStream replays the mixed query stream of the acceptance
// criteria: cold solve, exact repeat (zero pivots), near repeat (warm
// start, fewer pivots), a thundering herd (one solve), and a sweep whose
// points later answer optimize queries as exact hits.
func TestQueryStream(t *testing.T) {
	_, base := newTestServer(t)
	optimize := func(req OptimizeRequest) (*OptimizeResponse, int) {
		var resp OptimizeResponse
		st := call(t, http.MethodPost, base+"/v1/optimize", req, &resp)
		return &resp, st
	}
	diskReq := func(bound float64) OptimizeRequest {
		return OptimizeRequest{
			Model:     "disk",
			Objective: "power",
			Bounds:    []BoundSpec{{Metric: "penalty", Rel: "<=", Value: bound}},
		}
	}

	// 1. Cold solve.
	cold, st := optimize(diskReq(1.0))
	if st != http.StatusOK || !cold.Feasible {
		t.Fatalf("cold solve: status %d, feasible %v (%s)", st, cold.Feasible, cold.Status)
	}
	if cold.Cache != "cold" || cold.Pivots == 0 {
		t.Fatalf("cold solve: cache %q pivots %d, want cold with pivots > 0", cold.Cache, cold.Pivots)
	}

	// 2. Exact repeat: answered from cache without a single pivot.
	pivotsBefore := counter(t, base, "pivots")
	hit, _ := optimize(diskReq(1.0))
	if hit.Cache != "hit" || hit.Pivots != 0 {
		t.Errorf("repeat: cache %q pivots %d, want hit with 0 pivots", hit.Cache, hit.Pivots)
	}
	if hit.Objective != cold.Objective {
		t.Errorf("repeat objective %g != cold %g", hit.Objective, cold.Objective)
	}
	if d := counter(t, base, "pivots") - pivotsBefore; d != 0 {
		t.Errorf("exact hit performed %d pivots server-side", d)
	}

	// 3. Same model, different bound: warm-started from the nearest cached
	// basis, cheaper than the cold solve.
	warm, _ := optimize(diskReq(0.9))
	if warm.Cache != "warm" || !warm.WarmStarted {
		t.Errorf("near repeat: cache %q warm_started %v, want warm start", warm.Cache, warm.WarmStarted)
	}
	if warm.Pivots >= cold.Pivots {
		t.Errorf("warm solve took %d pivots, cold took %d; want warm < cold", warm.Pivots, cold.Pivots)
	}

	// 4. Thundering herd: concurrent identical fresh queries share one
	// solve (stragglers that arrive after it completes hit the cache).
	solvesBefore := counter(t, base, "cold_solves") + counter(t, base, "warm_solves")
	sharedBefore := counter(t, base, "shared_solves")
	hitsBefore := counter(t, base, "exact_hits")
	const herd = 8
	var wg sync.WaitGroup
	responses := make([]*OptimizeResponse, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp OptimizeResponse
			call(t, http.MethodPost, base+"/v1/optimize", diskReq(1.4), &resp)
			responses[i] = &resp
		}(i)
	}
	wg.Wait()
	for i, r := range responses {
		if !r.Feasible {
			t.Fatalf("herd response %d infeasible (%s)", i, r.Status)
		}
		if r.Objective != responses[0].Objective {
			t.Errorf("herd response %d objective %g != %g", i, r.Objective, responses[0].Objective)
		}
	}
	if d := counter(t, base, "cold_solves") + counter(t, base, "warm_solves") - solvesBefore; d != 1 {
		t.Errorf("herd of %d triggered %d solves, want 1", herd, d)
	}
	sharedD := counter(t, base, "shared_solves") - sharedBefore
	hitsD := counter(t, base, "exact_hits") - hitsBefore
	if sharedD+hitsD != herd-1 {
		t.Errorf("herd of %d: %d shared + %d hits, want %d", herd, sharedD, hitsD, herd-1)
	}

	// 5. Sweep: runs on the pool, caches every feasible point; a later
	// optimize at a swept bound is an exact hit, and repeating the sweep is
	// itself a hit.
	sweepReq := SweepRequest{
		OptimizeRequest: OptimizeRequest{Model: "disk", Objective: "power"},
		Sweep:           SweepSpec{Metric: "penalty", Rel: "<=", Values: []float64{1.2, 1.1, 1.05}, Workers: 2},
	}
	var sw SweepResponse
	if st := call(t, http.MethodPost, base+"/v1/sweep", sweepReq, &sw); st != http.StatusOK {
		t.Fatalf("sweep status %d", st)
	}
	if sw.Cache != "miss" || len(sw.Points) != 3 || sw.Feasible == 0 {
		t.Fatalf("sweep: cache %q, %d points, %d feasible", sw.Cache, len(sw.Points), sw.Feasible)
	}
	swept, _ := optimize(diskReq(1.1))
	if swept.Cache != "hit" || swept.Pivots != 0 {
		t.Errorf("optimize at swept bound: cache %q pivots %d, want exact hit", swept.Cache, swept.Pivots)
	}
	var sw2 SweepResponse
	call(t, http.MethodPost, base+"/v1/sweep", sweepReq, &sw2)
	if sw2.Cache != "hit" || sw2.Pivots != 0 {
		t.Errorf("repeat sweep: cache %q pivots %d, want hit", sw2.Cache, sw2.Pivots)
	}
}

// TestDeadlineCancelsSolve: a request deadline must abort the simplex
// mid-solve and surface the context error promptly.
func TestDeadlineCancelsSolve(t *testing.T) {
	s, base := newTestServer(t)

	// A composite model large enough that its cold solve reliably exceeds
	// the 1 ms deadline (sparse LP with ~360 columns).
	sys, err := devices.MultiDiskSystem(2, 4, core.TwoStateSR("w", 0.05, 0.15))
	if err != nil {
		t.Fatalf("MultiDiskSystem: %v", err)
	}
	e, _, err := s.reg.register(sys, "composite test model")
	if err != nil {
		t.Fatalf("register: %v", err)
	}

	before := counter(t, base, "cancelled_solves")
	start := time.Now()
	var resp errorResponse
	st := call(t, http.MethodPost, base+"/v1/optimize", OptimizeRequest{
		Model:     e.ID,
		Objective: "power",
		Bounds:    []BoundSpec{{Metric: "penalty", Rel: "<=", Value: 0.5}},
		TimeoutMS: 1,
	}, &resp)
	elapsed := time.Since(start)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%+v), want 504", st, resp)
	}
	if !strings.Contains(resp.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", resp.Error)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancelled request took %v; cancellation is not prompt", elapsed)
	}
	// Poll briefly: the flight goroutine records the cancellation just
	// after the waiter is released.
	deadline := time.Now().Add(2 * time.Second)
	for counter(t, base, "cancelled_solves") == before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d := counter(t, base, "cancelled_solves") - before; d == 0 {
		t.Errorf("cancelled_solves did not increment")
	}
}

// TestRegisterUserModel: posting SP/SR parameters compiles a resident
// model; reposting identical content is a no-op returning the same id; the
// model then serves optimize queries.
func TestRegisterUserModel(t *testing.T) {
	_, base := newTestServer(t)
	spec := ModelSpec{
		Name: "toy",
		SP: &SPSpec{
			States:   []string{"on", "off"},
			Commands: []string{"s_on", "s_off"},
			P: [][][]float64{
				{{1, 0}, {1, 0}},
				{{0, 1}, {0, 1}},
			},
			ServiceRate: [][]float64{{0.8, 0.8}, {0, 0}},
			Power:       [][]float64{{3, 3}, {0.5, 0.5}},
		},
		SR:       &SRSpec{P: [][]float64{{0.9, 0.1}, {0.3, 0.7}}, Requests: []int{0, 1}},
		QueueCap: 2,
	}
	var info ModelInfo
	if st := call(t, http.MethodPost, base+"/v1/models", spec, &info); st != http.StatusCreated {
		t.Fatalf("register status %d", st)
	}
	if info.Existing || info.States != 2*2*3 || info.Commands != 2 {
		t.Fatalf("register info %+v", info)
	}
	var again ModelInfo
	if st := call(t, http.MethodPost, base+"/v1/models", spec, &again); st != http.StatusOK {
		t.Fatalf("re-register status %d", st)
	}
	if !again.Existing || again.ID != info.ID {
		t.Errorf("re-register: existing %v id %s, want existing with id %s", again.Existing, again.ID, info.ID)
	}

	var resp OptimizeResponse
	st := call(t, http.MethodPost, base+"/v1/optimize", OptimizeRequest{
		Model:         info.ID,
		Objective:     "power",
		Bounds:        []BoundSpec{{Metric: "penalty", Rel: "<=", Value: 0.5}},
		IncludePolicy: true,
	}, &resp)
	if st != http.StatusOK || !resp.Feasible {
		t.Fatalf("optimize on posted model: status %d feasible %v (%s)", st, resp.Feasible, resp.Status)
	}
	if resp.Policy == nil || len(resp.Policy.Dist) != info.States {
		t.Errorf("include_policy did not return %d policy rows", info.States)
	}
}

func TestValidationAndHealth(t *testing.T) {
	_, base := newTestServer(t)

	var e errorResponse
	if st := call(t, http.MethodPost, base+"/v1/optimize", OptimizeRequest{Model: "nope"}, &e); st != http.StatusNotFound {
		t.Errorf("unknown model: status %d, want 404", st)
	}
	if st := call(t, http.MethodPost, base+"/v1/optimize", OptimizeRequest{Model: "disk", Objective: "nope"}, &e); st != http.StatusBadRequest {
		t.Errorf("unknown metric: status %d, want 400", st)
	}
	if st := call(t, http.MethodPost, base+"/v1/optimize", OptimizeRequest{Model: "disk", Alpha: 0.5, Horizon: 100}, &e); st != http.StatusBadRequest {
		t.Errorf("alpha+horizon: status %d, want 400", st)
	}
	if st := call(t, http.MethodPost, base+"/v1/optimize", OptimizeRequest{Model: "disk", Bounds: []BoundSpec{{Metric: "penalty", Rel: "==", Value: 1}}}, &e); st != http.StatusBadRequest {
		t.Errorf("bad rel: status %d, want 400", st)
	}

	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if st := call(t, http.MethodGet, base+"/v1/healthz", nil, &health); st != http.StatusOK || health.Status != "ok" || health.Models != 7 {
		t.Errorf("healthz: status %d body %+v", st, health)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	for _, want := range []string{"dpmserved_requests_total", "dpmserved_exact_hits_total", "dpmserved_models 7"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSolverKnobs: the factorization/pricing/max_pivots request fields reach
// the solver — pinned strategies answer like the default, the knobs
// fingerprint into the cache key, an exhausted pivot budget maps to 422 and
// the budget_exceeded counter, and unknown strategy names are client errors.
func TestSolverKnobs(t *testing.T) {
	_, base := newTestServer(t)
	req := OptimizeRequest{
		Model:     "disk",
		Objective: "power",
		Bounds:    []BoundSpec{{Metric: "penalty", Rel: "<=", Value: 1.8}},
	}

	var ref OptimizeResponse
	if st := call(t, http.MethodPost, base+"/v1/optimize", req, &ref); st != http.StatusOK || !ref.Feasible {
		t.Fatalf("reference solve: status %d, %+v", st, ref)
	}

	pinned := req
	pinned.Factorization = "sparse"
	pinned.Pricing = "devex"
	var resp OptimizeResponse
	if st := call(t, http.MethodPost, base+"/v1/optimize", pinned, &resp); st != http.StatusOK {
		t.Fatalf("pinned solve status %d", st)
	}
	// A different strategy tuple is a different fingerprint: no cache hit,
	// but the same optimum.
	if resp.Cache == "hit" {
		t.Errorf("pinned strategies answered from the default-strategy cache")
	}
	if d := resp.Objective - ref.Objective; d > 1e-8 || d < -1e-8 {
		t.Errorf("pinned objective %g vs default %g", resp.Objective, ref.Objective)
	}
	var again OptimizeResponse
	if call(t, http.MethodPost, base+"/v1/optimize", pinned, &again); again.Cache != "hit" {
		t.Errorf("repeat pinned query: cache %q, want hit", again.Cache)
	}
	if n := counter(t, base, "refactorizations"); n <= 0 {
		t.Errorf("refactorizations counter = %d after two solves", n)
	}

	budget := req
	budget.MaxPivots = 1
	var e errorResponse
	if st := call(t, http.MethodPost, base+"/v1/optimize", budget, &e); st != http.StatusUnprocessableEntity {
		t.Errorf("exhausted pivot budget: status %d, want 422 (%s)", st, e.Error)
	}
	if n := counter(t, base, "budget_exceeded"); n != 1 {
		t.Errorf("budget_exceeded counter = %d, want 1", n)
	}

	bad := req
	bad.Factorization = "qr"
	if st := call(t, http.MethodPost, base+"/v1/optimize", bad, &e); st != http.StatusBadRequest {
		t.Errorf("unknown factorization: status %d, want 400", st)
	}
	bad = req
	bad.Pricing = "steepest"
	if st := call(t, http.MethodPost, base+"/v1/optimize", bad, &e); st != http.StatusBadRequest {
		t.Errorf("unknown pricing: status %d, want 400", st)
	}
	bad = req
	bad.MaxPivots = -3
	if st := call(t, http.MethodPost, base+"/v1/optimize", bad, &e); st != http.StatusBadRequest {
		t.Errorf("negative max_pivots: status %d, want 400", st)
	}
}

// TestInfeasibleCached: an infeasible verdict is a definitive answer and is
// cached like any other.
func TestInfeasibleCached(t *testing.T) {
	_, base := newTestServer(t)
	req := OptimizeRequest{
		Model:     "disk",
		Objective: "power",
		// A two-state workload is busy ~25% of slices; demanding near-zero
		// queue *and* near-zero power is unsatisfiable.
		Bounds: []BoundSpec{
			{Metric: "penalty", Rel: "<=", Value: 1e-9},
			{Metric: "power", Rel: "<=", Value: 1e-3},
		},
	}
	var resp OptimizeResponse
	if st := call(t, http.MethodPost, base+"/v1/optimize", req, &resp); st != http.StatusOK {
		t.Fatalf("infeasible solve status %d", st)
	}
	if resp.Feasible || resp.Status != "infeasible" {
		t.Fatalf("response %+v, want infeasible", resp)
	}
	var again OptimizeResponse
	call(t, http.MethodPost, base+"/v1/optimize", req, &again)
	if again.Cache != "hit" || again.Feasible {
		t.Errorf("repeat infeasible: cache %q feasible %v, want cached infeasible", again.Cache, again.Feasible)
	}
}

// TestCacheEviction: the LRU stays within its bound and eviction is
// observable.
func TestCacheEviction(t *testing.T) {
	s, err := New(Config{CacheSize: 4, DefaultTimeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	for i := 0; i < 10; i++ {
		var resp OptimizeResponse
		call(t, http.MethodPost, hs.URL+"/v1/optimize", OptimizeRequest{
			Model:     "example",
			Objective: "power",
			Bounds:    []BoundSpec{{Metric: "penalty", Rel: "<=", Value: 0.5 + float64(i)*0.01}},
		}, &resp)
		if !resp.Feasible {
			t.Fatalf("point %d infeasible (%s)", i, resp.Status)
		}
	}
	if n := s.cache.len(); n > 4 {
		t.Errorf("cache holds %d entries, cap 4", n)
	}
	if s.stats.Evictions.Load() == 0 {
		t.Errorf("no evictions recorded across 10 inserts into a 4-entry cache")
	}
}

func TestQueryKeyStability(t *testing.T) {
	opts := core.Options{Alpha: 0.99, Objective: core.Objective{Metric: "power"}}
	k1, f1, _ := queryKey("m", opts)
	k2, f2, _ := queryKey("m", opts)
	if k1 != k2 || f1 != f2 {
		t.Errorf("identical queries fingerprint differently")
	}
	opts2 := opts
	opts2.Bounds = []core.Bound{{Metric: "penalty", Value: 0.5}}
	k3, f3, _ := queryKey("m", opts2)
	if k3 == k1 || f3 == f1 {
		t.Errorf("adding a bound did not move the fingerprint")
	}
	opts3 := opts2
	opts3.Bounds = []core.Bound{{Metric: "penalty", Value: 0.6}}
	k4, f4, _ := queryKey("m", opts3)
	if k4 == k3 {
		t.Errorf("bound value did not move the exact key")
	}
	if f4 != f3 {
		t.Errorf("bound value moved the family key (it must not)")
	}
}

// TestSweepKeyIncludesBaseBounds: two sweeps identical except for a fixed
// (non-swept) bound's value must not collide in the cache.
func TestSweepKeyIncludesBaseBounds(t *testing.T) {
	_, base := newTestServer(t)
	sweepAt := func(lossBound float64) *SweepResponse {
		var sw SweepResponse
		st := call(t, http.MethodPost, base+"/v1/sweep", SweepRequest{
			OptimizeRequest: OptimizeRequest{
				Model:     "example",
				Objective: "power",
				Bounds:    []BoundSpec{{Metric: "loss", Rel: "<=", Value: lossBound}},
			},
			Sweep: SweepSpec{Metric: "penalty", Rel: "<=", Values: []float64{0.6, 0.5}, Workers: 1},
		}, &sw)
		if st != http.StatusOK {
			t.Fatalf("sweep status %d", st)
		}
		return &sw
	}
	a := sweepAt(0.4)
	b := sweepAt(0.3) // tighter base bound: must be a fresh solve
	if b.Cache != "miss" {
		t.Fatalf("sweep with different base bound served from cache (%q)", b.Cache)
	}
	if a.Feasible > 0 && b.Feasible > 0 && a.Points[0].Objective == b.Points[0].Objective {
		t.Errorf("different base bounds produced identical objectives %g; key collision?", a.Points[0].Objective)
	}
}

// TestRegisterCannotShadowPreset: a posted model reusing a preset's name
// must not rebind that name for other clients.
func TestRegisterCannotShadowPreset(t *testing.T) {
	s, base := newTestServer(t)
	before, ok := s.reg.resolve("disk")
	if !ok {
		t.Fatal("preset disk missing")
	}
	var info ModelInfo
	st := call(t, http.MethodPost, base+"/v1/models", ModelSpec{Preset: "disk", P01: 0.3, P10: 0.01}, &info)
	if st != http.StatusCreated || info.ID == before.ID {
		t.Fatalf("re-parameterized preset: status %d id %s (preset id %s)", st, info.ID, before.ID)
	}
	after, ok := s.reg.resolve("disk")
	if !ok || after.ID != before.ID {
		t.Errorf("name %q now resolves to %s, want original preset %s", "disk", after.ID, before.ID)
	}
	if byID, ok := s.reg.resolve(info.ID); !ok || byID.ID != info.ID {
		t.Errorf("posted model not resolvable by content id")
	}
}
