package server

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// modelEntry is one resident compiled model: the system, its composed
// controlled Markov chain, and the content fingerprint both are addressed
// by. Compilation happens exactly once, at registration; every query
// against the model reuses the resident core.Model.
type modelEntry struct {
	ID    string // content fingerprint (sha256 hex of the canonical form)
	Name  string
	Desc  string
	Sys   *core.System
	Model *core.Model
}

func (e *modelEntry) info() ModelInfo {
	metrics := make([]string, 0, len(e.Model.Metrics))
	for name := range e.Model.Metrics {
		metrics = append(metrics, name)
	}
	sort.Strings(metrics)
	return ModelInfo{
		ID:       e.ID,
		Name:     e.Name,
		Desc:     e.Desc,
		States:   e.Model.N,
		Commands: e.Model.A,
		Metrics:  metrics,
	}
}

// registry holds the resident models, addressable by content id or by
// name. Registration is idempotent on content: posting parameters that
// fingerprint to an already-compiled model returns the existing entry.
type registry struct {
	mu     sync.RWMutex
	byID   map[string]*modelEntry
	byName map[string]string // registered name -> id (first binding wins; see register)
	order  []string          // ids in first-registration order
}

func newRegistry() *registry {
	return &registry{byID: make(map[string]*modelEntry), byName: make(map[string]string)}
}

// register fingerprints and compiles the system. The boolean reports
// whether the content was already resident (no compilation happened).
func (r *registry) register(sys *core.System, desc string) (*modelEntry, bool, error) {
	fp, err := sys.Fingerprint()
	if err != nil {
		return nil, false, fmt.Errorf("fingerprinting model %q: %w", sys.Name, err)
	}

	r.mu.RLock()
	e, ok := r.byID[fp]
	r.mu.RUnlock()
	if ok {
		return e, true, nil
	}

	// Compile outside the lock: Build is the expensive step and two racing
	// registrations of the same content are idempotent anyway.
	m, err := sys.Build()
	if err != nil {
		return nil, false, fmt.Errorf("compiling model %q: %w", sys.Name, err)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if prior, ok := r.byID[fp]; ok {
		return prior, true, nil
	}
	e = &modelEntry{ID: fp, Name: sys.Name, Desc: desc, Sys: sys, Model: m}
	r.byID[fp] = e
	// Names bind first-wins: presets register at startup and keep their
	// names; a posted model whose name collides is still fully addressable
	// by its content id, and cannot silently shadow "disk" for everyone
	// else.
	if _, taken := r.byName[sys.Name]; !taken {
		r.byName[sys.Name] = fp
	}
	r.order = append(r.order, fp)
	return e, false, nil
}

// resolve looks a model up by content id first, then by registered name.
func (r *registry) resolve(ref string) (*modelEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.byID[ref]; ok {
		return e, true
	}
	if id, ok := r.byName[ref]; ok {
		return r.byID[id], true
	}
	return nil, false
}

// list returns the registered models in first-registration order.
func (r *registry) list() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id].info())
	}
	return out
}

// size returns the number of resident models.
func (r *registry) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}
