package server

import (
	"context"
	"sync"
	"time"
)

// flightGroup deduplicates concurrent identical queries: the first request
// for a fingerprint becomes the leader and runs the solve; requests that
// arrive while it is in flight attach as waiters and share the one result.
// A thundering herd of identical queries therefore compiles and solves
// once.
//
// Unlike the classic singleflight, cancellation is reference-counted: each
// waiter that gives up (its request context cancelled or expired) detaches
// individually and gets its own context error promptly, and when the last
// interested request detaches the shared solve itself is cancelled — which,
// through the lp-layer hook, aborts the simplex mid-pivot instead of
// burning a core on an answer nobody is waiting for. The solve runs on a
// context derived from the server's base context (not the leader's), so an
// impatient leader does not take the herd down with it.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done    chan struct{} // closed when val/err are set
	cancel  context.CancelFunc
	waiters int
	val     any
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// do returns fn's result for key, sharing one invocation among concurrent
// callers. shared reports whether this caller joined an existing flight.
// fn receives a context bounded by timeout (the leader's budget) and
// cancelled when every caller has detached; it must honor cancellation
// promptly. A joiner whose own deadline outlives a flight that died on the
// leader's shorter one should retry rather than surface the leader's
// context error as its own — Server.doSolve implements that loop.
func (g *flightGroup) do(ctx context.Context, base context.Context, key string, timeout time.Duration, fn func(ctx context.Context) (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	f, ok := g.flights[key]
	if ok {
		f.waiters++
	} else {
		solveCtx, cancel := context.WithTimeout(base, timeout)
		f = &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
		g.flights[key] = f
		go func() {
			v, err := fn(solveCtx)
			cancel()
			g.mu.Lock()
			f.val, f.err = v, err
			if g.flights[key] == f {
				delete(g.flights, key)
			}
			g.mu.Unlock()
			close(f.done)
		}()
	}
	g.mu.Unlock()

	select {
	case <-f.done:
		return f.val, ok, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			// Nobody is listening anymore: abort the solve and retire the
			// flight so a later identical query starts fresh instead of
			// joining a corpse.
			f.cancel()
			if g.flights[key] == f {
				delete(g.flights, key)
			}
		}
		g.mu.Unlock()
		return nil, ok, context.Cause(ctx)
	}
}
