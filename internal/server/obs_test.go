package server

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// ---- Prometheus text-format mini parser ----

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
)

type promFamily struct {
	typ     string
	help    bool
	samples []promSample
}

type promSample struct {
	name   string // full sample name (may carry _bucket/_sum/_count)
	labels string
	value  float64
}

// parseProm validates the exposition shape while parsing: HELP and TYPE
// precede every family's samples, names are legal, sample values parse.
func parseProm(t *testing.T, body string) map[string]*promFamily {
	t.Helper()
	fams := make(map[string]*promFamily)
	get := func(name string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{}
			fams[name] = f
		}
		return f
	}
	// baseOf strips a histogram sample suffix back to its family name.
	baseOf := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if f, ok := fams[base]; ok && f.typ == "histogram" {
					return base
				}
			}
		}
		return name
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found || !promNameRe.MatchString(name) {
				t.Fatalf("malformed HELP line %q", line)
			}
			f := get(name)
			if f.help || f.typ != "" || len(f.samples) > 0 {
				t.Fatalf("HELP for %s repeated or out of order", name)
			}
			f.help = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found || !promNameRe.MatchString(name) {
				t.Fatalf("malformed TYPE line %q", line)
			}
			f := get(name)
			if !f.help {
				t.Fatalf("TYPE for %s without preceding HELP", name)
			}
			if f.typ != "" || len(f.samples) > 0 {
				t.Fatalf("TYPE for %s repeated or after samples", name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		name := m[1]
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil && m[4] != "+Inf" && m[4] != "-Inf" && m[4] != "NaN" {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		fam := baseOf(name)
		f, ok := fams[fam]
		if !ok || f.typ == "" {
			t.Fatalf("sample %q before its family's HELP/TYPE", line)
		}
		f.samples = append(f.samples, promSample{name: name, labels: m[3], value: v})
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning exposition: %v", err)
	}
	return fams
}

// leOf extracts the le label value from a bucket sample's label list.
func leOf(t *testing.T, labels string) float64 {
	t.Helper()
	for _, kv := range strings.Split(labels, ",") {
		k, v, _ := strings.Cut(kv, "=")
		if k != "le" {
			continue
		}
		v = strings.Trim(v, `"`)
		if v == "+Inf" {
			return math.Inf(1)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("bucket le %q: %v", v, err)
		}
		return f
	}
	t.Fatalf("bucket sample without le label: %q", labels)
	return 0
}

// stripLE removes the le pair so buckets group by their remaining labels.
func stripLE(labels string) string {
	var kept []string
	for _, kv := range strings.Split(labels, ",") {
		if !strings.HasPrefix(kv, "le=") {
			kept = append(kept, kv)
		}
	}
	return strings.Join(kept, ",")
}

// checkHistogram validates one histogram family: per label set, cumulative
// non-decreasing buckets with strictly increasing le, +Inf last and equal
// to _count, and a _sum sample present.
func checkHistogram(t *testing.T, name string, f *promFamily) {
	t.Helper()
	type series struct {
		les    []float64
		counts []float64
		sum    bool
		count  float64
		hasCnt bool
	}
	byLabel := make(map[string]*series)
	get := func(labels string) *series {
		s, ok := byLabel[labels]
		if !ok {
			s = &series{}
			byLabel[labels] = s
		}
		return s
	}
	for _, sm := range f.samples {
		switch sm.name {
		case name + "_bucket":
			s := get(stripLE(sm.labels))
			s.les = append(s.les, leOf(t, sm.labels))
			s.counts = append(s.counts, sm.value)
		case name + "_sum":
			get(sm.labels).sum = true
		case name + "_count":
			s := get(sm.labels)
			s.count = sm.value
			s.hasCnt = true
		default:
			t.Errorf("%s: stray sample %q in histogram family", name, sm.name)
		}
	}
	if len(byLabel) == 0 {
		t.Fatalf("%s: histogram family with no series", name)
	}
	for labels, s := range byLabel {
		if len(s.les) == 0 || !s.sum || !s.hasCnt {
			t.Fatalf("%s{%s}: incomplete series (buckets %d, sum %v, count %v)", name, labels, len(s.les), s.sum, s.hasCnt)
		}
		for i := 1; i < len(s.les); i++ {
			if s.les[i] <= s.les[i-1] {
				t.Errorf("%s{%s}: le not increasing at %d (%g after %g)", name, labels, i, s.les[i], s.les[i-1])
			}
			if s.counts[i] < s.counts[i-1] {
				t.Errorf("%s{%s}: bucket counts not cumulative at %d", name, labels, i)
			}
		}
		if last := s.les[len(s.les)-1]; !math.IsInf(last, 1) {
			t.Errorf("%s{%s}: last bucket le=%g, want +Inf", name, labels, last)
		}
		if inf := s.counts[len(s.counts)-1]; inf != s.count {
			t.Errorf("%s{%s}: +Inf bucket %g != _count %g", name, labels, inf, s.count)
		}
	}
}

// TestMetricsPrometheusLint drives real traffic, then validates the full
// /metrics exposition: parseable, HELP/TYPE before samples, counters with
// _total suffixes, well-formed cumulative histograms, and values matching
// /v1/stats.
func TestMetricsPrometheusLint(t *testing.T) {
	_, base := newTestServer(t)
	req := OptimizeRequest{
		Model:  "disk",
		Bounds: []BoundSpec{{Metric: "penalty", Rel: "<=", Value: 1.5}},
	}
	var or OptimizeResponse
	if st := call(t, http.MethodPost, base+"/v1/optimize", req, &or); st != http.StatusOK || !or.Feasible {
		t.Fatalf("optimize: status %d %+v", st, or)
	}
	if st := call(t, http.MethodPost, base+"/v1/optimize", req, &or); st != http.StatusOK || or.Cache != "hit" {
		t.Fatalf("repeat optimize: status %d cache %q", st, or.Cache)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	fams := parseProm(t, body)

	for name, f := range fams {
		switch f.typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				t.Errorf("counter %s lacks the _total suffix", name)
			}
		case "gauge":
		case "histogram":
			checkHistogram(t, name, f)
		default:
			t.Errorf("family %s has unknown type %q", name, f.typ)
		}
	}

	// The served counters show up with real traffic behind them.
	find := func(name string) *promFamily {
		f, ok := fams[name]
		if !ok {
			t.Fatalf("family %s missing from /metrics", name)
		}
		return f
	}
	if f := find("dpmserved_exact_hits_total"); f.samples[0].value != 1 {
		t.Errorf("exact_hits_total = %g, want 1", f.samples[0].value)
	}
	if f := find("dpmserved_pivots_total"); f.samples[0].value <= 0 {
		t.Errorf("pivots_total = %g, want > 0", f.samples[0].value)
	}
	find("dpmserved_request_duration_seconds")
	find("dpmserved_solve_stage_duration_seconds")
	if f := find("dpmserved_solve_pivots"); f.typ != "histogram" {
		t.Errorf("solve_pivots type %q", f.typ)
	}
	// Per-endpoint counter series carry endpoint labels.
	epf := find("dpmserved_endpoint_requests_total")
	found := false
	for _, sm := range epf.samples {
		if strings.Contains(sm.labels, `endpoint="optimize"`) && sm.value == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("endpoint_requests_total{endpoint=optimize} != 2 in:\n%v", epf.samples)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestTraceRetrieval: a solved optimize query's trace is retrievable from
// GET /v1/trace by the X-Trace-Id the response carried, with cache, build
// and solve spans whose durations are consistent with the request total.
func TestTraceRetrieval(t *testing.T) {
	_, base := newTestServer(t)
	req := OptimizeRequest{
		Model:  "disk",
		Bounds: []BoundSpec{{Metric: "penalty", Rel: "<=", Value: 1.7}},
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/optimize", strings.NewReader(
		`{"model":"disk","bounds":[{"metric":"penalty","rel":"<=","value":1.7}]}`))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("X-Request-Id", "it-87")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatalf("response missing X-Trace-Id")
	}

	var tj obs.TraceJSON
	if st := call(t, http.MethodGet, base+"/v1/trace?id="+traceID, nil, &tj); st != http.StatusOK {
		t.Fatalf("trace fetch status %d", st)
	}
	if tj.ID != traceID || tj.Request != "it-87" {
		t.Fatalf("trace identity %q/%q, want %q/it-87", tj.ID, tj.Request, traceID)
	}
	if tj.Attrs["endpoint"] != "optimize" || tj.Attrs["cache"] != "cold" {
		t.Errorf("trace attrs %v, want endpoint=optimize cache=cold", tj.Attrs)
	}
	spans := make(map[string]obs.SpanJSON)
	sum := 0.0
	for _, sp := range tj.Spans {
		spans[sp.Name] = sp
		sum += sp.DurMS
	}
	for _, name := range []string{"cache", "build", "solve"} {
		if _, ok := spans[name]; !ok {
			t.Fatalf("trace lacks %q span; has %v", name, tj.Spans)
		}
	}
	if pv, ok := spans["solve"].Attrs["pivots"].(float64); !ok || pv <= 0 {
		t.Errorf("solve span pivots attr %v, want > 0", spans["solve"].Attrs["pivots"])
	}
	if spans["solve"].Attrs["status"] != "optimal" {
		t.Errorf("solve span status %v", spans["solve"].Attrs["status"])
	}
	// Span durations account for at most the request's total (the handler
	// also spends time outside any span).
	if sum > tj.DurMS*1.001 {
		t.Errorf("span durations sum to %.3fms > request %.3fms", sum, tj.DurMS)
	}

	// An exact-hit repeat is traced too, without a solve span.
	var or OptimizeResponse
	if st := call(t, http.MethodPost, base+"/v1/optimize", req, &or); st != http.StatusOK || or.Cache != "hit" {
		t.Fatalf("repeat: status %d cache %q", st, or.Cache)
	}
	var list struct {
		Traces []obs.TraceJSON `json:"traces"`
	}
	if st := call(t, http.MethodGet, base+"/v1/trace?n=5", nil, &list); st != http.StatusOK {
		t.Fatalf("trace list status %d", st)
	}
	if len(list.Traces) != 2 {
		t.Fatalf("%d traces retained, want 2 (monitoring endpoints are not recorded)", len(list.Traces))
	}
	if list.Traces[0].Attrs["cache"] != "hit" || list.Traces[1].ID != traceID {
		t.Errorf("trace order: got %v then %v, want the hit newest", list.Traces[0].Attrs, list.Traces[1].ID)
	}
	for _, sp := range list.Traces[0].Spans {
		if sp.Name == "solve" {
			t.Errorf("exact hit grew a solve span")
		}
	}
}

// TestStatsEndpointSections: /v1/stats grows the per-endpoint and solve
// distribution sections while keeping the counters map stable.
func TestStatsEndpointSections(t *testing.T) {
	srv, base := newTestServer(t)
	req := OptimizeRequest{
		Model:  "disk",
		Bounds: []BoundSpec{{Metric: "penalty", Rel: "<=", Value: 1.6}},
	}
	var or OptimizeResponse
	if st := call(t, http.MethodPost, base+"/v1/optimize", req, &or); st != http.StatusOK {
		t.Fatalf("optimize status %d", st)
	}

	var stats struct {
		Counters  map[string]int64 `json:"counters"`
		Endpoints map[string]struct {
			Requests int64 `json:"requests"`
			Latency  struct {
				Count int64   `json:"count"`
				P50MS float64 `json:"p50_ms"`
				P99MS float64 `json:"p99_ms"`
			} `json:"latency"`
		} `json:"endpoints"`
		Solve struct {
			Pivots struct {
				Count int64   `json:"count"`
				P99   float64 `json:"p99"`
			} `json:"pivots"`
			Stages map[string]struct {
				Count int64 `json:"count"`
			} `json:"stages"`
		} `json:"solve"`
	}
	if st := call(t, http.MethodGet, base+"/v1/stats", nil, &stats); st != http.StatusOK {
		t.Fatalf("stats status %d", st)
	}
	if stats.Counters["optimize_queries"] != 1 {
		t.Errorf("counters.optimize_queries = %d", stats.Counters["optimize_queries"])
	}
	ep, ok := stats.Endpoints["optimize"]
	if !ok || ep.Requests != 1 || ep.Latency.Count != 1 || ep.Latency.P99MS <= 0 || ep.Latency.P50MS > ep.Latency.P99MS {
		t.Errorf("endpoints.optimize = %+v", ep)
	}
	if stats.Solve.Pivots.Count != 1 || stats.Solve.Pivots.P99 <= 0 {
		t.Errorf("solve.pivots = %+v", stats.Solve.Pivots)
	}
	if _, ok := stats.Solve.Stages["ftran"]; !ok {
		t.Errorf("solve.stages missing ftran: %v", stats.Solve.Stages)
	}
	if got := srv.Stats()["requests_optimize"]; got != 1 {
		t.Errorf("Stats()[requests_optimize] = %d, want 1", got)
	}
}
