package server

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// TestCachePersistenceRoundTrip: a solved query's basis survives
// SaveCache/LoadCache into a fresh server, where the same query family
// warm-starts instead of solving cold — and an exact repeat of the original
// query is NOT served as a stale hit (results are never persisted).
func TestCachePersistenceRoundTrip(t *testing.T) {
	s1, base1 := newTestServer(t)
	req := map[string]any{
		"model":     "disk",
		"objective": "power",
		"bounds":    []map[string]any{{"metric": "penalty", "rel": "<=", "value": 1.0}},
	}
	var resp OptimizeResponse
	if st := call(t, http.MethodPost, base1+"/v1/optimize", req, &resp); st != http.StatusOK {
		t.Fatalf("optimize status %d", st)
	}
	if resp.Cache != "cold" {
		t.Fatalf("first solve cache = %q, want cold", resp.Cache)
	}

	var buf bytes.Buffer
	n, err := s1.SaveCache(&buf)
	if err != nil {
		t.Fatalf("SaveCache: %v", err)
	}
	if n < 1 {
		t.Fatalf("SaveCache wrote %d entries, want ≥ 1", n)
	}

	s2, base2 := newTestServer(t)
	if got, err := s2.LoadCache(bytes.NewReader(buf.Bytes())); err != nil || got != n {
		t.Fatalf("LoadCache: restored %d, err %v; want %d", got, err, n)
	}

	// Exact repeat: must NOT be an exact hit (no results persisted), but
	// must warm-start from the restored basis.
	var again OptimizeResponse
	if st := call(t, http.MethodPost, base2+"/v1/optimize", req, &again); st != http.StatusOK {
		t.Fatalf("optimize status %d", st)
	}
	if again.Cache != "warm" || !again.WarmStarted {
		t.Errorf("restored-cache solve cache = %q (warm_started %v), want warm", again.Cache, again.WarmStarted)
	}
	if again.Objective != resp.Objective {
		t.Errorf("objective across restart: %g vs %g", again.Objective, resp.Objective)
	}
	if c := counter(t, base2, "warm_solves"); c != 1 {
		t.Errorf("warm_solves = %d, want 1", c)
	}
	if c := counter(t, base2, "exact_hits"); c != 0 {
		t.Errorf("exact_hits = %d, want 0 (results must not survive restarts)", c)
	}
}

// TestCacheFileVersionGuard: a version-mismatched document refuses to load
// and leaves the cache empty; corrupt bases are skipped individually.
func TestCacheFileVersionGuard(t *testing.T) {
	s, _ := newTestServer(t)
	if _, err := s.LoadCache(strings.NewReader(`{"version": 99, "entries": []}`)); err == nil {
		t.Errorf("version 99 accepted")
	}
	if _, err := s.LoadCache(strings.NewReader(`not json`)); err == nil {
		t.Errorf("garbage accepted")
	}
	// Entries with undecodable bases are dropped, not fatal.
	n, err := s.LoadCache(strings.NewReader(
		`{"version": 1, "entries": [{"key": "k", "family": "f", "basis": "AAAA"}]}`))
	if err != nil || n != 0 {
		t.Errorf("corrupt basis: restored %d, err %v; want 0, nil", n, err)
	}
	if s.cache.len() != 0 {
		t.Errorf("cache has %d entries after rejected loads, want 0", s.cache.len())
	}
}

// TestCacheFileRoundTripOnDisk: the file-level helpers (atomic write,
// missing-file tolerance).
func TestCacheFileRoundTripOnDisk(t *testing.T) {
	s1, base1 := newTestServer(t)
	req := map[string]any{
		"model":     "webserver",
		"horizon":   1e5,
		"objective": "power",
		"bounds":    []map[string]any{{"metric": "service", "rel": ">=", "value": 0.1}},
	}
	if st := call(t, http.MethodPost, base1+"/v1/optimize", req, nil); st != http.StatusOK {
		t.Fatalf("optimize status %d", st)
	}
	path := t.TempDir() + "/dpmserved.cache"
	if n, err := s1.SaveCacheFile(path); err != nil || n < 1 {
		t.Fatalf("SaveCacheFile: n=%d err=%v", n, err)
	}

	s2, _ := newTestServer(t)
	if n, err := s2.LoadCacheFile(path); err != nil || n < 1 {
		t.Fatalf("LoadCacheFile: n=%d err=%v", n, err)
	}
	if n, err := s2.LoadCacheFile(path + ".nosuch"); err != nil || n != 0 {
		t.Errorf("missing file: n=%d err=%v; want 0, nil", n, err)
	}
}
