package server

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Cache persistence: the result/basis LRU's warm-start state survives
// daemon restarts. Only (fingerprint, family, bound values, lp.Basis) tuples
// are written — bases round-trip through their versioned binary form
// (lp.Basis MarshalBinary/UnmarshalBinary) and are safe to rehydrate by
// construction: the solver refactorizes any warm basis against the actual
// problem data and falls back to a cold solve when it does not carry over.
// Cached Results are not persisted; an exact hit is only ever served from an
// entry solved by this process. The file is JSON with a version guard, so a
// format change refuses to load rather than misinterpret.

// cacheFileVersion guards the on-disk format.
const cacheFileVersion = 1

// persistedEntry is the disk form of one warm-start cache entry.
type persistedEntry struct {
	Key    string    `json:"key"`
	Family string    `json:"family"`
	Bounds []float64 `json:"bounds,omitempty"`
	// Basis is the lp.Basis binary form ("LPB1", itself versioned);
	// encoding/json base64s it.
	Basis []byte `json:"basis"`
}

// cacheFile is the persisted document.
type cacheFile struct {
	Version int              `json:"version"`
	Entries []persistedEntry `json:"entries"`
}

// SaveCache writes the cache's warm-start entries to w and returns how many
// were written.
func (s *Server) SaveCache(w io.Writer) (int, error) {
	doc := cacheFile{Version: cacheFileVersion, Entries: s.cache.export()}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&doc); err != nil {
		return 0, err
	}
	return len(doc.Entries), nil
}

// LoadCache reads a document written by SaveCache and restores its entries,
// returning how many were accepted. A version mismatch is an error: the
// caller should discard the file (the cache is only ever an accelerator).
func (s *Server) LoadCache(r io.Reader) (int, error) {
	var doc cacheFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("decoding cache file: %w", err)
	}
	if doc.Version != cacheFileVersion {
		return 0, fmt.Errorf("cache file version %d, want %d", doc.Version, cacheFileVersion)
	}
	return s.cache.restore(doc.Entries), nil
}

// SaveCacheFile atomically writes the cache to path (temp file + rename).
func (s *Server) SaveCacheFile(path string) (int, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	n, err := s.SaveCache(tmp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	return n, os.Rename(tmp.Name(), path)
}

// LoadCacheFile restores the cache from path. A missing file is not an
// error — it reports (0, nil), the natural first-boot case.
func (s *Server) LoadCacheFile(path string) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return s.LoadCache(f)
}
