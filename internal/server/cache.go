package server

import (
	"container/list"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/lp"
)

// solveCache is the fingerprint-keyed LRU over solved queries. Each entry
// carries up to three payloads:
//
//   - a *core.Result for exact hits (same model, options and bound values:
//     answered with zero pivots),
//   - an *lp.Basis plus the entry's bound-value vector, indexed by warm
//     family (same model and options, any bound values) so a near-hit query
//     warm-starts from the nearest cached vertex, and
//   - a *SweepResponse for exact sweep hits.
//
// One LRU bounds all of it: evicting an entry drops its result, its basis
// and its family-index membership together, so memory is capped by a single
// knob. Bases are small (m ints) next to results (N×A frequencies), but the
// results are what exact hits need, and keeping the two lifetimes identical
// keeps the accounting honest.
type solveCache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recently used; values are *cacheEntry
	items    map[string]*list.Element
	families map[string]map[string]*cacheEntry // family -> key -> entry
}

type cacheEntry struct {
	key    string
	family string    // empty: not in the warm index
	bounds []float64 // bound values, aligned with the family's bound rows
	result *core.Result
	basis  *lp.Basis
	sweep  *SweepResponse
}

func newSolveCache(capacity int) *solveCache {
	return &solveCache{
		cap:      capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		families: make(map[string]map[string]*cacheEntry),
	}
}

// get returns the entry for the exact key (touching it), or nil.
func (c *solveCache) get(key string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// put inserts or refreshes an entry and returns the number of evictions it
// caused (0 or 1).
func (c *solveCache) put(e *cacheEntry) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		c.removeFromFamily(el.Value.(*cacheEntry))
		el.Value = e
		c.ll.MoveToFront(el)
		c.addToFamily(e)
		return 0
	}
	c.items[e.key] = c.ll.PushFront(e)
	c.addToFamily(e)
	evicted := 0
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		victim := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, victim.key)
		c.removeFromFamily(victim)
		evicted++
	}
	return evicted
}

// nearest returns the cached basis of the family member whose bound-value
// vector is closest (Euclidean) to vals, or nil. It does not touch LRU
// order: consulting a basis is free-riding, not a use of the entry's
// result.
func (c *solveCache) nearest(family string, vals []float64) *lp.Basis {
	c.mu.Lock()
	defer c.mu.Unlock()
	best, bestD := (*cacheEntry)(nil), math.Inf(1)
	for _, e := range c.families[family] {
		if e.basis == nil || len(e.bounds) != len(vals) {
			continue
		}
		d := 0.0
		for i, v := range vals {
			dv := v - e.bounds[i]
			d += dv * dv
		}
		if d < bestD {
			best, bestD = e, d
		}
	}
	if best == nil {
		return nil
	}
	return best.basis
}

// len returns the number of cached entries.
func (c *solveCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// export snapshots the warm-indexed entries (those carrying a basis) in
// LRU→MRU order, so restoring them by sequential put reproduces the
// recency order. Results and sweep payloads are deliberately not exported:
// bases are tiny (m ints), model-agnostic to restore (the solver validates
// any basis against the actual problem and falls back to a cold solve),
// and they are what warm starts — the cache's whole point across a restart
// — need; a stale cached Result, by contrast, would be served verbatim as
// an exact hit with no cross-check against the rebuilt registry.
func (c *solveCache) export() []persistedEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]persistedEntry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if e.basis == nil || e.family == "" {
			continue
		}
		blob, err := e.basis.MarshalBinary()
		if err != nil {
			continue // a basis that cannot serialize is just not persisted
		}
		out = append(out, persistedEntry{
			Key:    e.key,
			Family: e.family,
			Bounds: append([]float64(nil), e.bounds...),
			Basis:  blob,
		})
	}
	return out
}

// restore re-inserts persisted entries, skipping any whose basis no longer
// decodes, and returns how many were accepted. Restored entries carry no
// result — they serve as warm-start donors only; the first exact query
// against one re-solves (warm) and overwrites it with a full entry.
func (c *solveCache) restore(entries []persistedEntry) int {
	restored := 0
	for i := range entries {
		pe := &entries[i]
		if pe.Key == "" || pe.Family == "" {
			continue
		}
		basis := new(lp.Basis)
		if err := basis.UnmarshalBinary(pe.Basis); err != nil {
			continue
		}
		c.put(&cacheEntry{
			key:    pe.Key,
			family: pe.Family,
			bounds: append([]float64(nil), pe.Bounds...),
			basis:  basis,
		})
		restored++
	}
	return restored
}

// addToFamily and removeFromFamily maintain the warm index; both run under
// c.mu.
func (c *solveCache) addToFamily(e *cacheEntry) {
	if e.family == "" || e.basis == nil {
		return
	}
	fam, ok := c.families[e.family]
	if !ok {
		fam = make(map[string]*cacheEntry)
		c.families[e.family] = fam
	}
	fam[e.key] = e
}

func (c *solveCache) removeFromFamily(e *cacheEntry) {
	if e.family == "" {
		return
	}
	if fam, ok := c.families[e.family]; ok {
		delete(fam, e.key)
		if len(fam) == 0 {
			delete(c.families, e.family)
		}
	}
}
