package server

import (
	"fmt"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/mat"
)

// Wire types: the JSON surface of the service. Requests reference models by
// the content id returned at registration (or by registered name); model
// bodies mirror core.ServiceProvider / core.ServiceRequester closely enough
// that a parameter file is also a valid request body.

// BoundSpec is one metric constraint row: Metric Rel Value, with Rel one of
// "<=" or ">=".
type BoundSpec struct {
	Metric string  `json:"metric"`
	Rel    string  `json:"rel"`
	Value  float64 `json:"value"`
}

func (b BoundSpec) toCore() (core.Bound, error) {
	rel, err := cli.ParseRel(b.Rel)
	if err != nil {
		return core.Bound{}, fmt.Errorf("bound %q: %v", b.Metric, err)
	}
	if b.Metric == "" {
		return core.Bound{}, fmt.Errorf("bound missing metric name")
	}
	return core.Bound{Metric: b.Metric, Rel: rel, Value: b.Value}, nil
}

// SRSpec is a user-posted service requester: a row-stochastic transition
// matrix and per-state request counts. State names are optional (generated
// when omitted).
type SRSpec struct {
	Name     string      `json:"name,omitempty"`
	States   []string    `json:"states,omitempty"`
	P        [][]float64 `json:"p"`
	Requests []int       `json:"requests"`
}

func (s *SRSpec) toCore() (*core.ServiceRequester, error) {
	n := len(s.P)
	if n == 0 {
		return nil, fmt.Errorf("sr: empty transition matrix")
	}
	states, err := stateNames(s.States, n, "r")
	if err != nil {
		return nil, fmt.Errorf("sr: %v", err)
	}
	p, err := denseMatrix(s.P, n, n)
	if err != nil {
		return nil, fmt.Errorf("sr transition matrix: %v", err)
	}
	sr := &core.ServiceRequester{
		Name:     orDefault(s.Name, "posted-sr"),
		States:   states,
		P:        p,
		Requests: append([]int(nil), s.Requests...),
	}
	if err := sr.Validate(); err != nil {
		return nil, err
	}
	return sr, nil
}

// SPSpec is a user-posted service provider: one transition matrix per
// command plus the service-rate and power tables.
type SPSpec struct {
	Name        string        `json:"name,omitempty"`
	States      []string      `json:"states,omitempty"`
	Commands    []string      `json:"commands,omitempty"`
	P           [][][]float64 `json:"p"`
	ServiceRate [][]float64   `json:"service_rate"`
	Power       [][]float64   `json:"power"`
}

func (s *SPSpec) toCore() (*core.ServiceProvider, error) {
	a := len(s.P)
	if a == 0 {
		return nil, fmt.Errorf("sp: no per-command transition matrices")
	}
	n := len(s.P[0])
	states, err := stateNames(s.States, n, "s")
	if err != nil {
		return nil, fmt.Errorf("sp: %v", err)
	}
	cmds, err := stateNames(s.Commands, a, "cmd")
	if err != nil {
		return nil, fmt.Errorf("sp commands: %v", err)
	}
	ps := make([]*mat.Matrix, a)
	for cmd := range s.P {
		if ps[cmd], err = denseMatrix(s.P[cmd], n, n); err != nil {
			return nil, fmt.Errorf("sp transition matrix for command %s: %v", cmds[cmd], err)
		}
	}
	rate, err := denseMatrix(s.ServiceRate, n, a)
	if err != nil {
		return nil, fmt.Errorf("sp service_rate: %v", err)
	}
	power, err := denseMatrix(s.Power, n, a)
	if err != nil {
		return nil, fmt.Errorf("sp power: %v", err)
	}
	sp := &core.ServiceProvider{
		Name:        orDefault(s.Name, "posted-sp"),
		States:      states,
		Commands:    cmds,
		P:           ps,
		ServiceRate: rate,
		Power:       power,
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// ModelSpec is the body of POST /v1/models: either a named preset (with an
// optional two-state workload parameterization) or a full SP/SR parameter
// set with a queue capacity.
type ModelSpec struct {
	Name string `json:"name,omitempty"`

	// Preset selects a built-in device model (see cli.DeviceNames); P01/P10
	// parameterize its two-state workload where the device accepts one.
	Preset string  `json:"preset,omitempty"`
	P01    float64 `json:"p01,omitempty"`
	P10    float64 `json:"p10,omitempty"`

	// SP/SR/QueueCap define a user model when Preset is empty.
	SP       *SPSpec `json:"sp,omitempty"`
	SR       *SRSpec `json:"sr,omitempty"`
	QueueCap int     `json:"queue_cap,omitempty"`
}

func (ms *ModelSpec) toSystem() (*core.System, string, error) {
	if ms.Preset != "" {
		if ms.SP != nil || ms.SR != nil {
			return nil, "", fmt.Errorf("model spec: preset and sp/sr are mutually exclusive")
		}
		d, err := cli.NewDevice(ms.Preset, ms.P01, ms.P10)
		if err != nil {
			return nil, "", err
		}
		return d.Sys, d.Desc, nil
	}
	if ms.SP == nil || ms.SR == nil {
		return nil, "", fmt.Errorf("model spec: need preset, or both sp and sr")
	}
	sp, err := ms.SP.toCore()
	if err != nil {
		return nil, "", err
	}
	sr, err := ms.SR.toCore()
	if err != nil {
		return nil, "", err
	}
	if ms.QueueCap < 0 {
		return nil, "", fmt.Errorf("model spec: negative queue_cap %d", ms.QueueCap)
	}
	sys := &core.System{
		Name:     orDefault(ms.Name, sp.Name+"+"+sr.Name),
		SP:       sp,
		SR:       sr,
		QueueCap: ms.QueueCap,
	}
	return sys, "user-posted model", nil
}

// ModelInfo describes one registered model (GET /v1/models and the
// registration response).
type ModelInfo struct {
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	Desc     string   `json:"desc,omitempty"`
	States   int      `json:"states"`
	Commands int      `json:"commands"`
	Metrics  []string `json:"metrics"`
	// Existing reports that registration found the same content fingerprint
	// already compiled (the registration was a no-op).
	Existing bool `json:"existing,omitempty"`
}

// OptimizeRequest is the body of POST /v1/optimize. Exactly one of Alpha or
// Horizon selects the discount; Horizon is the expected session length in
// slices (alpha = 1 - 1/horizon). The initial distribution is always
// uniform — resident results are shared across callers, and a per-caller q0
// would fragment the cache for a quantity policies barely depend on at the
// long horizons served here.
type OptimizeRequest struct {
	Model     string      `json:"model"`
	Alpha     float64     `json:"alpha,omitempty"`
	Horizon   float64     `json:"horizon,omitempty"`
	Objective string      `json:"objective,omitempty"` // default "penalty"
	Maximize  bool        `json:"maximize,omitempty"`
	Bounds    []BoundSpec `json:"bounds,omitempty"`
	// TimeoutMS bounds the solve; 0 selects the server default. The solve
	// is cancelled mid-pivot when it expires.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Factorization selects the simplex basis kernel ("auto", "dense",
	// "sparse", "tableau"; empty = auto) and Pricing the entering-column
	// rule ("auto", "dantzig", "devex", "partial"; empty = auto). Both are
	// part of the query fingerprint: strategy variants cache independently.
	Factorization string `json:"factorization,omitempty"`
	Pricing       string `json:"pricing,omitempty"`
	// MaxPivots bounds the simplex pivots of the solve (0: unlimited). An
	// exhausted budget is answered with 422 and counted in the
	// budget_exceeded serving counter.
	MaxPivots int `json:"max_pivots,omitempty"`
	// IncludePolicy adds the full per-state command distributions to the
	// response (N×A numbers; off by default).
	IncludePolicy bool `json:"include_policy,omitempty"`
}

// PolicyJSON is the optional policy payload: Dist[s][a] is the probability
// of issuing command a in state s.
type PolicyJSON struct {
	States   []string    `json:"states"`
	Commands []string    `json:"commands"`
	Dist     [][]float64 `json:"dist"`
}

// OptimizeResponse is the result of one optimize query.
type OptimizeResponse struct {
	Model     string             `json:"model"`
	Status    string             `json:"status"`
	Feasible  bool               `json:"feasible"`
	Objective float64            `json:"objective,omitempty"`
	Averages  map[string]float64 `json:"averages,omitempty"`
	// Cache reports how the query was served: "hit" (cached result, no
	// solve), "warm" (solved, warm-started from a cached basis), "cold"
	// (solved from scratch), or "shared" (deduplicated onto a concurrent
	// identical solve).
	Cache string `json:"cache"`
	// Pivots counts the simplex iterations this request paid for (0 on an
	// exact cache hit).
	Pivots      int         `json:"pivots"`
	WarmStarted bool        `json:"warm_started,omitempty"`
	Policy      *PolicyJSON `json:"policy,omitempty"`
	ElapsedMS   float64     `json:"elapsed_ms"`
}

// ObserveRequest is the body of POST /v1/models/{id}/observe: a batch of
// per-slice request counts for the model's streaming SR estimator, plus
// the estimator/drift configuration and the optimization options every
// refresh solves under (zero values select the adapter defaults). The
// configuration is fixed when the model's online adapter is created by its
// first observe; later requests may repeat the same settings or omit them,
// and any explicitly conflicting option or tuning field is rejected with
// 409 — the adaptation loop's LP patch path and warm starts require every
// refresh to solve a structurally identical program, and a silently
// ignored reconfiguration would leave the caller adapting under settings
// it does not believe it has. TimeoutMS becomes the per-refresh solve
// budget: a refresh whose simplex exceeds it is cancelled mid-pivot and
// the previous policy stays.
type ObserveRequest struct {
	OptimizeRequest
	// Counts are the observed per-slice request counts, oldest first.
	Counts []int `json:"counts"`
	// Memory is the extractor history length k (default 1).
	Memory int `json:"memory,omitempty"`
	// Decay is the estimator's per-slice forgetting factor in (0,1]
	// (default 0.995 ≈ a 200-slice effective window).
	Decay float64 `json:"decay,omitempty"`
	// DriftThreshold is the max per-row total-variation distance between
	// the estimate and the served SR before a re-solve (default 0.05).
	DriftThreshold float64 `json:"drift_threshold,omitempty"`
	// DriftZ scales each row's trigger by its own sampling noise:
	// re-solve when a row's TV exceeds drift_threshold + drift_z·SE(row).
	// Default 2; negative disables the adaptive margin (global threshold).
	DriftZ float64 `json:"drift_z,omitempty"`
	// MinSlices gates the first solve (default 100 observed transitions).
	MinSlices int `json:"min_slices,omitempty"`
	// MinEvidence excludes rows with less decayed transition mass from the
	// drift measure (default 8).
	MinEvidence float64 `json:"min_evidence,omitempty"`
	// CheckEvery is the number of ingested slices between drift checks
	// (default 32).
	CheckEvery int `json:"check_every,omitempty"`
}

// hasOptions reports whether the request carries any optimization options —
// used to reject conflicting reconfiguration of an existing adapter while
// letting pure count batches through.
func (r *ObserveRequest) hasOptions() bool {
	return r.Alpha != 0 || r.Horizon != 0 || r.Objective != "" || r.Maximize || len(r.Bounds) > 0 ||
		r.Factorization != "" || r.Pricing != "" || r.MaxPivots != 0
}

// ObserveResponse reports one ingest: what the drift controller measured
// and whether it refreshed the served policy.
type ObserveResponse struct {
	Model string `json:"model"`
	// Ingested counts this batch's slices; Slices the model's lifetime total.
	Ingested int   `json:"ingested"`
	Slices   int64 `json:"slices"`
	// Drift is the measured drift at this batch's check (0 if none ran).
	Drift float64 `json:"drift"`
	// Refreshed reports a re-solve installed a new policy; Trigger is
	// "initial" or "drift" when one was attempted. Patched means the
	// resident LP was revised in place (no rebuild); WarmStarted that the
	// solve reused the previous optimal basis; Pivots its simplex work.
	Refreshed   bool   `json:"refreshed"`
	Trigger     string `json:"trigger,omitempty"`
	Patched     bool   `json:"patched,omitempty"`
	WarmStarted bool   `json:"warm_started,omitempty"`
	Pivots      int    `json:"pivots"`
	// Refreshes is the model's lifetime refresh count.
	Refreshes int `json:"refreshes"`
	// RefreshError reports a refresh attempt that failed (the previous
	// policy, if any, keeps serving).
	RefreshError string `json:"refresh_error,omitempty"`
	// Serving reports that a policy is installed; Objective/Averages (and
	// Policy when include_policy is set) describe it.
	Serving   bool               `json:"serving"`
	Objective float64            `json:"objective,omitempty"`
	Averages  map[string]float64 `json:"averages,omitempty"`
	Policy    *PolicyJSON        `json:"policy,omitempty"`
	ElapsedMS float64            `json:"elapsed_ms"`
}

// SweepSpec selects the swept constraint of POST /v1/sweep.
type SweepSpec struct {
	Metric  string    `json:"metric"`
	Rel     string    `json:"rel"`
	Values  []float64 `json:"values"`
	Workers int       `json:"workers,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: the optimize options plus the
// swept constraint. Every feasible point's result and basis land in the
// cache, so later optimize queries at swept bounds are exact hits.
type SweepRequest struct {
	OptimizeRequest
	Sweep SweepSpec `json:"sweep"`
}

// SweepPoint is one point of the returned tradeoff curve.
type SweepPoint struct {
	Value     float64            `json:"value"`
	Feasible  bool               `json:"feasible"`
	Objective float64            `json:"objective,omitempty"`
	Averages  map[string]float64 `json:"averages,omitempty"`
}

// SweepResponse is the result of one sweep query.
type SweepResponse struct {
	Model       string       `json:"model"`
	Points      []SweepPoint `json:"points"`
	Feasible    int          `json:"feasible"`
	WarmStarted int          `json:"warm_started"`
	Pivots      int          `json:"pivots"`
	Cache       string       `json:"cache"` // "hit" or "miss"
	ElapsedMS   float64      `json:"elapsed_ms"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func stateNames(given []string, n int, prefix string) ([]string, error) {
	if len(given) == 0 {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("%s%d", prefix, i)
		}
		return names, nil
	}
	if len(given) != n {
		return nil, fmt.Errorf("%d names for %d entries", len(given), n)
	}
	return append([]string(nil), given...), nil
}

func denseMatrix(rows [][]float64, r, c int) (*mat.Matrix, error) {
	if len(rows) != r {
		return nil, fmt.Errorf("%d rows, want %d", len(rows), r)
	}
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("row %d has %d entries, want %d", i, len(row), c)
		}
	}
	return mat.FromRows(rows), nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
