// Package server is the resident policy-serving subsystem: a long-lived
// HTTP/JSON service that holds compiled power-management models in memory
// and answers (workload, constraint) policy queries from a fingerprinted
// cache.
//
// The paper's optimization is an LP that must be re-solved whenever the
// workload model or the performance constraint moves. The CLIs pay process
// startup plus model compilation per solve; this package is the serving
// path: models are registered once (built-in device presets at startup,
// user-posted SP/SR parameter sets via POST /v1/models), compiled once into
// resident core.Models, and every query is keyed by a content fingerprint
// of (model parameters, discount, objective, constraint set). An exact
// fingerprint hit returns the cached result without a single simplex pivot;
// a near hit — same model and options, different bound values — warm-starts
// from the nearest cached optimal basis; concurrent identical queries are
// deduplicated onto one in-flight solve. Resource use is bounded by an LRU
// over cached results/bases and by per-request deadlines that cancel the
// simplex mid-pivot (core.OptimizeCtx → lp.Solver.Solve).
//
// Endpoints:
//
//	POST /v1/models                register a model (preset or SP/SR parameters)
//	GET  /v1/models                list resident models
//	POST /v1/models/{id}/observe   ingest workload slices (online adaptation)
//	POST /v1/optimize              one constrained policy optimization
//	POST /v1/sweep                 a Pareto bound sweep (internal/sweep worker pool)
//	GET  /v1/solves                live solve flight-recorder table
//	DELETE /v1/solves/{id}         cancel one in-flight solve
//	GET  /v1/healthz               liveness + model count
//	GET  /v1/stats                 serving counters as JSON
//	GET  /metrics                  the same counters, Prometheus text format
//
// The observe endpoint is the online-adaptation loop (internal/online): a
// per-model streaming SR estimator ingests count slices, a drift controller
// re-solves when the estimate leaves the served policy's model, and every
// re-solve revises the resident LP in place (core.PatchFrequencyLP) and
// warm-starts from the previous optimal basis.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// Config tunes the server. The zero value gets sensible defaults from New.
type Config struct {
	// CacheSize bounds the number of cached query results/bases (default
	// 512). Sweeps insert one entry per feasible point.
	CacheSize int
	// DefaultTimeout bounds solves that do not request their own deadline
	// (default 30s); MaxTimeout caps what a request may ask for (default
	// 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Presets disables built-in model registration when false is wanted;
	// nil-safe default is to register every cli device preset.
	SkipPresets bool
	// BaseContext is the root of every solve context; cancelling it drains
	// the solver (default context.Background()).
	BaseContext context.Context
	// MaxSweepPoints bounds one sweep request (default 4096).
	MaxSweepPoints int
	// TraceBuffer bounds the ring of finished request traces retrievable
	// via GET /v1/trace (default 256).
	TraceBuffer int
	// SolveMonitorEvery sets the flight recorder's "progress" snapshot
	// cadence in pivots for solves the server runs (0 keeps the lp default
	// of 64). Tests lower it to observe short solves mid-flight.
	SolveMonitorEvery int
	// AccessLog emits one structured log line per request (method, path,
	// status, duration, trace ID) through the obs logger.
	AccessLog bool
}

// maxObserveSlices bounds one observe request's count batch; a feeder
// streaming faster than this per request should chunk (and would defeat the
// drift controller's cadence anyway).
const maxObserveSlices = 1 << 20

// Server is the resident policy service. Create with New; serve via
// Handler.
type Server struct {
	cfg     Config
	reg     *registry
	cache   *solveCache
	flights *flightGroup
	stats   counters
	tele    *telemetry
	solves  *solveTable
	mux     *http.ServeMux
	start   time.Time

	// onlineMu guards onlines, the per-model online adaptation state
	// (created lazily by the first observe of a model).
	onlineMu sync.Mutex
	onlines  map[string]*onlineEntry
}

// New builds a Server and registers the built-in device presets (their
// compiled models are resident from the first request on).
func New(cfg Config) (*Server, error) {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 512
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 2 * time.Minute
	}
	if cfg.MaxSweepPoints <= 0 {
		cfg.MaxSweepPoints = 4096
	}
	if cfg.BaseContext == nil {
		cfg.BaseContext = context.Background()
	}
	if cfg.TraceBuffer <= 0 {
		cfg.TraceBuffer = 256
	}
	s := &Server{
		cfg:     cfg,
		reg:     newRegistry(),
		cache:   newSolveCache(cfg.CacheSize),
		flights: newFlightGroup(),
		tele:    newTelemetry(cfg.TraceBuffer),
		solves:  newSolveTable(),
		mux:     http.NewServeMux(),
		start:   time.Now(),
		onlines: make(map[string]*onlineEntry),
	}
	if !cfg.SkipPresets {
		for _, name := range cli.DeviceNames() {
			d, err := cli.NewDevice(name, 0, 0)
			if err != nil {
				return nil, fmt.Errorf("server: building preset %q: %w", name, err)
			}
			if _, _, err := s.reg.register(d.Sys, d.Desc); err != nil {
				return nil, fmt.Errorf("server: registering preset %q: %w", name, err)
			}
		}
	}
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/models", s.handleRegister)
	s.mux.HandleFunc("GET /v1/models", s.handleListModels)
	s.mux.HandleFunc("POST /v1/models/{model}/observe", s.handleObserve)
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/solves", s.handleSolves)
	s.mux.HandleFunc("DELETE /v1/solves/{id}", s.handleSolveCancel)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/trace", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// statusWriter captures the response status for telemetry.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Handler returns the HTTP handler: the route mux wrapped in the
// observability middleware. Every request gets a trace (the X-Request-Id
// header, if present, is attached for correlation; the trace ID is echoed
// back as X-Trace-Id), a per-endpoint latency observation, and — for the
// solver-facing endpoints — a slot in the trace ring buffer served by
// GET /v1/trace.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.stats.Requests.Add(1)
		ep := endpointOf(r)
		es := s.tele.endpoints[ep]
		es.requests.Add(1)

		ctx, tr := obs.StartTrace(r.Context(), r.Method+" "+r.URL.Path, "")
		tr.Request = r.Header.Get("X-Request-Id")
		w.Header().Set("X-Trace-Id", tr.ID)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		started := time.Now()
		s.mux.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(started)

		es.latency.ObserveDuration(elapsed)
		tr.Set("endpoint", ep)
		tr.Set("status", sw.status)
		tr.Finish()
		if recorded(ep) {
			s.tele.recorder.Record(tr)
		}
		if s.cfg.AccessLog {
			obs.Logger().Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"dur_ms", float64(elapsed.Microseconds())/1000,
				"trace", tr.ID,
				"request", tr.Request,
			)
		}
	})
}

// Stats returns a snapshot of the serving counters (exported for embedding
// processes; the HTTP surface is /v1/stats), including one
// requests_<endpoint> counter per endpoint that has served traffic.
func (s *Server) Stats() map[string]int64 {
	snap := s.stats.snapshot()
	for _, name := range endpointNames {
		if n := s.tele.endpoints[name].requests.Load(); n > 0 {
			snap["requests_"+name] = n
		}
	}
	return snap
}

// ---- query fingerprinting ----

// queryKey derives the two content fingerprints of a query against a
// registered model: the family key identifies the LP structure (model,
// discount, objective, constraint rows — everything except the bound
// values), so structurally identical queries share warm-start bases; the
// exact key appends the bound values, so only a full match returns a cached
// result. Returns (key, family, boundValues).
func queryKey(modelID string, opts core.Options) (string, string, []float64) {
	var b strings.Builder
	num := func(v float64) {
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		b.WriteByte(';')
	}
	b.WriteString(modelID)
	b.WriteByte(';')
	num(opts.Alpha)
	b.WriteString(opts.Objective.Metric)
	fmt.Fprintf(&b, ";%d;%d;", opts.Objective.Sense, opts.UnvisitedCommand)
	// Solver strategy knobs are part of the family: a budget-capped or
	// strategy-pinned query must not be answered from (or seed) the cache of
	// a differently configured one.
	fmt.Fprintf(&b, "%d;%d;%d;", opts.LPFactorization, opts.LPPricing, opts.LPMaxPivots)
	vals := make([]float64, 0, len(opts.Bounds))
	for _, bd := range opts.Bounds {
		fmt.Fprintf(&b, "%s;%d;", bd.Metric, bd.Rel)
		vals = append(vals, bd.Value)
	}
	famSum := sha256.Sum256([]byte(b.String()))
	family := hex.EncodeToString(famSum[:])
	for _, v := range vals {
		num(v)
	}
	keySum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(keySum[:]), family, vals
}

// buildOptions translates a request into core.Options against the resolved
// model, validating metrics and the discount up front so fingerprints only
// ever cover solvable queries.
func (s *Server) buildOptions(e *modelEntry, req *OptimizeRequest) (core.Options, error) {
	var opts core.Options
	switch {
	case req.Alpha != 0 && req.Horizon != 0:
		return opts, fmt.Errorf("alpha and horizon are mutually exclusive")
	case req.Alpha != 0:
		if req.Alpha < 0 || req.Alpha >= 1 {
			return opts, fmt.Errorf("alpha %g outside [0,1)", req.Alpha)
		}
		opts.Alpha = req.Alpha
	case req.Horizon != 0:
		if req.Horizon < 1 {
			return opts, fmt.Errorf("horizon %g < 1 slice", req.Horizon)
		}
		opts.Alpha = core.HorizonToAlpha(req.Horizon)
		if opts.Alpha >= 1 {
			// Beyond ~9e15 slices 1/h is below ulp(1)/2 and alpha rounds to
			// exactly 1; reject as client error rather than failing the solve.
			return opts, fmt.Errorf("horizon %g too large (discount rounds to 1)", req.Horizon)
		}
	default:
		opts.Alpha = core.HorizonToAlpha(1e5)
	}
	metric := req.Objective
	if metric == "" {
		metric = core.MetricPenalty
	}
	if _, err := e.Model.Metric(metric); err != nil {
		return opts, err
	}
	sense := lp.Minimize
	if req.Maximize {
		sense = lp.Maximize
	}
	opts.Objective = core.Objective{Metric: metric, Sense: sense}
	for _, bs := range req.Bounds {
		bd, err := bs.toCore()
		if err != nil {
			return opts, err
		}
		if _, err := e.Model.Metric(bd.Metric); err != nil {
			return opts, err
		}
		opts.Bounds = append(opts.Bounds, bd)
	}
	f, err := lp.ParseFactorization(req.Factorization)
	if err != nil {
		return opts, err
	}
	pr, err := lp.ParsePricing(req.Pricing)
	if err != nil {
		return opts, err
	}
	if req.MaxPivots < 0 {
		return opts, fmt.Errorf("max_pivots %d negative", req.MaxPivots)
	}
	opts.LPFactorization = f
	opts.LPPricing = pr
	opts.LPMaxPivots = req.MaxPivots
	// Shared-cache semantics: uniform initial distribution, no per-request
	// evaluation pass (averages are exact already).
	opts.SkipEvaluation = true
	return opts, nil
}

func (s *Server) timeout(ms int) (time.Duration, error) {
	if ms < 0 {
		return 0, fmt.Errorf("timeout_ms %d negative", ms)
	}
	if ms == 0 {
		return s.cfg.DefaultTimeout, nil
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// ---- handlers ----

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var spec ModelSpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	sys, desc, err := spec.toSystem()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e, existing, err := s.reg.register(sys, desc)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info := e.info()
	info.Existing = existing
	status := http.StatusCreated
	if existing {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.list())
}

// solveOutcome is what one flight (shared solve) produces.
type solveOutcome struct {
	res  *core.Result
	mode string // "warm" or "cold"
}

// doSolve runs fn through the flight group under this request's deadline.
// A flight is bounded by its leader's timeout; if a joined flight dies on
// the leader's (shorter) deadline while our own context is still live, we
// retry — becoming the leader of a fresh flight with our own budget — so a
// patient caller is never cut off by an impatient one. The loop terminates
// because each retry either returns a non-context error, or leads its own
// flight (shared=false), or eventually exhausts reqCtx.
func (s *Server) doSolve(reqCtx context.Context, key string, timeout time.Duration, fn func(ctx context.Context) (any, error)) (any, bool, error) {
	for {
		v, shared, err := s.flights.do(reqCtx, s.cfg.BaseContext, key, timeout, fn)
		if err != nil && shared && isContextErr(err) && reqCtx.Err() == nil {
			continue
		}
		return v, shared, err
	}
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	var req OptimizeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	e, ok := s.reg.resolve(req.Model)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown model %q", req.Model))
		return
	}
	opts, err := s.buildOptions(e, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	timeout, err := s.timeout(req.TimeoutMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.stats.OptimizeQueries.Add(1)
	key, family, vals := queryKey(e.ID, opts)
	tr := obs.TraceFrom(r.Context())
	tr.Set("model", e.ID)

	_, csp := obs.StartSpan(r.Context(), "cache")
	c := s.cache.get(key)
	hit := c != nil && c.result != nil
	csp.Set("mode", map[bool]string{true: "hit", false: "miss"}[hit])
	csp.End()
	if hit {
		s.stats.ExactHits.Add(1)
		tr.Set("cache", "hit")
		writeJSON(w, http.StatusOK, s.optimizeResponse(e, &req, c.result, "hit", 0, started))
		return
	}

	reqCtx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	v, shared, err := s.doSolve(reqCtx, key, timeout, func(ctx context.Context) (any, error) {
		// The flight runs on a context derived from BaseContext so a joined
		// leader outliving this request keeps solving; re-attach the request's
		// trace so the leader's solve spans land in it. (Joiners share the
		// result, not the spans — their trace records cache="shared".)
		ctx = obs.Reattach(ctx, reqCtx)
		// Flight recorder: the solve registers itself in the live table on
		// its first monitor snapshot and leaves on completion; DELETE
		// /v1/solves/{id} cancels through this context.
		ctx, fl := s.solves.attach(ctx, e.ID, "optimize")
		defer fl.done()
		o := opts
		o.LPMonitor = fl
		o.LPMonitorEvery = s.cfg.SolveMonitorEvery
		_, wsp := obs.StartSpan(ctx, "warm-lookup")
		o.WarmBasis = s.cache.nearest(family, vals)
		wsp.Set("found", o.WarmBasis != nil)
		wsp.End()
		res, err := core.OptimizeCtx(ctx, e.Model, o)
		s.tele.recordSolve(res)
		switch {
		case err == nil:
		case errors.Is(err, core.ErrInfeasible):
			// Infeasibility is a definitive, cacheable answer.
			s.stats.Infeasible.Add(1)
		default:
			if isContextErr(err) {
				s.stats.CancelledSolves.Add(1)
			}
			if errors.Is(err, lp.ErrBudgetExceeded) {
				s.stats.BudgetExceeded.Add(1)
			}
			if res != nil {
				s.stats.Pivots.Add(int64(res.LPIterations))
				s.stats.Refactorizations.Add(int64(res.LPRefactorizations))
				s.stats.addSolveTimings(res.LPTimings)
			}
			return nil, err
		}
		s.stats.Pivots.Add(int64(res.LPIterations))
		s.stats.Refactorizations.Add(int64(res.LPRefactorizations))
		s.stats.addSolveTimings(res.LPTimings)
		mode := "cold"
		if res.WarmStarted {
			mode = "warm"
			s.stats.WarmSolves.Add(1)
		} else {
			s.stats.ColdSolves.Add(1)
		}
		ev := s.cache.put(&cacheEntry{key: key, family: family, bounds: vals, result: res, basis: res.Basis})
		s.stats.Evictions.Add(int64(ev))
		return &solveOutcome{res: res, mode: mode}, nil
	})
	if shared {
		s.stats.SharedSolves.Add(1)
	}
	if err != nil {
		writeSolveError(w, err)
		return
	}
	out := v.(*solveOutcome)
	mode := out.mode
	if shared {
		mode = "shared"
	}
	tr.Set("cache", mode)
	tr.Set("pivots", out.res.LPIterations)
	writeJSON(w, http.StatusOK, s.optimizeResponse(e, &req, out.res, mode, out.res.LPIterations, started))
}

func (s *Server) optimizeResponse(e *modelEntry, req *OptimizeRequest, res *core.Result, mode string, pivots int, started time.Time) *OptimizeResponse {
	resp := &OptimizeResponse{
		Model:       e.ID,
		Status:      res.Status.String(),
		Feasible:    res.Status == lp.Optimal,
		Cache:       mode,
		Pivots:      pivots,
		WarmStarted: res.WarmStarted,
		ElapsedMS:   float64(time.Since(started).Microseconds()) / 1000,
	}
	if !resp.Feasible {
		return resp
	}
	resp.Objective = res.Objective
	resp.Averages = res.Averages
	if req.IncludePolicy {
		pj := &PolicyJSON{
			Commands: e.Sys.SP.CommandNames(),
			States:   make([]string, res.Policy.N()),
			Dist:     make([][]float64, res.Policy.N()),
		}
		for i := range pj.States {
			pj.States[i] = e.Sys.StateName(i)
			pj.Dist[i] = res.Policy.CommandDist(i)
		}
		resp.Policy = pj
	}
	return resp
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	var req SweepRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	e, ok := s.reg.resolve(req.Model)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown model %q", req.Model))
		return
	}
	opts, err := s.buildOptions(e, &req.OptimizeRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rel, err := cli.ParseRel(req.Sweep.Rel)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := e.Model.Metric(req.Sweep.Metric); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if n := len(req.Sweep.Values); n == 0 || n > s.cfg.MaxSweepPoints {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep needs 1..%d values, got %d", s.cfg.MaxSweepPoints, n))
		return
	}
	timeout, err := s.timeout(req.TimeoutMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.stats.SweepQueries.Add(1)

	// Per-point family: the sweep bound appended as the last constraint row,
	// exactly how ParetoSweepCtx builds each point's LP. The sweep's own
	// exact key extends the family with the full value list.
	pointOpts := opts
	pointOpts.Bounds = append(append([]core.Bound{}, opts.Bounds...), core.Bound{Metric: req.Sweep.Metric, Rel: rel})
	_, family, _ := queryKey(e.ID, pointOpts)
	baseVals := make([]float64, 0, len(opts.Bounds))
	for _, bd := range opts.Bounds {
		baseVals = append(baseVals, bd.Value)
	}
	var kb strings.Builder
	kb.WriteString("sweep;")
	kb.WriteString(family)
	// The family hash excludes every bound value by design, so the sweep's
	// exact key must append both the fixed base-bound values and the swept
	// value list.
	for _, v := range baseVals {
		fmt.Fprintf(&kb, ";%s", strconv.FormatFloat(v, 'g', -1, 64))
	}
	kb.WriteString("|")
	for _, v := range req.Sweep.Values {
		fmt.Fprintf(&kb, ";%s", strconv.FormatFloat(v, 'g', -1, 64))
	}
	sweepSum := sha256.Sum256([]byte(kb.String()))
	sweepKey := hex.EncodeToString(sweepSum[:])

	if c := s.cache.get(sweepKey); c != nil && c.sweep != nil {
		s.stats.ExactHits.Add(1)
		resp := *c.sweep
		resp.Cache = "hit"
		resp.Pivots = 0
		resp.ElapsedMS = float64(time.Since(started).Microseconds()) / 1000
		writeJSON(w, http.StatusOK, &resp)
		return
	}

	reqCtx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	v, shared, err := s.doSolve(reqCtx, sweepKey, timeout, func(ctx context.Context) (any, error) {
		ctx = obs.Reattach(ctx, reqCtx)
		_, ssp := obs.StartSpan(ctx, "sweep")
		ssp.Set("points", len(req.Sweep.Values))
		defer ssp.End()
		// One flight-recorder row covers the whole sweep: point solves all
		// feed it, so pivots accumulate across points (concurrent workers
		// interleave on the latest snapshot, which stays a live view).
		ctx, fl := s.solves.attach(ctx, e.ID, "sweep")
		defer fl.done()
		o := opts
		o.LPMonitor = fl
		o.LPMonitorEvery = s.cfg.SolveMonitorEvery
		seedVals := append(append([]float64{}, baseVals...), req.Sweep.Values[0])
		o.WarmBasis = s.cache.nearest(family, seedVals)
		points, err := sweep.Pareto(ctx, e.Model, o, req.Sweep.Metric, rel, req.Sweep.Values, sweep.Config{Workers: req.Sweep.Workers})
		if err != nil {
			if isContextErr(err) {
				s.stats.CancelledSolves.Add(1)
			}
			return nil, err
		}
		tally := sweep.Tally(points)
		s.stats.Pivots.Add(int64(tally.Pivots))
		resp := &SweepResponse{
			Model:       e.ID,
			Points:      make([]SweepPoint, 0, len(points)),
			Feasible:    tally.Feasible,
			WarmStarted: tally.WarmStarted,
			Pivots:      tally.Pivots,
			Cache:       "miss",
		}
		evicted := 0
		for _, p := range points {
			sp := SweepPoint{Value: p.BoundValue, Feasible: p.Feasible}
			if p.Feasible {
				sp.Objective = p.Objective
				sp.Averages = p.Averages
				if p.Result != nil {
					if p.Result.WarmStarted {
						s.stats.WarmSolves.Add(1)
					} else {
						s.stats.ColdSolves.Add(1)
					}
					s.stats.Refactorizations.Add(int64(p.Result.LPRefactorizations))
					s.stats.addSolveTimings(p.Result.LPTimings)
					s.tele.recordSolve(p.Result)
					// Each point is also a cacheable optimize answer: an
					// optimize query at a swept bound becomes an exact hit,
					// and the point's basis seeds future warm starts.
					po := opts
					po.Bounds = append(append([]core.Bound{}, opts.Bounds...), core.Bound{Metric: req.Sweep.Metric, Rel: rel, Value: p.BoundValue})
					pk, pf, pv := queryKey(e.ID, po)
					evicted += s.cache.put(&cacheEntry{key: pk, family: pf, bounds: pv, result: p.Result, basis: p.Result.Basis})
				}
			}
			resp.Points = append(resp.Points, sp)
		}
		evicted += s.cache.put(&cacheEntry{key: sweepKey, sweep: resp})
		s.stats.Evictions.Add(int64(evicted))
		return resp, nil
	})
	if shared {
		s.stats.SharedSolves.Add(1)
	}
	if err != nil {
		writeSolveError(w, err)
		return
	}
	resp := *(v.(*SweepResponse))
	if shared {
		resp.Cache = "shared"
	}
	resp.ElapsedMS = float64(time.Since(started).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"models":   s.reg.size(),
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := map[string]any{
		"counters":      s.stats.snapshot(),
		"endpoints":     s.tele.statsEndpoints(),
		"solve":         s.tele.statsSolve(),
		"gauges":        s.solves.gaugeMap(),
		"dropped_spans": s.tele.recorder.DroppedSpans(),
		"cache_size":    s.cache.len(),
		"models":        s.reg.size(),
		"uptime_s":      time.Since(s.start).Seconds(),
	}
	writeJSON(w, http.StatusOK, stats)
}

// handleTrace is GET /v1/trace: the most recent retained request traces,
// newest first. ?n= bounds the count (default 20); ?id= retrieves one trace
// by the X-Trace-Id a response carried.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		tj, ok := s.tele.recorder.Find(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("trace %q not retained (buffer holds the last %d solver-facing requests)", id, s.cfg.TraceBuffer))
			return
		}
		writeJSON(w, http.StatusOK, tj)
		return
	}
	n := 20
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", v))
			return
		}
		n = parsed
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.tele.recorder.Last(n)})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := obs.NewPromWriter(w)
	s.stats.writeProm(p)
	for _, name := range endpointNames {
		p.Family("dpmserved_endpoint_requests_total", "counter", "HTTP requests by endpoint.")
		p.Sample("dpmserved_endpoint_requests_total", obs.Label("endpoint", name),
			float64(s.tele.endpoints[name].requests.Load()))
	}
	p.Counter("dpmserved_dropped_spans_total", "Trace spans dropped by the per-trace span cap.",
		float64(s.tele.recorder.DroppedSpans()))
	gnames, gvals := s.solves.gauges.Snapshot()
	for i, name := range gnames {
		p.Gauge("dpmserved_"+name, "Flight-recorder gauge: solves currently in flight.", float64(gvals[i]))
	}
	p.Gauge("dpmserved_cache_size", "Cached query results and bases.", float64(s.cache.len()))
	p.Gauge("dpmserved_models", "Resident compiled models.", float64(s.reg.size()))
	p.Gauge("dpmserved_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())
	for _, name := range endpointNames {
		p.Histogram("dpmserved_request_duration_seconds", "Request latency by endpoint.",
			obs.Label("endpoint", name), s.tele.endpoints[name].latency.Snapshot(), 1e-9)
	}
	for _, name := range stageNames {
		p.Histogram("dpmserved_solve_stage_duration_seconds", "Per-stage solver wall clock per solve.",
			obs.Label("stage", name), s.tele.stages[name].Snapshot(), 1e-9)
	}
	p.Histogram("dpmserved_solve_pivots", "Simplex pivots per solve.", "", s.tele.pivots.Snapshot(), 1)
}

// ---- plumbing ----

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client may be gone; nothing useful to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// isContextErr reports whether err came from context cancellation or
// deadline expiry anywhere in its chain.
func isContextErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// writeSolveError maps solver failures onto HTTP statuses: deadline and
// cancellation are 504 (the context error is surfaced verbatim so clients
// can distinguish), an exhausted client-requested pivot budget is 422 (the
// request was well-formed but declared a budget the solve could not finish
// in), anything else is a 500.
func writeSolveError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case isContextErr(err):
		status = http.StatusGatewayTimeout
	case errors.Is(err, lp.ErrBudgetExceeded):
		status = http.StatusUnprocessableEntity
	}
	writeError(w, status, err)
}
