package server

import (
	"math"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// observeBody builds the observe request used across the online tests:
// power minimization under a penalty bound, 1-memory estimator with a
// ~200-slice window, drift checks every 25 slices.
func observeBody(counts []int) map[string]any {
	return map[string]any{
		"counts":          counts,
		"horizon":         1e4,
		"objective":       "power",
		"bounds":          []map[string]any{{"metric": "penalty", "rel": "<=", "value": 1.8}},
		"memory":          1,
		"decay":           0.995,
		"drift_threshold": 0.05,
		"min_slices":      300,
		"min_evidence":    8,
		"check_every":     25,
		"include_policy":  true,
	}
}

// TestObserveDriftRefreshE2E is the acceptance path of the online
// subsystem, driven entirely through the HTTP surface: a daemon fed a
// generated trace whose (p01, p10) drift mid-stream must (1) install an
// initial policy and refresh it on drift at least once, (2) serve every
// refresh after the first through the LP patch path — the rebuild counter
// stays at exactly one — warm-starting with strictly fewer pivots than a
// cold solve of the same instance, and (3) end up serving the policy a
// from-scratch solve on the drifted SR produces, to 1e-8.
func TestObserveDriftRefreshE2E(t *testing.T) {
	s, base := newTestServer(t)

	rng := rand.New(rand.NewSource(17))
	counts := trace.Concat(
		trace.OnOff(rng, 1500, 0.03, 0.25), // calm regime: sleeping pays
		trace.OnOff(rng, 1500, 0.20, 0.10), // drifted regime: the bound binds
	)

	var initialPolicy, servedPolicy *PolicyJSON
	driftPivots := -1
	for lo := 0; lo < len(counts); lo += 50 {
		hi := min(lo+50, len(counts))
		var resp ObserveResponse
		if st := call(t, http.MethodPost, base+"/v1/models/disk/observe", observeBody(counts[lo:hi]), &resp); st != http.StatusOK {
			t.Fatalf("observe[%d:%d] status %d", lo, hi, st)
		}
		if resp.RefreshError != "" {
			t.Fatalf("refresh failed at slice %d: %s", hi, resp.RefreshError)
		}
		if resp.Refreshed {
			switch resp.Trigger {
			case "initial":
				initialPolicy = resp.Policy
			case "drift":
				servedPolicy = resp.Policy
				driftPivots = resp.Pivots
				if !resp.Patched {
					t.Errorf("drift refresh at slice %d rebuilt the LP instead of patching", hi)
				}
				if !resp.WarmStarted {
					t.Errorf("drift refresh at slice %d did not warm-start", hi)
				}
			}
		}
	}

	if c := counter(t, base, "online_refreshes"); c < 2 {
		t.Fatalf("online_refreshes = %d, want ≥ 2", c)
	}
	if c := counter(t, base, "online_drift_refreshes"); c < 1 {
		t.Fatalf("online_drift_refreshes = %d, want ≥ 1", c)
	}
	// The patch path: exactly one full LP assembly (the initial refresh),
	// everything after it revised in place.
	if c := counter(t, base, "online_rebuilt"); c != 1 {
		t.Errorf("online_rebuilt = %d, want exactly 1", c)
	}
	if rc, wc := counter(t, base, "online_patched"), counter(t, base, "online_warm"); rc < 1 || wc < 1 {
		t.Errorf("online_patched = %d, online_warm = %d, want ≥ 1 each", rc, wc)
	}
	if c := counter(t, base, "online_failed"); c != 0 {
		t.Errorf("online_failed = %d, want 0", c)
	}
	if c := counter(t, base, "slices_ingested"); c != int64(len(counts)) {
		t.Errorf("slices_ingested = %d, want %d", c, len(counts))
	}

	// From-scratch reference on the SR the daemon ended up serving: the
	// drift refresh must have paid strictly fewer pivots than the cold
	// solve, and the served policy must match to 1e-8.
	e, ok := s.reg.resolve("disk")
	if !ok {
		t.Fatal("disk preset missing")
	}
	s.onlineMu.Lock()
	oe := s.onlines[e.ID]
	s.onlineMu.Unlock()
	if oe == nil {
		t.Fatal("no online adapter for the disk model")
	}
	served := oe.adapter.ServedSR()
	res := oe.adapter.Current()
	if served == nil || res == nil {
		t.Fatal("adapter serves no policy")
	}
	sys := *e.Sys
	sys.SR = served
	m, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := s.buildOptions(e, &OptimizeRequest{
		Horizon:   1e4,
		Objective: "power",
		Bounds:    []BoundSpec{{Metric: "penalty", Rel: "<=", Value: 1.8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := core.Optimize(m, opts)
	if err != nil {
		t.Fatalf("from-scratch solve: %v", err)
	}
	if driftPivots < 0 || driftPivots >= cold.LPIterations {
		t.Errorf("drift refresh pivots = %d, cold solve of the same instance = %d; want warm < cold",
			driftPivots, cold.LPIterations)
	}
	if math.Abs(res.Objective-cold.Objective) > 1e-8 {
		t.Errorf("served objective %g, from-scratch %g", res.Objective, cold.Objective)
	}
	for st := 0; st < m.N; st++ {
		for c := 0; c < m.A; c++ {
			if d := math.Abs(res.Policy.CommandDist(st)[c] - cold.Policy.CommandDist(st)[c]); d > 1e-8 {
				t.Fatalf("policy(%d,%d): served %g, from-scratch %g (Δ %g)",
					st, c, res.Policy.CommandDist(st)[c], cold.Policy.CommandDist(st)[c], d)
			}
		}
	}

	// The drift must have visibly changed the served policy.
	if initialPolicy == nil || servedPolicy == nil {
		t.Fatal("missing policy payloads from the refresh responses")
	}
	changed := false
	for i := range servedPolicy.Dist {
		for j := range servedPolicy.Dist[i] {
			if math.Abs(servedPolicy.Dist[i][j]-initialPolicy.Dist[i][j]) > 0.5 {
				changed = true
			}
		}
	}
	if !changed {
		t.Errorf("served policy did not change across the drift")
	}
}

// TestObserveValidation: unknown models, empty and negative batches, hooked
// systems and conflicting reconfiguration are rejected.
func TestObserveValidation(t *testing.T) {
	_, base := newTestServer(t)

	var er errorResponse
	if st := call(t, http.MethodPost, base+"/v1/models/nosuch/observe", observeBody([]int{1}), &er); st != http.StatusNotFound {
		t.Errorf("unknown model status %d", st)
	}
	if st := call(t, http.MethodPost, base+"/v1/models/disk/observe", map[string]any{"counts": []int{}}, &er); st != http.StatusBadRequest {
		t.Errorf("empty batch status %d", st)
	}
	if st := call(t, http.MethodPost, base+"/v1/models/disk/observe", map[string]any{"counts": []int{1, -1}}, &er); st != http.StatusBadRequest {
		t.Errorf("negative count status %d", st)
	}
	// The CPU preset has a wake-on-request hook; its SR cannot be swapped.
	if st := call(t, http.MethodPost, base+"/v1/models/cpu/observe", observeBody([]int{1, 0, 1}), &er); st != http.StatusBadRequest {
		t.Errorf("hooked model status %d", st)
	}

	// First observe fixes the option family; a conflicting one is rejected,
	// a repeat (or a bare batch) is fine.
	if st := call(t, http.MethodPost, base+"/v1/models/disk/observe", observeBody([]int{1, 0, 1}), nil); st != http.StatusOK {
		t.Fatalf("first observe status %d", st)
	}
	if st := call(t, http.MethodPost, base+"/v1/models/disk/observe", map[string]any{"counts": []int{0, 1}}, nil); st != http.StatusOK {
		t.Errorf("bare follow-up batch status %d", st)
	}
	conflicting := observeBody([]int{1})
	conflicting["objective"] = "penalty"
	if st := call(t, http.MethodPost, base+"/v1/models/disk/observe", conflicting, &er); st != http.StatusConflict {
		t.Errorf("conflicting options status %d", st)
	}
	// Estimator tuning conflicts too — a different memory would silently
	// change the adapted model family otherwise.
	tuned := observeBody([]int{1})
	tuned["memory"] = 3
	if st := call(t, http.MethodPost, base+"/v1/models/disk/observe", tuned, &er); st != http.StatusConflict {
		t.Errorf("conflicting memory status %d", st)
	}
	if !strings.Contains(er.Error, "memory") {
		t.Errorf("conflict error does not name the field: %q", er.Error)
	}
	// Restating the exact original configuration is not a conflict.
	if st := call(t, http.MethodPost, base+"/v1/models/disk/observe", observeBody([]int{0, 1}), nil); st != http.StatusOK {
		t.Errorf("repeated identical config status %d", st)
	}
}
