package server

import (
	"sort"
	"sync/atomic"

	"repro/internal/lp"
	"repro/internal/obs"
)

// counters is the server's observability surface: monotone counters over
// how queries were served. They are exported two ways — JSON on /v1/stats
// and Prometheus-style text on /metrics — and drive the end-to-end tests,
// which replay a query stream and assert on exactly these numbers.
type counters struct {
	Requests         atomic.Int64 // HTTP requests across all endpoints
	OptimizeQueries  atomic.Int64 // POST /v1/optimize bodies accepted
	SweepQueries     atomic.Int64 // POST /v1/sweep bodies accepted
	ExactHits        atomic.Int64 // queries answered from the result cache
	WarmSolves       atomic.Int64 // solves that reused a cached basis
	ColdSolves       atomic.Int64 // solves from scratch
	SharedSolves     atomic.Int64 // queries deduplicated onto an in-flight solve
	Infeasible       atomic.Int64 // solves that proved the constraints infeasible
	CancelledSolves  atomic.Int64 // solves aborted by deadline or detach
	Pivots           atomic.Int64 // total simplex pivots performed
	Refactorizations atomic.Int64 // total basis refactorizations across solves
	BudgetExceeded   atomic.Int64 // solves stopped by a client pivot budget
	Evictions        atomic.Int64 // cache entries evicted by the LRU

	// Cumulative per-stage solver wall clock in nanoseconds — the
	// lp.Timings breakdown (ftran/btran/price/factor/update) summed across
	// every solve the server ran, so operators can attribute serving CPU to
	// solver stages (e.g. factor-heavy means refactorization-bound models).
	SolveFtranNS  atomic.Int64
	SolveBtranNS  atomic.Int64
	SolvePriceNS  atomic.Int64
	SolveFactorNS atomic.Int64
	SolveUpdateNS atomic.Int64

	// Online adaptation (POST /v1/models/{id}/observe).
	ObserveRequests      atomic.Int64 // observe bodies accepted
	SlicesIngested       atomic.Int64 // workload slices fed to estimators
	OnlineRefreshes      atomic.Int64 // policies installed by the drift controller
	OnlineDriftRefreshes atomic.Int64 // the subset triggered by measured drift
	OnlinePatched        atomic.Int64 // refreshes that revised the LP in place
	OnlineRebuilt        atomic.Int64 // refreshes that reassembled the LP
	OnlineWarm           atomic.Int64 // refreshes whose solve reused the previous basis
	OnlineFailed         atomic.Int64 // refresh attempts that kept the old policy
}

// addSolveTimings folds one solve's per-stage breakdown into the
// cumulative stage counters.
func (c *counters) addSolveTimings(t lp.Timings) {
	c.SolveFtranNS.Add(int64(t.Ftran))
	c.SolveBtranNS.Add(int64(t.Btran))
	c.SolvePriceNS.Add(int64(t.Price))
	c.SolveFactorNS.Add(int64(t.Factor))
	c.SolveUpdateNS.Add(int64(t.Update))
}

// snapshot returns the counters as a name→value map (sorted rendering is
// the caller's concern; map iteration order is irrelevant for JSON).
func (c *counters) snapshot() map[string]int64 {
	return map[string]int64{
		"requests":         c.Requests.Load(),
		"optimize_queries": c.OptimizeQueries.Load(),
		"sweep_queries":    c.SweepQueries.Load(),
		"exact_hits":       c.ExactHits.Load(),
		"warm_solves":      c.WarmSolves.Load(),
		"cold_solves":      c.ColdSolves.Load(),
		"shared_solves":    c.SharedSolves.Load(),
		"infeasible":       c.Infeasible.Load(),
		"cancelled_solves": c.CancelledSolves.Load(),
		"pivots":           c.Pivots.Load(),
		"refactorizations": c.Refactorizations.Load(),
		"budget_exceeded":  c.BudgetExceeded.Load(),
		"evictions":        c.Evictions.Load(),

		"solve_ftran_ns":  c.SolveFtranNS.Load(),
		"solve_btran_ns":  c.SolveBtranNS.Load(),
		"solve_price_ns":  c.SolvePriceNS.Load(),
		"solve_factor_ns": c.SolveFactorNS.Load(),
		"solve_update_ns": c.SolveUpdateNS.Load(),

		"observe_requests":       c.ObserveRequests.Load(),
		"slices_ingested":        c.SlicesIngested.Load(),
		"online_refreshes":       c.OnlineRefreshes.Load(),
		"online_drift_refreshes": c.OnlineDriftRefreshes.Load(),
		"online_patched":         c.OnlinePatched.Load(),
		"online_rebuilt":         c.OnlineRebuilt.Load(),
		"online_warm":            c.OnlineWarm.Load(),
		"online_failed":          c.OnlineFailed.Load(),
	}
}

// promHelp supplies the # HELP text for each counter on /metrics. The
// snapshot keys (the /v1/stats JSON names) stay as they are; the exposition
// appends the conventional _total suffix.
var promHelp = map[string]string{
	"requests":         "HTTP requests across all endpoints.",
	"optimize_queries": "POST /v1/optimize bodies accepted.",
	"sweep_queries":    "POST /v1/sweep bodies accepted.",
	"exact_hits":       "Queries answered from the result cache without a solve.",
	"warm_solves":      "Solves that reused a cached warm-start basis.",
	"cold_solves":      "Solves from scratch.",
	"shared_solves":    "Queries deduplicated onto an in-flight solve.",
	"infeasible":       "Solves that proved the constraint set infeasible.",
	"cancelled_solves": "Solves aborted by deadline or client detach.",
	"pivots":           "Simplex pivots performed across all solves.",
	"refactorizations": "Basis refactorizations across all solves.",
	"budget_exceeded":  "Solves stopped by a client pivot budget.",
	"evictions":        "Cache entries evicted by the LRU.",

	"solve_ftran_ns":  "Cumulative solver FTRAN wall clock, nanoseconds.",
	"solve_btran_ns":  "Cumulative solver BTRAN wall clock, nanoseconds.",
	"solve_price_ns":  "Cumulative solver pricing wall clock, nanoseconds.",
	"solve_factor_ns": "Cumulative basis refactorization wall clock, nanoseconds.",
	"solve_update_ns": "Cumulative basis update wall clock, nanoseconds.",

	"observe_requests":       "Observe bodies accepted.",
	"slices_ingested":        "Workload slices fed to streaming estimators.",
	"online_refreshes":       "Policies installed by the drift controller.",
	"online_drift_refreshes": "Refreshes triggered by measured drift.",
	"online_patched":         "Refreshes that revised the LP in place.",
	"online_rebuilt":         "Refreshes that reassembled the LP.",
	"online_warm":            "Refreshes whose solve reused the previous basis.",
	"online_failed":          "Refresh attempts that kept the old policy.",
}

// writeProm renders the counters in Prometheus text exposition format under
// the dpmserved_ prefix, lint-clean: stable name order, one HELP/TYPE pair
// per family, counters carrying the _total suffix.
func (c *counters) writeProm(p *obs.PromWriter) {
	snap := c.snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		help := promHelp[k]
		if help == "" {
			help = "Cumulative count."
		}
		p.Counter("dpmserved_"+k+"_total", help, float64(snap[k]))
	}
}
