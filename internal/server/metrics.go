package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// counters is the server's observability surface: monotone counters over
// how queries were served. They are exported two ways — JSON on /v1/stats
// and Prometheus-style text on /metrics — and drive the end-to-end tests,
// which replay a query stream and assert on exactly these numbers.
type counters struct {
	Requests        atomic.Int64 // HTTP requests across all endpoints
	OptimizeQueries atomic.Int64 // POST /v1/optimize bodies accepted
	SweepQueries    atomic.Int64 // POST /v1/sweep bodies accepted
	ExactHits       atomic.Int64 // queries answered from the result cache
	WarmSolves      atomic.Int64 // solves that reused a cached basis
	ColdSolves      atomic.Int64 // solves from scratch
	SharedSolves    atomic.Int64 // queries deduplicated onto an in-flight solve
	Infeasible      atomic.Int64 // solves that proved the constraints infeasible
	CancelledSolves atomic.Int64 // solves aborted by deadline or detach
	Pivots          atomic.Int64 // total simplex pivots performed
	Evictions       atomic.Int64 // cache entries evicted by the LRU
}

// snapshot returns the counters as a name→value map (sorted rendering is
// the caller's concern; map iteration order is irrelevant for JSON).
func (c *counters) snapshot() map[string]int64 {
	return map[string]int64{
		"requests":         c.Requests.Load(),
		"optimize_queries": c.OptimizeQueries.Load(),
		"sweep_queries":    c.SweepQueries.Load(),
		"exact_hits":       c.ExactHits.Load(),
		"warm_solves":      c.WarmSolves.Load(),
		"cold_solves":      c.ColdSolves.Load(),
		"shared_solves":    c.SharedSolves.Load(),
		"infeasible":       c.Infeasible.Load(),
		"cancelled_solves": c.CancelledSolves.Load(),
		"pivots":           c.Pivots.Load(),
		"evictions":        c.Evictions.Load(),
	}
}

// writeProm renders the counters (plus caller-supplied gauges such as cache
// and registry sizes) in Prometheus text exposition format, with a stable
// name order, under the dpmserved_ prefix.
func (c *counters) writeProm(w io.Writer, gauges map[string]int64) {
	emit := func(vals map[string]int64, typ string) {
		names := make([]string, 0, len(vals))
		for k := range vals {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(w, "# TYPE dpmserved_%s %s\ndpmserved_%s %d\n", k, typ, k, vals[k])
		}
	}
	emit(c.snapshot(), "counter")
	emit(gauges, "gauge")
}
