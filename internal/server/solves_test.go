package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/devices"
)

// solvesBody mirrors the GET /v1/solves payload.
type solvesBody struct {
	Solves []SolveInfo `json:"solves"`
	Events []struct {
		Kind  string         `json:"kind"`
		Trace string         `json:"trace"`
		Attrs map[string]any `json:"attrs"`
	} `json:"events"`
}

// TestSolvesLiveTableAndCancel is the flight recorder end to end: during a
// deliberately long multi-point sweep, GET /v1/solves must list the
// in-flight solve with nonzero, monotonically advancing pivots, DELETE
// /v1/solves/{id} must cancel it through the ordinary context machinery
// (the waiting client sees the Cancelled 504), and the table must be empty
// once the flight unwinds.
func TestSolvesLiveTableAndCancel(t *testing.T) {
	s, err := New(Config{CacheSize: 128, DefaultTimeout: time.Minute, SolveMonitorEvery: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	base := hs.URL

	sys, err := devices.MultiDiskSystem(2, 4, core.TwoStateSR("w", 0.05, 0.15))
	if err != nil {
		t.Fatalf("MultiDiskSystem: %v", err)
	}
	e, _, err := s.reg.register(sys, "flight recorder test model")
	if err != nil {
		t.Fatalf("register: %v", err)
	}

	// A long serial sweep: hundreds of points on one worker keeps one
	// flight-recorder row alive for the whole request while pivots pile up.
	values := make([]float64, 400)
	for i := range values {
		values[i] = 0.1 + 1.4*float64(i)/float64(len(values))
	}
	req := SweepRequest{
		OptimizeRequest: OptimizeRequest{Model: e.ID, Objective: "power"},
		Sweep:           SweepSpec{Metric: "penalty", Rel: "<=", Values: values, Workers: 1},
	}
	type result struct {
		status int
		errMsg string
	}
	done := make(chan result, 1)
	go func() {
		var resp errorResponse
		st := call(t, http.MethodPost, base+"/v1/sweep", req, &resp)
		done <- result{status: st, errMsg: resp.Error}
	}()

	// Poll until the solve shows up with pivots, then until it advances.
	deadline := time.Now().Add(30 * time.Second)
	var seen SolveInfo
	for {
		if time.Now().After(deadline) {
			t.Fatal("solve never appeared in /v1/solves with nonzero pivots")
		}
		var sb solvesBody
		if st := call(t, http.MethodGet, base+"/v1/solves", nil, &sb); st != http.StatusOK {
			t.Fatalf("GET /v1/solves: status %d", st)
		}
		if len(sb.Solves) > 0 && sb.Solves[0].Pivots > 0 {
			seen = sb.Solves[0]
			break
		}
		time.Sleep(time.Millisecond)
	}
	if seen.Endpoint != "sweep" || seen.Model != e.ID || seen.ID <= 0 {
		t.Fatalf("in-flight row %+v, want a sweep on %s", seen, e.ID)
	}
	if seen.Trace == "" {
		t.Error("in-flight row has no trace id")
	}
	for {
		if time.Now().After(deadline) {
			t.Fatalf("pivots never advanced past %d", seen.Pivots)
		}
		var sb solvesBody
		call(t, http.MethodGet, base+"/v1/solves", nil, &sb)
		if len(sb.Solves) == 0 {
			t.Fatal("solve vanished before the sweep finished or was cancelled")
		}
		row := sb.Solves[0]
		if row.Pivots < seen.Pivots {
			t.Fatalf("pivots went backwards: %d after %d", row.Pivots, seen.Pivots)
		}
		if row.Pivots > seen.Pivots {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// The aggregate gauge mirrors the table.
	var stats struct {
		Gauges map[string]int64 `json:"gauges"`
	}
	call(t, http.MethodGet, base+"/v1/stats", nil, &stats)
	if stats.Gauges["solves_inflight"] != 1 || stats.Gauges["solves_inflight_sweep"] != 1 {
		t.Errorf("gauges %v, want one sweep in flight", stats.Gauges)
	}

	// Cancel it; the waiting client must see the ordinary Cancelled 504.
	var cancelResp map[string]any
	if st := call(t, http.MethodDelete, fmt.Sprintf("%s/v1/solves/%d", base, seen.ID), nil, &cancelResp); st != http.StatusOK {
		t.Fatalf("DELETE: status %d (%v)", st, cancelResp)
	}
	select {
	case r := <-done:
		if r.status != http.StatusGatewayTimeout {
			t.Fatalf("cancelled sweep returned %d (%s), want 504", r.status, r.errMsg)
		}
		if !strings.Contains(r.errMsg, "cancelled") {
			t.Errorf("error %q does not mention cancellation", r.errMsg)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep did not unwind after DELETE")
	}

	// Table empty, gauges back to zero, cancellation counted.
	var sb solvesBody
	call(t, http.MethodGet, base+"/v1/solves", nil, &sb)
	if len(sb.Solves) != 0 {
		t.Errorf("%d solves still listed after cancellation", len(sb.Solves))
	}
	call(t, http.MethodGet, base+"/v1/stats", nil, &stats)
	if stats.Gauges["solves_inflight"] != 0 {
		t.Errorf("solves_inflight = %d after unwind", stats.Gauges["solves_inflight"])
	}
	if n := s.stats.CancelledSolves.Load(); n == 0 {
		t.Error("cancelled_solves counter did not move")
	}
	// A second DELETE of the same id is a 404: the flight is gone.
	if st := call(t, http.MethodDelete, fmt.Sprintf("%s/v1/solves/%d", base, seen.ID), nil, nil); st != http.StatusNotFound {
		t.Errorf("re-DELETE status %d, want 404", st)
	}

	// The journal retained the flight's lifecycle, keyed by its trace.
	call(t, http.MethodGet, base+"/v1/solves", nil, &sb)
	kinds := map[string]bool{}
	traced := false
	for _, ev := range sb.Events {
		kinds[ev.Kind] = true
		if ev.Trace == seen.Trace {
			traced = true
		}
	}
	if !kinds["solve_start"] || !kinds["solve_finish"] {
		t.Errorf("journal kinds %v, want solve_start and solve_finish", kinds)
	}
	if !traced {
		t.Errorf("no journal event carries trace %s", seen.Trace)
	}
}

// TestSolvesTableAfterCompletion: a solve that runs to completion leaves no
// row behind, and the monitoring surfaces (stats gauges, dropped_spans,
// /metrics mirrors) are present even when idle.
func TestSolvesTableAfterCompletion(t *testing.T) {
	s, base := newTestServer(t)
	_ = s
	var opt OptimizeResponse
	st := call(t, http.MethodPost, base+"/v1/optimize", OptimizeRequest{
		Model:     "disk",
		Objective: "power",
		Bounds:    []BoundSpec{{Metric: "penalty", Rel: "<=", Value: 1.2}},
	}, &opt)
	if st != http.StatusOK || !opt.Feasible {
		t.Fatalf("optimize: status %d %+v", st, opt)
	}
	var sb solvesBody
	call(t, http.MethodGet, base+"/v1/solves", nil, &sb)
	if len(sb.Solves) != 0 {
		t.Errorf("%d solves listed after completion", len(sb.Solves))
	}
	if len(sb.Events) == 0 {
		t.Error("journal empty after a completed solve")
	}

	var stats struct {
		Gauges       map[string]int64 `json:"gauges"`
		DroppedSpans *int             `json:"dropped_spans"`
	}
	call(t, http.MethodGet, base+"/v1/stats", nil, &stats)
	if stats.DroppedSpans == nil {
		t.Error("/v1/stats has no dropped_spans")
	}
	if v, ok := stats.Gauges["solves_inflight"]; !ok || v != 0 {
		t.Errorf("solves_inflight gauge %d present=%v, want 0", v, ok)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	body := string(raw)
	for _, want := range []string{"dpmserved_solves_inflight 0", "dpmserved_dropped_spans_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
