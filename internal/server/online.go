package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/online"
)

// onlineEntry is the per-model online adaptation state: one streaming
// adapter plus the option-family fingerprint and effective estimator
// configuration it was created with, so a later observe request with
// conflicting settings is rejected instead of silently refreshing against
// the wrong LP family or a different estimator than the caller believes.
type onlineEntry struct {
	adapter *online.Adapter
	family  string
	cfg     online.Config // effective (defaults applied)
	created time.Time
	relay   monitorRelay
}

// monitorRelay is the adapter's fixed lp.Monitor (optimization options are
// frozen at adapter creation) forwarding to the flight-recorder row of the
// observe request currently driving a refresh. Between requests it points
// nowhere and snapshots drop.
type monitorRelay struct {
	target atomic.Pointer[solveFlight]
}

func (m *monitorRelay) Observe(sn lp.Snapshot) {
	if f := m.target.Load(); f != nil {
		f.Observe(sn)
	}
}

// tuningConflict reports which estimator/budget field of the request, if
// explicitly set, disagrees with the entry's effective configuration
// (omitted fields conflict with nothing; the comparison is against
// defaults-applied values, so restating a default is fine).
func (oe *onlineEntry) tuningConflict(req *ObserveRequest, budget time.Duration) string {
	c := oe.cfg
	switch {
	case req.Memory != 0 && req.Memory != c.Memory:
		return "memory"
	case req.Decay != 0 && req.Decay != c.Decay:
		return "decay"
	case req.DriftThreshold != 0 && req.DriftThreshold != c.DriftThreshold:
		return "drift_threshold"
	case req.DriftZ != 0 && max(req.DriftZ, -1) != c.DriftZ:
		return "drift_z"
	case req.MinSlices != 0 && req.MinSlices != c.MinSlices:
		return "min_slices"
	case req.MinEvidence != 0 && req.MinEvidence != c.MinEvidence:
		return "min_evidence"
	case req.CheckEvery != 0 && req.CheckEvery != c.CheckEvery:
		return "check_every"
	case req.TimeoutMS > 0 && budget != c.SolveBudget:
		return "timeout_ms"
	}
	return ""
}

// onlineFor returns the model's adapter, creating it from the request's
// configuration on first use. The estimator/drift configuration and the
// optimization options are fixed at creation — the LP patch path and warm
// starts rely on every refresh solving a structurally identical program —
// so later requests may only repeat (or omit) them. There is no
// reconfiguration path short of restarting the daemon; a model registered
// under different parameters (a different content fingerprint) gets its
// own adapter.
func (s *Server) onlineFor(e *modelEntry, req *ObserveRequest) (*onlineEntry, int, error) {
	opts, err := s.buildOptions(e, &req.OptimizeRequest)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	_, family, _ := queryKey(e.ID, opts)
	budget := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		if budget, err = s.timeout(req.TimeoutMS); err != nil {
			return nil, http.StatusBadRequest, err
		}
	}

	s.onlineMu.Lock()
	defer s.onlineMu.Unlock()
	if oe, ok := s.onlines[e.ID]; ok {
		if req.hasOptions() && oe.family != family {
			return nil, http.StatusConflict, fmt.Errorf(
				"model %s already adapts under a different optimization option set, fixed at its first observe; omit or repeat the original options (reconfiguring needs a daemon restart or a model with different parameters)", e.ID)
		}
		if f := oe.tuningConflict(req, budget); f != "" {
			return nil, http.StatusConflict, fmt.Errorf(
				"model %s already adapts with a different %q, fixed at its first observe; omit or repeat the original value (reconfiguring needs a daemon restart or a model with different parameters)", e.ID, f)
		}
		return oe, 0, nil
	}

	// The rebuild contract swaps the estimated SR into the registered
	// system. Behavioral hooks capture the original SR in closures (and are
	// index-coupled to its state space), so hooked systems cannot be
	// re-targeted this way.
	if e.Sys.SPRow != nil || e.Sys.PenaltyFn != nil || e.Sys.LossFn != nil || len(e.Sys.ExtraMetrics) > 0 {
		return nil, http.StatusBadRequest, fmt.Errorf(
			"model %s has behavioral hooks (%q); online adaptation needs a hook-free system", e.ID, e.Sys.HookTag)
	}
	rebuild := func(sr *core.ServiceRequester) (*core.System, error) {
		sys := *e.Sys
		sys.SR = sr
		sys.Name = e.Sys.Name + "+online"
		return &sys, nil
	}
	cfg := online.Config{
		Memory:         req.Memory,
		Decay:          req.Decay,
		DriftThreshold: req.DriftThreshold,
		DriftZ:         req.DriftZ,
		MinSlices:      req.MinSlices,
		MinEvidence:    req.MinEvidence,
		CheckEvery:     req.CheckEvery,
		SolveBudget:    budget,
	}
	oe := &onlineEntry{family: family, cfg: cfg.WithDefaults(), created: time.Now()}
	// Refresh solves report to whichever observe request is driving the
	// adapter; the relay indirection exists because the adapter's options
	// are fixed here, before any flight exists. Runtime-only — queryKey
	// never fingerprints monitors, so the family is unaffected.
	opts.LPMonitor = &oe.relay
	opts.LPMonitorEvery = s.cfg.SolveMonitorEvery
	adapter, err := online.New(rebuild, opts, cfg)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	oe.adapter = adapter
	s.onlines[e.ID] = oe
	return oe, 0, nil
}

// handleObserve is POST /v1/models/{model}/observe: ingest a slice batch
// into the model's streaming estimator and report what the drift controller
// did with it. The response mirrors /v1/optimize where a refresh happened
// (objective, averages, optional policy); refresh counters surface in
// /v1/stats and /metrics.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	e, ok := s.reg.resolve(r.PathValue("model"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown model %q", r.PathValue("model")))
		return
	}
	var req ObserveRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Counts) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("observe needs at least one slice count"))
		return
	}
	if len(req.Counts) > maxObserveSlices {
		writeError(w, http.StatusBadRequest, fmt.Errorf("observe accepts at most %d slices per request, got %d", maxObserveSlices, len(req.Counts)))
		return
	}
	// Counts are validated before the adapter is created: a rejected batch
	// must not pin the model's option family.
	for i, c := range req.Counts {
		if c < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("negative request count %d at slice %d", c, i))
			return
		}
	}
	s.stats.ObserveRequests.Add(1)
	oe, status, err := s.onlineFor(e, &req)
	if err != nil {
		writeError(w, status, err)
		return
	}

	// Register a flight-recorder row for any refresh this batch triggers;
	// a batch the drift controller absorbs without solving never surfaces
	// (the row only registers on the first monitor snapshot).
	ctx, fl := s.solves.attach(r.Context(), e.ID, "observe")
	oe.relay.target.Store(fl)
	out, err := oe.adapter.Observe(ctx, req.Counts)
	oe.relay.target.CompareAndSwap(fl, nil)
	fl.done()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.stats.SlicesIngested.Add(int64(out.Ingested))
	if out.Refreshed {
		s.stats.OnlineRefreshes.Add(1)
		s.stats.Pivots.Add(int64(out.Pivots))
		if out.Result != nil {
			s.stats.Refactorizations.Add(int64(out.Result.LPRefactorizations))
			s.stats.addSolveTimings(out.Result.LPTimings)
			s.tele.recordSolve(out.Result)
		}
		if out.Trigger == "drift" {
			s.stats.OnlineDriftRefreshes.Add(1)
		}
		if out.Patched {
			s.stats.OnlinePatched.Add(1)
		} else {
			s.stats.OnlineRebuilt.Add(1)
		}
		if out.WarmStarted {
			s.stats.OnlineWarm.Add(1)
		}
	} else if out.RefreshErr != nil {
		s.stats.OnlineFailed.Add(1)
	}

	st := oe.adapter.Stats()
	resp := &ObserveResponse{
		Model:       e.ID,
		Ingested:    out.Ingested,
		Slices:      st.Slices,
		Drift:       out.Drift,
		Refreshed:   out.Refreshed,
		Trigger:     out.Trigger,
		Patched:     out.Patched,
		WarmStarted: out.WarmStarted,
		Pivots:      out.Pivots,
		Refreshes:   st.Refreshes,
		ElapsedMS:   float64(time.Since(started).Microseconds()) / 1000,
	}
	if out.RefreshErr != nil {
		resp.RefreshError = out.RefreshErr.Error()
	}
	if res := oe.adapter.Current(); res != nil {
		resp.Serving = true
		resp.Objective = res.Objective
		resp.Averages = res.Averages
		if req.IncludePolicy {
			sys := oe.adapter.CurrentSystem()
			pj := &PolicyJSON{
				Commands: sys.SP.CommandNames(),
				States:   make([]string, res.Policy.N()),
				Dist:     make([][]float64, res.Policy.N()),
			}
			for i := range pj.States {
				pj.States[i] = sys.StateName(i)
				pj.Dist[i] = res.Policy.CommandDist(i)
			}
			resp.Policy = pj
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
