package server

// The server-side solve flight recorder: every solve the daemon runs — an
// optimize miss, a sweep request, an online drift refresh — registers a row
// in a live table while its pivots are in flight. GET /v1/solves lists the
// rows (plus the most recent solve-event journal entries); DELETE
// /v1/solves/{id} cancels one through the same context machinery a client
// timeout uses, so the victim reports the ordinary Cancelled status.
//
// A row is an lp.Monitor: the solver pushes read-only snapshots into it at
// its event cadence and the row stores the latest one under a lock, so the
// HTTP reader renders live progress without touching solver state. One row
// covers one server-side flight, which may span several solve attempts
// (warm start, cold fallback, conservative retry — or every point of a
// sweep); pivot totals accumulate across finished attempts while the latest
// snapshot tracks the attempt currently pivoting.

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/lp"
	"repro/internal/obs"
)

// solveTable is the registry of in-flight solves plus the observability
// surfaces fed by them: the in-flight gauge set mirrored on /v1/stats and
// /metrics, and the bounded solve-event journal served with /v1/solves.
type solveTable struct {
	gauges  *obs.Gauges
	journal *obs.Journal

	mu      sync.Mutex
	seq     int64
	entries map[int64]*solveFlight
}

func newSolveTable() *solveTable {
	t := &solveTable{
		gauges:  obs.NewGauges(),
		journal: obs.NewJournal(256),
		entries: make(map[int64]*solveFlight),
	}
	// Seed the aggregate gauge so the scrape surface always carries it,
	// idle servers included.
	t.gauges.Add("solves_inflight", 0)
	return t
}

// attach derives a cancellable solve context and its flight-recorder row.
// The row is not yet in the table — it registers itself on the first monitor
// snapshot, so requests that never pivot (cache hits upstream, observe
// batches the drift controller ignores) leave no trace. The caller must
// defer done().
func (t *solveTable) attach(ctx context.Context, model, endpoint string) (context.Context, *solveFlight) {
	ctx, cancel := context.WithCancelCause(ctx)
	f := &solveFlight{t: t, model: model, endpoint: endpoint, cancel: cancel}
	if tr := obs.TraceFrom(ctx); tr != nil {
		f.trace = tr.ID
	}
	return ctx, f
}

func (t *solveTable) register(f *solveFlight) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	t.entries[t.seq] = f
	return t.seq
}

func (t *solveTable) remove(id int64) {
	t.mu.Lock()
	delete(t.entries, id)
	t.mu.Unlock()
}

func (t *solveTable) get(id int64) (*solveFlight, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.entries[id]
	return f, ok
}

// list snapshots the table, oldest flight first. Row locks are taken only
// after t.mu is released (the monitor path nests f.mu → t.mu, so the reader
// must never nest the other way).
func (t *solveTable) list() []*solveFlight {
	t.mu.Lock()
	flights := make([]*solveFlight, 0, len(t.entries))
	for _, f := range t.entries {
		flights = append(flights, f)
	}
	t.mu.Unlock()
	sort.Slice(flights, func(i, j int) bool { return flights[i].id < flights[j].id })
	return flights
}

// gaugeMap renders the gauge set for /v1/stats.
func (t *solveTable) gaugeMap() map[string]int64 {
	names, vals := t.gauges.Snapshot()
	m := make(map[string]int64, len(names))
	for i, n := range names {
		m[n] = vals[i]
	}
	return m
}

// solveFlight is one live solve. It implements lp.Monitor; all mutable
// state is guarded by mu because the solving goroutine writes snapshots
// while HTTP readers render them.
type solveFlight struct {
	t        *solveTable
	model    string
	endpoint string
	trace    string
	cancel   context.CancelCauseFunc

	mu          sync.Mutex
	id          int64 // 0 until the first snapshot registers the row
	started     time.Time
	latest      lp.Snapshot
	hasSnap     bool
	attemptLive bool // a solve attempt has started and not yet finished
	donePivots  int  // pivot total of finished attempts
	doneRefacs  int
	finished    bool // done() ran; late snapshots must not resurrect the row
}

// Observe implements lp.Monitor: store the snapshot, fold finished-attempt
// totals, journal the non-progress events. Called synchronously from the
// pivot loop, so it does nothing heavier than a map insert.
func (f *solveFlight) Observe(sn lp.Snapshot) {
	f.mu.Lock()
	if f.finished {
		f.mu.Unlock()
		return
	}
	if f.id == 0 {
		f.started = time.Now()
		f.id = f.t.register(f)
		f.t.gauges.Add("solves_inflight", 1)
		f.t.gauges.Add("solves_inflight_"+f.endpoint, 1)
	}
	switch sn.Event {
	case "start":
		f.attemptLive = true
	case "finish":
		f.attemptLive = false
		f.donePivots += sn.Pivots
		f.doneRefacs += sn.Refactorizations
	}
	f.latest = sn
	f.hasSnap = true
	f.mu.Unlock()
	if sn.Event != "progress" {
		f.t.journal.Record(obs.Event{
			Kind:  "solve_" + sn.Event,
			Trace: f.trace,
			Attrs: map[string]any{
				"model":     f.model,
				"endpoint":  f.endpoint,
				"phase":     sn.Phase,
				"pivots":    sn.Pivots,
				"objective": sn.Objective,
			},
		})
	}
}

// done retires the flight: the row leaves the table, the gauges decrement,
// and the cancel-cause context is released. Idempotent.
func (f *solveFlight) done() {
	f.mu.Lock()
	if f.finished {
		f.mu.Unlock()
		return
	}
	f.finished = true
	id := f.id
	f.mu.Unlock()
	if id != 0 {
		f.t.remove(id)
		f.t.gauges.Add("solves_inflight", -1)
		f.t.gauges.Add("solves_inflight_"+f.endpoint, -1)
	}
	f.cancel(nil)
}

// SolveInfo is one /v1/solves row: identity, progress counters, the
// numerical-health record, and the per-stage wall-clock split so far.
type SolveInfo struct {
	ID               int64   `json:"id"`
	Model            string  `json:"model"`
	Endpoint         string  `json:"endpoint"`
	Trace            string  `json:"trace,omitempty"`
	Event            string  `json:"event"`
	Phase            string  `json:"phase,omitempty"`
	Pivots           int     `json:"pivots"`
	Refactorizations int     `json:"refactorizations"`
	Objective        float64 `json:"objective"`
	PrimalInf        float64 `json:"primal_inf"`
	DualInf          float64 `json:"dual_inf"`
	EtaLen           int     `json:"eta_len"`
	FactorNNZ        int     `json:"factor_nnz"`
	Perturbed        bool    `json:"perturbed"`
	GrowthFactor     float64 `json:"growth_factor,omitempty"`
	DiagRatio        float64 `json:"diag_ratio,omitempty"`
	FTRejections     int     `json:"ft_rejections,omitempty"`
	HyperSolves      int     `json:"hyper_solves,omitempty"`
	DenseSolves      int     `json:"dense_solves,omitempty"`
	ElapsedMS        float64 `json:"elapsed_ms"`

	Stages map[string]float64 `json:"stages_ms,omitempty"`
}

// info renders the row. Pivot/refactorization totals combine finished
// attempts with the attempt currently in flight.
func (f *solveFlight) info() SolveInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	in := SolveInfo{
		ID:        f.id,
		Model:     f.model,
		Endpoint:  f.endpoint,
		Trace:     f.trace,
		Pivots:    f.donePivots,
		ElapsedMS: float64(time.Since(f.started).Microseconds()) / 1000,
	}
	in.Refactorizations = f.doneRefacs
	if !f.hasSnap {
		return in
	}
	sn := f.latest
	in.Event = sn.Event
	in.Phase = sn.Phase
	if f.attemptLive {
		in.Pivots += sn.Pivots
		in.Refactorizations += sn.Refactorizations
	}
	in.Objective = sn.Objective
	in.PrimalInf = sn.PrimalInf
	in.DualInf = sn.DualInf
	in.EtaLen = sn.EtaLen
	in.FactorNNZ = sn.FactorNNZ
	in.Perturbed = sn.Perturbed
	in.GrowthFactor = sn.Health.GrowthFactor
	in.DiagRatio = sn.Health.DiagRatio()
	in.FTRejections = sn.Health.FTRejections
	in.HyperSolves = sn.Health.HyperSolves
	in.DenseSolves = sn.Health.DenseSolves
	if tm := sn.Timings; tm.Total() > 0 {
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		in.Stages = map[string]float64{
			"ftran":  ms(tm.Ftran),
			"btran":  ms(tm.Btran),
			"price":  ms(tm.Price),
			"factor": ms(tm.Factor),
			"update": ms(tm.Update),
		}
	}
	return in
}

// handleSolves is GET /v1/solves: the live solve table plus the most recent
// solve-event journal entries.
func (s *Server) handleSolves(w http.ResponseWriter, r *http.Request) {
	flights := s.solves.list()
	infos := make([]SolveInfo, 0, len(flights))
	for _, f := range flights {
		infos = append(infos, f.info())
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"solves": infos,
		"events": s.solves.journal.Last(32),
	})
}

// handleSolveCancel is DELETE /v1/solves/{id}: cancel one in-flight solve.
// The cancellation cause wraps context.Canceled, so the victim unwinds
// through the ordinary deadline path — lp Status Cancelled, a 504 on the
// waiting client, the cancelled_solves counter.
func (s *Server) handleSolveCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil || id <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid solve id %q", r.PathValue("id")))
		return
	}
	f, ok := s.solves.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no in-flight solve %d (it may have finished; see GET /v1/solves)", id))
		return
	}
	f.cancel(fmt.Errorf("solve %d cancelled via DELETE /v1/solves: %w", id, context.Canceled))
	writeJSON(w, http.StatusOK, map[string]any{"cancelled": id})
}
