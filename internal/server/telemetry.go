package server

import (
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
)

// endpointNames is the fixed set of per-endpoint telemetry keys. Every
// request maps onto exactly one (unknown paths land in "other"), so the
// histogram map is immutable after construction and needs no locking.
var endpointNames = []string{
	"optimize", "sweep", "observe", "models", "solves", "healthz", "stats", "metrics", "trace", "other",
}

// stageNames mirrors the lp.Timings breakdown, in emission order.
var stageNames = []string{"ftran", "btran", "price", "factor", "update"}

// endpointStats is one endpoint's serving telemetry: a request counter and
// a latency histogram (nanoseconds, geometric buckets).
type endpointStats struct {
	requests atomic.Int64
	latency  *obs.Histogram
}

// telemetry is the server's distributional observability surface, next to
// the monotone counters: per-endpoint latency histograms, pivots-per-solve
// and per-stage solve-time histograms, and the trace ring buffer behind
// GET /v1/trace. All recording paths are atomic-only.
type telemetry struct {
	endpoints map[string]*endpointStats
	pivots    *obs.Histogram            // pivots per completed solve
	stages    map[string]*obs.Histogram // per-stage solver wall clock, ns
	recorder  *obs.Recorder
}

func newTelemetry(traceBuffer int) *telemetry {
	t := &telemetry{
		endpoints: make(map[string]*endpointStats, len(endpointNames)),
		pivots:    obs.NewCountHistogram(),
		stages:    make(map[string]*obs.Histogram, len(stageNames)),
		recorder:  obs.NewRecorder(traceBuffer),
	}
	for _, name := range endpointNames {
		t.endpoints[name] = &endpointStats{latency: obs.NewLatencyHistogram()}
	}
	for _, name := range stageNames {
		t.stages[name] = obs.NewLatencyHistogram()
	}
	return t
}

// endpointOf maps a request path onto its telemetry key.
func endpointOf(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/optimize":
		return "optimize"
	case p == "/v1/sweep":
		return "sweep"
	case strings.HasPrefix(p, "/v1/models"):
		if strings.HasSuffix(p, "/observe") {
			return "observe"
		}
		return "models"
	case p == "/v1/solves" || strings.HasPrefix(p, "/v1/solves/"):
		return "solves"
	case p == "/v1/healthz":
		return "healthz"
	case p == "/v1/stats":
		return "stats"
	case p == "/metrics":
		return "metrics"
	case p == "/v1/trace":
		return "trace"
	}
	return "other"
}

// recorded reports whether an endpoint's traces are retained in the ring
// buffer. Solver-facing endpoints are; the monitoring plane (stats,
// metrics, trace, healthz) is traced for latency but not retained, so a
// scraper polling /metrics cannot evict the traces worth inspecting.
func recorded(endpoint string) bool {
	switch endpoint {
	case "stats", "metrics", "trace", "healthz", "solves":
		return false
	}
	return true
}

// recordSolve folds one completed solve's work distribution into the
// histograms: pivot count and the per-stage wall-clock breakdown. Safe on
// partial results (a cancelled solve still reports the pivots it spent).
func (t *telemetry) recordSolve(res *core.Result) {
	if res == nil {
		return
	}
	t.pivots.Observe(float64(res.LPIterations))
	tm := res.LPTimings
	if tm.Total() == 0 {
		return
	}
	t.stages["ftran"].ObserveDuration(tm.Ftran)
	t.stages["btran"].ObserveDuration(tm.Btran)
	t.stages["price"].ObserveDuration(tm.Price)
	t.stages["factor"].ObserveDuration(tm.Factor)
	t.stages["update"].ObserveDuration(tm.Update)
}

// latencySummaryMS renders a nanosecond histogram as the millisecond
// quantile summary served on /v1/stats.
func latencySummaryMS(h *obs.Histogram) map[string]any {
	s := h.Snapshot()
	toMS := func(v float64) float64 { return v / 1e6 }
	return map[string]any{
		"count":   s.Count,
		"mean_ms": toMS(safeMean(s)),
		"p50_ms":  toMS(s.Quantile(0.50)),
		"p90_ms":  toMS(s.Quantile(0.90)),
		"p99_ms":  toMS(s.Quantile(0.99)),
	}
}

// countSummary renders a unitless histogram (pivot counts) for /v1/stats.
func countSummary(h *obs.Histogram) map[string]any {
	s := h.Snapshot()
	return map[string]any{
		"count": s.Count,
		"mean":  safeMean(s),
		"p50":   s.Quantile(0.50),
		"p90":   s.Quantile(0.90),
		"p99":   s.Quantile(0.99),
	}
}

func safeMean(s obs.HistogramSnapshot) float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// statsEndpoints is the "endpoints" section of /v1/stats.
func (t *telemetry) statsEndpoints() map[string]any {
	out := make(map[string]any, len(endpointNames))
	for _, name := range endpointNames {
		es := t.endpoints[name]
		if es.requests.Load() == 0 {
			continue
		}
		out[name] = map[string]any{
			"requests": es.requests.Load(),
			"latency":  latencySummaryMS(es.latency),
		}
	}
	return out
}

// statsSolve is the "solve" section of /v1/stats.
func (t *telemetry) statsSolve() map[string]any {
	stages := make(map[string]any, len(stageNames))
	for _, name := range stageNames {
		stages[name] = latencySummaryMS(t.stages[name])
	}
	return map[string]any{
		"pivots": countSummary(t.pivots),
		"stages": stages,
	}
}
