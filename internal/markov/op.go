package markov

// The operator interface and the iterative (matrix-free) solver paths.
//
// A Chain consumes its transition matrix only through Op: one distribution
// step (MulVecT), one successor sample (RowSample), and the dimensions. Any
// structure that can do those — an explicit CSR, a lazy Kronecker product
// (mat.KronOp), or the composed system operator core builds from SP×SR×queue
// factors — is a chain, and the iterative algorithms below evaluate
// stationary distributions, discounted values and discounted occupancies
// against it without ever materializing Π-sized joint nonzeros, at
// O(cost(MulVecT)) per iteration and O(n) extra memory.
//
// The direct dense-LU solves in markov.go remain the small-n path (below
// DirectLimit) and the parity oracle the iterative paths are tested against.

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Op is the minimal transition-operator contract a Chain needs: dimensions,
// one distribution step, and one successor sample. Implementations must be
// row-stochastic linear operators over states 0..Rows()-1.
//
// Implemented by *mat.CSR, *mat.KronOp, and core's composed system
// operators.
type Op interface {
	// Rows and Cols return the (square) operator dimensions.
	Rows() int
	Cols() int
	// MulVecT returns dist·P — the distribution after one step.
	MulVecT(dist mat.Vector) mat.Vector
	// RowSample draws a successor of state i using uniforms from u.
	RowSample(i int, u func() float64) int
}

// ValueOp is implemented by operators that can also apply P·v (column
// vectors) — required by the iterative DiscountedValue path.
type ValueOp interface {
	Op
	MulVec(v mat.Vector) mat.Vector
}

// mulVecTIntoOp and mulVecIntoOp are optional allocation-free fast paths the
// iterative loops prefer when available.
type mulVecTIntoOp interface{ MulVecTInto(dst, x mat.Vector) }
type mulVecIntoOp interface{ MulVecInto(dst, x mat.Vector) }

var (
	// DirectLimit is the state-count threshold below which Stationary,
	// DiscountedValue and DiscountedOccupancy use the direct dense-LU solve
	// on an explicit CSR chain; above it (or on a matrix-free chain) they
	// take the iterative path with the default tolerances. Exported so tests
	// can force either path.
	DirectLimit = 2048

	// DenseLimit is the state-count threshold above which P() refuses to
	// materialize a dense |S|² view (see P).
	DenseLimit = 4096
)

// Defaults for the iterative paths; the explicit *Iter entry points accept
// zero to mean these.
const (
	// DefaultIterTol is the default convergence tolerance: L1 change per
	// sweep for StationaryIter, the sup-norm error bound for
	// DiscountedValueIter, and the L1 tail mass for DiscountedOccupancyIter.
	DefaultIterTol = 1e-12
	// DefaultMaxIter caps the iteration count of every iterative path.
	DefaultMaxIter = 200000
)

// stepT applies one distribution step dst = x·P, using the allocation-free
// fast path when the operator has one.
func stepT(op Op, dst, x mat.Vector) mat.Vector {
	if fast, ok := op.(mulVecTIntoOp); ok {
		fast.MulVecTInto(dst, x)
		return dst
	}
	return op.MulVecT(x)
}

// stepV applies dst = P·v likewise.
func stepV(op ValueOp, dst, v mat.Vector) mat.Vector {
	if fast, ok := op.(mulVecIntoOp); ok {
		fast.MulVecInto(dst, v)
		return dst
	}
	return op.MulVec(v)
}

// NewOp wraps a transition operator in a Chain. An explicit *mat.CSR is
// validated row-stochastic (within tol; 0 means the default) and retains the
// direct solve paths; any other operator is validated by applying it to the
// all-ones vector when it implements ValueOp (P·1 = 1 for a stochastic
// matrix), and uses the iterative paths exclusively.
func NewOp(op Op, tol float64) (*Chain, error) {
	if csr, ok := op.(*mat.CSR); ok {
		return NewCSR(csr, tol)
	}
	if op.Rows() != op.Cols() {
		return nil, fmt.Errorf("markov: transition operator is %dx%d, want square", op.Rows(), op.Cols())
	}
	if tol <= 0 {
		tol = mat.DefaultTol
	}
	if vop, ok := op.(ValueOp); ok {
		n := op.Rows()
		ones := mat.NewVector(n)
		for i := range ones {
			ones[i] = 1
		}
		r := vop.MulVec(ones)
		for i, v := range r {
			if math.Abs(v-1) > tol*float64(n+1) {
				return nil, fmt.Errorf("markov: operator row %d sums to %g, want 1", i, v)
			}
		}
	}
	return &Chain{op: op}, nil
}

// iterParams resolves the (tol, maxIter) pair, zero meaning the default.
func iterParams(tol float64, maxIter int) (float64, int) {
	if tol <= 0 {
		tol = DefaultIterTol
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	return tol, maxIter
}

// geomIters estimates the iteration count a geometric-rate-α scheme needs to
// push its error below tol, ⌈log(tol)/log(α)⌉, saturating at MaxInt for
// α → 1.
func geomIters(alpha, tol float64) int {
	if alpha <= 0 {
		return 1
	}
	t := math.Log(tol) / math.Log(alpha)
	if t < 1 {
		return 1
	}
	if t > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(t) + 1
}

// StationaryIter computes a stationary distribution by damped power
// iteration: π ← ½π + ½πP. The ½ damping maps every eigenvalue λ of P to
// (1+λ)/2, killing periodic oscillation (λ = −1) while fixing exactly the
// stationary distributions (λ = 1), so the iteration converges for every
// finite chain with a unique stationary distribution. Convergence is
// declared when the L1 change per sweep drops below tol; zero tol/maxIter
// mean the defaults. Cost: one MulVecT per iteration, O(n) extra memory.
func (c *Chain) StationaryIter(tol float64, maxIter int) (mat.Vector, error) {
	n := c.N()
	if n == 0 {
		return nil, fmt.Errorf("markov: empty chain")
	}
	tol, maxIter = iterParams(tol, maxIter)
	pi := mat.NewVector(n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	buf := mat.NewVector(n)
	for it := 0; it < maxIter; it++ {
		next := stepT(c.op, buf, pi)
		// Damped update and L1 drift in one pass; renormalize to absorb
		// roundoff mass leakage.
		diff, sum := 0.0, 0.0
		for i := range next {
			v := 0.5*pi[i] + 0.5*next[i]
			diff += math.Abs(v - pi[i])
			pi[i] = v
			sum += v
		}
		if sum != 0 && math.Abs(sum-1) > 1e-15 {
			pi.Scale(1 / sum)
		}
		if diff <= tol {
			for i, v := range pi {
				if v < 0 && v > -1e-10 {
					pi[i] = 0
				}
			}
			return pi, nil
		}
	}
	return nil, fmt.Errorf("markov: stationary iteration did not converge within %d sweeps (last tol target %g); raise maxIter or use a chain below DirectLimit", maxIter, tol)
}

// DiscountedValueIter computes v = Σ_{t≥0} αᵗ Pᵗ cost by the fixed-point
// iteration v ← cost + αPv, which contracts at rate α in the sup norm;
// iteration stops when the a-posteriori error bound α/(1−α)·‖v_{t+1}−v_t‖∞
// drops below tol. It requires the chain's operator to implement ValueOp
// (P·v). Zero tol/maxIter mean the defaults; an α too close to 1 for the
// budget returns an error up front rather than spinning.
func (c *Chain) DiscountedValueIter(cost mat.Vector, alpha, tol float64, maxIter int) (mat.Vector, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("markov: discount factor %g outside [0,1)", alpha)
	}
	if len(cost) != c.N() {
		return nil, fmt.Errorf("markov: cost vector length %d, want %d", len(cost), c.N())
	}
	vop, ok := c.op.(ValueOp)
	if !ok {
		return nil, fmt.Errorf("markov: operator %T cannot apply P·v; DiscountedValue needs a ValueOp", c.op)
	}
	tol, maxIter = iterParams(tol, maxIter)
	if need := geomIters(alpha, tol*(1-alpha)); need > maxIter {
		return nil, fmt.Errorf("markov: discounted value iteration at α=%g needs ≈%d sweeps for tol %g, over the %d cap; raise maxIter or use the direct path", alpha, need, tol, maxIter)
	}
	n := c.N()
	v := cost.Clone()
	buf := mat.NewVector(n)
	for it := 0; it < maxIter; it++ {
		pv := stepV(vop, buf, v)
		diff := 0.0
		for i := range pv {
			nv := cost[i] + alpha*pv[i]
			if d := math.Abs(nv - v[i]); d > diff {
				diff = d
			}
			v[i] = nv
		}
		if alpha/(1-alpha)*diff <= tol {
			return v, nil
		}
	}
	return nil, fmt.Errorf("markov: discounted value iteration did not converge within %d sweeps", maxIter)
}

// DiscountedOccupancyIter computes y = (1−α) Σ_{t≥0} αᵗ q0 Pᵗ by forward
// accumulation of the geometric series. The truncation error after T terms
// is exactly bounded in L1 by α^{T+1}·‖q0‖1, so the loop runs the a-priori
// ⌈log(tol)/log(α)⌉ sweeps (capped by maxIter, erroring up front when the
// budget cannot reach tol). Zero tol/maxIter mean the defaults.
func (c *Chain) DiscountedOccupancyIter(q0 mat.Vector, alpha, tol float64, maxIter int) (mat.Vector, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("markov: discount factor %g outside [0,1)", alpha)
	}
	if len(q0) != c.N() {
		return nil, fmt.Errorf("markov: initial distribution length %d, want %d", len(q0), c.N())
	}
	tol, maxIter = iterParams(tol, maxIter)
	need := geomIters(alpha, tol)
	if need > maxIter {
		return nil, fmt.Errorf("markov: discounted occupancy at α=%g needs ≈%d sweeps for tol %g, over the %d cap; raise maxIter or use the direct path", alpha, need, tol, maxIter)
	}
	n := c.N()
	y := q0.Clone().Scale(1 - alpha)
	z := q0.Clone()
	buf := mat.NewVector(n)
	w := (1 - alpha) * alpha
	for t := 1; t <= need; t++ {
		next := stepT(c.op, buf, z)
		copy(z, next)
		y.AddScaled(w, z)
		w *= alpha
	}
	for i, v := range y {
		if v < 0 && v > -1e-10 {
			y[i] = 0
		}
	}
	return y, nil
}
