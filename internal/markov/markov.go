// Package markov implements the discrete-time Markov-chain machinery that
// the DPM stochastic model of Benini et al. is built on: state-distribution
// evolution, stationary distributions, discounted total costs (the value
// vectors of Appendix A), discounted occupancy measures (state frequencies),
// and expected hitting times (used to verify device models against
// data-sheet transition times, Table I).
//
// Chains consume their transition structure through the Op interface (one
// distribution step, one successor sample — see op.go), so a chain can be an
// explicit CSR matrix or a matrix-free operator such as a lazy Kronecker
// product. Explicit chains are stored in compressed-sparse-row form
// (internal/mat's CSR): composed DPM chains are extremely sparse — the queue
// law of Eq. 3 is banded and the component chains have tiny out-degrees — so
// distribution steps and hitting-time assembly run in O(nnz). The direct
// solves behind Stationary, DiscountedValue and DiscountedOccupancy assemble
// their n×n linear systems straight from the sparse form (no dense
// transition matrix, transpose, or clone is ever materialized) and hand them
// to the dense LU — one dense system per query, the same "dense
// factorization of only the system that needs it" discipline the revised
// simplex uses for its basis. Chains above DirectLimit states, and all
// matrix-free chains, answer the same queries iteratively (op.go) at one
// operator application per sweep.
package markov

import (
	"fmt"
	"sync"

	"repro/internal/mat"
)

// Chain is a stationary discrete-time Markov chain over states 0..N-1. Its
// transition structure is consumed through the Op interface; chains built
// from an explicit matrix (New/NewCSR) additionally keep the CSR form, which
// enables the direct dense-LU solve paths and the dense P() view. Chains
// wrapped around a matrix-free operator (NewOp) use the iterative paths
// exclusively.
type Chain struct {
	op        Op
	p         *mat.CSR // nil for matrix-free chains
	denseOnce sync.Once
	dense     *mat.Matrix // lazily cached dense view for P()
}

// New validates that p is square and row-stochastic (within tol; pass 0 for
// the default) and wraps it in a Chain, compressing it to sparse form.
// The matrix is not copied for the dense view; callers must not mutate it
// afterwards.
func New(p *mat.Matrix, tol float64) (*Chain, error) {
	if p.Rows != p.Cols {
		return nil, fmt.Errorf("markov: transition matrix is %dx%d, want square", p.Rows, p.Cols)
	}
	if err := p.CheckStochastic(tol); err != nil {
		return nil, fmt.Errorf("markov: %w", err)
	}
	csr := mat.FromDense(p)
	return &Chain{op: csr, p: csr, dense: p}, nil
}

// NewCSR validates that p is square and row-stochastic on its sparse form
// (within tol; pass 0 for the default) and wraps it in a Chain without ever
// densifying. The matrix is not copied; callers must not mutate it.
func NewCSR(p *mat.CSR, tol float64) (*Chain, error) {
	if p.Rows() != p.Cols() {
		return nil, fmt.Errorf("markov: transition matrix is %dx%d, want square", p.Rows(), p.Cols())
	}
	if err := p.CheckStochastic(tol); err != nil {
		return nil, fmt.Errorf("markov: %w", err)
	}
	return &Chain{op: p, p: p}, nil
}

// MustNew is New but panics on error; for use with matrices constructed by
// code that guarantees stochasticity.
func MustNew(p *mat.Matrix, tol float64) *Chain {
	c, err := New(p, tol)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of states.
func (c *Chain) N() int { return c.op.Rows() }

// P returns the transition matrix as a dense view, materializing (and
// caching) it on first use; the once-guard keeps a read-only Chain safe to
// share across goroutines. Callers must not mutate the result; sparse-aware
// callers should prefer Sparse or Op.
//
// Materializing a dense |S|² view of a large chain is never what a caller
// wants — on a 10⁴-state composite it would allocate ~800 MB to answer
// queries the CSR/operator form answers in O(nnz) — so P panics when it
// would materialize a view above DenseLimit states, and on matrix-free
// chains (which have no matrix to densify at any size).
func (c *Chain) P() *mat.Matrix {
	c.denseOnce.Do(func() {
		if c.dense == nil {
			if c.p == nil {
				panic(fmt.Sprintf("markov: P() on a matrix-free chain (%T); use Op or the iterative queries", c.op))
			}
			if n := c.N(); n > DenseLimit {
				panic(fmt.Sprintf("markov: P() would materialize a dense %d×%d view (limit %d); use Sparse or Op", n, n, DenseLimit))
			}
			c.dense = c.p.Dense()
		}
	})
	return c.dense
}

// Sparse returns the CSR transition matrix, or nil for a matrix-free chain.
// Callers must not mutate it.
func (c *Chain) Sparse() *mat.CSR { return c.p }

// Op returns the chain's transition operator.
func (c *Chain) Op() Op { return c.op }

// Step returns the distribution after one step: dist * P, at one operator
// application (O(nnz) for explicit chains, the factored sweep cost for lazy
// ones).
func (c *Chain) Step(dist mat.Vector) mat.Vector {
	return c.op.MulVecT(dist)
}

// Evolve returns the distribution after k steps.
func (c *Chain) Evolve(dist mat.Vector, k int) mat.Vector {
	d := dist.Clone()
	for i := 0; i < k; i++ {
		d = c.Step(d)
	}
	return d
}

// Stationary returns a stationary distribution π with π = πP and Σπ = 1.
// Explicit chains below DirectLimit states solve the balance equations
// directly (one dense LU, one balance row replaced by normalization); larger
// or matrix-free chains take StationaryIter with the default tolerance.
// For an irreducible chain this is the unique stationary distribution; for
// a reducible chain the direct path returns one stationary distribution (or
// ErrSingular if the replacement system happens to be singular).
func (c *Chain) Stationary() (mat.Vector, error) {
	if c.p == nil || c.N() > DirectLimit {
		return c.StationaryIter(0, 0)
	}
	return c.stationaryDirect()
}

// stationaryDirect is the dense-LU small-n path (and the parity oracle for
// StationaryIter).
func (c *Chain) stationaryDirect() (mat.Vector, error) {
	n := c.N()
	if n == 0 {
		return nil, fmt.Errorf("markov: empty chain")
	}
	// Assemble A = Pᵀ - I directly from the sparse rows (scattering entry
	// (i,j) to position (j,i)), then overwrite the last row with 1s
	// (normalization).
	a := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cols, vals := c.p.RowNZ(i)
		for k, j := range cols {
			a.Add(j, i, vals[k])
		}
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, -1)
	}
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := mat.NewVector(n)
	b[n-1] = 1
	pi, err := mat.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: stationary solve: %w", err)
	}
	// Clean tiny negatives from roundoff.
	for i, v := range pi {
		if v < 0 && v > -1e-10 {
			pi[i] = 0
		}
	}
	return pi, nil
}

// DiscountedValue returns v = Σ_{t≥0} αᵗ Pᵗ cost, the total expected
// discounted cost from each starting state. Explicit chains below
// DirectLimit states solve (I − αP) v = cost directly; larger or matrix-free
// chains take DiscountedValueIter with the default tolerance — unless α is
// so close to 1 that the iteration cannot reach tolerance within the default
// cap, in which case an explicit chain falls back to the direct solve (slow
// but exact) rather than failing.
// This is the value vector of the optimality equations in Appendix A.
// It requires 0 <= α < 1.
func (c *Chain) DiscountedValue(cost mat.Vector, alpha float64) (mat.Vector, error) {
	if c.p == nil || c.N() > DirectLimit {
		stiff := geomIters(alpha, DefaultIterTol*(1-alpha)) > DefaultMaxIter
		if c.p == nil || !stiff {
			return c.DiscountedValueIter(cost, alpha, 0, 0)
		}
	}
	return c.discountedValueDirect(cost, alpha)
}

// discountedValueDirect is the dense-LU path (and the iterative parity
// oracle).
func (c *Chain) discountedValueDirect(cost mat.Vector, alpha float64) (mat.Vector, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("markov: discount factor %g outside [0,1)", alpha)
	}
	if len(cost) != c.N() {
		return nil, fmt.Errorf("markov: cost vector length %d, want %d", len(cost), c.N())
	}
	n := c.N()
	a := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cols, vals := c.p.RowNZ(i)
		row := a.Row(i)
		for k, j := range cols {
			row[j] = -alpha * vals[k]
		}
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, 1)
	}
	v, err := mat.Solve(a, cost)
	if err != nil {
		return nil, fmt.Errorf("markov: discounted value solve: %w", err)
	}
	return v, nil
}

// DiscountedOccupancy returns the normalized discounted occupancy measure
//
//	y = (1−α) Σ_{t≥0} αᵗ q0 Pᵗ,
//
// i.e. y_j is the discounted fraction of time spent in state j starting from
// distribution q0. It solves (I − αPᵀ) yᵀ = (1−α) q0ᵀ, with the system
// assembled straight from the sparse form. Σy = 1 whenever Σq0 = 1. These
// are the (scaled) state frequencies of LP2.
//
// Explicit chains below DirectLimit states solve directly; larger or
// matrix-free chains take DiscountedOccupancyIter with the default
// tolerance, except that an explicit chain whose α is too stiff for the
// default iteration budget falls back to the direct solve.
func (c *Chain) DiscountedOccupancy(q0 mat.Vector, alpha float64) (mat.Vector, error) {
	if c.p == nil || c.N() > DirectLimit {
		stiff := geomIters(alpha, DefaultIterTol) > DefaultMaxIter
		if c.p == nil || !stiff {
			return c.DiscountedOccupancyIter(q0, alpha, 0, 0)
		}
	}
	return c.discountedOccupancyDirect(q0, alpha)
}

// discountedOccupancyDirect is the dense-LU path (and the iterative parity
// oracle).
func (c *Chain) discountedOccupancyDirect(q0 mat.Vector, alpha float64) (mat.Vector, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("markov: discount factor %g outside [0,1)", alpha)
	}
	if len(q0) != c.N() {
		return nil, fmt.Errorf("markov: initial distribution length %d, want %d", len(q0), c.N())
	}
	n := c.N()
	a := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cols, vals := c.p.RowNZ(i)
		for k, j := range cols {
			a.Add(j, i, -alpha*vals[k])
		}
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, 1)
	}
	rhs := q0.Clone().Scale(1 - alpha)
	y, err := mat.Solve(a, rhs)
	if err != nil {
		return nil, fmt.Errorf("markov: occupancy solve: %w", err)
	}
	for i, v := range y {
		if v < 0 && v > -1e-10 {
			y[i] = 0
		}
	}
	return y, nil
}

// ExpectedHittingTimes returns h where h_i is the expected number of steps
// to first reach any state in targets, starting from state i (h_i = 0 for
// targets). It solves h_i = 1 + Σ_j P_ij h_j over non-target states,
// assembled in O(nnz). An error is returned if some state cannot reach the
// target set (the linear system is then singular or produces non-finite
// values). It requires an explicit (CSR-backed) chain.
func (c *Chain) ExpectedHittingTimes(targets map[int]bool) (mat.Vector, error) {
	if c.p == nil {
		return nil, fmt.Errorf("markov: hitting times need an explicit chain, not %T", c.op)
	}
	n := c.N()
	var free []int // non-target states, in order
	idx := make([]int, n)
	for i := range idx {
		idx[i] = -1
	}
	for i := 0; i < n; i++ {
		if !targets[i] {
			idx[i] = len(free)
			free = append(free, i)
		}
	}
	h := mat.NewVector(n)
	if len(free) == 0 {
		return h, nil
	}
	m := len(free)
	a := mat.NewMatrix(m, m)
	b := mat.NewVector(m)
	for r, i := range free {
		b[r] = 1
		cols, vals := c.p.RowNZ(i)
		for k, j := range cols {
			if kk := idx[j]; kk >= 0 {
				a.Add(r, kk, -vals[k])
			}
		}
		a.Add(r, r, 1)
	}
	sol, err := mat.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: hitting-time solve (target unreachable?): %w", err)
	}
	for r, i := range free {
		if sol[r] < 0 {
			return nil, fmt.Errorf("markov: negative hitting time %g for state %d", sol[r], i)
		}
		h[i] = sol[r]
	}
	return h, nil
}

// GeometricMeanTime returns the expected number of slices for a transition
// governed by a geometric distribution with per-slice success probability p
// (paper Eq. 2: E[T] = 1/p). It panics if p is outside (0, 1].
func GeometricMeanTime(p float64) float64 {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("markov: geometric probability %g outside (0,1]", p))
	}
	return 1 / p
}
