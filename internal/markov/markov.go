// Package markov implements the discrete-time Markov-chain machinery that
// the DPM stochastic model of Benini et al. is built on: state-distribution
// evolution, stationary distributions, discounted total costs (the value
// vectors of Appendix A), discounted occupancy measures (state frequencies),
// and expected hitting times (used to verify device models against
// data-sheet transition times, Table I).
//
// Chains are stored in compressed-sparse-row form (internal/mat's CSR):
// composed DPM chains are extremely sparse — the queue law of Eq. 3 is
// banded and the component chains have tiny out-degrees — so distribution
// steps and hitting-time assembly run in O(nnz). The direct solves behind
// Stationary, DiscountedValue and DiscountedOccupancy assemble their n×n
// linear systems straight from the sparse form (no dense transition matrix,
// transpose, or clone is ever materialized) and hand them to the dense LU —
// one dense system per query, the same "dense factorization of only the
// system that needs it" discipline the revised simplex uses for its basis.
package markov

import (
	"fmt"
	"sync"

	"repro/internal/mat"
)

// Chain is a stationary discrete-time Markov chain over states 0..N-1.
type Chain struct {
	p         *mat.CSR
	denseOnce sync.Once
	dense     *mat.Matrix // lazily cached dense view for P()
}

// New validates that p is square and row-stochastic (within tol; pass 0 for
// the default) and wraps it in a Chain, compressing it to sparse form.
// The matrix is not copied for the dense view; callers must not mutate it
// afterwards.
func New(p *mat.Matrix, tol float64) (*Chain, error) {
	if p.Rows != p.Cols {
		return nil, fmt.Errorf("markov: transition matrix is %dx%d, want square", p.Rows, p.Cols)
	}
	if err := p.CheckStochastic(tol); err != nil {
		return nil, fmt.Errorf("markov: %w", err)
	}
	return &Chain{p: mat.FromDense(p), dense: p}, nil
}

// NewCSR validates that p is square and row-stochastic on its sparse form
// (within tol; pass 0 for the default) and wraps it in a Chain without ever
// densifying. The matrix is not copied; callers must not mutate it.
func NewCSR(p *mat.CSR, tol float64) (*Chain, error) {
	if p.Rows() != p.Cols() {
		return nil, fmt.Errorf("markov: transition matrix is %dx%d, want square", p.Rows(), p.Cols())
	}
	if err := p.CheckStochastic(tol); err != nil {
		return nil, fmt.Errorf("markov: %w", err)
	}
	return &Chain{p: p}, nil
}

// MustNew is New but panics on error; for use with matrices constructed by
// code that guarantees stochasticity.
func MustNew(p *mat.Matrix, tol float64) *Chain {
	c, err := New(p, tol)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of states.
func (c *Chain) N() int { return c.p.Rows() }

// P returns the transition matrix as a dense view, materializing (and
// caching) it on first use; the once-guard keeps a read-only Chain safe to
// share across goroutines. Callers must not mutate the result; sparse-aware
// callers should prefer Sparse.
func (c *Chain) P() *mat.Matrix {
	c.denseOnce.Do(func() {
		if c.dense == nil {
			c.dense = c.p.Dense()
		}
	})
	return c.dense
}

// Sparse returns the CSR transition matrix. Callers must not mutate it.
func (c *Chain) Sparse() *mat.CSR { return c.p }

// Step returns the distribution after one step: dist * P, in O(nnz).
func (c *Chain) Step(dist mat.Vector) mat.Vector {
	return c.p.VecMul(dist)
}

// Evolve returns the distribution after k steps.
func (c *Chain) Evolve(dist mat.Vector, k int) mat.Vector {
	d := dist.Clone()
	for i := 0; i < k; i++ {
		d = c.Step(d)
	}
	return d
}

// Stationary returns a stationary distribution π with π = πP and Σπ = 1,
// computed by replacing one balance equation with the normalization row.
// For an irreducible chain this is the unique stationary distribution; for
// a reducible chain it returns one stationary distribution (or ErrSingular
// from the solver if the replacement system happens to be singular).
func (c *Chain) Stationary() (mat.Vector, error) {
	n := c.N()
	if n == 0 {
		return nil, fmt.Errorf("markov: empty chain")
	}
	// Assemble A = Pᵀ - I directly from the sparse rows (scattering entry
	// (i,j) to position (j,i)), then overwrite the last row with 1s
	// (normalization).
	a := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cols, vals := c.p.RowNZ(i)
		for k, j := range cols {
			a.Add(j, i, vals[k])
		}
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, -1)
	}
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := mat.NewVector(n)
	b[n-1] = 1
	pi, err := mat.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: stationary solve: %w", err)
	}
	// Clean tiny negatives from roundoff.
	for i, v := range pi {
		if v < 0 && v > -1e-10 {
			pi[i] = 0
		}
	}
	return pi, nil
}

// DiscountedValue returns v = Σ_{t≥0} αᵗ Pᵗ cost, the total expected
// discounted cost from each starting state, by solving (I − αP) v = cost,
// with the system assembled straight from the sparse form.
// This is the value vector of the optimality equations in Appendix A.
// It requires 0 <= α < 1.
func (c *Chain) DiscountedValue(cost mat.Vector, alpha float64) (mat.Vector, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("markov: discount factor %g outside [0,1)", alpha)
	}
	if len(cost) != c.N() {
		return nil, fmt.Errorf("markov: cost vector length %d, want %d", len(cost), c.N())
	}
	n := c.N()
	a := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cols, vals := c.p.RowNZ(i)
		row := a.Row(i)
		for k, j := range cols {
			row[j] = -alpha * vals[k]
		}
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, 1)
	}
	v, err := mat.Solve(a, cost)
	if err != nil {
		return nil, fmt.Errorf("markov: discounted value solve: %w", err)
	}
	return v, nil
}

// DiscountedOccupancy returns the normalized discounted occupancy measure
//
//	y = (1−α) Σ_{t≥0} αᵗ q0 Pᵗ,
//
// i.e. y_j is the discounted fraction of time spent in state j starting from
// distribution q0. It solves (I − αPᵀ) yᵀ = (1−α) q0ᵀ, with the system
// assembled straight from the sparse form. Σy = 1 whenever Σq0 = 1. These
// are the (scaled) state frequencies of LP2.
func (c *Chain) DiscountedOccupancy(q0 mat.Vector, alpha float64) (mat.Vector, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("markov: discount factor %g outside [0,1)", alpha)
	}
	if len(q0) != c.N() {
		return nil, fmt.Errorf("markov: initial distribution length %d, want %d", len(q0), c.N())
	}
	n := c.N()
	a := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cols, vals := c.p.RowNZ(i)
		for k, j := range cols {
			a.Add(j, i, -alpha*vals[k])
		}
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, 1)
	}
	rhs := q0.Clone().Scale(1 - alpha)
	y, err := mat.Solve(a, rhs)
	if err != nil {
		return nil, fmt.Errorf("markov: occupancy solve: %w", err)
	}
	for i, v := range y {
		if v < 0 && v > -1e-10 {
			y[i] = 0
		}
	}
	return y, nil
}

// ExpectedHittingTimes returns h where h_i is the expected number of steps
// to first reach any state in targets, starting from state i (h_i = 0 for
// targets). It solves h_i = 1 + Σ_j P_ij h_j over non-target states,
// assembled in O(nnz). An error is returned if some state cannot reach the
// target set (the linear system is then singular or produces non-finite
// values).
func (c *Chain) ExpectedHittingTimes(targets map[int]bool) (mat.Vector, error) {
	n := c.N()
	var free []int // non-target states, in order
	idx := make([]int, n)
	for i := range idx {
		idx[i] = -1
	}
	for i := 0; i < n; i++ {
		if !targets[i] {
			idx[i] = len(free)
			free = append(free, i)
		}
	}
	h := mat.NewVector(n)
	if len(free) == 0 {
		return h, nil
	}
	m := len(free)
	a := mat.NewMatrix(m, m)
	b := mat.NewVector(m)
	for r, i := range free {
		b[r] = 1
		cols, vals := c.p.RowNZ(i)
		for k, j := range cols {
			if kk := idx[j]; kk >= 0 {
				a.Add(r, kk, -vals[k])
			}
		}
		a.Add(r, r, 1)
	}
	sol, err := mat.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: hitting-time solve (target unreachable?): %w", err)
	}
	for r, i := range free {
		if sol[r] < 0 {
			return nil, fmt.Errorf("markov: negative hitting time %g for state %d", sol[r], i)
		}
		h[i] = sol[r]
	}
	return h, nil
}

// GeometricMeanTime returns the expected number of slices for a transition
// governed by a geometric distribution with per-slice success probability p
// (paper Eq. 2: E[T] = 1/p). It panics if p is outside (0, 1].
func GeometricMeanTime(p float64) float64 {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("markov: geometric probability %g outside (0,1]", p))
	}
	return 1 / p
}
