package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// twoState is the bursty SR of paper Example 3.2: P(1→1)=0.85, P(1→0)=0.15.
func twoState() *Chain {
	p := mat.FromRows([][]float64{
		{0.90, 0.10},
		{0.15, 0.85},
	})
	return MustNew(p, 0)
}

func randomChain(r *rand.Rand, n int) *Chain {
	p := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		row := p.Row(i)
		sum := 0.0
		for j := range row {
			row[j] = r.Float64() + 1e-3
			sum += row[j]
		}
		row.Scale(1 / sum)
	}
	return MustNew(p, 1e-9)
}

func TestNewRejectsBadMatrices(t *testing.T) {
	if _, err := New(mat.NewMatrix(2, 3), 0); err == nil {
		t.Errorf("non-square accepted")
	}
	bad := mat.FromRows([][]float64{{0.5, 0.4}, {1, 0}})
	if _, err := New(bad, 0); err == nil {
		t.Errorf("non-stochastic accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustNew did not panic on bad input")
		}
	}()
	MustNew(mat.FromRows([][]float64{{0.3, 0.3}}), 0)
}

func TestStepAndEvolve(t *testing.T) {
	c := twoState()
	d0 := mat.Vector{1, 0}
	d1 := c.Step(d0)
	if math.Abs(d1[0]-0.90) > 1e-15 || math.Abs(d1[1]-0.10) > 1e-15 {
		t.Errorf("Step = %v", d1)
	}
	d2 := c.Evolve(d0, 2)
	want := c.Step(d1)
	if d2.MaxAbsDiff(want) > 1e-15 {
		t.Errorf("Evolve(2) = %v, want %v", d2, want)
	}
	// Evolve must not mutate the input.
	if d0[0] != 1 || d0[1] != 0 {
		t.Errorf("Evolve mutated input: %v", d0)
	}
}

func TestStationaryTwoState(t *testing.T) {
	c := twoState()
	pi, err := c.Stationary()
	if err != nil {
		t.Fatalf("Stationary: %v", err)
	}
	// For flip probs a=0.10 (0→1) and b=0.15 (1→0): π = (b, a)/(a+b).
	want := mat.Vector{0.15 / 0.25, 0.10 / 0.25}
	if pi.MaxAbsDiff(want) > 1e-12 {
		t.Errorf("Stationary = %v, want %v", pi, want)
	}
	// Fixed point check.
	if c.Step(pi).MaxAbsDiff(pi) > 1e-12 {
		t.Errorf("stationary distribution is not a fixed point")
	}
}

func TestStationaryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomChain(r, 2+r.Intn(8))
		pi, err := c.Stationary()
		if err != nil {
			return false
		}
		if !pi.IsDistribution(1e-8) {
			return false
		}
		return c.Step(pi).MaxAbsDiff(pi) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDiscountedValueMatchesSeries(t *testing.T) {
	c := twoState()
	cost := mat.Vector{1, 3}
	alpha := 0.9
	v, err := c.DiscountedValue(cost, alpha)
	if err != nil {
		t.Fatalf("DiscountedValue: %v", err)
	}
	// Power-series reference: v ≈ Σ_{t<T} αᵗ Pᵗ c.
	ref := mat.NewVector(2)
	d := mat.Matrix{Rows: 2, Cols: 2, Data: []float64{1, 0, 0, 1}}
	cur := &d
	scale := 1.0
	for step := 0; step < 400; step++ {
		ref.AddScaled(scale, cur.MulVec(cost))
		cur = cur.Mul(c.P())
		scale *= alpha
	}
	if v.MaxAbsDiff(ref) > 1e-8 {
		t.Errorf("DiscountedValue = %v, series %v", v, ref)
	}
}

func TestDiscountedValueValidation(t *testing.T) {
	c := twoState()
	if _, err := c.DiscountedValue(mat.Vector{1, 2}, 1.0); err == nil {
		t.Errorf("alpha=1 accepted")
	}
	if _, err := c.DiscountedValue(mat.Vector{1}, 0.5); err == nil {
		t.Errorf("short cost vector accepted")
	}
}

func TestDiscountedOccupancySums(t *testing.T) {
	c := twoState()
	q0 := mat.Vector{1, 0}
	for _, alpha := range []float64{0, 0.5, 0.99, 0.99999} {
		y, err := c.DiscountedOccupancy(q0, alpha)
		if err != nil {
			t.Fatalf("alpha=%g: %v", alpha, err)
		}
		if math.Abs(y.Sum()-1) > 1e-8 {
			t.Errorf("alpha=%g: occupancy sums to %g", alpha, y.Sum())
		}
	}
	// alpha=0 occupancy is the initial distribution itself.
	y, _ := c.DiscountedOccupancy(q0, 0)
	if y.MaxAbsDiff(q0) > 1e-12 {
		t.Errorf("alpha=0 occupancy = %v, want %v", y, q0)
	}
}

func TestDiscountedOccupancyApproachesStationary(t *testing.T) {
	c := twoState()
	q0 := mat.Vector{1, 0}
	y, err := c.DiscountedOccupancy(q0, 1-1e-9)
	if err != nil {
		t.Fatalf("occupancy: %v", err)
	}
	pi, _ := c.Stationary()
	if y.MaxAbsDiff(pi) > 1e-6 {
		t.Errorf("occupancy at alpha→1 = %v, stationary %v", y, pi)
	}
}

// Property: occupancy-weighted cost equals (1-α)·q0·v where v is the
// discounted value vector — the identity connecting LP2's objective with the
// value formulation.
func TestOccupancyValueDuality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		c := randomChain(r, n)
		alpha := 0.5 + 0.49*r.Float64()
		cost := mat.NewVector(n)
		q0 := mat.NewVector(n)
		for i := range cost {
			cost[i] = r.Float64() * 10
			q0[i] = r.Float64()
		}
		q0.Normalize()
		v, err := c.DiscountedValue(cost, alpha)
		if err != nil {
			return false
		}
		y, err := c.DiscountedOccupancy(q0, alpha)
		if err != nil {
			return false
		}
		lhs := y.Dot(cost)
		rhs := (1 - alpha) * q0.Dot(v)
		return math.Abs(lhs-rhs) < 1e-8*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestExpectedHittingTimesGeometric(t *testing.T) {
	// Single transient state with exit probability p to target: E[T] = 1/p.
	p := 0.1
	m := mat.FromRows([][]float64{
		{1 - p, p},
		{0, 1},
	})
	c := MustNew(m, 0)
	h, err := c.ExpectedHittingTimes(map[int]bool{1: true})
	if err != nil {
		t.Fatalf("ExpectedHittingTimes: %v", err)
	}
	if math.Abs(h[0]-10) > 1e-9 {
		t.Errorf("h[0] = %g, want 10", h[0])
	}
	if h[1] != 0 {
		t.Errorf("h[target] = %g, want 0", h[1])
	}
}

func TestExpectedHittingTimesChain(t *testing.T) {
	// 0 → 1 → 2 deterministic: h = [2, 1, 0].
	m := mat.FromRows([][]float64{
		{0, 1, 0},
		{0, 0, 1},
		{0, 0, 1},
	})
	c := MustNew(m, 0)
	h, err := c.ExpectedHittingTimes(map[int]bool{2: true})
	if err != nil {
		t.Fatalf("ExpectedHittingTimes: %v", err)
	}
	if h.MaxAbsDiff(mat.Vector{2, 1, 0}) > 1e-12 {
		t.Errorf("h = %v, want [2 1 0]", h)
	}
}

func TestExpectedHittingTimesUnreachable(t *testing.T) {
	// State 0 never reaches state 1.
	m := mat.FromRows([][]float64{
		{1, 0},
		{0, 1},
	})
	c := MustNew(m, 0)
	if _, err := c.ExpectedHittingTimes(map[int]bool{1: true}); err == nil {
		t.Errorf("unreachable target did not error")
	}
}

func TestGeometricMeanTime(t *testing.T) {
	if got := GeometricMeanTime(0.25); got != 4 {
		t.Errorf("GeometricMeanTime(0.25) = %g, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("GeometricMeanTime(0) did not panic")
		}
	}()
	GeometricMeanTime(0)
}

func TestAllTargetsHittingTime(t *testing.T) {
	c := twoState()
	h, err := c.ExpectedHittingTimes(map[int]bool{0: true, 1: true})
	if err != nil {
		t.Fatalf("ExpectedHittingTimes: %v", err)
	}
	if h[0] != 0 || h[1] != 0 {
		t.Errorf("h = %v, want zeros", h)
	}
}
