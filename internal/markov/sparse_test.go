package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// sparseBanded builds a banded stochastic CSR chain (each state moves to
// itself or a neighbor), the sparsity shape of the paper's queue law.
func sparseBanded(n int, p float64) *mat.CSR {
	t := mat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		j := i + 1
		if j == n {
			j = 0
		}
		t.Add(i, i, 1-p)
		t.Add(i, j, p)
	}
	return t.ToCSR()
}

func TestNewCSRValidation(t *testing.T) {
	if _, err := NewCSR(mat.NewTriplet(2, 3).ToCSR(), 0); err == nil {
		t.Errorf("non-square CSR accepted")
	}
	bad := mat.NewTriplet(2, 2)
	bad.Add(0, 0, 0.5)
	bad.Add(0, 1, 0.4)
	bad.Add(1, 0, 1)
	if _, err := NewCSR(bad.ToCSR(), 0); err == nil {
		t.Errorf("non-stochastic CSR accepted")
	}
	c, err := NewCSR(sparseBanded(5, 0.3), 0)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	if c.N() != 5 || c.Sparse().NNZ() != 10 {
		t.Errorf("chain shape wrong: N=%d nnz=%d", c.N(), c.Sparse().NNZ())
	}
}

// TestSparseDenseChainAgreement: a chain built through NewCSR and the same
// chain built through New (dense) agree on every query.
func TestSparseDenseChainAgreement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		d := mat.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			row := d.Row(i)
			// Sparse rows: 1-3 nonzeros each.
			k := 1 + r.Intn(3)
			sum := 0.0
			for t := 0; t < k; t++ {
				j := r.Intn(n)
				row[j] += r.Float64() + 1e-3
			}
			for _, v := range row {
				sum += v
			}
			row.Scale(1 / sum)
		}
		dense := MustNew(d, 1e-9)
		sparse, err := NewCSR(mat.FromDense(d), 1e-9)
		if err != nil {
			return false
		}
		dist := mat.NewVector(n)
		dist[r.Intn(n)] = 1
		if sparse.Step(dist).MaxAbsDiff(dense.Step(dist)) > 1e-12 {
			return false
		}
		if sparse.Evolve(dist, 3).MaxAbsDiff(dense.Evolve(dist, 3)) > 1e-12 {
			return false
		}
		alpha := 0.5 + 0.49*r.Float64()
		cost := mat.NewVector(n)
		for i := range cost {
			cost[i] = r.Float64() * 10
		}
		vs, err1 := sparse.DiscountedValue(cost, alpha)
		vd, err2 := dense.DiscountedValue(cost, alpha)
		if err1 != nil || err2 != nil || vs.MaxAbsDiff(vd) > 1e-9 {
			return false
		}
		ys, err1 := sparse.DiscountedOccupancy(dist, alpha)
		yd, err2 := dense.DiscountedOccupancy(dist, alpha)
		if err1 != nil || err2 != nil || ys.MaxAbsDiff(yd) > 1e-9 {
			return false
		}
		ps, err1 := sparse.Stationary()
		pd, err2 := dense.Stationary()
		if err1 != nil || err2 != nil {
			// Reducible random chains may be singular either way; accept only
			// symmetric failure.
			return (err1 != nil) == (err2 != nil)
		}
		// Both must be genuine fixed points (they may differ on reducible
		// chains with several stationary distributions).
		return sparse.Step(ps).MaxAbsDiff(ps) < 1e-8 && dense.Step(pd).MaxAbsDiff(pd) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSparseChainHittingTimes(t *testing.T) {
	// Banded ring with p=0.25: expected time to reach the next state is 4,
	// so state n−2 reaches n−1 in 4 steps, n−3 in 8, etc.
	n := 6
	c, err := NewCSR(sparseBanded(n, 0.25), 0)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	h, err := c.ExpectedHittingTimes(map[int]bool{n - 1: true})
	if err != nil {
		t.Fatalf("ExpectedHittingTimes: %v", err)
	}
	for i := 0; i < n-1; i++ {
		want := 4 * float64(n-1-i)
		if math.Abs(h[i]-want) > 1e-9 {
			t.Errorf("h[%d] = %g, want %g", i, h[i], want)
		}
	}
}

func TestChainDenseViewCached(t *testing.T) {
	c, err := NewCSR(sparseBanded(4, 0.5), 0)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	p1, p2 := c.P(), c.P()
	if p1 != p2 {
		t.Errorf("dense view not cached")
	}
	if p1.MaxAbsDiff(c.Sparse().Dense()) != 0 {
		t.Errorf("dense view differs from sparse content")
	}
}

func TestStationarySparseBig(t *testing.T) {
	// A 200-state banded chain: the sparse path must handle it exactly; the
	// uniform distribution is stationary for the symmetric ring.
	n := 200
	c, err := NewCSR(sparseBanded(n, 0.3), 0)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	pi, err := c.Stationary()
	if err != nil {
		t.Fatalf("Stationary: %v", err)
	}
	for i, v := range pi {
		if math.Abs(v-1/float64(n)) > 1e-9 {
			t.Fatalf("pi[%d] = %g, want uniform %g", i, v, 1/float64(n))
		}
	}
}
