package markov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// randChain returns a well-connected random stochastic chain: every row
// mixes a random sparse row with a small uniform component, so the chain is
// irreducible and aperiodic and both solve paths are well-posed.
func randChain(t *testing.T, rng *rand.Rand, n int) *Chain {
	t.Helper()
	m := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		d := 1 + rng.Intn(3)
		sum := 0.0
		for k := 0; k < d; k++ {
			row[rng.Intn(n)] += rng.Float64() + 0.05
		}
		for _, v := range row {
			sum += v
		}
		for j := range row {
			row[j] = 0.9*row[j]/sum + 0.1/float64(n)
		}
	}
	c, err := New(m, 1e-9)
	if err != nil {
		t.Fatalf("randChain: %v", err)
	}
	return c
}

func maxAbsDiff(a, b mat.Vector) float64 {
	d := 0.0
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

// TestStationaryIterMatchesDirect: damped power iteration agrees with the
// dense-LU balance solve to 1e-8 on seeded random chains.
func TestStationaryIterMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		c := randChain(t, rng, 2+rng.Intn(40))
		direct, err := c.stationaryDirect()
		if err != nil {
			t.Fatalf("direct: %v", err)
		}
		iter, err := c.StationaryIter(0, 0)
		if err != nil {
			t.Fatalf("iterative: %v", err)
		}
		if d := maxAbsDiff(direct, iter); d > 1e-8 {
			t.Fatalf("trial %d: stationary paths differ by %g", trial, d)
		}
	}
}

// TestStationaryIterPeriodicChain: the ½ damping handles the 2-cycle, whose
// undamped power iteration oscillates forever.
func TestStationaryIterPeriodicChain(t *testing.T) {
	m := mat.NewMatrix(2, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	c := MustNew(m, 0)
	pi, err := c.StationaryIter(0, 0)
	if err != nil {
		t.Fatalf("StationaryIter: %v", err)
	}
	if math.Abs(pi[0]-0.5) > 1e-9 || math.Abs(pi[1]-0.5) > 1e-9 {
		t.Fatalf("periodic chain stationary = %v, want [0.5 0.5]", pi)
	}
}

// TestDiscountedValueIterMatchesDirect to 1e-8 across random chains and
// discount factors.
func TestDiscountedValueIterMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(30)
		c := randChain(t, rng, n)
		cost := mat.NewVector(n)
		for i := range cost {
			cost[i] = rng.NormFloat64()
		}
		alpha := 0.5 + 0.45*rng.Float64()
		direct, err := c.discountedValueDirect(cost, alpha)
		if err != nil {
			t.Fatalf("direct: %v", err)
		}
		iter, err := c.DiscountedValueIter(cost, alpha, 1e-10, 0)
		if err != nil {
			t.Fatalf("iterative: %v", err)
		}
		if d := maxAbsDiff(direct, iter); d > 1e-8 {
			t.Fatalf("trial %d (α=%g): value paths differ by %g", trial, alpha, d)
		}
	}
}

// TestDiscountedOccupancyIterMatchesDirect to 1e-8, including Σy = 1.
func TestDiscountedOccupancyIterMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(30)
		c := randChain(t, rng, n)
		q0 := mat.NewVector(n)
		for i := range q0 {
			q0[i] = rng.Float64()
		}
		q0.Normalize()
		alpha := 0.5 + 0.45*rng.Float64()
		direct, err := c.discountedOccupancyDirect(q0, alpha)
		if err != nil {
			t.Fatalf("direct: %v", err)
		}
		iter, err := c.DiscountedOccupancyIter(q0, alpha, 1e-10, 0)
		if err != nil {
			t.Fatalf("iterative: %v", err)
		}
		if d := maxAbsDiff(direct, iter); d > 1e-8 {
			t.Fatalf("trial %d (α=%g): occupancy paths differ by %g", trial, alpha, d)
		}
		if s := iter.Sum(); math.Abs(s-1) > 1e-8 {
			t.Fatalf("trial %d: iterative occupancy sums to %g", trial, s)
		}
	}
}

// TestDispatchThreshold: above DirectLimit the default entry points route to
// the iterative path and still agree with the direct oracle.
func TestDispatchThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	c := randChain(t, rng, 12)
	old := DirectLimit
	DirectLimit = 4 // force the iterative path through the public API
	defer func() { DirectLimit = old }()

	direct, err := c.stationaryDirect()
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	pi, err := c.Stationary()
	if err != nil {
		t.Fatalf("Stationary: %v", err)
	}
	if d := maxAbsDiff(direct, pi); d > 1e-8 {
		t.Fatalf("dispatched stationary differs by %g", d)
	}

	q0 := mat.NewVector(c.N())
	q0[0] = 1
	wantOcc, err := c.discountedOccupancyDirect(q0, 0.9)
	if err != nil {
		t.Fatalf("direct occupancy: %v", err)
	}
	occ, err := c.DiscountedOccupancy(q0, 0.9)
	if err != nil {
		t.Fatalf("DiscountedOccupancy: %v", err)
	}
	if d := maxAbsDiff(wantOcc, occ); d > 1e-8 {
		t.Fatalf("dispatched occupancy differs by %g", d)
	}

	// A discount too stiff for the iteration budget falls back to the
	// direct solve on explicit chains rather than erroring.
	stiffAlpha := 1 - 1e-9
	v, err := c.DiscountedValue(q0, stiffAlpha)
	if err != nil {
		t.Fatalf("stiff DiscountedValue: %v", err)
	}
	wantV, err := c.discountedValueDirect(q0, stiffAlpha)
	if err != nil {
		t.Fatalf("direct stiff value: %v", err)
	}
	if d := maxAbsDiff(wantV, v); d > 1e-6*(1/(1-stiffAlpha)) {
		t.Fatalf("stiff value fallback differs by %g", d)
	}
}

// TestNewOpMatrixFree: a Chain over a lazy Kronecker operator answers the
// iterative queries without any expanded CSR, matching the expanded chain.
func TestNewOpMatrixFree(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	mkFactor := func(n int) *mat.CSR {
		d := mat.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			row := d.Row(i)
			for j := range row {
				row[j] = rng.Float64() + 0.05
			}
			mat.Vector(row).Normalize()
		}
		return mat.FromDense(d)
	}
	a, b := mkFactor(4), mkFactor(3)
	lazy, err := NewOp(mat.NewKronOp(a, b), 0)
	if err != nil {
		t.Fatalf("NewOp: %v", err)
	}
	if lazy.Sparse() != nil {
		t.Fatalf("matrix-free chain exposes a CSR")
	}
	expanded, err := NewCSR(mat.KronAll(a, b), 0)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}

	piLazy, err := lazy.Stationary()
	if err != nil {
		t.Fatalf("lazy stationary: %v", err)
	}
	piExp, err := expanded.stationaryDirect()
	if err != nil {
		t.Fatalf("expanded stationary: %v", err)
	}
	if d := maxAbsDiff(piLazy, piExp); d > 1e-8 {
		t.Fatalf("lazy vs expanded stationary differ by %g", d)
	}

	n := lazy.N()
	cost := mat.NewVector(n)
	for i := range cost {
		cost[i] = rng.NormFloat64()
	}
	vLazy, err := lazy.DiscountedValue(cost, 0.9)
	if err != nil {
		t.Fatalf("lazy value: %v", err)
	}
	vExp, err := expanded.discountedValueDirect(cost, 0.9)
	if err != nil {
		t.Fatalf("expanded value: %v", err)
	}
	if d := maxAbsDiff(vLazy, vExp); d > 1e-8 {
		t.Fatalf("lazy vs expanded value differ by %g", d)
	}

	// Hitting times genuinely need the matrix; the matrix-free chain says so.
	if _, err := lazy.ExpectedHittingTimes(map[int]bool{0: true}); err == nil {
		t.Fatalf("matrix-free hitting times did not error")
	}
}

// TestPDenseLimit: the dense view materializes only below DenseLimit.
func TestPDenseLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	old := DenseLimit
	DenseLimit = 8
	defer func() { DenseLimit = old }()

	small := randChain(t, rng, 4)
	if p := small.P(); p.Rows != 4 {
		t.Fatalf("small dense view is %dx%d", p.Rows, p.Cols)
	}

	big := randChain(t, rng, 12)
	// New() was given the dense matrix, so the cached view is returned even
	// above the limit — only *materialization* is refused.
	if p := big.P(); p.Rows != 12 {
		t.Fatalf("pre-existing dense view is %dx%d", p.Rows, p.Cols)
	}

	csrBig, err := NewCSR(big.Sparse(), 0)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("P() above DenseLimit did not panic")
			}
		}()
		csrBig.P()
	}()
}
