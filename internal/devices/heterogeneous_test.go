package devices

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lp"
)

func TestNICSP(t *testing.T) {
	nic := NICSP("nic")
	if err := nic.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	run := nic.CommandIndex("run")
	// Data-sheet shape: doze wakes in ~2 slices, off in ~25.
	if et, err := nic.ExpectedTransitionTime(1, 0, run); err != nil || math.Abs(et-2) > 1e-9 {
		t.Errorf("doze wake time %g (%v), want 2", et, err)
	}
	if et, err := nic.ExpectedTransitionTime(2, 0, run); err != nil || math.Abs(et-25) > 1e-9 {
		t.Errorf("off wake time %g (%v), want 25", et, err)
	}
}

func TestCPUWakeSP(t *testing.T) {
	sp := CPUWakeSP()
	if err := sp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Commanded wake: sleep reaches active under run in two slices
	// (sleep → t_up → active), where CPUSP's sleep is absorbing.
	if et, err := sp.ExpectedTransitionTime(CPUSleep, CPUActive, CPURun); err != nil || math.Abs(et-2) > 1e-9 {
		t.Errorf("commanded wake time %g (%v), want 2", et, err)
	}
	if _, err := CPUSP().ExpectedTransitionTime(CPUSleep, CPUActive, CPURun); err == nil {
		t.Errorf("CPUSP sleep should be absorbing under run (wake is the system's job)")
	}
}

// TestHeterogeneousSystemMasking: the preset's joint command space is the
// single-command-bus mask over the (subset-restricted) part commands.
func TestHeterogeneousSystemMasking(t *testing.T) {
	sr := core.TwoStateSR("w", 0.05, 0.2)
	for _, tc := range []struct {
		k, wantA, wantSPStates int
	}{
		// k=3: disk(2c) cpu(2c) nic(3c): A = 1 + 1+1+2 = 5.
		{3, 5, 3 * 4 * 3},
		// k=5: + disk(2c) + nic restricted to {run,off}: A = 5 + 1 + 1 = 7.
		{5, 7, 3 * 4 * 3 * 3 * 3},
	} {
		sys, err := HeterogeneousSystem(tc.k, 1, sr)
		if err != nil {
			t.Fatalf("k=%d: %v", tc.k, err)
		}
		sp := sys.SP.(*core.FactoredSP)
		if sp.N() != tc.wantSPStates || sp.A() != tc.wantA {
			t.Errorf("k=%d: joint SP is %d states × %d commands, want %d×%d",
				tc.k, sp.N(), sp.A(), tc.wantSPStates, tc.wantA)
		}
		for a := 0; a < sp.A(); a++ {
			moved := 0
			for _, c := range sp.PartCommands(a) {
				if c != 0 {
					moved++
				}
			}
			if moved > 1 {
				t.Errorf("k=%d: joint command %q retargets %d parts", tc.k, sp.CommandNames()[a], moved)
			}
		}
		if tc.k == 5 {
			// The secondary NIC (part 4) must never be commanded to doze.
			doze := NICSP("nic").CommandIndex("doze")
			for a := 0; a < sp.A(); a++ {
				if sp.PartCommands(a)[4] == doze {
					t.Errorf("secondary NIC commanded to doze by %q", sp.CommandNames()[a])
				}
			}
		}
	}
	if _, err := HeterogeneousSystem(2, 1, sr); err == nil {
		t.Errorf("k=2 accepted")
	}
}

// TestHeterogeneousSolveSmall: the k=3 preset solves an optimize query end
// to end and the optimal policy beats all-on power.
func TestHeterogeneousSolveSmall(t *testing.T) {
	sys, err := HeterogeneousSystem(3, 2, core.TwoStateSR("w", 0.05, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Optimize(m, core.Options{
		Alpha:          core.HorizonToAlpha(1e5),
		Initial:        core.Delta(m.N, 0),
		Objective:      core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds:         []core.Bound{{Metric: core.MetricPenalty, Rel: lp.LE, Value: 1.5}},
		SkipEvaluation: true,
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	allOn := 2.5 + 0.3 + 1.4 // disk active + cpu active + nic on
	if res.Objective <= 0 || res.Objective >= allOn {
		t.Errorf("optimal power %g outside (0, %g)", res.Objective, allOn)
	}
	if res.LPIterations <= 0 || res.LPRefactorizations <= 0 {
		t.Errorf("work counters not plumbed: %d pivots, %d refactorizations",
			res.LPIterations, res.LPRefactorizations)
	}
}

// TestMultiDiskScaled: MultiDiskSystem builds (factored, full command
// space) at the k=4–6 scale the dense enumeration could not reach.
func TestMultiDiskScaled(t *testing.T) {
	sr := core.TwoStateSR("w", 0.05, 0.2)
	for _, k := range []int{4, 6} {
		sys, err := MultiDiskSystem(k, 1, sr)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		m, err := sys.Build()
		if err != nil {
			t.Fatalf("k=%d: Build: %v", k, err)
		}
		wantN := 1
		for i := 0; i < k; i++ {
			wantN *= 3
		}
		wantN *= 2 * 2 // SR × queue
		if m.N != wantN || m.A != 1<<k {
			t.Errorf("k=%d: model %d×%d, want %d×%d", k, m.N, m.A, wantN, 1<<k)
		}
		for a := 0; a < m.A; a++ {
			if err := m.P[a].CheckStochastic(1e-9); err != nil {
				t.Fatalf("k=%d command %d: %v", k, a, err)
			}
		}
	}
}
