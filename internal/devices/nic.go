package devices

import (
	"repro/internal/core"
	"repro/internal/mat"
)

// NICSP builds a three-state network interface (on / doze / off, commands
// run / doze / off) in the mold of the power-managed WLAN and Ethernet
// controllers of the heterogeneous-platform literature (Mandal et al.,
// PAPERS.md): a shallow doze state that wakes in about two slices and saves
// most of the idle power, and a deep off state that is an order of magnitude
// cheaper again but takes tens of slices to bring back up. Service (packet
// transmission) happens only while on.
//
// Like MiniDiskSP it is deliberately small — three states, three commands —
// because its purpose is composition: heterogeneous device networks built
// with core.Composite multiply the component sizes into the joint state
// space and the component command counts into the joint command space.
func NICSP(name string) *core.ServiceProvider {
	const (
		on   = 0
		doze = 1
		off  = 2
	)
	return &core.ServiceProvider{
		Name:     name,
		States:   []string{"on", "doze", "off"},
		Commands: []string{"run", "doze", "off"},
		P: []*mat.Matrix{
			// run: doze wakes fast (expected 2 slices), off wakes slowly
			// (expected 25 slices).
			mat.FromRows([][]float64{
				{1, 0, 0},
				{0.5, 0.5, 0},
				{0.04, 0, 0.96},
			}),
			// doze: on drops to doze immediately, off must wake first.
			mat.FromRows([][]float64{
				{0, 1, 0},
				{0, 1, 0},
				{0.04, 0, 0.96},
			}),
			// off: the radio shuts down through doze.
			mat.FromRows([][]float64{
				{0, 1, 0},
				{0, 0, 1},
				{0, 0, 1},
			}),
		},
		ServiceRate: mat.FromRows([][]float64{
			{0.7, 0, 0},
			{0, 0, 0},
			{0, 0, 0},
		}),
		Power: mat.FromRows([][]float64{
			{1.4, 1.4, 1.4},
			{0.4, 0.4, 0.4},
			{0.04, 0.04, 0.04},
		}),
	}
}
