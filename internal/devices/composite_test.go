package devices

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mat"
)

// singleProcessor builds the per-processor SP of the web-server study:
// states {off, on}, commands {off, on}; turn-on completes with probability
// 0.5 per slice, shut-down within the slice; power follows Section VI-B's
// active / active±0.5 W scheme.
func singleProcessor(name string, activePower float64) *core.ServiceProvider {
	return &core.ServiceProvider{
		Name:     name,
		States:   []string{"off", "on"},
		Commands: []string{"off", "on"},
		P: []*mat.Matrix{
			mat.FromRows([][]float64{{1, 0}, {1, 0}}),     // command off
			mat.FromRows([][]float64{{0.5, 0.5}, {0, 1}}), // command on
		},
		ServiceRate: mat.FromRows([][]float64{{0, 0}, {0, 0}}), // combiner overrides
		Power: mat.FromRows([][]float64{
			{0, activePower + 0.5},           // off: staying off / turning on
			{activePower - 0.5, activePower}, // on: shutting down / staying on
		}),
	}
}

// TestCompositeReconstructsWebServer: the generic multi-provider
// composition (Section VII extension) applied to two single-processor
// models must reproduce the hand-built web-server SP exactly — transition
// matrices, powers and throughputs.
func TestCompositeReconstructsWebServer(t *testing.T) {
	throughput := [4]float64{0, 0.4, 0.6, 1.0}
	composite, err := core.CompositeSP("web-composite",
		[]*core.ServiceProvider{singleProcessor("p1", 1), singleProcessor("p2", 2)},
		func(states, cmds []int) float64 {
			return throughput[states[1]<<1|states[0]]
		})
	if err != nil {
		t.Fatalf("CompositeSP: %v", err)
	}
	hand := WebServerSP()

	if composite.N() != hand.N() || composite.A() != hand.A() {
		t.Fatalf("composite is %d×%d, hand-built %d×%d", composite.N(), composite.A(), hand.N(), hand.A())
	}
	for c := 0; c < hand.A(); c++ {
		if d := composite.P[c].MaxAbsDiff(hand.P[c]); d > 1e-12 {
			t.Errorf("command %d transition matrices differ by %g:\ncomposite\n%vhand\n%v",
				c, d, composite.P[c], hand.P[c])
		}
	}
	if d := composite.Power.MaxAbsDiff(hand.Power); d > 1e-12 {
		t.Errorf("power tables differ by %g:\ncomposite\n%vhand\n%v", d, composite.Power, hand.Power)
	}
	if d := composite.ServiceRate.MaxAbsDiff(hand.ServiceRate); d > 1e-12 {
		t.Errorf("service-rate tables differ by %g", d)
	}
}

func TestCompositeValidation(t *testing.T) {
	if _, err := core.CompositeSP("x", nil, func([]int, []int) float64 { return 0 }); err == nil {
		t.Errorf("empty part list accepted")
	}
	if _, err := core.CompositeSP("x", []*core.ServiceProvider{singleProcessor("p", 1)}, nil); err == nil {
		t.Errorf("nil combiner accepted")
	}
	if _, err := core.CompositeSP("x", []*core.ServiceProvider{singleProcessor("p", 1)},
		func([]int, []int) float64 { return 2 }); err == nil {
		t.Errorf("out-of-range service rate accepted")
	}
	bad := singleProcessor("bad", 1)
	bad.P[0].Set(0, 0, 0.5)
	if _, err := core.CompositeSP("x", []*core.ServiceProvider{bad},
		func([]int, []int) float64 { return 0 }); err == nil {
		t.Errorf("invalid part accepted")
	}
}

// randomTinySP builds a small random valid provider for property tests.
func randomTinySP(r *rand.Rand, name string) *core.ServiceProvider {
	n := 1 + r.Intn(3)
	a := 1 + r.Intn(2)
	states := make([]string, n)
	for i := range states {
		states[i] = string(rune('a' + i))
	}
	cmds := make([]string, a)
	for i := range cmds {
		cmds[i] = string(rune('A' + i))
	}
	ps := make([]*mat.Matrix, a)
	for c := range ps {
		p := mat.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			row := p.Row(i)
			sum := 0.0
			for j := range row {
				row[j] = r.Float64() + 1e-6
				sum += row[j]
			}
			row.Scale(1 / sum)
		}
		ps[c] = p
	}
	rate := mat.NewMatrix(n, a)
	power := mat.NewMatrix(n, a)
	for i := range power.Data {
		power.Data[i] = r.Float64() * 3
	}
	return &core.ServiceProvider{Name: name, States: states, Commands: cmds, P: ps, ServiceRate: rate, Power: power}
}

// Property: composites of random parts are valid, have product dimensions,
// and their power tables are sums of the part powers.
func TestCompositeProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(3)
		parts := make([]*core.ServiceProvider, k)
		wantN, wantA := 1, 1
		for i := range parts {
			parts[i] = randomTinySP(r, string(rune('p'+i)))
			wantN *= parts[i].N()
			wantA *= parts[i].A()
		}
		c, err := core.CompositeSP("rand", parts, func([]int, []int) float64 { return 0.5 })
		if err != nil {
			return false
		}
		if c.N() != wantN || c.A() != wantA {
			return false
		}
		if c.Validate() != nil {
			return false
		}
		// Spot-check power additivity at a random joint (state, command).
		s, cmd := r.Intn(wantN), r.Intn(wantA)
		sum := 0.0
		si, ci := s, cmd
		for _, p := range parts {
			sum += p.Power.At(si%p.N(), ci%p.A())
			si /= p.N()
			ci /= p.A()
		}
		return mat.Vector{c.Power.At(s, cmd)}.MaxAbsDiff(mat.Vector{sum}) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
