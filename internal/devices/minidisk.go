package devices

import (
	"repro/internal/core"
	"repro/internal/mat"
)

// MiniDiskSP builds a reduced three-state disk (active / idle / sleep, with
// commands run / sleep) for composition studies: it keeps the Travelstar
// model's qualitative shape — geometric wake-up, deep sleep an order of
// magnitude cheaper than active, service only while active and commanded to
// run — at a size where products of several disks stay enumerable. The
// full 11-state Table-I model is DiskSP; this one exists for multi-device
// `CompositeSP` networks (paper Section VII), where the joint state space
// grows as the product of the component sizes.
func MiniDiskSP(name string) *core.ServiceProvider {
	const (
		active = 0
		idle   = 1
		sleep  = 2
	)
	return &core.ServiceProvider{
		Name:     name,
		States:   []string{"active", "idle", "sleep"},
		Commands: []string{"run", "sleep"},
		P: []*mat.Matrix{
			// run: idle wakes in one slice, sleep wakes geometrically
			// (expected 20 slices).
			mat.FromRows([][]float64{
				{1, 0, 0},
				{1, 0, 0},
				{0.05, 0, 0.95},
			}),
			// sleep: active spins down geometrically (expected 2 slices),
			// idle drops immediately, sleep stays.
			mat.FromRows([][]float64{
				{0.1, 0, 0.9},
				{0, 0, 1},
				{0, 0, 1},
			}),
		},
		ServiceRate: mat.FromRows([][]float64{
			{0.5, 0},
			{0, 0},
			{0, 0},
		}),
		Power: mat.FromRows([][]float64{
			{2.5, 2.5},
			{1.0, 1.0},
			{0.1, 0.1},
		}),
	}
}

// MultiDiskSystem composes k mini-disks into one power-managed system with
// a shared request queue of the given capacity: the Section VII
// "network of interacting service providers" scenario. The joint service
// rate saturates like parallel servers — each active disk independently
// completes a request with its own rate, and the queue drains at most one
// request per slice, so b_joint = 1 − Π(1 − b_i).
//
// The joint SP is compiled with core.Composite (Kronecker-factored CSR
// chains, on-demand rate/power), so scaling k from the original 3 disks to
// 4–6 costs sparse assembly instead of dense enumeration: at k=6 the dense
// form would be 64 matrices of 729² entries, while the factored build's
// footprint stays proportional to the chains' nonzeros. The full 2^k joint
// command space is kept — masking policies belong to HeterogeneousSystem —
// so LP *solves* still grow with k·2^k columns; build never does.
func MultiDiskSystem(k, queueCap int, sr *core.ServiceRequester) (*core.System, error) {
	parts := make([]*core.ServiceProvider, k)
	for i := range parts {
		parts[i] = MiniDiskSP("disk")
	}
	sp, err := (&core.Composite{
		Name:  "multidisk",
		Parts: parts,
		Rate: func(states, cmds []int) float64 {
			miss := 1.0
			for i := range states {
				miss *= 1 - parts[i].ServiceRate.At(states[i], cmds[i])
			}
			return 1 - miss
		},
		RateTag: "parallel-servers/v1",
	}).Build()
	if err != nil {
		return nil, err
	}
	return &core.System{
		Name:     "multidisk",
		SP:       sp,
		SR:       sr,
		QueueCap: queueCap,
	}, nil
}
