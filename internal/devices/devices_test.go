package devices

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lp"
)

func TestExampleSystemBuilds(t *testing.T) {
	sys := ExampleSystem()
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if m.N != 8 || m.A != 2 {
		t.Errorf("example system is %d states × %d commands, want 8×2", m.N, m.A)
	}
	// Expected wake time 10 slices (Example 3.1).
	et, err := sys.SP.(*core.ServiceProvider).ExpectedTransitionTime(1, 0, CmdOn)
	if err != nil {
		t.Fatalf("ExpectedTransitionTime: %v", err)
	}
	if math.Abs(et-10) > 1e-9 {
		t.Errorf("wake time = %g slices, want 10", et)
	}
}

// TestDiskTableI verifies that the disk model's expected transition times
// to active, with go_active asserted continuously, equal Table I exactly:
// idle 1 ms, LPidle 40 ms, standby 2.2 s, sleep 6.0 s (in 1 ms slices).
func TestDiskTableI(t *testing.T) {
	sp := DiskSP()
	if err := sp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cases := []struct {
		name string
		from int
		want float64
	}{
		{"idle", DiskIdle, diskIdleOutTime},
		{"LPidle", DiskLPIdle, diskLPOutTime},
		{"standby", DiskStandby, diskSBOutTime},
		{"sleep", DiskSleep, diskSLOutTime},
	}
	for _, c := range cases {
		got, err := sp.ExpectedTransitionTime(c.from, DiskActive, DiskGoActive)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("%s → active: %g slices, want %g (Table I)", c.name, got, c.want)
		}
	}
}

func TestDiskPowerTableI(t *testing.T) {
	sp := DiskSP()
	wants := map[int]float64{
		DiskActive:  2.5,
		DiskIdle:    1.0,
		DiskLPIdle:  0.8,
		DiskStandby: 0.3,
		DiskSleep:   0.1,
	}
	for s, w := range wants {
		for cmd := 0; cmd < sp.A(); cmd++ {
			if got := sp.Power.At(s, cmd); got != w {
				t.Errorf("power(%s,%s) = %g, want %g", sp.States[s], sp.Commands[cmd], got, w)
			}
		}
	}
	// Transients draw full active power (the paper's transition-energy
	// encoding).
	for _, s := range []int{DiskTLPIn, DiskTLPOut, DiskTSBIn, DiskTSBOut, DiskTSLIn, DiskTSLOut} {
		if got := sp.Power.At(s, DiskGoActive); got != 2.5 {
			t.Errorf("transient %s power = %g, want 2.5", sp.States[s], got)
		}
	}
}

func TestDiskSystemStateCount(t *testing.T) {
	sys := DiskSystem(core.TwoStateSR("w", 0.1, 0.1))
	if n := sys.NumStates(); n != 66 {
		t.Errorf("disk system has %d states, want 66 (11×2×3, Section VI-A)", n)
	}
	if _, err := sys.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
}

func TestDiskTransientsUncontrollable(t *testing.T) {
	sp := DiskSP()
	for _, s := range []int{DiskTLPIn, DiskTLPOut, DiskTSBIn, DiskTSBOut, DiskTSLIn, DiskTSLOut} {
		row0 := sp.P[0].Row(s)
		for cmd := 1; cmd < sp.A(); cmd++ {
			if sp.P[cmd].Row(s).MaxAbsDiff(row0) != 0 {
				t.Errorf("transient %s responds to command %s", sp.States[s], sp.Commands[cmd])
			}
		}
	}
}

func TestDiskServiceOnlyWhenActive(t *testing.T) {
	sp := DiskSP()
	for s := 0; s < sp.N(); s++ {
		for cmd := 0; cmd < sp.A(); cmd++ {
			b := sp.ServiceRate.At(s, cmd)
			if s == DiskActive && cmd == DiskGoActive {
				if b != DiskServiceRate {
					t.Errorf("active service rate = %g", b)
				}
			} else if b != 0 {
				t.Errorf("service rate (%s,%s) = %g, want 0", sp.States[s], sp.Commands[cmd], b)
			}
		}
	}
}

func TestWebServerStructure(t *testing.T) {
	sp := WebServerSP()
	if err := sp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Throughputs of Section VI-B.
	wantThr := map[int]float64{WebBothOff: 0, WebP1Only: 0.4, WebP2Only: 0.6, WebBothOn: 1.0}
	for s, w := range wantThr {
		if got := sp.ServiceRate.At(s, WebCmdBothOn); got != w {
			t.Errorf("throughput(%s) = %g, want %g", sp.States[s], got, w)
		}
	}
	// Steady-state powers: both on and staying on = 1+2 = 3 W.
	if got := sp.Power.At(WebBothOn, WebCmdBothOn); got != 3 {
		t.Errorf("power(both, both) = %g, want 3", got)
	}
	// Turn-on power: both off, commanded both on = (1+0.5)+(2+0.5) = 4 W.
	if got := sp.Power.At(WebBothOff, WebCmdBothOn); got != 4 {
		t.Errorf("power(off-off → both) = %g, want 4", got)
	}
	// Shut-down power: both on, commanded off = (1−0.5)+(2−0.5) = 2 W.
	if got := sp.Power.At(WebBothOn, WebCmdBothOff); got != 2 {
		t.Errorf("power(both → off) = %g, want 2", got)
	}
	// Off and staying off draws nothing.
	if got := sp.Power.At(WebBothOff, WebCmdBothOff); got != 0 {
		t.Errorf("power(off,off) = %g, want 0", got)
	}
}

func TestWebServerTurnOnTime(t *testing.T) {
	sp := WebServerSP()
	// Expected turn-on of processor 1 from off-off under p1_only: geometric
	// 0.5 → 2 slices (Section VI-B).
	et, err := sp.ExpectedTransitionTime(WebBothOff, WebP1Only, WebCmdP1Only)
	if err != nil {
		t.Fatalf("ExpectedTransitionTime: %v", err)
	}
	if math.Abs(et-2) > 1e-9 {
		t.Errorf("turn-on time = %g slices, want 2", et)
	}
	// Shut-down is single-slice.
	et, err = sp.ExpectedTransitionTime(WebBothOn, WebBothOff, WebCmdBothOff)
	if err != nil {
		t.Fatalf("ExpectedTransitionTime: %v", err)
	}
	if math.Abs(et-1) > 1e-9 {
		t.Errorf("shut-down time = %g slices, want 1", et)
	}
}

func TestWebServerSystemBuilds(t *testing.T) {
	sys := WebServerSystem(core.TwoStateSR("web", 0.2, 0.2))
	if n := sys.NumStates(); n != 8 {
		t.Errorf("web system has %d states, want 8 (Section VI-B)", n)
	}
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Penalty and loss are zeroed for this system.
	pen, _ := m.Metric(core.MetricPenalty)
	for i := range pen.Data {
		if pen.Data[i] != 0 {
			t.Fatalf("penalty not zeroed")
		}
	}
}

func TestCPUWakeOnRequest(t *testing.T) {
	sr := core.TwoStateSR("cpu", 0.1, 0.1)
	sys := CPUSystem(sr)
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if m.N != 8 {
		t.Errorf("CPU system has %d states, want 8 (4 SP × 2 SR)", m.N)
	}
	// From (sleep, busy): all mass must leave sleep toward t_up regardless
	// of command.
	from := sys.Index(core.State{SP: CPUSleep, SR: 1, Q: 0})
	for cmd := 0; cmd < 2; cmd++ {
		mass := 0.0
		for j := 0; j < m.N; j++ {
			if sys.StateOf(j).SP == CPUTUp {
				mass += m.P[cmd].At(from, j)
			}
		}
		if math.Abs(mass-1) > 1e-12 {
			t.Errorf("cmd %d: wake mass = %g, want 1", cmd, mass)
		}
	}
	// From (active, busy) with shutdown: command ignored, stays active.
	from = sys.Index(core.State{SP: CPUActive, SR: 1, Q: 0})
	mass := 0.0
	for j := 0; j < m.N; j++ {
		if sys.StateOf(j).SP == CPUActive {
			mass += m.P[CPUShutdown].At(from, j)
		}
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Errorf("shutdown while busy: active mass = %g, want 1", mass)
	}
	// From (active, idle) with shutdown: transition begins.
	from = sys.Index(core.State{SP: CPUActive, SR: 0, Q: 0})
	mass = 0.0
	for j := 0; j < m.N; j++ {
		if sys.StateOf(j).SP == CPUTDown {
			mass += m.P[CPUShutdown].At(from, j)
		}
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Errorf("shutdown while idle: t_down mass = %g, want 1", mass)
	}
}

func TestCPUPenaltyMetric(t *testing.T) {
	sr := core.TwoStateSR("cpu", 0.1, 0.1)
	sys := CPUSystem(sr)
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	pen, _ := m.Metric(core.MetricPenalty)
	iSleepBusy := sys.Index(core.State{SP: CPUSleep, SR: 1, Q: 0})
	if pen.At(iSleepBusy, 0) != 1 {
		t.Errorf("penalty(sleep,busy) = %g, want 1", pen.At(iSleepBusy, 0))
	}
	iSleepIdle := sys.Index(core.State{SP: CPUSleep, SR: 0, Q: 0})
	if pen.At(iSleepIdle, 0) != 0 {
		t.Errorf("penalty(sleep,idle) = %g, want 0", pen.At(iSleepIdle, 0))
	}
	iActiveBusy := sys.Index(core.State{SP: CPUActive, SR: 1, Q: 0})
	if pen.At(iActiveBusy, 0) != 0 {
		t.Errorf("penalty(active,busy) = %g, want 0", pen.At(iActiveBusy, 0))
	}
}

func TestBaselineStructure(t *testing.T) {
	cfg := DefaultBaseline()
	sys, err := BaselineSystem(cfg)
	if err != nil {
		t.Fatalf("BaselineSystem: %v", err)
	}
	// 2 SP states × 2 SR × 3 queue.
	if n := sys.NumStates(); n != 12 {
		t.Errorf("baseline has %d states, want 12", n)
	}
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if m.A != 2 {
		t.Errorf("baseline has %d commands, want 2", m.A)
	}
	// Power table: active 3, transition 4, sleep 2.
	sp := sys.SP.(*core.ServiceProvider)
	if sp.Power.At(0, 0) != 3 || sp.Power.At(0, 1) != 4 ||
		sp.Power.At(1, 0) != 4 || sp.Power.At(1, 1) != 2 {
		t.Errorf("baseline power table wrong:\n%v", sp.Power)
	}
}

func TestBaselineDeepSleep(t *testing.T) {
	cfg := DefaultBaseline()
	cfg.Sleep = DeepSleepStates()
	sys, err := BaselineSystem(cfg)
	if err != nil {
		t.Fatalf("BaselineSystem: %v", err)
	}
	sp := sys.SP.(*core.ServiceProvider)
	if sp.N() != 5 || sp.A() != 5 {
		t.Fatalf("deep-sleep SP is %d×%d, want 5 states × 5 commands", sp.N(), sp.A())
	}
	// Expected wake times 1/WakeProb (Eq. 2).
	for i, s := range cfg.Sleep {
		et, err := sp.ExpectedTransitionTime(1+i, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if math.Abs(et-1/s.WakeProb) > 1e-6 {
			t.Errorf("%s wake time = %g, want %g", s.Name, et, 1/s.WakeProb)
		}
	}
	// Sleep-to-sleep commands are no-ops.
	if got := sp.P[2].At(1, 1); got != 1 {
		t.Errorf("sleep1 under go_sleep2 moved (p=%g)", got)
	}
}

func TestBaselineValidation(t *testing.T) {
	cfg := DefaultBaseline()
	cfg.Sleep = nil
	if _, err := MultiSleepSP(cfg); err == nil {
		t.Errorf("no sleep states accepted")
	}
	cfg = DefaultBaseline()
	cfg.Sleep[0].WakeProb = 0
	if _, err := MultiSleepSP(cfg); err == nil {
		t.Errorf("zero wake probability accepted")
	}
	cfg = DefaultBaseline()
	cfg.ServiceRate = 2
	if _, err := MultiSleepSP(cfg); err == nil {
		t.Errorf("service rate 2 accepted")
	}
	cfg = DefaultBaseline()
	cfg.SRFlip = 0
	if _, err := BaselineSystem(cfg); err == nil {
		t.Errorf("zero flip probability accepted")
	}
}

// TestDiskOptimizationSmoke runs the full pipeline on the 66-state disk
// system: optimization must succeed, respect the constraint, and beat the
// always-active policy on power.
func TestDiskOptimizationSmoke(t *testing.T) {
	// Sparse bursty workload: short bursts (mean ~3 slices) separated by
	// long gaps (mean 500 slices), so the 0.5/slice service rate keeps up
	// and sleep states can pay off. Always-active gives penalty 0.012 and
	// loss 0.003 here, so the bounds below leave real slack for shutdown.
	sr := core.TwoStateSR("disk-w", 0.002, 0.3)
	sys := DiskSystem(sr)
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := core.Optimize(m, core.Options{
		Alpha:     core.HorizonToAlpha(1e6),
		Initial:   core.Delta(m.N, sys.Index(core.State{SP: DiskActive})),
		Objective: core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds: []core.Bound{
			{Metric: core.MetricPenalty, Rel: lp.LE, Value: 0.3},
			{Metric: core.MetricLoss, Rel: lp.LE, Value: 0.05},
		},
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Objective >= 2.5 {
		t.Errorf("optimal disk power %g does not beat always-active 2.5 W", res.Objective)
	}
	if res.Objective <= 0.1 {
		t.Errorf("optimal disk power %g below deepest sleep power", res.Objective)
	}
	// The disk system is numerically stiff (transition probabilities down
	// to 1/5999 combined with α = 1−10⁻⁶ give both the LP and the
	// evaluation solve condition numbers near 10⁶), so LP-vs-evaluation
	// agreement is limited to ~10⁻³ here; the tight 10⁻⁶ identity is
	// asserted on the well-conditioned example system in internal/core.
	if d := math.Abs(res.Eval.Average(core.MetricPower) - res.Objective); d > 2e-3 {
		t.Errorf("LP/evaluation mismatch: %g", d)
	}
}

// TestCPUOptimizationSmoke checks the CPU pipeline: minimizing power under
// a penalty bound must shut the CPU down some of the time.
func TestCPUOptimizationSmoke(t *testing.T) {
	sr := core.TwoStateSR("cpu-w", 0.02, 0.05)
	sys := CPUSystem(sr)
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := core.Optimize(m, core.Options{
		Alpha:     core.HorizonToAlpha(1e5),
		Initial:   core.Delta(m.N, sys.Index(core.State{SP: CPUActive})),
		Objective: core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds:    []core.Bound{{Metric: core.MetricPenalty, Rel: lp.LE, Value: 0.05}},
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Objective >= 0.3 {
		t.Errorf("optimal CPU power %g does not beat always-active 0.3 W", res.Objective)
	}
	if res.Averages[core.MetricPenalty] > 0.05+1e-6 {
		t.Errorf("penalty %g exceeds bound", res.Averages[core.MetricPenalty])
	}
}

// TestWebServerOptimizationSmoke: min power subject to a throughput floor.
func TestWebServerOptimizationSmoke(t *testing.T) {
	sr := core.TwoStateSR("web-w", 0.3, 0.3)
	sys := WebServerSystem(sr)
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := core.Optimize(m, core.Options{
		Alpha:     core.HorizonToAlpha(86400),
		Initial:   core.Delta(m.N, sys.Index(core.State{SP: WebBothOn})),
		Objective: core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds:    []core.Bound{{Metric: core.MetricService, Rel: lp.GE, Value: 0.5}},
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Averages[core.MetricService] < 0.5-1e-6 {
		t.Errorf("throughput %g below floor", res.Averages[core.MetricService])
	}
	if res.Objective >= 3 {
		t.Errorf("optimal power %g does not beat both-always-on 3 W", res.Objective)
	}
}
