package devices

import (
	"repro/internal/core"
	"repro/internal/mat"
)

// CPU SP states (Section VI-C, ARM SA-1100). The actual processor has
// active/idle/sleep; the paper merges active and idle into one macro state
// (idle transitions are fast and handled greedily below the power manager),
// leaving two logical power states plus the two uninterruptible transitions
// carrying the transition power.
const (
	CPUActive = 0 // running (or shallow-idle), 0.3 W, full performance
	CPUTDown  = 1 // shutting down (100 ms, 0.3 W)
	CPUSleep  = 2 // sleep, 0 W, no performance
	CPUTUp    = 3 // waking up (100 ms, 0.9 W)
)

// CPU commands.
const (
	CPURun      = 0
	CPUShutdown = 1
)

// CPUTimeResolution is Δt for the CPU model: 50 ms, so the 100 ms
// transitions take two slices.
const CPUTimeResolution = 0.05 // seconds

// CPUSP builds the SA-1100 service provider: shut-down and turn-on each
// take two 50 ms slices (one hop into the transient, one deterministic hop
// out), drawing 0.3 W and 0.9 W respectively; active draws 0.3 W; sleep
// draws nothing.
//
// Wake-on-request (the CPU reacts to interrupts regardless of the power
// manager) is a property of the composed system, not of the SP alone; see
// CPUSystem.
func CPUSP() *core.ServiceProvider {
	states := []string{"active", "t_down", "sleep", "t_up"}
	cmds := []string{"run", "shutdown"}

	pRun := mat.FromRows([][]float64{
		{1, 0, 0, 0}, // active stays
		{0, 0, 1, 0}, // shutdown completes regardless of command
		{0, 0, 1, 0}, // sleep stays (wake happens via the system coupling)
		{1, 0, 0, 0}, // wake completes
	})
	pShut := mat.FromRows([][]float64{
		{0, 1, 0, 0}, // begin shutdown
		{0, 0, 1, 0},
		{0, 0, 1, 0},
		{1, 0, 0, 0},
	})

	rate := mat.NewMatrix(4, 2)
	// Full performance while active under either command: if the PM issues
	// shutdown while requests are pending, the command is ignored by the
	// coupled dynamics, and service continues.
	rate.Set(CPUActive, CPURun, 1)
	rate.Set(CPUActive, CPUShutdown, 1)

	power := mat.NewMatrix(4, 2)
	for cmd := 0; cmd < 2; cmd++ {
		power.Set(CPUActive, cmd, 0.3)
		power.Set(CPUTDown, cmd, 0.3)
		power.Set(CPUSleep, cmd, 0)
		power.Set(CPUTUp, cmd, 0.9)
	}

	return &core.ServiceProvider{
		Name:        "sa1100",
		States:      states,
		Commands:    cmds,
		P:           []*mat.Matrix{pRun, pShut},
		ServiceRate: rate,
		Power:       power,
	}
}

// CPUWakeSP is the SA-1100 with a *commanded* wake: under run, sleep moves
// into the turn-on transient instead of waiting for an interrupt. CPUSP
// models wake-on-request as a property of the composed system (the SPRow
// hook in CPUSystem reacts to the SR state), but a component inside a
// core.Composite has no such coupling — its dynamics must close under its
// own commands, or sleep would be absorbing and the joint optimizer could
// never use it. This is the CPU component heterogeneous device networks
// compose.
func CPUWakeSP() *core.ServiceProvider {
	sp := CPUSP()
	sp.Name = "sa1100-wake"
	pRun := sp.P[CPURun].Clone()
	pRun.Set(CPUSleep, CPUSleep, 0)
	pRun.Set(CPUSleep, CPUTUp, 1)
	sp.P[CPURun] = pRun
	return sp
}

// CPUSystem composes the SA-1100 with a workload model, implementing the
// paper's coupling: "whenever there are incoming requests the SP is
// insensitive to PM commands, and a turn-on transition is performed
// unconditionally if a new request arrives when the SP is in sleep state".
// Requests are not enqueued (queue capacity 0); the performance penalty is
// 1 exactly when the SR is issuing requests and the CPU is asleep, the
// undesirable condition whose probability the optimization constrains.
func CPUSystem(sr *core.ServiceRequester) *core.System {
	sp := CPUSP()
	wakeRow := mat.Vector{0, 0, 0, 1} // sleep → t_up
	stayRow := mat.Vector{1, 0, 0, 0} // active stays active
	return &core.System{
		Name:     "cpu",
		SP:       sp,
		SR:       sr,
		QueueCap: 0,
		// The hooks below close over nothing beyond the SP/SR data already
		// in the canonical serialization, so a version tag is a complete
		// fingerprint of their semantics.
		HookTag: "cpu-wake-on-request/v1",
		SPRow: func(p, cmd, r int) mat.Vector {
			if sr.Requests[r] == 0 {
				return nil // uncoupled: follow the commanded dynamics
			}
			switch p {
			case CPUSleep:
				return wakeRow
			case CPUActive:
				return stayRow // shutdown ignored while requests arrive
			default:
				return nil // transients complete regardless
			}
		},
		PenaltyFn: func(st core.State, cmd int) float64 {
			if sr.Requests[st.SR] > 0 && st.SP == CPUSleep {
				return 1
			}
			return 0
		},
		// With no queue the default loss indicator would flag every busy
		// slice; the CPU study does not use request loss.
		LossFn: func(core.State, int) float64 { return 0 },
	}
}
