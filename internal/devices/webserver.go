package devices

import (
	"repro/internal/core"
	"repro/internal/mat"
)

// Web-server SP states: bit 0 = processor 1 powered, bit 1 = processor 2
// powered (Section VI-B: two non-identical processors; processor 2 has 1.5×
// the performance and 2× the power of processor 1).
const (
	WebBothOff = 0 // 00
	WebP1Only  = 1 // 01: processor 1 active
	WebP2Only  = 2 // 10: processor 2 active
	WebBothOn  = 3 // 11
)

// Web-server commands select the target configuration; the command index
// equals the target state index.
const (
	WebCmdBothOff = WebBothOff
	WebCmdP1Only  = WebP1Only
	WebCmdP2Only  = WebP2Only
	WebCmdBothOn  = WebBothOn
)

// WebTimeResolution is Δt for the web-server model (Section VI-B: 1 s).
const WebTimeResolution = 1.0 // seconds

// Per-processor parameters from Section VI-B: active powers 1 W and 2 W;
// turn-on transition draws active+0.5 W with expected duration 2 slices;
// shut-down draws active−0.5 W and takes 1 slice.
var (
	webProcPower = [2]float64{1, 2}
	webTurnOnP   = 0.5 // per-slice completion probability → expected 2Δt
)

// webThroughput is the normalized system throughput per configuration:
// both active 1.0, processor 1 alone 0.4, processor 2 alone 0.6, none 0.
var webThroughput = [4]float64{0, 0.4, 0.6, 1.0}

// WebServerSP builds the four-state controlled Markov chain of the
// two-processor web server. Each command names a target configuration;
// each powered-off processor whose target is "on" completes its turn-on
// with probability 0.5 per slice (expected 2 s), and each powered-on
// processor whose target is "off" shuts down within the slice. The joint
// transition probability is the product of the per-processor ones.
//
// Power is additive over processors and depends on (state, command):
// a processor holds its active power when on and staying on, active+0.5 W
// while turning on, active−0.5 W while shutting down, and 0 W when off and
// staying off. Performance is the throughput of the current configuration,
// exposed both as the service rate and as the natural constraint metric.
func WebServerSP() *core.ServiceProvider {
	const n, a = 4, 4
	states := []string{"off-off", "p1", "p2", "p1+p2"}
	cmds := []string{"sleep_both", "p1_only", "p2_only", "both"}

	ps := make([]*mat.Matrix, a)
	power := mat.NewMatrix(n, a)
	rate := mat.NewMatrix(n, a)

	for cmd := 0; cmd < a; cmd++ {
		p := mat.NewMatrix(n, n)
		for s := 0; s < n; s++ {
			// Per-processor next-state distributions.
			var procOn [2][2]float64 // [proc][next 0/1]
			pw := 0.0
			for proc := 0; proc < 2; proc++ {
				on := s>>proc&1 == 1
				wantOn := cmd>>proc&1 == 1
				switch {
				case on && wantOn:
					procOn[proc][1] = 1
					pw += webProcPower[proc]
				case on && !wantOn:
					procOn[proc][0] = 1 // shuts down this slice
					pw += webProcPower[proc] - 0.5
				case !on && wantOn:
					procOn[proc][1] = webTurnOnP
					procOn[proc][0] = 1 - webTurnOnP
					pw += webProcPower[proc] + 0.5
				default:
					procOn[proc][0] = 1
				}
			}
			for n1 := 0; n1 < 2; n1++ {
				for n2 := 0; n2 < 2; n2++ {
					p.Set(s, n2<<1|n1, procOn[0][n1]*procOn[1][n2])
				}
			}
			power.Set(s, cmd, pw)
			rate.Set(s, cmd, webThroughput[s])
		}
		ps[cmd] = p
	}

	return &core.ServiceProvider{
		Name:        "webserver-2p",
		States:      states,
		Commands:    cmds,
		P:           ps,
		ServiceRate: rate,
		Power:       power,
	}
}

// WebMetricThroughput is the demand-gated throughput metric registered by
// WebServerSystem: the configured capacity counts only in slices where the
// requester actually issues work. Constraining this metric (rather than raw
// capacity) makes the optimal policies track the workload — powering down
// in quiet periods is free — which is both the physically meaningful
// reading of the paper's "average performance level representing system
// throughput" and what makes the optimal policies recurrent and hence
// validatable against a trace (Fig. 9(a)'s circles).
const WebMetricThroughput = "throughput"

// WebServerSystem composes the web-server SP with a workload model. The
// paper uses no queue here (4 SP × 2 SR = 8 states): performance is a
// throughput constraint, not queueing delay, so the penalty metric is
// redefined to zero and constraints should use WebMetricThroughput (or
// core.MetricService for raw capacity).
func WebServerSystem(sr *core.ServiceRequester) *core.System {
	return &core.System{
		Name:     "webserver",
		SP:       WebServerSP(),
		SR:       sr,
		QueueCap: 0,
		// The hooks close over the package-constant webThroughput table and
		// the SR (fingerprinted separately), so a version tag covers them.
		HookTag: "webserver-throughput/v1",
		// Throughput is the performance measure; queue-based penalty and
		// loss are meaningless with no queue.
		PenaltyFn: func(core.State, int) float64 { return 0 },
		LossFn:    func(core.State, int) float64 { return 0 },
		ExtraMetrics: map[string]func(core.State, int) float64{
			WebMetricThroughput: func(st core.State, cmd int) float64 {
				if sr.Requests[st.SR] == 0 {
					return 0
				}
				return webThroughput[st.SP]
			},
		},
	}
}
