// Package devices provides the concrete system models used throughout the
// paper: the running two-state example of Sections III–IV (Examples
// 3.1–3.7, A.1, A.2), the Appendix-B baseline system with its parametric
// variants (multiple sleep states, transition speeds, SR burstiness and
// memory, queue lengths), the IBM Travelstar disk drive of Table I /
// Section VI-A, the two-processor web server of Section VI-B, and the
// ARM SA-1100 CPU of Section VI-C.
//
// Numbers that the paper states are used verbatim (Table I transition
// times and powers, processor power ratios, SA-1100 transition costs).
// Parameters the paper does not state (disk spin-down entry times, disk
// service rate) are documented assumptions chosen to be physically
// plausible; DESIGN.md records each.
package devices

import (
	"repro/internal/core"
	"repro/internal/mat"
)

// Example command indices for the two-command providers built here.
const (
	CmdOn  = 0 // "s_on": drive the provider toward its operational state
	CmdOff = 1 // "s_off": drive the provider toward its sleep state
)

// ExampleSP builds the two-state service provider of paper Example 3.1 with
// the cost structure of Example A.2: wake probability 0.1 per slice under
// s_on (expected 10 slices, as the paper computes), sleep probability 0.9
// under s_off, service rate 0.8 when on and commanded on, power 3 W active,
// 0 W asleep, and 4 W while a transition is being forced in either
// direction.
func ExampleSP() *core.ServiceProvider {
	return &core.ServiceProvider{
		Name:     "example-sp",
		States:   []string{"on", "off"},
		Commands: []string{"s_on", "s_off"},
		P: []*mat.Matrix{
			mat.FromRows([][]float64{{1, 0}, {0.1, 0.9}}), // s_on
			mat.FromRows([][]float64{{0.1, 0.9}, {0, 1}}), // s_off
		},
		ServiceRate: mat.FromRows([][]float64{{0.8, 0}, {0, 0}}),
		Power:       mat.FromRows([][]float64{{3, 4}, {4, 0}}),
	}
}

// ExampleSR builds the bursty two-state workload of paper Example 3.2:
// a busy slice stays busy with probability 0.85 (mean burst 1/0.15 ≈ 6.67
// slices); an idle slice turns busy with probability 0.10.
func ExampleSR() *core.ServiceRequester {
	return core.TwoStateSR("example-sr", 0.10, 0.15)
}

// ExampleSystem composes ExampleSP and ExampleSR with a queue of capacity 1
// (two queue states), yielding the eight-state system of Examples 3.5, A.1
// and A.2.
func ExampleSystem() *core.System {
	return &core.System{
		Name:     "example",
		SP:       ExampleSP(),
		SR:       ExampleSR(),
		QueueCap: 1,
	}
}
