package devices

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mat"
)

// SleepState parameterizes one inactive state of a multi-sleep-state
// provider (paper Appendix B, Fig. 12(a)): its power draw and the per-slice
// probability of completing the wake transition once go_active is asserted
// (expected wake time 1/WakeProb, Eq. 2).
type SleepState struct {
	Name     string
	Power    float64
	WakeProb float64
}

// BaselineConfig describes the Appendix-B baseline system and all its
// parametric variants. The zero value is not valid; use DefaultBaseline.
type BaselineConfig struct {
	// ActivePower is the power in the active state (baseline: 3 W).
	ActivePower float64
	// TransitionPower is drawn while a commanded transition is pending in
	// either direction (baseline: 4 W).
	TransitionPower float64
	// ServiceRate is the probability of completing a request per active
	// slice (baseline: 1).
	ServiceRate float64
	// Sleep lists the available sleep states, shallowest first
	// (baseline: one state, 2 W, wake probability 1 — i.e. both directions
	// take a single slice).
	Sleep []SleepState
	// SRFlip is the symmetric SR transition probability (baseline: 0.01;
	// the stationary load is 0.5 regardless, which is why Fig. 13(a) can
	// vary burstiness without varying load).
	SRFlip float64
	// QueueCap is the queue capacity (baseline: 2).
	QueueCap int
}

// DefaultBaseline returns the Appendix-B baseline configuration.
func DefaultBaseline() BaselineConfig {
	return BaselineConfig{
		ActivePower:     3,
		TransitionPower: 4,
		ServiceRate:     1,
		Sleep:           []SleepState{{Name: "sleep1", Power: 2, WakeProb: 1}},
		SRFlip:          0.01,
		QueueCap:        2,
	}
}

// DeepSleepStates returns the four sleep states of Fig. 12(a) in order:
// sleep1 (2 W, wake probability 1), sleep2 (1 W, 0.1), sleep3 (0.5 W,
// 0.01), sleep4 (0 W, 0.001).
func DeepSleepStates() []SleepState {
	return []SleepState{
		{Name: "sleep1", Power: 2, WakeProb: 1},
		{Name: "sleep2", Power: 1, WakeProb: 0.1},
		{Name: "sleep3", Power: 0.5, WakeProb: 0.01},
		{Name: "sleep4", Power: 0, WakeProb: 0.001},
	}
}

// MultiSleepSP builds a provider with one active state and the given sleep
// states. Commands are go_active plus one go_<sleep> per sleep state.
// Entering a sleep state from active takes one slice (the baseline's
// single-slice shutdown); waking is geometric with the state's WakeProb.
// Sleep-to-sleep commands are no-ops (the device must wake first), matching
// the structure implied by Fig. 12(a).
func MultiSleepSP(cfg BaselineConfig) (*core.ServiceProvider, error) {
	k := len(cfg.Sleep)
	if k == 0 {
		return nil, fmt.Errorf("devices: baseline needs at least one sleep state")
	}
	if cfg.ServiceRate < 0 || cfg.ServiceRate > 1 {
		return nil, fmt.Errorf("devices: service rate %g outside [0,1]", cfg.ServiceRate)
	}
	n := 1 + k // state 0 = active, state 1+i = sleep i
	a := 1 + k // command 0 = go_active, command 1+i = go_sleep i

	states := make([]string, n)
	states[0] = "active"
	cmds := make([]string, a)
	cmds[0] = "go_active"
	for i, s := range cfg.Sleep {
		if s.WakeProb <= 0 || s.WakeProb > 1 {
			return nil, fmt.Errorf("devices: sleep state %q wake probability %g outside (0,1]", s.Name, s.WakeProb)
		}
		states[1+i] = s.Name
		cmds[1+i] = "go_" + s.Name
	}

	ps := make([]*mat.Matrix, a)
	for cmd := 0; cmd < a; cmd++ {
		p := mat.NewMatrix(n, n)
		// Active row.
		if cmd == 0 {
			p.Set(0, 0, 1)
		} else {
			p.Set(0, cmd, 1) // one-slice shutdown into sleep state cmd-1
		}
		// Sleep rows.
		for i := 0; i < k; i++ {
			s := 1 + i
			if cmd == 0 {
				w := cfg.Sleep[i].WakeProb
				p.Set(s, 0, w)
				p.Set(s, s, 1-w)
			} else {
				p.Set(s, s, 1) // sleep-to-sleep commands are no-ops
			}
		}
		ps[cmd] = p
	}

	rate := mat.NewMatrix(n, a)
	rate.Set(0, 0, cfg.ServiceRate) // serves only while active and kept active

	power := mat.NewMatrix(n, a)
	for cmd := 0; cmd < a; cmd++ {
		if cmd == 0 {
			power.Set(0, 0, cfg.ActivePower)
		} else {
			power.Set(0, cmd, cfg.TransitionPower) // shutting down
		}
		for i := 0; i < k; i++ {
			s := 1 + i
			if cmd == 0 {
				power.Set(s, cmd, cfg.TransitionPower) // waking up
			} else {
				power.Set(s, cmd, cfg.Sleep[i].Power)
			}
		}
	}

	sp := &core.ServiceProvider{
		Name:        "baseline-sp",
		States:      states,
		Commands:    cmds,
		P:           ps,
		ServiceRate: rate,
		Power:       power,
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// BaselineSystem builds the full Appendix-B system for the configuration.
func BaselineSystem(cfg BaselineConfig) (*core.System, error) {
	sp, err := MultiSleepSP(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.SRFlip <= 0 || cfg.SRFlip > 1 {
		return nil, fmt.Errorf("devices: SR flip probability %g outside (0,1]", cfg.SRFlip)
	}
	return &core.System{
		Name:     "baseline",
		SP:       sp,
		SR:       core.TwoStateSR("baseline-sr", cfg.SRFlip, cfg.SRFlip),
		QueueCap: cfg.QueueCap,
	}, nil
}

// BaselineSystemWithSR is BaselineSystem with a caller-supplied requester
// (used by the SR-memory experiment of Fig. 13(b), whose SR comes from the
// k-memory extractor).
func BaselineSystemWithSR(cfg BaselineConfig, sr *core.ServiceRequester) (*core.System, error) {
	sp, err := MultiSleepSP(cfg)
	if err != nil {
		return nil, err
	}
	return &core.System{
		Name:     "baseline+" + sr.Name,
		SP:       sp,
		SR:       sr,
		QueueCap: cfg.QueueCap,
	}, nil
}
