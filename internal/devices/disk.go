package devices

import (
	"repro/internal/core"
	"repro/internal/mat"
)

// Disk state indices (paper Fig. 8(a): 1=active, 2/4/7/10 inactive,
// 3/5/6/8/9/11 transient; here 0-based).
const (
	DiskActive  = 0  // reads/writes, 2.5 W
	DiskIdle    = 1  // spinning, electronics partly off, 1.0 W
	DiskTLPIn   = 2  // entering low-power idle
	DiskLPIdle  = 3  // low-power idle, 0.8 W
	DiskTLPOut  = 4  // exiting low-power idle (40 ms total)
	DiskTSBIn   = 5  // spinning down to standby
	DiskStandby = 6  // spun down, 0.3 W
	DiskTSBOut  = 7  // spinning up from standby (2.2 s total)
	DiskTSLIn   = 8  // powering down to sleep
	DiskSleep   = 9  // sleep, 0.1 W
	DiskTSLOut  = 10 // spinning up from sleep (6 s total)
)

// Disk command indices.
const (
	DiskGoActive = iota
	DiskGoIdle
	DiskGoLPIdle
	DiskGoStandby
	DiskGoSleep
)

// DiskTimeResolution is Δt for the disk model, chosen as the fastest
// transition the device performs (idle→active, 1 ms) per Section VI-A.
const DiskTimeResolution = 1e-3 // seconds

// DiskServiceRate is the probability that the active disk completes a
// request within one 1 ms slice. The data sheet does not give a per-request
// service time; 0.5 (mean 2 ms per request) is a documented assumption in
// the range of small-transfer service times for a 2.5" drive of that era.
const DiskServiceRate = 0.5

// Spin-down (entry) expected times, in slices. Table I only reports
// transition times *to* active; entry times are documented assumptions:
// electronics power-down is fast (10 ms), spin-down to standby ~1 s,
// full power-down ~2 s.
const (
	diskLPInTime = 10
	diskSBInTime = 1000
	diskSLInTime = 2000
)

// Exit (wake) expected times from Table I, in slices.
const (
	diskIdleOutTime = 1    // 1.0 ms
	diskLPOutTime   = 40   // 40 ms
	diskSBOutTime   = 2200 // 2.2 s
	diskSLOutTime   = 6000 // 6.0 s
)

// DiskSP builds the 11-state service provider of the IBM Travelstar VP case
// study (Section VI-A, Table I, Fig. 8(a)). Uninterruptible multi-slice
// transitions are modeled with transient states whose outgoing
// probabilities are command-independent; geometric holding times are tuned
// so the expected transition times equal Table I exactly (a hop into the
// transient takes one slice, so an expected total of T slices needs exit
// probability 1/(T−1)).
//
// Power is a function of the current state only (transients draw the full
// 2.5 W, which is how the paper encodes transition energy); the disk
// services requests only while active and commanded to stay active.
func DiskSP() *core.ServiceProvider {
	const n = 11
	states := []string{
		"active", "idle", "t_lp_in", "lpidle", "t_lp_out",
		"t_sb_in", "standby", "t_sb_out", "t_sl_in", "sleep", "t_sl_out",
	}
	cmds := []string{"go_active", "go_idle", "go_lpidle", "go_standby", "go_sleep"}

	statePower := []float64{2.5, 1.0, 2.5, 0.8, 2.5, 2.5, 0.3, 2.5, 2.5, 0.1, 2.5}

	// Command-independent transient rows: geometric exit toward the target.
	exit := map[int]struct {
		to   int
		prob float64
	}{
		DiskTLPIn:  {DiskLPIdle, 1.0 / (diskLPInTime - 1)},
		DiskTLPOut: {DiskActive, 1.0 / (diskLPOutTime - 1)},
		DiskTSBIn:  {DiskStandby, 1.0 / (diskSBInTime - 1)},
		DiskTSBOut: {DiskActive, 1.0 / (diskSBOutTime - 1)},
		DiskTSLIn:  {DiskSleep, 1.0 / (diskSLInTime - 1)},
		DiskTSLOut: {DiskActive, 1.0 / (diskSLOutTime - 1)},
	}

	// Controllable rows: where each command sends each stable state.
	// Shallower-sleep commands from inactive states are no-ops; waking
	// always goes through go_active.
	target := map[int]map[int]int{
		DiskActive: {
			DiskGoActive:  DiskActive,
			DiskGoIdle:    DiskIdle,
			DiskGoLPIdle:  DiskTLPIn,
			DiskGoStandby: DiskTSBIn,
			DiskGoSleep:   DiskTSLIn,
		},
		DiskIdle: {
			DiskGoActive:  DiskActive, // 1 ms, single slice (Table I)
			DiskGoIdle:    DiskIdle,
			DiskGoLPIdle:  DiskTLPIn,
			DiskGoStandby: DiskTSBIn,
			DiskGoSleep:   DiskTSLIn,
		},
		DiskLPIdle: {
			DiskGoActive:  DiskTLPOut,
			DiskGoIdle:    DiskLPIdle,
			DiskGoLPIdle:  DiskLPIdle,
			DiskGoStandby: DiskTSBIn,
			DiskGoSleep:   DiskTSLIn,
		},
		DiskStandby: {
			DiskGoActive:  DiskTSBOut,
			DiskGoIdle:    DiskStandby,
			DiskGoLPIdle:  DiskStandby,
			DiskGoStandby: DiskStandby,
			DiskGoSleep:   DiskSleep, // already spun down; electronics off
		},
		DiskSleep: {
			DiskGoActive:  DiskTSLOut,
			DiskGoIdle:    DiskSleep,
			DiskGoLPIdle:  DiskSleep,
			DiskGoStandby: DiskSleep,
			DiskGoSleep:   DiskSleep,
		},
	}

	ps := make([]*mat.Matrix, len(cmds))
	for cmd := range cmds {
		p := mat.NewMatrix(n, n)
		for s := 0; s < n; s++ {
			if e, ok := exit[s]; ok {
				p.Set(s, e.to, e.prob)
				p.Set(s, s, 1-e.prob)
				continue
			}
			p.Set(s, target[s][cmd], 1)
		}
		ps[cmd] = p
	}

	rate := mat.NewMatrix(n, len(cmds))
	rate.Set(DiskActive, DiskGoActive, DiskServiceRate)

	power := mat.NewMatrix(n, len(cmds))
	for s := 0; s < n; s++ {
		for cmd := range cmds {
			power.Set(s, cmd, statePower[s])
		}
	}

	return &core.ServiceProvider{
		Name:        "travelstar-vp",
		States:      states,
		Commands:    cmds,
		P:           ps,
		ServiceRate: rate,
		Power:       power,
	}
}

// DiskSystem composes the disk SP with a workload model and the paper's
// queue of capacity 2 (Section VI-A: "pending requests are enqueued in a
// queue of length 2"), giving 11·|S_r|·3 system states (66 for a two-state
// SR).
func DiskSystem(sr *core.ServiceRequester) *core.System {
	return &core.System{
		Name:     "disk",
		SP:       DiskSP(),
		SR:       sr,
		QueueCap: 2,
	}
}
