package devices

import (
	"fmt"

	"repro/internal/core"
)

// heterogeneousParts assembles the component list of a k-device platform:
// a mini-disk, an SA-1100 CPU and a NIC first, then alternating extra disks
// and NICs. Every NIC after the first is restricted to its {run, off}
// commands (no doze) through the composite's per-part command mask —
// secondary links are bulk transports that are either up or down.
func heterogeneousParts(k int) ([]*core.ServiceProvider, [][]int) {
	parts := make([]*core.ServiceProvider, 0, k)
	subsets := make([][]int, 0, k)
	nics := 0
	add := func(p *core.ServiceProvider, sub []int) {
		parts = append(parts, p)
		subsets = append(subsets, sub)
	}
	for len(parts) < k {
		switch len(parts) {
		case 0:
			add(MiniDiskSP("disk"), nil)
		case 1:
			add(CPUWakeSP(), nil)
		default:
			if (len(parts)-2)%2 == 0 {
				nic := NICSP("nic")
				if nics > 0 {
					add(nic, []int{nic.CommandIndex("run"), nic.CommandIndex("off")})
				} else {
					add(nic, nil)
				}
				nics++
			} else {
				add(MiniDiskSP("disk"), nil)
			}
		}
	}
	return parts, subsets
}

// HeterogeneousSystem composes a k-component heterogeneous platform —
// disk + CPU + NIC, extended with alternating extra disks and NICs — into
// one power-managed system with a shared request queue: the Section VII
// device network at the scale the heterogeneous-platform studies (Mandal et
// al., PAPERS.md) care about. The SP is compiled with core.Composite, so the
// joint chains are Kronecker products assembled directly in CSR and the
// rate/power surfaces are evaluated from the factors; no dense joint object
// exists at any size.
//
// Masking is what keeps the joint command space sane: the cross product of
// the part commands grows as Π aᵢ (already 72 at k=5), but the compiled
// system allows only joint commands that retarget at most one component per
// slice — the single-command-bus discipline a real power manager follows —
// which collapses A to 1 + Σ(aᵢ−1). Secondary NICs additionally lose their
// doze command through the per-part subset mask (see heterogeneousParts).
//
// The joint service rate saturates like parallel servers pulling from one
// queue: b_joint = 1 − Π(1 − bᵢ).
func HeterogeneousSystem(k, queueCap int, sr *core.ServiceRequester) (*core.System, error) {
	if k < 3 {
		return nil, fmt.Errorf("devices: heterogeneous system needs k >= 3 components (disk, cpu, nic), got %d", k)
	}
	parts, subsets := heterogeneousParts(k)
	comp := &core.Composite{
		Name:  "heterogeneous",
		Parts: parts,
		Rate: func(states, cmds []int) float64 {
			miss := 1.0
			for i := range states {
				miss *= 1 - parts[i].ServiceRate.At(states[i], cmds[i])
			}
			return 1 - miss
		},
		RateTag:      "parallel-servers/v1",
		PartCommands: subsets,
		Allow: func(cmds []int) bool {
			moved := 0
			for _, c := range cmds {
				if c != 0 { // command 0 is "run" for every part type
					moved++
				}
			}
			return moved <= 1
		},
		AllowTag: "single-command-bus/v1",
	}
	sp, err := comp.Build()
	if err != nil {
		return nil, err
	}
	return &core.System{
		Name:     "heterogeneous",
		SP:       sp,
		SR:       sr,
		QueueCap: queueCap,
	}, nil
}
