package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/policy"
)

// heterogeneousSystem builds the masked k-part composite platform used by
// the factored-simulation tests.
func heterogeneousSystem(t *testing.T, k int) *core.System {
	t.Helper()
	sys, err := devices.HeterogeneousSystem(k, 2, core.TwoStateSR("web", 0.12, 0.3))
	if err != nil {
		t.Fatalf("HeterogeneousSystem(%d): %v", k, err)
	}
	return sys
}

// TestFactoredSimBitwiseEquivalence: a Model-free simulation of a factored
// composite reproduces the Model-backed simulation exactly — same seed, same
// trajectory, identical Stats — while compiling zero joint chains. Both
// paths step the composite per part from one RNG stream, so the equality is
// bit-for-bit, not statistical.
func TestFactoredSimBitwiseEquivalence(t *testing.T) {
	const slices = 20000

	run := func(t *testing.T, direct bool) (*Stats, *core.FactoredSP) {
		sys := heterogeneousSystem(t, 3)
		fsp := sys.SP.(*core.FactoredSP)
		ctrl := &policy.Constant{Cmd: 0}
		var (
			s   *Simulator
			err error
		)
		if direct {
			s, err = NewDirect(sys, ctrl, Config{Seed: 99})
		} else {
			m, berr := sys.Build()
			if berr != nil {
				t.Fatalf("Build: %v", berr)
			}
			s, err = New(m, ctrl, Config{Seed: 99})
		}
		if err != nil {
			t.Fatalf("constructor: %v", err)
		}
		st, err := s.Run(slices)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return st, fsp
	}

	lazy, lazySP := run(t, true)
	eager, _ := run(t, false)

	if got := lazySP.CompiledChains(); got != 0 {
		t.Fatalf("direct simulation compiled %d joint chains, want 0", got)
	}
	if !reflect.DeepEqual(lazy, eager) {
		t.Fatalf("lazy and eager runs diverge:\nlazy:  %+v\neager: %+v", lazy, eager)
	}
	if lazy.Slices != slices {
		t.Fatalf("ran %d slices, want %d", lazy.Slices, slices)
	}
}

// TestNewDirectMetricsMatchModel: the direct simulator's on-demand metric
// accounting equals the Model's tabulated metrics on a shared trajectory —
// every metric name, to machine precision.
func TestNewDirectMetricsMatchModel(t *testing.T) {
	sys := heterogeneousSystem(t, 3)
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ctrl := &policy.Constant{Cmd: 1 % m.A}
	sEager, err := New(m, ctrl, Config{Seed: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sLazy, err := NewDirect(sys, ctrl, Config{Seed: 5})
	if err != nil {
		t.Fatalf("NewDirect: %v", err)
	}
	a, err := sEager.Run(5000)
	if err != nil {
		t.Fatalf("eager Run: %v", err)
	}
	b, err := sLazy.Run(5000)
	if err != nil {
		t.Fatalf("lazy Run: %v", err)
	}
	if len(a.Averages) != len(b.Averages) {
		t.Fatalf("metric sets differ: %d vs %d", len(a.Averages), len(b.Averages))
	}
	for name, want := range a.Averages {
		got, ok := b.Averages[name]
		if !ok {
			t.Fatalf("direct run lacks metric %q", name)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("metric %q: direct %g vs model %g", name, got, want)
		}
	}
}

// TestNewDirectLargeComposite: a k=6 heterogeneous platform (9720 composed
// states) simulates Model-free; compiling its Model would build six joint
// CSR chains of ~1.3M nonzeros together.
func TestNewDirectLargeComposite(t *testing.T) {
	sys := heterogeneousSystem(t, 6)
	fsp := sys.SP.(*core.FactoredSP)
	s, err := NewDirect(sys, &policy.Constant{Cmd: 0}, Config{Seed: 17})
	if err != nil {
		t.Fatalf("NewDirect: %v", err)
	}
	st, err := s.Run(20000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := fsp.CompiledChains(); got != 0 {
		t.Fatalf("large direct simulation compiled %d joint chains", got)
	}
	if st.Averages[core.MetricPower] <= 0 {
		t.Fatalf("power average %g, want > 0", st.Averages[core.MetricPower])
	}
	sum := 0.0
	for _, f := range st.Occupancy {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("occupancy sums to %g", sum)
	}
}

// TestNewDirectValidation: the Model-free constructor enforces the same
// preconditions as New.
func TestNewDirectValidation(t *testing.T) {
	sys := heterogeneousSystem(t, 3)
	if _, err := NewDirect(sys, &policy.Constant{}, Config{Initial: core.State{SP: -1}}); err == nil {
		t.Errorf("bad initial state accepted")
	}
	bad := *sys
	bad.QueueCap = -1
	if _, err := NewDirect(&bad, &policy.Constant{}, Config{}); err == nil {
		t.Errorf("invalid system accepted")
	}
}
