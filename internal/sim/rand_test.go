package sim

import "math/rand"

// newTestRand returns a seeded generator for test fixtures.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
