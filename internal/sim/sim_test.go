package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/mat"
	"repro/internal/policy"
)

// exampleSystem mirrors the paper's running example (see core tests).
func exampleSystem() *core.System {
	sp := &core.ServiceProvider{
		Name:     "example",
		States:   []string{"on", "off"},
		Commands: []string{"s_on", "s_off"},
		P: []*mat.Matrix{
			mat.FromRows([][]float64{{1, 0}, {0.1, 0.9}}),
			mat.FromRows([][]float64{{0.1, 0.9}, {0, 1}}),
		},
		ServiceRate: mat.FromRows([][]float64{{0.8, 0}, {0, 0}}),
		Power:       mat.FromRows([][]float64{{3, 4}, {4, 0}}),
	}
	return &core.System{Name: "example", SP: sp, SR: core.TwoStateSR("bursty", 0.10, 0.15), QueueCap: 1}
}

func buildExample(t *testing.T) *core.Model {
	t.Helper()
	m, err := exampleSystem().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestRunValidation(t *testing.T) {
	m := buildExample(t)
	if _, err := New(m, &policy.Constant{}, Config{Initial: core.State{SP: 9}}); err == nil {
		t.Errorf("bad initial state accepted")
	}
	s, err := New(m, &policy.Constant{}, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Run(0); err == nil {
		t.Errorf("zero horizon accepted")
	}
	if _, err := s.RunSessions(1.0, 10); err == nil {
		t.Errorf("alpha=1 accepted")
	}
	if _, err := s.RunSessions(0.9, 0); err == nil {
		t.Errorf("zero sessions accepted")
	}
	if _, err := s.RunTrace(nil); err == nil {
		t.Errorf("empty trace accepted")
	}
	if _, err := s.RunTrace([]int{1, -1}); err == nil {
		t.Errorf("negative arrivals accepted")
	}
}

// TestSimMatchesExactEvaluation is the paper tool's central cross-check:
// simulated power/penalty/loss of a policy must agree with the analytic
// evaluation within statistical tolerance.
func TestSimMatchesExactEvaluation(t *testing.T) {
	m := buildExample(t)
	always, _ := core.ConstantPolicy(m.N, m.A, 0)
	ev, err := core.Evaluate(m, always, core.Delta(m.N, 0), core.HorizonToAlpha(1e6))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	ctrl := &policy.Constant{Cmd: 0}
	s, err := New(m, ctrl, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := s.Run(400000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, metric := range []string{core.MetricPower, core.MetricPenalty, core.MetricLoss} {
		sim, exact := st.Averages[metric], ev.Average(metric)
		if math.Abs(sim-exact) > 0.02*(1+exact) {
			t.Errorf("%s: sim %g vs exact %g", metric, sim, exact)
		}
	}
}

// TestSimOptimalPolicy simulates the optimizer's randomized policy and
// checks agreement with the LP's expected metrics. The discounted-optimal
// policy is session-aware (it may shut down with small probability and rely
// on the session ending), so the simulation must use the same geometric
// session model (paper Fig. 5), not a single long run.
func TestSimOptimalPolicy(t *testing.T) {
	sys := exampleSystem()
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	alpha := 0.99 // expected session length 100 slices
	init := core.State{SP: 0, SR: 0, Q: 0}
	res, err := core.Optimize(m, core.Options{
		Alpha:     alpha,
		Initial:   core.Delta(m.N, sys.Index(init)),
		Objective: core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds: []core.Bound{
			{Metric: core.MetricPenalty, Rel: lp.LE, Value: 0.5},
		},
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	ctrl, err := policy.NewStationary(sys, res.Policy, 3)
	if err != nil {
		t.Fatalf("NewStationary: %v", err)
	}
	s, err := New(m, ctrl, Config{Seed: 5, Initial: init})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := s.RunSessions(alpha, 20000)
	if err != nil {
		t.Fatalf("RunSessions: %v", err)
	}
	for _, metric := range []string{core.MetricPower, core.MetricPenalty} {
		sim, want := st.Averages[metric], res.Averages[metric]
		if math.Abs(sim-want) > 0.05*(1+want) {
			t.Errorf("%s: sim %g vs LP %g", metric, sim, want)
		}
	}
}

// TestTraceDrivenMatchesModelDriven: a trace sampled from the SR chain must
// reproduce model-driven statistics.
func TestTraceDrivenMatchesModelDriven(t *testing.T) {
	sys := exampleSystem()
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Sample a trace from the SR chain.
	const n = 300000
	srChain := sys.SR
	arrivals := make([]int, n)
	stateSeq := 0
	rng := newTestRand(99)
	for i := 1; i < n; i++ {
		u := rng.Float64()
		row := srChain.P.Row(stateSeq)
		next := len(row) - 1
		for j, p := range row {
			u -= p
			if u <= 0 {
				next = j
				break
			}
		}
		stateSeq = next
		arrivals[i] = srChain.Requests[stateSeq]
	}

	ctrl := &policy.Greedy{WakeCmd: 0, SleepCmd: 1}
	sModel, _ := New(m, ctrl, Config{Seed: 2})
	stModel, err := sModel.Run(n)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ctrl2 := &policy.Greedy{WakeCmd: 0, SleepCmd: 1}
	sTrace, _ := New(m, ctrl2, Config{Seed: 2})
	stTrace, err := sTrace.RunTrace(arrivals)
	if err != nil {
		t.Fatalf("RunTrace: %v", err)
	}
	for _, metric := range []string{core.MetricPower, core.MetricPenalty, core.MetricLoss} {
		a, b := stModel.Averages[metric], stTrace.Averages[metric]
		if math.Abs(a-b) > 0.03*(1+a) {
			t.Errorf("%s: model %g vs trace %g", metric, a, b)
		}
	}
}

// TestRequestConservation: arrivals = serviced + lost + residual backlog
// (bounded by queue capacity per session).
func TestRequestConservation(t *testing.T) {
	m := buildExample(t)
	ctrl := &policy.Timeout{WakeCmd: 0, SleepCmd: 1, Timeout: 5}
	s, err := New(m, ctrl, Config{Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := s.RunSessions(0.999, 50)
	if err != nil {
		t.Fatalf("RunSessions: %v", err)
	}
	residual := st.Arrived - st.Serviced - st.Lost
	if residual < 0 {
		t.Errorf("serviced+lost exceeds arrivals: %d", residual)
	}
	if residual > int64(st.Sessions)*int64(m.Sys.QueueCap) {
		t.Errorf("residual backlog %d exceeds %d sessions × capacity", residual, st.Sessions)
	}
	if st.Sessions != 50 {
		t.Errorf("Sessions = %d", st.Sessions)
	}
}

// TestZeroWaitWhenServiceImmediate: with service rate 1 and queue capacity
// large, every request is serviced in its arrival slice with zero wait.
func TestZeroWaitWhenServiceImmediate(t *testing.T) {
	sp := &core.ServiceProvider{
		Name:        "fast",
		States:      []string{"on"},
		Commands:    []string{"run"},
		P:           []*mat.Matrix{mat.FromRows([][]float64{{1}})},
		ServiceRate: mat.FromRows([][]float64{{1}}),
		Power:       mat.FromRows([][]float64{{1}}),
	}
	sr := &core.ServiceRequester{
		Name:     "steady",
		States:   []string{"busy"},
		P:        mat.FromRows([][]float64{{1}}),
		Requests: []int{1},
	}
	sys := &core.System{Name: "flat", SP: sp, SR: sr, QueueCap: 4}
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, _ := New(m, &policy.Constant{}, Config{Seed: 1, Initial: core.State{SR: 0}})
	st, err := s.Run(1000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.AvgWait != 0 {
		t.Errorf("AvgWait = %g, want 0", st.AvgWait)
	}
	if st.Lost != 0 {
		t.Errorf("Lost = %d, want 0", st.Lost)
	}
	if th := st.Throughput(); math.Abs(th-1) > 0.01 {
		t.Errorf("Throughput = %g, want ≈1", th)
	}
}

// TestBacklogWaits: with service rate 0 the queue saturates; all further
// arrivals are lost and nothing is serviced.
func TestBacklogWaits(t *testing.T) {
	sp := &core.ServiceProvider{
		Name:        "dead",
		States:      []string{"off"},
		Commands:    []string{"noop"},
		P:           []*mat.Matrix{mat.FromRows([][]float64{{1}})},
		ServiceRate: mat.FromRows([][]float64{{0}}),
		Power:       mat.FromRows([][]float64{{0}}),
	}
	sr := &core.ServiceRequester{
		Name:     "steady",
		States:   []string{"busy"},
		P:        mat.FromRows([][]float64{{1}}),
		Requests: []int{1},
	}
	sys := &core.System{Name: "dead", SP: sp, SR: sr, QueueCap: 2}
	m, err := sys.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, _ := New(m, &policy.Constant{}, Config{})
	st, err := s.Run(1000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Serviced != 0 {
		t.Errorf("Serviced = %d, want 0", st.Serviced)
	}
	// 999 arrivals (slices 1..999), 2 enqueued, rest lost.
	if st.Arrived != 999 {
		t.Errorf("Arrived = %d, want 999", st.Arrived)
	}
	if st.Lost != 997 {
		t.Errorf("Lost = %d, want 997", st.Lost)
	}
	if lf := st.LossFraction(); math.Abs(lf-997.0/999.0) > 1e-12 {
		t.Errorf("LossFraction = %g", lf)
	}
	// Loss-indicator average: queue full with requests arriving from slice
	// ~2 on.
	if st.Averages[core.MetricLoss] < 0.95 {
		t.Errorf("loss indicator average = %g, want ≈1", st.Averages[core.MetricLoss])
	}
}

// TestSessionsApproximateDiscountedAverages: geometric-session simulation
// estimates the optimizer's discounted per-slice averages.
func TestSessionsApproximateDiscountedAverages(t *testing.T) {
	m := buildExample(t)
	always, _ := core.ConstantPolicy(m.N, m.A, 0)
	alpha := 0.999
	q0 := core.Delta(m.N, 0)
	ev, err := core.Evaluate(m, always, q0, alpha)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	s, _ := New(m, &policy.Constant{Cmd: 0}, Config{Seed: 11})
	st, err := s.RunSessions(alpha, 400)
	if err != nil {
		t.Fatalf("RunSessions: %v", err)
	}
	for _, metric := range []string{core.MetricPower, core.MetricPenalty} {
		sim, exact := st.Averages[metric], ev.Average(metric)
		if math.Abs(sim-exact) > 0.05*(1+exact) {
			t.Errorf("%s: sessions %g vs exact %g", metric, sim, exact)
		}
	}
}

func TestOccupancyAndCommandCounts(t *testing.T) {
	m := buildExample(t)
	s, _ := New(m, &policy.Greedy{WakeCmd: 0, SleepCmd: 1}, Config{Seed: 3})
	st, err := s.Run(50000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	totalOcc := 0.0
	for _, f := range st.Occupancy {
		totalOcc += f
	}
	if math.Abs(totalOcc-1) > 1e-9 {
		t.Errorf("occupancy sums to %g", totalOcc)
	}
	var totalCmds int64
	for _, c := range st.CommandCounts {
		totalCmds += c
	}
	if totalCmds != st.Slices {
		t.Errorf("command counts %d != slices %d", totalCmds, st.Slices)
	}
}

// TestDropsMetricMatchesCounter: the analytic expected-drops metric
// (accumulated from the per-(state,command) table) must agree with the
// simulator's actual dropped-request counter — the two are independent
// implementations of the same quantity.
func TestDropsMetricMatchesCounter(t *testing.T) {
	m := buildExample(t)
	// Timeout policy sleeps aggressively, so drops actually occur.
	ctrl := &policy.Timeout{WakeCmd: 0, SleepCmd: 1, Timeout: 2}
	s, err := New(m, ctrl, Config{Seed: 13})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := s.Run(300000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	expected := st.Averages[core.MetricDrops]
	actual := float64(st.Lost) / float64(st.Slices)
	if actual == 0 {
		t.Fatalf("no drops occurred; test needs a lossier scenario")
	}
	if math.Abs(expected-actual) > 0.05*actual {
		t.Errorf("expected-drops metric %g vs counted drop rate %g", expected, actual)
	}
}
