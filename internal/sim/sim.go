// Package sim is the simulation engine of the paper's policy-optimization
// tool (Section V, Fig. 7): a slotted-time stochastic simulator that runs a
// power-manager controller against either the Markov system model
// (model-driven mode, used to cross-check the optimizer's expected power and
// performance) or a recorded request trace (trace-driven mode, used to judge
// how well the Markov workload model represents reality — the circles of
// Figs. 8(b) and 9(a)).
//
// Metric accounting matches the optimizer's semantics exactly: at each slice
// the metrics of the current (state, command) pair accumulate, then the
// components advance — the SP row of the current state under the issued
// command, the SR chain, and the queue law of Eq. 3 driven by the service
// rate of the current SP state and the arrivals of the destination SR state.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/policy"
)

// Config configures a Simulator.
type Config struct {
	// Seed seeds the simulation RNG (state sampling); controller sampling
	// uses the controller's own generator.
	Seed int64
	// Initial is the initial composed state of every run or session.
	Initial core.State
	// SRStateOf maps an arrival count to an SR state index for trace-driven
	// runs (the controller and the SP-coupling hook observe SR state, which
	// a trace does not carry). Nil maps count k to state min(k, |S_r|−1),
	// which is exact for the two-state requesters used throughout the paper.
	SRStateOf func(arrivals int) int
}

// Stats aggregates one simulation run.
type Stats struct {
	// Slices is the number of simulated time slices.
	Slices int64
	// Sessions is the number of sessions aggregated (1 for fixed-horizon
	// runs).
	Sessions int
	// Averages maps each model metric to its per-slice average — directly
	// comparable with the optimizer's Result.Averages and with
	// core.Evaluation.Averages.
	Averages map[string]float64
	// Arrived, Serviced and Lost count individual requests. Lost counts
	// actual dropped requests (arrivals beyond capacity), which is related
	// to but distinct from the loss-indicator average in Averages.
	Arrived, Serviced, Lost int64
	// AvgWait is the mean waiting time, in slices, of serviced requests
	// (0 when none were serviced).
	AvgWait float64
	// CommandCounts tallies issued commands.
	CommandCounts []int64
	// Occupancy is the fraction of slices spent in each composed state.
	Occupancy []float64
}

// Throughput returns serviced requests per slice.
func (s *Stats) Throughput() float64 {
	if s.Slices == 0 {
		return 0
	}
	return float64(s.Serviced) / float64(s.Slices)
}

// LossFraction returns the fraction of arrived requests that were dropped.
func (s *Stats) LossFraction() float64 {
	if s.Arrived == 0 {
		return 0
	}
	return float64(s.Lost) / float64(s.Arrived)
}

// metricEval computes one metric at a (state, command) pair. Model-backed
// simulators read the precomputed N×A tables by index; direct simulators
// evaluate the system's metric functions on the decoded state.
type metricEval func(idx int, st core.State, cmd int) float64

// Simulator runs a controller against a power-managed system — either a
// compiled Model (New) or the System itself, Model-free (NewDirect).
type Simulator struct {
	sys     *core.System
	ctrl    policy.Controller
	cfg     Config
	rng     *rand.Rand
	nCmds   int
	metrics map[string]metricEval
	// spChains caches the provider's per-command CSR chains for plain
	// providers: the step loop samples SP transitions from sparse rows
	// (Provider does not expose dense rows, and re-compressing per step
	// would dominate the run). nil when the provider is factored.
	spChains []*mat.CSR
	// fsp is set when the provider is a FactoredSP: SP transitions then
	// sample each part's row independently (one uniform per part, factor
	// order) instead of walking a joint row — O(Σ out-degreeᵢ) per step and
	// no joint CSR is ever compiled. Model-backed simulators use the same
	// per-part stepping, so lazy and eager runs share trajectories
	// bit for bit.
	fsp *core.FactoredSP
}

// validateConfig range-checks the initial state and installs the default
// arrival→SR-state quantizer.
func validateConfig(sys *core.System, cfg *Config) error {
	if cfg.Initial.SP < 0 || cfg.Initial.SP >= sys.SP.N() ||
		cfg.Initial.SR < 0 || cfg.Initial.SR >= sys.SR.N() ||
		cfg.Initial.Q < 0 || cfg.Initial.Q > sys.QueueCap {
		return fmt.Errorf("sim: initial state %+v out of range", cfg.Initial)
	}
	if cfg.SRStateOf == nil {
		maxSR := sys.SR.N() - 1
		cfg.SRStateOf = func(arrivals int) int {
			if arrivals > maxSR {
				return maxSR
			}
			return arrivals
		}
	}
	return nil
}

// newSimulator wires the parts shared by New and NewDirect: the SP stepping
// strategy (per-part for factored providers, cached sparse rows otherwise)
// and the RNG.
func newSimulator(sys *core.System, ctrl policy.Controller, cfg Config, metrics map[string]metricEval) *Simulator {
	s := &Simulator{
		sys:     sys,
		ctrl:    ctrl,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nCmds:   sys.SP.A(),
		metrics: metrics,
	}
	if fsp, ok := sys.SP.(*core.FactoredSP); ok {
		s.fsp = fsp
	} else {
		s.spChains = make([]*mat.CSR, sys.SP.A())
		for a := range s.spChains {
			s.spChains[a] = sys.SP.Chain(a)
		}
	}
	return s
}

// New builds a simulator for the compiled model m driven by ctrl. Metrics
// come from the model's precomputed tables.
func New(m *core.Model, ctrl policy.Controller, cfg Config) (*Simulator, error) {
	sys := m.Sys
	if err := validateConfig(sys, &cfg); err != nil {
		return nil, err
	}
	metrics := make(map[string]metricEval, len(m.Metrics))
	for name, table := range m.Metrics {
		table := table
		metrics[name] = func(idx int, _ core.State, cmd int) float64 { return table.At(idx, cmd) }
	}
	return newSimulator(sys, ctrl, cfg, metrics), nil
}

// NewDirect builds a simulator straight from the system, without compiling a
// Model: metrics are evaluated on demand from core.MetricFns, and a factored
// provider steps per part — nothing Π|Sᵢ|-sized is ever allocated, so
// composites far beyond Build's reach simulate fine. The accounting is
// identical to the Model-backed path (MetricFns is what Build tabulates).
func NewDirect(sys *core.System, ctrl policy.Controller, cfg Config) (*Simulator, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := validateConfig(sys, &cfg); err != nil {
		return nil, err
	}
	metrics := make(map[string]metricEval, 8)
	for name, fn := range sys.MetricFns() {
		fn := fn
		metrics[name] = func(_ int, st core.State, cmd int) float64 { return fn(st, cmd) }
	}
	return newSimulator(sys, ctrl, cfg, metrics), nil
}

// run is the common loop. nextArrivals returns the arrival count of slice
// t+1 and the corresponding SR state, or done=true to stop.
type arrivalSource func(t int64) (arrivals int, srState int, done bool)

// accumulator tracks running sums for one or more sessions.
type accumulator struct {
	slices     int64
	metricSums map[string]float64
	arrived    int64
	serviced   int64
	lost       int64
	waitSum    int64
	cmdCounts  []int64
	occupancy  []int64
}

func (s *Simulator) newAccumulator() *accumulator {
	sums := make(map[string]float64, len(s.metrics))
	for name := range s.metrics {
		sums[name] = 0
	}
	return &accumulator{
		metricSums: sums,
		cmdCounts:  make([]int64, s.nCmds),
		occupancy:  make([]int64, s.sys.NumStates()),
	}
}

func (ac *accumulator) stats(sessions int) *Stats {
	st := &Stats{
		Slices:        ac.slices,
		Sessions:      sessions,
		Averages:      make(map[string]float64, len(ac.metricSums)),
		Arrived:       ac.arrived,
		Serviced:      ac.serviced,
		Lost:          ac.lost,
		CommandCounts: ac.cmdCounts,
		Occupancy:     make([]float64, len(ac.occupancy)),
	}
	if ac.slices > 0 {
		for name, sum := range ac.metricSums {
			st.Averages[name] = sum / float64(ac.slices)
		}
		for i, c := range ac.occupancy {
			st.Occupancy[i] = float64(c) / float64(ac.slices)
		}
	}
	if ac.serviced > 0 {
		st.AvgWait = float64(ac.waitSum) / float64(ac.serviced)
	}
	return st
}

// session simulates one session: from the initial state until src reports
// done. The queue is tracked as a FIFO of arrival timestamps so waiting
// times are exact.
func (s *Simulator) session(ac *accumulator, src arrivalSource) {
	sys := s.sys
	s.ctrl.Reset()
	st := s.cfg.Initial
	// Arrival timestamps of currently enqueued requests.
	fifo := make([]int64, 0, sys.QueueCap+1)
	for i := 0; i < st.Q; i++ {
		fifo = append(fifo, 0)
	}

	for t := int64(0); ; t++ {
		obs := policy.Observation{
			SP:       st.SP,
			SR:       st.SR,
			Queue:    st.Q,
			Requests: sys.SR.Requests[st.SR],
			Time:     t,
		}
		cmd := s.ctrl.Command(obs)
		if cmd < 0 || cmd >= s.nCmds {
			panic(fmt.Sprintf("sim: controller issued command %d outside [0,%d)", cmd, s.nCmds))
		}

		// Metric accounting at the current (state, command) pair.
		idx := sys.Index(st)
		for name, ev := range s.metrics {
			ac.metricSums[name] += ev(idx, st, cmd)
		}
		ac.cmdCounts[cmd]++
		ac.occupancy[idx]++
		ac.slices++

		// Advance the environment.
		arrivals, srNext, done := src(t)
		if done {
			return
		}

		// SP transition row for the *current* SR state (coupling hook).
		var spNext int
		if row := s.hookRow(st.SP, cmd, st.SR); row != nil {
			spNext = sampleRow(s.rng, row)
		} else if s.fsp != nil {
			spNext = s.fsp.SampleNext(st.SP, cmd, s.rng.Float64)
		} else {
			cols, vals := s.spChains[cmd].RowNZ(st.SP)
			spNext = sampleRowNZ(s.rng, cols, vals)
		}

		// Queue update per Eq. 3, with exact request accounting.
		b := sys.SP.RateAt(st.SP, cmd)
		ac.arrived += int64(arrivals)
		q := len(fifo)
		switch {
		case arrivals == 0 && q == 0:
			// Nothing to do.
		case arrivals == 0:
			if s.rng.Float64() < b {
				ac.serviced++
				ac.waitSum += t + 1 - fifo[0]
				fifo = fifo[1:]
			}
		case q+arrivals > sys.QueueCap:
			// Overflow corner case: the composed chain moves to q'=Q with
			// probability 1 (Eq. 3) whether or not a service completes this
			// slice — q+r−1 ≥ Q in every overflow — so the service event is
			// still drawn: it changes only the request accounting (one more
			// served, one fewer dropped), keeping the drop counter
			// consistent with the analytic MetricDrops table.
			remaining := arrivals
			if s.rng.Float64() < b {
				ac.serviced++
				if q > 0 {
					ac.waitSum += t + 1 - fifo[0]
					fifo = fifo[1:]
				} else {
					remaining-- // an incoming request is served directly
				}
			}
			space := sys.QueueCap - len(fifo)
			for i := 0; i < space && i < remaining; i++ {
				fifo = append(fifo, t+1)
			}
			if remaining > space {
				ac.lost += int64(remaining - space)
			}
		default:
			for i := 0; i < arrivals; i++ {
				fifo = append(fifo, t+1)
			}
			if s.rng.Float64() < b {
				ac.serviced++
				ac.waitSum += t + 1 - fifo[0]
				fifo = fifo[1:]
			}
		}

		st = core.State{SP: spNext, SR: srNext, Q: len(fifo)}
	}
}

// hookRow returns the SPRow override for (p, cmd, r), or nil when the
// system has no hook (or the hook defers to the commanded dynamics).
func (s *Simulator) hookRow(p, cmd, r int) mat.Vector {
	if s.sys.SPRow == nil {
		return nil
	}
	return s.sys.SPRow(p, cmd, r)
}

func sampleRow(rng *rand.Rand, row []float64) int {
	u := rng.Float64()
	for i, p := range row {
		u -= p
		if u <= 0 {
			return i
		}
	}
	return len(row) - 1
}

// sampleRowNZ samples from a sparse probability row (indices cols, masses
// vals). Implicit zeros carry no mass, so any residual u lands on the last
// stored entry, mirroring sampleRow's tail clamp.
func sampleRowNZ(rng *rand.Rand, cols []int, vals []float64) int {
	u := rng.Float64()
	for k, p := range vals {
		u -= p
		if u <= 0 {
			return cols[k]
		}
	}
	return cols[len(cols)-1]
}

// Run simulates a single fixed-horizon session of the given number of
// slices in model-driven mode (the SR evolves by its Markov chain).
func (s *Simulator) Run(slices int64) (*Stats, error) {
	if slices <= 0 {
		return nil, fmt.Errorf("sim: horizon %d must be positive", slices)
	}
	ac := s.newAccumulator()
	sys := s.sys
	sr := s.cfg.Initial.SR
	s.session(ac, func(t int64) (int, int, bool) {
		if t+1 >= slices {
			return 0, 0, true
		}
		sr = sampleRow(s.rng, sys.SR.P.Row(sr))
		return sys.SR.Requests[sr], sr, false
	})
	return ac.stats(1), nil
}

// RunSessions simulates the paper's stopping-time model: sessions end with
// probability 1−alpha at each slice (geometric horizon, Fig. 5), and the
// reported averages aggregate over all sessions. This estimates the same
// quantities as the optimizer's discounted per-slice averages.
func (s *Simulator) RunSessions(alpha float64, sessions int) (*Stats, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("sim: alpha %g outside [0,1)", alpha)
	}
	if sessions <= 0 {
		return nil, fmt.Errorf("sim: session count %d must be positive", sessions)
	}
	ac := s.newAccumulator()
	sys := s.sys
	for i := 0; i < sessions; i++ {
		sr := s.cfg.Initial.SR
		s.session(ac, func(t int64) (int, int, bool) {
			if s.rng.Float64() >= alpha {
				return 0, 0, true
			}
			sr = sampleRow(s.rng, sys.SR.P.Row(sr))
			return sys.SR.Requests[sr], sr, false
		})
	}
	return ac.stats(sessions), nil
}

// RunTrace simulates one session driven by a discretized arrival trace:
// arrivals[t] requests arrive during slice t+1 (slice 0 starts from the
// configured initial state). The controller observes the quantized SR state
// given by Config.SRStateOf.
func (s *Simulator) RunTrace(arrivals []int) (*Stats, error) {
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	for i, a := range arrivals {
		if a < 0 {
			return nil, fmt.Errorf("sim: negative arrival count %d at slice %d", a, i)
		}
	}
	ac := s.newAccumulator()
	s.session(ac, func(t int64) (int, int, bool) {
		if t >= int64(len(arrivals))-1 {
			return 0, 0, true
		}
		a := arrivals[t+1]
		return a, s.cfg.SRStateOf(a), false
	})
	return ac.stats(1), nil
}
