// Package sim is the simulation engine of the paper's policy-optimization
// tool (Section V, Fig. 7): a slotted-time stochastic simulator that runs a
// power-manager controller against either the Markov system model
// (model-driven mode, used to cross-check the optimizer's expected power and
// performance) or a recorded request trace (trace-driven mode, used to judge
// how well the Markov workload model represents reality — the circles of
// Figs. 8(b) and 9(a)).
//
// Metric accounting matches the optimizer's semantics exactly: at each slice
// the metrics of the current (state, command) pair accumulate, then the
// components advance — the SP row of the current state under the issued
// command, the SR chain, and the queue law of Eq. 3 driven by the service
// rate of the current SP state and the arrivals of the destination SR state.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/policy"
)

// Config configures a Simulator.
type Config struct {
	// Seed seeds the simulation RNG (state sampling); controller sampling
	// uses the controller's own generator.
	Seed int64
	// Initial is the initial composed state of every run or session.
	Initial core.State
	// SRStateOf maps an arrival count to an SR state index for trace-driven
	// runs (the controller and the SP-coupling hook observe SR state, which
	// a trace does not carry). Nil maps count k to state min(k, |S_r|−1),
	// which is exact for the two-state requesters used throughout the paper.
	SRStateOf func(arrivals int) int
}

// Stats aggregates one simulation run.
type Stats struct {
	// Slices is the number of simulated time slices.
	Slices int64
	// Sessions is the number of sessions aggregated (1 for fixed-horizon
	// runs).
	Sessions int
	// Averages maps each model metric to its per-slice average — directly
	// comparable with the optimizer's Result.Averages and with
	// core.Evaluation.Averages.
	Averages map[string]float64
	// Arrived, Serviced and Lost count individual requests. Lost counts
	// actual dropped requests (arrivals beyond capacity), which is related
	// to but distinct from the loss-indicator average in Averages.
	Arrived, Serviced, Lost int64
	// AvgWait is the mean waiting time, in slices, of serviced requests
	// (0 when none were serviced).
	AvgWait float64
	// CommandCounts tallies issued commands.
	CommandCounts []int64
	// Occupancy is the fraction of slices spent in each composed state.
	Occupancy []float64
}

// Throughput returns serviced requests per slice.
func (s *Stats) Throughput() float64 {
	if s.Slices == 0 {
		return 0
	}
	return float64(s.Serviced) / float64(s.Slices)
}

// LossFraction returns the fraction of arrived requests that were dropped.
func (s *Stats) LossFraction() float64 {
	if s.Arrived == 0 {
		return 0
	}
	return float64(s.Lost) / float64(s.Arrived)
}

// Simulator runs a controller against a compiled system model.
type Simulator struct {
	model *core.Model
	ctrl  policy.Controller
	cfg   Config
	rng   *rand.Rand
	// spChains caches the provider's per-command CSR chains: the step loop
	// samples SP transitions from sparse rows (Provider does not expose
	// dense rows, and re-compressing per step would dominate the run).
	spChains []*mat.CSR
}

// New builds a simulator for the compiled model m driven by ctrl.
func New(m *core.Model, ctrl policy.Controller, cfg Config) (*Simulator, error) {
	sys := m.Sys
	if cfg.Initial.SP < 0 || cfg.Initial.SP >= sys.SP.N() ||
		cfg.Initial.SR < 0 || cfg.Initial.SR >= sys.SR.N() ||
		cfg.Initial.Q < 0 || cfg.Initial.Q > sys.QueueCap {
		return nil, fmt.Errorf("sim: initial state %+v out of range", cfg.Initial)
	}
	if cfg.SRStateOf == nil {
		maxSR := sys.SR.N() - 1
		cfg.SRStateOf = func(arrivals int) int {
			if arrivals > maxSR {
				return maxSR
			}
			return arrivals
		}
	}
	chains := make([]*mat.CSR, sys.SP.A())
	for a := range chains {
		chains[a] = sys.SP.Chain(a)
	}
	return &Simulator{
		model:    m,
		ctrl:     ctrl,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		spChains: chains,
	}, nil
}

// run is the common loop. nextArrivals returns the arrival count of slice
// t+1 and the corresponding SR state, or done=true to stop.
type arrivalSource func(t int64) (arrivals int, srState int, done bool)

// accumulator tracks running sums for one or more sessions.
type accumulator struct {
	slices     int64
	metricSums map[string]float64
	arrived    int64
	serviced   int64
	lost       int64
	waitSum    int64
	cmdCounts  []int64
	occupancy  []int64
}

func newAccumulator(m *core.Model) *accumulator {
	sums := make(map[string]float64, len(m.Metrics))
	for name := range m.Metrics {
		sums[name] = 0
	}
	return &accumulator{
		metricSums: sums,
		cmdCounts:  make([]int64, m.A),
		occupancy:  make([]int64, m.N),
	}
}

func (ac *accumulator) stats(sessions int) *Stats {
	st := &Stats{
		Slices:        ac.slices,
		Sessions:      sessions,
		Averages:      make(map[string]float64, len(ac.metricSums)),
		Arrived:       ac.arrived,
		Serviced:      ac.serviced,
		Lost:          ac.lost,
		CommandCounts: ac.cmdCounts,
		Occupancy:     make([]float64, len(ac.occupancy)),
	}
	if ac.slices > 0 {
		for name, sum := range ac.metricSums {
			st.Averages[name] = sum / float64(ac.slices)
		}
		for i, c := range ac.occupancy {
			st.Occupancy[i] = float64(c) / float64(ac.slices)
		}
	}
	if ac.serviced > 0 {
		st.AvgWait = float64(ac.waitSum) / float64(ac.serviced)
	}
	return st
}

// session simulates one session: from the initial state until src reports
// done. The queue is tracked as a FIFO of arrival timestamps so waiting
// times are exact.
func (s *Simulator) session(ac *accumulator, src arrivalSource) {
	sys := s.model.Sys
	s.ctrl.Reset()
	st := s.cfg.Initial
	// Arrival timestamps of currently enqueued requests.
	fifo := make([]int64, 0, sys.QueueCap+1)
	for i := 0; i < st.Q; i++ {
		fifo = append(fifo, 0)
	}

	for t := int64(0); ; t++ {
		obs := policy.Observation{
			SP:       st.SP,
			SR:       st.SR,
			Queue:    st.Q,
			Requests: sys.SR.Requests[st.SR],
			Time:     t,
		}
		cmd := s.ctrl.Command(obs)
		if cmd < 0 || cmd >= s.model.A {
			panic(fmt.Sprintf("sim: controller issued command %d outside [0,%d)", cmd, s.model.A))
		}

		// Metric accounting at the current (state, command) pair.
		idx := sys.Index(st)
		for name, table := range s.model.Metrics {
			ac.metricSums[name] += table.At(idx, cmd)
		}
		ac.cmdCounts[cmd]++
		ac.occupancy[idx]++
		ac.slices++

		// Advance the environment.
		arrivals, srNext, done := src(t)
		if done {
			return
		}

		// SP transition row for the *current* SR state (coupling hook).
		var spNext int
		if row := s.hookRow(st.SP, cmd, st.SR); row != nil {
			spNext = sampleRow(s.rng, row)
		} else {
			cols, vals := s.spChains[cmd].RowNZ(st.SP)
			spNext = sampleRowNZ(s.rng, cols, vals)
		}

		// Queue update per Eq. 3, with exact request accounting.
		b := sys.SP.RateAt(st.SP, cmd)
		ac.arrived += int64(arrivals)
		q := len(fifo)
		switch {
		case arrivals == 0 && q == 0:
			// Nothing to do.
		case arrivals == 0:
			if s.rng.Float64() < b {
				ac.serviced++
				ac.waitSum += t + 1 - fifo[0]
				fifo = fifo[1:]
			}
		case q+arrivals > sys.QueueCap:
			// Overflow corner case: the composed chain moves to q'=Q with
			// probability 1 (Eq. 3) whether or not a service completes this
			// slice — q+r−1 ≥ Q in every overflow — so the service event is
			// still drawn: it changes only the request accounting (one more
			// served, one fewer dropped), keeping the drop counter
			// consistent with the analytic MetricDrops table.
			remaining := arrivals
			if s.rng.Float64() < b {
				ac.serviced++
				if q > 0 {
					ac.waitSum += t + 1 - fifo[0]
					fifo = fifo[1:]
				} else {
					remaining-- // an incoming request is served directly
				}
			}
			space := sys.QueueCap - len(fifo)
			for i := 0; i < space && i < remaining; i++ {
				fifo = append(fifo, t+1)
			}
			if remaining > space {
				ac.lost += int64(remaining - space)
			}
		default:
			for i := 0; i < arrivals; i++ {
				fifo = append(fifo, t+1)
			}
			if s.rng.Float64() < b {
				ac.serviced++
				ac.waitSum += t + 1 - fifo[0]
				fifo = fifo[1:]
			}
		}

		st = core.State{SP: spNext, SR: srNext, Q: len(fifo)}
	}
}

// hookRow returns the SPRow override for (p, cmd, r), or nil when the
// system has no hook (or the hook defers to the commanded dynamics).
func (s *Simulator) hookRow(p, cmd, r int) mat.Vector {
	if s.model.Sys.SPRow == nil {
		return nil
	}
	return s.model.Sys.SPRow(p, cmd, r)
}

func sampleRow(rng *rand.Rand, row []float64) int {
	u := rng.Float64()
	for i, p := range row {
		u -= p
		if u <= 0 {
			return i
		}
	}
	return len(row) - 1
}

// sampleRowNZ samples from a sparse probability row (indices cols, masses
// vals). Implicit zeros carry no mass, so any residual u lands on the last
// stored entry, mirroring sampleRow's tail clamp.
func sampleRowNZ(rng *rand.Rand, cols []int, vals []float64) int {
	u := rng.Float64()
	for k, p := range vals {
		u -= p
		if u <= 0 {
			return cols[k]
		}
	}
	return cols[len(cols)-1]
}

// Run simulates a single fixed-horizon session of the given number of
// slices in model-driven mode (the SR evolves by its Markov chain).
func (s *Simulator) Run(slices int64) (*Stats, error) {
	if slices <= 0 {
		return nil, fmt.Errorf("sim: horizon %d must be positive", slices)
	}
	ac := newAccumulator(s.model)
	sys := s.model.Sys
	sr := s.cfg.Initial.SR
	s.session(ac, func(t int64) (int, int, bool) {
		if t+1 >= slices {
			return 0, 0, true
		}
		sr = sampleRow(s.rng, sys.SR.P.Row(sr))
		return sys.SR.Requests[sr], sr, false
	})
	return ac.stats(1), nil
}

// RunSessions simulates the paper's stopping-time model: sessions end with
// probability 1−alpha at each slice (geometric horizon, Fig. 5), and the
// reported averages aggregate over all sessions. This estimates the same
// quantities as the optimizer's discounted per-slice averages.
func (s *Simulator) RunSessions(alpha float64, sessions int) (*Stats, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("sim: alpha %g outside [0,1)", alpha)
	}
	if sessions <= 0 {
		return nil, fmt.Errorf("sim: session count %d must be positive", sessions)
	}
	ac := newAccumulator(s.model)
	sys := s.model.Sys
	for i := 0; i < sessions; i++ {
		sr := s.cfg.Initial.SR
		s.session(ac, func(t int64) (int, int, bool) {
			if s.rng.Float64() >= alpha {
				return 0, 0, true
			}
			sr = sampleRow(s.rng, sys.SR.P.Row(sr))
			return sys.SR.Requests[sr], sr, false
		})
	}
	return ac.stats(sessions), nil
}

// RunTrace simulates one session driven by a discretized arrival trace:
// arrivals[t] requests arrive during slice t+1 (slice 0 starts from the
// configured initial state). The controller observes the quantized SR state
// given by Config.SRStateOf.
func (s *Simulator) RunTrace(arrivals []int) (*Stats, error) {
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	for i, a := range arrivals {
		if a < 0 {
			return nil, fmt.Errorf("sim: negative arrival count %d at slice %d", a, i)
		}
	}
	ac := newAccumulator(s.model)
	s.session(ac, func(t int64) (int, int, bool) {
		if t >= int64(len(arrivals))-1 {
			return 0, 0, true
		}
		a := arrivals[t+1]
		return a, s.cfg.SRStateOf(a), false
	})
	return ac.stats(1), nil
}
