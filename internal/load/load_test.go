package load

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/server"
)

func testServer(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Config{CacheSize: 256})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}

// TestClosedLoopRun drives the full default mix request-bounded against an
// in-process server and checks the accounting adds up.
func TestClosedLoopRun(t *testing.T) {
	base := testServer(t)
	const want = 60
	res, err := Run(context.Background(), Config{
		BaseURL:     base,
		Model:       "disk",
		Workers:     3,
		MaxRequests: want,
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests != want {
		t.Fatalf("completed %d requests, want %d", res.Requests, want)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors (first-class traffic against a healthy server)", res.Errors)
	}
	if res.Latency.Count() != want {
		t.Errorf("latency histogram holds %d observations, want %d", res.Latency.Count(), want)
	}
	var kindTotal int64
	for _, ks := range res.Kinds {
		kindTotal += ks.Requests
		if ks.Requests != ks.Latency.Count() {
			t.Errorf("kind accounting mismatch: %d requests, %d latencies", ks.Requests, ks.Latency.Count())
		}
	}
	if kindTotal != want {
		t.Errorf("per-kind requests sum to %d, want %d", kindTotal, want)
	}
	if res.Kinds[KindHit].Requests == 0 {
		t.Errorf("default mix issued no hit traffic")
	}
	// The hit stream collapses onto one fingerprint: most of it is served
	// from cache.
	if res.CacheModes["hit"] == 0 {
		t.Errorf("no exact hits observed in %v", res.CacheModes)
	}
	if res.QuantileMS(0.99) <= 0 || res.Throughput() <= 0 {
		t.Errorf("degenerate measurement: p99 %g ms, %g req/s", res.QuantileMS(0.99), res.Throughput())
	}
	if res.QuantileMS(0.5) > res.QuantileMS(0.99) {
		t.Errorf("p50 %g > p99 %g", res.QuantileMS(0.5), res.QuantileMS(0.99))
	}
}

// TestOpenLoopRun: with Rate set, arrivals are scheduled rather than
// completion-driven, and overload is shed instead of queued.
func TestOpenLoopRun(t *testing.T) {
	base := testServer(t)
	res, err := Run(context.Background(), Config{
		BaseURL:  base,
		Workers:  2,
		Duration: 300 * time.Millisecond,
		Rate:     200,
		Mix:      Mix{Hit: 1},
		Seed:     3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.OpenLoop {
		t.Fatalf("open-loop run not flagged")
	}
	if res.Requests == 0 {
		t.Fatalf("no requests completed")
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Errorf("missing BaseURL accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x"}); err == nil {
		t.Errorf("unbounded run accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", MaxRequests: 1, Mix: Mix{Hit: -1, Warm: 1}}); err == nil {
		t.Errorf("non-positive mix accepted")
	}
}

// TestBenchEntryAndMerge: results render as benchjson-compatible entries
// and merge into an existing BENCH.json without disturbing other entries.
func TestBenchEntryAndMerge(t *testing.T) {
	base := testServer(t)
	res, err := Run(context.Background(), Config{
		BaseURL:     base,
		Workers:     2,
		MaxRequests: 10,
		Mix:         Mix{Hit: 1},
		Seed:        11,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	e := res.BenchEntry()
	if e.Name != "LoadServed/conc=2" {
		t.Errorf("entry name %q", e.Name)
	}
	for _, m := range []string{"ns/op", "req_per_s", "p50_ms", "p90_ms", "p99_ms", "errors"} {
		if _, ok := e.Metrics[m]; !ok {
			t.Errorf("entry missing metric %q", m)
		}
	}
	if e.Metrics["p99_ms"] <= 0 || e.Metrics["req_per_s"] <= 0 {
		t.Errorf("degenerate metrics %v", e.Metrics)
	}

	path := filepath.Join(t.TempDir(), "BENCH.json")
	seed := BenchReport{Benchmarks: []BenchEntry{
		{Package: "repro/internal/core", Name: "OptimizeDisk", Iterations: 1, Metrics: map[string]float64{"ns/op": 123}},
		{Package: benchPackage, Name: "LoadServed/conc=2", Iterations: 1, Metrics: map[string]float64{"ns/op": 1, "p99_ms": 9999}},
	}}
	data, _ := json.Marshal(&seed)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MergeBench(path, []BenchEntry{e}); err != nil {
		t.Fatalf("MergeBench: %v", err)
	}
	var got BenchReport
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("merged file unparseable: %v", err)
	}
	if len(got.Benchmarks) != 2 {
		t.Fatalf("%d entries after merge, want 2 (replace, not append)", len(got.Benchmarks))
	}
	byName := make(map[string]BenchEntry)
	for _, b := range got.Benchmarks {
		byName[b.Name] = b
	}
	if b, ok := byName["OptimizeDisk"]; !ok || b.Metrics["ns/op"] != 123 {
		t.Errorf("unrelated entry disturbed: %+v", byName)
	}
	if byName["LoadServed/conc=2"].Metrics["p99_ms"] == 9999 {
		t.Errorf("stale LoadServed entry survived the merge")
	}

	// Merging into a missing file starts a fresh report.
	fresh := filepath.Join(t.TempDir(), "BENCH.json")
	if err := MergeBench(fresh, []BenchEntry{e}); err != nil {
		t.Fatalf("MergeBench (fresh): %v", err)
	}
}
