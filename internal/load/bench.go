package load

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
)

// BenchEntry mirrors one cmd/benchjson benchmark record, so load results
// merge into the same BENCH.json document CI tracks across PRs.
type BenchEntry struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// BenchReport mirrors the BENCH.json document shape.
type BenchReport struct {
	Benchmarks []BenchEntry `json:"benchmarks"`
}

// benchPackage namespaces load entries in BENCH.json.
const benchPackage = "repro/cmd/dpmload"

// BenchEntry renders the run as one benchmark entry named
// "LoadServed/conc=N" (no Benchmark prefix — benchjson strips it from `go
// test` output, so merged names match). ns/op is the mean request latency;
// the headline serving metrics are req_per_s and the latency quantiles in
// milliseconds.
func (r *Result) BenchEntry() BenchEntry {
	e := BenchEntry{
		Package:    benchPackage,
		Name:       fmt.Sprintf("LoadServed/conc=%d", r.Concurrency),
		Iterations: r.Requests,
		Metrics: map[string]float64{
			"ns/op":     r.Latency.Mean(),
			"req_per_s": r.Throughput(),
			"p50_ms":    r.QuantileMS(0.50),
			"p90_ms":    r.QuantileMS(0.90),
			"p99_ms":    r.QuantileMS(0.99),
			"errors":    float64(r.Errors),
		},
	}
	if r.OpenLoop {
		e.Name += "/open"
		e.Metrics["shed"] = float64(r.Shed)
	}
	return e
}

// MergeBench folds entries into the BENCH.json document at path: an entry
// replaces any existing benchmark with the same package and name, the rest
// of the document is preserved, and the result stays sorted the way
// benchjson writes it. A missing file starts an empty report.
func MergeBench(path string, entries []BenchEntry) error {
	var report BenchReport
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("load: parsing %s: %w", path, err)
		}
	case errors.Is(err, fs.ErrNotExist):
	default:
		return err
	}
	for _, e := range entries {
		replaced := false
		for i := range report.Benchmarks {
			if report.Benchmarks[i].Package == e.Package && report.Benchmarks[i].Name == e.Name {
				report.Benchmarks[i] = e
				replaced = true
				break
			}
		}
		if !replaced {
			report.Benchmarks = append(report.Benchmarks, e)
		}
	}
	sort.Slice(report.Benchmarks, func(i, j int) bool {
		a, b := report.Benchmarks[i], report.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	out, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
