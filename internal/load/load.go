// Package load is a closed-loop (and optionally open-loop) load generator
// for the dpmserved HTTP API: it drives a configurable mix of exact-hit,
// warm-start, cold-solve and observe traffic at a fixed concurrency and
// measures the latency distribution with mergeable log-bucketed histograms
// (internal/obs). cmd/dpmload is the CLI; the package is also driven
// in-process by tests against httptest servers.
//
// Traffic kinds map onto the server's cache regimes:
//
//   - "hit": the same optimize query every time — after the first solve,
//     every request is an exact fingerprint hit (no simplex work).
//   - "warm": a fresh bound value drawn from a continuous range on every
//     request — same LP family, so each solve warm-starts from the nearest
//     cached basis.
//   - "cold": a fresh discount horizon on every request — a new query
//     family, so each solve starts from scratch.
//   - "observe": a batch of workload slice counts into the model's online
//     adapter (drift-triggered re-solves ride on these).
//
// In closed-loop mode each of Workers goroutines issues its next request as
// soon as the previous response lands, so offered load adapts to service
// rate (throughput-bounded). With Rate > 0 the generator switches to open
// loop: arrivals fire on a fixed schedule regardless of completions, and
// arrivals that find every worker busy are counted as shed rather than
// queued without bound.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Kind names, also the keys of Result.Kinds.
const (
	KindHit     = "hit"
	KindWarm    = "warm"
	KindCold    = "cold"
	KindObserve = "observe"
)

// Mix weights the traffic kinds; zero-valued kinds are not issued. The zero
// Mix selects the default 6:2:1:1 hit:warm:cold:observe blend (a serving
// cache is useful exactly when most traffic repeats).
type Mix struct {
	Hit, Warm, Cold, Observe int
}

func (m Mix) orDefault() Mix {
	if m == (Mix{}) {
		return Mix{Hit: 6, Warm: 2, Cold: 1, Observe: 1}
	}
	return m
}

func (m Mix) total() int { return m.Hit + m.Warm + m.Cold + m.Observe }

// Config tunes one load run. BaseURL is required; everything else defaults.
type Config struct {
	BaseURL string
	Model   string // target model id or name (default "disk")

	Workers     int           // concurrency (default 4)
	Duration    time.Duration // stop after this long (0: unbounded)
	MaxRequests int           // stop after this many requests (0: unbounded)
	Rate        float64       // open-loop arrivals/s across all workers (0: closed loop)
	Mix         Mix
	Timeout     time.Duration // per-request budget (default 30s)
	Seed        int64         // rng seed (default 1)
	Client      *http.Client  // default http.DefaultClient with Timeout

	// ProgressEvery, when positive and Progress is set, emits an interim
	// ProgressReport on that interval while the run is in flight. The
	// report is assembled by merging the workers' private histograms into a
	// scratch one (histogram recording is atomic, so the merge races with
	// nothing), leaving the measurement path untouched.
	ProgressEvery time.Duration
	Progress      func(ProgressReport)
}

// ProgressReport is one interim snapshot of a running load: completed
// requests, offered rate so far, and latency quantiles so far.
type ProgressReport struct {
	Elapsed   time.Duration
	Requests  int64
	ReqPerSec float64
	P50MS     float64
	P99MS     float64
}

// KindStats is the per-kind slice of a Result.
type KindStats struct {
	Requests int64
	Errors   int64
	Latency  *obs.Histogram // nanoseconds
}

// Result is one load run's measurement.
type Result struct {
	Concurrency int
	OpenLoop    bool
	Elapsed     time.Duration
	Requests    int64
	Errors      int64
	Shed        int64 // open-loop arrivals dropped because all workers were busy
	Latency     *obs.Histogram
	Kinds       map[string]*KindStats
	CacheModes  map[string]int64 // optimize responses by reported cache mode
}

// Throughput returns completed requests per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// QuantileMS returns the q-quantile of the overall latency distribution in
// milliseconds.
func (r *Result) QuantileMS(q float64) float64 { return r.Latency.Quantile(q) / 1e6 }

// worker accumulates into private histograms, merged into the shared result
// at the end — the merge path obs.Histogram promises, exercised for real.
type worker struct {
	rng     *rand.Rand
	latency *obs.Histogram
	kinds   map[string]*KindStats
	errs    int64
	n       int64
	modes   map[string]int64
}

// Run executes the load run until the duration elapses, the request budget
// is exhausted, or ctx is cancelled — whichever comes first.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("load: BaseURL required")
	}
	if cfg.Model == "" {
		cfg.Model = "disk"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Duration <= 0 && cfg.MaxRequests <= 0 {
		return nil, fmt.Errorf("load: need Duration or MaxRequests to bound the run")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.Timeout}
	}
	mix := cfg.Mix.orDefault()
	if mix.total() <= 0 {
		return nil, fmt.Errorf("load: mix has no positive weights")
	}

	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	res := &Result{
		Concurrency: cfg.Workers,
		OpenLoop:    cfg.Rate > 0,
		Latency:     obs.NewLatencyHistogram(),
		Kinds:       make(map[string]*KindStats),
		CacheModes:  make(map[string]int64),
	}
	for _, k := range []string{KindHit, KindWarm, KindCold, KindObserve} {
		res.Kinds[k] = &KindStats{Latency: obs.NewLatencyHistogram()}
	}

	var issued atomic.Int64 // requests started, enforcing MaxRequests
	claim := func() bool {
		if cfg.MaxRequests <= 0 {
			return ctx.Err() == nil
		}
		return ctx.Err() == nil && issued.Add(1) <= int64(cfg.MaxRequests)
	}

	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		workers[i] = &worker{
			rng:     rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			latency: obs.NewLatencyHistogram(),
			kinds:   make(map[string]*KindStats),
			modes:   make(map[string]int64),
		}
		for _, k := range []string{KindHit, KindWarm, KindCold, KindObserve} {
			workers[i].kinds[k] = &KindStats{Latency: obs.NewLatencyHistogram()}
		}
	}

	started := time.Now()
	progressDone := make(chan struct{})
	var progressWG sync.WaitGroup
	if cfg.ProgressEvery > 0 && cfg.Progress != nil {
		progressWG.Add(1)
		go func() {
			defer progressWG.Done()
			tick := time.NewTicker(cfg.ProgressEvery)
			defer tick.Stop()
			for {
				select {
				case <-progressDone:
					return
				case <-tick.C:
				}
				// Worker counters (w.n) are unsynchronized by design; the
				// merged histogram's count is the race-free request total.
				agg := obs.NewLatencyHistogram()
				for _, w := range workers {
					_ = agg.Merge(w.latency) // identical layouts; cannot fail
				}
				snap := agg.Snapshot()
				rp := ProgressReport{
					Elapsed:  time.Since(started),
					Requests: snap.Count,
					P50MS:    snap.Quantile(0.50) / 1e6,
					P99MS:    snap.Quantile(0.99) / 1e6,
				}
				if s := rp.Elapsed.Seconds(); s > 0 {
					rp.ReqPerSec = float64(snap.Count) / s
				}
				cfg.Progress(rp)
			}
		}()
	}
	var wg sync.WaitGroup
	if cfg.Rate > 0 {
		// Open loop: arrivals on a fixed schedule; a semaphore of Workers
		// slots models the serving concurrency, and arrivals that find no
		// free slot are shed (counted, not queued — unbounded queues would
		// turn the open loop back into a closed one with extra steps).
		sem := make(chan *worker, cfg.Workers)
		for _, w := range workers {
			sem <- w
		}
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
	arrivals:
		for ctx.Err() == nil {
			select {
			case <-ctx.Done():
				break arrivals
			case <-tick.C:
			}
			select {
			case w := <-sem:
				if !claim() {
					break arrivals
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					w.issue(ctx, cfg, mix)
					sem <- w
				}()
			default:
				// All workers busy: the arrival is shed, not queued.
				res.Shed++
			}
		}
	} else {
		for _, w := range workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for claim() {
					w.issue(ctx, cfg, mix)
				}
			}(w)
		}
	}
	wg.Wait()
	close(progressDone)
	progressWG.Wait()
	res.Elapsed = time.Since(started)

	for _, w := range workers {
		if err := res.Latency.Merge(w.latency); err != nil {
			return nil, err
		}
		res.Requests += w.n
		res.Errors += w.errs
		for k, ks := range w.kinds {
			dst := res.Kinds[k]
			dst.Requests += ks.Requests
			dst.Errors += ks.Errors
			if err := dst.Latency.Merge(ks.Latency); err != nil {
				return nil, err
			}
		}
		for m, n := range w.modes {
			res.CacheModes[m] += n
		}
	}
	return res, nil
}

// pick selects a traffic kind by mix weight.
func (w *worker) pick(mix Mix) string {
	n := w.rng.Intn(mix.total())
	switch {
	case n < mix.Hit:
		return KindHit
	case n < mix.Hit+mix.Warm:
		return KindWarm
	case n < mix.Hit+mix.Warm+mix.Cold:
		return KindCold
	}
	return KindObserve
}

// issue sends one request of a mix-chosen kind and records its latency.
func (w *worker) issue(ctx context.Context, cfg Config, mix Mix) {
	kind := w.pick(mix)
	path, body := w.request(kind, cfg.Model)
	t0 := time.Now()
	mode, err := post(ctx, cfg.Client, cfg.BaseURL+path, body)
	lat := time.Since(t0)

	w.n++
	w.latency.ObserveDuration(lat)
	ks := w.kinds[kind]
	ks.Requests++
	ks.Latency.ObserveDuration(lat)
	if err != nil {
		// A cancelled run's in-flight request is not a server failure.
		if ctx.Err() != nil {
			w.n--
			ks.Requests--
			return
		}
		w.errs++
		ks.Errors++
		return
	}
	if mode != "" {
		w.modes[mode]++
	}
}

// request builds one body for the chosen kind.
func (w *worker) request(kind, model string) (string, any) {
	switch kind {
	case KindHit:
		// One fixed query: everything after the first solve is an exact hit.
		return "/v1/optimize", optimizeBody{
			Model:  model,
			Bounds: []boundSpec{{Metric: "penalty", Rel: "<=", Value: 1.5}},
		}
	case KindWarm:
		// Fresh bound value, same family: warm-started solves.
		v := 1.2 + 1.3*w.rng.Float64()
		return "/v1/optimize", optimizeBody{
			Model:  model,
			Bounds: []boundSpec{{Metric: "penalty", Rel: "<=", Value: v}},
		}
	case KindCold:
		// Fresh horizon, fresh family: cold solves.
		h := 1e4 * (1 + 99*w.rng.Float64())
		return "/v1/optimize", optimizeBody{
			Model:   model,
			Horizon: h,
			Bounds:  []boundSpec{{Metric: "penalty", Rel: "<=", Value: 1.5}},
		}
	}
	// Observe: a small slice batch with no optimization options, so every
	// request is compatible with the adapter the first one created.
	counts := make([]int, 32)
	for i := range counts {
		counts[i] = w.rng.Intn(4)
	}
	return "/v1/models/" + model + "/observe", observeBody{Counts: counts}
}

// Minimal wire mirrors (kept local so the generator exercises the server
// purely over HTTP, like an external client).
type boundSpec struct {
	Metric string  `json:"metric"`
	Rel    string  `json:"rel"`
	Value  float64 `json:"value"`
}

type optimizeBody struct {
	Model   string      `json:"model"`
	Horizon float64     `json:"horizon,omitempty"`
	Bounds  []boundSpec `json:"bounds,omitempty"`
}

type observeBody struct {
	Counts []int `json:"counts"`
}

// post issues one JSON POST and returns the response's cache mode (empty
// for non-optimize responses). Any non-2xx status is an error.
func post(ctx context.Context, client *http.Client, url string, body any) (string, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var out struct {
		Cache string `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("%s: decoding response: %w", url, err)
	}
	return out.Cache, nil
}
