// Package online is the streaming adaptation subsystem: it turns live
// per-slice request counts into refreshed optimal policies without ever
// rebuilding the policy LP from scratch.
//
// The paper optimizes a policy for one stationary service-requester model,
// but real workloads drift. This package closes the loop the related work
// (Q-DPM; Mandal et al.) closes offline-online: a streaming Estimator
// maintains the k-memory SR transition estimates of trace.ExtractSR
// incrementally, with exponential forgetting and O(1) work per slice; an
// Adapter monitors the estimate against the SR the currently served policy
// was solved for (maximum per-row total-variation distance, over rows with
// enough decayed evidence) and, when the drift exceeds a threshold,
// re-solves under a bounded wall-clock budget — warm-starting the simplex
// from the previous optimal basis and revising the resident lp.Problem in
// place through core.PatchFrequencyLP instead of reassembling it.
//
// The three refresh tiers, cheapest first:
//
//	patched + warm   coefficients rewritten in place, phase 1 skipped
//	rebuilt + warm   new LP assembly, previous basis still reused
//	rebuilt + cold   full two-phase solve (first refresh, pattern change)
//
// internal/server exposes the loop as POST /v1/models/{id}/observe;
// cmd/dpmfeed streams synthetic drifting traces at a daemon.
package online

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mat"
)

// renormAt bounds the growing per-observation weight; when it is exceeded
// every tally and the weight are rescaled (amortized O(1) per slice).
const renormAt = 1e12

// Estimator incrementally maintains the k-memory service-requester model of
// trace.ExtractSR over a count stream, with exponential forgetting: the
// transition mass of a slice observed t slices ago is discounted by
// decay^t, so the estimate tracks a drifting workload with an effective
// window of 1/(1−decay) slices (decay 1 reproduces ExtractSR's plain
// counts). Ingesting one slice is O(1): instead of decaying every tally
// each slice, new observations carry a geometrically growing weight and the
// ratios that define the transition probabilities cancel the global scale.
type Estimator struct {
	memory int
	decay  float64
	mask   int
	state  int
	seeded int     // bits consumed into the initial history register
	slices int     // transitions observed (after seeding)
	weight float64 // weight of the next observation
	tally  [][2]float64
}

// NewEstimator returns an estimator for history length memory (the
// extractor's k, 2^k SR states) and per-slice decay factor in (0, 1].
func NewEstimator(memory int, decay float64) (*Estimator, error) {
	if memory < 1 || memory > 16 {
		return nil, fmt.Errorf("online: memory %d outside [1,16]", memory)
	}
	if decay <= 0 || decay > 1 {
		return nil, fmt.Errorf("online: decay %g outside (0,1]", decay)
	}
	return &Estimator{
		memory: memory,
		decay:  decay,
		mask:   1<<memory - 1,
		weight: 1,
		tally:  make([][2]float64, 1<<memory),
	}, nil
}

// Memory returns the history length k.
func (e *Estimator) Memory() int { return e.memory }

// States returns the number of SR states, 2^k.
func (e *Estimator) States() int { return 1 << e.memory }

// Slices returns the number of transitions observed so far (the first k
// slices only seed the history register, exactly like trace.ExtractSR).
func (e *Estimator) Slices() int { return e.slices }

// Observe ingests one per-slice request count in O(1). Negative counts are
// rejected; counts above one binarize, matching the paper's extractor.
func (e *Estimator) Observe(count int) error {
	if count < 0 {
		return fmt.Errorf("online: negative request count %d", count)
	}
	b := 0
	if count > 0 {
		b = 1
	}
	if e.seeded < e.memory {
		e.state = (e.state<<1 | b) & e.mask
		e.seeded++
		return nil
	}
	e.tally[e.state][b] += e.weight
	e.state = (e.state<<1 | b) & e.mask
	e.slices++
	if e.decay < 1 {
		e.weight /= e.decay
		if e.weight > renormAt {
			inv := 1 / e.weight
			for s := range e.tally {
				e.tally[s][0] *= inv
				e.tally[s][1] *= inv
			}
			e.weight = 1
		}
	}
	return nil
}

// lastWeight returns the weight the most recent observation carried (the
// unit Evidence is measured in).
func (e *Estimator) lastWeight() float64 {
	if e.decay < 1 {
		return e.weight * e.decay
	}
	return e.weight
}

// Evidence returns the decayed transition mass observed out of SR state s,
// in units of the most recent slice's weight: a row that saw w slices ago
// contributes decay^w. Under steady streaming it approaches (stationary
// visit probability of s)/(1−decay); rows below a few units are dominated
// by the uniform fallback and should not drive drift decisions.
func (e *Estimator) Evidence(s int) float64 {
	if e.slices == 0 {
		return 0
	}
	t := e.tally[s]
	return (t[0] + t[1]) / e.lastWeight()
}

// PBusy returns the current estimate of the probability that state s's next
// slice is busy. Unseen histories fall back to 0.5, the same uniform
// distribution trace.ExtractSR assigns them.
func (e *Estimator) PBusy(s int) float64 {
	t := e.tally[s]
	total := t[0] + t[1]
	if total == 0 {
		return 0.5
	}
	return t[1] / total
}

// SR materializes the current estimate as a core.ServiceRequester with
// exactly the structure trace.ExtractSR produces: 2^k states named by their
// bit history, transitions on the two shift successors, requests equal to
// the newest bit. It errors before the first transition is observed.
func (e *Estimator) SR(name string) (*core.ServiceRequester, error) {
	if e.slices == 0 {
		return nil, fmt.Errorf("online: no transitions observed yet")
	}
	n := e.States()
	p := mat.NewMatrix(n, n)
	states := make([]string, n)
	reqs := make([]int, n)
	for s := 0; s < n; s++ {
		succ0 := (s << 1) & e.mask
		pb := e.PBusy(s)
		p.Add(s, succ0, 1-pb)
		p.Add(s, succ0|1, pb)
		states[s] = fmt.Sprintf("%0*b", e.memory, s)
		reqs[s] = s & 1
	}
	sr := &core.ServiceRequester{Name: name, States: states, P: p, Requests: reqs}
	if err := sr.Validate(); err != nil {
		return nil, fmt.Errorf("online: estimated model invalid: %w", err)
	}
	return sr, nil
}

// Drift returns the largest per-row total-variation distance between the
// current estimate and the transition rows of served, restricted to rows
// whose decayed Evidence is at least minEvidence (so unseen histories,
// which both sides fill in by convention, cannot fake drift). served must
// have the estimator's 2^k states in extractor order — in the adaptation
// loop it is simply the SR of the previous refresh.
func (e *Estimator) Drift(served *core.ServiceRequester, minEvidence float64) (float64, error) {
	_, tv, err := e.DriftAdaptive(served, minEvidence, 1, 0)
	return tv, err
}

// rowTV returns the total-variation distance between row s of the current
// estimate and row s of served.
func (e *Estimator) rowTV(served *core.ServiceRequester, s int) float64 {
	n := e.States()
	succ0 := (s << 1) & e.mask
	succ1 := succ0 | 1
	pb := e.PBusy(s)
	tv := math.Abs((1-pb)-served.P.At(s, succ0)) + math.Abs(pb-served.P.At(s, succ1))
	for j := 0; j < n; j++ {
		if j != succ0 && j != succ1 {
			tv += math.Abs(served.P.At(s, j))
		}
	}
	return tv / 2
}

// DriftAdaptive is the evidence-aware drift measure: each row's TV distance
// is compared against its own trigger threshold + z·SE(s), where SE(s) =
// sqrt(p̃(1−p̃)/Evidence(s)) is the sampling noise of the row's busy-bit
// estimate (p̃ Laplace-smoothed so saturated rows keep a nonzero noise
// floor). A well-observed row therefore triggers on small deviations while
// a thinly observed one must move far beyond its own noise — the per-row
// scaling that one global threshold cannot express. Returned are the worst
// ratio TV(s)/threshold(s) over rows with at least minEvidence mass (≥ 1
// means some row exceeded its trigger) and the raw TV of that worst row.
// z = 0 degenerates to the global rule: ratio = maxTV/threshold.
func (e *Estimator) DriftAdaptive(served *core.ServiceRequester, minEvidence, threshold, z float64) (ratio, tv float64, err error) {
	n := e.States()
	if served.N() != n {
		return 0, 0, fmt.Errorf("online: served SR has %d states, estimator %d", served.N(), n)
	}
	if threshold <= 0 || z < 0 {
		return 0, 0, fmt.Errorf("online: invalid adaptive drift parameters threshold=%g z=%g", threshold, z)
	}
	for s := 0; s < n; s++ {
		ev := e.Evidence(s)
		if ev < minEvidence {
			continue
		}
		rtv := e.rowTV(served, s)
		thr := threshold
		if z > 0 && ev > 0 {
			pb := e.PBusy(s)
			smoothed := (ev*pb + 0.5) / (ev + 1)
			thr += z * math.Sqrt(smoothed*(1-smoothed)/ev)
		}
		if r := rtv / thr; r > ratio {
			ratio, tv = r, rtv
		}
	}
	return ratio, tv, nil
}
