package online_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/trace"
)

// BenchmarkOnlineRefresh is the record of what the online adaptation path
// saves per drift refresh on the paper's disk case study: the same drifted
// instance solved (a) the adapter's way — the resident LP's coefficients
// rewritten in place by core.PatchFrequencyLP and the simplex warm-started
// from the previous optimal basis — and (b) from scratch — System.Build,
// BuildFrequencyLP, cold two-phase solve. Pivot counts are reported next to
// wall time; the gap between the two legs is the benchtrend headline the
// online subsystem is accountable for.
func BenchmarkOnlineRefresh(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	srPrev, err := trace.ExtractSR("prev", trace.OnOff(rng, 20000, 0.05, 0.22), 1)
	if err != nil {
		b.Fatal(err)
	}
	srNext, err := trace.ExtractSR("next", trace.OnOff(rng, 20000, 0.09, 0.16), 1)
	if err != nil {
		b.Fatal(err)
	}
	opts := diskOpts()

	// The resident state a drift refresh starts from: the previous SR's
	// model, LP and optimal basis.
	mPrev, err := devices.DiskSystem(srPrev).Build()
	if err != nil {
		b.Fatal(err)
	}
	prob, err := core.BuildFrequencyLP(mPrev, opts)
	if err != nil {
		b.Fatal(err)
	}
	prev, err := core.OptimizeProblemCtx(context.Background(), mPrev, opts, prob)
	if err != nil {
		b.Fatal(err)
	}
	mNext, err := devices.DiskSystem(srNext).Build()
	if err != nil {
		b.Fatal(err)
	}

	b.Run("patched-warm", func(b *testing.B) {
		warm := opts
		warm.WarmBasis = prev.Basis
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := core.PatchFrequencyLP(prob, mNext, opts); err != nil {
				b.Fatal(err)
			}
			res, err := core.OptimizeProblemCtx(context.Background(), mNext, warm, prob)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				if !res.WarmStarted {
					b.Fatal("warm leg fell back to a cold solve")
				}
				b.ReportMetric(float64(res.LPIterations), "pivots")
			}
		}
	})
	b.Run("rebuild-cold", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := devices.DiskSystem(srNext).Build()
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Optimize(m, opts)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(res.LPIterations), "pivots")
			}
		}
	})
}
