package online

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/obs"
)

// Config tunes an Adapter. The zero value of any field selects the
// documented default.
type Config struct {
	// Memory is the extractor history length k (default 1: the paper's
	// two-state workload model).
	Memory int
	// Decay is the estimator's per-slice forgetting factor in (0,1]
	// (default 0.995, an effective window of ~200 slices).
	Decay float64
	// DriftThreshold is the maximum per-row total-variation distance
	// between the estimate and the served SR that is tolerated before a
	// re-solve is scheduled (default 0.05).
	DriftThreshold float64
	// DriftZ makes the trigger per-row adaptive: row s re-solves when its
	// TV distance exceeds DriftThreshold + DriftZ·SE(s), where SE(s) is the
	// sampling noise of the row's estimate under its decayed evidence
	// (Estimator.DriftAdaptive). Thinly observed rows must therefore move
	// beyond their own noise while well-observed rows keep the tight global
	// threshold — fewer spurious re-solves on bursty traces at the same
	// sensitivity on converged ones. Default 2 (a ~95% band); negative
	// restores the single global threshold (exactly DriftZ = 0).
	DriftZ float64
	// MinSlices is the number of observed transitions before the first
	// policy is solved (default 100).
	MinSlices int
	// MinEvidence is the decayed per-row transition mass below which a row
	// is excluded from the drift measure (default 8; rows near zero
	// evidence sit at the uniform fallback on both sides).
	MinEvidence float64
	// CheckEvery is the number of ingested slices between drift
	// evaluations once a policy is being served (default 32).
	CheckEvery int
	// SolveBudget bounds the wall-clock time of one re-solve; the simplex
	// is cancelled mid-pivot when it expires and the previous policy stays
	// in place (0: only the caller's context bounds the solve).
	SolveBudget time.Duration
	// PivotBudget bounds the simplex pivots of one re-solve — a
	// deterministic sibling of SolveBudget for deployments that meter work
	// rather than time. An exhausted budget surfaces as lp.BudgetExceeded
	// and is treated exactly like a cancelled refresh: counted in
	// FailedRefreshes, previous policy keeps serving (0: unlimited).
	PivotBudget int
}

// WithDefaults returns the configuration with every zero field replaced by
// its documented default — the exact configuration New will run with, so
// callers that must compare configurations across requests (the server's
// conflict detection) compare effective values, not raw zeros.
func (c Config) WithDefaults() Config {
	out := c
	if out.Memory == 0 {
		out.Memory = 1
	}
	if out.Decay == 0 {
		out.Decay = 0.995
	}
	if out.DriftThreshold == 0 {
		out.DriftThreshold = 0.05
	}
	if out.DriftZ == 0 {
		out.DriftZ = 2
	} else if out.DriftZ < 0 {
		out.DriftZ = -1 // canonical "disabled" so effective configs compare equal
	}
	if out.MinSlices == 0 {
		out.MinSlices = 100
	}
	if out.MinEvidence == 0 {
		out.MinEvidence = 8
	}
	if out.CheckEvery == 0 {
		out.CheckEvery = 32
	}
	return out
}

// Stats summarizes an Adapter's lifetime activity.
type Stats struct {
	// Slices is the total number of ingested slices (including the k that
	// seed the history register).
	Slices int64
	// Refreshes counts successful re-solves; DriftRefreshes the subset
	// triggered by drift (the rest is the initial solve).
	Refreshes, DriftRefreshes int
	// WarmStarted counts refreshes whose solve reused the previous basis.
	WarmStarted int
	// LPPatched counts refreshes served by the in-place coefficient patch;
	// LPRebuilt counts full BuildFrequencyLP assemblies (the first refresh,
	// plus any refresh whose sparsity pattern moved).
	LPPatched, LPRebuilt int
	// ModelPatched counts refreshes whose compiled model was revised in
	// place by core.PatchModel; ModelRebuilt counts full System.Build
	// compilations (the first refresh, plus any refresh whose composed
	// sparsity pattern moved).
	ModelPatched, ModelRebuilt int
	// FailedRefreshes counts re-solves that did not produce a policy
	// (infeasible window, budget exhausted); the previous policy remains.
	FailedRefreshes int
	// LastPivots and LastDrift describe the most recent refresh attempt.
	LastPivots int
	LastDrift  float64
}

// Outcome reports what one Observe call did.
type Outcome struct {
	// Ingested is the number of slices consumed.
	Ingested int
	// Drift is the measured drift at the last check in this call (0 when
	// no check ran).
	Drift float64
	// Refreshed reports that a new policy was installed; Trigger is
	// "initial" or "drift" when it was (or when a refresh was attempted).
	Refreshed bool
	Trigger   string
	// Patched reports the refresh revised the resident LP in place;
	// ModelPatched that the compiled model was revised in place too;
	// WarmStarted that its solve reused the previous optimal basis.
	Patched      bool
	ModelPatched bool
	WarmStarted  bool
	// Pivots is the simplex work of the refresh solve.
	Pivots int
	// Result is the installed optimization result (nil unless Refreshed).
	Result *core.Result
	// RefreshErr carries the failure of an attempted refresh that did not
	// install a policy; ingestion itself still succeeded.
	RefreshErr error
}

// Adapter is the drift controller: it owns a streaming Estimator, the
// resident frequency LP of the served model family, and the previous
// optimal basis, and re-solves — patch + warm-start — whenever the estimate
// drifts from the SR the current policy was optimized for. Safe for
// concurrent use; Observe serializes.
type Adapter struct {
	mu      sync.Mutex
	cfg     Config
	opts    core.Options
	rebuild func(*core.ServiceRequester) (*core.System, error)

	est        *Estimator
	sinceCheck int

	prob   *lp.Problem
	basis  *lp.Basis
	served *core.ServiceRequester
	sys    *core.System
	model  *core.Model
	result *core.Result
	stats  Stats
}

// New builds an Adapter. rebuild constructs the system for an estimated SR
// (typically the served model's system with its SR swapped); the SP, queue
// structure and option set must not change across rebuilds — that
// structural stability is what the patch path and warm starts exploit.
// opts.Initial is ignored (the uniform distribution is used) and evaluation
// is skipped, as in policy.Adaptive.
func New(rebuild func(*core.ServiceRequester) (*core.System, error), opts core.Options, cfg Config) (*Adapter, error) {
	if rebuild == nil {
		return nil, fmt.Errorf("online: nil rebuild function")
	}
	cfg = cfg.WithDefaults()
	est, err := NewEstimator(cfg.Memory, cfg.Decay)
	if err != nil {
		return nil, err
	}
	if cfg.DriftThreshold < 0 || cfg.MinSlices < 1 || cfg.MinEvidence < 0 || cfg.CheckEvery < 1 || cfg.SolveBudget < 0 || cfg.PivotBudget < 0 {
		return nil, fmt.Errorf("online: invalid config %+v", cfg)
	}
	opts.Initial = nil // uniform; the controller has no state to privilege
	opts.SkipEvaluation = true
	opts.WarmBasis = nil
	if cfg.PivotBudget > 0 {
		opts.LPMaxPivots = cfg.PivotBudget
	}
	return &Adapter{cfg: cfg, opts: opts, rebuild: rebuild, est: est}, nil
}

// Observe ingests a batch of per-slice request counts and, when due, runs
// one drift check and at most one refresh. Counts are validated up front;
// an invalid batch is rejected whole. The returned error covers ingestion
// only — a failed refresh is reported in Outcome.RefreshErr and keeps the
// previous policy serving.
func (a *Adapter) Observe(ctx context.Context, counts []int) (*Outcome, error) {
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("online: negative request count %d at slice %d", c, i)
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, c := range counts {
		if err := a.est.Observe(c); err != nil {
			return nil, err
		}
	}
	a.stats.Slices += int64(len(counts))
	a.sinceCheck += len(counts)
	out := &Outcome{Ingested: len(counts)}

	if a.est.Slices() < a.cfg.MinSlices {
		return out, nil
	}
	if a.served != nil && a.sinceCheck < a.cfg.CheckEvery {
		return out, nil
	}
	a.sinceCheck = 0

	trigger := "initial"
	if a.served != nil {
		z := a.cfg.DriftZ
		if z < 0 {
			z = 0 // disabled: per-row thresholds collapse to the global one
		}
		ratio, drift, err := a.est.DriftAdaptive(a.served, a.cfg.MinEvidence, a.cfg.DriftThreshold, z)
		if err != nil {
			out.RefreshErr = err
			return out, nil
		}
		out.Drift = drift
		a.stats.LastDrift = drift
		if ratio < 1 {
			return out, nil
		}
		trigger = "drift"
	}
	a.refresh(ctx, out, trigger)
	return out, nil
}

// refresh re-solves against the current estimate: rebuild the system and
// model for the estimated SR, revise the resident LP in place (falling back
// to a fresh assembly when the sparsity pattern moved), and solve under the
// budget, warm-starting from the previous optimal basis. Failures leave the
// served policy untouched.
func (a *Adapter) refresh(ctx context.Context, out *Outcome, trigger string) {
	out.Trigger = trigger
	ctx, rsp := obs.StartSpan(ctx, "refresh")
	rsp.Set("trigger", trigger)
	defer rsp.End()
	fail := func(err error) {
		a.stats.FailedRefreshes++
		out.RefreshErr = err
		rsp.Set("error", err.Error())
	}
	_, esp := obs.StartSpan(ctx, "estimate")
	sr, err := a.est.SR("online-estimate")
	if err != nil {
		esp.End()
		fail(err)
		return
	}
	sys, err := a.rebuild(sr)
	esp.End()
	if err != nil {
		fail(fmt.Errorf("online: rebuilding system: %w", err))
		return
	}
	// Revise the resident compiled model in place when its structure carried
	// over (System.Build is ~30% of a patched refresh), falling back to a
	// full compilation when the composed sparsity pattern moved. Like the LP
	// below, the resident model may be left describing the attempted SR when
	// a later step of this refresh fails; the next refresh re-patches it, and
	// nothing served to callers aliases it (Result owns its tables).
	model := a.model
	if model != nil {
		_, sp := obs.StartSpan(ctx, "patch-model")
		if err := core.PatchModel(model, sys); err == nil {
			out.ModelPatched = true
			a.stats.ModelPatched++
		} else {
			model = nil // pattern or shape moved: recompile below
			sp.Set("fallback", "rebuild")
		}
		sp.End()
	}
	if model == nil {
		_, sp := obs.StartSpan(ctx, "build-model")
		var err error
		model, err = sys.Build()
		sp.End()
		if err != nil {
			fail(fmt.Errorf("online: compiling model: %w", err))
			return
		}
		a.stats.ModelRebuilt++
	}
	if a.prob != nil {
		_, sp := obs.StartSpan(ctx, "patch-lp")
		if err := core.PatchFrequencyLP(a.prob, model, a.opts); err == nil {
			out.Patched = true
			a.stats.LPPatched++
		} else {
			a.prob = nil // pattern or shape moved: reassemble below
			sp.Set("fallback", "rebuild")
		}
		sp.End()
	}
	if a.prob == nil {
		_, sp := obs.StartSpan(ctx, "build-lp")
		prob, err := core.BuildFrequencyLP(model, a.opts)
		sp.End()
		if err != nil {
			fail(fmt.Errorf("online: assembling LP: %w", err))
			return
		}
		a.prob = prob
		a.stats.LPRebuilt++
	}

	solveCtx := ctx
	if a.cfg.SolveBudget > 0 {
		var cancel context.CancelFunc
		solveCtx, cancel = context.WithTimeout(ctx, a.cfg.SolveBudget)
		defer cancel()
	}
	o := a.opts
	o.WarmBasis = a.basis
	res, err := core.OptimizeProblemCtx(solveCtx, model, o, a.prob)
	if res != nil {
		a.stats.LastPivots = res.LPIterations
		out.Pivots = res.LPIterations
	}
	if err != nil {
		fail(err)
		return
	}

	a.served = sr
	a.sys = sys
	a.model = model
	a.result = res
	a.basis = res.Basis
	a.stats.Refreshes++
	if trigger == "drift" {
		a.stats.DriftRefreshes++
	}
	if res.WarmStarted {
		a.stats.WarmStarted++
		out.WarmStarted = true
	}
	out.Refreshed = true
	out.Result = res
}

// Stats returns a snapshot of the adapter's counters.
func (a *Adapter) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Current returns the most recently installed optimization result (nil
// before the first refresh).
func (a *Adapter) Current() *core.Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.result
}

// CurrentSystem returns the system of the most recent refresh (nil before
// the first), whose state names index the current policy.
func (a *Adapter) CurrentSystem() *core.System {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sys
}

// ServedSR returns the SR estimate the current policy was solved for (nil
// before the first refresh).
func (a *Adapter) ServedSR() *core.ServiceRequester {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.served
}
