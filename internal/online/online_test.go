package online_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/lp"
	"repro/internal/online"
	"repro/internal/trace"
)

func feed(t *testing.T, e *online.Estimator, counts []int) {
	t.Helper()
	for _, c := range counts {
		if err := e.Observe(c); err != nil {
			t.Fatalf("Observe(%d): %v", c, err)
		}
	}
}

// TestEstimatorMatchesExtractSR: with decay 1 the streaming estimator is an
// exact incremental form of the batch extractor — same transition matrix,
// same states, same uniform fallback for unseen histories.
func TestEstimatorMatchesExtractSR(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, memory := range []int{1, 2, 3} {
		counts := trace.OnOff(rng, 4000, 0.08, 0.3)
		batch, err := trace.ExtractSR("batch", counts, memory)
		if err != nil {
			t.Fatal(err)
		}
		e, err := online.NewEstimator(memory, 1)
		if err != nil {
			t.Fatal(err)
		}
		feed(t, e, counts)
		if got, want := e.Slices(), len(counts)-memory; got != want {
			t.Fatalf("memory %d: %d transitions, want %d", memory, got, want)
		}
		sr, err := e.SR("stream")
		if err != nil {
			t.Fatal(err)
		}
		n := batch.N()
		if sr.N() != n {
			t.Fatalf("memory %d: %d states, want %d", memory, sr.N(), n)
		}
		for s := 0; s < n; s++ {
			if sr.States[s] != batch.States[s] || sr.Requests[s] != batch.Requests[s] {
				t.Fatalf("memory %d state %d: (%s,%d) vs (%s,%d)", memory, s,
					sr.States[s], sr.Requests[s], batch.States[s], batch.Requests[s])
			}
			for j := 0; j < n; j++ {
				if d := math.Abs(sr.P.At(s, j) - batch.P.At(s, j)); d > 1e-12 {
					t.Fatalf("memory %d P(%d,%d): stream %g batch %g", memory, s, j,
						sr.P.At(s, j), batch.P.At(s, j))
				}
			}
		}
	}
}

// TestEstimatorForgets: after a regime switch, a decayed estimator tracks
// the new parameters while the undecayed one stays pinned near the
// whole-stream average.
func TestEstimatorForgets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	regimeA := trace.OnOff(rng, 20000, 0.02, 0.3)
	regimeB := trace.OnOff(rng, 2000, 0.4, 0.05)

	decayed, _ := online.NewEstimator(1, 0.99)
	flat, _ := online.NewEstimator(1, 1)
	feed(t, decayed, regimeA)
	feed(t, flat, regimeA)
	feed(t, decayed, regimeB)
	feed(t, flat, regimeB)

	// State 0 = idle history; its busy-next probability is p01.
	if got := decayed.PBusy(0); math.Abs(got-0.4) > 0.12 {
		t.Errorf("decayed P(idle→busy) = %g, want ≈0.4 (regime B)", got)
	}
	if got := flat.PBusy(0); got > 0.1 {
		t.Errorf("undecayed P(idle→busy) = %g, should stay near the 0.02-dominated average", got)
	}

	// Drift against the regime-A extraction must be large for the decayed
	// estimator and small against a regime-B extraction.
	srA, err := trace.ExtractSR("a", regimeA, 1)
	if err != nil {
		t.Fatal(err)
	}
	srB, err := trace.ExtractSR("b", regimeB, 1)
	if err != nil {
		t.Fatal(err)
	}
	dA, err := decayed.Drift(srA, 4)
	if err != nil {
		t.Fatal(err)
	}
	dB, err := decayed.Drift(srB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dA < 0.2 {
		t.Errorf("drift vs stale regime = %g, want large", dA)
	}
	if dB > 0.1 {
		t.Errorf("drift vs current regime = %g, want small", dB)
	}
}

// TestEstimatorValidation: bad construction parameters, negative counts and
// premature SR materialization are rejected.
func TestEstimatorValidation(t *testing.T) {
	if _, err := online.NewEstimator(0, 1); err == nil {
		t.Errorf("memory 0 accepted")
	}
	if _, err := online.NewEstimator(2, 0); err == nil {
		t.Errorf("decay 0 accepted")
	}
	if _, err := online.NewEstimator(2, 1.5); err == nil {
		t.Errorf("decay 1.5 accepted")
	}
	e, err := online.NewEstimator(2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(-1); err == nil {
		t.Errorf("negative count accepted")
	}
	if _, err := e.SR("x"); err == nil {
		t.Errorf("SR before any transition accepted")
	}
	if e.Evidence(0) != 0 {
		t.Errorf("evidence nonzero before any transition")
	}
	// Drift against a wrong-size SR errors.
	feed(t, e, []int{0, 1, 0, 1, 0})
	if _, err := e.Drift(core.TwoStateSR("w", 0.1, 0.1), 0); err == nil {
		t.Errorf("drift against wrong-size SR accepted")
	}
}

// TestEstimatorEvidenceGating: histories with no decayed mass sit at the
// uniform fallback and must be excluded from drift by the evidence floor.
func TestEstimatorEvidenceGating(t *testing.T) {
	e, err := online.NewEstimator(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All-idle stream: only history 00 accumulates evidence.
	feed(t, e, make([]int, 64))
	if ev := e.Evidence(0); ev < 60 {
		t.Errorf("evidence(00) = %g, want ≈62", ev)
	}
	if ev := e.Evidence(3); ev != 0 {
		t.Errorf("evidence(11) = %g, want 0", ev)
	}
	sr, err := e.SR("idle")
	if err != nil {
		t.Fatal(err)
	}
	// Unseen history 11: uniform over its shift successors 10 and 11.
	if sr.P.At(3, 2) != 0.5 || sr.P.At(3, 3) != 0.5 {
		t.Errorf("unseen history row = [%g %g], want uniform fallback",
			sr.P.At(3, 2), sr.P.At(3, 3))
	}
	// A served SR that disagrees wildly on unseen rows only: no drift with
	// the floor in place, drift without it.
	served := &core.ServiceRequester{
		Name:     "served",
		States:   sr.States,
		P:        sr.P.Clone(),
		Requests: sr.Requests,
	}
	served.P.Set(3, 2, 1)
	served.P.Set(3, 3, 0)
	gated, err := e.Drift(served, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gated != 0 {
		t.Errorf("gated drift = %g, want 0 (only unseen rows moved)", gated)
	}
	ungated, err := e.Drift(served, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ungated < 0.4 {
		t.Errorf("ungated drift = %g, want ≈0.5", ungated)
	}
}

// TestDriftAdaptiveEvidenceScaling: the adaptive trigger suppresses a TV
// deviation that a thinly observed row cannot statistically support, then
// fires once the same deviation persists under accumulated evidence — the
// per-row scaling a single global threshold cannot express.
func TestDriftAdaptiveEvidenceScaling(t *testing.T) {
	const threshold, minEv, z = 0.05, 8.0, 2.0
	e, err := online.NewEstimator(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Seed + 10 cycles of [0,0,0,0,1]: row 0 sees 40 transitions at
	// pb₀ = 0.25, row 1 sees 10 at pb₁ = 0.
	calm := []int{0}
	for i := 0; i < 10; i++ {
		calm = append(calm, 0, 0, 0, 0, 1)
	}
	feed(t, e, calm)
	served, err := e.SR("served")
	if err != nil {
		t.Fatal(err)
	}

	// A short burst of [0,1] pulls pb₀ to 0.375 on thin evidence: the raw
	// TV (0.125) is far above the global threshold, but within the row's
	// own z = 2 sampling band — the adaptive trigger must hold fire.
	var burst []int
	for i := 0; i < 8; i++ {
		burst = append(burst, 0, 1)
	}
	feed(t, e, burst)
	tvGlobal, err := e.Drift(served, minEv)
	if err != nil {
		t.Fatal(err)
	}
	if tvGlobal <= threshold {
		t.Fatalf("raw TV after burst = %g, expected above the global threshold %g", tvGlobal, threshold)
	}
	ratio, tv, err := e.DriftAdaptive(served, minEv, threshold, z)
	if err != nil {
		t.Fatal(err)
	}
	if ratio >= 1 {
		t.Errorf("adaptive trigger fired on thin evidence: ratio = %g (tv %g)", ratio, tv)
	}

	// The same regime sustained for 300 more cycles shrinks the row's
	// sampling band far below the now-large deviation: it must fire.
	var sustained []int
	for i := 0; i < 300; i++ {
		sustained = append(sustained, 0, 1)
	}
	feed(t, e, sustained)
	ratio, tv, err = e.DriftAdaptive(served, minEv, threshold, z)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1 {
		t.Errorf("adaptive trigger did not fire on sustained drift: ratio = %g (tv %g)", ratio, tv)
	}

	// z = 0 collapses to the global rule exactly.
	r0, tv0, err := e.DriftAdaptive(served, minEv, threshold, 0)
	if err != nil {
		t.Fatal(err)
	}
	maxTV, err := e.Drift(served, minEv)
	if err != nil {
		t.Fatal(err)
	}
	if tv0 != maxTV || r0 != maxTV/threshold {
		t.Errorf("z=0: (ratio, tv) = (%g, %g), want (%g, %g)", r0, tv0, maxTV/threshold, maxTV)
	}

	if _, _, err := e.DriftAdaptive(served, minEv, 0, z); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, _, err := e.DriftAdaptive(served, minEv, threshold, -1); err == nil {
		t.Error("negative z accepted")
	}
}

// diskRebuild swaps the estimated SR into the paper's disk system, the
// rebuild contract the server uses for preset models.
func diskRebuild(sr *core.ServiceRequester) (*core.System, error) {
	return devices.DiskSystem(sr), nil
}

func diskOpts() core.Options {
	return core.Options{
		Alpha:     core.HorizonToAlpha(1e4),
		Objective: core.Objective{Metric: core.MetricPower, Sense: lp.Minimize},
		Bounds:    []core.Bound{{Metric: core.MetricPenalty, Rel: lp.LE, Value: 1.8}},
	}
}

// TestAdapterDriftLoop is the subsystem's end-to-end contract: a drifting
// trace triggers an initial refresh and at least one drift refresh; every
// refresh after the first revises the LP in place (exactly one full
// assembly over the whole run) and warm-starts with strictly fewer pivots
// than a cold solve of the same instance; and the installed policy matches
// a from-scratch solve on the drifted SR to 1e-8.
func TestAdapterDriftLoop(t *testing.T) {
	a, err := online.New(diskRebuild, diskOpts(), online.Config{
		Memory:         1,
		Decay:          0.995,
		DriftThreshold: 0.05,
		MinSlices:      300,
		MinEvidence:    8,
		CheckEvery:     25,
		SolveBudget:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	counts := trace.Concat(
		trace.OnOff(rng, 1500, 0.03, 0.25), // calm: sleeping pays
		trace.OnOff(rng, 1500, 0.20, 0.10), // busy: the penalty bound binds
	)

	ctx := context.Background()
	var initial, drifted *core.Result
	driftPivots := -1
	for lo := 0; lo < len(counts); lo += 50 {
		hi := min(lo+50, len(counts))
		out, err := a.Observe(ctx, counts[lo:hi])
		if err != nil {
			t.Fatalf("Observe[%d:%d]: %v", lo, hi, err)
		}
		if out.RefreshErr != nil {
			t.Fatalf("refresh failed at slice %d: %v", hi, out.RefreshErr)
		}
		if out.Refreshed {
			switch out.Trigger {
			case "initial":
				initial = out.Result
				if out.Patched {
					t.Errorf("initial refresh claims the patch path with no LP resident")
				}
			case "drift":
				drifted = out.Result
				driftPivots = out.Pivots
				if !out.Patched {
					t.Errorf("drift refresh at slice %d did not use the patch path", hi)
				}
				if !out.ModelPatched {
					t.Errorf("drift refresh at slice %d did not revise the model in place", hi)
				}
				if !out.WarmStarted {
					t.Errorf("drift refresh at slice %d did not warm-start", hi)
				}
			}
		}
	}

	st := a.Stats()
	if initial == nil || st.Refreshes < 2 || st.DriftRefreshes < 1 || drifted == nil {
		t.Fatalf("refreshes = %+v; want an initial and ≥1 drift refresh", st)
	}
	if st.LPRebuilt != 1 {
		t.Errorf("LP assembled from scratch %d times; want exactly 1 (patch path otherwise)", st.LPRebuilt)
	}
	if st.LPPatched < st.Refreshes-1 {
		t.Errorf("LP patched %d times across %d refreshes", st.LPPatched, st.Refreshes)
	}
	if st.ModelRebuilt != 1 {
		t.Errorf("model compiled from scratch %d times; want exactly 1 (patch path otherwise)", st.ModelRebuilt)
	}
	if st.ModelPatched < st.Refreshes-1 {
		t.Errorf("model patched %d times across %d refreshes", st.ModelPatched, st.Refreshes)
	}
	if st.FailedRefreshes != 0 {
		t.Errorf("%d failed refreshes", st.FailedRefreshes)
	}

	// From-scratch reference on the final served SR: same optimum, and the
	// warm patched solve must have paid strictly fewer pivots than the cold
	// solve of the identical instance.
	sys, err := diskRebuild(a.ServedSR())
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := core.Optimize(m, diskOpts())
	if err != nil {
		t.Fatalf("from-scratch solve: %v", err)
	}
	if driftPivots < 0 || driftPivots >= cold.LPIterations {
		t.Errorf("drift refresh pivots = %d, cold solve = %d; want warm < cold",
			driftPivots, cold.LPIterations)
	}
	if math.Abs(drifted.Objective-cold.Objective) > 1e-8 {
		t.Errorf("drifted objective %g, from-scratch %g", drifted.Objective, cold.Objective)
	}
	for s := 0; s < m.N; s++ {
		for c := 0; c < m.A; c++ {
			if d := math.Abs(drifted.Policy.CommandDist(s)[c] - cold.Policy.CommandDist(s)[c]); d > 1e-8 {
				t.Fatalf("policy(%d,%d): served %g, from-scratch %g (Δ %g)",
					s, c, drifted.Policy.CommandDist(s)[c], cold.Policy.CommandDist(s)[c], d)
			}
		}
	}

	// The drift must have actually changed the served commands somewhere.
	changed := false
	for s := 0; s < m.N && !changed; s++ {
		changed = initial.Policy.ModeCommand(s) != drifted.Policy.ModeCommand(s)
	}
	if !changed {
		t.Errorf("drift refresh left the mode command identical on every state")
	}
}

// TestAdapterFailedRefreshKeepsPolicy: an exhausted solve budget keeps the
// previous policy in place and is reported, not fatal.
func TestAdapterFailedRefreshKeepsPolicy(t *testing.T) {
	a, err := online.New(diskRebuild, diskOpts(), online.Config{
		Memory:         1,
		Decay:          0.98,
		DriftThreshold: 0.1,
		MinSlices:      100,
		MinEvidence:    4,
		CheckEvery:     25,
		SolveBudget:    time.Nanosecond, // nothing solves in this
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	out, err := a.Observe(context.Background(), trace.OnOff(rng, 400, 0.1, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Refreshed || out.RefreshErr == nil {
		t.Fatalf("outcome %+v; want a reported failed refresh", out)
	}
	if a.Current() != nil {
		t.Errorf("a policy was installed despite the failed solve")
	}
	if st := a.Stats(); st.FailedRefreshes != 1 || st.Refreshes != 0 {
		t.Errorf("stats %+v; want one failed, zero successful refreshes", st)
	}
}

// TestAdapterPivotBudget: an exhausted pivot budget behaves exactly like a
// cancelled refresh — reported, counted as failed, previous policy (here:
// none) keeps serving.
func TestAdapterPivotBudget(t *testing.T) {
	a, err := online.New(diskRebuild, diskOpts(), online.Config{
		Memory:         1,
		Decay:          0.98,
		DriftThreshold: 0.1,
		MinSlices:      100,
		MinEvidence:    4,
		CheckEvery:     25,
		PivotBudget:    1, // no policy LP solves in one pivot
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	out, err := a.Observe(context.Background(), trace.OnOff(rng, 400, 0.1, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Refreshed || out.RefreshErr == nil {
		t.Fatalf("outcome %+v; want a reported failed refresh", out)
	}
	if !errors.Is(out.RefreshErr, lp.ErrNotOptimal) {
		t.Errorf("RefreshErr = %v; want wrap of lp.ErrNotOptimal", out.RefreshErr)
	}
	if a.Current() != nil {
		t.Errorf("a policy was installed despite the exhausted pivot budget")
	}
	if st := a.Stats(); st.FailedRefreshes != 1 || st.Refreshes != 0 {
		t.Errorf("stats %+v; want one failed, zero successful refreshes", st)
	}
	if _, err := online.New(diskRebuild, diskOpts(), online.Config{PivotBudget: -1}); err == nil {
		t.Errorf("negative pivot budget accepted")
	}
}

// TestAdapterValidation: construction and ingestion errors.
func TestAdapterValidation(t *testing.T) {
	if _, err := online.New(nil, diskOpts(), online.Config{}); err == nil {
		t.Errorf("nil rebuild accepted")
	}
	a, err := online.New(diskRebuild, diskOpts(), online.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Observe(context.Background(), []int{1, -2}); err == nil {
		t.Errorf("negative count accepted")
	}
	if st := a.Stats(); st.Slices != 0 {
		t.Errorf("rejected batch was partially ingested: %+v", st)
	}
}
