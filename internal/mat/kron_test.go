package mat

import (
	"math/rand"
	"testing"
)

// denseKron is the O(everything) reference: the textbook Kronecker product
// on dense matrices.
func denseKron(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows*b.Rows, a.Cols*b.Cols)
	for ia := 0; ia < a.Rows; ia++ {
		for ja := 0; ja < a.Cols; ja++ {
			v := a.At(ia, ja)
			if v == 0 {
				continue
			}
			for ib := 0; ib < b.Rows; ib++ {
				for jb := 0; jb < b.Cols; jb++ {
					out.Set(ia*b.Rows+ib, ja*b.Cols+jb, v*b.At(ib, jb))
				}
			}
		}
	}
	return out
}

// randSparse returns an r×c matrix with the given fill probability.
func randSparse(rng *rand.Rand, r, c int, fill float64) *Matrix {
	m := NewMatrix(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < fill {
				m.Set(i, j, rng.NormFloat64())
			}
		}
	}
	return m
}

func TestKronMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		a := randSparse(rng, 1+rng.Intn(5), 1+rng.Intn(5), 0.4)
		b := randSparse(rng, 1+rng.Intn(5), 1+rng.Intn(5), 0.4)
		got := Kron(FromDense(a), FromDense(b))
		want := denseKron(a, b)
		if got.Rows() != want.Rows || got.Cols() != want.Cols {
			t.Fatalf("trial %d: shape %dx%d, want %dx%d", trial, got.Rows(), got.Cols(), want.Rows, want.Cols)
		}
		if d := got.Dense().MaxAbsDiff(want); d > 1e-14 {
			t.Fatalf("trial %d: max abs diff %g", trial, d)
		}
		checkCSRWellFormed(t, got)
	}
}

func TestKronAllMatchesPairwiseFold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(3)
		dense := make([]*Matrix, k)
		sparse := make([]*CSR, k)
		for i := range dense {
			dense[i] = randSparse(rng, 1+rng.Intn(4), 1+rng.Intn(4), 0.5)
			sparse[i] = FromDense(dense[i])
		}
		got := KronAll(sparse...)
		fold := sparse[0]
		for i := 1; i < k; i++ {
			fold = Kron(fold, sparse[i])
		}
		if d := got.MaxAbsDiff(fold); d > 1e-14 {
			t.Fatalf("trial %d (k=%d): KronAll vs pairwise fold diff %g", trial, k, d)
		}
		checkCSRWellFormed(t, got)
	}
}

func TestKronAllSingleFactorClones(t *testing.T) {
	a := FromDense(FromRows([][]float64{{1, 0}, {0.5, 0.5}}))
	got := KronAll(a)
	if d := got.MaxAbsDiff(a); d != 0 {
		t.Fatalf("single-factor KronAll diff %g", d)
	}
	got.Scale(2)
	if a.At(0, 0) != 1 {
		t.Fatal("KronAll(single) aliases its input")
	}
}

func TestKronStochasticFactorsStayStochastic(t *testing.T) {
	// Products of row-stochastic factors are row-stochastic — the property
	// the composite compiler relies on.
	a := FromDense(FromRows([][]float64{{0.9, 0.1}, {0.3, 0.7}}))
	b := FromDense(FromRows([][]float64{{1, 0, 0}, {0.05, 0, 0.95}, {0, 0.5, 0.5}}))
	c := FromDense(FromRows([][]float64{{0.2, 0.8}, {0, 1}}))
	p := KronAll(a, b, c)
	if err := p.CheckStochastic(1e-12); err != nil {
		t.Fatalf("Kronecker of stochastic factors not stochastic: %v", err)
	}
	if p.Rows() != 12 || p.Cols() != 12 {
		t.Fatalf("shape %dx%d, want 12x12", p.Rows(), p.Cols())
	}
}

func TestKronPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no factors":  func() { KronAll() },
		"nil factor":  func() { Kron(nil, nil) },
		"nil in list": func() { KronAll(FromDense(NewMatrix(2, 2)), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// checkCSRWellFormed verifies the structural CSR invariants the direct
// assembly promises: monotone row pointers and strictly increasing columns
// within each row.
func checkCSRWellFormed(t *testing.T, m *CSR) {
	t.Helper()
	if m.rowPtr[0] != 0 || m.rowPtr[m.rows] != len(m.vals) {
		t.Fatalf("rowPtr endpoints %d..%d, want 0..%d", m.rowPtr[0], m.rowPtr[m.rows], len(m.vals))
	}
	for i := 0; i < m.rows; i++ {
		if m.rowPtr[i] > m.rowPtr[i+1] {
			t.Fatalf("rowPtr decreases at row %d", i)
		}
		cols, _ := m.RowNZ(i)
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				t.Fatalf("row %d columns not strictly increasing: %v", i, cols)
			}
		}
		for _, j := range cols {
			if j < 0 || j >= m.cols {
				t.Fatalf("row %d column %d outside [0,%d)", i, j, m.cols)
			}
		}
	}
}
