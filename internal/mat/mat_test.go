package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := Vector{1, 2, 3}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %g, want 6", got)
	}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Errorf("Clone aliases original")
	}
	if got := w.Max(); got != 6 {
		t.Errorf("Max = %g, want 6", got)
	}
	if got := w.Min(); got != 4 {
		t.Errorf("Min = %g, want 4", got)
	}
	if got := w.ArgMax(); got != 2 {
		t.Errorf("ArgMax = %d, want 2", got)
	}
}

func TestVectorEmptyExtremes(t *testing.T) {
	var v Vector
	if !math.IsInf(v.Max(), -1) {
		t.Errorf("empty Max = %g, want -Inf", v.Max())
	}
	if !math.IsInf(v.Min(), 1) {
		t.Errorf("empty Min = %g, want +Inf", v.Min())
	}
	if v.ArgMax() != -1 {
		t.Errorf("empty ArgMax = %d, want -1", v.ArgMax())
	}
}

func TestVectorScaleAddScaled(t *testing.T) {
	v := Vector{1, 2}
	v.Scale(3)
	if v[0] != 3 || v[1] != 6 {
		t.Errorf("Scale got %v", v)
	}
	v.AddScaled(2, Vector{1, 1})
	if v[0] != 5 || v[1] != 8 {
		t.Errorf("AddScaled got %v", v)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{1, 3}
	v.Normalize()
	if math.Abs(v[0]-0.25) > 1e-15 || math.Abs(v[1]-0.75) > 1e-15 {
		t.Errorf("Normalize got %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Normalize of zero vector did not panic")
		}
	}()
	Vector{0, 0}.Normalize()
}

func TestIsDistribution(t *testing.T) {
	cases := []struct {
		v    Vector
		want bool
	}{
		{Vector{0.5, 0.5}, true},
		{Vector{1}, true},
		{Vector{0.6, 0.6}, false},
		{Vector{-0.1, 1.1}, false},
		{Vector{0.5, math.NaN()}, false},
		{Vector{0.3, 0.3, 0.4}, true},
	}
	for i, c := range cases {
		if got := c.v.IsDistribution(0); got != c.want {
			t.Errorf("case %d: IsDistribution(%v) = %v, want %v", i, c.v, got, c.want)
		}
	}
}

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g", m.At(1, 0))
	}
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Fatalf("Set failed")
	}
	m.Add(1, 0, 1)
	if m.At(1, 0) != 8 {
		t.Fatalf("Add failed")
	}
	tr := m.T()
	if tr.At(0, 1) != 8 {
		t.Fatalf("T failed: %v", tr)
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec(Vector{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", got)
	}
	got = m.VecMul(Vector{1, 1})
	if got[0] != 4 || got[1] != 6 {
		t.Errorf("VecMul = %v, want [4 6]", got)
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if c.MaxAbsDiff(want) > 1e-15 {
		t.Errorf("Mul = %v, want %v", c, want)
	}
	id := Identity(2)
	if a.Mul(id).MaxAbsDiff(a) != 0 {
		t.Errorf("A*I != A")
	}
	if id.Mul(a).MaxAbsDiff(a) != 0 {
		t.Errorf("I*A != A")
	}
}

func TestStochasticChecks(t *testing.T) {
	good := FromRows([][]float64{{0.2, 0.8}, {1, 0}})
	if err := good.CheckStochastic(0); err != nil {
		t.Errorf("CheckStochastic(good) = %v", err)
	}
	if !good.IsStochastic(0) {
		t.Errorf("IsStochastic(good) = false")
	}
	badSum := FromRows([][]float64{{0.2, 0.7}})
	if err := badSum.CheckStochastic(0); err == nil {
		t.Errorf("CheckStochastic(badSum) = nil, want error")
	}
	badNeg := FromRows([][]float64{{-0.2, 1.2}})
	if err := badNeg.CheckStochastic(0); err == nil {
		t.Errorf("CheckStochastic(badNeg) = nil, want error")
	}
}

func TestSolveKnown(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := Vector{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := Vector{2, 3, -1}
	if x.MaxAbsDiff(want) > 1e-12 {
		t.Errorf("Solve = %v, want %v", x, want)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, Vector{1, 2}); err != ErrSingular {
		t.Errorf("Solve(singular) err = %v, want ErrSingular", err)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, Vector{3, 5})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if x.MaxAbsDiff(Vector{5, 3}) > 1e-14 {
		t.Errorf("Solve = %v, want [5 3]", x)
	}
}

func TestSolveT(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {0, 1}})
	// Aᵀ = [[1,0],[2,1]]; Aᵀx = [1, 4] → x = [1, 2].
	x, err := SolveT(a, Vector{1, 4})
	if err != nil {
		t.Fatalf("SolveT: %v", err)
	}
	if x.MaxAbsDiff(Vector{1, 2}) > 1e-14 {
		t.Errorf("SolveT = %v, want [1 2]", x)
	}
}

// randomWellConditioned builds a diagonally dominant random matrix, which is
// guaranteed nonsingular.
func randomWellConditioned(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.NormFloat64()
			a.Set(i, j, v)
			rowSum += math.Abs(v)
		}
		a.Set(i, i, rowSum+1+rng.Float64())
	}
	return a
}

// Property: for random nonsingular A and x, Solve(A, A*x) recovers x.
func TestSolveRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a := randomWellConditioned(r, n)
		x := NewVector(n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return got.MaxAbsDiff(x) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ for random matrices.
func TestTransposeProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b := NewMatrix(n, m), NewMatrix(m, p)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		return lhs.MaxAbsDiff(rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: VecMul and MulVec agree with the transpose definition.
func TestVecMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := 1+r.Intn(8), 1+r.Intn(8)
		a := NewMatrix(n, m)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		v := NewVector(n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		lhs := a.VecMul(v)
		rhs := a.T().MulVec(v)
		return lhs.MaxAbsDiff(rhs) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAddMatrixScaled(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{10, 20}})
	a.AddMatrixScaled(0.5, b)
	if a.At(0, 0) != 6 || a.At(0, 1) != 12 {
		t.Errorf("AddMatrixScaled got %v", a)
	}
}

func TestStringSmoke(t *testing.T) {
	m := FromRows([][]float64{{1, 0.5}})
	if s := m.String(); len(s) == 0 {
		t.Errorf("String returned empty")
	}
}
