package mat

// Sparse Kronecker kernels. The joint transition matrix of k independent
// Markov components under a fixed joint command is the Kronecker product of
// the component matrices, so a composite chain can be *compiled* — its CSR
// form assembled entry-by-entry from the factor CSRs — instead of enumerated
// through a dense |S|×|S| intermediate. Both kernels emit rows in order with
// sorted columns, so the result is a valid CSR without any sort/compress
// pass, and the cost is O(nnz(result)) = O(Π nnz(factor)).

import (
	"fmt"
	"math"
)

// kronDims multiplies factor dimensions with an overflow guard; composing
// many components can silently wrap an int product long before memory runs
// out, and a negative or wrapped dimension must be a loud failure.
func kronDims(ms []*CSR) (rows, cols, nnz int) {
	rows, cols, nnz = 1, 1, 1
	for _, m := range ms {
		if m == nil {
			panic("mat: Kron of nil matrix")
		}
		rows = mulCheck(rows, m.rows)
		cols = mulCheck(cols, m.cols)
		nnz = mulCheck(nnz, m.NNZ())
	}
	return rows, cols, nnz
}

func mulCheck(a, b int) int {
	if a < 0 || b < 0 {
		panic(fmt.Sprintf("mat: Kron with negative dimension %d×%d", a, b))
	}
	if b != 0 && a > math.MaxInt/b {
		panic(fmt.Sprintf("mat: Kron dimension product %d×%d overflows", a, b))
	}
	return a * b
}

// Kron returns the Kronecker product a ⊗ b in CSR form:
//
//	(a ⊗ b)[ia·rb + ib, ja·cb + jb] = a[ia,ja] · b[ib,jb]
//
// with b's indices varying fastest (the standard convention). The result is
// assembled directly — row pointers, sorted columns and values — without a
// triplet pass or any dense intermediate.
func Kron(a, b *CSR) *CSR {
	rows, cols, nnz := kronDims([]*CSR{a, b})
	rowPtr := make([]int, rows+1)
	colIdx := make([]int, 0, nnz)
	vals := make([]float64, 0, nnz)
	for ia := 0; ia < a.rows; ia++ {
		ac, av := a.RowNZ(ia)
		for ib := 0; ib < b.rows; ib++ {
			bc, bv := b.RowNZ(ib)
			for k, ja := range ac {
				base := ja * b.cols
				for l, jb := range bc {
					colIdx = append(colIdx, base+jb)
					vals = append(vals, av[k]*bv[l])
				}
			}
			rowPtr[ia*b.rows+ib+1] = len(vals)
		}
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// KronAll returns ms[0] ⊗ ms[1] ⊗ … ⊗ ms[k-1] in CSR form, with later
// factors varying fastest (so KronAll(a, b) == Kron(a, b)). Rather than
// folding k−1 pairwise products — which materializes every intermediate —
// it enumerates the k-way cross product of factor rows once, emitting each
// joint entry directly at its final coordinates. Nested iteration over the
// (sorted) factor rows yields sorted joint columns, so the output needs no
// compression pass. It panics when called with no factors.
func KronAll(ms ...*CSR) *CSR {
	if len(ms) == 0 {
		panic("mat: KronAll needs at least one factor")
	}
	if len(ms) == 1 {
		return ms[0].Clone()
	}
	rows, cols, nnz := kronDims(ms)
	rowPtr := make([]int, rows+1)
	colIdx := make([]int, 0, nnz)
	vals := make([]float64, 0, nnz)

	k := len(ms)
	rowIdx := make([]int, k) // current factor row per level

	// emit writes the joint entries of the current joint row (fixed by
	// rowIdx) at level lv and beyond, given the column base and value
	// product accumulated over levels < lv.
	var emit func(lv, colBase int, prod float64)
	emit = func(lv, colBase int, prod float64) {
		cs, vs := ms[lv].RowNZ(rowIdx[lv])
		if lv == k-1 {
			for l, j := range cs {
				colIdx = append(colIdx, colBase+j)
				vals = append(vals, prod*vs[l])
			}
			return
		}
		for l, j := range cs {
			emit(lv+1, (colBase+j)*ms[lv+1].cols, prod*vs[l])
		}
	}

	// enumerate walks joint rows in increasing index order (later factors
	// fastest), closing each row's pointer as it completes.
	var enumerate func(lv, rowBase int)
	enumerate = func(lv, rowBase int) {
		for i := 0; i < ms[lv].rows; i++ {
			rowIdx[lv] = i
			if lv == k-1 {
				emit(0, 0, 1)
				rowPtr[rowBase+i+1] = len(vals)
			} else {
				enumerate(lv+1, (rowBase+i)*ms[lv+1].rows)
			}
		}
	}
	enumerate(0, 0)
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}
