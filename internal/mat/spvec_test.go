package mat

import (
	"math/rand"
	"testing"
)

// spFromDense scatters the nonzeros of b into a fresh SpVec.
func spFromDense(b Vector) *SpVec {
	v := NewSpVec(len(b))
	for i, x := range b {
		if x != 0 {
			v.Set(i, x)
		}
	}
	return v
}

// checkBitIdentical compares a hyper-sparse result against the dense-path
// reference entry by entry. Equality must be exact (==, which deliberately
// identifies ±0): the reachability walk performs the dense pass's own
// operations in the dense pass's own order, so any difference at all means
// the symbolic phase missed a dependency.
func checkBitIdentical(t *testing.T, tag string, sp *SpVec, ref Vector) {
	t.Helper()
	for i := range ref {
		if sp.Val[i] != ref[i] {
			t.Fatalf("%s: entry %d = %g, dense path %g", tag, i, sp.Val[i], ref[i])
		}
	}
	if sp.Dense {
		return
	}
	// Pattern soundness: every nonzero must be covered by the pattern.
	inPat := make(map[int]bool, len(sp.Ind))
	last := -1
	for _, i := range sp.Ind {
		if i <= last {
			t.Fatalf("%s: pattern not sorted ascending at %d", tag, i)
		}
		last = i
		inPat[i] = true
	}
	for i, x := range ref {
		if x != 0 && !inPat[i] {
			t.Fatalf("%s: nonzero entry %d missing from pattern", tag, i)
		}
	}
}

// sparseRHS builds a right-hand side with nnz random nonzeros.
func sparseRHS(rng *rand.Rand, n, nnz int) Vector {
	b := NewVector(n)
	for c := 0; c < nnz; c++ {
		b[rng.Intn(n)] = rng.NormFloat64()
	}
	return b
}

// TestSolveSpBitIdentical holds SolveSp and SolveTSp to exact equality with
// Solve and SolveT across sizes, densities, rhs supports, and interleaved
// Forrest–Tomlin updates — the property the simplex pivot-sequence
// invariance rests on.
func TestSolveSpBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 7, 40, 150, 400} {
		for _, density := range []float64{0.02, 0.15} {
			col, d := randSparseLU(rng, n, density)
			sf, err := FactorColumns(n, col, 0.1)
			if err != nil {
				t.Fatalf("n=%d density=%g: FactorColumns: %v", n, density, err)
			}
			x := NewSpVec(n)
			y := NewSpVec(n)
			step := 0
			check := func(tag string) {
				for _, nnz := range []int{1, 2, n/10 + 1, n} {
					b := sparseRHS(rng, n, nnz)
					sf.SolveSp(spFromDense(b), x)
					checkBitIdentical(t, tag+" SolveSp", x, sf.Solve(b))
					c := sparseRHS(rng, n, nnz)
					sf.SolveTSp(spFromDense(c), y)
					checkBitIdentical(t, tag+" SolveTSp", y, sf.SolveT(c))
				}
				// Unit vectors: the BTRAN shape the simplex actually issues.
				for trial := 0; trial < 3; trial++ {
					e := NewVector(n)
					e[rng.Intn(n)] = 1
					sf.SolveTSp(spFromDense(e), y)
					checkBitIdentical(t, tag+" SolveTSp unit", y, sf.SolveT(e))
					sf.SolveSp(spFromDense(e), x)
					checkBitIdentical(t, tag+" SolveSp unit", x, sf.Solve(e))
				}
				step++
			}
			check("fresh")
			// Interleave column-replacement updates (growing the eta file and
			// mutating V) with solve checks.
			for u := 0; u < 6; u++ {
				slot := rng.Intn(n)
				var rows []int
				var vals []float64
				for i := 0; i < n; i++ {
					switch {
					case i == slot:
						rows = append(rows, i)
						vals = append(vals, 2+rng.Float64()*3)
					case rng.Float64() < 0.15:
						rows = append(rows, i)
						vals = append(vals, rng.NormFloat64())
					}
				}
				for i := 0; i < n; i++ {
					d.Set(i, slot, 0)
				}
				for idx, r := range rows {
					d.Set(r, slot, vals[idx])
				}
				if err := sf.Update(slot, rows, vals); err != nil {
					t.Fatalf("n=%d update %d: %v", n, u, err)
				}
			}
			check("updated")
		}
	}
}

// TestSolveSpDenseFallback forces the density fallback with a full rhs and
// checks the result is still exact and marked Dense.
func TestSolveSpDenseFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 200
	col, _ := randSparseLU(rng, n, 0.1)
	sf, err := FactorColumns(n, col, 0.1)
	if err != nil {
		t.Fatalf("FactorColumns: %v", err)
	}
	b := NewVector(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := NewSpVec(n)
	sf.SolveSp(spFromDense(b), x)
	if !x.Dense {
		t.Error("SolveSp with a full rhs did not mark the result Dense")
	}
	checkBitIdentical(t, "dense fallback SolveSp", x, sf.Solve(b))
	y := NewSpVec(n)
	sf.SolveTSp(spFromDense(b), y)
	if !y.Dense {
		t.Error("SolveTSp with a full rhs did not mark the result Dense")
	}
	checkBitIdentical(t, "dense fallback SolveTSp", y, sf.SolveT(b))
}

// TestSpVecReset verifies Reset restores the exact all-zero state in both
// representations.
func TestSpVecReset(t *testing.T) {
	v := NewSpVec(8)
	v.Set(3, 1.5)
	v.Set(6, -2)
	v.Reset()
	for i, x := range v.Val {
		if x != 0 {
			t.Fatalf("after sparse Reset, Val[%d] = %g", i, x)
		}
	}
	if len(v.Ind) != 0 || v.Dense {
		t.Fatal("after Reset, pattern not empty")
	}
	for i := range v.Val {
		v.Val[i] = float64(i)
	}
	v.Dense = true
	v.Reset()
	for i, x := range v.Val {
		if x != 0 {
			t.Fatalf("after dense Reset, Val[%d] = %g", i, x)
		}
	}
	if v.Dense {
		t.Fatal("Reset left Dense set")
	}
}
