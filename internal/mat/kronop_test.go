package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randStochasticCSR returns a random n×n row-stochastic CSR with out-degree
// up to deg per row (at least 1).
func randStochasticCSR(rng *rand.Rand, n, deg int) *CSR {
	t := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		d := 1 + rng.Intn(deg)
		if d > n {
			d = n
		}
		cols := rng.Perm(n)[:d]
		w := make([]float64, d)
		sum := 0.0
		for k := range w {
			w[k] = rng.Float64() + 0.05
			sum += w[k]
		}
		for k, j := range cols {
			t.Add(i, j, w[k]/sum)
		}
	}
	return t.ToCSR()
}

func randVec(rng *rand.Rand, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func maxAbsDiffVec(a, b Vector) float64 {
	d := 0.0
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

// TestKronOpMatchesKronAll: the lazy operator's MulVec and MulVecT agree with
// products against the expanded joint CSR, across random factor counts,
// sizes and sparsities — including identity factors, which the operator
// skips as no-op sweeps.
func TestKronOpMatchesKronAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(4)
		factors := make([]*CSR, k)
		for i := range factors {
			if rng.Float64() < 0.25 {
				factors[i] = IdentityCSR(1 + rng.Intn(4))
			} else {
				factors[i] = randStochasticCSR(rng, 1+rng.Intn(4), 3)
			}
		}
		op := NewKronOp(factors...)
		joint := KronAll(factors...)
		if op.Rows() != joint.Rows() || op.Cols() != joint.Cols() {
			t.Fatalf("trial %d: op is %dx%d, joint is %dx%d", trial, op.Rows(), op.Cols(), joint.Rows(), joint.Cols())
		}
		n := op.Rows()
		x := randVec(rng, n)
		if d := maxAbsDiffVec(op.MulVecT(x), joint.VecMul(x)); d > 1e-12 {
			t.Fatalf("trial %d: MulVecT differs from expanded VecMul by %g", trial, d)
		}
		if d := maxAbsDiffVec(op.MulVec(x), joint.MulVec(x)); d > 1e-12 {
			t.Fatalf("trial %d: MulVec differs from expanded MulVec by %g", trial, d)
		}
		// Into variants reuse the operator's scratch and must be repeatable.
		dst := NewVector(n)
		op.MulVecTInto(dst, x)
		if d := maxAbsDiffVec(dst, joint.VecMul(x)); d > 1e-12 {
			t.Fatalf("trial %d: MulVecTInto differs by %g", trial, d)
		}
		op.MulVecInto(dst, x)
		if d := maxAbsDiffVec(dst, joint.MulVec(x)); d > 1e-12 {
			t.Fatalf("trial %d: MulVecInto differs by %g", trial, d)
		}
	}
}

// TestKronOpStochasticApplication: applying the operator transposed to a
// distribution yields a distribution (mass is conserved), matching the
// expanded chain exactly.
func TestKronOpStochasticApplication(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	factors := []*CSR{
		randStochasticCSR(rng, 4, 2),
		randStochasticCSR(rng, 3, 3),
		randStochasticCSR(rng, 2, 2),
	}
	op := NewKronOp(factors...)
	n := op.Rows()
	dist := NewVector(n)
	for i := range dist {
		dist[i] = rng.Float64()
	}
	dist.Normalize()
	out := op.MulVecT(dist)
	if s := out.Sum(); math.Abs(s-1) > 1e-12 {
		t.Fatalf("distribution step sums to %g, want 1", s)
	}
}

// TestKronOpRowSampleMatchesFactorWalks: RowSample must decode the joint
// state into factor digits (later factors fastest), walk each non-identity
// factor row's inverse CDF against one uniform, and re-encode — exactly what
// independent per-factor walks produce.
func TestKronOpRowSampleMatchesFactorWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(3)
		factors := make([]*CSR, k)
		for i := range factors {
			if rng.Float64() < 0.2 {
				factors[i] = IdentityCSR(1 + rng.Intn(3))
			} else {
				factors[i] = randStochasticCSR(rng, 1+rng.Intn(4), 3)
			}
		}
		op := NewKronOp(factors...)
		n := op.Rows()
		for s := 0; s < n; s++ {
			// Scripted uniform stream, replayed for the reference walk.
			us := make([]float64, k)
			for i := range us {
				us[i] = rng.Float64()
			}
			next := 0
			draw := func(seq []float64) func() float64 {
				i := 0
				return func() float64 { v := seq[i]; i++; return v }
			}
			got := op.RowSample(s, draw(us))
			// Reference: decode, walk each factor independently, encode.
			u := draw(us)
			rem := s
			digits := make([]int, k)
			for i := k - 1; i >= 0; i-- {
				digits[i] = rem % factors[i].Rows()
				rem /= factors[i].Rows()
			}
			for i := 0; i < k; i++ {
				f := factors[i]
				if f.isIdentity() {
					next = next*f.Rows() + digits[i]
					continue
				}
				cols, vals := f.RowNZ(digits[i])
				uu := u()
				jf := cols[len(cols)-1]
				for kk, p := range vals {
					uu -= p
					if uu <= 0 {
						jf = cols[kk]
						break
					}
				}
				next = next*f.Rows() + jf
			}
			if got != next {
				t.Fatalf("trial %d state %d: RowSample = %d, reference = %d", trial, s, got, next)
			}
		}
	}
}

// TestKronOpRowSampleDistribution: over many draws, the empirical successor
// frequencies of one joint state converge to the expanded chain's row.
func TestKronOpRowSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	factors := []*CSR{
		randStochasticCSR(rng, 3, 2),
		randStochasticCSR(rng, 2, 2),
	}
	op := NewKronOp(factors...)
	joint := KronAll(factors...)
	n := op.Rows()
	const draws = 200000
	for s := 0; s < n; s++ {
		counts := make([]int, n)
		for d := 0; d < draws; d++ {
			counts[op.RowSample(s, rng.Float64)]++
		}
		cols, vals := joint.RowNZ(s)
		want := NewVector(n)
		for k, j := range cols {
			want[j] = vals[k]
		}
		for j := 0; j < n; j++ {
			got := float64(counts[j]) / draws
			if math.Abs(got-want[j]) > 0.01 {
				t.Fatalf("state %d -> %d: empirical %g, expanded row %g", s, j, got, want[j])
			}
		}
	}
}

func TestIdentityCSR(t *testing.T) {
	id := IdentityCSR(4)
	if !id.isIdentity() {
		t.Fatalf("IdentityCSR(4) not detected as identity")
	}
	if IdentityCSR(0).NNZ() != 0 {
		t.Fatalf("IdentityCSR(0) has nonzeros")
	}
	m := randStochasticCSR(rand.New(rand.NewSource(1)), 4, 3)
	if m.isIdentity() {
		t.Fatalf("random stochastic matrix detected as identity")
	}
}

func TestKronOpPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("no factors", func() { NewKronOp() })
	mustPanic("nil factor", func() { NewKronOp(nil) })
	rect := NewTriplet(2, 3)
	rect.Add(0, 0, 1)
	mustPanic("rectangular factor", func() { NewKronOp(rect.ToCSR()) })
	op := NewKronOp(IdentityCSR(3))
	mustPanic("bad state", func() { op.RowSample(3, func() float64 { return 0 }) })
	mustPanic("bad vector", func() { op.MulVecT(NewVector(2)) })
}
