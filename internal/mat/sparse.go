package mat

// Sparse kernel: triplet (COO) builder, CSR and CSC compressed forms,
// sparse×dense products, and stochastic-matrix validation directly on the
// sparse representation.
//
// The composed controlled Markov chains of this repository are extremely
// sparse — the queue law (paper Eq. 3) is banded and the SP/SR component
// chains have tiny out-degrees — so the per-command transition matrices and
// the policy-optimization LP columns are built and consumed in these forms;
// dense |S|×|S| matrices are materialized only where a direct linear solve
// genuinely needs them.

import (
	"fmt"
	"math"
	"sort"
)

// Triplet accumulates (row, col, value) entries for a sparse matrix under
// construction. Duplicate coordinates are summed on compression, which makes
// the builder a natural target for the scatter-style accumulation used when
// composing product chains.
type Triplet struct {
	rows, cols int
	ri, ci     []int
	v          []float64
}

// NewTriplet returns an empty builder for an r-by-c matrix.
func NewTriplet(r, c int) *Triplet {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: NewTriplet with negative dimension %dx%d", r, c))
	}
	return &Triplet{rows: r, cols: c}
}

// Add records entry (i, j) += v. Zero values are kept until compression (they
// can cancel a duplicate). It panics on out-of-range coordinates.
func (t *Triplet) Add(i, j int, v float64) {
	if i < 0 || i >= t.rows || j < 0 || j >= t.cols {
		panic(fmt.Sprintf("mat: Triplet.Add (%d,%d) outside %dx%d", i, j, t.rows, t.cols))
	}
	t.ri = append(t.ri, i)
	t.ci = append(t.ci, j)
	t.v = append(t.v, v)
}

// NNZ returns the number of recorded entries (duplicates uncombined).
func (t *Triplet) NNZ() int { return len(t.v) }

// ToCSR compresses the builder into a CSR matrix: duplicates summed, columns
// sorted within each row, exact zeros dropped. The builder may be reused
// afterwards (it is not consumed).
func (t *Triplet) ToCSR() *CSR {
	// Counting sort by row.
	count := make([]int, t.rows+1)
	for _, i := range t.ri {
		count[i+1]++
	}
	for i := 0; i < t.rows; i++ {
		count[i+1] += count[i]
	}
	colIdx := make([]int, len(t.v))
	vals := make([]float64, len(t.v))
	next := make([]int, t.rows)
	copy(next, count[:t.rows])
	for k, i := range t.ri {
		p := next[i]
		colIdx[p] = t.ci[k]
		vals[p] = t.v[k]
		next[i]++
	}
	// Sort within each row, then merge duplicates and drop zeros in place.
	rowPtr := make([]int, t.rows+1)
	out := 0
	for i := 0; i < t.rows; i++ {
		lo, hi := count[i], count[i+1]
		seg := colIdx[lo:hi]
		sort.Sort(&colValSort{seg, vals[lo:hi]})
		rowPtr[i] = out
		for k := lo; k < hi; {
			j := colIdx[k]
			s := vals[k]
			k++
			for k < hi && colIdx[k] == j {
				s += vals[k]
				k++
			}
			if s != 0 {
				colIdx[out] = j
				vals[out] = s
				out++
			}
		}
	}
	rowPtr[t.rows] = out
	return &CSR{rows: t.rows, cols: t.cols, rowPtr: rowPtr, colIdx: colIdx[:out], vals: vals[:out]}
}

// ToCSC compresses the builder into a CSC matrix (the column-major mirror of
// ToCSR, with rows sorted within each column).
func (t *Triplet) ToCSC() *CSC {
	flipped := &Triplet{rows: t.cols, cols: t.rows, ri: t.ci, ci: t.ri, v: t.v}
	return &CSC{t: flipped.ToCSR()}
}

// colValSort sorts paired (column, value) slices by column.
type colValSort struct {
	c []int
	v []float64
}

func (s *colValSort) Len() int           { return len(s.c) }
func (s *colValSort) Less(i, j int) bool { return s.c[i] < s.c[j] }
func (s *colValSort) Swap(i, j int) {
	s.c[i], s.c[j] = s.c[j], s.c[i]
	s.v[i], s.v[j] = s.v[j], s.v[i]
}

// CSR is a compressed-sparse-row matrix: row i's nonzeros live at positions
// rowPtr[i]..rowPtr[i+1] of (colIdx, vals), with colIdx sorted within each
// row. The zero value is not usable; build through Triplet, FromDense, or
// another CSR.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// FromDense compresses a dense matrix, dropping exact zeros.
func FromDense(m *Matrix) *CSR {
	t := NewTriplet(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if v != 0 {
				t.Add(i, j, v)
			}
		}
	}
	return t.ToCSR()
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// RowNZ returns the column indices and values of row i's nonzeros. The
// slices alias internal storage; callers must not mutate them.
func (m *CSR) RowNZ(i int) ([]int, []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// RewriteRowNZ overwrites the stored values of row i with vals after
// verifying that cols matches the stored (sorted) nonzero pattern exactly.
// This is the in-place revision hook for callers that rebuild a structurally
// identical matrix with drifted coefficients (core.PatchModel): the row
// index structure — the part ToCSR pays a sort for — carries over verbatim.
// A pattern mismatch returns an error with the row left unchanged.
func (m *CSR) RewriteRowNZ(i int, cols []int, vals []float64) error {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	stored := m.colIdx[lo:hi]
	if len(cols) != len(stored) {
		return fmt.Errorf("mat: row %d has %d nonzeros, want %d", i, len(stored), len(cols))
	}
	for k, j := range cols {
		if stored[k] != j {
			return fmt.Errorf("mat: row %d nonzero %d at column %d, want %d", i, k, stored[k], j)
		}
	}
	copy(m.vals[lo:hi], vals)
	return nil
}

// At returns the (i, j) entry (zero if not stored).
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.RowNZ(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// RowDot returns the inner product of row i with dense vector v.
// It panics if len(v) != Cols.
func (m *CSR) RowDot(i int, v Vector) float64 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: CSR.RowDot dimension mismatch cols=%d len(v)=%d", m.cols, len(v)))
	}
	cols, vals := m.RowNZ(i)
	s := 0.0
	for k, j := range cols {
		s += vals[k] * v[j]
	}
	return s
}

// RowSum returns the sum of row i's entries.
func (m *CSR) RowSum(i int) float64 {
	_, vals := m.RowNZ(i)
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s
}

// MulVec returns m*v (v as a column vector). Cost O(nnz).
func (m *CSR) MulVec(v Vector) Vector {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: CSR.MulVec dimension mismatch cols=%d len(v)=%d", m.cols, len(v)))
	}
	out := NewVector(m.rows)
	for i := 0; i < m.rows; i++ {
		cols, vals := m.RowNZ(i)
		s := 0.0
		for k, j := range cols {
			s += vals[k] * v[j]
		}
		out[i] = s
	}
	return out
}

// VecMul returns v*m (v as a row vector). Cost O(nnz).
func (m *CSR) VecMul(v Vector) Vector {
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: CSR.VecMul dimension mismatch rows=%d len(v)=%d", m.rows, len(v)))
	}
	out := NewVector(m.cols)
	for i := 0; i < m.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		cols, vals := m.RowNZ(i)
		for k, j := range cols {
			out[j] += vi * vals[k]
		}
	}
	return out
}

// MulVecT returns v·m (v as a row vector) — an alias of VecMul under the
// transition-operator naming shared with KronOp (y ← Pᵀy as a column, i.e.
// one distribution step). Cost O(nnz).
func (m *CSR) MulVecT(v Vector) Vector { return m.VecMul(v) }

// MulVecTInto is MulVecT writing into dst (which may not alias v), for
// iterative loops that must not allocate per step.
func (m *CSR) MulVecTInto(dst, v Vector) {
	if len(v) != m.rows || len(dst) != m.cols {
		panic(fmt.Sprintf("mat: CSR.MulVecTInto dimension mismatch rows=%d len(v)=%d len(dst)=%d", m.rows, len(v), len(dst)))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		cols, vals := m.RowNZ(i)
		for k, j := range cols {
			dst[j] += vi * vals[k]
		}
	}
}

// MulVecInto is MulVec writing into dst (which may not alias v).
func (m *CSR) MulVecInto(dst, v Vector) {
	if len(v) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("mat: CSR.MulVecInto dimension mismatch cols=%d len(v)=%d len(dst)=%d", m.cols, len(v), len(dst)))
	}
	for i := 0; i < m.rows; i++ {
		cols, vals := m.RowNZ(i)
		s := 0.0
		for k, j := range cols {
			s += vals[k] * v[j]
		}
		dst[i] = s
	}
}

// RowSample draws a successor of state i from the probability row m[i,·] by
// an inverse-CDF walk over the stored entries; residual mass from implicit
// zeros (and roundoff) lands on the last stored entry, the tail-clamp
// convention the simulator uses. It consumes exactly one uniform from u and
// panics on an empty row. Safe for concurrent use.
func (m *CSR) RowSample(i int, u func() float64) int {
	cols, vals := m.RowNZ(i)
	if len(cols) == 0 {
		panic(fmt.Sprintf("mat: CSR.RowSample on empty row %d", i))
	}
	uu := u()
	for k, p := range vals {
		uu -= p
		if uu <= 0 {
			return cols[k]
		}
	}
	return cols[len(cols)-1]
}

// T returns the transpose as a new CSR (equivalently, the CSC view of m).
func (m *CSR) T() *CSR {
	count := make([]int, m.cols+1)
	for _, j := range m.colIdx {
		count[j+1]++
	}
	for j := 0; j < m.cols; j++ {
		count[j+1] += count[j]
	}
	rowPtr := make([]int, m.cols+1)
	copy(rowPtr, count)
	colIdx := make([]int, len(m.vals))
	vals := make([]float64, len(m.vals))
	next := make([]int, m.cols)
	copy(next, count[:m.cols])
	for i := 0; i < m.rows; i++ {
		cols, vs := m.RowNZ(i)
		for k, j := range cols {
			p := next[j]
			colIdx[p] = i
			vals[p] = vs[k]
			next[j]++
		}
	}
	return &CSR{rows: m.cols, cols: m.rows, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// Clone returns a deep copy of m.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		rows: m.rows, cols: m.cols,
		rowPtr: make([]int, len(m.rowPtr)),
		colIdx: make([]int, len(m.colIdx)),
		vals:   make([]float64, len(m.vals)),
	}
	copy(c.rowPtr, m.rowPtr)
	copy(c.colIdx, m.colIdx)
	copy(c.vals, m.vals)
	return c
}

// Scale multiplies every stored entry by k in place and returns m.
func (m *CSR) Scale(k float64) *CSR {
	for i := range m.vals {
		m.vals[i] *= k
	}
	return m
}

// Dense materializes m as a dense matrix.
func (m *CSR) Dense() *Matrix {
	d := NewMatrix(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		cols, vals := m.RowNZ(i)
		row := d.Row(i)
		for k, j := range cols {
			row[j] = vals[k]
		}
	}
	return d
}

// MaxAbsDiff returns the largest absolute elementwise difference between m
// and other, walking the merged sparsity patterns. It panics on dimension
// mismatch.
func (m *CSR) MaxAbsDiff(other *CSR) float64 {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("mat: CSR.MaxAbsDiff shape mismatch %dx%d vs %dx%d",
			m.rows, m.cols, other.rows, other.cols))
	}
	d := 0.0
	for i := 0; i < m.rows; i++ {
		ac, av := m.RowNZ(i)
		bc, bv := other.RowNZ(i)
		ka, kb := 0, 0
		for ka < len(ac) || kb < len(bc) {
			var diff float64
			switch {
			case kb >= len(bc) || (ka < len(ac) && ac[ka] < bc[kb]):
				diff = av[ka]
				ka++
			case ka >= len(ac) || bc[kb] < ac[ka]:
				diff = bv[kb]
				kb++
			default:
				diff = av[ka] - bv[kb]
				ka++
				kb++
			}
			if x := math.Abs(diff); x > d {
				d = x
			}
		}
	}
	return d
}

// IsStochastic reports whether every row of m is a probability distribution
// within tolerance tol (DefaultTol when tol <= 0), validated directly on the
// sparse form: stored entries in [0,1] and each row summing to 1. Implicit
// zeros are valid probability entries.
func (m *CSR) IsStochastic(tol float64) bool {
	return m.CheckStochastic(tol) == nil
}

// CheckStochastic returns a descriptive error for the first row of m that is
// not a probability distribution within tol, or nil if all rows are. The
// check runs on the sparse form in O(nnz).
func (m *CSR) CheckStochastic(tol float64) error {
	if tol <= 0 {
		tol = DefaultTol
	}
	for i := 0; i < m.rows; i++ {
		cols, vals := m.RowNZ(i)
		s := 0.0
		for k, v := range vals {
			if v < -tol || v > 1+tol || math.IsNaN(v) {
				return fmt.Errorf("mat: row %d entry %d = %g out of [0,1]", i, cols[k], v)
			}
			s += v
		}
		if math.Abs(s-1) > tol*float64(m.cols+1) {
			return fmt.Errorf("mat: row %d sums to %g, want 1", i, s)
		}
	}
	return nil
}

// CSC is a compressed-sparse-column matrix, stored as the CSR form of its
// transpose. Column j's nonzeros are contiguous with sorted row indices,
// which is the access pattern the revised simplex needs (pricing and basis
// assembly walk columns, never rows).
type CSC struct {
	t *CSR // CSR of the transpose: row j of t = column j of the matrix
}

// Rows returns the number of rows.
func (m *CSC) Rows() int { return m.t.cols }

// Cols returns the number of columns.
func (m *CSC) Cols() int { return m.t.rows }

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return m.t.NNZ() }

// ColNZ returns the row indices and values of column j's nonzeros. The
// slices alias internal storage; callers must not mutate them.
func (m *CSC) ColNZ(j int) ([]int, []float64) { return m.t.RowNZ(j) }

// At returns the (i, j) entry (zero if not stored).
func (m *CSC) At(i, j int) float64 { return m.t.At(j, i) }

// ColDot returns the inner product of column j with dense vector v.
func (m *CSC) ColDot(j int, v Vector) float64 { return m.t.RowDot(j, v) }

// CSR converts to row-compressed form.
func (m *CSC) CSR() *CSR { return m.t.T() }

// Dense materializes m as a dense matrix.
func (m *CSC) Dense() *Matrix { return m.t.Dense().T() }

// ToCSC converts a CSR matrix to column-compressed form.
func (m *CSR) ToCSC() *CSC { return &CSC{t: m.T()} }
