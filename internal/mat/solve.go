package mat

import "math"

// LU holds the LU factorization (with partial pivoting) of a square matrix,
// ready to solve linear systems for multiple right-hand sides.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// Factor computes the LU factorization of square matrix a with partial
// pivoting. It returns ErrSingular if a pivot is exactly zero or smaller in
// magnitude than tiny (1e-14 times the largest row scale).
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		panic("mat: Factor requires a square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1

	// Row scales for a relative singularity threshold.
	scale := 0.0
	for _, x := range lu.Data {
		if v := math.Abs(x); v > scale {
			scale = v
		}
	}
	tiny := 1e-14 * scale
	if tiny == 0 {
		tiny = 1e-300
	}

	for k := 0; k < n; k++ {
		// Find pivot in column k.
		p, best := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > best {
				best, p = v, i
			}
		}
		if best < tiny {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivVal
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= f * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A x = b using the factorization. b is not modified.
func (f *LU) Solve(b Vector) Vector {
	n := f.lu.Rows
	if len(b) != n {
		panic("mat: LU.Solve dimension mismatch")
	}
	x := NewVector(n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
		x[i] /= f.lu.At(i, i)
	}
	return x
}

// SolveT solves the transposed system Aᵀ x = b using the factorization of A,
// without factoring Aᵀ separately. With PA = LU (P the row permutation the
// pivot vector records), Aᵀ = Uᵀ Lᵀ P, so the solve runs Uᵀ (forward), Lᵀ
// (backward), then undoes the permutation. b is not modified. This is the
// BTRAN step of the revised simplex, where one factorization serves both
// B x = b and Bᵀ y = c.
func (f *LU) SolveT(b Vector) Vector {
	n := f.lu.Rows
	if len(b) != n {
		panic("mat: LU.SolveT dimension mismatch")
	}
	z := b.Clone()
	// Forward substitution with Uᵀ (lower triangular, diagonal from U).
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			z[i] -= f.lu.At(j, i) * z[j]
		}
		z[i] /= f.lu.At(i, i)
	}
	// Back substitution with Lᵀ (unit-diagonal upper triangular).
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			z[i] -= f.lu.At(j, i) * z[j]
		}
	}
	x := NewVector(n)
	for i := range x {
		x[f.piv[i]] = z[i]
	}
	return x
}

// Solve solves the square linear system A x = b.
func Solve(a *Matrix, b Vector) (Vector, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// SolveT solves the transposed system Aᵀ x = b, reusing a single
// factorization of A via LU.SolveT.
func SolveT(a *Matrix, b Vector) (Vector, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveT(b), nil
}
